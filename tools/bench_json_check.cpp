// bench_json_check — CI gate for machine-readable trajectory files
// (BENCH_*.json benchmark reports, LINT_findings.json lint reports,
// MODEL_findings.json model-checker reports, and the JSONL artifacts:
// flight-recorder dumps, health alert streams, and chaos-harness repro
// schedules).
//
// Usage: bench_json_check FILE...
//
// For each file: verify it is well-formed enough to trust (single JSON
// object — or, for JSONL schemas, one object per line — balanced
// structure, no truncation), carries a known schema marker
// ("xunet.bench.v1", "xunet.lint.v1", "xunet.model.v1",
// "xunet.trace.v1", "xunet.health.v1" or "xunet.chaos.v1"), and
// contains every key required for its profile.
// Exit 0 only when every file passes; a missing file is a failure (the
// tool silently not writing its report is exactly the regression this
// gate exists to catch).
#include <cctype>
#include <cstdio>
#include <map>
#include <string>
#include <vector>

namespace {

std::string slurp(const char* path, bool& ok) {
  std::FILE* f = std::fopen(path, "rb");
  if (f == nullptr) {
    ok = false;
    return {};
  }
  std::string out;
  char buf[4096];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) out.append(buf, n);
  std::fclose(f);
  ok = true;
  return out;
}

/// Structural check: one top-level object, braces/brackets balanced,
/// strings closed, nothing after the final brace but whitespace.
bool well_formed(const std::string& s, std::string& why) {
  std::size_t i = 0;
  while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i]))) ++i;
  if (i == s.size() || s[i] != '{') {
    why = "does not start with '{'";
    return false;
  }
  int depth = 0;
  bool in_string = false;
  bool escaped = false;
  std::size_t end = std::string::npos;
  for (; i < s.size(); ++i) {
    const char c = s[i];
    if (in_string) {
      if (escaped) {
        escaped = false;
      } else if (c == '\\') {
        escaped = true;
      } else if (c == '"') {
        in_string = false;
      }
      continue;
    }
    if (c == '"') {
      in_string = true;
    } else if (c == '{' || c == '[') {
      ++depth;
    } else if (c == '}' || c == ']') {
      --depth;
      if (depth < 0) {
        why = "unbalanced close at byte " + std::to_string(i);
        return false;
      }
      if (depth == 0) {
        end = i;
        break;
      }
    }
  }
  if (in_string) {
    why = "unterminated string";
    return false;
  }
  if (end == std::string::npos) {
    why = "truncated (object never closes)";
    return false;
  }
  for (std::size_t j = end + 1; j < s.size(); ++j) {
    if (!std::isspace(static_cast<unsigned char>(s[j]))) {
      why = "trailing garbage after the object";
      return false;
    }
  }
  return true;
}

bool has_key(const std::string& s, const std::string& key) {
  return s.find("\"" + key + "\":") != std::string::npos;
}

/// Extract the value of "bench" (the report's name).
std::string bench_name(const std::string& s) {
  const std::string tag = "\"bench\": \"";
  auto p = s.find(tag);
  if (p == std::string::npos) return {};
  p += tag.size();
  auto q = s.find('"', p);
  if (q == std::string::npos) return {};
  return s.substr(p, q - p);
}

const std::map<std::string, std::vector<std::string>>& required_keys() {
  static const std::map<std::string, std::vector<std::string>> keys = {
      {"datapath",
       {"baseline_cells_per_sec", "cells_per_sec_wall", "speedup",
        "peak_event_queue_depth", "allocs_per_cell"}},
      {"signaling",
       {"calls_per_sec_wall", "setup_ms_p50", "setup_ms_p90", "setup_ms_p99"}},
      {"scaling", {"open_connections_held"}},
      {"call_load",
       {"live_vcs_peak", "wall_us_per_call_lo", "wall_us_per_call_hi",
        "sublinear_ratio", "setup_us_p50_hi"}},
      {"qos",
       {"cbr_reserved_mbps", "cbr_goodput_mbps", "cbr_goodput_fraction",
        "policed_cells", "ubr_shed_cells"}},
  };
  return keys;
}

/// JSONL observability artifacts: a header object on line 1 carrying the
/// schema marker, then one record object per line.  Every line must be a
/// well-formed object; header and records each have a required-key profile.
bool check_jsonl(const char* path, const std::string& s,
                 const char* schema_name, const char* kind,
                 const std::vector<std::string>& header_keys,
                 const std::vector<std::string>& record_keys) {
  bool ok = true;
  std::size_t line_no = 0;
  std::size_t pos = 0;
  while (pos < s.size()) {
    std::size_t eol = s.find('\n', pos);
    if (eol == std::string::npos) eol = s.size();
    const std::string line = s.substr(pos, eol - pos);
    pos = eol + 1;
    if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
    ++line_no;
    std::string why;
    if (!well_formed(line, why)) {
      std::fprintf(stderr, "FAIL %s: line %zu malformed: %s\n", path, line_no,
                   why.c_str());
      return false;
    }
    const std::vector<std::string>& keys =
        line_no == 1 ? header_keys : record_keys;
    for (const std::string& key : keys) {
      if (!has_key(line, key)) {
        std::fprintf(stderr, "FAIL %s: %s line %zu missing required key %s\n",
                     path, kind, line_no, key.c_str());
        ok = false;
      }
    }
  }
  if (line_no == 0) {
    std::fprintf(stderr, "FAIL %s: empty %s document\n", path, kind);
    return false;
  }
  if (ok) {
    std::printf("OK   %s (%s, %zu lines, %s)\n", path, kind, line_no,
                schema_name);
  }
  return ok;
}

/// xunet.chaos.v1 — chaos-harness repro artifacts.  Header line carries the
/// case (topology + workload + seed); every record line declares its type
/// in "rec" and must carry that type's keys.
bool check_chaos_jsonl(const char* path, const std::string& s) {
  static const std::map<std::string, std::vector<std::string>> rec_keys = {
      {"event", {"kind", "at_ns", "duration_ns", "node"}},
      {"violation", {"rule", "detail"}},
      {"result", {"opened", "delivered", "failed", "unresolved"}},
      {"post_mortem", {"trace"}},
  };
  bool ok = true;
  std::size_t line_no = 0;
  std::size_t pos = 0;
  while (pos < s.size()) {
    std::size_t eol = s.find('\n', pos);
    if (eol == std::string::npos) eol = s.size();
    const std::string line = s.substr(pos, eol - pos);
    pos = eol + 1;
    if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
    ++line_no;
    std::string why;
    if (!well_formed(line, why)) {
      std::fprintf(stderr, "FAIL %s: line %zu malformed: %s\n", path, line_no,
                   why.c_str());
      return false;
    }
    if (line_no == 1) {
      for (const char* key :
           {"schema", "seed", "routers", "calls", "events", "violations"}) {
        if (!has_key(line, key)) {
          std::fprintf(stderr,
                       "FAIL %s: chaos header missing required key %s\n", path,
                       key);
          ok = false;
        }
      }
      continue;
    }
    const std::string tag = "\"rec\":\"";
    const std::size_t p = line.find(tag);
    const std::size_t q =
        p == std::string::npos ? p : line.find('"', p + tag.size());
    if (p == std::string::npos || q == std::string::npos) {
      std::fprintf(stderr, "FAIL %s: chaos line %zu has no \"rec\" type\n",
                   path, line_no);
      ok = false;
      continue;
    }
    const std::string rec = line.substr(p + tag.size(), q - p - tag.size());
    auto it = rec_keys.find(rec);
    if (it == rec_keys.end()) {
      std::fprintf(stderr, "FAIL %s: chaos line %zu unknown rec \"%s\"\n",
                   path, line_no, rec.c_str());
      ok = false;
      continue;
    }
    for (const std::string& key : it->second) {
      if (!has_key(line, key)) {
        std::fprintf(stderr,
                     "FAIL %s: chaos %s line %zu missing required key %s\n",
                     path, rec.c_str(), line_no, key.c_str());
        ok = false;
      }
    }
  }
  if (line_no == 0) {
    std::fprintf(stderr, "FAIL %s: empty chaos document\n", path);
    return false;
  }
  if (ok) {
    std::printf("OK   %s (chaos repro, %zu lines, xunet.chaos.v1)\n", path,
                line_no);
  }
  return ok;
}

bool check_file(const char* path) {
  bool read_ok = false;
  const std::string s = slurp(path, read_ok);
  if (!read_ok) {
    std::fprintf(stderr, "FAIL %s: cannot read\n", path);
    return false;
  }
  // JSONL schemas first: their marker must be on the header line, and the
  // document is validated line-by-line rather than as one object.
  const std::size_t first_eol = s.find('\n');
  const std::string first_line =
      first_eol == std::string::npos ? s : s.substr(0, first_eol);
  if (first_line.find("\"xunet.trace.v1\"") != std::string::npos) {
    return check_jsonl(path, s, "xunet.trace.v1", "flight-recorder dump",
                      {"schema", "reason", "records", "overwritten"},
                      {"seq", "ts_ns", "comp", "name", "track"});
  }
  if (first_line.find("\"xunet.health.v1\"") != std::string::npos) {
    return check_jsonl(path, s, "xunet.health.v1", "health alert stream",
                      {"schema", "rules", "alerts", "ticks"},
                      {"ts_ns", "rule", "metric", "value", "state"});
  }
  if (first_line.find("\"xunet.chaos.v1\"") != std::string::npos) {
    return check_chaos_jsonl(path, s);
  }
  std::string why;
  if (!well_formed(s, why)) {
    std::fprintf(stderr, "FAIL %s: malformed JSON: %s\n", path, why.c_str());
    return false;
  }
  if (s.find("\"xunet.model.v1\"") != std::string::npos) {
    // Model-checker report from tools/xunet_model --json.
    bool ok = true;
    for (const char* key :
         {"tool", "states", "edges", "sighost_declared", "sighost_reached",
          "kern_declared", "kern_reached", "ok", "findings", "notes"}) {
      if (!has_key(s, key)) {
        std::fprintf(stderr, "FAIL %s: model report missing required key %s\n",
                     path, key);
        ok = false;
      }
    }
    if (ok) std::printf("OK   %s (model report)\n", path);
    return ok;
  }
  if (s.find("\"xunet.lint.v1\"") != std::string::npos) {
    // Static-analysis report from tools/xunet_lint --json.
    bool ok = true;
    for (const char* key :
         {"tool", "files_scanned", "total", "unsuppressed", "findings"}) {
      if (!has_key(s, key)) {
        std::fprintf(stderr, "FAIL %s: lint report missing required key %s\n",
                     path, key);
        ok = false;
      }
    }
    if (ok) std::printf("OK   %s (lint report)\n", path);
    return ok;
  }
  if (s.find("\"xunet.bench.v1\"") == std::string::npos) {
    std::fprintf(stderr,
                 "FAIL %s: missing schema marker (xunet.bench.v1, "
                 "xunet.lint.v1, xunet.model.v1, xunet.trace.v1, "
                 "xunet.health.v1 or xunet.chaos.v1)\n",
                 path);
    return false;
  }
  const std::string name = bench_name(s);
  if (name.empty()) {
    std::fprintf(stderr, "FAIL %s: missing \"bench\" name\n", path);
    return false;
  }
  auto it = required_keys().find(name);
  if (it == required_keys().end()) {
    // Unknown bench names are allowed (new reports predate their checks)
    // as long as the envelope is valid.
    std::printf("OK   %s (bench \"%s\", no key profile)\n", path,
                name.c_str());
    return true;
  }
  bool ok = true;
  for (const std::string& key : it->second) {
    if (!has_key(s, key)) {
      std::fprintf(stderr, "FAIL %s: bench \"%s\" missing required key %s\n",
                   path, name.c_str(), key.c_str());
      ok = false;
    }
  }
  if (ok) std::printf("OK   %s (bench \"%s\")\n", path, name.c_str());
  return ok;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: bench_json_check FILE...\n");
    return 2;
  }
  bool all_ok = true;
  for (int i = 1; i < argc; ++i) all_ok &= check_file(argv[i]);
  return all_ok ? 0 : 1;
}
