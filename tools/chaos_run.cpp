// chaos_run — CLI front-end for the deterministic chaos harness.
//
// Usage: chaos_run [options]
//   --seeds N        number of consecutive seeds to run   (default 8)
//   --start-seed S   first seed                           (default 1)
//   --routers R      routers in the chain topology        (default 2)
//   --shards S       sighost shards per router            (default 1)
//   --calls C        calls opened by the workload         (default 6)
//   --crashes K      max sighost crash/restart pairs      (default 1)
//   --sabotage       plant the recovery-audit skip seam (self-test mode)
//   --out DIR        write CHAOS_<seed>.jsonl repro artifacts here
//                    (default: current directory)
//
// Each seed deterministically generates a fault schedule, drives the
// testbed through it to quiescence, and runs the cross-layer invariant
// checker.  Any violation is shrunk (ddmin) to a minimal repro and
// emitted as a xunet.chaos.v1 JSONL artifact, then replayed from its own
// bytes to prove the artifact is self-contained and byte-identical.
//
// Exit codes:
//   default mode   0 = every seed audited clean, 1 = violations found
//   --sabotage     0 = at least one violation found AND every emitted
//                      artifact replayed byte-identically,
//                  1 = the planted fault escaped the checker (or replay
//                      diverged) — the harness itself is broken
//   either mode    2 = bad usage / cannot write artifacts
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "chaos/runner.hpp"

namespace {

struct Options {
  int seeds = 8;
  std::uint64_t start_seed = 1;
  int routers = 2;
  int shards = 1;
  int calls = 6;
  int crashes = 1;
  bool sabotage = false;
  std::string out_dir = ".";
};

bool parse_args(int argc, char** argv, Options& o) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&](long long lo, long long hi, long long& out) {
      if (i + 1 >= argc) return false;
      char* end = nullptr;
      out = std::strtoll(argv[++i], &end, 10);
      return end != nullptr && *end == '\0' && out >= lo && out <= hi;
    };
    long long v = 0;
    if (arg == "--seeds" && value(1, 100000, v)) {
      o.seeds = static_cast<int>(v);
    } else if (arg == "--start-seed" && value(0, 1LL << 62, v)) {
      o.start_seed = static_cast<std::uint64_t>(v);
    } else if (arg == "--routers" && value(1, 16, v)) {
      o.routers = static_cast<int>(v);
    } else if (arg == "--shards" && value(1, 8, v)) {
      o.shards = static_cast<int>(v);
    } else if (arg == "--calls" && value(1, 64, v)) {
      o.calls = static_cast<int>(v);
    } else if (arg == "--crashes" && value(0, 8, v)) {
      o.crashes = static_cast<int>(v);
    } else if (arg == "--sabotage") {
      o.sabotage = true;
    } else if (arg == "--out" && i + 1 < argc) {
      o.out_dir = argv[++i];
    } else {
      std::fprintf(stderr, "chaos_run: bad argument '%s'\n", arg.c_str());
      return false;
    }
  }
  return true;
}

bool write_file(const std::string& path, const std::string& bytes) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return false;
  const std::size_t n = std::fwrite(bytes.data(), 1, bytes.size(), f);
  return std::fclose(f) == 0 && n == bytes.size();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace xunet;

  Options opt;
  if (!parse_args(argc, argv, opt)) {
    std::fprintf(stderr,
                 "usage: chaos_run [--seeds N] [--start-seed S] [--routers R] "
                 "[--shards S] [--calls C] [--crashes K] [--sabotage] "
                 "[--out DIR]\n");
    return 2;
  }

  int violated = 0;
  int replay_failures = 0;
  int artifact_failures = 0;
  for (int i = 0; i < opt.seeds; ++i) {
    chaos::ChaosCase c;
    c.routers = opt.routers;
    c.shards = opt.shards;
    c.calls = opt.calls;
    c.seed = opt.start_seed + static_cast<std::uint64_t>(i);
    c.profile.max_crash_restarts = opt.crashes;
    c.sabotage_skip_audit = opt.sabotage;

    const chaos::RunOutcome out = chaos::run_case(c);
    if (out.violations.empty()) {
      std::printf("seed %llu: clean (%zu events, %zu/%zu calls delivered)\n",
                  static_cast<unsigned long long>(c.seed),
                  out.schedule.events.size(),
                  static_cast<std::size_t>(out.workload.delivered),
                  static_cast<std::size_t>(out.workload.opened));
      continue;
    }

    ++violated;
    std::printf("seed %llu: VIOLATION %s (%zu total) — shrinking...\n",
                static_cast<unsigned long long>(c.seed),
                out.violations.front().rule.c_str(), out.violations.size());
    const chaos::ShrinkResult shrunk = chaos::shrink(c, out);
    const chaos::RunOutcome minimal_out = chaos::run_events(c, shrunk.minimal);
    const std::string artifact =
        chaos::to_artifact(c, shrunk.minimal, minimal_out);

    const std::string path = opt.out_dir + "/CHAOS_" +
                             std::to_string(c.seed) + ".jsonl";
    if (!write_file(path, artifact)) {
      std::fprintf(stderr, "chaos_run: cannot write %s\n", path.c_str());
      ++artifact_failures;
      continue;
    }
    std::printf("  shrunk %zu -> %zu events in %d runs; repro: %s\n",
                out.schedule.events.size(), shrunk.minimal.size(),
                shrunk.iterations, path.c_str());

    const chaos::ReplayResult replay = chaos::replay_artifact(artifact);
    if (!replay.parsed || replay.artifact != artifact) {
      std::fprintf(stderr, "  REPLAY MISMATCH for seed %llu\n",
                   static_cast<unsigned long long>(c.seed));
      ++replay_failures;
    } else {
      std::printf("  replay: byte-identical (%s)\n",
                  replay.outcome.violations.empty()
                      ? "no violation?!"
                      : replay.outcome.violations.front().rule.c_str());
    }
  }

  std::printf("chaos_run: %d/%d seeds violated invariants%s\n", violated,
              opt.seeds, opt.sabotage ? " (sabotage mode)" : "");
  if (artifact_failures > 0) return 2;
  if (opt.sabotage) {
    // Self-test: the planted fault must be caught and repros must replay.
    return (violated > 0 && replay_failures == 0) ? 0 : 1;
  }
  return (violated == 0 && replay_failures == 0) ? 0 : 1;
}
