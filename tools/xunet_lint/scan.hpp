// scan.hpp — internal lexer structures shared by the xunet_lint rule
// matchers.  Not installed; tests include it to drive rules directly.
#pragma once

#include <set>
#include <string>
#include <vector>

namespace xunet::lint {

/// One lexical token.  Comments and preprocessor directives are captured
/// out-of-band (Unit::allows / Unit::directives), so rules never see them.
struct Token {
  enum class Kind { ident, number, string, chr, punct };
  Kind kind = Kind::punct;
  std::string text;
  int line = 0;
};

/// One preprocessor directive, continuations folded in.
struct Directive {
  int line = 0;
  std::string text;  ///< from '#' to end of (logical) line
};

/// One `xunet-lint: allow(...)` annotation.
struct Allow {
  int line = 0;           ///< line the comment sits on
  int target_line = 0;    ///< line whose findings it suppresses
  std::vector<std::string> rules;
  std::string reason;
  bool malformed = false; ///< comment mentions xunet-lint but did not parse
  bool used = false;
};

/// One lexed source file.
struct Unit {
  std::string path;  ///< as opened
  std::string rel;   ///< root-relative display path
  bool is_header = false;
  std::vector<std::string> lines;  ///< raw text, for baseline matching
  std::vector<Token> toks;
  std::vector<Directive> directives;
  std::vector<Allow> allows;
  /// Identifiers declared in this file as std::unordered_map/unordered_set.
  std::set<std::string> unordered_names;
};

/// Read and lex `path`.  `ok` is false when the file cannot be read.
[[nodiscard]] Unit lex_file(const std::string& path, const std::string& rel,
                            bool& ok);

/// Lex `text` into `u` (exposed for fixture-free unit tests).
void lex_source(Unit& u, const std::string& text);

/// Index of the token matching the opener at `open` ("(", "[", "{", "<"),
/// or toks.size() when unbalanced.  For "<" the search treats ">>" as two
/// closers (template context).
[[nodiscard]] std::size_t match_forward(const std::vector<Token>& toks,
                                        std::size_t open);

}  // namespace xunet::lint
