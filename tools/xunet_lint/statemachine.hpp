// statemachine.hpp — the shared state-machine IR.
//
// PR 4 taught the linter to diff the sighost's five-list mutations against a
// declared transition table.  Two consumers now need the same extraction:
//
//   * xunet_lint (STATE-UNDECLARED / STATE-MISSING): code sites vs table,
//     exhaustively in both directions, for BOTH declared machines — the
//     sighost five lists (sighost_state.tbl) and the kernel SocketState
//     machine (kern_socket_state.tbl).
//   * tools/xunet_model: the explicit-state checker that composes the
//     declared tables into a product machine and explores it.
//
// So the extraction lives here, parameterized by a MachineSpec instead of
// hard-coding the sighost:
//
//   * list machines — mutations of named container members
//     (`services_.emplace(...)`, `vci_map_.erase(...)`, `wait_bind_[k] = v`),
//     recorded as (enclosing function, paper list, insert/erase/clear);
//   * assignment machines — enum stores through a named field
//     (`xs.state = SocketState::bound`), recorded as
//     (enclosing function, target state, "assign").
//
// Enclosing-function attribution is span-based: every out-of-class member
// definition (`Cls :: name (...) ... {`) AND every free/static helper
// (`name (...) ... {`) yields a token span, so mutations inside helpers are
// attributed to the helper's name instead of being silently missed or glued
// to the previous member (the PR 4 extractor only knew `Sighost ::`).
//
// Table formats (both `#`-commented, whitespace-separated):
//
//   sighost_state.tbl       <fn> <list> <op>           op ∈ insert|erase|clear
//   kern_socket_state.tbl   <fn> <from[,from...]|*> <to>
//
// The richer kern format keeps the source states the code guards on; the
// lint diff only consumes its (fn, to) projection (machine_to_transitions),
// the model checker consumes the full edges.
//
// Either table may carry model annotations:
//
//   # xunet-model: assume-reached(<fn> <a> <b>) -- <reason>
//
// naming a declared transition the model checker should count as reached
// with the written justification (the analogue of lint's allow(...)).
#pragma once

#include <map>
#include <string>
#include <vector>

#include "xunet_lint/lint.hpp"
#include "xunet_lint/scan.hpp"

namespace xunet::lint {

/// What to extract from a unit.  A spec may name list members, an enum
/// assignment target, or both.
struct MachineSpec {
  std::string name;  ///< "sighost" / "kern_socket" — used in messages
  /// Container member ident -> declared list name (list machines).
  std::map<std::string, std::string> lists;
  /// Field ident receiving enum stores, e.g. "state" (assignment machines).
  std::string state_field;
  /// Enum type the stores must name, e.g. "SocketState".
  std::string state_enum;
};

/// The sighost five-list machine of PAPER.md §5.
[[nodiscard]] MachineSpec sighost_machine();
/// The kernel PF_XUNET SocketState machine (src/kern/kernel.hpp).
[[nodiscard]] MachineSpec kern_socket_machine();

/// One function body: [begin, end] are the token indices of its braces.
struct FnSpan {
  std::string name;
  std::size_t begin = 0;
  std::size_t end = 0;
};

/// Every function definition in the token stream — out-of-class members and
/// free helpers alike.  Spans are disjoint and sorted by begin.
[[nodiscard]] std::vector<FnSpan> function_spans(const std::vector<Token>& toks);

/// Extract the machine's transitions from one unit, deduplicated by
/// (fn, list, op).  Assignment machines use list = target state, op="assign".
[[nodiscard]] std::vector<Transition> extract_machine(const Unit& u,
                                                      const MachineSpec& spec);

/// One declared edge of an assignment machine: `fn` drives any state in
/// `from` to `to`.  from == {"*"} means any source state.
struct MachineEdge {
  std::string fn;
  std::vector<std::string> from;
  std::string to;
  int line = 0;
};

/// Parse `<fn> <from[,from...]|*> <to>` per line.  On malformed input `err`
/// is set and the result is empty.
[[nodiscard]] std::vector<MachineEdge> load_machine_table(
    const std::string& path, std::string& err);

/// Project edges to lint transitions {fn, to, "assign"} for the exhaustive
/// both-direction STATE diff.
[[nodiscard]] std::vector<Transition> machine_to_transitions(
    const std::vector<MachineEdge>& edges);

/// Extract the sighost five-list transitions (compatibility wrapper around
/// extract_machine(u, sighost_machine())).
[[nodiscard]] std::vector<Transition> extract_transitions(const Unit& u);

/// Parse the sighost transition table: `fn list op` per line, `#` comments.
/// On malformed input `err` is set.
[[nodiscard]] std::vector<Transition> load_state_table(const std::string& path,
                                                       std::string& err);

/// One `# xunet-model: assume-reached(...)` annotation from a table file.
struct ModelAssume {
  std::vector<std::string> key;  ///< the fields inside the parentheses
  std::string reason;
  int line = 0;
};

/// Scan a table file for assume-reached annotations.  Malformed annotations
/// (no reason, unbalanced parens) set `err`.
[[nodiscard]] std::vector<ModelAssume> load_model_assumes(
    const std::string& path, std::string& err);

}  // namespace xunet::lint
