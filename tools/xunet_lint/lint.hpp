// lint.hpp — xunet_lint: project-specific static analysis for the xunet tree.
//
// The reproduction rests on deterministic replay (byte-identical JSONL
// traces, same-seed fault-recovery runs), on pooled-engine event lifetimes
// (a dangling by-reference capture in a scheduled callback fails silently),
// and on the sighost's five internal lists behaving as the declared state
// machine of PAPER.md §5.  Nothing in the compiler checks any of that, so
// this tool does: a lightweight lexer plus per-rule matchers over the
// repo's own sources.
//
// Rule families (ids are stable; they appear in baselines and annotations):
//
//   DET  — determinism.
//     DET-BANNED      wall clocks / libc randomness outside src/util/rng
//     DET-UNORD-ITER  range-for over an unordered container whose body
//                     schedules events or sends wire messages; in strict
//                     mode (--strict-unord) also bodies that build ordered
//                     artifacts (JSON emission, unsorted push_back) in place
//     DET-PTR-KEY     pointer-keyed std::map/std::set (address-dependent order)
//   LIFE — event lifetimes.
//     LIFE-REF-CAPTURE  by-reference lambda capture passed to
//                       Simulator::schedule/schedule_at or Timer::arm
//     LIFE-TIMER-REARM  by-reference capture in a lambda that itself calls
//                       schedule/arm — a self-re-arming chain whose every
//                       firing outlives the capturing frame
//   STATE — the declared state machines (see statemachine.hpp).
//     STATE-UNDECLARED  a sighost five-list mutation (sighost.cpp) or kernel
//                       SocketState assignment (kernel.cpp) with no entry in
//                       its declared transition table
//     STATE-MISSING     a declared transition with no code site (stale table)
//   HYG  — hygiene.
//     HYG-PRAGMA-ONCE    header without #pragma once
//     HYG-BANNED-INCLUDE <chrono>/<thread>/<random>/... in simulation code
//     HYG-REL-INCLUDE    #include "..." path escaping the source root
//   LINT — the tool's own annotations.
//     LINT-ANNOT        malformed allow(...) annotation or one without a reason
//
// Suppression: inline `// xunet-lint: allow(<rule>[,<rule>...]) -- <reason>`
// (trailing: covers its own line; standalone: covers the next line), or an
// entry in the checked-in baseline file (see load_baseline).  Both REQUIRE a
// written reason.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace xunet::lint {

/// One diagnostic.  `file` is root-relative so baselines are stable across
/// checkouts.
struct Finding {
  std::string rule;
  std::string file;
  int line = 0;
  std::string message;
  bool suppressed = false;
  std::string reason;  ///< why it is allowed (annotation or baseline)
};

/// One extracted sighost state-machine transition: member function `fn`
/// performs `op` (insert/erase/clear) on paper-list `list`.
struct Transition {
  std::string fn;
  std::string list;
  std::string op;
  int line = 0;
};

/// A baseline entry grandfathers one pre-existing finding.  Matching is by
/// (rule, file, whitespace-normalized source-line text), not line number, so
/// unrelated edits above the site do not invalidate the entry.
struct BaselineEntry {
  std::string rule;
  std::string file;
  std::string line_text;
  std::string reason;
  bool used = false;
};

struct Config {
  /// Paths in findings are reported relative to this directory.
  std::string root = ".";
  /// The file the sighost STATE rule analyzes (root-relative suffix match).
  std::string state_file = "src/signaling/sighost.cpp";
  /// Declared sighost transition table; empty disables that STATE rule.
  std::string state_table;
  /// The file the kernel SocketState rule analyzes (suffix match).
  std::string kern_state_file = "src/kern/kernel.cpp";
  /// Declared kernel SocketState table (`fn from to` machine format);
  /// empty disables that STATE rule.
  std::string kern_state_table;
  /// Baseline file; empty means no baseline.
  std::string baseline;
  /// Strict DET-UNORD-ITER: also flag unordered walks that build ordered
  /// artifacts in place.
  bool strict_unord = false;
};

struct Report {
  std::vector<Finding> findings;      ///< sorted by (file, line, rule)
  std::vector<Transition> transitions;///< extracted from the sighost file
  std::vector<Transition> kern_transitions;  ///< extracted from kernel.cpp
  std::size_t files_scanned = 0;
  std::vector<std::string> notes;     ///< non-fatal: stale baseline entries etc.

  [[nodiscard]] std::size_t unsuppressed() const {
    std::size_t n = 0;
    for (const Finding& f : findings) n += f.suppressed ? 0 : 1;
    return n;
  }
};

/// Run every rule over `paths` (files, or directories scanned recursively
/// for .hpp/.cpp/.h/.cc via util::list_source_files).
[[nodiscard]] Report run_lint(const std::vector<std::string>& paths,
                              const Config& cfg);

/// Parse a baseline file (`rule|file|line text|reason` per line, `#`
/// comments).  On malformed input `err` is set and the result is empty.
[[nodiscard]] std::vector<BaselineEntry> load_baseline(const std::string& path,
                                                       std::string& err);

/// Human-readable diagnostics (one `file:line: [RULE] message` per finding).
[[nodiscard]] std::string render_text(const Report& r);

/// Machine-readable findings, schema "xunet.lint.v1" (validated by
/// tools/bench_json_check alongside the bench reports).
[[nodiscard]] std::string render_json(const Report& r);

}  // namespace xunet::lint
