// lint.cpp — the xunet_lint driver: file discovery, rule composition,
// suppression (annotations + baseline), and the text / xunet.lint.v1
// renderers.
#include "xunet_lint/lint.hpp"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>

#include "util/loc_scan.hpp"
#include "xunet_lint/rules.hpp"
#include "xunet_lint/scan.hpp"

namespace xunet::lint {
namespace {

namespace fs = std::filesystem;

std::string normalize_ws(const std::string& s) {
  std::size_t b = s.find_first_not_of(" \t");
  if (b == std::string::npos) return {};
  std::size_t e = s.find_last_not_of(" \t\r");
  return s.substr(b, e - b + 1);
}

std::string rel_to_root(const std::string& path, const std::string& root) {
  std::error_code ec;
  fs::path p = fs::weakly_canonical(path, ec);
  fs::path r = fs::weakly_canonical(root, ec);
  std::string ps = p.generic_string();
  std::string rs = r.generic_string();
  if (!rs.empty() && rs.back() != '/') rs += '/';
  if (ps.compare(0, rs.size(), rs) == 0) return ps.substr(rs.size());
  return path;
}

/// stem of "a/b/foo.cpp" -> "a/b/foo" (for .cpp <-> .hpp pairing).
std::string stem_of(const std::string& rel) {
  std::size_t dot = rel.find_last_of('.');
  return dot == std::string::npos ? rel : rel.substr(0, dot);
}

bool ends_with(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

void json_escape(std::string& out, const std::string& s) {
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

}  // namespace

std::vector<BaselineEntry> load_baseline(const std::string& path,
                                         std::string& err) {
  std::vector<BaselineEntry> out;
  std::ifstream in(path);
  if (!in) {
    err = "cannot read baseline: " + path;
    return out;
  }
  std::string line;
  int lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    std::string t = normalize_ws(line);
    if (t.empty() || t[0] == '#') continue;
    BaselineEntry e;
    std::size_t p1 = t.find('|');
    std::size_t p2 = p1 == std::string::npos ? p1 : t.find('|', p1 + 1);
    std::size_t p3 = p2 == std::string::npos ? p2 : t.find('|', p2 + 1);
    if (p3 == std::string::npos) {
      err = "baseline line " + std::to_string(lineno) +
            ": expected 'rule|file|line text|reason'";
      return {};
    }
    e.rule = normalize_ws(t.substr(0, p1));
    e.file = normalize_ws(t.substr(p1 + 1, p2 - p1 - 1));
    e.line_text = normalize_ws(t.substr(p2 + 1, p3 - p2 - 1));
    e.reason = normalize_ws(t.substr(p3 + 1));
    if (e.rule.empty() || e.file.empty() || e.line_text.empty()) {
      err = "baseline line " + std::to_string(lineno) + ": empty field";
      return {};
    }
    if (e.reason.empty()) {
      err = "baseline line " + std::to_string(lineno) +
            ": entry carries no reason (every grandfathered finding must "
            "say why it is acceptable)";
      return {};
    }
    out.push_back(std::move(e));
  }
  return out;
}

Report run_lint(const std::vector<std::string>& paths, const Config& cfg) {
  Report r;

  // ---- discovery: files as-is, directories via util::list_source_files.
  std::vector<std::string> files;
  for (const std::string& p : paths) {
    std::error_code ec;
    if (fs::is_directory(p, ec)) {
      for (std::string& f : util::list_source_files(p, /*recurse=*/true)) {
        files.push_back(std::move(f));
      }
    } else {
      files.push_back(p);
    }
  }
  std::sort(files.begin(), files.end());
  files.erase(std::unique(files.begin(), files.end()), files.end());

  // ---- lex everything first: DET-UNORD-ITER needs the sibling header's
  // member declarations when scanning a .cpp.
  std::vector<Unit> units;
  units.reserve(files.size());
  for (const std::string& f : files) {
    bool ok = false;
    Unit u = lex_file(f, rel_to_root(f, cfg.root), ok);
    if (!ok) {
      r.notes.push_back("unreadable: " + f);
      continue;
    }
    units.push_back(std::move(u));
  }
  // Re-sort by rel path so findings are ordered the same from any checkout.
  std::sort(units.begin(), units.end(),
            [](const Unit& a, const Unit& b) { return a.rel < b.rel; });
  r.files_scanned = units.size();
  std::map<std::string, const Unit*> by_stem;
  for (const Unit& u : units) {
    if (u.is_header) by_stem.emplace(stem_of(u.rel), &u);
  }

  // ---- declared state tables.
  auto table_error = [&r](const std::string& table, const std::string& err) {
    Finding f;
    f.rule = "LINT-ANNOT";
    f.file = table;
    f.line = 0;
    f.message = err;
    r.findings.push_back(std::move(f));
  };
  std::vector<Transition> declared;
  bool state_enabled = !cfg.state_table.empty();
  if (state_enabled) {
    std::string err;
    declared = load_state_table(cfg.state_table, err);
    if (!err.empty()) {
      table_error(cfg.state_table, err);
      state_enabled = false;
    }
  }
  std::vector<Transition> kern_declared;
  bool kern_enabled = !cfg.kern_state_table.empty();
  if (kern_enabled) {
    std::string err;
    kern_declared = machine_to_transitions(
        load_machine_table(cfg.kern_state_table, err));
    if (!err.empty()) {
      table_error(cfg.kern_state_table, err);
      kern_enabled = false;
    }
  }

  // ---- rules.
  for (const Unit& u : units) {
    rule_det_banned(u, r.findings);
    rule_det_ptr_key(u, r.findings);
    rule_life_ref_capture(u, r.findings);
    rule_life_timer_rearm(u, r.findings);
    rule_hyg(u, r.findings);
    std::set<std::string> unordered = u.unordered_names;
    if (!u.is_header) {
      auto hit = by_stem.find(stem_of(u.rel));
      if (hit != by_stem.end()) {
        unordered.insert(hit->second->unordered_names.begin(),
                         hit->second->unordered_names.end());
      }
    }
    rule_det_unord_iter(u, unordered, cfg.strict_unord, r.findings);
    if (ends_with(u.rel, cfg.state_file)) {
      r.transitions = extract_machine(u, sighost_machine());
      if (state_enabled) {
        rule_state(u, r.transitions, declared, "sighost",
                   "tools/xunet_lint/sighost_state.tbl", r.findings);
      }
    }
    if (ends_with(u.rel, cfg.kern_state_file)) {
      r.kern_transitions = extract_machine(u, kern_socket_machine());
      if (kern_enabled) {
        rule_state(u, r.kern_transitions, kern_declared, "kern_socket",
                   "tools/xunet_lint/kern_socket_state.tbl", r.findings);
      }
    }
    // The annotations themselves are linted: every allow carries a reason.
    for (const Allow& a : u.allows) {
      if (a.malformed) {
        Finding f;
        f.rule = "LINT-ANNOT";
        f.file = u.rel;
        f.line = a.line;
        f.message = "malformed xunet-lint annotation; expected "
                    "'xunet-lint: allow(<rule>[,<rule>...]) -- <reason>'";
        r.findings.push_back(std::move(f));
      } else if (a.reason.empty()) {
        Finding f;
        f.rule = "LINT-ANNOT";
        f.file = u.rel;
        f.line = a.line;
        f.message = "allow(...) without a reason; append '-- <why this "
                    "instance is safe>'";
        r.findings.push_back(std::move(f));
      }
    }
  }

  // ---- suppression pass 1: inline annotations.
  std::map<std::string, Unit*> by_rel;
  for (Unit& u : units) by_rel.emplace(u.rel, &u);
  for (Finding& f : r.findings) {
    if (f.rule == "LINT-ANNOT") continue;  // annotations cannot self-allow
    auto uit = by_rel.find(f.file);
    if (uit == by_rel.end()) continue;
    for (Allow& a : uit->second->allows) {
      if (a.malformed || a.reason.empty()) continue;
      if (a.target_line != f.line) continue;
      if (std::find(a.rules.begin(), a.rules.end(), f.rule) == a.rules.end())
        continue;
      f.suppressed = true;
      f.reason = a.reason;
      a.used = true;
      break;
    }
  }

  // ---- suppression pass 2: the baseline.
  if (!cfg.baseline.empty()) {
    std::string err;
    std::vector<BaselineEntry> base = load_baseline(cfg.baseline, err);
    if (!err.empty()) {
      Finding f;
      f.rule = "LINT-ANNOT";
      f.file = cfg.baseline;
      f.line = 0;
      f.message = err;
      r.findings.push_back(std::move(f));
    }
    for (Finding& f : r.findings) {
      if (f.suppressed || f.rule == "LINT-ANNOT") continue;
      auto uit = by_rel.find(f.file);
      for (BaselineEntry& e : base) {
        if (e.rule != f.rule || e.file != f.file) continue;
        std::string text;
        if (uit != by_rel.end() && f.line >= 1 &&
            f.line <= static_cast<int>(uit->second->lines.size())) {
          text = normalize_ws(uit->second->lines[f.line - 1]);
        }
        if (text != e.line_text) continue;
        f.suppressed = true;
        f.reason = e.reason;
        e.used = true;
        break;
      }
    }
    for (const BaselineEntry& e : base) {
      if (!e.used) {
        r.notes.push_back("stale baseline entry (no matching finding): " +
                          e.rule + "|" + e.file + "|" + e.line_text);
      }
    }
  }
  for (const Unit& u : units) {
    for (const Allow& a : u.allows) {
      if (!a.malformed && !a.reason.empty() && !a.used) {
        r.notes.push_back("stale annotation (suppresses nothing): " + u.rel +
                          ":" + std::to_string(a.line));
      }
    }
  }

  std::sort(r.findings.begin(), r.findings.end(),
            [](const Finding& a, const Finding& b) {
              if (a.file != b.file) return a.file < b.file;
              if (a.line != b.line) return a.line < b.line;
              return a.rule < b.rule;
            });
  return r;
}

std::string render_text(const Report& r) {
  std::ostringstream out;
  for (const Finding& f : r.findings) {
    if (f.suppressed) continue;
    out << f.file << ":" << f.line << ": error: [" << f.rule << "] "
        << f.message << "\n";
  }
  std::size_t suppressed = r.findings.size() - r.unsuppressed();
  for (const std::string& n : r.notes) out << "note: " << n << "\n";
  out << "xunet_lint: " << r.files_scanned << " files, " << r.unsuppressed()
      << " findings (" << suppressed << " suppressed)\n";
  return out.str();
}

std::string render_json(const Report& r) {
  std::string out;
  out += "{\n";
  out += "  \"schema\": \"xunet.lint.v1\",\n";
  out += "  \"tool\": \"xunet_lint\",\n";
  out += "  \"files_scanned\": " + std::to_string(r.files_scanned) + ",\n";
  out += "  \"total\": " + std::to_string(r.findings.size()) + ",\n";
  out += "  \"unsuppressed\": " + std::to_string(r.unsuppressed()) + ",\n";
  out += "  \"findings\": [";
  bool first = true;
  for (const Finding& f : r.findings) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    {\"rule\": \"";
    json_escape(out, f.rule);
    out += "\", \"file\": \"";
    json_escape(out, f.file);
    out += "\", \"line\": " + std::to_string(f.line);
    out += ", \"suppressed\": ";
    out += f.suppressed ? "true" : "false";
    out += ", \"reason\": \"";
    json_escape(out, f.reason);
    out += "\", \"message\": \"";
    json_escape(out, f.message);
    out += "\"}";
  }
  out += first ? "]\n" : "\n  ]\n";
  out += "}\n";
  return out;
}

}  // namespace xunet::lint
