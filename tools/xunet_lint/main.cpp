// main.cpp — xunet_lint CLI.
//
// Usage:
//   xunet_lint [options] [path...]
//     --root DIR              report paths relative to DIR (default ".")
//     --baseline FILE         grandfathered findings (rule|file|text|reason)
//     --state-table FILE      declared sighost transitions (fn list op)
//     --kern-state-table FILE declared kernel SocketState transitions
//                             (fn from[,from...]|* to)
//     --strict-unord          strict DET-UNORD-ITER: also flag unordered
//                             walks that build ordered artifacts in place
//     --compile-commands FILE add the translation units listed in a
//                             compile_commands.json (build-derived file list)
//     --filter PREFIX         keep only files whose root-relative path starts
//                             with PREFIX (e.g. `src`); repeatable.  Scopes a
//                             compile_commands-derived list to product code,
//                             excluding the linter's own sources and test
//                             fixtures, which intentionally contain the
//                             patterns the rules hunt.
//     --json FILE             also write machine-readable findings
//                             (schema xunet.lint.v1)
//     --dump-state            print the transitions extracted from the
//                             sighost source and exit (used to seed/refresh
//                             the table)
//
// Paths may be files or directories (scanned recursively for
// .hpp/.cpp/.h/.cc).  With no paths, `<root>/src` is scanned.
//
// Exit status: 0 clean, 1 unsuppressed findings, 2 usage/configuration error.
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "xunet_lint/lint.hpp"

namespace {

/// Pull the "file" entries out of a compile_commands.json.  This is not a
/// JSON parser: compile_commands is machine-written with one "file" key per
/// entry, which a string scan extracts reliably.
std::vector<std::string> files_from_compile_commands(const std::string& path) {
  std::vector<std::string> out;
  std::ifstream in(path, std::ios::binary);
  if (!in) return out;
  std::string s((std::istreambuf_iterator<char>(in)),
                std::istreambuf_iterator<char>());
  const std::string tag = "\"file\"";
  std::size_t p = 0;
  while ((p = s.find(tag, p)) != std::string::npos) {
    p += tag.size();
    std::size_t q1 = s.find('"', p);
    if (q1 == std::string::npos) break;
    std::size_t q2 = s.find('"', q1 + 1);
    if (q2 == std::string::npos) break;
    out.push_back(s.substr(q1 + 1, q2 - q1 - 1));
    p = q2 + 1;
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  xunet::lint::Config cfg;
  std::vector<std::string> paths;
  std::vector<std::string> filters;
  std::string json_path;
  std::string compile_commands;
  bool dump_state = false;

  for (int i = 1; i < argc; ++i) {
    std::string a = argv[i];
    auto need_val = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "xunet_lint: %s requires a value\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (a == "--root") cfg.root = need_val("--root");
    else if (a == "--baseline") cfg.baseline = need_val("--baseline");
    else if (a == "--state-table") cfg.state_table = need_val("--state-table");
    else if (a == "--kern-state-table")
      cfg.kern_state_table = need_val("--kern-state-table");
    else if (a == "--strict-unord") cfg.strict_unord = true;
    else if (a == "--compile-commands")
      compile_commands = need_val("--compile-commands");
    else if (a == "--filter") filters.push_back(need_val("--filter"));
    else if (a == "--json") json_path = need_val("--json");
    else if (a == "--dump-state") dump_state = true;
    else if (a == "--help" || a == "-h") {
      std::fprintf(stderr,
                   "usage: xunet_lint [--root DIR] [--baseline FILE] "
                   "[--state-table FILE]\n"
                   "                  [--kern-state-table FILE] "
                   "[--strict-unord]\n"
                   "                  [--compile-commands FILE] "
                   "[--filter PREFIX] [--json FILE]\n"
                   "                  [--dump-state] [path...]\n");
      return 0;
    } else if (!a.empty() && a[0] == '-') {
      std::fprintf(stderr, "xunet_lint: unknown option %s\n", a.c_str());
      return 2;
    } else {
      paths.push_back(a);
    }
  }
  if (!compile_commands.empty()) {
    std::error_code ec;
    for (const std::string& f : files_from_compile_commands(compile_commands)) {
      // Only lint translation units inside the tree (skip _deps etc.).
      auto canon = std::filesystem::weakly_canonical(f, ec).generic_string();
      auto root = std::filesystem::weakly_canonical(cfg.root, ec).generic_string();
      if (canon.compare(0, root.size(), root) == 0 &&
          canon.find("/_deps/") == std::string::npos &&
          std::filesystem::is_regular_file(f, ec)) {
        paths.push_back(f);
      }
    }
  }
  if (paths.empty()) paths.push_back(cfg.root + "/src");
  if (!filters.empty()) {
    std::error_code ec;
    auto root = std::filesystem::weakly_canonical(cfg.root, ec).generic_string();
    std::vector<std::string> kept;
    for (const std::string& p : paths) {
      auto canon = std::filesystem::weakly_canonical(p, ec).generic_string();
      std::string rel = canon.compare(0, root.size() + 1, root + "/") == 0
                            ? canon.substr(root.size() + 1)
                            : canon;
      for (const std::string& pre : filters) {
        if (rel.compare(0, pre.size(), pre) == 0) {
          kept.push_back(p);
          break;
        }
      }
    }
    paths = std::move(kept);
  }

  xunet::lint::Report r = xunet::lint::run_lint(paths, cfg);
  if (dump_state) {
    for (const auto& t : r.transitions) {
      std::printf("%-28s %-20s %s\n", t.fn.c_str(), t.list.c_str(),
                  t.op.c_str());
    }
    for (const auto& t : r.kern_transitions) {
      std::printf("%-28s %-20s %s\n", t.fn.c_str(), t.list.c_str(),
                  t.op.c_str());
    }
    return 0;
  }
  std::fputs(xunet::lint::render_text(r).c_str(), stdout);
  if (!json_path.empty()) {
    std::ofstream out(json_path, std::ios::binary);
    if (!out) {
      std::fprintf(stderr, "xunet_lint: cannot write %s\n", json_path.c_str());
      return 2;
    }
    out << xunet::lint::render_json(r);
  }
  return r.unsuppressed() == 0 ? 0 : 1;
}
