// statemachine.cpp — machine-parameterized state extraction and the table
// loaders shared by xunet_lint and tools/xunet_model.
#include "xunet_lint/statemachine.hpp"

#include <fstream>
#include <set>
#include <sstream>

namespace xunet::lint {
namespace {

/// Keywords that look like `ident (` but never open a function definition.
/// `constexpr` covers `if constexpr (...)`.
const std::set<std::string>& not_a_function() {
  static const std::set<std::string> k = {
      "if",       "for",      "while",     "switch",   "catch",
      "return",   "sizeof",   "alignof",   "decltype", "static_assert",
      "assert",   "throw",    "new",       "delete",   "case",
      "co_await", "co_return","co_yield",  "constexpr",
  };
  return k;
}

/// After a definition's parameter close paren, find the body '{' — skipping
/// cv/ref qualifiers, noexcept(...), trailing return types, and constructor
/// init lists.  Returns toks.size() when the construct is a call, a
/// declaration, or anything else without a body.
std::size_t find_body_open(const std::vector<Token>& t, std::size_t close) {
  std::size_t n = t.size();
  bool in_init = false;  // inside a constructor initializer list
  for (std::size_t j = close + 1; j < n;) {
    const std::string& s = t[j].text;
    if (s == ";" || s == "=") return n;  // declaration / `= default` / call
    if (s == "{") {
      // In an init list, `member{args}` braces are initializers, not the
      // body; the body brace follows a ')' or '}' initializer.
      if (in_init && t[j - 1].text != ")" && t[j - 1].text != "}") {
        std::size_t m = match_forward(t, j);
        if (m >= n) return n;
        j = m + 1;
        continue;
      }
      return j;
    }
    if (s == "(" || s == "[" || s == "<") {
      std::size_t m = match_forward(t, j);
      if (m >= n) return n;
      j = m + 1;
      continue;
    }
    if (s == ":") {
      in_init = true;
      ++j;
      continue;
    }
    if (s == "," || s == "::" || s == "&" || s == "&&" || s == "*" ||
        s == "..." || s == "->" || t[j].kind == Token::Kind::ident ||
        t[j].kind == Token::Kind::number) {
      ++j;
      continue;
    }
    return n;  // any other operator: this was a call expression
  }
  return n;
}

const std::map<std::string, const char*>& list_ops() {
  static const std::map<std::string, const char*> k = {
      {"emplace", "insert"}, {"try_emplace", "insert"}, {"insert", "insert"},
      {"erase", "erase"},    {"clear", "clear"},
  };
  return k;
}

}  // namespace

MachineSpec sighost_machine() {
  MachineSpec s;
  s.name = "sighost";
  // Member-list name -> the paper's list name (PAPER.md §5).
  s.lists = {
      {"services_", "service_list"},
      {"outgoing_", "outgoing_requests"},
      {"incoming_", "incoming_requests"},
      {"wait_bind_", "wait_for_bind"},
      {"vci_map_", "vci_mapping"},
  };
  return s;
}

MachineSpec kern_socket_machine() {
  MachineSpec s;
  s.name = "kern_socket";
  s.state_field = "state";
  s.state_enum = "SocketState";
  return s;
}

std::vector<FnSpan> function_spans(const std::vector<Token>& t) {
  std::vector<FnSpan> spans;
  for (std::size_t i = 0; i + 1 < t.size(); ++i) {
    if (t[i].kind != Token::Kind::ident || t[i + 1].text != "(") continue;
    if (not_a_function().count(t[i].text) != 0) continue;
    // Member calls (`obj.fn(`, `p->fn(`) are never definitions.
    if (i > 0 && (t[i - 1].text == "." || t[i - 1].text == "->")) continue;
    std::size_t close = match_forward(t, i + 1);
    if (close >= t.size()) continue;
    std::size_t body = find_body_open(t, close);
    if (body >= t.size()) continue;
    std::size_t end = match_forward(t, body);
    if (end >= t.size()) continue;
    spans.push_back({t[i].text, body, end});
    // Skip the whole body: C++ has no nested named definitions worth
    // tracking, and skipping prevents `ident (...) {` shapes inside the
    // body from masquerading as inner functions.
    i = end;
  }
  return spans;
}

std::vector<Transition> extract_machine(const Unit& u,
                                        const MachineSpec& spec) {
  const std::vector<Token>& t = u.toks;
  std::vector<FnSpan> spans = function_spans(t);
  auto fn_at = [&](std::size_t k) -> std::string {
    for (const FnSpan& s : spans) {
      if (s.begin < k && k < s.end) return s.name;
    }
    return "<file-scope>";
  };
  std::vector<Transition> out;
  std::set<std::string> seen;
  auto record = [&](std::string fn, const std::string& list,
                    const std::string& op, int line) {
    std::string key = fn + "|" + list + "|" + op;
    if (!seen.insert(key).second) return;
    Transition tr;
    tr.fn = std::move(fn);
    tr.list = list;
    tr.op = op;
    tr.line = line;
    out.push_back(std::move(tr));
  };
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (t[i].kind != Token::Kind::ident) continue;
    auto lit = spec.lists.find(t[i].text);
    if (lit != spec.lists.end() && i + 2 < t.size()) {
      if (t[i + 1].text == "." && t[i + 2].kind == Token::Kind::ident) {
        auto oit = list_ops().find(t[i + 2].text);
        if (oit != list_ops().end()) {
          record(fn_at(i), lit->second, oit->second, t[i].line);
        }
        continue;
      }
      // `list_[key] = value;` inserts through operator[].
      if (t[i + 1].text == "[") {
        std::size_t cb = match_forward(t, i + 1);
        if (cb + 1 < t.size() && t[cb + 1].text == "=") {
          record(fn_at(i), lit->second, "insert", t[i].line);
        }
        continue;
      }
    }
    // `obj.state = SocketState::bound` — the `.`/`->` requirement excludes
    // default member initializers (`SocketState state = SocketState::...`).
    if (!spec.state_enum.empty() && t[i].text == spec.state_field && i > 0 &&
        (t[i - 1].text == "." || t[i - 1].text == "->") && i + 4 < t.size() &&
        t[i + 1].text == "=" && t[i + 2].text == spec.state_enum &&
        t[i + 3].text == "::" && t[i + 4].kind == Token::Kind::ident) {
      record(fn_at(i), t[i + 4].text, "assign", t[i].line);
    }
  }
  return out;
}

std::vector<Transition> extract_transitions(const Unit& u) {
  return extract_machine(u, sighost_machine());
}

std::vector<Transition> load_state_table(const std::string& path,
                                         std::string& err) {
  std::vector<Transition> out;
  std::ifstream in(path);
  if (!in) {
    err = "cannot read state table: " + path;
    return out;
  }
  std::string line;
  int lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    std::size_t hash = line.find('#');
    if (hash != std::string::npos) line = line.substr(0, hash);
    std::istringstream ss(line);
    Transition tr;
    tr.line = lineno;
    if (!(ss >> tr.fn >> tr.list >> tr.op)) {
      if (!tr.fn.empty()) {
        err = "state table line " + std::to_string(lineno) +
              ": expected '<fn> <list> <op>'";
        return {};
      }
      continue;  // blank / comment-only line
    }
    std::string extra;
    if (ss >> extra) {
      err = "state table line " + std::to_string(lineno) +
            ": trailing tokens after '<fn> <list> <op>'";
      return {};
    }
    out.push_back(std::move(tr));
  }
  return out;
}

std::vector<MachineEdge> load_machine_table(const std::string& path,
                                            std::string& err) {
  std::vector<MachineEdge> out;
  std::ifstream in(path);
  if (!in) {
    err = "cannot read machine table: " + path;
    return out;
  }
  std::string line;
  int lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    std::size_t hash = line.find('#');
    if (hash != std::string::npos) line = line.substr(0, hash);
    std::istringstream ss(line);
    MachineEdge e;
    e.line = lineno;
    std::string from;
    if (!(ss >> e.fn)) continue;  // blank / comment-only line
    if (!(ss >> from >> e.to)) {
      err = "machine table line " + std::to_string(lineno) +
            ": expected '<fn> <from[,from...]|*> <to>'";
      return {};
    }
    std::string extra;
    if (ss >> extra) {
      err = "machine table line " + std::to_string(lineno) +
            ": trailing tokens after '<fn> <from> <to>'";
      return {};
    }
    std::size_t b = 0;
    while (b <= from.size()) {
      std::size_t c = from.find(',', b);
      std::string one =
          from.substr(b, c == std::string::npos ? c : c - b);
      if (one.empty()) {
        err = "machine table line " + std::to_string(lineno) +
              ": empty source state in '" + from + "'";
        return {};
      }
      e.from.push_back(std::move(one));
      if (c == std::string::npos) break;
      b = c + 1;
    }
    out.push_back(std::move(e));
  }
  return out;
}

std::vector<Transition> machine_to_transitions(
    const std::vector<MachineEdge>& edges) {
  std::vector<Transition> out;
  std::set<std::string> seen;
  for (const MachineEdge& e : edges) {
    if (!seen.insert(e.fn + "|" + e.to).second) continue;
    Transition tr;
    tr.fn = e.fn;
    tr.list = e.to;
    tr.op = "assign";
    tr.line = e.line;
    out.push_back(std::move(tr));
  }
  return out;
}

std::vector<ModelAssume> load_model_assumes(const std::string& path,
                                            std::string& err) {
  std::vector<ModelAssume> out;
  std::ifstream in(path);
  if (!in) {
    err = "cannot read table: " + path;
    return out;
  }
  const std::string tag = "xunet-model:";
  std::string line;
  int lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    std::size_t at = line.find(tag);
    if (at == std::string::npos) continue;
    std::size_t open = line.find('(', at);
    std::size_t close = open == std::string::npos
                            ? std::string::npos
                            : line.find(')', open);
    std::size_t dash = close == std::string::npos
                           ? std::string::npos
                           : line.find("--", close);
    if (line.find("assume-reached", at) == std::string::npos ||
        close == std::string::npos || dash == std::string::npos) {
      err = "table line " + std::to_string(lineno) +
            ": malformed model annotation; expected '# xunet-model: "
            "assume-reached(<fn> <a> <b>) -- <reason>'";
      return {};
    }
    ModelAssume a;
    a.line = lineno;
    std::istringstream ss(line.substr(open + 1, close - open - 1));
    std::string part;
    while (ss >> part) a.key.push_back(std::move(part));
    std::size_t rb = line.find_first_not_of(" \t", dash + 2);
    if (rb != std::string::npos) a.reason = line.substr(rb);
    if (a.key.empty() || a.reason.empty()) {
      err = "table line " + std::to_string(lineno) +
            ": assume-reached annotation needs a key and a reason";
      return {};
    }
    out.push_back(std::move(a));
  }
  return out;
}

}  // namespace xunet::lint
