// rules.cpp — the DET / LIFE / STATE / HYG matchers.
//
// Matchers are token-level heuristics, deliberately simple: each one is
// calibrated against the fixture corpus in tests/lint_fixtures/, and every
// justified real-world exception goes through an allow(...) annotation or
// the baseline — never through loosening a matcher.
#include "xunet_lint/rules.hpp"

#include <algorithm>
#include <cctype>
#include <map>

namespace xunet::lint {
namespace {

bool path_has(const std::string& rel, const char* needle) {
  return rel.find(needle) != std::string::npos;
}

void add(std::vector<Finding>& out, const Unit& u, const std::string& rule,
         int line, std::string msg) {
  Finding f;
  f.rule = rule;
  f.file = u.rel;
  f.line = line;
  f.message = std::move(msg);
  out.push_back(std::move(f));
}

/// Idents whose presence in a loop body means the iteration order reaches
/// the event queue or the wire.
bool effectful_ident(const std::string& s) {
  static const std::set<std::string> kExact = {
      "schedule", "schedule_at", "arm",       "transmit_peer",
      "wire_send", "serialize",  "emit",      "complete",
  };
  if (kExact.count(s) != 0) return true;
  return s.find("send") != std::string::npos;
}

}  // namespace

// ----------------------------------------------------------------- DET

void rule_det_banned(const Unit& u, std::vector<Finding>& out) {
  // The deterministic RNG wrapper is the one place allowed to name the
  // primitives it replaces.
  if (path_has(u.rel, "util/rng")) return;
  static const std::map<std::string, const char*> kBanned = {
      {"rand", "libc rand() is seeded per-process; use util::Rng"},
      {"srand", "libc srand() is process-global; use util::Rng(seed)"},
      {"random_device", "std::random_device is nondeterministic by design; "
                        "use util::Rng"},
      {"mt19937", "std::mt19937 duplicates util::Rng without its seeding "
                  "discipline; use util::Rng"},
      {"mt19937_64", "std::mt19937_64 duplicates util::Rng; use util::Rng"},
      {"system_clock", "wall clocks diverge across runs; use sim::SimTime"},
      {"steady_clock", "wall clocks diverge across runs; use sim::SimTime"},
      {"high_resolution_clock",
       "wall clocks diverge across runs; use sim::SimTime"},
      {"gettimeofday", "wall clocks diverge across runs; use sim::SimTime"},
      {"clock_gettime", "wall clocks diverge across runs; use sim::SimTime"},
  };
  const std::vector<Token>& t = u.toks;
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (t[i].kind != Token::Kind::ident) continue;
    auto it = kBanned.find(t[i].text);
    if (it != kBanned.end()) {
      // Member accesses like `foo.rand` are not the libc symbol.
      if (i > 0 && (t[i - 1].text == "." || t[i - 1].text == "->")) continue;
      add(out, u, "DET-BANNED", t[i].line,
          "'" + t[i].text + "': " + it->second);
      continue;
    }
    // `time(nullptr)` / `time(NULL)` / `time(0)` — the bare name is too
    // common to ban outright, so require the wall-clock call shape.
    if (t[i].text == "time" && i + 2 < t.size() && t[i + 1].text == "(" &&
        (t[i + 2].text == "nullptr" || t[i + 2].text == "NULL" ||
         t[i + 2].text == "0") &&
        i + 3 < t.size() && t[i + 3].text == ")") {
      if (i > 0 && (t[i - 1].text == "." || t[i - 1].text == "->")) continue;
      add(out, u, "DET-BANNED", t[i].line,
          "time(...) reads the wall clock; use sim::SimTime");
    }
  }
}

namespace {

/// Strict mode: idents that build an ordered artifact (JSON/JSONL emitters
/// and friends) directly from iteration order.
bool ordered_artifact_ident(const std::string& s) {
  std::string lower;
  lower.reserve(s.size());
  for (char c : s) lower += static_cast<char>(std::tolower(c));
  return lower.find("json") != std::string::npos ||
         lower.find("jsonl") != std::string::npos || lower == "append" ||
         lower == "write_line" || lower == "writeline";
}

/// Strict mode exemption: a loop that fills a sequence and sorts it right
/// after is the CORRECT pattern (snapshot-then-sort); look for sort /
/// stable_sort in the loop body or shortly after it.
bool sorted_nearby(const std::vector<Token>& t, std::size_t body_begin,
                   std::size_t body_end) {
  std::size_t horizon = std::min(t.size(), body_end + 48);
  int depth = 0;
  for (std::size_t j = body_begin; j < horizon; ++j) {
    // Past the loop body the scan must stay inside the enclosing scope: a
    // sort in the NEXT function does not order this loop's artifact.
    if (j > body_end) {
      const std::string& s = t[j].text;
      if (s == "{") ++depth;
      else if (s == "}" && --depth < 0) break;
    }
    if (t[j].kind == Token::Kind::ident &&
        (t[j].text == "sort" || t[j].text == "stable_sort")) {
      return true;
    }
  }
  return false;
}

}  // namespace

void rule_det_unord_iter(const Unit& u, const std::set<std::string>& unordered,
                         bool strict, std::vector<Finding>& out) {
  const std::vector<Token>& t = u.toks;
  for (std::size_t i = 0; i + 1 < t.size(); ++i) {
    if (t[i].text != "for" || t[i + 1].text != "(") continue;
    std::size_t close = match_forward(t, i + 1);
    if (close >= t.size()) continue;
    // Find the range-for ':' at parenthesis depth 1 ("::" is one token, so
    // it cannot be confused with it).
    std::size_t colon = close;
    int depth = 0;
    for (std::size_t j = i + 1; j < close; ++j) {
      const std::string& s = t[j].text;
      if (s == "(" || s == "[" || s == "{") ++depth;
      else if (s == ")" || s == "]" || s == "}") --depth;
      else if (s == ":" && depth == 1) {
        colon = j;
        break;
      }
    }
    if (colon == close) continue;  // classic for, not range-for
    // Only a bare identifier range: `for (... : name_)`.  Expressions like
    // `m.keys()` or `ports_[i]->queues` already pick their own order.
    if (close - colon != 2 || t[colon + 1].kind != Token::Kind::ident) continue;
    const std::string& name = t[colon + 1].text;
    if (unordered.count(name) == 0) continue;
    // Body extent: balanced block or single statement.
    std::size_t body_begin = close + 1;
    std::size_t body_end;
    if (body_begin < t.size() && t[body_begin].text == "{") {
      body_end = match_forward(t, body_begin);
    } else {
      body_end = body_begin;
      while (body_end < t.size() && t[body_end].text != ";") ++body_end;
    }
    bool flagged = false;
    for (std::size_t j = body_begin; j < body_end && j < t.size(); ++j) {
      if (t[j].kind == Token::Kind::ident && effectful_ident(t[j].text)) {
        add(out, u, "DET-UNORD-ITER", t[i].line,
            "iteration over unordered container '" + name +
                "' reaches the event queue or the wire (via '" + t[j].text +
                "'); hash order is not part of the replayed state — iterate "
                "a sorted snapshot");
        flagged = true;
        break;
      }
    }
    if (!strict || flagged) continue;
    // Strict mode: the body builds an ordered artifact in place.  A loop
    // whose result is sorted in or right after the body is the sanctioned
    // snapshot-then-sort idiom and stays clean.
    for (std::size_t j = body_begin; j < body_end && j < t.size(); ++j) {
      // `out << ...` in the body appends to a stream in hash order.
      if (t[j].text == "<<" && !sorted_nearby(t, body_begin, body_end)) {
        add(out, u, "DET-UNORD-ITER", t[i].line,
            "strict: iteration over unordered container '" + name +
                "' appends to a stream in hash order; collect into a "
                "snapshot and sort it before emitting");
        break;
      }
      if (t[j].kind != Token::Kind::ident) continue;
      bool emitter = ordered_artifact_ident(t[j].text) || t[j].text == "puts" ||
                     t[j].text == "printf" || t[j].text == "fprintf";
      bool seq_build =
          (t[j].text == "push_back" || t[j].text == "emplace_back") &&
          !sorted_nearby(t, body_begin, body_end);
      if (emitter || seq_build) {
        add(out, u, "DET-UNORD-ITER", t[i].line,
            "strict: iteration over unordered container '" + name +
                "' builds an ordered artifact (via '" + t[j].text +
                "') in hash order; collect into a snapshot and sort it "
                "before emitting");
        break;
      }
    }
  }
}

void rule_det_ptr_key(const Unit& u, std::vector<Finding>& out) {
  const std::vector<Token>& t = u.toks;
  for (std::size_t i = 0; i + 4 < t.size(); ++i) {
    if (t[i].text != "std" || t[i + 1].text != "::") continue;
    const std::string& k = t[i + 2].text;
    if (k != "map" && k != "set" && k != "multimap" && k != "multiset")
      continue;
    if (t[i + 3].text != "<") continue;
    std::size_t close = match_forward(t, i + 3);
    if (close >= t.size()) continue;
    // First template argument: up to the ',' at angle depth 1 (or the close
    // for std::set).
    std::size_t last = i + 3;
    int depth = 0;
    for (std::size_t j = i + 3; j <= close; ++j) {
      const std::string& s = t[j].text;
      if (s == "<" || s == "(" || s == "[") ++depth;
      else if (s == ">" || s == ")" || s == "]") --depth;
      else if (s == ">>") depth -= 2;
      if ((s == "," && depth == 1) || j == close) {
        last = j - 1;
        break;
      }
    }
    if (t[last].text == "*") {
      add(out, u, "DET-PTR-KEY", t[i].line,
          "std::" + k + " keyed by a pointer orders by address, which varies "
          "run to run; key by a stable id instead");
    }
  }
}

// ---------------------------------------------------------------- LIFE

void rule_life_ref_capture(const Unit& u, std::vector<Finding>& out) {
  static const std::set<std::string> kSinks = {"schedule", "schedule_at",
                                               "arm"};
  const std::vector<Token>& t = u.toks;
  for (std::size_t i = 0; i + 1 < t.size(); ++i) {
    if (t[i].kind != Token::Kind::ident || kSinks.count(t[i].text) == 0)
      continue;
    if (t[i + 1].text != "(") continue;
    std::size_t close = match_forward(t, i + 1);
    if (close >= t.size()) continue;
    for (std::size_t j = i + 2; j < close; ++j) {
      if (t[j].text != "[") continue;
      std::size_t cb = match_forward(t, j);
      if (cb >= close) continue;
      // A lambda introducer is a '[...]' followed by '(' , '{' or 'mutable'.
      if (cb + 1 >= t.size()) continue;
      const std::string& nxt = t[cb + 1].text;
      if (nxt != "(" && nxt != "{" && nxt != "mutable") continue;
      for (std::size_t c = j + 1; c < cb; ++c) {
        bool capture_pos = c == j + 1 || t[c - 1].text == ",";
        if (capture_pos && (t[c].text == "&" || t[c].text == "&&")) {
          // Anchor at the sink call, not the capture: that is the statement
          // line an annotation naturally sits above.
          add(out, u, "LIFE-REF-CAPTURE", t[i].line,
              "by-reference lambda capture passed to '" + t[i].text +
                  "': the pooled engine runs this after the enclosing frame "
                  "is gone — capture by value (or a weak liveness token)");
          break;
        }
      }
      j = cb;  // skip past this lambda's capture list
    }
  }
}

void rule_life_timer_rearm(const Unit& u, std::vector<Finding>& out) {
  static const std::set<std::string> kSinks = {"schedule", "schedule_at",
                                               "arm"};
  const std::vector<Token>& t = u.toks;
  // Argument spans of every sink call: lambdas inside them are
  // LIFE-REF-CAPTURE's territory, not this rule's.
  std::vector<std::pair<std::size_t, std::size_t>> sink_args;
  for (std::size_t i = 0; i + 1 < t.size(); ++i) {
    if (t[i].kind != Token::Kind::ident || kSinks.count(t[i].text) == 0)
      continue;
    if (t[i + 1].text != "(") continue;
    std::size_t close = match_forward(t, i + 1);
    if (close < t.size()) sink_args.emplace_back(i + 1, close);
  }
  auto inside_sink = [&](std::size_t k) {
    for (const auto& [b, e] : sink_args) {
      if (b < k && k < e) return true;
    }
    return false;
  };
  for (std::size_t j = 0; j + 1 < t.size(); ++j) {
    if (t[j].text != "[") continue;
    std::size_t cb = match_forward(t, j);
    if (cb + 1 >= t.size()) continue;
    // A lambda introducer is a '[...]' followed by '(', '{' or 'mutable'.
    const std::string& nxt = t[cb + 1].text;
    if (nxt != "(" && nxt != "{" && nxt != "mutable") continue;
    if (inside_sink(j)) {
      j = cb;
      continue;
    }
    bool by_ref = false;
    for (std::size_t c = j + 1; c < cb; ++c) {
      bool capture_pos = c == j + 1 || t[c - 1].text == ",";
      if (capture_pos && (t[c].text == "&" || t[c].text == "&&")) {
        by_ref = true;
        break;
      }
    }
    if (!by_ref) {
      j = cb;
      continue;
    }
    // Locate the lambda body.
    std::size_t b = cb + 1;
    if (b < t.size() && t[b].text == "(") b = match_forward(t, b) + 1;
    while (b < t.size() && t[b].text != "{" && t[b].text != ";" &&
           t[b].text != ")") {
      if (t[b].text == "<" || t[b].text == "(") {
        b = match_forward(t, b) + 1;
        continue;
      }
      ++b;
    }
    if (b >= t.size() || t[b].text != "{") {
      j = cb;
      continue;
    }
    std::size_t body_end = match_forward(t, b);
    for (std::size_t k = b + 1; k < body_end && k < t.size(); ++k) {
      if (t[k].kind == Token::Kind::ident && kSinks.count(t[k].text) != 0) {
        add(out, u, "LIFE-TIMER-REARM", t[j].line,
            "by-reference capture in a lambda that re-arms via '" + t[k].text +
                "': every later firing of the chain runs after the frame the "
                "capture was taken in is gone — capture by value (or a weak "
                "liveness token)");
        break;
      }
    }
    j = cb;
  }
}

// ----------------------------------------------------------------- HYG

void rule_hyg(const Unit& u, std::vector<Finding>& out) {
  if (u.is_header) {
    bool has_pragma = false;
    for (const Directive& d : u.directives) {
      if (d.text.find("#pragma") == 0 &&
          d.text.find("once") != std::string::npos) {
        has_pragma = true;
        break;
      }
    }
    if (!has_pragma) {
      add(out, u, "HYG-PRAGMA-ONCE", 1,
          "header lacks '#pragma once' (every xunet header uses it)");
    }
  }
  static const std::map<std::string, const char*> kBannedIncl = {
      {"chrono", "wall-clock time; simulation time is sim::SimTime"},
      {"ctime", "wall-clock time; simulation time is sim::SimTime"},
      {"thread", "the simulator is single-threaded by design"},
      {"mutex", "the simulator is single-threaded by design"},
      {"shared_mutex", "the simulator is single-threaded by design"},
      {"condition_variable", "the simulator is single-threaded by design"},
      {"future", "the simulator is single-threaded by design"},
      {"random", "randomness flows through util::Rng so runs replay"},
      {"iostream", "components report through util::Logger / obs, not stdio "
                   "streams"},
  };
  for (const Directive& d : u.directives) {
    if (d.text.find("#include") != 0) continue;
    std::size_t lt = d.text.find('<');
    std::size_t gt = d.text.find('>', lt == std::string::npos ? 0 : lt);
    if (lt != std::string::npos && gt != std::string::npos) {
      std::string hdr = d.text.substr(lt + 1, gt - lt - 1);
      auto it = kBannedIncl.find(hdr);
      if (it != kBannedIncl.end() &&
          !(hdr == "random" && path_has(u.rel, "util/rng"))) {
        add(out, u, "HYG-BANNED-INCLUDE", d.line,
            "<" + hdr + ">: " + it->second);
      }
      continue;
    }
    std::size_t q1 = d.text.find('"');
    std::size_t q2 = d.text.find('"', q1 == std::string::npos ? 0 : q1 + 1);
    if (q1 != std::string::npos && q2 != std::string::npos) {
      std::string hdr = d.text.substr(q1 + 1, q2 - q1 - 1);
      if (hdr.find("../") != std::string::npos) {
        add(out, u, "HYG-REL-INCLUDE", d.line,
            "\"" + hdr + "\" escapes the include root; include "
            "root-relative (\"kern/kernel.hpp\") instead");
      }
    }
  }
}

// --------------------------------------------------------------- STATE
//
// Extraction and table parsing live in statemachine.cpp (shared with
// tools/xunet_model); only the exhaustive both-direction diff is a rule.

void rule_state(const Unit& u, const std::vector<Transition>& extracted,
                const std::vector<Transition>& declared,
                const std::string& machine, const std::string& table,
                std::vector<Finding>& out) {
  auto key = [](const Transition& t) { return t.fn + "|" + t.list + "|" + t.op; };
  auto describe = [](const Transition& t) {
    // Assignment machines read better as "sets state 'x'" than as an op on
    // a list.
    if (t.op == "assign") return "sets state '" + t.list + "'";
    return "does '" + t.op + "' on " + t.list;
  };
  std::set<std::string> decl;
  for (const Transition& t : declared) decl.insert(key(t));
  std::set<std::string> got;
  for (const Transition& t : extracted) got.insert(key(t));
  for (const Transition& t : extracted) {
    if (decl.count(key(t)) == 0) {
      add(out, u, "STATE-UNDECLARED", t.line,
          "undeclared " + machine + " transition: " + t.fn + " " +
              describe(t) + " — declare it in the transition table (" +
              table + ") or remove the mutation");
    }
  }
  for (const Transition& t : declared) {
    if (got.count(key(t)) == 0) {
      add(out, u, "STATE-MISSING", 1,
          "declared " + machine + " transition has no code site: " + t.fn +
              " " + describe(t) + " (stale table entry, line " +
              std::to_string(t.line) + ")");
    }
  }
}

}  // namespace xunet::lint
