// rules.cpp — the DET / LIFE / STATE / HYG matchers.
//
// Matchers are token-level heuristics, deliberately simple: each one is
// calibrated against the fixture corpus in tests/lint_fixtures/, and every
// justified real-world exception goes through an allow(...) annotation or
// the baseline — never through loosening a matcher.
#include "xunet_lint/rules.hpp"

#include <algorithm>
#include <fstream>
#include <map>
#include <sstream>

namespace xunet::lint {
namespace {

bool path_has(const std::string& rel, const char* needle) {
  return rel.find(needle) != std::string::npos;
}

void add(std::vector<Finding>& out, const Unit& u, const std::string& rule,
         int line, std::string msg) {
  Finding f;
  f.rule = rule;
  f.file = u.rel;
  f.line = line;
  f.message = std::move(msg);
  out.push_back(std::move(f));
}

/// Idents whose presence in a loop body means the iteration order reaches
/// the event queue or the wire.
bool effectful_ident(const std::string& s) {
  static const std::set<std::string> kExact = {
      "schedule", "schedule_at", "arm",       "transmit_peer",
      "wire_send", "serialize",  "emit",      "complete",
  };
  if (kExact.count(s) != 0) return true;
  return s.find("send") != std::string::npos;
}

}  // namespace

// ----------------------------------------------------------------- DET

void rule_det_banned(const Unit& u, std::vector<Finding>& out) {
  // The deterministic RNG wrapper is the one place allowed to name the
  // primitives it replaces.
  if (path_has(u.rel, "util/rng")) return;
  static const std::map<std::string, const char*> kBanned = {
      {"rand", "libc rand() is seeded per-process; use util::Rng"},
      {"srand", "libc srand() is process-global; use util::Rng(seed)"},
      {"random_device", "std::random_device is nondeterministic by design; "
                        "use util::Rng"},
      {"mt19937", "std::mt19937 duplicates util::Rng without its seeding "
                  "discipline; use util::Rng"},
      {"mt19937_64", "std::mt19937_64 duplicates util::Rng; use util::Rng"},
      {"system_clock", "wall clocks diverge across runs; use sim::SimTime"},
      {"steady_clock", "wall clocks diverge across runs; use sim::SimTime"},
      {"high_resolution_clock",
       "wall clocks diverge across runs; use sim::SimTime"},
      {"gettimeofday", "wall clocks diverge across runs; use sim::SimTime"},
      {"clock_gettime", "wall clocks diverge across runs; use sim::SimTime"},
  };
  const std::vector<Token>& t = u.toks;
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (t[i].kind != Token::Kind::ident) continue;
    auto it = kBanned.find(t[i].text);
    if (it != kBanned.end()) {
      // Member accesses like `foo.rand` are not the libc symbol.
      if (i > 0 && (t[i - 1].text == "." || t[i - 1].text == "->")) continue;
      add(out, u, "DET-BANNED", t[i].line,
          "'" + t[i].text + "': " + it->second);
      continue;
    }
    // `time(nullptr)` / `time(NULL)` / `time(0)` — the bare name is too
    // common to ban outright, so require the wall-clock call shape.
    if (t[i].text == "time" && i + 2 < t.size() && t[i + 1].text == "(" &&
        (t[i + 2].text == "nullptr" || t[i + 2].text == "NULL" ||
         t[i + 2].text == "0") &&
        i + 3 < t.size() && t[i + 3].text == ")") {
      if (i > 0 && (t[i - 1].text == "." || t[i - 1].text == "->")) continue;
      add(out, u, "DET-BANNED", t[i].line,
          "time(...) reads the wall clock; use sim::SimTime");
    }
  }
}

void rule_det_unord_iter(const Unit& u, const std::set<std::string>& unordered,
                         std::vector<Finding>& out) {
  const std::vector<Token>& t = u.toks;
  for (std::size_t i = 0; i + 1 < t.size(); ++i) {
    if (t[i].text != "for" || t[i + 1].text != "(") continue;
    std::size_t close = match_forward(t, i + 1);
    if (close >= t.size()) continue;
    // Find the range-for ':' at parenthesis depth 1 ("::" is one token, so
    // it cannot be confused with it).
    std::size_t colon = close;
    int depth = 0;
    for (std::size_t j = i + 1; j < close; ++j) {
      const std::string& s = t[j].text;
      if (s == "(" || s == "[" || s == "{") ++depth;
      else if (s == ")" || s == "]" || s == "}") --depth;
      else if (s == ":" && depth == 1) {
        colon = j;
        break;
      }
    }
    if (colon == close) continue;  // classic for, not range-for
    // Only a bare identifier range: `for (... : name_)`.  Expressions like
    // `m.keys()` or `ports_[i]->queues` already pick their own order.
    if (close - colon != 2 || t[colon + 1].kind != Token::Kind::ident) continue;
    const std::string& name = t[colon + 1].text;
    if (unordered.count(name) == 0) continue;
    // Body extent: balanced block or single statement.
    std::size_t body_begin = close + 1;
    std::size_t body_end;
    if (body_begin < t.size() && t[body_begin].text == "{") {
      body_end = match_forward(t, body_begin);
    } else {
      body_end = body_begin;
      while (body_end < t.size() && t[body_end].text != ";") ++body_end;
    }
    for (std::size_t j = body_begin; j < body_end && j < t.size(); ++j) {
      if (t[j].kind == Token::Kind::ident && effectful_ident(t[j].text)) {
        add(out, u, "DET-UNORD-ITER", t[i].line,
            "iteration over unordered container '" + name +
                "' reaches the event queue or the wire (via '" + t[j].text +
                "'); hash order is not part of the replayed state — iterate "
                "a sorted snapshot");
        break;
      }
    }
  }
}

void rule_det_ptr_key(const Unit& u, std::vector<Finding>& out) {
  const std::vector<Token>& t = u.toks;
  for (std::size_t i = 0; i + 4 < t.size(); ++i) {
    if (t[i].text != "std" || t[i + 1].text != "::") continue;
    const std::string& k = t[i + 2].text;
    if (k != "map" && k != "set" && k != "multimap" && k != "multiset")
      continue;
    if (t[i + 3].text != "<") continue;
    std::size_t close = match_forward(t, i + 3);
    if (close >= t.size()) continue;
    // First template argument: up to the ',' at angle depth 1 (or the close
    // for std::set).
    std::size_t last = i + 3;
    int depth = 0;
    for (std::size_t j = i + 3; j <= close; ++j) {
      const std::string& s = t[j].text;
      if (s == "<" || s == "(" || s == "[") ++depth;
      else if (s == ">" || s == ")" || s == "]") --depth;
      else if (s == ">>") depth -= 2;
      if ((s == "," && depth == 1) || j == close) {
        last = j - 1;
        break;
      }
    }
    if (t[last].text == "*") {
      add(out, u, "DET-PTR-KEY", t[i].line,
          "std::" + k + " keyed by a pointer orders by address, which varies "
          "run to run; key by a stable id instead");
    }
  }
}

// ---------------------------------------------------------------- LIFE

void rule_life_ref_capture(const Unit& u, std::vector<Finding>& out) {
  static const std::set<std::string> kSinks = {"schedule", "schedule_at",
                                               "arm"};
  const std::vector<Token>& t = u.toks;
  for (std::size_t i = 0; i + 1 < t.size(); ++i) {
    if (t[i].kind != Token::Kind::ident || kSinks.count(t[i].text) == 0)
      continue;
    if (t[i + 1].text != "(") continue;
    std::size_t close = match_forward(t, i + 1);
    if (close >= t.size()) continue;
    for (std::size_t j = i + 2; j < close; ++j) {
      if (t[j].text != "[") continue;
      std::size_t cb = match_forward(t, j);
      if (cb >= close) continue;
      // A lambda introducer is a '[...]' followed by '(' , '{' or 'mutable'.
      if (cb + 1 >= t.size()) continue;
      const std::string& nxt = t[cb + 1].text;
      if (nxt != "(" && nxt != "{" && nxt != "mutable") continue;
      for (std::size_t c = j + 1; c < cb; ++c) {
        bool capture_pos = c == j + 1 || t[c - 1].text == ",";
        if (capture_pos && (t[c].text == "&" || t[c].text == "&&")) {
          // Anchor at the sink call, not the capture: that is the statement
          // line an annotation naturally sits above.
          add(out, u, "LIFE-REF-CAPTURE", t[i].line,
              "by-reference lambda capture passed to '" + t[i].text +
                  "': the pooled engine runs this after the enclosing frame "
                  "is gone — capture by value (or a weak liveness token)");
          break;
        }
      }
      j = cb;  // skip past this lambda's capture list
    }
  }
}

// ----------------------------------------------------------------- HYG

void rule_hyg(const Unit& u, std::vector<Finding>& out) {
  if (u.is_header) {
    bool has_pragma = false;
    for (const Directive& d : u.directives) {
      if (d.text.find("#pragma") == 0 &&
          d.text.find("once") != std::string::npos) {
        has_pragma = true;
        break;
      }
    }
    if (!has_pragma) {
      add(out, u, "HYG-PRAGMA-ONCE", 1,
          "header lacks '#pragma once' (every xunet header uses it)");
    }
  }
  static const std::map<std::string, const char*> kBannedIncl = {
      {"chrono", "wall-clock time; simulation time is sim::SimTime"},
      {"ctime", "wall-clock time; simulation time is sim::SimTime"},
      {"thread", "the simulator is single-threaded by design"},
      {"mutex", "the simulator is single-threaded by design"},
      {"shared_mutex", "the simulator is single-threaded by design"},
      {"condition_variable", "the simulator is single-threaded by design"},
      {"future", "the simulator is single-threaded by design"},
      {"random", "randomness flows through util::Rng so runs replay"},
      {"iostream", "components report through util::Logger / obs, not stdio "
                   "streams"},
  };
  for (const Directive& d : u.directives) {
    if (d.text.find("#include") != 0) continue;
    std::size_t lt = d.text.find('<');
    std::size_t gt = d.text.find('>', lt == std::string::npos ? 0 : lt);
    if (lt != std::string::npos && gt != std::string::npos) {
      std::string hdr = d.text.substr(lt + 1, gt - lt - 1);
      auto it = kBannedIncl.find(hdr);
      if (it != kBannedIncl.end() &&
          !(hdr == "random" && path_has(u.rel, "util/rng"))) {
        add(out, u, "HYG-BANNED-INCLUDE", d.line,
            "<" + hdr + ">: " + it->second);
      }
      continue;
    }
    std::size_t q1 = d.text.find('"');
    std::size_t q2 = d.text.find('"', q1 == std::string::npos ? 0 : q1 + 1);
    if (q1 != std::string::npos && q2 != std::string::npos) {
      std::string hdr = d.text.substr(q1 + 1, q2 - q1 - 1);
      if (hdr.find("../") != std::string::npos) {
        add(out, u, "HYG-REL-INCLUDE", d.line,
            "\"" + hdr + "\" escapes the include root; include "
            "root-relative (\"kern/kernel.hpp\") instead");
      }
    }
  }
}

// --------------------------------------------------------------- STATE

std::vector<Transition> extract_transitions(const Unit& u) {
  // Member-list name -> the paper's list name (PAPER.md §5).
  static const std::map<std::string, const char*> kLists = {
      {"services_", "service_list"},
      {"outgoing_", "outgoing_requests"},
      {"incoming_", "incoming_requests"},
      {"wait_bind_", "wait_for_bind"},
      {"vci_map_", "vci_mapping"},
  };
  static const std::map<std::string, const char*> kOps = {
      {"emplace", "insert"}, {"try_emplace", "insert"}, {"insert", "insert"},
      {"erase", "erase"},    {"clear", "clear"},
  };
  std::vector<Transition> out;
  std::set<std::string> seen;
  std::string fn = "<file-scope>";
  const std::vector<Token>& t = u.toks;
  auto record = [&](const std::string& list, const std::string& op, int line) {
    std::string key = fn + "|" + list + "|" + op;
    if (!seen.insert(key).second) return;
    Transition tr;
    tr.fn = fn;
    tr.list = list;
    tr.op = op;
    tr.line = line;
    out.push_back(std::move(tr));
  };
  for (std::size_t i = 0; i < t.size(); ++i) {
    // Track the enclosing member definition: `Sighost :: name (`.
    if (t[i].text == "Sighost" && i + 3 < t.size() && t[i + 1].text == "::" &&
        t[i + 2].kind == Token::Kind::ident && t[i + 3].text == "(") {
      fn = t[i + 2].text;
      continue;
    }
    if (t[i].kind != Token::Kind::ident) continue;
    auto lit = kLists.find(t[i].text);
    if (lit == kLists.end() || i + 2 >= t.size()) continue;
    if (t[i + 1].text == "." && t[i + 2].kind == Token::Kind::ident) {
      auto oit = kOps.find(t[i + 2].text);
      if (oit != kOps.end()) record(lit->second, oit->second, t[i].line);
      continue;
    }
    // `list_[key] = value;` inserts through operator[].
    if (t[i + 1].text == "[") {
      std::size_t cb = match_forward(t, i + 1);
      if (cb + 1 < t.size() && t[cb + 1].text == "=") {
        record(lit->second, "insert", t[i].line);
      }
    }
  }
  return out;
}

std::vector<Transition> load_state_table(const std::string& path,
                                         std::string& err) {
  std::vector<Transition> out;
  std::ifstream in(path);
  if (!in) {
    err = "cannot read state table: " + path;
    return out;
  }
  std::string line;
  int lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    std::size_t hash = line.find('#');
    if (hash != std::string::npos) line = line.substr(0, hash);
    std::istringstream ss(line);
    Transition tr;
    tr.line = lineno;
    if (!(ss >> tr.fn >> tr.list >> tr.op)) {
      std::string rest;
      if (!tr.fn.empty()) {
        err = "state table line " + std::to_string(lineno) +
              ": expected '<fn> <list> <op>'";
        return {};
      }
      continue;  // blank / comment-only line
    }
    std::string extra;
    if (ss >> extra) {
      err = "state table line " + std::to_string(lineno) +
            ": trailing tokens after '<fn> <list> <op>'";
      return {};
    }
    out.push_back(std::move(tr));
  }
  return out;
}

void rule_state(const Unit& u, const std::vector<Transition>& extracted,
                const std::vector<Transition>& declared,
                std::vector<Finding>& out) {
  auto key = [](const Transition& t) { return t.fn + "|" + t.list + "|" + t.op; };
  std::set<std::string> decl;
  for (const Transition& t : declared) decl.insert(key(t));
  std::set<std::string> got;
  for (const Transition& t : extracted) got.insert(key(t));
  for (const Transition& t : extracted) {
    if (decl.count(key(t)) == 0) {
      add(out, u, "STATE-UNDECLARED", t.line,
          "undeclared sighost transition: " + t.fn + " does '" + t.op +
              "' on " + t.list + " — declare it in the transition table "
              "(tools/xunet_lint/sighost_state.tbl) or remove the mutation");
    }
  }
  for (const Transition& t : declared) {
    if (got.count(key(t)) == 0) {
      add(out, u, "STATE-MISSING", 1,
          "declared transition has no code site: " + t.fn + " '" + t.op +
              "' on " + t.list + " (stale table entry, line " +
              std::to_string(t.line) + ")");
    }
  }
}

}  // namespace xunet::lint
