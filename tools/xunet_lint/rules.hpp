// rules.hpp — internal: per-family rule matchers over lexed units.  The
// driver (lint.cpp) composes them; tests drive them directly on fixtures.
#pragma once

#include <set>
#include <string>
#include <vector>

#include "xunet_lint/lint.hpp"
#include "xunet_lint/scan.hpp"

namespace xunet::lint {

/// DET-BANNED: wall clocks and libc/std randomness outside src/util/rng.
void rule_det_banned(const Unit& u, std::vector<Finding>& out);

/// DET-UNORD-ITER: range-for over a name in `unordered` whose body schedules
/// events or sends wire messages.  `unordered` is the union of the unit's
/// own declarations and its sibling header's (foo.cpp pairs with foo.hpp).
void rule_det_unord_iter(const Unit& u, const std::set<std::string>& unordered,
                         std::vector<Finding>& out);

/// DET-PTR-KEY: std::map/std::set keyed by a pointer type.
void rule_det_ptr_key(const Unit& u, std::vector<Finding>& out);

/// LIFE-REF-CAPTURE: by-reference lambda capture in an argument to
/// schedule/schedule_at/arm.
void rule_life_ref_capture(const Unit& u, std::vector<Finding>& out);

/// HYG-PRAGMA-ONCE, HYG-BANNED-INCLUDE, HYG-REL-INCLUDE.
void rule_hyg(const Unit& u, std::vector<Finding>& out);

/// Extract the sighost five-list transitions (fn, list, op) from a unit.
[[nodiscard]] std::vector<Transition> extract_transitions(const Unit& u);

/// Parse a transition table file: `fn list op` per line, `#` comments.
/// On malformed input `err` is set.
[[nodiscard]] std::vector<Transition> load_state_table(const std::string& path,
                                                       std::string& err);

/// STATE-UNDECLARED / STATE-MISSING: extracted vs declared, both directions.
void rule_state(const Unit& u, const std::vector<Transition>& extracted,
                const std::vector<Transition>& declared,
                std::vector<Finding>& out);

}  // namespace xunet::lint
