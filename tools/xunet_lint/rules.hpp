// rules.hpp — internal: per-family rule matchers over lexed units.  The
// driver (lint.cpp) composes them; tests drive them directly on fixtures.
// State-machine extraction and table parsing live in statemachine.hpp,
// shared with tools/xunet_model.
#pragma once

#include <set>
#include <string>
#include <vector>

#include "xunet_lint/lint.hpp"
#include "xunet_lint/scan.hpp"
#include "xunet_lint/statemachine.hpp"

namespace xunet::lint {

/// DET-BANNED: wall clocks and libc/std randomness outside src/util/rng.
void rule_det_banned(const Unit& u, std::vector<Finding>& out);

/// DET-UNORD-ITER: range-for over a name in `unordered` whose body schedules
/// events or sends wire messages.  `unordered` is the union of the unit's
/// own declarations and its sibling header's (foo.cpp pairs with foo.hpp).
/// With `strict`, additionally flags loops that build ordered artifacts in
/// place — JSON/JSONL emission, stream appends, or sequence push_back without
/// a sort of the result in sight.
void rule_det_unord_iter(const Unit& u, const std::set<std::string>& unordered,
                         bool strict, std::vector<Finding>& out);

/// DET-PTR-KEY: std::map/std::set keyed by a pointer type.
void rule_det_ptr_key(const Unit& u, std::vector<Finding>& out);

/// LIFE-REF-CAPTURE: by-reference lambda capture in an argument to
/// schedule/schedule_at/arm.
void rule_life_ref_capture(const Unit& u, std::vector<Finding>& out);

/// LIFE-TIMER-REARM: a by-reference lambda that itself calls
/// schedule/schedule_at/arm — a re-arm chain whose every firing outlives the
/// frame the capture was taken in.  Lambdas lexically inside a sink's
/// argument list are LIFE-REF-CAPTURE's to report, not this rule's.
void rule_life_timer_rearm(const Unit& u, std::vector<Finding>& out);

/// HYG-PRAGMA-ONCE, HYG-BANNED-INCLUDE, HYG-REL-INCLUDE.
void rule_hyg(const Unit& u, std::vector<Finding>& out);

/// STATE-UNDECLARED / STATE-MISSING: extracted vs declared, both directions.
/// `machine` labels the messages ("sighost", "kern_socket"); `table` names
/// the file an undeclared transition should be added to.
void rule_state(const Unit& u, const std::vector<Transition>& extracted,
                const std::vector<Transition>& declared,
                const std::string& machine, const std::string& table,
                std::vector<Finding>& out);

}  // namespace xunet::lint
