// lexer.cpp — a lightweight C++ lexer: enough to token-match project rules
// without false positives from comments, strings, or preprocessor lines.
#include "xunet_lint/scan.hpp"

#include <array>
#include <cctype>
#include <fstream>
#include <sstream>

namespace xunet::lint {
namespace {

bool ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_';
}
bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

std::string trim(const std::string& s) {
  std::size_t b = s.find_first_not_of(" \t\r");
  if (b == std::string::npos) return {};
  std::size_t e = s.find_last_not_of(" \t\r");
  return s.substr(b, e - b + 1);
}

/// Multi-character punctuators, longest first so greedy matching works.
const std::array<const char*, 23> kPuncts = {
    "<<=", ">>=", "...", "->*", "::", "->", "==", "!=", "<=", ">=", "&&",
    "||",  "<<",  ">>",  "++",  "--", "+=", "-=", "*=", "/=", "%=", "|=",
    "&=",
};

/// Parse one `xunet-lint:` annotation out of a comment body.
Allow parse_allow(const std::string& comment, int line) {
  Allow a;
  a.line = line;
  std::size_t tag = comment.find("xunet-lint");
  std::size_t open = comment.find("allow(", tag);
  std::size_t close = open == std::string::npos ? std::string::npos
                                                : comment.find(')', open);
  if (open == std::string::npos || close == std::string::npos) {
    a.malformed = true;
    return a;
  }
  std::string list = comment.substr(open + 6, close - open - 6);
  std::string cur;
  for (char c : list + ",") {
    if (c == ',') {
      cur = trim(cur);
      if (!cur.empty()) a.rules.push_back(cur);
      cur.clear();
    } else {
      cur += c;
    }
  }
  if (a.rules.empty()) a.malformed = true;
  std::size_t dash = comment.find("--", close);
  if (dash != std::string::npos) a.reason = trim(comment.substr(dash + 2));
  return a;
}

/// Collect identifiers declared as std::unordered_map / std::unordered_set
/// (members, locals, or parameters): `std :: unordered_x < ...balanced... >
/// [&*]* NAME`.
void collect_unordered(Unit& u) {
  const std::vector<Token>& t = u.toks;
  for (std::size_t i = 0; i + 4 < t.size(); ++i) {
    if (t[i].text != "std" || t[i + 1].text != "::") continue;
    const std::string& k = t[i + 2].text;
    if (k != "unordered_map" && k != "unordered_set" &&
        k != "unordered_multimap" && k != "unordered_multiset") {
      continue;
    }
    if (t[i + 3].text != "<") continue;
    std::size_t close = match_forward(t, i + 3);
    std::size_t j = close + 1;
    while (j < t.size() &&
           (t[j].text == "&" || t[j].text == "*" || t[j].text == "const")) {
      ++j;
    }
    if (j < t.size() && t[j].kind == Token::Kind::ident) {
      u.unordered_names.insert(t[j].text);
    }
  }
}

}  // namespace

std::size_t match_forward(const std::vector<Token>& toks, std::size_t open) {
  const std::string& o = toks[open].text;
  const bool angle = o == "<";
  int depth = 0;
  for (std::size_t i = open; i < toks.size(); ++i) {
    const std::string& s = toks[i].text;
    if (angle) {
      if (s == "<") ++depth;
      else if (s == "<<") depth += 2;
      else if (s == ">") --depth;
      else if (s == ">>") depth -= 2;
      else if (s == ";") return toks.size();  // not a template after all
    } else {
      if (s == "(" || s == "[" || s == "{") ++depth;
      else if (s == ")" || s == "]" || s == "}") --depth;
    }
    if (depth <= 0) return i;
  }
  return toks.size();
}

void lex_source(Unit& u, const std::string& text) {
  // Raw lines, for baseline matching and annotation targeting.
  {
    std::istringstream in(text);
    std::string line;
    while (std::getline(in, line)) {
      if (!line.empty() && line.back() == '\r') line.pop_back();
      u.lines.push_back(line);
    }
  }

  const std::size_t n = text.size();
  std::size_t i = 0;
  int line = 1;
  bool at_line_start = true;  // only whitespace seen since the last newline

  auto note_allow = [&](const std::string& comment, int cline) {
    if (comment.find("xunet-lint") == std::string::npos) return;
    Allow a = parse_allow(comment, cline);
    // A trailing annotation covers its own line; a standalone one covers
    // the next line.
    a.target_line = at_line_start ? cline + 1 : cline;
    u.allows.push_back(std::move(a));
  };

  while (i < n) {
    char c = text[i];
    if (c == '\n') {
      ++line;
      ++i;
      at_line_start = true;
      continue;
    }
    if (c == ' ' || c == '\t' || c == '\r' || c == '\f' || c == '\v') {
      ++i;
      continue;
    }
    // Preprocessor directive (only at line start): captured out-of-band,
    // with backslash continuations folded.
    if (c == '#' && at_line_start) {
      Directive d;
      d.line = line;
      while (i < n) {
        std::size_t eol = text.find('\n', i);
        if (eol == std::string::npos) eol = n;
        std::string part = text.substr(i, eol - i);
        if (!part.empty() && part.back() == '\r') part.pop_back();
        bool cont = !part.empty() && part.back() == '\\';
        if (cont) part.pop_back();
        d.text += part;
        i = eol < n ? eol + 1 : n;
        if (eol < n) ++line;
        if (!cont) break;
      }
      u.directives.push_back(std::move(d));
      at_line_start = true;
      continue;
    }
    if (c == '/' && i + 1 < n && text[i + 1] == '/') {
      std::size_t eol = text.find('\n', i);
      if (eol == std::string::npos) eol = n;
      note_allow(text.substr(i + 2, eol - i - 2), line);
      i = eol;
      continue;
    }
    if (c == '/' && i + 1 < n && text[i + 1] == '*') {
      int cline = line;
      std::size_t end = text.find("*/", i + 2);
      if (end == std::string::npos) end = n;
      std::string body = text.substr(i + 2, end - i - 2);
      note_allow(body, cline);
      for (char bc : body)
        if (bc == '\n') ++line;
      i = end == n ? n : end + 2;
      continue;
    }
    at_line_start = false;
    // Raw string literal.
    if (c == 'R' && i + 1 < n && text[i + 1] == '"') {
      std::size_t p = text.find('(', i + 2);
      if (p != std::string::npos) {
        std::string delim = ")" + text.substr(i + 2, p - i - 2) + "\"";
        std::size_t end = text.find(delim, p + 1);
        if (end == std::string::npos) end = n;
        for (std::size_t j = i; j < end && j < n; ++j)
          if (text[j] == '\n') ++line;
        u.toks.push_back({Token::Kind::string, "<raw>", line});
        i = end == n ? n : end + delim.size();
        continue;
      }
    }
    if (c == '"' || c == '\'') {
      char quote = c;
      std::size_t j = i + 1;
      while (j < n && text[j] != quote) {
        if (text[j] == '\\') ++j;
        if (text[j] == '\n') ++line;
        ++j;
      }
      u.toks.push_back({quote == '"' ? Token::Kind::string : Token::Kind::chr,
                        text.substr(i, j + 1 - i), line});
      i = j + 1;
      continue;
    }
    if (ident_start(c)) {
      std::size_t j = i + 1;
      while (j < n && ident_char(text[j])) ++j;
      u.toks.push_back({Token::Kind::ident, text.substr(i, j - i), line});
      i = j;
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) != 0) {
      std::size_t j = i + 1;
      while (j < n && (ident_char(text[j]) || text[j] == '\'' ||
                       text[j] == '.' ||
                       ((text[j] == '+' || text[j] == '-') &&
                        (text[j - 1] == 'e' || text[j - 1] == 'E' ||
                         text[j - 1] == 'p' || text[j - 1] == 'P')))) {
        ++j;
      }
      u.toks.push_back({Token::Kind::number, text.substr(i, j - i), line});
      i = j;
      continue;
    }
    // Punctuator: greedy longest match against the multi-char set.
    std::string p(1, c);
    for (const char* mp : kPuncts) {
      std::size_t len = std::char_traits<char>::length(mp);
      if (text.compare(i, len, mp) == 0) {
        p = mp;
        break;
      }
    }
    u.toks.push_back({Token::Kind::punct, p, line});
    i += p.size();
  }
  collect_unordered(u);

  // A standalone annotation covers the next CODE line: skip any blank or
  // comment-only lines between it and the statement it guards (annotations
  // often share a multi-line comment with their prose).
  for (Allow& a : u.allows) {
    if (a.target_line == a.line) continue;  // trailing: covers its own line
    while (a.target_line <= static_cast<int>(u.lines.size())) {
      const std::string& raw = u.lines[a.target_line - 1];
      std::size_t b = raw.find_first_not_of(" \t");
      if (b != std::string::npos && raw.compare(b, 2, "//") != 0) break;
      ++a.target_line;
    }
  }
}

Unit lex_file(const std::string& path, const std::string& rel, bool& ok) {
  Unit u;
  u.path = path;
  u.rel = rel;
  auto dot = rel.find_last_of('.');
  std::string ext = dot == std::string::npos ? "" : rel.substr(dot);
  u.is_header = ext == ".hpp" || ext == ".h";
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    ok = false;
    return u;
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  lex_source(u, ss.str());
  ok = true;
  return u;
}

}  // namespace xunet::lint
