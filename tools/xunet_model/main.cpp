// main.cpp — xunet_model CLI.
//
// Usage:
//   xunet_model --sighost-table FILE --kern-table FILE [options]
//     --sighost-table FILE   declared sighost transitions (fn list op)
//     --kern-table FILE      declared kernel SocketState edges
//                            (fn from[,from...]|* to)
//     --json FILE            also write the xunet.model.v1 report
//     --sabotage-recover     self-test mode: crash recovery rebuilds nothing
//                            (the checker must then produce findings)
//     --max-states N         exploration bound (default 4000000)
//
// Exit status: 0 clean, 1 findings, 2 usage/configuration error.
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>

#include "xunet_model/model.hpp"

int main(int argc, char** argv) {
  std::string sighost_table;
  std::string kern_table;
  std::string json_path;
  xunet::model::Options opt;

  for (int i = 1; i < argc; ++i) {
    std::string a = argv[i];
    auto need_val = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "xunet_model: %s requires a value\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (a == "--sighost-table") sighost_table = need_val("--sighost-table");
    else if (a == "--kern-table") kern_table = need_val("--kern-table");
    else if (a == "--json") json_path = need_val("--json");
    else if (a == "--sabotage-recover") opt.sabotage_recover = true;
    else if (a == "--max-states")
      opt.max_states = std::strtoull(need_val("--max-states"), nullptr, 10);
    else if (a == "--help" || a == "-h") {
      std::fprintf(stderr,
                   "usage: xunet_model --sighost-table FILE --kern-table "
                   "FILE\n"
                   "                   [--json FILE] [--sabotage-recover] "
                   "[--max-states N]\n");
      return 0;
    } else {
      std::fprintf(stderr, "xunet_model: unknown option %s\n", a.c_str());
      return 2;
    }
  }
  if (sighost_table.empty() || kern_table.empty()) {
    std::fprintf(stderr,
                 "xunet_model: --sighost-table and --kern-table are "
                 "required\n");
    return 2;
  }

  std::string err;
  auto sighost = xunet::lint::load_state_table(sighost_table, err);
  if (!err.empty()) {
    std::fprintf(stderr, "xunet_model: %s\n", err.c_str());
    return 2;
  }
  auto kern = xunet::lint::load_machine_table(kern_table, err);
  if (!err.empty()) {
    std::fprintf(stderr, "xunet_model: %s\n", err.c_str());
    return 2;
  }
  auto assumes = xunet::lint::load_model_assumes(sighost_table, err);
  if (!err.empty()) {
    std::fprintf(stderr, "xunet_model: %s\n", err.c_str());
    return 2;
  }
  auto kern_assumes = xunet::lint::load_model_assumes(kern_table, err);
  if (!err.empty()) {
    std::fprintf(stderr, "xunet_model: %s\n", err.c_str());
    return 2;
  }
  assumes.insert(assumes.end(), kern_assumes.begin(), kern_assumes.end());

  xunet::model::Result r = xunet::model::check(sighost, kern, assumes, opt);
  std::fputs(xunet::model::render_text(r).c_str(), stdout);
  if (!json_path.empty()) {
    std::ofstream out(json_path, std::ios::binary);
    if (!out) {
      std::fprintf(stderr, "xunet_model: cannot write %s\n",
                   json_path.c_str());
      return 2;
    }
    out << xunet::model::render_json(r);
  }
  return r.ok() ? 0 : 1;
}
