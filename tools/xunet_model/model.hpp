// model.hpp — xunet_model: explicit-state model checking of the declared
// protocol state machines.
//
// PAPER.md §5's core claim is that call state is kernel-mediated — "the
// kernel always knows".  xunet_lint proves the CODE matches the declared
// transition tables (sighost_state.tbl, kern_socket_state.tbl); this tool
// proves the TABLES themselves are sound.  It composes
//
//   originator sighost × callee sighost × kernel sockets (one per endpoint)
//
// into a product machine for one call against one exported service, with a
// lossy / duplicating / reordering message channel between the sighosts
// (matching the FaultPlan drop/dup/reorder envelope) and a lossy bounded
// anand indication queue between each kernel and its sighost (§10: bind
// indications are lost under burst; process_terminated is durably retried
// by the kernel, so it is modeled reliable).  Sighost crash+recover is one
// atomic event per side, taken only at channel-quiescent states, mirroring
// the chaos harness's crash schedule — including the recovery audit that
// rebuilds vci_mapping from the kernel/network view.
//
// Exhaustive breadth-first exploration then reports:
//
//   MODEL-UNREACHABLE  a declared transition no reachable product state
//                      fires (dead table entry — or the model is out of
//                      date; either way a human must look)
//   MODEL-STUCK        a state with no outgoing transition that is not an
//                      accepted terminal (call resolved, channels empty,
//                      sockets released, no leaked network VC) — a protocol
//                      deadlock or a resource leak
//   MODEL-DIVERGENCE   a channel-quiescent state where a sighost holds a
//                      CONFIRMED vci_mapping entry whose endpoint socket is
//                      not bound/connected — the §5.3 cross-layer
//                      consistency claim, violated
//   MODEL-BADSOURCE    a kernel assignment fired from a source state the
//                      table's from-list does not cover
//   MODEL-CONFIG       exploration exceeded the state bound (fail loudly,
//                      never silently truncate)
//
// Events are GATED on their table entries: an event that would fire an
// undeclared transition is disabled.  This is what makes the seeded-defect
// self-tests work — deleting close_xunet from a fixture table removes the
// only exit from disconnected sockets and the checker must report the
// resulting stuck states; adding a bogus entry must be reported unreachable.
// `# xunet-model: assume-reached(...) -- reason` annotations in the tables
// waive individual reachability obligations, with the reason carried into
// the report (the analogue of lint's allow(...)).
//
// Options::sabotage_recover mirrors the chaos harness's sabotage seam
// (SighostConfig::recovery_skip_audit): recovery rebuilds nothing and skips
// the orphan audit.  The checker must then find leaked VCs / stuck states —
// the self-test that the detector actually detects.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "xunet_lint/statemachine.hpp"

namespace xunet::model {

struct Finding {
  std::string kind;    ///< MODEL-UNREACHABLE / MODEL-STUCK / ...
  std::string detail;  ///< human-readable; decoded state for STUCK/DIVERGENCE
};

struct Options {
  /// Crash recovery rebuilds nothing (the planted defect; self-test only).
  bool sabotage_recover = false;
  /// Exploration bound; exceeding it is a MODEL-CONFIG finding.
  std::size_t max_states = 4u * 1000u * 1000u;
  /// Cap on reported stuck/divergent example states per kind.
  std::size_t max_examples = 8;
};

struct Result {
  std::vector<Finding> findings;  ///< deterministic order
  std::size_t states = 0;         ///< distinct product states explored
  std::size_t edges = 0;          ///< product transitions taken
  std::size_t sighost_declared = 0;
  std::size_t sighost_reached = 0;
  std::size_t sighost_assumed = 0;
  std::size_t kern_declared = 0;
  std::size_t kern_reached = 0;
  std::size_t kern_assumed = 0;
  std::vector<std::string> notes;

  [[nodiscard]] bool ok() const { return findings.empty(); }
};

/// Explore the product machine of the two declared tables.  `assumes` come
/// from load_model_assumes over both table files; sighost keys are
/// (fn list op), kernel keys are (fn to).
[[nodiscard]] Result check(const std::vector<lint::Transition>& sighost_table,
                           const std::vector<lint::MachineEdge>& kern_table,
                           const std::vector<lint::ModelAssume>& assumes,
                           const Options& opt = {});

/// Human-readable report.
[[nodiscard]] std::string render_text(const Result& r);

/// Machine-readable report, schema "xunet.model.v1" (validated by
/// tools/bench_json_check alongside the lint and bench reports).
[[nodiscard]] std::string render_json(const Result& r);

}  // namespace xunet::model
