// model.cpp — the product-machine encoding and the breadth-first explorer.
//
// One product state packs into a single 64-bit word: the call-lifecycle and
// five-list occupancy bits of both sighosts, both endpoint socket states,
// nine per-kind in-flight message counters (saturating at 2 — the standard
// counter abstraction for a reordering channel), and four anand indication
// counters.  The reachable space on the real tables is small (tens of
// thousands of states); the bound exists so a bad table edit fails loudly
// instead of spinning.
#include "xunet_model/model.hpp"

#include <algorithm>
#include <cstdio>
#include <deque>
#include <map>
#include <set>
#include <sstream>
#include <unordered_map>
#include <unordered_set>

namespace xunet::model {
namespace {

// ------------------------------------------------------------ state word

// Boolean bits.
enum Bit : unsigned {
  kOOut = 0,   // originator: outgoing_requests entry
  kOVm,        // originator: vci_mapping entry
  kOWb,        // originator: wait_for_bind entry
  kOConf,      // originator: vm entry confirmed
  kCInc,       // callee: incoming_requests entry
  kCVm,        // callee: vci_mapping entry
  kCWb,        // callee: wait_for_bind entry
  kCConf,      // callee: vm entry confirmed
  kCDecided,   // callee app already accepted (awaiting ESTABLISHED)
  kSvc,        // service currently exported at callee
  kSvcUsed,    // export consumed (each of export/withdraw happens once)
  kWdrawn,     // withdraw consumed
  kStarted,    // the one modeled call was initiated
  kCliVci,     // client app holds VCI_FOR_CONN
  kSrvVci,     // server app holds VCI_FOR_CONN
  kOCrashed,   // originator sighost crash+recover consumed
  kCCrashed,   // callee sighost crash+recover consumed
  kVc,         // network VC exists (handle held by originator)
  kBoolBits
};

// Socket states (model adds "closed": descriptor released, slot recycled).
enum Sock : std::uint64_t { CR = 0, BD = 1, CN = 2, DI = 3, CL = 4 };

constexpr unsigned kKoShift = kBoolBits;      // 3 bits
constexpr unsigned kKcShift = kKoShift + 3;   // 3 bits

// Sighost↔sighost messages; direction is fixed per kind.
enum Msg : unsigned {
  mSETUP = 0,      // O→C  PEER_SETUP
  mCANCEL,         // O→C  PEER_CANCEL
  mSETUP_FAILED,   // O→C  PEER_SETUP_FAILED
  mTEARDOWN_OC,    // O→C  PEER_TEARDOWN
  mACCEPT,         // C→O  accept reply
  mREJECT,         // C→O  PEER_REJECT
  mESTABLISHED,    // C→O  PEER_ESTABLISHED
  mBOUND,          // C→O  PEER_BOUND
  mTEARDOWN_CO,    // C→O  PEER_TEARDOWN
  kMsgKinds
};
constexpr unsigned kMsgShift = kKcShift + 3;  // 2 bits each

// Kernel→sighost anand indications.
enum Ind : unsigned { iOConn = 0, iOTerm, iCBind, iCTerm, kIndKinds };
constexpr unsigned kIndShift = kMsgShift + 2 * kMsgKinds;  // 2 bits each

// Indications carry per-incarnation cookies (sighost.cpp confirm_endpoint):
// tearing a call down invalidates any bind/connect indication still queued
// for that side.  One bit per side suffices — fresh indications only post
// while the socket is `created`, which a torn-down endpoint never is again.
constexpr unsigned kOIndStale = kIndShift + 2 * kIndKinds;
constexpr unsigned kCIndStale = kOIndStale + 1;

// The apps' VCI_FOR_CONN credentials are likewise per-incarnation: tearing
// the mapping down invalidates an already-handed-out credential, and a
// bind/connect performed with a stale credential posts an indication that
// will fail cookie authentication.  Re-establishment hands out a fresh one.
constexpr unsigned kCliVciStale = kCIndStale + 1;
constexpr unsigned kSrvVciStale = kCliVciStale + 1;

using St = std::uint64_t;

bool bit(St s, unsigned b) { return (s >> b) & 1u; }
St with_bit(St s, unsigned b, bool v) {
  return v ? (s | (St{1} << b)) : (s & ~(St{1} << b));
}
Sock ko(St s) { return static_cast<Sock>((s >> kKoShift) & 7u); }
Sock kc(St s) { return static_cast<Sock>((s >> kKcShift) & 7u); }
St with_ko(St s, Sock v) {
  return (s & ~(St{7} << kKoShift)) | (St{v} << kKoShift);
}
St with_kc(St s, Sock v) {
  return (s & ~(St{7} << kKcShift)) | (St{v} << kKcShift);
}
unsigned msg(St s, unsigned m) { return (s >> (kMsgShift + 2 * m)) & 3u; }
St with_msg(St s, unsigned m, unsigned v) {
  return (s & ~(St{3} << (kMsgShift + 2 * m))) |
         (St{v & 3u} << (kMsgShift + 2 * m));
}
St send(St s, unsigned m) {  // saturating at 2 (counter abstraction)
  unsigned v = msg(s, m);
  return with_msg(s, m, v < 2 ? v + 1 : 2);
}
St consume(St s, unsigned m) { return with_msg(s, m, msg(s, m) - 1); }
unsigned ind(St s, unsigned i) { return (s >> (kIndShift + 2 * i)) & 3u; }
St with_ind(St s, unsigned i, unsigned v) {
  return (s & ~(St{3} << (kIndShift + 2 * i))) |
         (St{v & 3u} << (kIndShift + 2 * i));
}
St post(St s, unsigned i) {
  unsigned v = ind(s, i);
  return with_ind(s, i, v < 2 ? v + 1 : 2);
}
St take(St s, unsigned i) {
  s = with_ind(s, i, ind(s, i) - 1);
  // Draining the last endpoint indication clears that side's stale mark.
  if (i == iOConn && ind(s, i) == 0) s = with_bit(s, kOIndStale, false);
  if (i == iCBind && ind(s, i) == 0) s = with_bit(s, kCIndStale, false);
  return s;
}

bool quiescent(St s) {
  for (unsigned m = 0; m < kMsgKinds; ++m)
    if (msg(s, m) != 0) return false;
  for (unsigned i = 0; i < kIndKinds; ++i)
    if (ind(s, i) != 0) return false;
  return true;
}

const char* sock_name(Sock v) {
  switch (v) {
    case CR: return "created";
    case BD: return "bound";
    case CN: return "connected";
    case DI: return "disconnected";
    case CL: return "closed";
  }
  return "?";
}

std::string decode(St s) {
  std::ostringstream o;
  o << "O{";
  if (bit(s, kOOut)) o << "out ";
  if (bit(s, kOVm)) o << "vm ";
  if (bit(s, kOWb)) o << "wb ";
  if (bit(s, kOConf)) o << "conf ";
  if (bit(s, kOCrashed)) o << "crashed ";
  o << "sock=" << sock_name(ko(s)) << "} C{";
  if (bit(s, kCInc)) o << "inc ";
  if (bit(s, kCVm)) o << "vm ";
  if (bit(s, kCWb)) o << "wb ";
  if (bit(s, kCConf)) o << "conf ";
  if (bit(s, kCDecided)) o << "decided ";
  if (bit(s, kCCrashed)) o << "crashed ";
  o << "sock=" << sock_name(kc(s)) << "}";
  if (bit(s, kSvc)) o << " svc";
  if (bit(s, kVc)) o << " VC";
  if (bit(s, kCliVci)) o << " cli-vci";
  if (bit(s, kSrvVci)) o << " srv-vci";
  static const char* kMsgNames[kMsgKinds] = {
      "SETUP",       "CANCEL", "SETUP_FAILED", "TEARDOWN>",  "ACCEPT",
      "REJECT",      "ESTABLISHED", "BOUND",   "TEARDOWN<"};
  for (unsigned m = 0; m < kMsgKinds; ++m) {
    if (msg(s, m) != 0) o << " " << kMsgNames[m] << "x" << msg(s, m);
  }
  static const char* kIndNames[kIndKinds] = {"conn-ind", "term-ind@O",
                                             "bind-ind", "term-ind@C"};
  for (unsigned i = 0; i < kIndKinds; ++i) {
    if (ind(s, i) != 0) o << " " << kIndNames[i] << "x" << ind(s, i);
  }
  return o.str();
}

// --------------------------------------------------------------- context

struct Ctx {
  // Declared sighost entries: key "fn|list|op" -> table line.
  std::map<std::string, int> s_decl;
  std::set<std::string> s_reached;
  // Declared kernel edges, plus the (fn, to) reachability projection.
  const std::vector<lint::MachineEdge>* kern = nullptr;
  std::set<std::string> k_reached;  // "fn|to"
  std::set<std::string> badsource;  // deduped MODEL-BADSOURCE details
  bool sabotage = false;
};

std::string skey(const char* fn, const char* list, const char* op) {
  return std::string(fn) + "|" + list + "|" + op;
}

bool has_s(const Ctx& cx, const char* fn, const char* list, const char* op) {
  return cx.s_decl.count(skey(fn, list, op)) != 0;
}
void fire_s(Ctx& cx, const char* fn, const char* list, const char* op) {
  cx.s_reached.insert(skey(fn, list, op));
}
bool has_k(const Ctx& cx, const char* fn, const char* to) {
  for (const lint::MachineEdge& e : *cx.kern) {
    if (e.fn == fn && e.to == to) return true;
  }
  return false;
}
void fire_k(Ctx& cx, const char* fn, Sock from, const char* to) {
  cx.k_reached.insert(std::string(fn) + "|" + to);
  for (const lint::MachineEdge& e : *cx.kern) {
    if (e.fn != fn || e.to != to) continue;
    for (const std::string& f : e.from) {
      if (f == "*" || f == sock_name(from)) return;
    }
  }
  cx.badsource.insert(std::string(fn) + " fired from '" + sock_name(from) +
                      "' which its declared from-list does not cover");
}

// ------------------------------------------------------------ successors

/// Tear down one side's call state (teardown_vci): vm+wb erased, the
/// endpoint socket disconnected downward, the network VC released by the
/// originator, the peer optionally notified.  Returns false when a required
/// table entry is undeclared (the event is then disabled — gating).
bool teardown(St& s, Ctx& cx, bool orig_side, bool notify) {
  unsigned vm = orig_side ? kOVm : kCVm;
  unsigned wb = orig_side ? kOWb : kCWb;
  unsigned conf = orig_side ? kOConf : kCConf;
  if (!has_s(cx, "teardown_vci", "vci_mapping", "erase")) return false;
  if (bit(s, wb) && !has_s(cx, "teardown_vci", "wait_for_bind", "erase"))
    return false;
  Sock sock = orig_side ? ko(s) : kc(s);
  bool disconnect = sock == BD || sock == CN;
  if (disconnect && !has_k(cx, "mark_vci_disconnected", "disconnected"))
    return false;
  fire_s(cx, "teardown_vci", "vci_mapping", "erase");
  if (bit(s, wb)) fire_s(cx, "teardown_vci", "wait_for_bind", "erase");
  s = with_bit(s, vm, false);
  s = with_bit(s, wb, false);
  s = with_bit(s, conf, false);
  if (disconnect) {
    fire_k(cx, "mark_vci_disconnected", sock, "disconnected");
    s = orig_side ? with_ko(s, DI) : with_kc(s, DI);
  }
  if (orig_side) s = with_bit(s, kVc, false);  // originator owns the handle
  // Any endpoint indication still queued for this side — and any app
  // credential already handed out — carries the torn incarnation's cookie
  // and will fail authentication downstream.
  if (orig_side) {
    if (ind(s, iOConn) != 0) s = with_bit(s, kOIndStale, true);
    if (bit(s, kCliVci)) s = with_bit(s, kCliVciStale, true);
  } else {
    if (ind(s, iCBind) != 0) s = with_bit(s, kCIndStale, true);
    if (bit(s, kSrvVci)) s = with_bit(s, kSrvVciStale, true);
  }
  if (notify) s = send(s, orig_side ? mTEARDOWN_OC : mTEARDOWN_CO);
  return true;
}

/// Emit every enabled event's successor, in a fixed order.  Firing
/// accounting happens here: `s` was popped from the BFS queue, so it is
/// reachable and everything an enabled event fires is reachable.
void successors(St s, Ctx& cx,
                std::vector<std::pair<const char*, St>>& out) {
  out.clear();
  auto add = [&out](const char* name, St ns) { out.emplace_back(name, ns); };

  // --- callee app: export / withdraw the service (once each).
  if (!bit(s, kSvcUsed) && has_s(cx, "handle_export_srv", "service_list",
                                 "insert")) {
    fire_s(cx, "handle_export_srv", "service_list", "insert");
    add("export", with_bit(with_bit(s, kSvc, true), kSvcUsed, true));
  }
  if (bit(s, kSvc) && !bit(s, kWdrawn) &&
      has_s(cx, "handle_withdraw_srv", "service_list", "erase")) {
    fire_s(cx, "handle_withdraw_srv", "service_list", "erase");
    add("withdraw", with_bit(with_bit(s, kSvc, false), kWdrawn, true));
  }

  // --- client app: initiate the one modeled call.
  if (!bit(s, kStarted) &&
      has_s(cx, "handle_connect_req", "outgoing_requests", "insert")) {
    fire_s(cx, "handle_connect_req", "outgoing_requests", "insert");
    St n = with_bit(with_bit(s, kStarted, true), kOOut, true);
    add("connect_req", send(n, mSETUP));
  }

  // --- SETUP delivery at the callee.
  if (msg(s, mSETUP) != 0) {
    St n = consume(s, mSETUP);
    if (!bit(s, kCInc) && !bit(s, kCVm)) {
      if (bit(s, kSvc) &&
          has_s(cx, "handle_peer_setup", "incoming_requests", "insert")) {
        fire_s(cx, "handle_peer_setup", "incoming_requests", "insert");
        add("setup_ok", with_bit(n, kCInc, true));
      }
      if (!bit(s, kSvc)) add("setup_no_svc", send(n, mREJECT));
    } else {
      add("setup_dup", n);  // idempotent: request already known
    }
  }

  // --- callee app decides; the watchdog converts silence into REJECT.
  if (bit(s, kCInc)) {
    if (!bit(s, kCDecided)) {
      add("accept", send(with_bit(s, kCDecided, true), mACCEPT));
      if (has_s(cx, "handle_reject_conn", "incoming_requests", "erase")) {
        fire_s(cx, "handle_reject_conn", "incoming_requests", "erase");
        St n = with_bit(s, kCInc, false);
        add("reject", send(n, mREJECT));
      }
    }
    // Watchdog / server death / transport failure: handle_peer_setup's
    // timer erases the entry and fails the call toward the originator.
    if (has_s(cx, "handle_peer_setup", "incoming_requests", "erase")) {
      fire_s(cx, "handle_peer_setup", "incoming_requests", "erase");
      St n = with_bit(with_bit(s, kCInc, false), kCDecided, false);
      add("callee_timeout", send(n, mREJECT));
    }
  }

  // --- ACCEPT delivery at the originator: establish_vc (or the network
  // refuses the VC: fail_outgoing + PEER_SETUP_FAILED).
  if (msg(s, mACCEPT) != 0) {
    St n = consume(s, mACCEPT);
    if (bit(s, kOOut)) {
      if (has_s(cx, "establish_vc", "outgoing_requests", "erase") &&
          has_s(cx, "establish_vc", "vci_mapping", "insert") &&
          has_s(cx, "load_wait_for_bind", "wait_for_bind", "insert")) {
        fire_s(cx, "establish_vc", "outgoing_requests", "erase");
        fire_s(cx, "establish_vc", "vci_mapping", "insert");
        fire_s(cx, "load_wait_for_bind", "wait_for_bind", "insert");
        St e = with_bit(n, kOOut, false);
        e = with_bit(e, kOVm, true);
        e = with_bit(e, kOWb, true);
        e = with_bit(e, kVc, true);
        add("accept_ok", send(e, mESTABLISHED));
      }
      if (has_s(cx, "fail_outgoing", "outgoing_requests", "erase")) {
        fire_s(cx, "fail_outgoing", "outgoing_requests", "erase");
        add("accept_net_fail",
            send(with_bit(n, kOOut, false), mSETUP_FAILED));
      }
    } else {
      add("accept_stale", n);  // request already failed; CANCEL is in flight
    }
  }

  // --- REJECT delivery at the originator.
  if (msg(s, mREJECT) != 0) {
    St n = consume(s, mREJECT);
    if (bit(s, kOOut)) {
      if (has_s(cx, "fail_outgoing", "outgoing_requests", "erase")) {
        fire_s(cx, "fail_outgoing", "outgoing_requests", "erase");
        add("reject_recv", with_bit(n, kOOut, false));
      }
    } else {
      add("reject_stale", n);
    }
  }

  // --- ESTABLISHED delivery at the callee: vci_mapping + wait_for_bind,
  // VCI_FOR_CONN released to the server app.
  if (msg(s, mESTABLISHED) != 0) {
    St n = consume(s, mESTABLISHED);
    if (bit(s, kCInc)) {
      if (has_s(cx, "handle_peer_established", "incoming_requests", "erase") &&
          has_s(cx, "handle_peer_established", "vci_mapping", "insert") &&
          has_s(cx, "load_wait_for_bind", "wait_for_bind", "insert")) {
        fire_s(cx, "handle_peer_established", "incoming_requests", "erase");
        fire_s(cx, "handle_peer_established", "vci_mapping", "insert");
        fire_s(cx, "load_wait_for_bind", "wait_for_bind", "insert");
        St e = with_bit(with_bit(n, kCInc, false), kCDecided, false);
        e = with_bit(e, kCVm, true);
        e = with_bit(e, kCWb, true);
        e = with_bit(e, kSrvVci, true);
        e = with_bit(e, kSrvVciStale, false);  // fresh VCI_FOR_CONN
        add("established_ok", e);
      }
    } else {
      add("established_stale", n);
    }
  }

  // --- SETUP_FAILED delivery at the callee.
  if (msg(s, mSETUP_FAILED) != 0) {
    St n = consume(s, mSETUP_FAILED);
    if (bit(s, kCInc)) {
      if (has_s(cx, "handle_peer_setup_failed", "incoming_requests",
                "erase")) {
        fire_s(cx, "handle_peer_setup_failed", "incoming_requests", "erase");
        add("setup_failed_recv",
            with_bit(with_bit(n, kCInc, false), kCDecided, false));
      }
    } else {
      add("setup_failed_stale", n);
    }
  }

  // --- server app binds its socket (kernel posts the bind indication).
  if (bit(s, kSrvVci) && kc(s) == CR && has_k(cx, "xunet_bind", "bound")) {
    fire_k(cx, "xunet_bind", CR, "bound");
    St n = post(with_kc(s, BD), iCBind);
    // A bind with a torn incarnation's credential will fail cookie auth.
    if (bit(s, kSrvVciStale)) n = with_bit(n, kCIndStale, true);
    add("server_bind", n);
  }

  // --- bind indication: delivered (confirm_endpoint) or lost (§10).
  if (ind(s, iCBind) != 0) {
    St n = take(s, iCBind);
    if (bit(s, kCVm) && bit(s, kCIndStale)) {
      // §7.1 cookie authentication: the indication predates the current
      // incarnation of the mapping — confirm_endpoint tears the call down.
      if (teardown(n, cx, /*orig=*/false, /*notify=*/true))
        add("bind_ind_auth_fail", n);
    } else if (bit(s, kCVm) && bit(s, kCWb)) {
      if (has_s(cx, "confirm_endpoint", "wait_for_bind", "erase")) {
        fire_s(cx, "confirm_endpoint", "wait_for_bind", "erase");
        St e = with_bit(with_bit(n, kCWb, false), kCConf, true);
        add("bind_confirm", send(e, mBOUND));
      }
    } else if (!bit(s, kCVm)) {
      // Stale indication: the call is gone; the sighost answers with a
      // downward disconnect so the socket is not left usable on a dead VCI.
      St e = n;
      if (kc(s) == BD && has_k(cx, "mark_vci_disconnected", "disconnected")) {
        fire_k(cx, "mark_vci_disconnected", BD, "disconnected");
        e = with_kc(e, DI);
      }
      add("bind_ind_stale", e);
    } else {
      add("bind_ind_dup", n);  // already confirmed
    }
    add("bind_ind_lost", n);  // anand buffer overflow (§10)
  }

  // --- BOUND delivery at the originator: VCI_FOR_CONN to the client.
  if (msg(s, mBOUND) != 0) {
    St n = consume(s, mBOUND);
    if (bit(s, kOVm)) {
      add("bound_recv",
          with_bit(with_bit(n, kCliVci, true), kCliVciStale, false));
    } else {
      add("bound_stale", n);
    }
  }

  // --- client app connects (kernel posts the connect indication).
  if (bit(s, kCliVci) && ko(s) == CR && has_k(cx, "xunet_connect",
                                              "connected")) {
    fire_k(cx, "xunet_connect", CR, "connected");
    St n = post(with_ko(s, CN), iOConn);
    if (bit(s, kCliVciStale)) n = with_bit(n, kOIndStale, true);
    add("client_connect", n);
  }

  // --- connect indication: delivered or lost.
  if (ind(s, iOConn) != 0) {
    St n = take(s, iOConn);
    if (bit(s, kOVm) && bit(s, kOIndStale)) {
      if (teardown(n, cx, /*orig=*/true, /*notify=*/true))
        add("conn_ind_auth_fail", n);
    } else if (bit(s, kOVm) && bit(s, kOWb)) {
      if (has_s(cx, "confirm_endpoint", "wait_for_bind", "erase")) {
        fire_s(cx, "confirm_endpoint", "wait_for_bind", "erase");
        add("conn_confirm", with_bit(with_bit(n, kOWb, false), kOConf, true));
      }
    } else if (!bit(s, kOVm)) {
      St e = n;
      if (ko(s) == CN && has_k(cx, "mark_vci_disconnected", "disconnected")) {
        fire_k(cx, "mark_vci_disconnected", CN, "disconnected");
        e = with_ko(e, DI);
      }
      add("conn_ind_stale", e);
    } else {
      add("conn_ind_dup", n);
    }
    add("conn_ind_lost", n);
  }

  // --- wait_for_bind watchdogs: unconfirmed endpoints tear down.
  if (bit(s, kOVm) && bit(s, kOWb)) {
    St n = s;
    if (teardown(n, cx, /*orig=*/true, /*notify=*/true))
      add("wb_timeout_O", n);
  }
  if (bit(s, kCVm) && bit(s, kCWb)) {
    St n = s;
    if (teardown(n, cx, /*orig=*/false, /*notify=*/true))
      add("wb_timeout_C", n);
  }

  // --- originator request watchdog / client abandoning the request.
  if (bit(s, kOOut)) {
    if (has_s(cx, "fail_outgoing", "outgoing_requests", "erase")) {
      fire_s(cx, "fail_outgoing", "outgoing_requests", "erase");
      add("req_timeout", send(with_bit(s, kOOut, false), mCANCEL));
    }
    if (has_s(cx, "on_app_conn_closed", "outgoing_requests", "erase")) {
      fire_s(cx, "on_app_conn_closed", "outgoing_requests", "erase");
      add("client_abandon", send(with_bit(s, kOOut, false), mCANCEL));
    }
  }

  // --- CANCEL delivery at the callee.
  if (msg(s, mCANCEL) != 0) {
    St n = consume(s, mCANCEL);
    if (bit(s, kCInc)) {
      if (has_s(cx, "handle_peer_cancel", "incoming_requests", "erase")) {
        fire_s(cx, "handle_peer_cancel", "incoming_requests", "erase");
        add("cancel_recv",
            with_bit(with_bit(n, kCInc, false), kCDecided, false));
      }
    } else if (bit(s, kCVm)) {
      if (teardown(n, cx, /*orig=*/false, /*notify=*/false))
        add("cancel_teardown", n);
    } else {
      add("cancel_stale", n);
    }
  }

  // --- TEARDOWN deliveries.
  if (msg(s, mTEARDOWN_OC) != 0) {
    St n = consume(s, mTEARDOWN_OC);
    if (bit(s, kCVm)) {
      if (teardown(n, cx, /*orig=*/false, /*notify=*/false))
        add("teardown_recv_C", n);
    } else if (bit(s, kCInc)) {
      if (has_s(cx, "handle_peer_teardown", "incoming_requests", "erase")) {
        fire_s(cx, "handle_peer_teardown", "incoming_requests", "erase");
        add("teardown_kills_inc",
            with_bit(with_bit(n, kCInc, false), kCDecided, false));
      }
    } else {
      add("teardown_stale_C", n);
    }
  }
  if (msg(s, mTEARDOWN_CO) != 0) {
    St n = consume(s, mTEARDOWN_CO);
    if (bit(s, kOVm)) {
      if (teardown(n, cx, /*orig=*/true, /*notify=*/false))
        add("teardown_recv_O", n);
    } else {
      add("teardown_stale_O", n);
    }
  }

  // --- app closes its socket; bound/connected closes post
  // process_terminated (durably — the kernel retries past a full buffer).
  if ((ko(s) == CN || ko(s) == DI) && has_k(cx, "close_xunet", "created")) {
    fire_k(cx, "close_xunet", ko(s), "created");
    St n = with_ko(s, CL);
    add("client_close", ko(s) == CN ? post(n, iOTerm) : n);
  }
  if ((kc(s) == BD || kc(s) == DI) && has_k(cx, "close_xunet", "created")) {
    fire_k(cx, "close_xunet", kc(s), "created");
    St n = with_kc(s, CL);
    add("server_close", kc(s) == BD ? post(n, iCTerm) : n);
  }

  // --- process_terminated deliveries (reliable; no lost variant).
  if (ind(s, iOTerm) != 0) {
    St n = take(s, iOTerm);
    if (bit(s, kOVm)) {
      if (teardown(n, cx, /*orig=*/true, /*notify=*/true))
        add("term_teardown_O", n);
    } else {
      add("term_stale_O", n);
    }
  }
  if (ind(s, iCTerm) != 0) {
    St n = take(s, iCTerm);
    if (bit(s, kCVm)) {
      if (teardown(n, cx, /*orig=*/false, /*notify=*/true))
        add("term_teardown_C", n);
    } else {
      add("term_stale_C", n);
    }
  }

  // --- lazy VCI reclamation: the network dropped the VC but the sighost
  // still maps it; establish_vc's reuse path tears the stale entry down.
  if (bit(s, kCVm) && !bit(s, kVc)) {
    St n = s;
    if (teardown(n, cx, /*orig=*/false, /*notify=*/true))
      add("vci_reuse_C", n);
  }
  if (bit(s, kOVm) && !bit(s, kVc)) {
    St n = s;
    if (teardown(n, cx, /*orig=*/true, /*notify=*/true))
      add("vci_reuse_O", n);
  }

  // --- sighost crash + recover, one atomic event per side, taken at
  // channel-quiescent states only (the chaos harness crashes between
  // deliveries too, but those interleavings only lose in-flight messages —
  // which the drop events already model).
  bool recover_ok = has_s(cx, "recover", "vci_mapping", "insert");
  if (bit(s, kStarted) && quiescent(s) && !bit(s, kOCrashed) &&
      (recover_ok || cx.sabotage)) {
    St n = with_bit(s, kOCrashed, true);
    n = with_bit(n, kOOut, false);
    n = with_bit(n, kOVm, false);
    n = with_bit(n, kOWb, false);
    n = with_bit(n, kOConf, false);
    if (bit(s, kOVm) && bit(s, kCliVci)) n = with_bit(n, kCliVciStale, true);
    if (!cx.sabotage) {
      bool sock_live = ko(s) == BD || ko(s) == CN;
      if (sock_live && bit(s, kVc)) {
        fire_s(cx, "recover", "vci_mapping", "insert");
        n = with_bit(with_bit(n, kOVm, true), kOConf, true);
        // The audit rebuilds the same incarnation from the kernel's cookie
        // bindings: the app's credential stays valid.
        n = with_bit(n, kCliVciStale, bit(s, kCliVciStale));
      } else if (sock_live && !bit(s, kVc) &&
                 has_k(cx, "mark_vci_disconnected", "disconnected")) {
        fire_k(cx, "mark_vci_disconnected", ko(s), "disconnected");
        n = with_ko(n, DI);  // audit: socket without a VC is an orphan
      } else if (!sock_live && bit(s, kVc)) {
        n = with_bit(n, kVc, false);  // audit: VC without a socket is torn
      }
    }
    add("crash_recover_O", n);
  }
  if (bit(s, kStarted) && quiescent(s) && !bit(s, kCCrashed) &&
      (recover_ok || cx.sabotage)) {
    St n = with_bit(s, kCCrashed, true);
    n = with_bit(n, kCInc, false);
    n = with_bit(n, kCDecided, false);
    n = with_bit(n, kCVm, false);
    n = with_bit(n, kCWb, false);
    n = with_bit(n, kCConf, false);
    if (bit(s, kCVm) && bit(s, kSrvVci)) n = with_bit(n, kSrvVciStale, true);
    if (!cx.sabotage) {
      bool sock_live = kc(s) == BD || kc(s) == CN;
      if (sock_live && bit(s, kVc)) {
        fire_s(cx, "recover", "vci_mapping", "insert");
        n = with_bit(with_bit(n, kCVm, true), kCConf, true);
        n = with_bit(n, kSrvVciStale, bit(s, kSrvVciStale));
      } else if (sock_live && !bit(s, kVc) &&
                 has_k(cx, "mark_vci_disconnected", "disconnected")) {
        fire_k(cx, "mark_vci_disconnected", kc(s), "disconnected");
        n = with_kc(n, DI);
      }
      // The VC handle lives at the originator; a callee crash never
      // releases it — vci_reuse / the originator's own audit do.
    }
    add("crash_recover_C", n);
  }

  // --- channel faults: drop and duplicate (reorder is inherent — any
  // pending kind may deliver first).
  static const char* kDropNames[kMsgKinds] = {
      "drop_SETUP",       "drop_CANCEL", "drop_SETUP_FAILED",
      "drop_TEARDOWN_OC", "drop_ACCEPT", "drop_REJECT",
      "drop_ESTABLISHED", "drop_BOUND",  "drop_TEARDOWN_CO"};
  static const char* kDupNames[kMsgKinds] = {
      "dup_SETUP",       "dup_CANCEL", "dup_SETUP_FAILED",
      "dup_TEARDOWN_OC", "dup_ACCEPT", "dup_REJECT",
      "dup_ESTABLISHED", "dup_BOUND",  "dup_TEARDOWN_CO"};
  for (unsigned m = 0; m < kMsgKinds; ++m) {
    unsigned v = msg(s, m);
    if (v >= 1) add(kDropNames[m], consume(s, m));
    if (v == 1) add(kDupNames[m], with_msg(s, m, 2));
  }
}

/// Accepted terminal: the call is resolved and every resource is released.
bool accepted_terminal(St s) {
  if (!quiescent(s)) return false;
  if (bit(s, kOOut) || bit(s, kOVm) || bit(s, kOWb) || bit(s, kCInc) ||
      bit(s, kCVm) || bit(s, kCWb)) {
    return false;
  }
  if (bit(s, kVc)) return false;  // leaked network VC
  Sock a = ko(s), b = kc(s);
  return (a == CR || a == CL) && (b == CR || b == CL);
}

/// §5.3 check: a CONFIRMED vci_mapping entry whose endpoint socket is not
/// bound/connected, at a channel-quiescent state.  (Unconfirmed entries are
/// transient and watchdog-guarded; sockets without entries are app-held
/// resources the kernel tracks — the claim's direction is sighost ⊆ kernel.)
bool divergent(St s) {
  if (!quiescent(s)) return false;
  if (bit(s, kOVm) && bit(s, kOConf) && !(ko(s) == BD || ko(s) == CN))
    return true;
  if (bit(s, kCVm) && bit(s, kCConf) && !(kc(s) == BD || kc(s) == CN))
    return true;
  return false;
}

}  // namespace

Result check(const std::vector<lint::Transition>& sighost_table,
             const std::vector<lint::MachineEdge>& kern_table,
             const std::vector<lint::ModelAssume>& assumes,
             const Options& opt) {
  Result r;
  Ctx cx;
  cx.kern = &kern_table;
  cx.sabotage = opt.sabotage_recover;
  for (const lint::Transition& t : sighost_table) {
    cx.s_decl.emplace(t.fn + "|" + t.list + "|" + t.op, t.line);
  }
  r.sighost_declared = cx.s_decl.size();
  std::map<std::string, int> k_decl;  // "fn|to" -> first table line
  for (const lint::MachineEdge& e : kern_table) {
    k_decl.emplace(e.fn + "|" + e.to, e.line);
  }
  r.kern_declared = k_decl.size();

  // Assumptions: "<fn> <list> <op>" (sighost) or "<fn> <to>" (kernel).
  std::map<std::string, std::string> assumed;  // key -> reason
  for (const lint::ModelAssume& a : assumes) {
    std::string key;
    for (const std::string& p : a.key) {
      if (!key.empty()) key += "|";
      key += p;
    }
    assumed.emplace(key, a.reason);
  }

  // ---- breadth-first exploration from the empty initial state.  BFS
  // parents give shortest counterexample traces for the first example of
  // each finding kind.
  const St init = 0;
  std::unordered_map<St, std::pair<St, const char*>> seen;
  seen.emplace(init, std::make_pair(init, nullptr));
  std::deque<St> queue{init};
  std::vector<std::pair<const char*, St>> succ;
  std::vector<std::string> stuck_examples;
  std::vector<std::string> diverge_examples;
  auto trace = [&seen, init](St s) {
    std::vector<const char*> ev;
    while (s != init) {
      auto it = seen.find(s);
      ev.push_back(it->second.second);
      s = it->second.first;
    }
    std::string out;
    for (auto it = ev.rbegin(); it != ev.rend(); ++it) {
      if (!out.empty()) out += " -> ";
      out += *it;
    }
    return out;
  };
  bool truncated = false;
  while (!queue.empty()) {
    St s = queue.front();
    queue.pop_front();
    if (divergent(s) && diverge_examples.size() < opt.max_examples) {
      std::string d = decode(s);
      if (diverge_examples.empty()) d += "; trace: " + trace(s);
      diverge_examples.push_back(std::move(d));
    }
    successors(s, cx, succ);
    if (succ.empty()) {
      if (!accepted_terminal(s) &&
          stuck_examples.size() < opt.max_examples) {
        std::string d = decode(s);
        if (stuck_examples.empty()) d += "; trace: " + trace(s);
        stuck_examples.push_back(std::move(d));
      }
      continue;
    }
    r.edges += succ.size();
    for (const auto& [name, n] : succ) {
      if (seen.emplace(n, std::make_pair(s, name)).second) {
        if (seen.size() > opt.max_states) {
          truncated = true;
          break;
        }
        queue.push_back(n);
      }
    }
    if (truncated) break;
  }
  r.states = seen.size();

  // ---- findings, in a fixed order: config, divergence, stuck, badsource,
  // unreachable (sighost table order, then kernel table order).
  if (truncated) {
    r.findings.push_back(
        {"MODEL-CONFIG", "exploration exceeded max_states=" +
                             std::to_string(opt.max_states) +
                             "; results are not exhaustive"});
  }
  for (const std::string& d : diverge_examples) {
    r.findings.push_back(
        {"MODEL-DIVERGENCE",
         "confirmed vci_mapping entry with a dead endpoint socket: " + d});
  }
  for (const std::string& d : stuck_examples) {
    r.findings.push_back(
        {"MODEL-STUCK", "no outgoing transition and not an accepted "
                        "terminal: " + d});
  }
  for (const std::string& d : cx.badsource) {
    r.findings.push_back({"MODEL-BADSOURCE", d});
  }
  std::vector<std::pair<int, std::string>> unreached;
  for (const auto& [key, line] : cx.s_decl) {
    if (cx.s_reached.count(key) != 0) {
      ++r.sighost_reached;
      continue;
    }
    auto a = assumed.find(key);
    if (a != assumed.end()) {
      ++r.sighost_assumed;
      r.notes.push_back("assumed reached: " + key + " (" + a->second + ")");
      continue;
    }
    unreached.emplace_back(line, "sighost transition never fired: " + key +
                                     " (sighost table line " +
                                     std::to_string(line) + ")");
  }
  for (const auto& [key, line] : k_decl) {
    if (cx.k_reached.count(key) != 0) {
      ++r.kern_reached;
      continue;
    }
    auto a = assumed.find(key);
    if (a != assumed.end()) {
      ++r.kern_assumed;
      r.notes.push_back("assumed reached: " + key + " (" + a->second + ")");
      continue;
    }
    unreached.emplace_back(line,
                           "kern_socket transition never fired: " + key +
                               " (kernel table line " +
                               std::to_string(line) + ")");
  }
  std::sort(unreached.begin(), unreached.end());
  for (auto& [line, d] : unreached) {
    (void)line;
    r.findings.push_back({"MODEL-UNREACHABLE", std::move(d)});
  }
  r.notes.push_back(
      "channel counters saturate at 2 per message kind (counter "
      "abstraction); reorder is inherent, drop/dup are explicit events");
  if (cx.sabotage) {
    r.notes.push_back("sabotage: recovery rebuilds nothing (self-test mode)");
  }
  return r;
}

std::string render_text(const Result& r) {
  std::ostringstream o;
  for (const Finding& f : r.findings) {
    o << "error: [" << f.kind << "] " << f.detail << "\n";
  }
  for (const std::string& n : r.notes) o << "note: " << n << "\n";
  o << "xunet_model: " << r.states << " states, " << r.edges
    << " transitions; sighost " << r.sighost_reached << "/"
    << r.sighost_declared << " reached";
  if (r.sighost_assumed != 0) o << " (+" << r.sighost_assumed << " assumed)";
  o << ", kern_socket " << r.kern_reached << "/" << r.kern_declared
    << " reached";
  if (r.kern_assumed != 0) o << " (+" << r.kern_assumed << " assumed)";
  o << "; " << r.findings.size() << " findings\n";
  return o.str();
}

namespace {
void json_escape(std::string& out, const std::string& s) {
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}
}  // namespace

std::string render_json(const Result& r) {
  std::string out;
  out += "{\n";
  out += "  \"schema\": \"xunet.model.v1\",\n";
  out += "  \"tool\": \"xunet_model\",\n";
  out += "  \"states\": " + std::to_string(r.states) + ",\n";
  out += "  \"edges\": " + std::to_string(r.edges) + ",\n";
  out += "  \"sighost_declared\": " + std::to_string(r.sighost_declared) +
         ",\n";
  out += "  \"sighost_reached\": " + std::to_string(r.sighost_reached) + ",\n";
  out += "  \"sighost_assumed\": " + std::to_string(r.sighost_assumed) + ",\n";
  out += "  \"kern_declared\": " + std::to_string(r.kern_declared) + ",\n";
  out += "  \"kern_reached\": " + std::to_string(r.kern_reached) + ",\n";
  out += "  \"kern_assumed\": " + std::to_string(r.kern_assumed) + ",\n";
  out += std::string("  \"ok\": ") + (r.ok() ? "true" : "false") + ",\n";
  out += "  \"findings\": [";
  bool first = true;
  for (const Finding& f : r.findings) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    {\"kind\": \"";
    json_escape(out, f.kind);
    out += "\", \"detail\": \"";
    json_escape(out, f.detail);
    out += "\"}";
  }
  out += first ? "],\n" : "\n  ],\n";
  out += "  \"notes\": [";
  first = true;
  for (const std::string& n : r.notes) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    \"";
    json_escape(out, n);
    out += "\"";
  }
  out += first ? "]\n" : "\n  ]\n";
  out += "}\n";
  return out;
}

}  // namespace xunet::model
