// bench_ext_qos_scheduling — extension experiment: what the QoS string buys
// on the data path.
//
// §10: "The QoS parameters passed by a client or server application to the
// signaling entity can be used to schedule resources ... in the network
// (see Reference [18] for a partial survey).  This is an area rich in
// research possibilities."  This bench explores the simplest point in that
// space: class-priority scheduling with push-out at the switch output
// queues.  A guaranteed 20 Mb/s flow shares one DS3 trunk with a
// best-effort flow whose offered load sweeps from idle to 2× the trunk;
// the guaranteed flow's goodput must stay flat while best effort absorbs
// all the loss.
#include "bench_common.hpp"

namespace xunet::bench {
namespace {

struct Point {
  double be_offered_mbps;
  double g_goodput_mbps;
  int g_offered_frames;
  std::uint64_t g_delivered;
  int be_offered_frames;
  std::uint64_t be_delivered;
  std::uint64_t be_cell_drops;
  std::uint64_t g_cell_drops;
};

Point run_point(double be_offered_mbps) {
  core::TestbedConfig cfg;
  cfg.kernel.fd_table_size = 100;
  auto tb = std::make_unique<core::Testbed>(cfg);
  auto& s1 = tb->add_switch("s1");
  auto& s2 = tb->add_switch("s2");
  tb->connect_switches(s1, s2);
  tb->add_router("src-a.rt", ip::make_ip(10, 1, 0, 1), s1);
  tb->add_router("src-b.rt", ip::make_ip(10, 2, 0, 1), s1);
  tb->add_router("sink.rt", ip::make_ip(10, 3, 0, 1), s2);
  if (!tb->bring_up().ok()) std::abort();

  auto& sink = tb->router(2);
  core::CallServer sg(*sink.kernel, sink.kernel->ip_node().address(), "g", 6100);
  core::CallServer sb(*sink.kernel, sink.kernel->ip_node().address(), "b", 6101);
  sg.set_qos_limit(atm::Qos{atm::ServiceClass::guaranteed, 45'000'000});
  sg.start([](util::Result<void>) {});
  sb.start([](util::Result<void>) {});
  tb->sim().run_for(sim::milliseconds(500));

  core::CallClient ca(*tb->router(0).kernel,
                      tb->router(0).kernel->ip_node().address());
  core::CallClient cb(*tb->router(1).kernel,
                      tb->router(1).kernel->ip_node().address());
  std::optional<core::CallClient::Call> call_g, call_b;
  ca.open("sink.rt", "g", "class=guaranteed,bw=20000000",
          [&](util::Result<core::CallClient::Call> r) { call_g = *r; });
  cb.open("sink.rt", "b", "class=best_effort,bw=0",
          [&](util::Result<core::CallClient::Call> r) { call_b = *r; });
  tb->sim().run_for(sim::seconds(3));
  if (!call_g || !call_b) std::abort();

  const std::size_t size = 8000;
  const double seconds = 2.0;
  const int g_frames = static_cast<int>(20e6 * seconds / (size * 8));
  const int b_frames =
      static_cast<int>(be_offered_mbps * 1e6 * seconds / (size * 8));
  for (int i = 0; i < std::max(g_frames, b_frames); ++i) {
    if (i < g_frames) {
      tb->sim().schedule(sim::seconds_f(seconds * i / g_frames),
                         [&ca, &call_g, size] {
                           (void)ca.send(*call_g, util::Buffer(size, 1));
                         });
    }
    if (i < b_frames) {
      tb->sim().schedule(sim::seconds_f(seconds * i / b_frames),
                         [&cb, &call_b, size] {
                           (void)cb.send(*call_b, util::Buffer(size, 2));
                         });
    }
  }
  // Run until every surviving frame has drained (overloaded uplinks queue
  // cells well past the offered window).
  tb->sim().run_for(sim::seconds_f(seconds + 20.0));

  Point p;
  p.be_offered_mbps = be_offered_mbps;
  p.g_goodput_mbps = sg.bytes_received() * 8.0 / seconds / 1e6;
  p.g_offered_frames = g_frames;
  p.g_delivered = sg.frames_received();
  p.be_offered_frames = b_frames;
  p.be_delivered = sb.frames_received();
  p.be_cell_drops = 0;
  p.g_cell_drops = 0;
  for (int port = 0; port < s1.port_count(); ++port) {
    p.be_cell_drops += s1.cells_dropped(port, atm::ServiceClass::best_effort);
    p.g_cell_drops += s1.cells_dropped(port, atm::ServiceClass::guaranteed);
  }
  return p;
}

void run() {
  banner(
      "Extension: class-priority scheduling under congestion "
      "(guaranteed 20 Mb/s vs best-effort sweep, one DS3 trunk)");
  util::TextTable t(
      "Frame delivery at the sink (trunk payload capacity ~40.8 Mb/s after "
      "cell tax; guaranteed flow offers a constant 20 Mb/s)");
  t.header({"BE offered Mb/s", "G delivered/offered", "G goodput Mb/s",
            "BE delivered/offered", "BE cell drops", "G cell drops"});
  for (double be : {0.0, 10.0, 20.0, 30.0, 45.0, 60.0, 90.0}) {
    Point p = run_point(be);
    t.row({util::fmt(be, 0),
           std::to_string(p.g_delivered) + "/" + std::to_string(p.g_offered_frames),
           util::fmt(p.g_goodput_mbps, 1),
           std::to_string(p.be_delivered) + "/" + std::to_string(p.be_offered_frames),
           std::to_string(p.be_cell_drops), std::to_string(p.g_cell_drops)});
  }
  t.print();
  compare("guaranteed goodput under 2x overload", "(future work in paper)",
          "flat at ~20 Mb/s; all loss borne by best effort");
  std::printf(
      "\nNote: best-effort delivery is non-monotonic in offered load.  Push-out\n"
      "victimizes individual CELLS, and AAL5 then discards the whole frame, so\n"
      "moderate overload shreds nearly every best-effort frame; at higher\n"
      "offered loads the source uplink serializes the excess past the burst\n"
      "window and late frames cross an idle trunk intact.  Guaranteed traffic\n"
      "is immune throughout - which is the claim under test.\n");
}

}  // namespace
}  // namespace xunet::bench

int main() {
  xunet::bench::run();
  return 0;
}
