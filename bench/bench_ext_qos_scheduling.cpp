// bench_ext_qos_scheduling — extension experiment: what the QoS string buys
// on the data path, now that the switches enforce it.
//
// §10: "The QoS parameters passed by a client or server application to the
// signaling entity can be used to schedule resources ... in the network
// (see Reference [18] for a partial survey).  This is an area rich in
// research possibilities."  §5 describes the substrate this repo grew to
// honor that: per-VC weighted-fair queues under strict class priority,
// dual-GCRA policing of the declared PCR/SCR/MBS descriptors, and
// frame-aware discard.  This bench drives the whole stack — signaling
// carries the descriptors, switches enforce them — with three flows on one
// DS3 trunk:
//
//   CBR  20 Mb/s reserved, inside contract     -> goodput must stay flat
//   VBR   5 Mb/s contract, offered at 3x SCR   -> GCRA sheds the excess
//   UBR  offered sweep from idle to 2x trunk   -> absorbs all queue loss
//
// The headline numbers land in BENCH_qos.json: under 2x aggregate overload
// the CBR flow must keep >= 95% of its reserved goodput while UBR is shed.
#include "bench_common.hpp"
#include "bench_json.hpp"

namespace xunet::bench {
namespace {

struct Point {
  double ubr_offered_mbps;
  double cbr_goodput_mbps;
  int cbr_offered_frames;
  std::uint64_t cbr_delivered;
  std::uint64_t cbr_cell_drops;
  double vbr_goodput_mbps;
  int vbr_offered_frames;
  std::uint64_t vbr_delivered;
  std::uint64_t policed_cells;
  int ubr_offered_frames;
  std::uint64_t ubr_delivered;
  std::uint64_t ubr_shed_cells;
};

constexpr double kCbrReservedMbps = 20.0;

Point run_point(double ubr_offered_mbps, double seconds) {
  core::TestbedConfig cfg;
  cfg.kernel.fd_table_size = 100;
  auto tb = std::make_unique<core::Testbed>(cfg);
  auto& s1 = tb->add_switch("s1");
  auto& s2 = tb->add_switch("s2");
  tb->connect_switches(s1, s2);
  tb->add_router("src-a.rt", ip::make_ip(10, 1, 0, 1), s1);
  tb->add_router("src-b.rt", ip::make_ip(10, 2, 0, 1), s1);
  tb->add_router("src-c.rt", ip::make_ip(10, 4, 0, 1), s1);
  tb->add_router("sink.rt", ip::make_ip(10, 3, 0, 1), s2);
  if (!tb->bring_up().ok()) std::abort();

  auto& sink = tb->router(3);
  core::CallServer sg(*sink.kernel, sink.kernel->ip_node().address(), "g", 6100);
  core::CallServer sv(*sink.kernel, sink.kernel->ip_node().address(), "v", 6101);
  core::CallServer sb(*sink.kernel, sink.kernel->ip_node().address(), "b", 6102);
  sg.set_qos_limit(atm::Qos{atm::ServiceClass::guaranteed, 45'000'000});
  sg.start([](util::Result<void>) {});
  sv.start([](util::Result<void>) {});
  sb.start([](util::Result<void>) {});
  tb->sim().run_for(sim::milliseconds(500));

  core::CallClient ca(*tb->router(0).kernel,
                      tb->router(0).kernel->ip_node().address());
  core::CallClient cb(*tb->router(1).kernel,
                      tb->router(1).kernel->ip_node().address());
  core::CallClient cc(*tb->router(2).kernel,
                      tb->router(2).kernel->ip_node().address());
  std::optional<core::CallClient::Call> call_g, call_v, call_b;
  // The CBR contract reserves bandwidth but declares no PCR/SCR: scheduled,
  // not policed.  The VBR contract declares descriptors it will then break.
  ca.open("sink.rt", "g", "class=cbr,bw=20000000",
          [&](util::Result<core::CallClient::Call> r) { call_g = *r; });
  cc.open("sink.rt", "v", "class=vbr,bw=5000000,pcr=8000000,scr=5000000,mbs=64",
          [&](util::Result<core::CallClient::Call> r) { call_v = *r; });
  cb.open("sink.rt", "b", "class=ubr,bw=0",
          [&](util::Result<core::CallClient::Call> r) { call_b = *r; });
  tb->sim().run_for(sim::seconds(3));
  if (!call_g || !call_v || !call_b) std::abort();

  const std::size_t size = 8000;
  const int g_frames = static_cast<int>(20e6 * seconds / (size * 8));
  const int v_frames = static_cast<int>(15e6 * seconds / (size * 8));
  const int b_frames =
      static_cast<int>(ubr_offered_mbps * 1e6 * seconds / (size * 8));
  const int most = std::max(g_frames, std::max(v_frames, b_frames));
  for (int i = 0; i < most; ++i) {
    if (i < g_frames) {
      tb->sim().schedule(sim::seconds_f(seconds * i / g_frames),
                         [&ca, &call_g, size] {
                           (void)ca.send(*call_g, util::Buffer(size, 1));
                         });
    }
    if (i < v_frames) {
      tb->sim().schedule(sim::seconds_f(seconds * i / v_frames),
                         [&cc, &call_v, size] {
                           (void)cc.send(*call_v, util::Buffer(size, 3));
                         });
    }
    if (i < b_frames) {
      tb->sim().schedule(sim::seconds_f(seconds * i / b_frames),
                         [&cb, &call_b, size] {
                           (void)cb.send(*call_b, util::Buffer(size, 2));
                         });
    }
  }
  // Run until every surviving frame has drained (overloaded uplinks queue
  // cells well past the offered window).
  tb->sim().run_for(sim::seconds_f(seconds + 20.0));

  Point p;
  p.ubr_offered_mbps = ubr_offered_mbps;
  p.cbr_goodput_mbps = sg.bytes_received() * 8.0 / seconds / 1e6;
  p.cbr_offered_frames = g_frames;
  p.cbr_delivered = sg.frames_received();
  p.vbr_goodput_mbps = sv.bytes_received() * 8.0 / seconds / 1e6;
  p.vbr_offered_frames = v_frames;
  p.vbr_delivered = sv.frames_received();
  p.ubr_offered_frames = b_frames;
  p.ubr_delivered = sb.frames_received();
  p.cbr_cell_drops = 0;
  p.policed_cells = 0;
  p.ubr_shed_cells = 0;
  for (const atm::AtmSwitch* sw : {&s1, &s2}) {
    for (int port = 0; port < sw->port_count(); ++port) {
      p.cbr_cell_drops +=
          sw->cells_dropped(port, atm::ServiceClass::guaranteed);
      p.ubr_shed_cells +=
          sw->cells_dropped(port, atm::ServiceClass::best_effort);
      p.policed_cells += sw->cells_discarded(port, atm::DiscardCause::policed);
    }
  }
  return p;
}

void run() {
  const bool is_short = bench_short();
  const double seconds = is_short ? 0.5 : 2.0;
  banner(
      "Extension: negotiated-QoS enforcement under congestion "
      "(CBR 20 Mb/s + VBR policed at 3x SCR + UBR sweep, one DS3 trunk)");
  util::TextTable t(
      "Frame delivery at the sink (trunk payload capacity ~40.8 Mb/s after "
      "cell tax; CBR offers a constant 20 Mb/s inside contract, VBR offers "
      "15 Mb/s against a 5 Mb/s SCR)");
  t.header({"UBR offered Mb/s", "CBR delivered/offered", "CBR goodput Mb/s",
            "CBR drops", "VBR delivered/offered", "policed cells",
            "UBR delivered/offered", "UBR shed cells"});
  const std::vector<double> sweep =
      is_short ? std::vector<double>{0.0, 45.0, 90.0}
               : std::vector<double>{0.0, 10.0, 20.0, 30.0, 45.0, 60.0, 90.0};
  Point overload{};
  for (double ubr : sweep) {
    Point p = run_point(ubr, seconds);
    if (ubr == sweep.back()) overload = p;
    t.row({util::fmt(ubr, 0),
           std::to_string(p.cbr_delivered) + "/" +
               std::to_string(p.cbr_offered_frames),
           util::fmt(p.cbr_goodput_mbps, 1), std::to_string(p.cbr_cell_drops),
           std::to_string(p.vbr_delivered) + "/" +
               std::to_string(p.vbr_offered_frames),
           std::to_string(p.policed_cells),
           std::to_string(p.ubr_delivered) + "/" +
               std::to_string(p.ubr_offered_frames),
           std::to_string(p.ubr_shed_cells)});
  }
  t.print();
  const double fraction =
      overload.cbr_goodput_mbps / kCbrReservedMbps;
  compare("CBR goodput fraction under 2x overload", ">= 0.95 (the contract)",
          util::fmt(fraction, 3));
  std::printf(
      "\nNote: the VBR flow deliberately overdrives its own contract, so the\n"
      "dual GCRA sheds its excess at ingress and its frames shred - that is\n"
      "enforcement, not a defect.  UBR loss is non-monotonic in offered load:\n"
      "push-out victimizes individual cells, AAL5 discards the whole frame,\n"
      "and at higher loads the source uplink serializes the excess past the\n"
      "burst window.  CBR is immune throughout - the claim under test.\n");

  JsonReport rep("qos");
  rep.metric("cbr_reserved_mbps", kCbrReservedMbps);
  rep.metric("cbr_goodput_mbps", overload.cbr_goodput_mbps);
  rep.metric("cbr_goodput_fraction", fraction);
  rep.metric("cbr_cell_drops", static_cast<double>(overload.cbr_cell_drops));
  rep.metric("vbr_goodput_mbps", overload.vbr_goodput_mbps);
  rep.metric("policed_cells", static_cast<double>(overload.policed_cells));
  rep.metric("ubr_offered_mbps", overload.ubr_offered_mbps);
  rep.metric("ubr_delivered_frames",
             static_cast<double>(overload.ubr_delivered));
  rep.metric("ubr_offered_frames",
             static_cast<double>(overload.ubr_offered_frames));
  rep.metric("ubr_shed_cells", static_cast<double>(overload.ubr_shed_cells));
  rep.info("mode", is_short ? "short" : "full");
  rep.info("workload",
           "CBR 20 Mb/s + VBR 15 Mb/s (SCR 5 Mb/s) + UBR 2x-trunk sweep over "
           "one DS3 trunk; metrics from the highest-overload point");
  rep.write();
}

}  // namespace
}  // namespace xunet::bench

int main() {
  xunet::bench::run();
  return 0;
}
