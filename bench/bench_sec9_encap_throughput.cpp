// bench_sec9_encap_throughput — reproduces the §9 expectation that, because
// encapsulation/decapsulation costs only 39 instructions at the router,
// "throughput between a host and a router [is] comparable to that of UDP".
//
// Two measurements over the same host↔router FDDI link:
//   1. PF_XUNET frames carried as IPPROTO_ATM encapsulation, host → router;
//   2. plain UDP datagrams of the same payload, host → router.
// The series sweeps the frame size; the reported ratio should hover near 1.
#include "bench_common.hpp"

namespace xunet::bench {
namespace {

void run() {
  banner("Section 9: AAL-over-IP vs UDP throughput, host to router");

  auto tb = core::TestbedConfig{}.hosts(2).build_deferred();
  if (!tb->bring_up().ok()) std::abort();
  auto& h0 = tb->host(0);
  auto& h1 = tb->host(1);
  auto& r0 = tb->router(0);

  core::CallServer server(*h1.kernel, h1.home->kernel->ip_node().address(),
                          "tput", 5200);
  server.start([](util::Result<void>) {});
  tb->sim().run_for(sim::milliseconds(300));
  core::CallClient client(*h0.kernel, h0.home->kernel->ip_node().address());
  std::optional<core::CallClient::Call> call;
  client.open("berkeley.rt", "tput", "",
              [&](util::Result<core::CallClient::Call> r) {
                if (r.ok()) call = *r;
              });
  tb->sim().run_for(sim::seconds(3));
  if (!call) std::abort();

  const int frames = 200;
  util::TextTable t("Throughput host->router (200 frames per point)");
  t.header({"payload B", "PF_XUNET-over-IP Mb/s", "UDP Mb/s", "ratio"});

  for (std::size_t payload : {256u, 512u, 1024u, 2048u, 4096u, 8192u}) {
    util::Buffer data(payload, 0x42);

    // --- encapsulated PF_XUNET path ---
    std::uint64_t base = r0.kernel->proto_atm().frames_decapsulated();
    sim::SimTime t0 = tb->sim().now();
    for (int i = 0; i < frames; ++i) {
      if (!client.send(*call, data).ok()) std::abort();
    }
    while (r0.kernel->proto_atm().frames_decapsulated() < base + frames) {
      tb->sim().run_for(sim::milliseconds(1));
    }
    double encap_s = (tb->sim().now() - t0).sec();
    double encap_mbps = frames * payload * 8.0 / encap_s / 1e6;

    // --- UDP baseline over the identical link ---
    int received = 0;
    (void)r0.kernel->udp().bind(6000, [&](ip::IpAddress, std::uint16_t,
                                          util::BytesView) { ++received; });
    t0 = tb->sim().now();
    for (int i = 0; i < frames; ++i) {
      if (!h0.kernel->udp()
               .send(r0.kernel->ip_node().address(), 6000, 6001, data)
               .ok()) {
        std::abort();
      }
    }
    while (received < frames) tb->sim().run_for(sim::milliseconds(1));
    double udp_s = (tb->sim().now() - t0).sec();
    double udp_mbps = frames * payload * 8.0 / udp_s / 1e6;
    r0.kernel->udp().unbind(6000);

    t.row({std::to_string(payload), util::fmt(encap_mbps, 2),
           util::fmt(udp_mbps, 2), util::fmt(encap_mbps / udp_mbps, 3)});
  }
  t.print();

  compare("host<->router AAL-over-IP throughput", "comparable to UDP",
          "ratio ~1 across payload sizes (see table)");
  compare("encapsulation header cost",
          "~= UDP header cost ('roughly the same time')",
          "IPPROTO_ATM send 58+8m instr vs UDP-over-IP send ~61 instr");
}

}  // namespace
}  // namespace xunet::bench

int main() {
  xunet::bench::run();
  return 0;
}
