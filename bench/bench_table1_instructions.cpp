// bench_table1_instructions — reproduces Table 1: "Instruction counts for
// the send and receive paths at a host".
//
// Method (mirroring §9): drive single frames of m mbufs (m = 1..32) through
// the real host send path (PF_XUNET → Orc → IPPROTO_ATM → IP) and the real
// host receive path (IP → IPPROTO_ATM → Orc → PF_XUNET), read the charged
// per-component instruction counters, and fit the linear per-mbuf model.
// Also measures the +39-instruction router switching cost of an
// encapsulated packet.
#include "bench_common.hpp"
#include "kern/instr.hpp"
#include "util/stats.hpp"

namespace xunet::bench {
namespace {

using kern::InstrComponent;
using kern::InstrDir;

void run() {
  banner("Table 1: instruction counts for send/receive paths at a host");

  auto tb = core::TestbedConfig{}.hosts(2).build_deferred();
  if (!tb->bring_up().ok()) std::abort();
  auto& h0 = tb->host(0);
  auto& h1 = tb->host(1);

  core::CallServer server(*h1.kernel, h1.home->kernel->ip_node().address(),
                          "t1", 5001);
  server.start([](util::Result<void>) {});
  tb->sim().run_for(sim::milliseconds(300));

  core::CallClient client(*h0.kernel, h0.home->kernel->ip_node().address());
  std::optional<core::CallClient::Call> call;
  client.open("berkeley.rt", "t1", "",
              [&](util::Result<core::CallClient::Call> r) {
                if (r.ok()) call = *r;
              });
  tb->sim().run_for(sim::seconds(3));
  if (!call) std::abort();

  const std::size_t mbuf_bytes = h0.kernel->config().mbuf_bytes;
  const std::vector<std::size_t> mbuf_counts{1, 2, 4, 8, 16, 32};

  struct Row {
    std::size_t m;
    std::uint64_t pfx_r, orc_r, atm_r, ip_r, total_r;
    std::uint64_t pfx_s, orc_s, atm_s, ip_s, total_s;
    std::uint64_t router_switch;
  };
  std::vector<Row> rows;
  std::vector<double> xs, send_totals, recv_totals;

  for (std::size_t m : mbuf_counts) {
    h0.kernel->instr().reset();
    h1.kernel->instr().reset();
    tb->router(0).kernel->instr().reset();
    // A frame of exactly m mbufs on the send side arrives as m mbufs on the
    // receive side (the board DMA fills mbuf_bytes-sized buffers).
    auto chain = kern::MbufChain::shaped(m, mbuf_bytes);
    if (!h0.kernel->xunet_send_chain(client.pid(), call->fd, chain).ok()) {
      std::abort();
    }
    tb->sim().run_for(sim::seconds(1));

    Row r;
    r.m = m;
    auto& si = h0.kernel->instr();
    auto& ri = h1.kernel->instr();
    r.pfx_s = si.total(InstrComponent::pf_xunet, InstrDir::send);
    r.orc_s = si.total(InstrComponent::orc_driver, InstrDir::send);
    r.atm_s = si.total(InstrComponent::proto_atm, InstrDir::send);
    r.ip_s = si.total(InstrComponent::ip_layer, InstrDir::send);
    r.total_s = si.path_total(InstrDir::send);
    r.pfx_r = ri.total(InstrComponent::pf_xunet, InstrDir::receive);
    r.orc_r = ri.total(InstrComponent::orc_driver, InstrDir::receive);
    r.atm_r = ri.total(InstrComponent::proto_atm, InstrDir::receive);
    r.ip_r = ri.total(InstrComponent::ip_layer, InstrDir::receive);
    r.total_r = ri.path_total(InstrDir::receive);
    r.router_switch = tb->router(0).kernel->instr().total(
        InstrComponent::router_switch, InstrDir::receive);
    rows.push_back(r);
    xs.push_back(static_cast<double>(m));
    send_totals.push_back(static_cast<double>(r.total_s));
    recv_totals.push_back(static_cast<double>(r.total_r));
  }

  util::TextTable t("Measured per-component instruction counts (one frame of m mbufs)");
  t.header({"m", "PF_XUNET rx", "Driver rx", "IPPROTO_ATM rx", "IP rx",
            "TOTAL rx", "PF_XUNET tx", "Driver tx", "IPPROTO_ATM tx", "IP tx",
            "TOTAL tx", "router +"});
  for (const Row& r : rows) {
    t.row({std::to_string(r.m), std::to_string(r.pfx_r), std::to_string(r.orc_r),
           std::to_string(r.atm_r), std::to_string(r.ip_r),
           std::to_string(r.total_r), std::to_string(r.pfx_s),
           std::to_string(r.orc_s), std::to_string(r.atm_s),
           std::to_string(r.ip_s), std::to_string(r.total_s),
           std::to_string(r.router_switch)});
  }
  t.print();

  auto fit_rx = util::fit_linear(xs, recv_totals);
  auto fit_tx = util::fit_linear(xs, send_totals);

  std::printf("Linear fits over m (the paper's '+ 8 * #mbufs' model):\n");
  compare("receive total", "194 + 8*m",
          util::fmt(fit_rx.intercept, 0) + " + " + util::fmt(fit_rx.slope, 0) +
              "*m (max residual " + util::fmt(fit_rx.max_residual, 2) + ")");
  compare("send total", "119 + 8*m",
          util::fmt(fit_tx.intercept, 0) + " + " + util::fmt(fit_tx.slope, 0) +
              "*m (max residual " + util::fmt(fit_tx.max_residual, 2) + ")");
  compare("PF_XUNET receive", "99 + 8*m",
          std::to_string(rows[0].pfx_r - 8) + " + 8*m");
  compare("IPPROTO_ATM receive", "36", std::to_string(rows[0].atm_r));
  compare("Device driver receive", "2", std::to_string(rows[0].orc_r));
  compare("IP receive", "57", std::to_string(rows[0].ip_r));
  compare("IPPROTO_ATM send", "58 + 8*m",
          std::to_string(rows[0].atm_s - 8) + " + 8*m");
  compare("IP send", "61", std::to_string(rows[0].ip_s));
  compare("PF_XUNET / driver send", "0 / 0",
          std::to_string(rows[0].pfx_s) + " / " + std::to_string(rows[0].orc_s));
  compare("router switching of encapsulated packet", "+39",
          "+" + std::to_string(rows[0].router_switch));
}

}  // namespace
}  // namespace xunet::bench

int main() {
  xunet::bench::run();
  return 0;
}
