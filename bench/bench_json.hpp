// bench_json.hpp — machine-readable benchmark reports.
//
// Every headline bench writes one BENCH_<name>.json next to its stdout
// report so performance is a recorded trajectory, not a scrollback
// artifact.  The schema is deliberately flat:
//
//   {
//     "schema": "xunet.bench.v1",
//     "bench": "datapath",
//     "metrics": { "<key>": <number>, ... },
//     "info":    { "<key>": "<string>", ... }
//   }
//
// `metrics` holds every measured number; `info` holds provenance strings
// (workload shape, short-mode flag, units notes).  tools/bench_json_check
// validates presence of the schema marker and per-bench required keys, and
// CI runs it on every artifact.
#pragma once

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

namespace xunet::bench {

/// True when the XUNET_BENCH_SHORT environment variable asks for the
/// CI-sized workload (seconds, not minutes; same code paths).
inline bool bench_short() {
  const char* v = std::getenv("XUNET_BENCH_SHORT");
  return v != nullptr && v[0] != '\0' && v[0] != '0';
}

/// Accumulates metrics in insertion order and writes the report.
class JsonReport {
 public:
  explicit JsonReport(std::string bench_name) : bench_(std::move(bench_name)) {}

  void metric(const std::string& key, double v) {
    metrics_.emplace_back(key, v);
  }
  void info(const std::string& key, const std::string& v) {
    infos_.emplace_back(key, v);
  }

  /// Write BENCH_<bench>.json (or `path` when given).  Returns false on
  /// I/O failure — benches warn but do not abort, so a read-only CWD
  /// never kills a measurement run.
  bool write(const std::string& path = {}) const {
    const std::string file = path.empty() ? "BENCH_" + bench_ + ".json" : path;
    std::FILE* f = std::fopen(file.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "bench_json: cannot write %s\n", file.c_str());
      return false;
    }
    std::fprintf(f, "{\n  \"schema\": \"xunet.bench.v1\",\n  \"bench\": \"%s\",\n",
                 escape(bench_).c_str());
    std::fprintf(f, "  \"metrics\": {");
    for (std::size_t i = 0; i < metrics_.size(); ++i) {
      std::fprintf(f, "%s\n    \"%s\": %s", i ? "," : "",
                   escape(metrics_[i].first).c_str(),
                   number(metrics_[i].second).c_str());
    }
    std::fprintf(f, "\n  },\n  \"info\": {");
    for (std::size_t i = 0; i < infos_.size(); ++i) {
      std::fprintf(f, "%s\n    \"%s\": \"%s\"", i ? "," : "",
                   escape(infos_[i].first).c_str(),
                   escape(infos_[i].second).c_str());
    }
    std::fprintf(f, "\n  }\n}\n");
    std::fclose(f);
    std::printf("wrote %s\n", file.c_str());
    return true;
  }

 private:
  /// JSON numbers: integral values print without a fraction so counters
  /// stay exact; others with enough digits to round-trip a double.
  static std::string number(double v) {
    if (v == static_cast<double>(static_cast<std::int64_t>(v))) {
      char buf[32];
      std::snprintf(buf, sizeof buf, "%" PRId64,
                    static_cast<std::int64_t>(v));
      return buf;
    }
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.9g", v);
    return buf;
  }

  static std::string escape(const std::string& s) {
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
      if (c == '"' || c == '\\') {
        out += '\\';
        out += c;
      } else if (static_cast<unsigned char>(c) < 0x20) {
        char buf[8];
        std::snprintf(buf, sizeof buf, "\\u%04x", c);
        out += buf;
      } else {
        out += c;
      }
    }
    return out;
  }

  std::string bench_;
  std::vector<std::pair<std::string, double>> metrics_;
  std::vector<std::pair<std::string, std::string>> infos_;
};

}  // namespace xunet::bench
