// bench_ext_call_load — extension experiment: call-level behaviour of the
// admission-controlled network under Poisson load.
//
// The paper's signaling hands QoS to the network's admission control
// (Saran et al., ref [17]) and flags end-system/network scheduling as
// future work.  This bench drives the full signaling plane with a classic
// teletraffic workload — Poisson call arrivals, exponential holding times,
// each call asking a fixed guaranteed bandwidth — and sweeps the offered
// load.  With C = trunk/percall circuits, measured blocking should track
// the Erlang-B formula; deviations would reveal leaks or serialization
// artifacts in the signaling plane.
#include <cmath>

#include "bench_common.hpp"
#include "util/rng.hpp"

namespace xunet::bench {
namespace {

double erlang_b(double offered, int circuits) {
  double b = 1.0;
  for (int k = 1; k <= circuits; ++k) {
    b = offered * b / (k + offered * b);
  }
  return b;
}

struct LoadResult {
  int offered_calls = 0;
  int blocked = 0;
  int failed_other = 0;
};

LoadResult run_load(double erlangs, int circuits, int calls) {
  core::TestbedConfig cfg;
  cfg.kernel.fd_table_size = 400;
  cfg.kernel.tcp_msl = sim::seconds(1);
  cfg.sighost.per_call_log_cost = sim::milliseconds(1);
  auto tb = core::Testbed::canonical(cfg);
  if (!tb->bring_up().ok()) std::abort();
  auto& r1 = tb->router(1);
  core::CallServer server(*r1.kernel, r1.kernel->ip_node().address(), "load",
                          5700);
  // The server grants whatever is asked; blocking is the network's call.
  server.set_qos_limit(atm::Qos{atm::ServiceClass::guaranteed, 45'000'000});
  server.start([](util::Result<void>) {});
  tb->sim().run_for(sim::milliseconds(300));

  auto client = std::make_shared<core::CallClient>(
      *tb->router(0).kernel, tb->router(0).kernel->ip_node().address());
  auto result = std::make_shared<LoadResult>();
  auto rng = std::make_shared<util::Rng>(0xE71A);

  // Each call wants trunk/circuits of the DS3.
  const std::uint64_t per_call = 45'000'000 / static_cast<std::uint64_t>(circuits);
  const std::string qos =
      "class=guaranteed,bw=" + std::to_string(per_call);
  // Holding time 20 s mean; arrival rate = erlangs / holding.
  const double hold_mean_s = 20.0;
  const double arrival_rate = erlangs / hold_mean_s;

  // Schedule all Poisson arrivals up front (deterministic given the seed).
  double t = 1.0;
  for (int i = 0; i < calls; ++i) {
    t += rng->exponential(1.0 / arrival_rate);
    tb->sim().schedule(
        sim::seconds_f(t), [tb = tb.get(), client, result, rng, qos,
                            hold_mean_s] {
          ++result->offered_calls;
          double hold = rng->exponential(hold_mean_s);
          client->open(
              "berkeley.rt", "load", qos,
              [tb, client, result, hold](util::Result<core::CallClient::Call> r) {
                if (!r.ok()) {
                  if (r.error() == util::Errc::no_resources) {
                    ++result->blocked;
                  } else {
                    ++result->failed_other;
                  }
                  return;
                }
                tb->sim().schedule(sim::seconds_f(hold),
                                   [client, call = *r] {
                                     client->close_call(call);
                                   });
              });
        });
  }
  tb->sim().run_for(sim::seconds_f(t + 400.0));
  auto rep = tb->audit();
  if (!rep.clean()) {
    std::printf("  WARNING: leak after load run: %s\n", rep.describe().c_str());
  }
  return *result;
}

void run() {
  banner(
      "Extension: admission-control blocking under Poisson load "
      "(Erlang-B reference)");
  const int circuits = 5;  // 5 x 9 Mb/s guaranteed calls fill the DS3
  util::TextTable t("Blocking probability, C=5 circuits, 400 offered calls");
  t.header({"offered load (Erlang)", "blocked/offered", "measured B",
            "Erlang-B"});
  for (double erlangs : {1.0, 2.0, 3.0, 5.0, 8.0}) {
    auto r = run_load(erlangs, circuits, 400);
    double measured =
        static_cast<double>(r.blocked) / std::max(1, r.offered_calls);
    t.row({util::fmt(erlangs, 1),
           std::to_string(r.blocked) + "/" + std::to_string(r.offered_calls),
           util::fmt(measured, 3), util::fmt(erlang_b(erlangs, circuits), 3)});
    if (r.failed_other != 0) {
      std::printf("  note: %d calls failed for non-admission reasons\n",
                  r.failed_other);
    }
  }
  t.print();
  compare("blocking vs offered load", "(not in paper; ref [17] policy)",
          "tracks Erlang-B; admission control neither leaks nor over-admits");
}

}  // namespace
}  // namespace xunet::bench

int main() {
  xunet::bench::run();
  return 0;
}
