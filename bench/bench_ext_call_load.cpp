// bench_ext_call_load — extension experiment: control-plane scaling of the
// sharded signaling plane to one million live VCs.
//
// The paper's testbed holds tens of calls; §10 worries about descriptor
// tables and per-call state long before a million.  This bench grows the
// deployment instead of the call table: a long router chain, four sighost
// shards per router (each owning a VCI residue class), adjacent-only
// signaling PVCs, and an adjacent-pair call workload that holds every call
// open.  It measures wall-clock setup cost per call and in-sim setup
// latency at each decade (10^4, 10^5, 10^6 live VCs) — with trie-indexed
// VCI lookup and sharded sighosts, cost per call must stay flat (sub-linear
// growth) as the live-VC population grows two decades.
//
// Short mode (XUNET_BENCH_SHORT=1) runs the same code two decades lower:
// 10^2 -> 10^4 live VCs on a six-router chain with two shards.
#include <algorithm>
#include <chrono>
#include <memory>
#include <vector>

#include "bench_common.hpp"
#include "bench_json.hpp"

namespace xunet::bench {
namespace {

struct Shape {
  int routers = 34;        ///< chain length; pairs = routers - 1
  int shards = 4;          ///< sighost shards per router
  int per_pair = 30304;    ///< calls per adjacent pair (held open)
  std::uint64_t lo = 10'000;
  std::uint64_t mid = 100'000;
  std::uint64_t hi = 1'000'000;
  sim::SimDuration stagger = sim::microseconds(100);  ///< per-pair issue gap
};

struct Progress {
  std::uint64_t done = 0;    ///< opens resolved (ok + failed)
  std::uint64_t ok = 0;      ///< calls established and held open
  std::uint64_t failed = 0;
  std::vector<std::uint32_t> setup_us;  ///< in-sim setup latency, completion order
  std::chrono::steady_clock::time_point wall_start;
  double wall_us_lo = 0.0, wall_us_mid = 0.0, wall_us_hi = 0.0;
};

double wall_us_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

/// p-th percentile (0..100) of `v[first, last)`, by copy + nth_element.
double percentile_us(const std::vector<std::uint32_t>& v, std::size_t first,
                     std::size_t last, double p) {
  if (last > v.size()) last = v.size();
  if (first >= last) return 0.0;
  std::vector<std::uint32_t> seg(v.begin() + static_cast<std::ptrdiff_t>(first),
                                 v.begin() + static_cast<std::ptrdiff_t>(last));
  const std::size_t k = std::min(
      seg.size() - 1,
      static_cast<std::size_t>(p / 100.0 * static_cast<double>(seg.size())));
  std::nth_element(seg.begin(), seg.begin() + static_cast<std::ptrdiff_t>(k),
                   seg.end());
  return static_cast<double>(seg[k]);
}

void run() {
  Shape sh;
  if (bench_short()) {
    sh = Shape{6, 2, 2000, 100, 1'000, 10'000, sim::microseconds(100)};
  }
  const int pairs = sh.routers - 1;
  const std::uint64_t total =
      static_cast<std::uint64_t>(pairs) * static_cast<std::uint64_t>(sh.per_pair);
  XBENCH_CHECK(total >= sh.hi);

  banner("Extension: control-plane scaling — " + std::to_string(total) +
         " live VCs over " + std::to_string(sh.shards) +
         "-way sharded sighosts (" + std::to_string(sh.routers) +
         "-router chain)");

  core::TestbedConfig cfg;
  // Every call is held open: both processes on a router need a descriptor
  // per call plus transient per-call conns.
  cfg.kernel.fd_table_size = static_cast<std::size_t>(sh.per_pair) * 2 + 2048;
  cfg.kernel.tcp_msl = sim::milliseconds(200);
  // This experiment measures control-plane data structures, not the
  // paper's per-call IPC and logging costs — zero them so the decades run
  // in bounded sim time.
  cfg.kernel.context_switch = sim::microseconds(10);
  cfg.kernel.anand_buffers = 65536;
  cfg.sighost.per_call_log_cost = sim::SimDuration{};
  cfg.sighost.maintenance_logging = false;
  // The issue rate intentionally outruns the round-trip: size the request
  // lists for occupancy instead of shedding the burst.
  cfg.sighost.max_outgoing_requests = 1u << 16;
  cfg.sighost.max_incoming_requests = 1u << 16;
  auto tb = cfg.routers(sh.routers)
                .shards(sh.shards)
                .adjacent_pvc_only()
                .build_deferred();
  if (!tb->bring_up().ok()) std::abort();

  // One server per chain position 1..N-1, one client per position 0..N-2:
  // pair p runs client(router p) -> server(router p+1), so every call
  // crosses exactly one trunk and the per-link VCI budget stays inside
  // the 16-bit space.
  std::vector<std::unique_ptr<core::CallServer>> servers;
  std::vector<std::unique_ptr<core::CallClient>> clients;
  std::vector<std::string> dsts;
  for (int p = 0; p < pairs; ++p) {
    core::Router& dst_r = tb->router(static_cast<std::size_t>(p) + 1);
    servers.push_back(std::make_unique<core::CallServer>(
        *dst_r.kernel, dst_r.kernel->ip_node().address(), "load", 5700,
        sh.shards));
    servers.back()->start([](util::Result<void>) {});
    dsts.push_back(dst_r.kernel->atm_address().name);
    core::Router& src_r = tb->router(static_cast<std::size_t>(p));
    clients.push_back(std::make_unique<core::CallClient>(
        *src_r.kernel, src_r.kernel->ip_node().address(), sh.shards));
  }
  tb->sim().run_for(sim::milliseconds(500));

  auto prog = std::make_shared<Progress>();
  prog->setup_us.reserve(total);

  // Per-pair self-rescheduling issuer: one call every `stagger`, each call
  // retried under a generous deadline so transient shedding cannot dent
  // the live-VC target.
  app::OpenOptions opts;
  opts.deadline = sim::seconds(60);
  opts.retry_backoff = sim::milliseconds(10);
  opts.retry_backoff_max = sim::milliseconds(200);
  struct Issuer {
    core::CallClient* client = nullptr;
    const std::string* dst = nullptr;
    int remaining = 0;
  };
  auto issuers = std::make_shared<std::vector<Issuer>>();
  for (int p = 0; p < pairs; ++p) {
    issuers->push_back({clients[static_cast<std::size_t>(p)].get(), &dsts[static_cast<std::size_t>(p)],
                        sh.per_pair});
  }
  const Shape shape = sh;
  std::function<void(std::size_t)> issue = [&tb, prog, issuers, opts, shape,
                                            &issue](std::size_t p) {
    Issuer& is = (*issuers)[p];
    if (is.remaining-- <= 0) return;
    const sim::SimTime issued = tb->sim().now();
    is.client->open(
        *is.dst, "load", "", opts,
        [prog, issued, shape, sim = &tb->sim()](
            util::Result<core::CallClient::Call> r) {
          if (r.ok()) {
            ++prog->ok;
          } else {
            ++prog->failed;
          }
          prog->setup_us.push_back(static_cast<std::uint32_t>(
              (sim->now().ns() - issued.ns()) / 1000));
          const std::uint64_t done = ++prog->done;
          if (done == shape.lo) {
            prog->wall_us_lo = wall_us_since(prog->wall_start);
          } else if (done == shape.mid) {
            prog->wall_us_mid = wall_us_since(prog->wall_start);
          } else if (done == shape.hi) {
            prog->wall_us_hi = wall_us_since(prog->wall_start);
          }
        });
    if (is.remaining > 0) {
      tb->sim().schedule(shape.stagger, [p, &issue] { issue(p); });
    }
  };

  prog->wall_start = std::chrono::steady_clock::now();
  for (std::size_t p = 0; p < issuers->size(); ++p) issue(p);

  // Drive to completion: issue window plus the retry deadline.
  const std::int64_t give_up =
      tb->sim().now().ns() +
      (shape.stagger * sh.per_pair + sim::seconds(120)).ns();
  while (prog->done < total && tb->sim().now().ns() < give_up) {
    tb->sim().run_for(sim::milliseconds(500));
  }

  const double wall_lo = prog->wall_us_lo / static_cast<double>(sh.lo);
  const double wall_hi = (prog->wall_us_hi - prog->wall_us_mid) /
                         static_cast<double>(sh.hi - sh.mid);
  const double ratio = wall_lo > 0.0 ? wall_hi / wall_lo : 0.0;
  const double p50_lo = percentile_us(prog->setup_us, 0, sh.lo, 50.0);
  const double p99_lo = percentile_us(prog->setup_us, 0, sh.lo, 99.0);
  const double p50_hi = percentile_us(prog->setup_us, sh.mid, sh.hi, 50.0);
  const double p99_hi = percentile_us(prog->setup_us, sh.mid, sh.hi, 99.0);

  util::TextTable t("Setup cost by live-VC decade (calls held open)");
  t.header({"decade", "wall us/call", "sim setup p50 us", "sim setup p99 us"});
  t.row({std::to_string(sh.lo), util::fmt(wall_lo, 2), util::fmt(p50_lo, 0),
         util::fmt(p99_lo, 0)});
  t.row({std::to_string(sh.hi), util::fmt(wall_hi, 2), util::fmt(p50_hi, 0),
         util::fmt(p99_hi, 0)});
  t.print();

  std::printf("  live VCs held: %llu (failed %llu)  wall-cost ratio hi/lo: %s\n",
              static_cast<unsigned long long>(prog->ok),
              static_cast<unsigned long long>(prog->failed),
              util::fmt(ratio, 2).c_str());
  compare("setup cost vs live-VC population", "(not in paper; extension)",
          "flat per-call cost across two decades (trie index + shards)");

  JsonReport rep("call_load");
  rep.metric("live_vcs_peak", static_cast<double>(prog->ok));
  rep.metric("calls_offered", static_cast<double>(total));
  rep.metric("calls_failed", static_cast<double>(prog->failed));
  rep.metric("wall_us_per_call_lo", wall_lo);
  rep.metric("wall_us_per_call_hi", wall_hi);
  rep.metric("sublinear_ratio", ratio);
  rep.metric("setup_us_p50_lo", p50_lo);
  rep.metric("setup_us_p99_lo", p99_lo);
  rep.metric("setup_us_p50_hi", p50_hi);
  rep.metric("setup_us_p99_hi", p99_hi);
  rep.info("mode", bench_short() ? "short" : "full");
  rep.info("topology", std::to_string(sh.routers) + "-router chain, " +
                           std::to_string(sh.shards) + " shards/router, " +
                           std::to_string(sh.per_pair) + " calls/pair");
  rep.info("decades", std::to_string(sh.lo) + ".." + std::to_string(sh.hi));
  rep.write();

  XBENCH_CHECK(prog->ok >= sh.hi);
  // Sub-linear growth gate: per-call wall cost must grow strictly slower
  // than the live-VC population across the 10^4 -> 10^6 sweep, i.e. the
  // hi/lo ratio stays below the 100x decade factor.  The trie keeps the
  // lookup path logarithmic (~17x measured, dominated by per-VC timer
  // background at 10^6 live sockets, not by table walks).  Full mode only —
  // the short workload is too small for stable wall-clock ratios.
  if (!bench_short()) {
    XBENCH_CHECK(ratio <
                 static_cast<double>(sh.hi) / static_cast<double>(sh.lo));
  }
}

}  // namespace
}  // namespace xunet::bench

int main() {
  xunet::bench::run();
  return 0;
}
