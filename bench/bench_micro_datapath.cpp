// bench_micro_datapath — google-benchmark micro-benchmarks of this library's
// hot paths: AAL5 segmentation/reassembly, CRC-32, the encapsulation header,
// signaling message (de)serialization, and event-loop dispatch.  These are
// wall-clock benchmarks of the reproduction itself (not simulated time);
// they guard against performance regressions in the substrate.
//
// Work totals accumulate in an obs::MetricsRegistry and are dumped after the
// google-benchmark report, so bench output shares one naming scheme
// (bench.micro.<name>.*) with the simulation's own metrics.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "atm/aal5.hpp"
#include "ip/packet.hpp"
#include "obs/metrics.hpp"
#include "signaling/messages.hpp"
#include "sim/simulator.hpp"
#include "tcpsim/segment.hpp"
#include "util/crc32.hpp"
#include "util/rng.hpp"

namespace {

using namespace xunet;

obs::MetricsRegistry& registry() {
  static obs::MetricsRegistry mx;
  return mx;
}

// Record one benchmark's totals: iterations as a counter, per-size bytes
// processed as a histogram sample (so the dump shows the size sweep).
void record(const char* name, const benchmark::State& state,
            std::int64_t bytes_per_iter = 0) {
  std::string base = std::string("bench.micro.") + name;
  registry().counter(base + ".iterations").inc(
      static_cast<std::uint64_t>(state.iterations()));
  if (bytes_per_iter > 0) {
    registry().histogram(base + ".bytes_per_iter").observe(
        static_cast<double>(bytes_per_iter));
  }
}

util::Buffer random_payload(std::size_t n) {
  util::Rng rng(n);
  util::Buffer b(n);
  for (auto& x : b) x = static_cast<std::uint8_t>(rng.next());
  return b;
}

void BM_Crc32(benchmark::State& state) {
  auto data = random_payload(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(util::crc32(data));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
  record("crc32", state, state.range(0));
}
BENCHMARK(BM_Crc32)->Arg(64)->Arg(1024)->Arg(65536);

void BM_Aal5Segment(benchmark::State& state) {
  atm::Aal5Segmenter seg;
  auto data = random_payload(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    auto cells = seg.segment(42, data);
    benchmark::DoNotOptimize(cells);
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
  record("aal5_segment", state, state.range(0));
}
BENCHMARK(BM_Aal5Segment)->Arg(48)->Arg(1024)->Arg(9180)->Arg(65535);

void BM_Aal5RoundTrip(benchmark::State& state) {
  atm::Aal5Segmenter seg;
  std::size_t delivered = 0;
  atm::Aal5Reassembler reasm([&](atm::Aal5Frame f) { delivered += f.payload.size(); });
  auto data = random_payload(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    auto cells = seg.segment(42, data);
    for (const atm::Cell& c : *cells) reasm.cell_arrival(c);
  }
  benchmark::DoNotOptimize(delivered);
  state.SetBytesProcessed(state.iterations() * state.range(0));
  record("aal5_round_trip", state, state.range(0));
}
BENCHMARK(BM_Aal5RoundTrip)->Arg(1024)->Arg(9180);

void BM_IpSerializeParse(benchmark::State& state) {
  ip::IpPacket p;
  p.src = ip::make_ip(1, 2, 3, 4);
  p.dst = ip::make_ip(5, 6, 7, 8);
  p.payload = random_payload(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    auto wire = ip::serialize(p);
    auto back = ip::parse_ip_packet(wire);
    benchmark::DoNotOptimize(back);
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
  record("ip_serialize_parse", state, state.range(0));
}
BENCHMARK(BM_IpSerializeParse)->Arg(256)->Arg(4096);

void BM_SignalingMsgRoundTrip(benchmark::State& state) {
  sig::Msg m;
  m.type = sig::MsgType::connect_req;
  m.service = "file-service";
  m.qos = "class=guaranteed,bw=1500000";
  m.dst = "mh.rt";
  for (auto _ : state) {
    auto wire = sig::serialize(m);
    auto back = sig::parse_msg(wire);
    benchmark::DoNotOptimize(back);
  }
  record("signaling_msg_round_trip", state);
}
BENCHMARK(BM_SignalingMsgRoundTrip);

void BM_TcpSegmentRoundTrip(benchmark::State& state) {
  tcp::Segment s;
  s.seq = 12345;
  s.flags.ack = true;
  s.payload = random_payload(1400);
  for (auto _ : state) {
    auto wire = tcp::serialize(s);
    auto back = tcp::parse_segment(wire);
    benchmark::DoNotOptimize(back);
  }
  state.SetBytesProcessed(state.iterations() * 1400);
  record("tcp_segment_round_trip", state, 1400);
}
BENCHMARK(BM_TcpSegmentRoundTrip);

void BM_SimulatorDispatch(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulator sim;
    std::uint64_t sum = 0;
    for (int i = 0; i < 1000; ++i) {
      sim.schedule(sim::microseconds(i), [&sum, i] { sum += std::uint64_t(i); });
    }
    sim.run();
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() * 1000);
  record("simulator_dispatch", state);
}
BENCHMARK(BM_SimulatorDispatch);

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  std::printf("\n== unified metrics registry (bench.micro.*) ==\n%s",
              registry().render_text().c_str());
  return 0;
}
