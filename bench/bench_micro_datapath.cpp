// bench_micro_datapath — google-benchmark micro-benchmarks of this library's
// hot paths: AAL5 segmentation/reassembly, CRC-32, the encapsulation header,
// signaling message (de)serialization, and event-loop dispatch.  These are
// wall-clock benchmarks of the reproduction itself (not simulated time);
// they guard against performance regressions in the substrate.
//
// Work totals accumulate in an obs::MetricsRegistry and are dumped after the
// google-benchmark report, so bench output shares one naming scheme
// (bench.micro.<name>.*) with the simulation's own metrics.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>

#include "atm/aal5.hpp"
#include "atm/link.hpp"
#include "atm/switch.hpp"
#include "bench_json.hpp"
#include "ip/packet.hpp"
#include "obs/metrics.hpp"
#include "signaling/messages.hpp"
#include "sim/simulator.hpp"
#include "tcpsim/segment.hpp"
#include "util/alloc_hook.hpp"
#include "util/crc32.hpp"
#include "util/rng.hpp"

namespace {

using namespace xunet;

obs::MetricsRegistry& registry() {
  static obs::MetricsRegistry mx;
  return mx;
}

// Record one benchmark's totals: iterations as a counter, per-size bytes
// processed as a histogram sample (so the dump shows the size sweep).
void record(const char* name, const benchmark::State& state,
            std::int64_t bytes_per_iter = 0) {
  std::string base = std::string("bench.micro.") + name;
  registry().counter(base + ".iterations").inc(
      static_cast<std::uint64_t>(state.iterations()));
  if (bytes_per_iter > 0) {
    registry().histogram(base + ".bytes_per_iter").observe(
        static_cast<double>(bytes_per_iter));
  }
}

util::Buffer random_payload(std::size_t n) {
  util::Rng rng(n);
  util::Buffer b(n);
  for (auto& x : b) x = static_cast<std::uint8_t>(rng.next());
  return b;
}

void BM_Crc32(benchmark::State& state) {
  auto data = random_payload(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(util::crc32(data));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
  record("crc32", state, state.range(0));
}
BENCHMARK(BM_Crc32)->Arg(64)->Arg(1024)->Arg(65536);

void BM_Aal5Segment(benchmark::State& state) {
  atm::Aal5Segmenter seg;
  auto data = random_payload(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    auto cells = seg.segment(42, data);
    benchmark::DoNotOptimize(cells);
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
  record("aal5_segment", state, state.range(0));
}
BENCHMARK(BM_Aal5Segment)->Arg(48)->Arg(1024)->Arg(9180)->Arg(65535);

void BM_Aal5RoundTrip(benchmark::State& state) {
  atm::Aal5Segmenter seg;
  std::size_t delivered = 0;
  atm::Aal5Reassembler reasm([&](atm::Aal5Frame f) { delivered += f.payload.size(); });
  auto data = random_payload(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    auto cells = seg.segment(42, data);
    for (const atm::Cell& c : *cells) reasm.cell_arrival(c);
  }
  benchmark::DoNotOptimize(delivered);
  state.SetBytesProcessed(state.iterations() * state.range(0));
  record("aal5_round_trip", state, state.range(0));
}
BENCHMARK(BM_Aal5RoundTrip)->Arg(1024)->Arg(9180);

void BM_IpSerializeParse(benchmark::State& state) {
  ip::IpPacket p;
  p.src = ip::make_ip(1, 2, 3, 4);
  p.dst = ip::make_ip(5, 6, 7, 8);
  p.payload = random_payload(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    auto wire = ip::serialize(p);
    auto back = ip::parse_ip_packet(wire);
    benchmark::DoNotOptimize(back);
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
  record("ip_serialize_parse", state, state.range(0));
}
BENCHMARK(BM_IpSerializeParse)->Arg(256)->Arg(4096);

void BM_SignalingMsgRoundTrip(benchmark::State& state) {
  sig::Msg m;
  m.type = sig::MsgType::connect_req;
  m.service = "file-service";
  m.qos = "class=guaranteed,bw=1500000";
  m.dst = "mh.rt";
  for (auto _ : state) {
    auto wire = sig::serialize(m);
    auto back = sig::parse_msg(wire);
    benchmark::DoNotOptimize(back);
  }
  record("signaling_msg_round_trip", state);
}
BENCHMARK(BM_SignalingMsgRoundTrip);

void BM_TcpSegmentRoundTrip(benchmark::State& state) {
  tcp::Segment s;
  s.seq = 12345;
  s.flags.ack = true;
  s.payload = random_payload(1400);
  for (auto _ : state) {
    auto wire = tcp::serialize(s);
    auto back = tcp::parse_segment(wire);
    benchmark::DoNotOptimize(back);
  }
  state.SetBytesProcessed(state.iterations() * 1400);
  record("tcp_segment_round_trip", state, 1400);
}
BENCHMARK(BM_TcpSegmentRoundTrip);

void BM_SimulatorDispatch(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulator sim;
    std::uint64_t sum = 0;
    for (int i = 0; i < 1000; ++i) {
      sim.schedule(sim::microseconds(i), [&sum, i] { sum += std::uint64_t(i); });
    }
    sim.run();
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() * 1000);
  record("simulator_dispatch", state);
}
BENCHMARK(BM_SimulatorDispatch);

// ---- cell-transport wall-clock benchmark → BENCH_datapath.json -------------
//
// One OC-12 link → switch → OC-12 link path with 25 µs arrival coalescing
// (the receive-interrupt batching of the fast path).  Measures real
// cells/sec of the reproduction itself against the recorded pre-fast-path
// baseline, plus the fast path's two structural claims: bounded event-queue
// depth (cell trains, not per-cell events) and an allocation-free
// steady-state cell path.

/// Wall-clock cells/sec of the pre-fast-path implementation on this exact
/// workload (per-cell events, std::function heap queue, per-cell delivery),
/// recorded when the fast path landed.  The acceptance bar is >= 5x this.
constexpr double kBaselineCellsPerSec = 1'968'173.0;

struct CountingSink final : atm::CellSink {
  std::uint64_t n = 0;
  void cell_arrival(const atm::Cell&) override { ++n; }
  void cells_arrival(const atm::Cell*, std::size_t k) override { n += k; }
};

void run_cell_transport_report() {
  const int frames = xunet::bench::bench_short() ? 500 : 5000;
  const int cells_per_frame = 100;

  sim::Simulator sim;
  atm::AtmSwitch sw(sim, "bench", sim::microseconds(10), 1u << 20);
  const int p_in = sw.add_port();
  const int p_out = sw.add_port();
  CountingSink sink;
  atm::CellLink in(sim, atm::kOc12Bps, sim::microseconds(5), sw.input(p_in));
  atm::CellLink out(sim, atm::kOc12Bps, sim::microseconds(5), sink);
  in.set_coalescing(sim::microseconds(25));
  out.set_coalescing(sim::microseconds(25));
  sw.set_output(p_out, out);
  if (!sw.install_route(p_in, 100, p_out, 200, atm::Qos{}).ok()) {
    std::fprintf(stderr, "cell transport: route install failed\n");
    return;
  }

  atm::Cell cell;
  cell.vci = 100;
  auto batch = [&](int nframes) {
    for (int f = 0; f < nframes; ++f) {
      sim.schedule(sim::microseconds(100 * static_cast<std::int64_t>(f)),
                   [&] {
                     for (int i = 0; i < cells_per_frame; ++i) in.send(cell);
                   });
    }
    sim.run();
  };

  // Warmup batch grows every ring/table to steady-state size; the measured
  // batch should then run allocation-free.
  batch(frames);
  const std::uint64_t delivered_warm = sink.n;
  const std::uint64_t allocs_before = util::alloc_count();
  const auto t0 = std::chrono::steady_clock::now();
  batch(frames);
  const auto t1 = std::chrono::steady_clock::now();
  const std::uint64_t allocs = util::alloc_count() - allocs_before;

  const std::uint64_t total =
      static_cast<std::uint64_t>(frames) * cells_per_frame;
  const double secs = std::chrono::duration<double>(t1 - t0).count();
  const double cps = static_cast<double>(total) / secs;

  std::printf("\n== cell transport (wall clock) ==\n"
              "cells=%llu delivered=%llu wall=%.3fs cells/sec=%.0f "
              "(baseline %.0f, %.1fx) peak_events=%zu allocs/cell=%.4f%s\n",
              static_cast<unsigned long long>(total),
              static_cast<unsigned long long>(sink.n - delivered_warm), secs,
              cps, kBaselineCellsPerSec, cps / kBaselineCellsPerSec,
              sim.peak_pending(),
              static_cast<double>(allocs) / static_cast<double>(total),
              util::alloc_hook_installed() ? "" : " (alloc hook absent)");

  xunet::bench::JsonReport rep("datapath");
  rep.metric("baseline_cells_per_sec", kBaselineCellsPerSec);
  rep.metric("cells_per_sec_wall", cps);
  rep.metric("speedup", cps / kBaselineCellsPerSec);
  rep.metric("cells", static_cast<double>(total));
  rep.metric("wall_seconds", secs);
  rep.metric("peak_event_queue_depth", static_cast<double>(sim.peak_pending()));
  rep.metric("allocs_per_cell",
             static_cast<double>(allocs) / static_cast<double>(total));
  rep.metric("alloc_hook_installed", util::alloc_hook_installed() ? 1 : 0);
  rep.info("workload", std::to_string(frames) + " frames x " +
                           std::to_string(cells_per_frame) +
                           " cells, OC-12, 25us coalescing");
  rep.info("baseline", "pre-fast-path implementation, same workload");
  rep.info("short_mode", xunet::bench::bench_short() ? "1" : "0");
  rep.write();
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  std::printf("\n== unified metrics registry (bench.micro.*) ==\n%s",
              registry().render_text().c_str());
  run_cell_transport_report();
  return 0;
}
