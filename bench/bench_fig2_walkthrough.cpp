// bench_fig2_walkthrough — regenerates Figure 2 ("Overall design") as a
// live walkthrough: one AAL frame travels host → router → ATM WAN →
// remote router → remote host, and every component of the figure reports
// the work it did (counter deltas captured around the single send).
#include "bench_common.hpp"

namespace xunet::bench {
namespace {

struct Snapshot {
  std::uint64_t h0_encap, r0_decap, r0_hobbit_tx, s1_cells, s2_cells,
      r1_hobbit_rx, r1_orc_in, r1_encap, h1_decap, h1_orc_in, h1_frames;
};

void run() {
  banner("Figure 2: the overall design, walked by a single frame");

  auto tb = core::TestbedConfig{}.hosts(2).build_deferred();
  if (!tb->bring_up().ok()) std::abort();
  auto& h0 = tb->host(0);
  auto& h1 = tb->host(1);
  auto& r0 = tb->router(0);
  auto& r1 = tb->router(1);

  core::CallServer server(*h1.kernel, h1.home->kernel->ip_node().address(),
                          "walk", 5900);
  server.start([](util::Result<void>) {});
  tb->sim().run_for(sim::milliseconds(300));
  core::CallClient client(*h0.kernel, h0.home->kernel->ip_node().address());
  std::optional<core::CallClient::Call> call;
  client.open("berkeley.rt", "walk", "class=predicted,bw=1000000",
              [&](util::Result<core::CallClient::Call> r) {
                if (r.ok()) call = *r;
              });
  tb->sim().run_for(sim::seconds(3));
  if (!call) std::abort();

  // The testbed's two switches sit inside the AtmNetwork; read their cell
  // counters through the routers' attachment points is not exposed, so use
  // hobbit/orc/proto counters per machine (the Figure 2 boxes).
  auto snap = [&]() -> Snapshot {
    Snapshot s;
    s.h0_encap = h0.kernel->proto_atm().frames_encapsulated();
    s.r0_decap = r0.kernel->proto_atm().frames_decapsulated();
    s.r0_hobbit_tx = r0.kernel->hobbit()->frames_sent();
    s.s1_cells = 0;
    s.s2_cells = 0;
    s.r1_hobbit_rx = r1.kernel->hobbit()->frames_received();
    s.r1_orc_in = r1.kernel->orc().frames_in();
    s.r1_encap = r1.kernel->proto_atm().frames_encapsulated();
    s.h1_decap = h1.kernel->proto_atm().frames_decapsulated();
    s.h1_orc_in = h1.kernel->orc().frames_in();
    s.h1_frames = server.frames_received();
    return s;
  };

  Snapshot before = snap();
  const std::size_t payload = 1024;
  if (!client.send(*call, util::Buffer(payload, 0xF1)).ok()) std::abort();
  tb->sim().run_for(sim::seconds(1));
  Snapshot after = snap();

  std::printf(
      "One %zu-byte PF_XUNET frame, client on mh.host1 -> server on\n"
      "berkeley.host1, vci=%u (per-machine counter deltas):\n\n",
      payload, call->info.vci);
  auto line = [](const char* where, const char* what, std::uint64_t delta) {
    std::printf("  %-14s %-52s +%llu\n", where, what,
                static_cast<unsigned long long>(delta));
  };
  std::printf("HOST mh.host1 (no ATM board)\n");
  line("user", "write() on the PF_XUNET socket (library hides signaling)", 1);
  line("kernel", "PF_XUNET -> Orc output -> IPPROTO_ATM encapsulation",
       after.h0_encap - before.h0_encap);
  std::printf("ROUTER mh.rt\n");
  line("kernel", "IP demux -> decapsulate, seq check (+39 instructions)",
       after.r0_decap - before.r0_decap);
  line("Orc/Hobbit", "mbuf chain handed to board; AAL5 trailer + cells",
       after.r0_hobbit_tx - before.r0_hobbit_tx);
  std::printf("ATM WAN: %zu cells across switches s1, s2 (DS3 trunk)\n",
              atm::cells_for_payload(payload));
  std::printf("ROUTER berkeley.rt\n");
  line("Hobbit", "cells reassembled into one AAL5 frame",
       after.r1_hobbit_rx - before.r1_hobbit_rx);
  line("Orc", "per-VCI handler table: VCI is bound to an IP host",
       after.r1_orc_in - before.r1_orc_in);
  line("kernel", "re-encapsulate toward berkeley.host1 (VCI_BIND entry)",
       after.r1_encap - before.r1_encap);
  std::printf("HOST berkeley.host1 (no ATM board)\n");
  line("kernel", "IP -> decapsulate -> Orc input -> PF_XUNET socket",
       after.h1_decap - before.h1_decap);
  line("user", "frame delivered to the bound PF_XUNET socket",
       after.h1_frames - before.h1_frames);

  bool ok = after.h1_frames - before.h1_frames == 1;
  compare("\nFigure 2 data path", "host-user-lib | kernel | router | WAN",
          ok ? "every box traversed exactly once" : "TRAVERSAL MISMATCH");
}

}  // namespace
}  // namespace xunet::bench

int main() {
  xunet::bench::run();
  return 0;
}
