// bench_sec10_robustness — reproduces the §10 robustness experience:
//   * the 100-call burst workload, each call held one second, torn down;
//   * thousands of cumulative setups/teardowns;
//   * clients and servers killed "during various stages of the call setup
//     process", with "network and signaling state ... always correctly
//     restored".
//
// The recovery_post_mortem scenario additionally runs the fault sweep with
// the second-generation observability attached — a HealthMonitor watching
// both sighosts and the always-on flight recorder — and writes the two
// JSONL artifacts CI validates and uploads: FLIGHT_recovery.jsonl (the
// xunet.trace.v1 post-mortem dump the crash triggered) and
// HEALTH_recovery.jsonl (the xunet.health.v1 alert stream).
#include <cstdio>

#include "bench_common.hpp"
#include "bench_json.hpp"
#include "fault/fault.hpp"
#include "obs/health.hpp"

namespace xunet::bench {
namespace {

void write_artifact(const char* path, const std::string& body) {
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "bench_sec10_robustness: cannot write %s\n", path);
    return;
  }
  std::fwrite(body.data(), 1, body.size(), f);
  std::fclose(f);
  std::printf("wrote %s\n", path);
}

core::TestbedConfig fixed_config() {
  core::TestbedConfig cfg;
  cfg.kernel.fd_table_size = 100;  // the paper's fixed kernel
  cfg.kernel.anand_buffers = 80;
  cfg.kernel.tcp_msl = sim::seconds(5);  // compressed timescale
  return cfg;
}

void hundred_call_workload() {
  auto tb = fixed_config().build_deferred();
  if (!tb->bring_up().ok()) std::abort();
  auto& r1 = tb->router(1);
  core::CallServer server(*r1.kernel, r1.kernel->ip_node().address(), "load",
                          5300);
  server.start([](util::Result<void>) {});
  tb->sim().run_for(sim::milliseconds(300));

  core::CallClient client(*tb->router(0).kernel,
                          tb->router(0).kernel->ip_node().address());
  int completed = 0, failed = 0;
  sim::SimTime start = tb->sim().now();
  sim::SimTime last_done = start;
  for (int i = 0; i < 100; ++i) {
    client.open("berkeley.rt", "load", "",
                [&](util::Result<core::CallClient::Call> r) {
                  if (!r.ok()) {
                    ++failed;
                    return;
                  }
                  tb->sim().schedule(sim::seconds(1), [&, call = *r] {
                    client.close_call(call);
                    ++completed;
                    last_done = tb->sim().now();
                  });
                });
  }
  tb->sim().run_for(sim::seconds(120));
  double wall = (last_done - start).sec();
  auto rep = tb->audit();

  compare("100-call burst, 1 s hold", "all succeed; state restored",
          std::to_string(completed) + " completed, " + std::to_string(failed) +
              " failed, audit " + (rep.clean() ? "clean" : rep.describe()));
  compare("workload duration", "(not reported)",
          util::fmt(wall, 1) + " s simulated");
}

void thousands_of_calls() {
  auto cfg = fixed_config();
  cfg.kernel.tcp_msl = sim::seconds(1);
  cfg.sighost.per_call_log_cost = sim::milliseconds(1);
  auto tb = cfg.build_deferred();
  if (!tb->bring_up().ok()) std::abort();
  auto& r1 = tb->router(1);
  core::CallServer server(*r1.kernel, r1.kernel->ip_node().address(), "churn",
                          5301);
  server.start([](util::Result<void>) {});
  tb->sim().run_for(sim::milliseconds(300));
  core::CallClient client(*tb->router(0).kernel,
                          tb->router(0).kernel->ip_node().address());
  int done = 0;
  std::function<void()> next = [&] {
    if (done >= 2000) return;
    client.open("berkeley.rt", "churn", "",
                [&](util::Result<core::CallClient::Call> r) {
                  if (r.ok()) client.close_call(*r);
                  ++done;
                  next();
                });
  };
  next();
  tb->sim().run_for(sim::seconds(1200));
  auto rep = tb->audit();
  compare("thousands of sequential setups/teardowns",
          "routers stayed up; state restored",
          std::to_string(done) + " calls, audit " +
              (rep.clean() ? "clean" : rep.describe()));
}

void kill_sweep() {
  const char* stage_names[] = {
      "client killed right after CONNECT_REQ",
      "client killed during server negotiation",
      "client killed holding an unbound VCI",
      "client killed with a live data socket",
      "server killed before the call",
      "server killed holding the incoming request",
      "server killed with a bound data socket",
  };
  int clean_count = 0;
  for (int stage = 0; stage < 7; ++stage) {
    auto tb = fixed_config().build_deferred();
    if (!tb->bring_up().ok()) std::abort();
    auto& r1 = tb->router(1);
    core::CallServer server(*r1.kernel, r1.kernel->ip_node().address(),
                            "victim", 5302);
    server.start([](util::Result<void>) {});
    tb->sim().run_for(sim::milliseconds(300));
    core::CallClient client(*tb->router(0).kernel,
                            tb->router(0).kernel->ip_node().address());

    if (stage == 4) server.kill();
    client.open("berkeley.rt", "victim", "",
                [](util::Result<core::CallClient::Call>) {});
    switch (stage) {
      case 0: client.kill(); break;
      case 1:
      case 5:
        tb->sim().run_for(sim::milliseconds(200));
        (stage == 1 ? static_cast<void>(client.kill())
                    : static_cast<void>(server.kill()));
        break;
      case 2:
      case 3:
        tb->sim().run_for(sim::seconds(2));
        client.kill();
        break;
      case 6:
        tb->sim().run_for(sim::seconds(2));
        server.kill();
        break;
      default: break;
    }
    tb->sim().run_for(sim::seconds(30));
    auto rep = tb->audit();
    bool clean = rep.clean();
    clean_count += clean;
    compare(stage_names[stage], "state correctly restored",
            clean ? "clean" : rep.describe());
  }
  compare("kill sweep overall", "always restored",
          std::to_string(clean_count) + "/7 stages clean");
}

// A seeded mid-call sighost crash/restart with the health monitor and
// flight recorder attached: the run's post-mortem artifacts are the bench
// products, validated by bench_json_check in CI.
void recovery_post_mortem() {
  core::TestbedConfig cfg;
  cfg.kernel.fd_table_size = 512;
  cfg.sighost.request_timeout = sim::seconds(20);
  // pvc_mesh() sets auto_bring_up: build() returns a running deployment.
  auto tb = cfg.routers(2).pvc_mesh().build();
  auto& r1 = tb->router(1);
  core::CallServer server(*r1.kernel, r1.kernel->ip_node().address(),
                          "postmortem", 5303);
  server.start([](util::Result<void>) {});
  tb->sim().run_for(sim::milliseconds(300));
  core::CallClient client(*tb->router(0).kernel,
                          tb->router(0).kernel->ip_node().address());

  obs::HealthMonitor health(
      tb->sim().obs(),
      [&tb](sim::SimDuration d, std::function<void()> fn) {
        tb->sim().schedule(d, std::move(fn));
      });
  health.watch_sighost("mh.rt");
  health.watch_sighost("berkeley.rt");
  health.start(sim::milliseconds(100));

  fault::FaultPlan plan(*tb, 1994);
  plan.drop_signaling(0.15);
  plan.crash_sighost_at(sim::seconds(2), 1);
  plan.restart_sighost_at(sim::milliseconds(2600), 1);
  plan.arm();

  const int calls = bench_short() ? 12 : 40;
  int ok = 0, failed = 0;
  for (int i = 0; i < calls; ++i) {
    tb->sim().schedule(sim::milliseconds(150) * i, [&] {
      client.open("berkeley.rt", "postmortem", "",
                  [&](util::Result<core::CallClient::Call> r) {
                    r.ok() ? ++ok : ++failed;
                  });
    });
  }
  tb->sim().run_for(sim::seconds(40));
  health.stop();

  const obs::FlightRecorder& flight = tb->sim().obs().flight();
  compare("crash-triggered flight dump", "non-empty post-mortem",
          std::to_string(flight.triggers()) + " trigger(s), " +
              std::to_string(flight.total()) + " records noted");
  compare("health alerts over the fault window", "(new instrumentation)",
          std::to_string(health.alerts().size()) + " transitions over " +
              std::to_string(health.ticks()) + " ticks");
  compare("calls through the crash window", "recovered after restart",
          std::to_string(ok) + " ok, " + std::to_string(failed) + " failed");
  write_artifact("FLIGHT_recovery.jsonl", flight.last_dump());
  write_artifact("HEALTH_recovery.jsonl", health.to_health_jsonl());
}

}  // namespace
}  // namespace xunet::bench

int main() {
  xunet::bench::banner(
      "Section 10: robustness (burst workload, churn, kill-at-every-stage)");
  xunet::bench::hundred_call_workload();
  xunet::bench::thousands_of_calls();
  xunet::bench::kill_sweep();
  xunet::bench::recovery_post_mortem();
  return 0;
}
