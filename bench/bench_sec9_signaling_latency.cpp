// bench_sec9_signaling_latency — reproduces the §9 timing measurements:
//   * service registration: 17–20 ms (four context switches),
//   * accepting an incoming call: ~20 ms (context switches again),
//   * establishing a router-to-router call: ~330 ms (dominated by per-call
//     maintenance logging by the signaling entities).
// The testbed is the paper's: two routers across a three-hop two-switch
// ATM path.  All samples are recorded as histograms in the simulation's
// MetricsRegistry (bench.sec9.*) and reported from there, alongside the
// sighost's own counters — one registry, one naming scheme.
#include <chrono>

#include "bench_common.hpp"
#include "bench_json.hpp"
#include "obs/obs.hpp"
#include "userlib/userlib.hpp"
#include "util/stats.hpp"

namespace xunet::bench {
namespace {

void run() {
  banner("Section 9: signaling latency on the two-router, two-switch testbed");

  core::TestbedConfig cfg;
  cfg.kernel.fd_table_size = 200;
  auto tb = cfg.build_deferred();
  if (!tb->bring_up().ok()) std::abort();
  auto& r0 = *tb->router(0).kernel;
  auto& r1 = *tb->router(1).kernel;
  obs::MetricsRegistry& mx = tb->sim().obs().metrics();
  obs::Histogram& reg_ms = mx.histogram("bench.sec9.registration_ms");
  obs::Histogram& accept_ms = mx.histogram("bench.sec9.accept_ms");
  obs::Histogram& setup_ms = mx.histogram("bench.sec9.setup_ms");

  // ---- registration time ---------------------------------------------------
  kern::Pid spid = r1.spawn("bench-server");
  app::UserLib slib(r1, spid, r1.ip_node().address());
  util::Summary reg_times;
  // One throwaway registration to warm the signaling channel (the paper's
  // RPC accounting starts from a connected IPC path).
  bool warm = false;
  slib.export_service("warmup", 5100, [&](util::Result<void>) { warm = true; });
  tb->sim().run_for(sim::seconds(1));
  XBENCH_CHECK(warm);

  for (int i = 0; i < 20; ++i) {
    sim::SimTime start = tb->sim().now();
    bool done = false;
    slib.export_service("svc" + std::to_string(i), 5101,
                        [&](util::Result<void> r) {
                          if (r.ok()) done = true;
                        });
    tb->sim().run_for(sim::seconds(2));
    XBENCH_CHECK(done);
    reg_times.add((tb->sim().now().ns() - start.ns()) / 1e6);
    // run_for overshoots; recompute precisely next round (the overshoot does
    // not contaminate the sample because we timestamp completion below).
  }

  // The loop above measures with run_for overshoot; measure precisely using
  // completion timestamps instead.
  for (int i = 0; i < 20; ++i) {
    sim::SimTime start = tb->sim().now();
    std::optional<sim::SimTime> done_at;
    slib.export_service("precise" + std::to_string(i), 5102,
                        [&](util::Result<void> r) {
                          if (r.ok()) done_at = tb->sim().now();
                        });
    tb->sim().run_for(sim::seconds(2));
    XBENCH_CHECK(done_at);
    reg_ms.observe((*done_at - start).ms());
  }
  const util::Summary& reg_precise = reg_ms.summary();

  double cs_ms = cfg.kernel.context_switch.ms();
  compare("service registration time",
          "17-20 ms (4 context switches)",
          util::fmt(reg_precise.min(), 1) + "-" + util::fmt(reg_precise.max(), 1) +
              " ms (4 x " + util::fmt(cs_ms, 1) + " ms crossings)");

  // ---- accept time + call-establishment time -------------------------------
  // Manual server so the accept RPC can be timed on its own.
  kern::Pid apid = r1.spawn("accept-server");
  app::UserLib alib(r1, apid, r1.ip_node().address());
  std::function<void()> accept_loop = [&] {
    alib.await_service_request([&](util::Result<app::IncomingRequest> r) {
      if (!r.ok()) return;
      sim::SimTime t0 = tb->sim().now();
      alib.accept_connection(*r, r->qos,
                             [&, t0](util::Result<app::OpenResult> rr) {
                               if (rr.ok()) {
                                 accept_ms.observe((tb->sim().now() - t0).ms());
                                 (void)alib.bind_data_socket(*rr);
                               }
                             });
      accept_loop();
    });
  };
  bool areg = false;
  alib.export_service("timed", 5103, [&](util::Result<void>) { areg = true; });
  tb->sim().run_for(sim::seconds(1));
  XBENCH_CHECK(areg);
  accept_loop();

  kern::Pid cpid = r0.spawn("bench-client");
  app::UserLib clib(r0, cpid, r0.ip_node().address());
  std::uint64_t maint_before = mx.counter_value("sighost.maint.records");
  const int kCalls = bench_short() ? 5 : 20;
  const auto wall0 = std::chrono::steady_clock::now();
  for (int i = 0; i < kCalls; ++i) {
    sim::SimTime start = tb->sim().now();
    std::optional<sim::SimTime> got_vci;
    std::optional<app::OpenResult> res;
    clib.open_connection("berkeley.rt", "timed", "", "class=predicted,bw=1000000",
                         [&](util::Result<app::OpenResult> r) {
                           if (r.ok()) {
                             got_vci = tb->sim().now();
                             res = *r;
                           } else {
                             std::fprintf(stderr, "open failed: %d\n",
                                          static_cast<int>(r.error()));
                           }
                         });
    tb->sim().run_for(sim::seconds(5));
    XBENCH_CHECK(got_vci);
    setup_ms.observe((*got_vci - start).ms());
    // Attach + release the call so state drains between samples.
    auto fd = clib.connect_data_socket(*res);
    tb->sim().run_for(sim::seconds(1));
    if (fd.ok()) (void)r0.close(cpid, *fd);
    tb->sim().run_for(sim::seconds(1));
  }
  const double call_wall_secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - wall0)
          .count();

  const util::Summary& accept_times = accept_ms.summary();
  const util::Summary& setup_times = setup_ms.summary();
  compare("time to accept an incoming call", "~20 ms",
          util::fmt(accept_times.mean(), 1) + " ms (mean of " +
              std::to_string(accept_times.count()) + ")");
  compare("router-to-router call establishment", "~330 ms",
          util::fmt(setup_times.mean(), 1) + " ms (mean), " +
              util::fmt(setup_times.min(), 1) + "-" +
              util::fmt(setup_times.max(), 1) + " ms");
  std::printf(
      "\nDecomposition of call establishment (mean %s ms):\n"
      "  2 x %s ms per-call maintenance logging (one per sighost)   = %s ms\n"
      "  ~18 user-kernel crossings of %s ms across the 5 RPC legs\n"
      "  (CONNECT_REQ, INCOMING_CONN, ACCEPT, VCI_FOR_CONN to the\n"
      "  server + its bind confirmation, VCI_FOR_CONN to the client) = %s ms\n"
      "  VC setup through 2 switches (2 x 2 ms + propagation)       = ~5.4 ms\n"
      "The paper attributes the bulk to 'the large amount of maintenance\n"
      "information logged per call by the signaling entities' - the same\n"
      "attribution this model reproduces.\n",
      util::fmt(setup_times.mean(), 1).c_str(),
      util::fmt(cfg.sighost.per_call_log_cost.ms(), 0).c_str(),
      util::fmt(2 * cfg.sighost.per_call_log_cost.ms(), 0).c_str(),
      util::fmt(cs_ms, 1).c_str(), util::fmt(18 * cs_ms, 0).c_str());

  // Cross-check against the sighosts' own instrumentation: every established
  // call writes one maintenance record per signaling entity, and each entity
  // observes its setup latency into the shared registry.
  std::uint64_t maint = mx.counter_value("sighost.maint.records") - maint_before;
  compare("maintenance records per call cycle", "2 setup + 2 teardown",
          util::fmt(static_cast<double>(maint) / kCalls, 1) + " (from " +
              std::to_string(maint) + " records / " + std::to_string(kCalls) +
              " calls)");

  std::printf("\n== unified metrics registry (bench.sec9.* + component metrics) ==\n%s",
              mx.render_text().c_str());

  JsonReport rep("signaling");
  rep.metric("calls", kCalls);
  rep.metric("calls_per_sec_wall", kCalls / call_wall_secs);
  rep.metric("setup_ms_p50", setup_times.percentile(50));
  rep.metric("setup_ms_p90", setup_times.percentile(90));
  rep.metric("setup_ms_p99", setup_times.percentile(99));
  rep.metric("setup_ms_mean", setup_times.mean());
  rep.metric("accept_ms_mean", accept_times.mean());
  rep.metric("registration_ms_mean", reg_precise.mean());
  rep.metric("maint_records_per_call", static_cast<double>(maint) / kCalls);
  rep.info("topology", "canonical 2-router, 2-switch, 3-hop DS3 path");
  rep.info("paper_reference", "section 9: ~330 ms per call, 17-20 ms register");
  rep.info("short_mode", bench_short() ? "1" : "0");
  rep.write();
}

}  // namespace
}  // namespace xunet::bench

int main() {
  xunet::bench::run();
  return 0;
}
