// bench_table2_code_sizes — reproduces Table 2: "Code sizes for principal
// components at a host".
//
// The paper reports lines of C (with comments) plus text/data/bss sizes for
// sighost, the user library, /dev/anand, PF_XUNET, IPPROTO_ATM and Orc.
// The reproduction scans this library's source tree and reports the same
// component decomposition (lines with comments, code lines, bytes of
// source).  Absolute numbers differ — C++ with doc comments vs. 1994 C —
// but the *relative* structure (sighost dominates; the kernel pieces are
// each a few hundred lines) is the reproducible claim.
#include "bench_common.hpp"
#include "util/loc_scan.hpp"

namespace xunet::bench {
namespace {

void run() {
  banner("Table 2: code sizes of the principal components");

  const std::string root = XUNET_SOURCE_DIR;
  const std::string kern = root + "/src/kern/";
  struct Entry {
    util::ComponentSize size;
    std::string paper_lines;
  };
  // Map this repo onto the paper's exact component rows (Table 2 lists
  // sighost, user lib, /dev/anand, PF_XUNET, IPPROTO_ATM and Orc).
  std::vector<Entry> components;
  components.push_back({util::scan_component("Sighost (src/signaling)",
                                             root + "/src/signaling"),
                        "1204"});
  components.push_back(
      {util::scan_component("User lib (src/userlib)", root + "/src/userlib"),
       "373"});
  components.push_back(
      {util::scan_files("/dev/anand", {kern + "anand.hpp", kern + "anand.cpp"}),
       "382"});
  components.push_back(
      {util::scan_files("PF_XUNET + socket layer",
                        {kern + "kernel.hpp", kern + "kernel.cpp",
                         kern + "mbuf.hpp", kern + "mbuf.cpp",
                         kern + "config.hpp"}),
       "463"});
  components.push_back(
      {util::scan_files("IPPROTO_ATM",
                        {kern + "proto_atm.hpp", kern + "proto_atm.cpp"}),
       "164"});
  components.push_back(
      {util::scan_files("Orc driver + Hobbit model",
                        {kern + "orc.hpp", kern + "orc.cpp",
                         kern + "hobbit.hpp", kern + "hobbit.cpp"}),
       "96"});
  components.push_back(
      {util::scan_component("ATM substrate (src/atm)", root + "/src/atm"),
       "n/a (Hobbit firmware + switches)"});
  components.push_back(
      {util::scan_component("IP substrate (src/ip)", root + "/src/ip"),
       "n/a (kernel IP)"});
  components.push_back(
      {util::scan_component("TCP model (src/tcpsim)", root + "/src/tcpsim"),
       "n/a (kernel TCP)"});

  util::TextTable t("Measured code sizes (this reproduction)");
  t.header({"Component", "Files", "Lines (w/ comments)", "Code lines", "KB",
            "Paper lines (C)"});
  for (const Entry& e : components) {
    t.row({e.size.name, std::to_string(e.size.files),
           std::to_string(e.size.lines), std::to_string(e.size.code_lines),
           util::fmt(double(e.size.bytes) / 1024.0, 1), e.paper_lines});
  }
  t.print();

  // The paper's qualitative claim: "The code size is fairly small compared
  // to the kernel size of ~1.75 MB."
  auto whole = util::scan_component("all", root + "/src", /*recurse=*/true);
  compare("total source (all modules)", "~2.7k lines of C",
          std::to_string(whole.lines) + " lines of C++ (" +
              util::fmt(double(whole.bytes) / 1024.0, 0) + " KB)");
  compare("largest single component", "sighost (1204 lines)",
          "signaling (" +
              std::to_string(
                  util::scan_component("sig", root + "/src/signaling").lines) +
              " lines)");

}

}  // namespace
}  // namespace xunet::bench

int main() {
  xunet::bench::run();
  return 0;
}
