// bench_chaos_soak — throughput and efficacy of the deterministic chaos
// harness (src/chaos).
//
// Two sweeps over consecutive seeds on the 2-router chain:
//   * honest: faults heal, recovery audits run — every seed must audit
//     clean, and the sweep's wall-clock rate is the cost of adding chaos
//     scheduling to a CI lane;
//   * sabotage self-test: restarted sighosts skip their recovery audit
//     (SighostConfig::recovery_skip_audit), so any seed whose schedule
//     crashes a sighost mid-call must produce a cross-layer violation.
//     We report the detection rate plus the shrinker's cost (oracle runs
//     per repro) and final repro sizes.
//
// Writes BENCH_chaos_soak.json (xunet.bench.v1).  XUNET_BENCH_SHORT
// shrinks the seed counts for CI.
#include <chrono>
#include <cstdio>

#include "bench_json.hpp"
#include "chaos/runner.hpp"

namespace xunet::bench {
namespace {

chaos::ChaosCase base_case(std::uint64_t seed, bool sabotage) {
  chaos::ChaosCase c;
  c.routers = 2;
  c.calls = 6;
  c.seed = seed;
  c.profile.max_crash_restarts = 2;
  c.sabotage_skip_audit = sabotage;
  return c;
}

int run() {
  const int honest_seeds = bench_short() ? 6 : 32;
  const int sabotage_seeds = bench_short() ? 8 : 32;

  std::printf("== chaos soak: honest sweep (%d seeds) ==\n", honest_seeds);
  const auto t0 = std::chrono::steady_clock::now();
  int honest_clean = 0;
  std::size_t honest_events = 0;
  for (int i = 0; i < honest_seeds; ++i) {
    const chaos::RunOutcome out =
        chaos::run_case(base_case(1 + static_cast<std::uint64_t>(i), false));
    honest_events += out.schedule.events.size();
    if (out.violations.empty()) {
      ++honest_clean;
    } else {
      std::printf("  seed %d: UNEXPECTED %s\n", 1 + i,
                  out.violations.front().rule.c_str());
    }
  }
  const double honest_wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  std::printf("  %d/%d clean, %.2f s wall (%.1f seeds/s)\n", honest_clean,
              honest_seeds, honest_wall, honest_seeds / honest_wall);

  std::printf("== chaos soak: sabotage self-test (%d seeds) ==\n",
              sabotage_seeds);
  const auto t1 = std::chrono::steady_clock::now();
  int caught = 0;
  int shrink_runs = 0;
  std::size_t pre_shrink_events = 0;
  std::size_t post_shrink_events = 0;
  for (int i = 0; i < sabotage_seeds; ++i) {
    const chaos::ChaosCase c =
        base_case(1 + static_cast<std::uint64_t>(i), true);
    const chaos::RunOutcome out = chaos::run_case(c);
    if (out.violations.empty()) continue;
    ++caught;
    const chaos::ShrinkResult shrunk = chaos::shrink(c, out);
    shrink_runs += shrunk.iterations;
    pre_shrink_events += out.schedule.events.size();
    post_shrink_events += shrunk.minimal.size();
  }
  const double sabotage_wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t1)
          .count();
  std::printf("  %d/%d seeds caught the planted audit skip, %.2f s wall\n",
              caught, sabotage_seeds, sabotage_wall);
  if (caught > 0) {
    std::printf("  shrink: %.1f oracle runs/repro, %.1f -> %.1f events\n",
                static_cast<double>(shrink_runs) / caught,
                static_cast<double>(pre_shrink_events) / caught,
                static_cast<double>(post_shrink_events) / caught);
  }

  JsonReport rep("chaos_soak");
  rep.metric("honest_seeds", honest_seeds);
  rep.metric("honest_clean", honest_clean);
  rep.metric("honest_seeds_per_sec",
             honest_wall > 0 ? honest_seeds / honest_wall : 0);
  rep.metric("schedule_events_total", static_cast<double>(honest_events));
  rep.metric("sabotage_seeds", sabotage_seeds);
  rep.metric("sabotage_caught", caught);
  rep.metric("shrink_oracle_runs_per_repro",
             caught > 0 ? static_cast<double>(shrink_runs) / caught : 0);
  rep.metric("repro_events_mean",
             caught > 0 ? static_cast<double>(post_shrink_events) / caught : 0);
  rep.info("topology", "2-router chain, pvc mesh");
  rep.info("workload", "6 staggered calls, deadline-budgeted retry");
  rep.info("mode", bench_short() ? "short" : "full");
  rep.write();

  // The harness gating CI must itself be sound: honest runs always clean,
  // sabotage always caught at least once.
  if (honest_clean != honest_seeds || caught == 0) {
    std::fprintf(stderr, "bench_chaos_soak: harness self-test FAILED\n");
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace xunet::bench

int main() { return xunet::bench::run(); }
