// bench_sec10_scaling — reproduces the §10 scaling experiments as parameter
// sweeps:
//   1. pseudo-device buffer count {4, 8, 16, 32, 80, 160} against a clump of
//      100 simultaneous connect indications (paper: 8 loses indications,
//      80 is adequate);
//   2. per-process descriptor table size {20, 40, 60, 100, 200} against the
//      100-call burst (paper: ~20 restricts simultaneous establishes via
//      TIME_WAIT retention; 100 fixes it);
//   3. the 200-open-connections head-room check.
#include "bench_common.hpp"
#include "bench_json.hpp"
#include "userlib/userlib.hpp"

namespace xunet::bench {
namespace {

/// Sweep results accumulate here and are written as BENCH_scaling.json.
JsonReport& report() {
  static JsonReport rep("scaling");
  return rep;
}

struct ClumpResult {
  std::uint64_t dropped = 0;
  std::uint64_t timeouts = 0;
};

/// 100 granted VCIs are connected within a ~10 ms window, racing the
/// pseudo-device's bounded buffer (§10's "large number of connections
/// simultaneously opened").
ClumpResult clump_run(std::size_t buffers) {
  core::TestbedConfig cfg;
  cfg.kernel.anand_buffers = buffers;
  cfg.kernel.fd_table_size = 512;
  cfg.kernel.tcp_msl = sim::seconds(1);
  cfg.sighost.per_call_log_cost = sim::milliseconds(5);
  cfg.sighost.wait_for_bind_timeout = sim::seconds(20);
  auto tb = cfg.build_deferred();
  if (!tb->bring_up().ok()) std::abort();
  auto& r0 = tb->router(0);
  auto& r1 = tb->router(1);
  core::CallServer server(*r1.kernel, r1.kernel->ip_node().address(), "clump",
                          5400);
  server.start([](util::Result<void>) {});
  tb->sim().run_for(sim::milliseconds(300));

  auto& k0 = *r0.kernel;
  kern::Pid pid = k0.spawn("clump-client");
  app::UserLib lib(k0, pid, k0.ip_node().address());
  auto results = std::make_shared<std::vector<app::OpenResult>>();
  for (int i = 0; i < 100; ++i) {
    lib.open_connection("berkeley.rt", "clump", "", "",
                        [results](util::Result<app::OpenResult> r) {
                          if (r.ok()) results->push_back(*r);
                        });
  }
  tb->sim().run_for(sim::seconds(5));
  for (std::size_t i = 0; i < results->size(); ++i) {
    tb->sim().schedule(sim::microseconds(static_cast<std::int64_t>(100 * i)),
                       [&lib, r = (*results)[i]] {
                         (void)lib.connect_data_socket(r);
                       });
  }
  tb->sim().run_for(sim::seconds(60));
  return ClumpResult{k0.anand().dropped(), r0.sighost->stats().bind_timeouts};
}

void buffer_sweep() {
  util::TextTable t(
      "Pseudo-device buffer sweep (100 near-simultaneous connect indications)");
  t.header({"buffers", "indications lost", "calls killed by bind timeout",
            "paper's verdict"});
  const std::vector<std::size_t> sweep =
      bench_short() ? std::vector<std::size_t>{8u, 80u}
                    : std::vector<std::size_t>{4u, 8u, 16u, 32u, 80u, 160u};
  for (std::size_t buffers : sweep) {
    auto r = clump_run(buffers);
    std::string verdict = buffers == 8 ? "broken (original config)"
                          : buffers == 80 ? "adequate (fixed config)"
                                          : "";
    t.row({std::to_string(buffers), std::to_string(r.dropped),
           std::to_string(r.timeouts), verdict});
    report().metric("buffers_" + std::to_string(buffers) + "_lost",
                    static_cast<double>(r.dropped));
  }
  t.print();
}

struct BurstResult {
  int established = 0;
  int failed = 0;
};

BurstResult fd_burst(std::size_t fd_table) {
  core::TestbedConfig cfg;
  cfg.kernel.fd_table_size = fd_table;
  cfg.kernel.tcp_msl = sim::seconds(5);
  auto tb = cfg.build_deferred();
  if (!tb->bring_up().ok()) std::abort();
  auto& r1 = tb->router(1);
  core::CallServer server(*r1.kernel, r1.kernel->ip_node().address(), "burst",
                          5401);
  server.start([](util::Result<void>) {});
  tb->sim().run_for(sim::milliseconds(300));
  auto client = std::make_shared<core::CallClient>(
      *tb->router(0).kernel, tb->router(0).kernel->ip_node().address());
  auto out = std::make_shared<BurstResult>();
  for (int i = 0; i < 100; ++i) {
    client->open("berkeley.rt", "burst", "",
                 [&tb, client, out](util::Result<core::CallClient::Call> r) {
                   if (r.ok()) {
                     ++out->established;
                     tb->sim().schedule(sim::seconds(1), [client, c = *r] {
                       client->close_call(c);
                     });
                   } else {
                     ++out->failed;
                   }
                 });
  }
  tb->sim().run_for(sim::seconds(120));
  return *out;
}

void fd_sweep() {
  util::TextTable t(
      "Descriptor-table sweep (100-call burst; closed per-call sockets linger "
      "2xMSL in TIME_WAIT)");
  t.header({"fd table", "established", "failed", "paper's verdict"});
  const std::vector<std::size_t> sweep =
      bench_short() ? std::vector<std::size_t>{20u, 100u}
                    : std::vector<std::size_t>{20u, 40u, 60u, 100u, 200u};
  for (std::size_t fds : sweep) {
    auto r = fd_burst(fds);
    std::string verdict = fds == 20 ? "broken ('typically around twenty')"
                          : fds == 100 ? "fixed (raised to 100)"
                                       : "";
    t.row({std::to_string(fds), std::to_string(r.established),
           std::to_string(r.failed), verdict});
    report().metric("fd_" + std::to_string(fds) + "_established",
                    static_cast<double>(r.established));
  }
  t.print();
}

void two_hundred_open() {
  core::TestbedConfig cfg;
  cfg.kernel.fd_table_size = 512;
  cfg.kernel.tcp_msl = sim::seconds(5);
  auto tb = cfg.build_deferred();
  if (!tb->bring_up().ok()) std::abort();
  auto& r0 = tb->router(0);
  auto& r1 = tb->router(1);
  core::CallServer sa(*r1.kernel, r1.kernel->ip_node().address(), "fwd", 5402);
  core::CallServer sb(*r0.kernel, r0.kernel->ip_node().address(), "rev", 5403);
  sa.start([](util::Result<void>) {});
  sb.start([](util::Result<void>) {});
  tb->sim().run_for(sim::milliseconds(300));
  core::CallClient ca(*r0.kernel, r0.kernel->ip_node().address());
  core::CallClient cb(*r1.kernel, r1.kernel->ip_node().address());
  int open_count = 0;
  for (int i = 0; i < 100; ++i) {
    ca.open("berkeley.rt", "fwd", "",
            [&](util::Result<core::CallClient::Call> r) {
              if (r.ok()) ++open_count;
            });
    cb.open("mh.rt", "rev", "",
            [&](util::Result<core::CallClient::Call> r) {
              if (r.ok()) ++open_count;
            });
  }
  tb->sim().run_for(sim::seconds(120));
  compare("connections held open between two routers", "200",
          std::to_string(open_count) + " (" +
              std::to_string(tb->network().active_vc_count() - 2) +
              " switched VCs active)");
  report().metric("open_connections_held", open_count);
}

}  // namespace
}  // namespace xunet::bench

int main() {
  xunet::bench::banner("Section 10: scaling sweeps");
  xunet::bench::buffer_sweep();
  xunet::bench::fd_sweep();
  xunet::bench::two_hundred_open();
  xunet::bench::report().info(
      "paper_reference", "section 10: buffer and fd-table scaling sweeps");
  xunet::bench::report().info("short_mode",
                              xunet::bench::bench_short() ? "1" : "0");
  xunet::bench::report().write();
  return 0;
}
