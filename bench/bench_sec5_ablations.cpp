// bench_sec5_ablations — quantifies the §5 design decisions that DESIGN.md
// calls out:
//   A. signaling in user space (4 crossings/RPC) vs in-kernel (2);
//   B. per-call maintenance logging on vs off (the §9 attribution);
//   C. kernel-mediated process/network state (§5.3) vs polling;
//   D. AAL-frame encapsulation over raw IP vs over TCP (§5.4).
#include "bench_common.hpp"
#include "userlib/userlib.hpp"
#include "util/stats.hpp"

namespace xunet::bench {
namespace {

/// Measure mean registration latency under a testbed config.
double registration_ms(core::TestbedConfig cfg) {
  auto tb = cfg.build_deferred();
  if (!tb->bring_up().ok()) std::abort();
  auto& r1 = *tb->router(1).kernel;
  kern::Pid pid = r1.spawn("srv");
  app::UserLib lib(r1, pid, r1.ip_node().address());
  bool warm = false;
  lib.export_service("warm", 5600, [&](util::Result<void>) { warm = true; });
  tb->sim().run_for(sim::seconds(1));
  if (!warm) std::abort();
  util::Summary s;
  for (int i = 0; i < 10; ++i) {
    sim::SimTime t0 = tb->sim().now();
    std::optional<sim::SimTime> done;
    lib.export_service("s" + std::to_string(i), 5601,
                       [&](util::Result<void> r) {
                         if (r.ok()) done = tb->sim().now();
                       });
    tb->sim().run_for(sim::seconds(2));
    if (!done) std::abort();
    s.add((*done - t0).ms());
  }
  return s.mean();
}

/// Measure mean call-establishment latency under a testbed config.
double setup_ms(core::TestbedConfig cfg) {
  auto rig = make_rig(cfg, "abl", 5602);
  util::Summary s;
  for (int i = 0; i < 10; ++i) {
    sim::SimTime t0 = rig.tb->sim().now();
    auto call = open_call(rig, "abl");
    if (!call) std::abort();
    s.add((rig.tb->sim().now() - t0).ms());
    rig.client->close_call(*call);
    rig.tb->sim().run_for(sim::seconds(2));
  }
  return s.mean();
}

void ablation_user_space() {
  core::TestbedConfig cfg;
  double user_space = registration_ms(cfg);
  // §5.1: "with a user-space implementation, there would be four context
  // switches, instead of two with an in-kernel implementation."  The
  // in-kernel variant removes the two sighost-process crossings.
  double in_kernel = user_space - 2 * cfg.kernel.context_switch.ms();
  compare("registration RPC, signaling in user space", "17-20 ms",
          util::fmt(user_space, 1) + " ms (4 crossings)");
  compare("registration RPC, in-kernel signaling (modeled)",
          "2 context switches", util::fmt(in_kernel, 1) + " ms (2 crossings)");
  compare("cost of the user-space decision", "not the common case; worth it",
          "+" + util::fmt(user_space - in_kernel, 1) +
              " ms per RPC, call setup unaffected");
}

void ablation_logging() {
  core::TestbedConfig with_log;
  core::TestbedConfig no_log;
  no_log.sighost.maintenance_logging = false;
  double logged = setup_ms(with_log);
  double unlogged = setup_ms(no_log);
  compare("call setup with per-call maintenance logging", "~330 ms",
          util::fmt(logged, 1) + " ms");
  compare("call setup without logging (ablated)",
          "'ample scope for optimization'", util::fmt(unlogged, 1) + " ms");
  compare("share of setup time due to logging",
          "'mainly due to ... information logged per call'",
          util::fmt(100.0 * (logged - unlogged) / logged, 0) + "%");
}

void ablation_state_exchange() {
  // Kernel-mediated (§5.3): measure how quickly a crashed client's network
  // resources are reclaimed.
  core::TestbedConfig cfg;
  auto rig = make_rig(cfg, "crash", 5603);
  auto call = open_call(rig, "crash");
  if (!call) std::abort();
  sim::SimTime t0 = rig.tb->sim().now();
  rig.client->kill();
  while (rig.tb->network().active_vc_count() > 2) {
    rig.tb->sim().run_for(sim::milliseconds(5));
  }
  double reclaim_ms = (rig.tb->sim().now() - t0).ms();
  compare("crash-to-reclaim, kernel-mediated (/dev/anand)",
          "termination indication via pseudo-device",
          util::fmt(reclaim_ms, 0) + " ms");
  // Polling alternative the paper rejected: the signaling entity polls each
  // application.  Mean detection = poll period / 2, plus the teardown cost.
  for (double period_s : {1.0, 5.0, 30.0}) {
    compare("  vs polling every " + util::fmt(period_s, 0) + " s (modeled)",
            "'too cumbersome'",
            util::fmt(period_s * 500.0 + reclaim_ms, 0) + " ms mean");
  }
}

void ablation_encap_transport() {
  // §5.4 rejected encapsulation above TCP: "not only inefficient, but also
  // could cause complex interactions between PF_XUNET flow control and TCP
  // flow control."  Measure raw-IP encapsulation vs a TCP stream carrying
  // the same frames host -> router.
  auto tb = core::TestbedConfig{}.hosts(2).build_deferred();
  if (!tb->bring_up().ok()) std::abort();
  auto& h0 = tb->host(0);
  auto& h1 = tb->host(1);
  auto& r0 = tb->router(0);

  core::CallServer server(*h1.kernel, h1.home->kernel->ip_node().address(),
                          "enc", 5604);
  server.start([](util::Result<void>) {});
  tb->sim().run_for(sim::milliseconds(300));
  core::CallClient client(*h0.kernel, h0.home->kernel->ip_node().address());
  std::optional<core::CallClient::Call> call;
  client.open("berkeley.rt", "enc", "",
              [&](util::Result<core::CallClient::Call> r) {
                if (r.ok()) call = *r;
              });
  tb->sim().run_for(sim::seconds(3));
  if (!call) std::abort();

  const int frames = 100;
  const std::size_t payload = 2048;
  util::Buffer data(payload, 0x55);

  std::uint64_t base = r0.kernel->proto_atm().frames_decapsulated();
  sim::SimTime t0 = tb->sim().now();
  for (int i = 0; i < frames; ++i) {
    (void)client.send(*call, data);
  }
  while (r0.kernel->proto_atm().frames_decapsulated() < base + frames) {
    tb->sim().run_for(sim::milliseconds(1));
  }
  double raw_s = (tb->sim().now() - t0).sec();

  // The TCP alternative: one stream host -> router carrying framed data.
  kern::Pid spid = r0.kernel->spawn("tcp-sink");
  kern::Pid cpid = h0.kernel->spawn("tcp-src");
  std::size_t received = 0;
  int sink_fd = -1;
  (void)r0.kernel->tcp_listen(spid, 5605, [&](int fd) {
    sink_fd = fd;
    (void)r0.kernel->tcp_on_receive(spid, fd, [&](util::BytesView d) {
      received += d.size();
    });
  });
  std::optional<int> src_fd;
  (void)h0.kernel->tcp_connect(cpid, r0.kernel->ip_node().address(), 5605,
                               [&](util::Result<int> r) {
                                 if (r.ok()) src_fd = *r;
                               });
  tb->sim().run_for(sim::seconds(1));
  if (!src_fd) std::abort();
  t0 = tb->sim().now();
  for (int i = 0; i < frames; ++i) {
    (void)h0.kernel->tcp_send(cpid, *src_fd, data);
  }
  while (received < frames * payload) tb->sim().run_for(sim::milliseconds(1));
  double tcp_s = (tb->sim().now() - t0).sec();

  double raw_mbps = frames * payload * 8.0 / raw_s / 1e6;
  double tcp_mbps = frames * payload * 8.0 / tcp_s / 1e6;
  compare("encapsulation over raw IP (chosen)", "efficient",
          util::fmt(raw_mbps, 1) + " Mb/s host->router");
  compare("encapsulation over TCP (rejected)",
          "inefficient + flow-control interactions",
          util::fmt(tcp_mbps, 1) + " Mb/s (" +
              util::fmt(raw_mbps / tcp_mbps, 2) + "x slower; adds " +
              "per-send process crossings, ACK traffic, HOL blocking)");
}

}  // namespace
}  // namespace xunet::bench

int main() {
  xunet::bench::banner("Section 5 ablations: quantifying the design decisions");
  xunet::bench::ablation_user_space();
  xunet::bench::ablation_logging();
  xunet::bench::ablation_state_exchange();
  xunet::bench::ablation_encap_transport();
  return 0;
}
