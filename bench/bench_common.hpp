// bench_common.hpp — shared helpers for the experiment harnesses.
//
// Every bench prints the paper's row/series structure next to what this
// reproduction measures, so EXPERIMENTS.md can be regenerated mechanically.
#pragma once

#include <cstdio>
#include <optional>
#include <string>

#include "core/apps.hpp"
#include "core/testbed.hpp"
#include "util/table.hpp"

namespace xunet::bench {

/// Abort with a location message (stderr is unbuffered, so the message
/// survives the abort even when stdout is block-buffered).
#define XBENCH_CHECK(cond)                                              \
  do {                                                                  \
    if (!(cond)) {                                                      \
      std::fprintf(stderr, "CHECK failed at %s:%d: %s\n", __FILE__,     \
                   __LINE__, #cond);                                    \
      std::abort();                                                     \
    }                                                                   \
  } while (0)

/// Print a section banner in a uniform style.
inline void banner(const std::string& title) {
  std::printf("\n################################################################\n");
  std::printf("# %s\n", title.c_str());
  std::printf("################################################################\n\n");
}

/// Print one "paper vs measured" comparison line.
inline void compare(const std::string& what, const std::string& paper,
                    const std::string& measured) {
  std::printf("  %-52s paper: %-18s measured: %s\n", what.c_str(),
              paper.c_str(), measured.c_str());
}

/// Bring up the canonical testbed with a server registered, returning the
/// pieces most benches need.
struct CanonicalRig {
  std::unique_ptr<core::Testbed> tb;
  std::unique_ptr<core::CallServer> server;
  std::unique_ptr<core::CallClient> client;
};

inline CanonicalRig make_rig(core::TestbedConfig cfg = {},
                             const std::string& service = "bench",
                             std::uint16_t port = 5000) {
  CanonicalRig rig;
  rig.tb = cfg.routers(2).pvc_mesh().build();
  auto& r1 = rig.tb->router(1);
  rig.server = std::make_unique<core::CallServer>(
      *r1.kernel, r1.kernel->ip_node().address(), service, port);
  rig.server->start([](util::Result<void>) {});
  rig.tb->sim().run_for(sim::milliseconds(300));
  rig.client = std::make_unique<core::CallClient>(
      *rig.tb->router(0).kernel, rig.tb->router(0).kernel->ip_node().address());
  return rig;
}

/// Open one call synchronously (drives the simulator until completion).
inline std::optional<core::CallClient::Call> open_call(
    CanonicalRig& rig, const std::string& service, const std::string& qos = "") {
  std::optional<core::CallClient::Call> call;
  bool done = false;
  rig.client->open("berkeley.rt", service, qos,
                   [&](util::Result<core::CallClient::Call> r) {
                     if (r.ok()) call = *r;
                     done = true;
                   });
  for (int i = 0; i < 2000 && !done; ++i) {
    rig.tb->sim().run_for(sim::milliseconds(5));
  }
  return call;
}

}  // namespace xunet::bench
