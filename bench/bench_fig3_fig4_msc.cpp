// bench_fig3_fig4_msc — regenerates Figures 3 and 4 as message sequence
// charts: the exchange when a server registers itself (Fig. 3) and when a
// client establishes a call (Fig. 4), traced from a live run.
#include "bench_common.hpp"

namespace xunet::bench {
namespace {

void run() {
  banner("Figures 3 & 4: signaling message sequences (traced live)");

  auto tb = core::TestbedConfig{}.build_deferred();
  if (!tb->bring_up().ok()) std::abort();

  struct Event {
    double ms;
    std::string who;
    std::string dir;
    std::string what;
  };
  std::vector<Event> events;
  auto tracer = [&](std::string_view dir, std::string_view who,
                    const sig::Msg& m) {
    std::string detail = std::string(to_string(m.type));
    if (!m.service.empty()) detail += " service=" + m.service;
    if (m.vci != atm::kInvalidVci && m.vci != 0) {
      detail += " vci=" + std::to_string(m.vci);
    }
    if (!m.qos.empty()) detail += " qos=<" + m.qos + ">";
    if (m.cookie != 0) detail += " cookie=0x****";  // capabilities stay secret
    events.push_back(Event{tb->sim().now().ms(), std::string(who),
                           std::string(dir), detail});
  };
  tb->router(0).sighost->set_trace(tracer);
  tb->router(1).sighost->set_trace(tracer);

  // ---- Figure 3: an echo server registers itself -------------------------
  core::CallServer server(*tb->router(1).kernel,
                          tb->router(1).kernel->ip_node().address(), "echo",
                          5500);
  server.start([](util::Result<void>) {});
  tb->sim().run_for(sim::seconds(1));

  std::printf("Figure 3 — messages exchanged when an echo server registers itself\n");
  std::printf("%10s  %-14s %-8s %s\n", "time", "sighost", "dir", "message");
  for (const Event& e : events) {
    std::printf("%8.1fms  %-14s %-8s %s\n", e.ms, e.who.c_str(), e.dir.c_str(),
                e.what.c_str());
  }
  events.clear();

  // ---- Figure 4: a client establishes a call -----------------------------
  core::CallClient client(*tb->router(0).kernel,
                          tb->router(0).kernel->ip_node().address());
  std::optional<core::CallClient::Call> call;
  client.open("berkeley.rt", "echo", "class=guaranteed,bw=1000000",
              [&](util::Result<core::CallClient::Call> r) {
                if (r.ok()) call = *r;
              });
  tb->sim().run_for(sim::seconds(2));

  std::printf("\nFigure 4 — messages exchanged when a client establishes a call\n");
  std::printf("%10s  %-14s %-8s %s\n", "time", "sighost", "dir", "message");
  for (const Event& e : events) {
    std::printf("%8.1fms  %-14s %-8s %s\n", e.ms, e.who.c_str(), e.dir.c_str(),
                e.what.c_str());
  }

  if (call) {
    std::printf("\ncall established: vci=%u negotiated_qos=<%s>\n",
                call->info.vci, call->info.qos.c_str());
  }
}

}  // namespace
}  // namespace xunet::bench

int main() {
  xunet::bench::run();
  return 0;
}
