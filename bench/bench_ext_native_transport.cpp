// bench_ext_native_transport — extension experiment: the ref [12] stack
// direction.  A reliable transfer crosses the same ATM WAN two ways:
//
//   1. NativeStream — native-mode: one VC per direction, rate-paced at the
//      granted QoS, selective repeat (this library's ref-[12] prototype);
//   2. TCP over classical IP-over-ATM — the conventional stack the paper
//      wants to displace (Go-Back-N here, as in many period stacks).
//
// The sweep injects bursty frame loss; the native transport's selective
// repeat plus reserved-rate pacing should degrade far more gracefully than
// Go-Back-N TCP, whose every loss rewinds the whole window.
#include "bench_common.hpp"
#include "core/duplex.hpp"
#include "native/native_stream.hpp"

namespace xunet::bench {
namespace {

/// Seconds to move `total_bytes` over NativeStream with flicker-loss of
/// the given duty cycle on the forward VC.
double native_transfer_secs(double drop_duty, std::size_t total_bytes) {
  core::TestbedConfig cfg;
  auto tb = cfg.build_deferred();
  if (!tb->bring_up().ok()) std::abort();
  auto& r0 = *tb->router(0).kernel;
  auto& r1 = *tb->router(1).kernel;
  core::DuplexServer ds(r1, r1.ip_node().address(), "nat", 6500);
  ds.set_qos_limit(atm::Qos{atm::ServiceClass::guaranteed, 30'000'000});
  std::optional<core::DuplexEnd> server_end;
  ds.start([](util::Result<void>) {},
           [&](core::DuplexEnd end) { server_end = end; });
  tb->sim().run_for(sim::milliseconds(300));
  core::DuplexClient dc(r0, r0.ip_node().address(), 6501);
  std::optional<core::DuplexEnd> client_end;
  dc.open("berkeley.rt", "nat", "class=guaranteed,bw=30000000",
          [&](util::Result<core::DuplexEnd> r) {
            if (r.ok()) client_end = *r;
          });
  tb->sim().run_for(sim::seconds(5));
  if (!client_end || !server_end) std::abort();

  native::NativeStream tx(r0, dc.pid(), *client_end, 30'000'000);
  native::NativeStream rx(r1, ds.pid(), *server_end, 30'000'000);
  std::size_t got = 0;
  rx.on_message([&](util::BytesView d) { got += d.size(); });

  // Flicker loss on the forward data VC at the receiving router's Orc.
  auto rng = std::make_shared<util::Rng>(5);
  atm::Vci data_vci = server_end->recv_vci;
  std::function<void()> flicker = [&r1, rng, data_vci, &tb, drop_duty,
                                   &flicker] {
    r1.orc().set_discard(data_vci, rng->chance(drop_duty));
    tb->sim().schedule(sim::milliseconds(5), flicker);
  };
  if (drop_duty > 0) tb->sim().schedule(sim::milliseconds(5), flicker);

  const std::size_t msg = 8000;
  std::size_t queued = 0;
  std::function<void()> feed = [&] {
    while (queued < total_bytes) {
      if (!tx.send(util::Buffer(msg, 0x11)).ok()) {
        tb->sim().schedule(sim::milliseconds(10), feed);
        return;
      }
      queued += msg;
    }
  };
  sim::SimTime start = tb->sim().now();
  feed();
  int guard = 0;
  while (got < total_bytes && ++guard < 10'000) {
    tb->sim().run_for(sim::milliseconds(50));
  }
  return (tb->sim().now() - start).sec();
}

/// Seconds to move `total_bytes` over TCP across classical IP-over-ATM,
/// with IP-frame flicker loss of the given duty cycle on the trunk PVC.
double tcp_transfer_secs(double drop_duty, std::size_t total_bytes) {
  core::TestbedConfig cfg;
  cfg.ip_over_atm = true;
  auto tb = cfg.build_deferred();
  if (!tb->bring_up().ok()) std::abort();
  auto& r0 = *tb->router(0).kernel;
  auto& r1 = *tb->router(1).kernel;

  kern::Pid sp = r1.spawn("tcp-sink");
  kern::Pid cp = r0.spawn("tcp-src");
  std::size_t got = 0;
  (void)r1.tcp_listen(sp, 6502, [&](int fd) {
    (void)r1.tcp_on_receive(sp, fd,
                            [&](util::BytesView d) { got += d.size(); });
  });
  std::optional<int> cfd;
  (void)r0.tcp_connect(cp, r1.ip_node().address(), 6502,
                       [&](util::Result<int> r) {
                         if (r.ok()) cfd = *r;
                       });
  tb->sim().run_for(sim::seconds(1));
  if (!cfd) std::abort();

  // Flicker loss on the IP-over-ATM receive VCI at r1 (VCI 3: the IP PVC
  // pair uses the next well-known VCIs after the two signaling PVCs).
  auto rng = std::make_shared<util::Rng>(5);
  std::function<void()> flicker = [&r1, rng, &tb, drop_duty, &flicker] {
    r1.orc().set_discard(3, rng->chance(drop_duty));
    tb->sim().schedule(sim::milliseconds(5), flicker);
  };
  if (drop_duty > 0) tb->sim().schedule(sim::milliseconds(5), flicker);

  sim::SimTime start = tb->sim().now();
  const std::size_t chunk = 8000;
  for (std::size_t off = 0; off < total_bytes; off += chunk) {
    (void)r0.tcp_send(cp, *cfd, util::Buffer(chunk, 0x22));
  }
  int guard = 0;
  while (got < total_bytes && ++guard < 10'000) {
    tb->sim().run_for(sim::milliseconds(50));
  }
  if (got < total_bytes) return -1.0;  // stalled out
  return (tb->sim().now() - start).sec();
}

void run() {
  banner(
      "Extension: native-mode transport (ref [12] prototype) vs TCP over "
      "classical IP-over-ATM, 2 MB transfer under bursty loss");
  const std::size_t total = 2'000'000;
  util::TextTable t("Transfer time (s), same WAN, same loss process");
  t.header({"loss duty cycle", "NativeStream (rate-paced, sel-repeat)",
            "TCP over IP-over-ATM (Go-Back-N)", "native speedup"});
  for (double duty : {0.0, 0.05, 0.15, 0.3}) {
    double n = native_transfer_secs(duty, total);
    double c = tcp_transfer_secs(duty, total);
    t.row({util::fmt(duty * 100, 0) + "%", util::fmt(n, 2),
           c < 0 ? "stalled" : util::fmt(c, 2),
           c < 0 ? "inf" : util::fmt(c / n, 2) + "x"});
  }
  t.print();
  compare("graceful degradation under loss",
          "(ref [12] motivation: no multiplexing, rate-based)",
          "selective repeat + reserved rate beat Go-Back-N as loss grows");
}

}  // namespace
}  // namespace xunet::bench

int main() {
  xunet::bench::run();
  return 0;
}
