// native_test.cpp — the native-mode transport (NativeStream): reliable,
// ordered, rate-paced messaging over duplex VC pairs, including under
// injected cell loss on the ATM path.
#include <gtest/gtest.h>

#include "core/apps.hpp"
#include "core/duplex.hpp"
#include "core/testbed.hpp"
#include "native/native_stream.hpp"
#include "util/crc32.hpp"

namespace xunet {
namespace {

using core::Testbed;
using core::TestbedConfig;

/// Testbed + duplex channel + a NativeStream on each end.
struct StreamRig {
  std::unique_ptr<Testbed> tb;
  std::unique_ptr<core::DuplexServer> dserver;
  std::unique_ptr<core::DuplexClient> dclient;
  std::optional<core::DuplexEnd> client_end, server_end;
  std::unique_ptr<native::NativeStream> client_stream, server_stream;

  explicit StreamRig(native::StreamConfig scfg = {},
                     const std::string& qos = "class=guaranteed,bw=10000000") {
    tb = TestbedConfig{}.build_deferred();
    EXPECT_TRUE(tb->bring_up().ok());
    auto& r0 = *tb->router(0).kernel;
    auto& r1 = *tb->router(1).kernel;
    dserver = std::make_unique<core::DuplexServer>(
        r1, r1.ip_node().address(), "stream", 6400);
    dserver->set_qos_limit(atm::Qos{atm::ServiceClass::guaranteed, 50'000'000});
    dserver->start([](util::Result<void>) {},
                   [&](core::DuplexEnd end) { server_end = end; });
    tb->sim().run_for(sim::milliseconds(300));
    dclient = std::make_unique<core::DuplexClient>(r0, r0.ip_node().address(),
                                                   6401);
    dclient->open("berkeley.rt", "stream", qos,
                  [&](util::Result<core::DuplexEnd> r) {
                    if (r.ok()) client_end = *r;
                  });
    tb->sim().run_for(sim::seconds(5));
    EXPECT_TRUE(client_end && server_end);
    if (!client_end || !server_end) std::abort();

    std::uint64_t rate =
        atm::parse_qos(client_end->qos_forward).value_or(atm::Qos{}).bandwidth_bps;
    client_stream = std::make_unique<native::NativeStream>(
        r0, dclient->pid(), *client_end, rate, scfg);
    server_stream = std::make_unique<native::NativeStream>(
        r1, dserver->pid(), *server_end, rate, scfg);
  }
};

TEST(NativeStream, OrderedDeliveryBothDirections) {
  StreamRig rig;
  std::vector<std::string> at_server, at_client;
  rig.server_stream->on_message([&](util::BytesView d) {
    at_server.push_back(util::to_text(d));
    (void)rig.server_stream->send(util::to_buffer("re:" + util::to_text(d)));
  });
  rig.client_stream->on_message(
      [&](util::BytesView d) { at_client.push_back(util::to_text(d)); });
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(rig.client_stream->send(
        util::to_buffer("msg" + std::to_string(i))).ok());
  }
  rig.tb->sim().run_for(sim::seconds(5));
  ASSERT_EQ(at_server.size(), 20u);
  ASSERT_EQ(at_client.size(), 20u);
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(at_server[static_cast<std::size_t>(i)], "msg" + std::to_string(i));
    EXPECT_EQ(at_client[static_cast<std::size_t>(i)],
              "re:msg" + std::to_string(i));
  }
  EXPECT_EQ(rig.client_stream->retransmits(), 0u);  // clean path
}

// A dedicated two-endpoint ATM fixture with direct access to the lossy
// uplink, bypassing Testbed so loss can be injected precisely.
struct LossyRig {
  sim::Simulator sim;
  kern::KernelConfig kcfg;
  std::unique_ptr<kern::Kernel> ka, kb;
  std::unique_ptr<atm::AtmNetwork> net;

  LossyRig() {
    net = std::make_unique<atm::AtmNetwork>(sim);
    auto& s1 = net->make_switch("s1");
    ka = std::make_unique<kern::Kernel>(sim, "a", kern::Kernel::Role::router,
                                        ip::make_ip(1, 1, 1, 1),
                                        atm::AtmAddress{"a"}, kcfg);
    kb = std::make_unique<kern::Kernel>(sim, "b", kern::Kernel::Role::router,
                                        ip::make_ip(2, 2, 2, 2),
                                        atm::AtmAddress{"b"}, kcfg);
    EXPECT_TRUE(ka->attach_atm(*net, s1, atm::kDs3Bps, sim::microseconds(50)).ok());
    EXPECT_TRUE(kb->attach_atm(*net, s1, atm::kDs3Bps, sim::microseconds(50)).ok());
  }
};

TEST(NativeStream, SelectiveRepeatBeatsLossOnARawVcPair) {
  LossyRig rig;
  // Two PVCs a<->b; apply cell loss by hand on one direction's path via
  // the switch: install the PVCs, then drive streams over raw xunet
  // sockets wrapped in a DuplexEnd-like struct.
  auto p1 = rig.net->setup_pvc(atm::AtmAddress{"a"}, atm::AtmAddress{"b"}, 5,
                               atm::Qos{});
  auto p2 = rig.net->setup_pvc(atm::AtmAddress{"b"}, atm::AtmAddress{"a"}, 6,
                               atm::Qos{});
  ASSERT_TRUE(p1.ok() && p2.ok());

  kern::Pid pa = rig.ka->spawn("sender");
  kern::Pid pb = rig.kb->spawn("receiver");
  auto a_tx = rig.ka->xunet_socket(pa);
  auto a_rx = rig.ka->xunet_socket(pa);
  auto b_tx = rig.kb->xunet_socket(pb);
  auto b_rx = rig.kb->xunet_socket(pb);
  ASSERT_TRUE(rig.ka->xunet_connect(pa, *a_tx, 5, 0).ok());
  ASSERT_TRUE(rig.ka->xunet_bind(pa, *a_rx, 6, 0).ok());
  ASSERT_TRUE(rig.kb->xunet_connect(pb, *b_tx, 6, 0).ok());
  ASSERT_TRUE(rig.kb->xunet_bind(pb, *b_rx, 5, 0).ok());

  core::DuplexEnd ea{*a_tx, *a_rx, 5, 6, "", ""};
  core::DuplexEnd eb{*b_tx, *b_rx, 6, 5, "", ""};
  native::StreamConfig scfg;
  native::NativeStream sa(*rig.ka, pa, ea, 5'000'000, scfg);
  native::NativeStream sb(*rig.kb, pb, eb, 5'000'000, scfg);

  // Loss on the a->b direction: the hobbit uplink of a.  AtmNetwork owns
  // the link; inject loss through the switch trunk API equivalent — here
  // both endpoints hang off one switch, so use AAL-level loss by dropping
  // cells at b's hobbit via a lossy downlink is inaccessible too.  Take
  // the robust route: loss at the SENDING kernel by intercepting the Orc
  // default... simplest honest lever: per-cell loss is already covered in
  // aal5 tests; here inject FRAME loss by occasionally discarding at b's
  // Orc (set_discard toggled by a chaotic timer).
  util::Rng rng(7);
  std::function<void()> flicker = [&] {
    // Randomly discard the data VC for short windows: frames sent during a
    // window vanish, exactly like burst cell loss.
    bool drop = rng.chance(0.25);
    rig.kb->orc().set_discard(5, drop);
    rig.sim.schedule(sim::milliseconds(5), flicker);
  };
  rig.sim.schedule(sim::milliseconds(5), flicker);

  // Send 300 checksummed messages; every one must arrive intact, in order.
  std::uint32_t expected_crc = 0;
  int received = 0;
  bool order_ok = true;
  int last = -1;
  sb.on_message([&](util::BytesView d) {
    util::Reader r(d);
    auto idx = r.u32();
    auto crc = r.u32();
    if (!idx || !crc || util::crc32(r.rest()) != *crc) {
      order_ok = false;
      return;
    }
    if (static_cast<int>(*idx) != last + 1) order_ok = false;
    last = static_cast<int>(*idx);
    ++received;
  });
  util::Rng data_rng(3);
  int queued = 0;
  std::function<void()> feed = [&] {
    while (queued < 300) {
      util::Buffer body(100 + data_rng.below(900));
      for (auto& x : body) x = static_cast<std::uint8_t>(data_rng.next());
      util::Writer w;
      w.u32(static_cast<std::uint32_t>(queued));
      w.u32(util::crc32(body));
      w.bytes(body);
      auto r = sa.send(w.view());
      if (!r.ok()) {
        // Window full: retry shortly (back-pressure at work).
        rig.sim.schedule(sim::milliseconds(10), feed);
        return;
      }
      ++queued;
    }
  };
  feed();
  rig.sim.run_for(sim::seconds(60));
  (void)expected_crc;
  EXPECT_EQ(queued, 300);
  EXPECT_EQ(received, 300);
  EXPECT_TRUE(order_ok);
  EXPECT_GT(sa.retransmits(), 0u);  // loss really happened and was repaired
}

TEST(NativeStream, PacerRespectsTheGrantedRate) {
  StreamRig rig;  // forward granted 10 Mb/s
  // Queue ~2 MB instantly; the pacer must spread it over ~1.6 s, never
  // bursting past the granted rate.
  const int msgs = 250;
  const std::size_t size = 8000;
  int delivered = 0;
  std::optional<sim::SimTime> first, last;
  rig.server_stream->on_message([&](util::BytesView) {
    if (!first) first = rig.tb->sim().now();
    last = rig.tb->sim().now();
    ++delivered;
  });
  int queued = 0;
  std::function<void()> feed = [&] {
    while (queued < msgs) {
      if (!rig.client_stream->send(util::Buffer(size, 0x5A)).ok()) {
        rig.tb->sim().schedule(sim::milliseconds(20), feed);
        return;
      }
      ++queued;
    }
  };
  feed();
  rig.tb->sim().run_for(sim::seconds(30));
  ASSERT_EQ(delivered, msgs);
  double span = (*last - *first).sec();
  double rate_mbps = (msgs - 1) * size * 8.0 / span / 1e6;
  // Paced at ~10 Mb/s (allow slack for framing/scheduling quantization).
  EXPECT_LT(rate_mbps, 11.0);
  EXPECT_GT(rate_mbps, 8.0);
}

TEST(NativeStream, BackPressureSignalsWouldBlock) {
  native::StreamConfig scfg;
  scfg.window_msgs = 4;
  StreamRig rig(scfg);
  int ok = 0, blocked = 0;
  for (int i = 0; i < 10; ++i) {
    if (rig.client_stream->send(util::Buffer(100, 1)).ok()) {
      ++ok;
    } else {
      ++blocked;
    }
  }
  EXPECT_EQ(ok, 4);
  EXPECT_EQ(blocked, 6);
  rig.tb->sim().run_for(sim::seconds(2));
  // After the window drains, sending works again.
  EXPECT_TRUE(rig.client_stream->send(util::Buffer(100, 1)).ok());
}

TEST(NativeStream, DrainedCallbackFiresWhenAllAcked) {
  StreamRig rig;
  bool drained = false;
  rig.client_stream->on_drained([&] { drained = true; });
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(rig.client_stream->send(util::Buffer(500, 2)).ok());
  }
  rig.tb->sim().run_for(sim::seconds(3));
  EXPECT_TRUE(drained);
  EXPECT_EQ(rig.client_stream->in_flight(), 0u);
}

TEST(NativeStream, OversizeMessageRejected) {
  StreamRig rig;
  EXPECT_EQ(rig.client_stream->send(util::Buffer(33 * 1024, 0)).error(),
            util::Errc::message_too_long);
}

}  // namespace
}  // namespace xunet
