// recovery_test.cpp — the robustness tentpole end to end: reliable
// signaling delivery over a lossy PVC (retransmission, duplicate
// suppression), bounded-queue overload shedding, and sighost crash-restart
// recovery (kernel/network audit + peer resync), all driven by the seeded
// FaultPlan so every scenario reproduces exactly from its seed.
#include <gtest/gtest.h>

#include <algorithm>
#include <optional>
#include <set>
#include <vector>

#include "core/apps.hpp"
#include "core/testbed.hpp"
#include "fault/fault.hpp"

namespace xunet {
namespace {

using core::CallClient;
using core::CallServer;
using core::Testbed;

struct Rig {
  std::unique_ptr<Testbed> tb;
  std::unique_ptr<CallServer> server;
  std::unique_ptr<CallClient> client;

  explicit Rig(core::TestbedConfig cfg = {}) {
    // Descriptor scaling is §10's problem, not this file's: completed
    // per-call conns sit in TIME_WAIT for 2xMSL and would exhaust the
    // default 20-entry table under a many-call workload.
    cfg.kernel.fd_table_size = 512;
    tb = cfg.routers(2).pvc_mesh().build();
    auto& r1 = tb->router(1);
    server = std::make_unique<CallServer>(
        *r1.kernel, r1.kernel->ip_node().address(), "svc", 6200);
    server->start([](util::Result<void>) {});
    client = std::make_unique<CallClient>(
        *tb->router(0).kernel, tb->router(0).kernel->ip_node().address());
    tb->sim().run_for(sim::milliseconds(300));
  }
};

// --------------------------------------------------- reliable delivery

TEST(ReliableDelivery, RetransmissionSurvivesHeavySignalingLoss) {
  core::TestbedConfig cfg;
  cfg.sighost.request_timeout = sim::seconds(20);
  Rig rig(cfg);
  fault::FaultPlan plan(*rig.tb, 42);
  plan.drop_signaling(0.30);
  plan.arm();

  int ok = 0, failed = 0;
  for (int i = 0; i < 10; ++i) {
    rig.tb->sim().schedule(sim::milliseconds(200) * i, [&] {
      rig.client->open("berkeley.rt", "svc", "",
                       [&](util::Result<CallClient::Call> r) {
                         r.ok() ? ++ok : ++failed;
                       });
    });
  }
  rig.tb->sim().run_for(sim::seconds(40));
  EXPECT_EQ(ok + failed, 10);
  // 30% loss cannot stop delivery: retransmission must carry every call.
  EXPECT_EQ(ok, 10) << "failed=" << failed;
  EXPECT_GT(plan.stats().dropped, 0u);
  const auto& s0 = rig.tb->router(0).sighost->stats();
  const auto& s1 = rig.tb->router(1).sighost->stats();
  EXPECT_GT(s0.retransmits + s1.retransmits, 0u);
}

TEST(ReliableDelivery, DuplicatedMessagesEstablishEachCallOnce) {
  Rig rig;
  fault::FaultPlan plan(*rig.tb, 7);
  plan.duplicate_signaling(0.8);
  plan.arm();

  int ok = 0, failed = 0;
  for (int i = 0; i < 8; ++i) {
    rig.tb->sim().schedule(sim::milliseconds(150) * i, [&] {
      rig.client->open("berkeley.rt", "svc", "",
                       [&](util::Result<CallClient::Call> r) {
                         r.ok() ? ++ok : ++failed;
                       });
    });
  }
  rig.tb->sim().run_for(sim::seconds(15));
  EXPECT_EQ(ok, 8);
  EXPECT_EQ(failed, 0);
  const auto& s0 = rig.tb->router(0).sighost->stats();
  const auto& s1 = rig.tb->router(1).sighost->stats();
  EXPECT_GT(s0.dup_suppressed + s1.dup_suppressed, 0u);
  // Exactly one VC per call beyond the signaling PVCs.
  EXPECT_EQ(rig.tb->audit().network_vcs, 8u);
  EXPECT_EQ(rig.server->calls_accepted(), 8u);
}

TEST(ReliableDelivery, CorruptedFramesAreCountedAndRetransmitted) {
  Rig rig;
  fault::FaultPlan plan(*rig.tb, 11);
  plan.corrupt_signaling(0.25);
  plan.arm();

  int ok = 0;
  for (int i = 0; i < 6; ++i) {
    rig.tb->sim().schedule(sim::milliseconds(200) * i, [&] {
      rig.client->open("berkeley.rt", "svc", "",
                       [&](util::Result<CallClient::Call> r) {
                         if (r.ok()) ++ok;
                       });
    });
  }
  rig.tb->sim().run_for(sim::seconds(30));
  EXPECT_EQ(ok, 6);
  const auto& s0 = rig.tb->router(0).sighost->stats();
  const auto& s1 = rig.tb->router(1).sighost->stats();
  EXPECT_GT(s0.peer_parse_errors + s1.peer_parse_errors, 0u);
  EXPECT_GT(plan.stats().corrupted, 0u);
}

TEST(ReliableDelivery, ReorderedSignalingStillEstablishes) {
  Rig rig;
  fault::FaultPlan plan(*rig.tb, 23);
  plan.reorder_signaling(0.4, sim::milliseconds(30), sim::milliseconds(40));
  plan.arm();

  int ok = 0, failed = 0;
  for (int i = 0; i < 8; ++i) {
    rig.tb->sim().schedule(sim::milliseconds(120) * i, [&] {
      rig.client->open("berkeley.rt", "svc", "",
                       [&](util::Result<CallClient::Call> r) {
                         r.ok() ? ++ok : ++failed;
                       });
    });
  }
  rig.tb->sim().run_for(sim::seconds(15));
  EXPECT_EQ(ok, 8);
  EXPECT_EQ(failed, 0);
  EXPECT_GT(plan.stats().delayed, 0u);
}

// --------------------------------------------------- overload shedding

TEST(OverloadShedding, ExcessConnectRequestsAreRejectedBusy) {
  core::TestbedConfig cfg;
  cfg.sighost.max_outgoing_requests = 4;
  cfg.sighost.request_timeout = sim::seconds(5);
  Rig rig(cfg);
  // Partition the trunk so requests pile up in outgoing_requests instead
  // of resolving; the 5th..10th CONNECT_REQ must be shed immediately.
  auto* s1 = rig.tb->network().switch_by_name("s1");
  auto* s2 = rig.tb->network().switch_by_name("s2");
  ASSERT_NE(s1, nullptr);
  ASSERT_NE(s2, nullptr);
  rig.tb->network().set_trunk_down(*s1, *s2, true);

  std::vector<util::Errc> errors;
  int ok = 0;
  for (int i = 0; i < 10; ++i) {
    rig.client->open("berkeley.rt", "svc", "",
                     [&](util::Result<CallClient::Call> r) {
                       if (r.ok()) {
                         ++ok;
                       } else {
                         errors.push_back(r.error());
                       }
                     });
  }
  rig.tb->sim().run_for(sim::seconds(2));
  // Six requests shed with the busy cause, long before any timeout.
  std::size_t busy = 0;
  for (util::Errc e : errors) {
    if (e == util::Errc::no_buffer_space) ++busy;
  }
  EXPECT_EQ(busy, 6u);
  EXPECT_EQ(rig.tb->router(0).sighost->stats().sheds, 6u);
  EXPECT_EQ(rig.tb->router(0).sighost->outgoing_requests_size(), 4u);

  // The four admitted requests fail cleanly by timeout; nothing leaks.
  rig.tb->sim().run_for(sim::seconds(10));
  EXPECT_EQ(ok, 0);
  EXPECT_EQ(errors.size(), 10u);
  EXPECT_TRUE(rig.tb->audit().clean()) << rig.tb->audit().describe();
}

// --------------------------------------------------- crash-restart recovery

TEST(CrashRecovery, EstablishedCallsSurviveCalleeSighostRestart) {
  Rig rig;
  std::vector<CallClient::Call> calls;
  for (int i = 0; i < 5; ++i) {
    rig.client->open("berkeley.rt", "svc", "",
                     [&](util::Result<CallClient::Call> r) {
                       ASSERT_TRUE(r.ok()) << to_string(r.error());
                       calls.push_back(*r);
                     });
    rig.tb->sim().run_for(sim::seconds(1));
  }
  ASSERT_EQ(calls.size(), 5u);

  rig.tb->crash_sighost(1);
  rig.tb->sim().run_for(sim::milliseconds(500));
  // Data keeps flowing while signaling is dead.
  ASSERT_TRUE(rig.client->send(calls[0], util::Buffer(200, 0xaa)).ok());
  rig.tb->sim().run_for(sim::milliseconds(500));
  EXPECT_EQ(rig.server->frames_received(), 1u);

  ASSERT_TRUE(rig.tb->restart_sighost(1).ok());
  rig.tb->sim().run_for(sim::seconds(10));
  const auto& st = rig.tb->router(1).sighost->stats();
  EXPECT_EQ(st.recovered_calls, 5u);   // every call audited and reclaimed
  EXPECT_EQ(st.orphans_torn_down, 0u); // nothing was dangling
  EXPECT_EQ(rig.tb->router(0).sighost->stats().resyncs, 1u);
  EXPECT_EQ(rig.tb->router(1).sighost->vci_mapping_size(), 5u);

  // Established calls still carry data...
  ASSERT_TRUE(rig.client->send(calls[2], util::Buffer(100, 0xbb)).ok());
  rig.tb->sim().run_for(sim::seconds(1));
  EXPECT_EQ(rig.server->frames_received(), 2u);
  // ...the server re-registered with the new sighost...
  EXPECT_GE(rig.server->re_registrations(), 1u);
  // ...and new calls establish again.
  bool new_ok = false;
  rig.client->open("berkeley.rt", "svc", "",
                   [&](util::Result<CallClient::Call> r) { new_ok = r.ok(); });
  rig.tb->sim().run_for(sim::seconds(5));
  EXPECT_TRUE(new_ok);

  // Teardown of a recovered call still works end to end.
  rig.client->close_call(calls[4]);
  rig.tb->sim().run_for(sim::seconds(5));
  EXPECT_EQ(rig.tb->router(1).sighost->vci_mapping_size(), 5u);  // 5 + new - closed
}

TEST(CrashRecovery, VciMappingOrderIsAscendingAndSurvivesResync) {
  // Pins the iteration-order contract behind handle_peer_resync: the
  // surviving peer reports shared calls by walking VCI_mapping, so the
  // PEER_RESYNC_INFO sequence (and replayed traces with it) is deterministic
  // only while vci_map_ iterates in ascending VCI order — i.e. stays an
  // ordered map.  A switch to a hash map turns both assertions flaky.
  Rig rig;
  std::vector<CallClient::Call> calls;
  for (int i = 0; i < 5; ++i) {
    rig.client->open("berkeley.rt", "svc", "",
                     [&](util::Result<CallClient::Call> r) {
                       ASSERT_TRUE(r.ok()) << to_string(r.error());
                       calls.push_back(*r);
                     });
    rig.tb->sim().run_for(sim::seconds(1));
  }
  ASSERT_EQ(calls.size(), 5u);

  auto strictly_ascending = [](const std::vector<atm::Vci>& v) {
    return std::adjacent_find(v.begin(), v.end(),
                              [](atm::Vci a, atm::Vci b) { return a >= b; }) ==
           v.end();
  };
  const auto caller_before = rig.tb->router(0).sighost->vci_mapping_vcis();
  const auto callee_before = rig.tb->router(1).sighost->vci_mapping_vcis();
  ASSERT_EQ(caller_before.size(), 5u);
  EXPECT_TRUE(strictly_ascending(caller_before));
  EXPECT_TRUE(strictly_ascending(callee_before));

  // Crash/restart the callee: its mapping is audited back from the kernel
  // and network and re-keyed by the caller's PEER_RESYNC_INFO report.  The
  // rebuilt mapping must be the same set of VCIs in the same order.
  rig.tb->crash_sighost(1);
  rig.tb->sim().run_for(sim::milliseconds(500));
  ASSERT_TRUE(rig.tb->restart_sighost(1).ok());
  rig.tb->sim().run_for(sim::seconds(10));
  EXPECT_EQ(rig.tb->router(1).sighost->vci_mapping_vcis(), callee_before);
  EXPECT_EQ(rig.tb->router(0).sighost->vci_mapping_vcis(), caller_before);
}

TEST(CrashRecovery, OrphanedVcsAreTornDownAfterRestart) {
  Rig rig;
  std::vector<CallClient::Call> calls;
  for (int i = 0; i < 3; ++i) {
    rig.client->open("berkeley.rt", "svc", "",
                     [&](util::Result<CallClient::Call> r) {
                       ASSERT_TRUE(r.ok());
                       calls.push_back(*r);
                     });
    rig.tb->sim().run_for(sim::seconds(1));
  }
  ASSERT_EQ(calls.size(), 3u);

  // Crash the callee sighost AND the server during the outage: the calls'
  // receiving sockets die with nobody to notice.
  rig.tb->crash_sighost(1);
  rig.server->kill();
  rig.tb->sim().run_for(sim::milliseconds(500));

  ASSERT_TRUE(rig.tb->restart_sighost(1).ok());
  // The audit finds VCs but no surviving sockets: nothing is recovered,
  // and the peer's RESYNC_INFOs draw PEER_TEARDOWNs that release the
  // originator's halves and the VCs themselves.
  rig.tb->sim().run_for(sim::seconds(10));
  EXPECT_EQ(rig.tb->router(1).sighost->stats().recovered_calls, 0u);
  EXPECT_EQ(rig.tb->router(1).sighost->vci_mapping_size(), 0u);
  EXPECT_EQ(rig.tb->router(0).sighost->vci_mapping_size(), 0u);
  EXPECT_EQ(rig.tb->audit().network_vcs, 0u);
}

TEST(CrashRecovery, CrashBetweenRetransmitBackoffAttemptsOfInflightConnect) {
  Rig rig;
  fault::FaultPlan plan(*rig.tb, 5);
  // The callee never hears the CONNECT_REQ: every peer_setup out of mh.rt
  // is dropped, so the originating sighost sits in retransmission backoff
  // (attempts at ~250 ms, ~500 ms, ~1 s after the send) with an armed retx
  // timer the whole time.
  fault::WireRule r;
  r.node = "mh.rt";
  r.type = sig::MsgType::peer_setup;
  r.until = rig.tb->sim().now() + sim::milliseconds(1700);
  plan.add_rule(r);
  // The crash lands BETWEEN backoff attempts: the armed retransmit timer
  // must die with the instance (Timer destructors cancel; raw events hold
  // the liveness token) instead of firing into the dead sighost.
  plan.crash_sighost_at(sim::milliseconds(850), 0);
  plan.restart_sighost_at(sim::milliseconds(1500), 0);
  plan.arm();

  int fired = 0, ok = 0, failed = 0;
  std::optional<CallClient::Call> call;
  rig.tb->sim().schedule(sim::milliseconds(200), [&] {
    app::OpenOptions opts;
    // The crash resets the app channel mid-request; the deadline budget
    // re-dials the replacement sighost and re-issues the open.
    opts.deadline = sim::seconds(10);
    rig.client->open("berkeley.rt", "svc", "", opts,
                     [&](util::Result<CallClient::Call> res) {
                       ++fired;
                       if (res.ok()) {
                         ++ok;
                         call = *res;
                       } else {
                         ++failed;
                       }
                     });
  });
  rig.tb->sim().run_for(sim::seconds(15));

  // Exactly-once resolution through the crash, and the call lands.
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(ok, 1) << "failed=" << failed;
  ASSERT_TRUE(call.has_value());
  rig.client->close_call(*call);
  rig.tb->sim().run_for(sim::seconds(2));
  auto rep = rig.tb->audit();
  EXPECT_TRUE(rep.clean()) << rep.describe();
}

// ----------------------------------------------- the acceptance scenario

struct ScenarioResult {
  int ok = 0;
  int failed = 0;
  std::vector<int> fires;           ///< callback count per call (must be 1)
  std::set<atm::Vci> client_vcis;   ///< distinct data VCIs among successes
  std::uint64_t frames = 0;         ///< data frames through the restart
  std::uint64_t retransmits = 0;
  std::uint64_t dup_suppressed = 0;
  std::uint64_t recovered = 0;
  std::uint64_t dropped = 0;        ///< plan-injected drops
  std::size_t leaked_vcs = 0;

  [[nodiscard]] bool operator==(const ScenarioResult&) const = default;
};

ScenarioResult run_scenario(std::uint64_t seed) {
  core::TestbedConfig cfg;
  cfg.sighost.request_timeout = sim::seconds(5);
  Rig rig(cfg);

  fault::FaultPlan plan(*rig.tb, seed);
  plan.drop_signaling(0.20);
  plan.crash_sighost_at(sim::seconds(2), 1);
  plan.restart_sighost_at(sim::milliseconds(2600), 1);
  plan.arm();

  ScenarioResult res;
  res.fires.assign(50, 0);

  // One early call streams data across the restart.
  std::optional<CallClient::Call> stream;
  rig.client->open("berkeley.rt", "svc", "",
                   [&](util::Result<CallClient::Call> r) {
                     if (r.ok()) stream = *r;
                   });
  for (int t = 0; t < 60; ++t) {
    rig.tb->sim().schedule(sim::milliseconds(1000 + 100 * t), [&] {
      if (stream.has_value()) {
        (void)rig.client->send(*stream, util::Buffer(128, 0x5a));
      }
    });
  }

  // 50 staggered calls spanning the crash window.
  for (int i = 0; i < 50; ++i) {
    rig.tb->sim().schedule(sim::milliseconds(300 + 100 * i), [&, i] {
      rig.client->open("berkeley.rt", "svc", "",
                       [&, i](util::Result<CallClient::Call> r) {
                         ++res.fires[static_cast<std::size_t>(i)];
                         if (r.ok()) {
                           ++res.ok;
                           res.client_vcis.insert(r->info.vci);
                         } else {
                           ++res.failed;
                         }
                       });
    });
  }

  rig.tb->sim().run_for(sim::seconds(40));
  res.frames = rig.server->frames_received();
  const auto& s0 = rig.tb->router(0).sighost->stats();
  const auto& s1 = rig.tb->router(1).sighost->stats();
  res.retransmits = s0.retransmits + s1.retransmits;
  res.dup_suppressed = s0.dup_suppressed + s1.dup_suppressed;
  res.recovered = s1.recovered_calls;
  res.dropped = plan.stats().dropped;
  // Every successful call (plus the stream call) holds exactly one VC;
  // failed calls hold nothing.
  res.leaked_vcs = rig.tb->audit().network_vcs -
                   static_cast<std::size_t>(res.ok + (stream ? 1 : 0));
  return res;
}

TEST(FaultPlanScenario, FiftyCallsThroughLossAndRestartExactlyOnce) {
  ScenarioResult res = run_scenario(0xfeedface);

  // Every call resolved exactly once: established or failed cleanly,
  // never hung, never double-completed.
  for (std::size_t i = 0; i < res.fires.size(); ++i) {
    EXPECT_EQ(res.fires[i], 1) << "call " << i;
  }
  EXPECT_EQ(res.ok + res.failed, 50);
  // Retransmission must carry a solid majority through 20% loss + restart.
  EXPECT_GE(res.ok, 40) << "failed=" << res.failed;
  // No duplicate VCs: one distinct VCI per success, no extras in the net.
  EXPECT_EQ(res.client_vcis.size(), static_cast<std::size_t>(res.ok));
  EXPECT_EQ(res.leaked_vcs, 0u);
  // The early call streamed through the crash window: every frame arrived.
  EXPECT_EQ(res.frames, 60u);
  // The machinery actually engaged.
  EXPECT_GT(res.dropped, 0u);
  EXPECT_GT(res.retransmits, 0u);
  EXPECT_GE(res.recovered, 1u);
}

TEST(FaultPlanScenario, SameSeedRunsAreBitwiseIdentical) {
  ScenarioResult a = run_scenario(0xfeedface);
  ScenarioResult b = run_scenario(0xfeedface);
  EXPECT_EQ(a, b);
  ScenarioResult c = run_scenario(0x0dd5eed);
  // A different seed exercises a different trajectory (loss pattern), even
  // if headline counts may coincide.
  EXPECT_EQ(c.ok + c.failed, 50);
}

}  // namespace
}  // namespace xunet
