// integration_test.cpp — end-to-end call setup, data transfer and teardown
// across the canonical §9 testbed (router↔router and host↔host over IP
// encapsulation).
#include <gtest/gtest.h>

#include "core/apps.hpp"
#include "core/testbed.hpp"

namespace xunet {
namespace {

using core::CallClient;
using core::CallServer;
using core::Testbed;
using core::TestbedConfig;

TEST(Integration, BringUpCanonicalTestbed) {
  auto tb = TestbedConfig{}.build_deferred();
  ASSERT_TRUE(tb->bring_up().ok());
  // Sighosts know each other.
  EXPECT_EQ(tb->router_count(), 2u);
  // The PVC mesh is installed: 2 simplex PVCs.
  EXPECT_EQ(tb->network().active_vc_count(), 2u);
  EXPECT_TRUE(tb->audit().clean()) << tb->audit().describe();
}

TEST(Integration, RouterToRouterCall) {
  auto tb = TestbedConfig{}.build_deferred();
  ASSERT_TRUE(tb->bring_up().ok());
  auto& r0 = tb->router(0);
  auto& r1 = tb->router(1);

  CallServer server(*r1.kernel, r1.kernel->ip_node().address(), "echo", 4000);
  bool registered = false;
  server.start([&](util::Result<void> r) {
    ASSERT_TRUE(r.ok()) << to_string(r.error());
    registered = true;
  });
  tb->sim().run_for(sim::milliseconds(200));
  ASSERT_TRUE(registered);
  EXPECT_TRUE(r1.sighost->has_service("echo"));

  CallClient client(*r0.kernel, r0.kernel->ip_node().address());
  std::optional<CallClient::Call> call;
  client.open("berkeley.rt", "echo", "class=guaranteed,bw=1000000",
              [&](util::Result<CallClient::Call> r) {
                ASSERT_TRUE(r.ok()) << to_string(r.error());
                call = *r;
              });
  tb->sim().run_for(sim::seconds(2));
  ASSERT_TRUE(call.has_value());
  EXPECT_NE(call->info.vci, atm::kInvalidVci);
  EXPECT_NE(call->info.cookie, 0);
  // QoS negotiated: the server ceiling is 10 Mb/s so 1 Mb/s passes through.
  EXPECT_EQ(call->info.qos, "class=guaranteed,bw=1000000");
  EXPECT_EQ(server.calls_accepted(), 1u);

  // Both endpoints presented valid cookies: no auth failures, no timeouts.
  EXPECT_EQ(r0.sighost->stats().auth_failures, 0u);
  EXPECT_EQ(r1.sighost->stats().auth_failures, 0u);
  EXPECT_EQ(r0.sighost->wait_for_bind_size(), 0u);
  EXPECT_EQ(r1.sighost->wait_for_bind_size(), 0u);

  // Data flows client -> server over the ATM path.
  std::string payload(500, 'x');
  ASSERT_TRUE(client.send(*call, util::to_buffer(payload)).ok());
  ASSERT_TRUE(client.send(*call, util::to_buffer(payload)).ok());
  tb->sim().run_for(sim::seconds(1));
  EXPECT_EQ(server.frames_received(), 2u);
  EXPECT_EQ(server.bytes_received(), 1000u);

  // Closing the client's socket tears the call down everywhere.
  client.close_call(*call);
  tb->sim().run_for(sim::seconds(2));
  EXPECT_TRUE(tb->audit().clean()) << tb->audit().describe();
  EXPECT_EQ(r0.sighost->stats().calls_torn_down, 1u);
}

TEST(Integration, HostToHostCallOverIpEncapsulation) {
  auto tb = TestbedConfig{}.hosts(2).build_deferred();
  ASSERT_TRUE(tb->bring_up().ok());
  auto& h0 = tb->host(0);  // client host behind mh.rt
  auto& h1 = tb->host(1);  // server host behind berkeley.rt

  CallServer server(*h1.kernel, h1.home->kernel->ip_node().address(),
                    "file-service", 4001);
  bool registered = false;
  server.start([&](util::Result<void> r) {
    ASSERT_TRUE(r.ok()) << to_string(r.error());
    registered = true;
  });
  tb->sim().run_for(sim::milliseconds(300));
  ASSERT_TRUE(registered);
  EXPECT_TRUE(tb->router(1).sighost->has_service("file-service"));

  CallClient client(*h0.kernel, h0.home->kernel->ip_node().address());
  std::optional<CallClient::Call> call;
  client.open("berkeley.rt", "file-service", "class=predicted,bw=500000",
              [&](util::Result<CallClient::Call> r) {
                ASSERT_TRUE(r.ok()) << to_string(r.error());
                call = *r;
              });
  tb->sim().run_for(sim::seconds(2));
  ASSERT_TRUE(call.has_value());

  // The server host's VCI must be VCI_BINDed at its router for forwarding.
  EXPECT_EQ(tb->router(1).anand_server->forwarded_vci_count(), 1u);

  // Data path: host -> (IPPROTO_ATM) -> router -> ATM -> router ->
  // (IPPROTO_ATM) -> host.
  std::string block(2000, 'f');
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(client.send(*call, util::to_buffer(block)).ok());
  }
  tb->sim().run_for(sim::seconds(1));
  EXPECT_EQ(server.frames_received(), 5u);
  EXPECT_EQ(server.bytes_received(), 10'000u);
  // No AAL5 or sequencing errors on the clean path.
  EXPECT_EQ(h1.kernel->proto_atm().out_of_order(), 0u);

  client.close_call(*call);
  tb->sim().run_for(sim::seconds(2));
  EXPECT_TRUE(tb->audit().clean()) << tb->audit().describe();
  // VCI_SHUT cleared the forwarding entry.
  EXPECT_EQ(tb->router(1).anand_server->forwarded_vci_count(), 0u);
}

TEST(Integration, ServerModifiesQosDownward) {
  auto tb = TestbedConfig{}.build_deferred();
  ASSERT_TRUE(tb->bring_up().ok());
  auto& r1 = tb->router(1);

  CallServer server(*r1.kernel, r1.kernel->ip_node().address(), "video", 4002);
  server.set_qos_limit(atm::Qos{atm::ServiceClass::predicted, 2'000'000});
  server.start([](util::Result<void>) {});
  tb->sim().run_for(sim::milliseconds(200));

  CallClient client(*tb->router(0).kernel,
                    tb->router(0).kernel->ip_node().address());
  std::optional<CallClient::Call> call;
  client.open("berkeley.rt", "video", "class=guaranteed,bw=8000000",
              [&](util::Result<CallClient::Call> r) {
                ASSERT_TRUE(r.ok());
                call = *r;
              });
  tb->sim().run_for(sim::seconds(2));
  ASSERT_TRUE(call.has_value());
  // The server shrank both the class and the bandwidth.
  auto granted = atm::parse_qos(call->info.qos);
  ASSERT_TRUE(granted.ok());
  EXPECT_EQ(granted->service_class, atm::ServiceClass::predicted);
  EXPECT_EQ(granted->bandwidth_bps, 2'000'000u);
}

TEST(Integration, UnknownServiceIsRejected) {
  auto tb = TestbedConfig{}.build_deferred();
  ASSERT_TRUE(tb->bring_up().ok());
  CallClient client(*tb->router(0).kernel,
                    tb->router(0).kernel->ip_node().address());
  std::optional<util::Errc> err;
  client.open("berkeley.rt", "no-such-service", "",
              [&](util::Result<CallClient::Call> r) {
                ASSERT_FALSE(r.ok());
                err = r.error();
              });
  tb->sim().run_for(sim::seconds(2));
  ASSERT_TRUE(err.has_value());
  EXPECT_EQ(*err, util::Errc::not_found);
  EXPECT_TRUE(tb->audit().clean()) << tb->audit().describe();
}

TEST(Integration, UnknownDestinationFails) {
  auto tb = TestbedConfig{}.build_deferred();
  ASSERT_TRUE(tb->bring_up().ok());
  CallClient client(*tb->router(0).kernel,
                    tb->router(0).kernel->ip_node().address());
  std::optional<util::Errc> err;
  client.open("nowhere.rt", "echo", "",
              [&](util::Result<CallClient::Call> r) { err = r.error(); });
  tb->sim().run_for(sim::seconds(2));
  ASSERT_TRUE(err.has_value());
  EXPECT_EQ(*err, util::Errc::no_route);
}

TEST(Integration, AdmissionControlDeniesOversubscription) {
  auto tb = TestbedConfig{}.build_deferred();  // DS3: 45 Mb/s per link
  ASSERT_TRUE(tb->bring_up().ok());
  auto& r1 = tb->router(1);
  CallServer server(*r1.kernel, r1.kernel->ip_node().address(), "bulk", 4003);
  server.set_qos_limit(atm::Qos{atm::ServiceClass::guaranteed, 45'000'000});
  server.start([](util::Result<void>) {});
  tb->sim().run_for(sim::milliseconds(200));

  CallClient client(*tb->router(0).kernel,
                    tb->router(0).kernel->ip_node().address());
  int ok = 0, denied = 0;
  for (int i = 0; i < 3; ++i) {
    // Each call wants 20 Mb/s guaranteed; only two fit in a DS3.
    client.open("berkeley.rt", "bulk", "class=guaranteed,bw=20000000",
                [&](util::Result<CallClient::Call> r) {
                  if (r.ok()) {
                    ++ok;
                  } else {
                    EXPECT_EQ(r.error(), util::Errc::no_resources);
                    ++denied;
                  }
                });
  }
  tb->sim().run_for(sim::seconds(3));
  EXPECT_EQ(ok, 2);
  EXPECT_EQ(denied, 1);
  // The denied call left nothing behind.
  EXPECT_EQ(tb->network().active_vc_count(), 2u + 2u);  // PVCs + 2 calls
}

}  // namespace
}  // namespace xunet
