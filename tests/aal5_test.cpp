// aal5_test.cpp — the Xunet AAL5 variant: segmentation, reassembly, and the
// two guarantees of §5.4 (cell loss within a frame, out-of-order frames).
#include <gtest/gtest.h>

#include "atm/aal5.hpp"
#include "util/rng.hpp"

namespace xunet::atm {
namespace {

struct Collector {
  std::vector<Aal5Frame> frames;
  std::vector<std::pair<Vci, Aal5Error>> errors;
  Aal5Reassembler reasm{[this](Aal5Frame f) { frames.push_back(std::move(f)); },
                        [this](Vci v, Aal5Error e) { errors.emplace_back(v, e); }};
};

util::Buffer make_payload(std::size_t n, std::uint64_t seed) {
  util::Rng rng(seed);
  util::Buffer b(n);
  for (auto& x : b) x = static_cast<std::uint8_t>(rng.next());
  return b;
}

TEST(Aal5, CellsForPayloadMath) {
  EXPECT_EQ(cells_for_payload(0), 1u);   // trailer alone needs one cell
  EXPECT_EQ(cells_for_payload(40), 1u);  // 40 + 8 == 48
  EXPECT_EQ(cells_for_payload(41), 2u);
  EXPECT_EQ(cells_for_payload(88), 2u);  // 88 + 8 == 96
  EXPECT_EQ(cells_for_payload(89), 3u);
}

TEST(Aal5, SegmentSetsEndOfFrameOnLastCellOnly) {
  Aal5Segmenter seg;
  auto cells = seg.segment(100, make_payload(200, 1));
  ASSERT_TRUE(cells.ok());
  ASSERT_EQ(cells->size(), cells_for_payload(200));
  for (std::size_t i = 0; i < cells->size(); ++i) {
    EXPECT_EQ((*cells)[i].end_of_frame, i + 1 == cells->size());
    EXPECT_EQ((*cells)[i].vci, 100);
  }
}

TEST(Aal5, RejectsOversizeAndInvalidVci) {
  Aal5Segmenter seg;
  EXPECT_EQ(seg.segment(100, util::Buffer(kMaxFramePayload + 1, 0)).error(),
            util::Errc::message_too_long);
  EXPECT_EQ(seg.segment(kInvalidVci, make_payload(10, 2)).error(),
            util::Errc::invalid_argument);
}

class Aal5RoundTrip : public ::testing::TestWithParam<std::size_t> {};

TEST_P(Aal5RoundTrip, PayloadSurvivesSegmentationAndReassembly) {
  const std::size_t n = GetParam();
  Aal5Segmenter seg;
  Collector c;
  util::Buffer payload = make_payload(n, n + 17);
  auto cells = seg.segment(7, payload);
  ASSERT_TRUE(cells.ok());
  for (const Cell& cell : *cells) c.reasm.cell_arrival(cell);
  ASSERT_EQ(c.frames.size(), 1u);
  EXPECT_EQ(c.frames[0].payload, payload);
  EXPECT_EQ(c.frames[0].vci, 7);
  EXPECT_TRUE(c.errors.empty());
}

INSTANTIATE_TEST_SUITE_P(Sizes, Aal5RoundTrip,
                         ::testing::Values(0, 1, 39, 40, 41, 47, 48, 49, 96,
                                           1000, 4096, 65535));

TEST(Aal5, SequenceNumbersIncrementPerVc) {
  Aal5Segmenter seg;
  Collector c;
  for (int i = 0; i < 5; ++i) {
    auto cells = seg.segment(9, make_payload(10, i));
    ASSERT_TRUE(cells.ok());
    for (const Cell& cell : *cells) c.reasm.cell_arrival(cell);
  }
  ASSERT_EQ(c.frames.size(), 5u);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(c.frames[static_cast<std::size_t>(i)].seq, i);
  }
}

TEST(Aal5, PerVcSequencesAreIndependent) {
  Aal5Segmenter seg;
  (void)seg.segment(1, make_payload(10, 1));
  (void)seg.segment(1, make_payload(10, 2));
  (void)seg.segment(2, make_payload(10, 3));
  EXPECT_EQ(seg.next_seq(1), 2);
  EXPECT_EQ(seg.next_seq(2), 1);
  EXPECT_EQ(seg.next_seq(3), 0);
  seg.release(1);
  EXPECT_EQ(seg.next_seq(1), 0);
}

TEST(Aal5, LostMiddleCellDetected) {
  Aal5Segmenter seg;
  Collector c;
  auto cells = seg.segment(5, make_payload(200, 4));
  ASSERT_TRUE(cells.ok());
  ASSERT_GE(cells->size(), 3u);
  for (std::size_t i = 0; i < cells->size(); ++i) {
    if (i == 1) continue;  // drop one mid-frame cell
    c.reasm.cell_arrival((*cells)[i]);
  }
  EXPECT_TRUE(c.frames.empty());
  ASSERT_EQ(c.errors.size(), 1u);
  // A missing cell shrinks the PDU: caught by the CRC or length check.
  EXPECT_TRUE(c.errors[0].second == Aal5Error::crc_mismatch ||
              c.errors[0].second == Aal5Error::length_mismatch);
}

TEST(Aal5, LostLastCellMergesFramesAndIsDetected) {
  Aal5Segmenter seg;
  Collector c;
  auto f1 = seg.segment(5, make_payload(100, 5));
  auto f2 = seg.segment(5, make_payload(100, 6));
  ASSERT_TRUE(f1.ok() && f2.ok());
  // Drop the end-of-frame cell of frame 1: its cells merge into frame 2.
  for (std::size_t i = 0; i + 1 < f1->size(); ++i) c.reasm.cell_arrival((*f1)[i]);
  for (const Cell& cell : *f2) c.reasm.cell_arrival(cell);
  EXPECT_TRUE(c.frames.empty());
  EXPECT_GE(c.errors.size(), 1u);
}

TEST(Aal5, CorruptedCellFailsCrc) {
  Aal5Segmenter seg;
  Collector c;
  auto cells = seg.segment(5, make_payload(60, 7));
  ASSERT_TRUE(cells.ok());
  (*cells)[0].payload[10] ^= 0x80;
  for (const Cell& cell : *cells) c.reasm.cell_arrival(cell);
  ASSERT_EQ(c.errors.size(), 1u);
  EXPECT_EQ(c.errors[0].second, Aal5Error::crc_mismatch);
}

TEST(Aal5, OutOfOrderFramesDetectedViaUu) {
  Aal5Segmenter seg;
  Collector c;
  auto f0 = seg.segment(5, make_payload(20, 8));
  auto f1 = seg.segment(5, make_payload(20, 9));
  auto f2 = seg.segment(5, make_payload(20, 10));
  ASSERT_TRUE(f0.ok() && f1.ok() && f2.ok());
  // Deliver 0, then 2 (frame 1 lost in the network): seq gap detected.
  for (const Cell& cell : *f0) c.reasm.cell_arrival(cell);
  for (const Cell& cell : *f2) c.reasm.cell_arrival(cell);
  ASSERT_EQ(c.frames.size(), 1u);
  ASSERT_EQ(c.errors.size(), 1u);
  EXPECT_EQ(c.errors[0].second, Aal5Error::out_of_order);
}

TEST(Aal5, ResynchronizesAfterSequenceGap) {
  Aal5Segmenter seg;
  Collector c;
  std::vector<util::Result<std::vector<Cell>>> frames;
  for (int i = 0; i < 4; ++i) frames.push_back(seg.segment(5, make_payload(20, i)));
  // Deliver 0, skip 1, deliver 2 (error), deliver 3 (accepted again).
  for (const Cell& cell : *frames[0]) c.reasm.cell_arrival(cell);
  for (const Cell& cell : *frames[2]) c.reasm.cell_arrival(cell);
  for (const Cell& cell : *frames[3]) c.reasm.cell_arrival(cell);
  EXPECT_EQ(c.frames.size(), 2u);  // frames 0 and 3
  EXPECT_EQ(c.errors.size(), 1u);
}

TEST(Aal5, InterleavedVcsReassembleIndependently) {
  Aal5Segmenter seg;
  Collector c;
  util::Buffer pa = make_payload(150, 20);
  util::Buffer pb = make_payload(150, 21);
  auto ca = seg.segment(10, pa);
  auto cb = seg.segment(11, pb);
  ASSERT_TRUE(ca.ok() && cb.ok());
  // Interleave cell streams of the two VCs.
  std::size_t i = 0, j = 0;
  while (i < ca->size() || j < cb->size()) {
    if (i < ca->size()) c.reasm.cell_arrival((*ca)[i++]);
    if (j < cb->size()) c.reasm.cell_arrival((*cb)[j++]);
  }
  ASSERT_EQ(c.frames.size(), 2u);
  EXPECT_TRUE(c.errors.empty());
  for (const auto& f : c.frames) {
    EXPECT_EQ(f.payload, f.vci == 10 ? pa : pb);
  }
}

TEST(Aal5, ReleaseDiscardsPartialFrame) {
  Aal5Segmenter seg;
  Collector c;
  auto cells = seg.segment(5, make_payload(200, 30));
  ASSERT_TRUE(cells.ok());
  c.reasm.cell_arrival((*cells)[0]);  // partial
  c.reasm.release(5);
  // A fresh frame on the same VCI reassembles cleanly (seq state also gone).
  Aal5Segmenter seg2;
  auto fresh = seg2.segment(5, make_payload(30, 31));
  for (const Cell& cell : *fresh) c.reasm.cell_arrival(cell);
  EXPECT_EQ(c.frames.size(), 1u);
  EXPECT_TRUE(c.errors.empty());
}

TEST(Aal5, ErrorAndFrameCountersTrack) {
  Aal5Segmenter seg;
  Collector c;
  auto good = seg.segment(5, make_payload(30, 40));
  for (const Cell& cell : *good) c.reasm.cell_arrival(cell);
  auto bad = seg.segment(5, make_payload(30, 41));
  (*bad)[0].payload[0] ^= 1;
  for (const Cell& cell : *bad) c.reasm.cell_arrival(cell);
  EXPECT_EQ(c.reasm.frame_count(), 1u);
  EXPECT_EQ(c.reasm.error_count(), 1u);
}

// Property sweep: random loss patterns never produce a corrupted delivered
// frame — loss is always *detected* (the §5.4 guarantee), never silent.
class Aal5LossSweep : public ::testing::TestWithParam<int> {};

TEST_P(Aal5LossSweep, LossIsDetectedNeverSilent) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()));
  Aal5Segmenter seg;
  std::vector<util::Buffer> sent;
  Collector c;
  for (int f = 0; f < 50; ++f) {
    util::Buffer p = make_payload(1 + rng.below(500), rng.next());
    sent.push_back(p);
    auto cells = seg.segment(3, p);
    ASSERT_TRUE(cells.ok());
    for (const Cell& cell : *cells) {
      if (rng.chance(0.02)) continue;  // 2% cell loss
      c.reasm.cell_arrival(cell);
    }
  }
  // Every delivered frame must byte-match what was sent with that seq.
  for (const auto& f : c.frames) {
    ASSERT_LT(f.seq, sent.size());
    EXPECT_EQ(f.payload, sent[f.seq]) << "silent corruption at seq "
                                      << int(f.seq);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, Aal5LossSweep, ::testing::Range(0, 8));

}  // namespace
}  // namespace xunet::atm
