// determinism_test.cpp — locks in two fast-path guarantees:
//
//  1. Engine parity: the pooled event engine is an implementation detail.
//     The same seeded scenario must produce a byte-identical JSONL
//     observability export under Engine::pooled and Engine::legacy_heap —
//     same event order, same timestamps, same metric values.
//  2. Allocation-free steady state: once rings and tables have grown to
//     working size, moving cells through link → switch → link performs no
//     heap allocation (checked via the alloc hook when it is linked in).
#include <gtest/gtest.h>

#include "atm/link.hpp"
#include "atm/switch.hpp"
#include "core/apps.hpp"
#include "core/testbed.hpp"
#include "obs/export.hpp"
#include "util/alloc_hook.hpp"

namespace xunet {
namespace {

using core::CallClient;
using core::CallServer;

/// The standard two-router scenario with tracing on from bring-up: register
/// a service, establish a call, push 20 frames, tear down.  Returns the
/// full JSONL export (schema header, every trace event, every metric).
std::string traced_run(bool legacy_engine) {
  core::TestbedConfig cfg;
  if (legacy_engine) cfg.legacy_event_engine();
  auto tb = cfg.build_deferred();
  tb->sim().obs().set_tracing(true);
  if (!tb->bring_up().ok()) return "bring-up-failed";

  auto& r1 = tb->router(1);
  CallServer server(*r1.kernel, r1.kernel->ip_node().address(), "det", 4950);
  server.start([](util::Result<void>) {});
  tb->sim().run_for(sim::milliseconds(300));

  CallClient client(*tb->router(0).kernel,
                    tb->router(0).kernel->ip_node().address());
  std::optional<CallClient::Call> call;
  client.open("berkeley.rt", "det", "class=predicted,bw=500000",
              [&](util::Result<CallClient::Call> r) {
                if (r.ok()) call = *r;
              });
  tb->sim().run_for(sim::seconds(2));
  if (!call) return "open-failed";
  for (int i = 0; i < 20; ++i) {
    (void)client.send(*call,
                      util::Buffer(64 + 13 * static_cast<std::size_t>(i), 0xA5));
  }
  tb->sim().run_for(sim::seconds(2));
  client.close_call(*call);
  tb->sim().run_for(sim::seconds(2));
  return obs::to_jsonl(tb->sim().obs().trace(), tb->sim().obs().metrics());
}

TEST(Determinism, PooledAndLegacyEnginesProduceIdenticalTraces) {
  std::string pooled = traced_run(false);
  std::string legacy = traced_run(true);
  ASSERT_EQ(pooled.find("failed"), std::string::npos) << pooled;
  ASSERT_GT(pooled.size(), 1000u) << "trace suspiciously small";
  EXPECT_EQ(pooled, legacy);
  // And the export is a valid artifact in its own right.
  EXPECT_TRUE(obs::validate_jsonl(pooled).ok());
}

TEST(Determinism, PooledEngineRerunIsByteIdentical) {
  std::string a = traced_run(false);
  std::string b = traced_run(false);
  EXPECT_EQ(a, b);
}

// ------------------------------------------------- allocation-free fast path

struct CountingSink final : atm::CellSink {
  std::uint64_t n = 0;
  void cell_arrival(const atm::Cell&) override { ++n; }
  void cells_arrival(const atm::Cell*, std::size_t k) override { n += k; }
};

TEST(Determinism, SteadyStateCellPathIsAllocationFree) {
  if (!util::alloc_hook_installed()) {
    GTEST_SKIP() << "alloc hook not linked into this binary";
  }
  sim::Simulator sim;
  atm::AtmSwitch sw(sim, "zero-alloc", sim::microseconds(10), 1u << 16);
  const int p_in = sw.add_port();
  const int p_out = sw.add_port();
  CountingSink sink;
  atm::CellLink in(sim, atm::kOc12Bps, sim::microseconds(5), sw.input(p_in));
  atm::CellLink out(sim, atm::kOc12Bps, sim::microseconds(5), sink);
  in.set_coalescing(sim::microseconds(25));
  out.set_coalescing(sim::microseconds(25));
  sw.set_output(p_out, out);
  ASSERT_TRUE(sw.install_route(p_in, 100, p_out, 200, atm::Qos{}).ok());

  atm::Cell cell;
  cell.vci = 100;
  auto batch = [&](int frames) {
    for (int f = 0; f < frames; ++f) {
      sim.schedule(sim::microseconds(100 * static_cast<std::int64_t>(f)),
                   [&] {
                     for (int i = 0; i < 100; ++i) in.send(cell);
                   });
    }
    sim.run();
  };

  // Two warmup rounds: the first grows rings, pool chunks, and route
  // tables; the second touches the timer-wheel slots at the batch's other
  // time residues (batch start drifts across the wheel between rounds).
  batch(200);
  batch(200);
  const std::uint64_t delivered_warm = sink.n;
  const std::uint64_t before = util::alloc_count();
  batch(200);
  const std::uint64_t allocs = util::alloc_count() - before;
  EXPECT_EQ(sink.n - delivered_warm, 20'000u);
  EXPECT_EQ(allocs, 0u) << "steady-state cell path allocated";
}

}  // namespace
}  // namespace xunet
