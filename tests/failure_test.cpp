// failure_test.cpp — network-level failures: a cut trunk between the
// switches (fibre cut) kills data and peer signaling; the originating
// sighost's request timeout keeps clients from hanging forever; restoring
// the trunk restores service.
#include <gtest/gtest.h>

#include "core/apps.hpp"
#include "core/testbed.hpp"
#include "fault/fault.hpp"

namespace xunet {
namespace {

using core::CallClient;
using core::CallServer;
using core::Testbed;

struct CutRig {
  std::unique_ptr<Testbed> tb;
  atm::AtmSwitch* s1 = nullptr;
  atm::AtmSwitch* s2 = nullptr;
  std::unique_ptr<CallServer> server;

  CutRig(core::TestbedConfig cfg = {}) {
    tb = std::make_unique<Testbed>(cfg);
    s1 = &tb->add_switch("s1");
    s2 = &tb->add_switch("s2");
    tb->connect_switches(*s1, *s2);
    tb->add_router("mh.rt", ip::make_ip(10, 0, 0, 1), *s1);
    tb->add_router("berkeley.rt", ip::make_ip(10, 0, 1, 1), *s2);
    EXPECT_TRUE(tb->bring_up().ok());
    auto& r1 = tb->router(1);
    server = std::make_unique<CallServer>(
        *r1.kernel, r1.kernel->ip_node().address(), "svc", 6200);
    server->start([](util::Result<void>) {});
    tb->sim().run_for(sim::milliseconds(300));
  }
};

TEST(TrunkCut, DataStopsWhileCutAndResumesAfterRepair) {
  CutRig rig;
  CallClient client(*rig.tb->router(0).kernel,
                    rig.tb->router(0).kernel->ip_node().address());
  std::optional<CallClient::Call> call;
  client.open("berkeley.rt", "svc", "",
              [&](util::Result<CallClient::Call> r) { call = *r; });
  rig.tb->sim().run_for(sim::seconds(2));
  ASSERT_TRUE(call.has_value());

  ASSERT_TRUE(client.send(*call, util::Buffer(100, 1)).ok());
  rig.tb->sim().run_for(sim::seconds(1));
  EXPECT_EQ(rig.server->frames_received(), 1u);

  // Fibre cut.
  EXPECT_EQ(rig.tb->network().set_trunk_down(*rig.s1, *rig.s2, true), 2u);
  ASSERT_TRUE(client.send(*call, util::Buffer(100, 2)).ok());
  rig.tb->sim().run_for(sim::seconds(1));
  EXPECT_EQ(rig.server->frames_received(), 1u);  // nothing got through

  // Repair: the simplex datagram service resumes.  The first frame after
  // the gap is consumed by the Xunet AAL5 variant's out-of-order detection
  // (its UU sequence number skips the lost frame), then flow is clean.
  EXPECT_EQ(rig.tb->network().set_trunk_down(*rig.s1, *rig.s2, false), 2u);
  ASSERT_TRUE(client.send(*call, util::Buffer(100, 3)).ok());
  ASSERT_TRUE(client.send(*call, util::Buffer(100, 4)).ok());
  rig.tb->sim().run_for(sim::seconds(1));
  EXPECT_EQ(rig.server->frames_received(), 2u);
  auto* hb = rig.tb->router(1).kernel->hobbit();
  ASSERT_NE(hb, nullptr);
  EXPECT_GE(hb->aal5_errors(), 1u);  // frame 2's loss detected as a seq gap
}

TEST(TrunkCut, RequestDuringPartitionTimesOutCleanly) {
  core::TestbedConfig cfg;
  cfg.sighost.request_timeout = sim::seconds(10);
  CutRig rig(cfg);

  // Cut the trunk first: CONNECT_REQ reaches sighost A, but PEER_SETUP can
  // never reach B.
  rig.tb->network().set_trunk_down(*rig.s1, *rig.s2, true);
  CallClient client(*rig.tb->router(0).kernel,
                    rig.tb->router(0).kernel->ip_node().address());
  std::optional<util::Errc> err;
  sim::SimTime start = rig.tb->sim().now();
  std::optional<sim::SimTime> failed_at;
  client.open("berkeley.rt", "svc", "",
              [&](util::Result<CallClient::Call> r) {
                err = r.error();
                failed_at = rig.tb->sim().now();
              });
  rig.tb->sim().run_for(sim::seconds(30));
  ASSERT_TRUE(err.has_value());
  EXPECT_EQ(*err, util::Errc::timed_out);
  EXPECT_NEAR((*failed_at - start).sec(), 10.0, 1.5);
  EXPECT_EQ(rig.tb->router(0).sighost->stats().request_timeouts, 1u);
  EXPECT_TRUE(rig.tb->audit().clean()) << rig.tb->audit().describe();
}

TEST(TrunkCut, ServiceRecoversAfterPartitionHeals) {
  core::TestbedConfig cfg;
  cfg.sighost.request_timeout = sim::seconds(5);
  CutRig rig(cfg);
  rig.tb->network().set_trunk_down(*rig.s1, *rig.s2, true);

  CallClient client(*rig.tb->router(0).kernel,
                    rig.tb->router(0).kernel->ip_node().address());
  std::optional<util::Errc> err;
  client.open("berkeley.rt", "svc", "",
              [&](util::Result<CallClient::Call> r) { err = r.error(); });
  rig.tb->sim().run_for(sim::seconds(10));
  ASSERT_TRUE(err.has_value());

  // Heal and retry: full service.
  rig.tb->network().set_trunk_down(*rig.s1, *rig.s2, false);
  std::optional<CallClient::Call> call;
  client.open("berkeley.rt", "svc", "",
              [&](util::Result<CallClient::Call> r) {
                ASSERT_TRUE(r.ok()) << to_string(r.error());
                call = *r;
              });
  rig.tb->sim().run_for(sim::seconds(3));
  ASSERT_TRUE(call.has_value());
  ASSERT_TRUE(client.send(*call, util::Buffer(64, 9)).ok());
  rig.tb->sim().run_for(sim::seconds(1));
  EXPECT_EQ(rig.server->frames_received(), 1u);
}

TEST(TrunkCut, PeerCancelAfterHealPreventsGhostCalls) {
  // The timed-out request's PEER_CANCEL is sent into the void during the
  // partition; after healing, the callee must not hold a ghost incoming
  // request forever (its per-call conn to the server eventually resolves
  // or the request was never delivered at all).
  core::TestbedConfig cfg;
  cfg.sighost.request_timeout = sim::seconds(5);
  CutRig rig(cfg);
  rig.tb->network().set_trunk_down(*rig.s1, *rig.s2, true);
  CallClient client(*rig.tb->router(0).kernel,
                    rig.tb->router(0).kernel->ip_node().address());
  client.open("berkeley.rt", "svc", "",
              [](util::Result<CallClient::Call>) {});
  rig.tb->sim().run_for(sim::seconds(10));
  rig.tb->network().set_trunk_down(*rig.s1, *rig.s2, false);
  rig.tb->sim().run_for(sim::seconds(10));
  EXPECT_EQ(rig.tb->router(1).sighost->incoming_requests_size(), 0u);
  EXPECT_TRUE(rig.tb->audit().clean()) << rig.tb->audit().describe();
}

TEST(TrunkCut, TransientPvcLossRecoversViaRetransmission) {
  // The signaling PVC goes dark for 2 s — shorter than the request timeout.
  // A call opened during the outage must NOT fail: the reliable-delivery
  // layer retransmits PEER_SETUP with backoff until the trunk heals, and
  // the call establishes without the client ever noticing.
  core::TestbedConfig cfg;
  cfg.sighost.request_timeout = sim::seconds(15);
  CutRig rig(cfg);

  fault::FaultPlan plan(*rig.tb, 5);
  plan.cut_trunk(sim::milliseconds(100), sim::seconds(2), "s1", "s2");
  plan.arm();

  CallClient client(*rig.tb->router(0).kernel,
                    rig.tb->router(0).kernel->ip_node().address());
  std::optional<bool> ok;
  rig.tb->sim().schedule(sim::milliseconds(200), [&] {
    client.open("berkeley.rt", "svc", "",
                [&](util::Result<CallClient::Call> r) { ok = r.ok(); });
  });
  rig.tb->sim().run_for(sim::seconds(14));
  ASSERT_TRUE(ok.has_value()) << "call still unresolved";
  EXPECT_TRUE(*ok) << "call failed instead of riding out the outage";
  EXPECT_GT(rig.tb->router(0).sighost->stats().retransmits, 0u);
  EXPECT_EQ(plan.stats().events_fired, 2u);  // cut + heal
}

TEST(SighostCrash, EstablishedDataFlowsWithSignalingDead) {
  // §5.1: "signaling is invoked only during call setup, and does not impact
  // the speed of data transfer."  Strongest form: kill BOTH sighosts and
  // the established call keeps carrying data.
  CutRig rig;
  CallClient client(*rig.tb->router(0).kernel,
                    rig.tb->router(0).kernel->ip_node().address());
  std::optional<CallClient::Call> call;
  client.open("berkeley.rt", "svc", "",
              [&](util::Result<CallClient::Call> r) { call = *r; });
  rig.tb->sim().run_for(sim::seconds(2));
  ASSERT_TRUE(call.has_value());

  (void)rig.tb->router(0).kernel->kill_process(rig.tb->router(0).sighost->pid());
  (void)rig.tb->router(1).kernel->kill_process(rig.tb->router(1).sighost->pid());
  rig.tb->sim().run_for(sim::seconds(1));

  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(client.send(*call, util::Buffer(500, 0x77)).ok());
  }
  rig.tb->sim().run_for(sim::seconds(1));
  EXPECT_EQ(rig.server->frames_received(), 10u);
}

TEST(SighostCrash, NewCallsFailCleanlyWithoutASighost) {
  CutRig rig;
  (void)rig.tb->router(0).kernel->kill_process(rig.tb->router(0).sighost->pid());
  rig.tb->sim().run_for(sim::seconds(1));
  CallClient client(*rig.tb->router(0).kernel,
                    rig.tb->router(0).kernel->ip_node().address());
  std::optional<util::Errc> err;
  client.open("berkeley.rt", "svc", "",
              [&](util::Result<CallClient::Call> r) { err = r.error(); });
  rig.tb->sim().run_for(sim::seconds(5));
  ASSERT_TRUE(err.has_value());
  EXPECT_NE(*err, util::Errc::ok);  // refused or reset, never a hang
}

}  // namespace
}  // namespace xunet
