// scenario_test.cpp — randomized whole-system soak: a seeded stream of
// operations (open calls, send data, close calls, kill and respawn
// processes, cut and heal the trunk) drives the full stack; afterwards the
// network and signaling state must audit clean.  Each seed is a distinct
// deterministic scenario; failures reproduce exactly from the seed.
#include <gtest/gtest.h>

#include "core/apps.hpp"
#include "core/testbed.hpp"
#include "util/rng.hpp"

namespace xunet {
namespace {

using core::CallClient;
using core::CallServer;
using core::Testbed;

class RandomScenario : public ::testing::TestWithParam<int> {};

TEST_P(RandomScenario, EndsWithCleanState) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()) * 0x9E37 + 0x79B9);

  core::TestbedConfig cfg;
  cfg.kernel.fd_table_size = 200;
  cfg.kernel.tcp_msl = sim::seconds(2);
  cfg.sighost.per_call_log_cost = sim::milliseconds(5);
  cfg.sighost.wait_for_bind_timeout = sim::seconds(5);
  cfg.sighost.request_timeout = sim::seconds(8);
  auto tb = std::make_unique<Testbed>(cfg);
  auto& s1 = tb->add_switch("s1");
  auto& s2 = tb->add_switch("s2");
  tb->connect_switches(s1, s2);
  tb->add_router("a.rt", ip::make_ip(10, 1, 0, 1), s1);
  tb->add_router("b.rt", ip::make_ip(10, 2, 0, 1), s2);
  tb->add_router("c.rt", ip::make_ip(10, 3, 0, 1), s2);
  ASSERT_TRUE(tb->bring_up().ok());

  const char* names[3] = {"a.rt", "b.rt", "c.rt"};
  // One (respawnable) server and client per router.
  std::array<std::unique_ptr<CallServer>, 3> servers;
  std::array<std::unique_ptr<CallClient>, 3> clients;
  auto respawn_server = [&](int i) {
    servers[static_cast<std::size_t>(i)] = std::make_unique<CallServer>(
        *tb->router(static_cast<std::size_t>(i)).kernel,
        tb->router(static_cast<std::size_t>(i)).kernel->ip_node().address(),
        "svc" + std::to_string(i), static_cast<std::uint16_t>(6700 + i));
    servers[static_cast<std::size_t>(i)]->start([](util::Result<void>) {});
  };
  auto respawn_client = [&](int i) {
    clients[static_cast<std::size_t>(i)] = std::make_unique<CallClient>(
        *tb->router(static_cast<std::size_t>(i)).kernel,
        tb->router(static_cast<std::size_t>(i)).kernel->ip_node().address());
  };
  for (int i = 0; i < 3; ++i) {
    respawn_server(i);
    respawn_client(i);
  }
  tb->sim().run_for(sim::milliseconds(500));

  struct LiveCall {
    int owner;
    CallClient::Call call;
  };
  // Calls owned per client GENERATION: killing a client invalidates its
  // calls, so the list is cleared on kill.
  std::array<std::vector<CallClient::Call>, 3> live;
  bool trunk_down = false;

  const int ops = 120;
  for (int op = 0; op < ops; ++op) {
    int kind = static_cast<int>(rng.below(100));
    int who = static_cast<int>(rng.below(3));
    if (kind < 40) {
      // Open a call to some other router.
      int dst = (who + 1 + static_cast<int>(rng.below(2))) % 3;
      clients[static_cast<std::size_t>(who)]->open(
          names[dst], "svc" + std::to_string(dst),
          rng.chance(0.5) ? "class=predicted,bw=1000000" : "",
          [&live, who](util::Result<CallClient::Call> r) {
            if (r.ok()) live[static_cast<std::size_t>(who)].push_back(*r);
          });
    } else if (kind < 60) {
      // Send data on a random live call.
      auto& mine = live[static_cast<std::size_t>(who)];
      if (!mine.empty()) {
        auto& c = mine[rng.below(mine.size())];
        (void)clients[static_cast<std::size_t>(who)]->send(
            c, util::Buffer(1 + rng.below(2000), 0x5C));
      }
    } else if (kind < 75) {
      // Close a random live call.
      auto& mine = live[static_cast<std::size_t>(who)];
      if (!mine.empty()) {
        std::size_t pick = rng.below(mine.size());
        clients[static_cast<std::size_t>(who)]->close_call(mine[pick]);
        mine.erase(mine.begin() + static_cast<long>(pick));
      }
    } else if (kind < 85) {
      // Kill and respawn the client (all its calls die with it).
      clients[static_cast<std::size_t>(who)]->kill();
      live[static_cast<std::size_t>(who)].clear();
      respawn_client(who);
    } else if (kind < 93) {
      // Kill and respawn the server (its bound calls die; clients' sockets
      // get disconnected).
      servers[static_cast<std::size_t>(who)]->kill();
      respawn_server(who);
    } else {
      // Toggle the trunk.
      trunk_down = !trunk_down;
      tb->network().set_trunk_down(s1, s2, trunk_down);
    }
    tb->sim().run_for(sim::milliseconds(50 + rng.below(400)));
  }

  // Quiesce: heal the trunk, drop every remaining call, let all timers run.
  tb->network().set_trunk_down(s1, s2, false);
  for (int i = 0; i < 3; ++i) {
    clients[static_cast<std::size_t>(i)]->kill();
    servers[static_cast<std::size_t>(i)]->kill();
  }
  tb->sim().run_for(sim::seconds(40));

  auto rep = tb->audit();
  EXPECT_TRUE(rep.clean()) << "seed " << GetParam() << ": " << rep.describe();
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomScenario, ::testing::Range(0, 24));

}  // namespace
}  // namespace xunet
