// util_test.cpp — unit tests for the utility substrate.
#include <gtest/gtest.h>

#include <memory>

#include "util/buffer.hpp"
#include "util/checksum.hpp"
#include "util/crc32.hpp"
#include "util/loc_scan.hpp"
#include "util/logging.hpp"
#include "util/result.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace xunet::util {
namespace {

// ---------------------------------------------------------------- Result

TEST(Result, ValueAndError) {
  Result<int> ok(42);
  EXPECT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 42);
  EXPECT_EQ(ok.error(), Errc::ok);

  Result<int> bad(Errc::not_found);
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.error(), Errc::not_found);
  EXPECT_EQ(bad.value_or(-1), -1);
}

TEST(Result, VoidSpecialization) {
  Result<void> ok;
  EXPECT_TRUE(ok.ok());
  Result<void> bad(Errc::timed_out);
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.error(), Errc::timed_out);
}

TEST(Result, MoveOnlyValue) {
  Result<std::unique_ptr<int>> r(std::make_unique<int>(7));
  auto p = std::move(r).value();
  EXPECT_EQ(*p, 7);
}

TEST(Result, ErrcNamesAreDistinct) {
  EXPECT_EQ(to_string(Errc::ok), "ok");
  EXPECT_EQ(to_string(Errc::no_buffer_space), "no_buffer_space");
  EXPECT_EQ(to_string(Errc::too_many_files), "too_many_files");
  EXPECT_NE(to_string(Errc::rejected), to_string(Errc::cancelled));
}

// ------------------------------------------------------------ serialization

TEST(Serialization, ScalarRoundTrip) {
  Writer w;
  w.u8(0xAB);
  w.u16(0x1234);
  w.u32(0xDEADBEEF);
  w.u64(0x0102030405060708ull);
  Buffer buf = w.take();
  EXPECT_EQ(buf.size(), 1u + 2 + 4 + 8);

  Reader r(buf);
  EXPECT_EQ(*r.u8(), 0xAB);
  EXPECT_EQ(*r.u16(), 0x1234);
  EXPECT_EQ(*r.u32(), 0xDEADBEEFu);
  EXPECT_EQ(*r.u64(), 0x0102030405060708ull);
  EXPECT_TRUE(r.exhausted());
}

TEST(Serialization, BigEndianOnTheWire) {
  Writer w;
  w.u16(0x0102);
  Buffer buf = w.take();
  EXPECT_EQ(buf[0], 0x01);
  EXPECT_EQ(buf[1], 0x02);
}

TEST(Serialization, LengthPrefixedStrings) {
  Writer w;
  w.lp_string("hello");
  w.lp_string("");
  Buffer buf = w.take();
  Reader r(buf);
  EXPECT_EQ(*r.lp_string(), "hello");
  EXPECT_EQ(*r.lp_string(), "");
  EXPECT_TRUE(r.exhausted());
}

TEST(Serialization, TruncationIsAnError) {
  Writer w;
  w.u32(1);
  Buffer buf = w.take();
  buf.pop_back();
  Reader r(buf);
  auto v = r.u32();
  EXPECT_FALSE(v.ok());
  EXPECT_EQ(v.error(), Errc::protocol_error);
}

TEST(Serialization, LpStringTruncatedBodyIsAnError) {
  Writer w;
  w.u16(10);  // claims 10 bytes
  w.bytes(to_buffer(std::string_view("abc")));
  Buffer buf = w.take();
  Reader r(buf);
  EXPECT_FALSE(r.lp_string().ok());
}

class SerializationSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(SerializationSweep, ByteRunsRoundTrip) {
  std::size_t n = GetParam();
  Rng rng(n * 7 + 1);
  Buffer data(n);
  for (auto& b : data) b = static_cast<std::uint8_t>(rng.next());
  Writer w;
  w.lp_bytes(data);
  Buffer buf = w.take();
  Reader r(buf);
  auto out = r.lp_bytes();
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(to_buffer(*out), data);
}

INSTANTIATE_TEST_SUITE_P(Sizes, SerializationSweep,
                         ::testing::Values(0, 1, 2, 47, 48, 255, 4096, 65535));

// ------------------------------------------------------------------- CRC32

TEST(Crc32, KnownVectors) {
  // Standard check value: CRC-32("123456789") = 0xCBF43926.
  EXPECT_EQ(crc32(to_buffer(std::string_view("123456789"))), 0xCBF43926u);
  EXPECT_EQ(crc32({}), 0x00000000u);
}

TEST(Crc32, IncrementalMatchesOneShot) {
  std::string s = "the quick brown fox jumps over the lazy dog";
  Crc32 inc;
  Buffer whole = to_buffer(std::string_view(s));
  inc.update({whole.data(), 10});
  inc.update({whole.data() + 10, whole.size() - 10});
  EXPECT_EQ(inc.value(), crc32(whole));
}

TEST(Crc32, DetectsSingleBitFlip) {
  Buffer data(100, 0x55);
  std::uint32_t before = crc32(data);
  data[50] ^= 0x01;
  EXPECT_NE(crc32(data), before);
}

// ---------------------------------------------------------------- checksum

TEST(Checksum, VerifiesAfterEmbedding) {
  Buffer hdr = {0x45, 0x00, 0x00, 0x28, 0x1c, 0x46, 0x40, 0x00, 0x40,
                0x06, 0x00, 0x00, 0xac, 0x10, 0x0a, 0x63, 0xac, 0x10,
                0x0a, 0x0c};
  std::uint16_t csum = internet_checksum(hdr);
  hdr[10] = static_cast<std::uint8_t>(csum >> 8);
  hdr[11] = static_cast<std::uint8_t>(csum);
  EXPECT_TRUE(checksum_ok(hdr));
  hdr[3] ^= 0xFF;
  EXPECT_FALSE(checksum_ok(hdr));
}

TEST(Checksum, OddLengthDoesNotCrash) {
  Buffer odd = {0x01, 0x02, 0x03};
  (void)internet_checksum(odd);
  SUCCEED();
}

// ------------------------------------------------------------------- stats

TEST(Stats, SummaryBasics) {
  Summary s;
  for (double v : {1.0, 2.0, 3.0, 4.0, 5.0}) s.add(v);
  EXPECT_EQ(s.count(), 5u);
  EXPECT_DOUBLE_EQ(s.mean(), 3.0);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
  EXPECT_DOUBLE_EQ(s.median(), 3.0);
  EXPECT_NEAR(s.stddev(), 1.4142, 1e-3);
  EXPECT_DOUBLE_EQ(s.percentile(0), 1.0);
  EXPECT_DOUBLE_EQ(s.percentile(100), 5.0);
}

TEST(Stats, LinearFitRecoversExactLine) {
  std::vector<double> x{1, 2, 4, 8, 16};
  std::vector<double> y;
  for (double v : x) y.push_back(99.0 + 8.0 * v);  // the Table 1 shape
  auto f = fit_linear(x, y);
  EXPECT_NEAR(f.intercept, 99.0, 1e-9);
  EXPECT_NEAR(f.slope, 8.0, 1e-9);
  EXPECT_NEAR(f.max_residual, 0.0, 1e-9);
}

TEST(Stats, CountersAccumulate) {
  Counters c;
  c.inc("drops");
  c.inc("drops", 4);
  EXPECT_EQ(c.get("drops"), 5u);
  EXPECT_EQ(c.get("absent"), 0u);
}

// --------------------------------------------------------------------- rng

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next() == b.next()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, BelowStaysInRange) {
  Rng r(77);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(r.below(17), 17u);
  }
}

TEST(Rng, RangeInclusive) {
  Rng r(5);
  bool hit_lo = false, hit_hi = false;
  for (int i = 0; i < 2000; ++i) {
    auto v = r.range(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    hit_lo |= v == -3;
    hit_hi |= v == 3;
  }
  EXPECT_TRUE(hit_lo);
  EXPECT_TRUE(hit_hi);
}

TEST(Rng, UniformInUnitInterval) {
  Rng r(9);
  for (int i = 0; i < 1000; ++i) {
    double u = r.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, ExponentialMeanIsRoughlyRight) {
  Rng r(31);
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += r.exponential(5.0);
  EXPECT_NEAR(sum / n, 5.0, 0.25);
}

// ----------------------------------------------------------------- logging

TEST(Logging, ThresholdFilters) {
  Logger log;
  CapturingSink cap;
  log.add_sink(cap.sink());
  log.set_threshold(LogLevel::warn);
  log.info("x", "dropped");
  log.warn("x", "kept");
  ASSERT_EQ(cap.records().size(), 1u);
  EXPECT_EQ(cap.records()[0].message, "kept");
  EXPECT_EQ(log.emitted(), 1u);
}

TEST(Logging, EmittedCountsWithoutSinks) {
  Logger log;
  log.set_threshold(LogLevel::info);
  log.info("c", "one");
  log.info("c", "two");
  EXPECT_EQ(log.emitted(), 2u);
}

// ------------------------------------------------------------------- table

TEST(Table, RendersAlignedColumns) {
  TextTable t("Demo");
  t.header({"Component", "Count"});
  t.row({"PF_XUNET", "99"});
  t.row({"IP", "57"});
  std::string out = t.render();
  EXPECT_NE(out.find("== Demo =="), std::string::npos);
  EXPECT_NE(out.find("PF_XUNET"), std::string::npos);
  EXPECT_NE(out.find("57"), std::string::npos);
}

TEST(Table, FmtPrecision) {
  EXPECT_EQ(fmt(3.14159, 2), "3.14");
  EXPECT_EQ(fmt(2.0, 0), "2");
}

// ---------------------------------------------------------------- loc scan

TEST(LocScan, CountsOwnSources) {
  auto c = scan_component("util", std::string(XUNET_SOURCE_DIR) + "/src/util");
  EXPECT_GT(c.files, 5u);
  EXPECT_GT(c.lines, 200u);
  EXPECT_GT(c.code_lines, 100u);
  EXPECT_LT(c.code_lines, c.lines);
}

TEST(LocScan, MissingDirectoryYieldsZeroes) {
  auto c = scan_component("ghost", "/no/such/dir");
  EXPECT_EQ(c.files, 0u);
  EXPECT_EQ(c.lines, 0u);
}

}  // namespace
}  // namespace xunet::util
