// robustness_test.cpp — §10's robustness claims: kill client or server at
// every stage of call setup and verify "the network and signaling state
// were always correctly restored"; plus the 100-call workload.
#include <gtest/gtest.h>

#include "core/apps.hpp"
#include "core/testbed.hpp"

namespace xunet {
namespace {

using core::CallClient;
using core::CallServer;
using core::Testbed;
using core::TestbedConfig;

/// Stages of the call-setup process at which a process can be killed.
enum class KillStage : int {
  after_connect_req,   ///< client dies right after issuing CONNECT_REQ
  during_negotiation,  ///< client dies while the server is deciding
  after_vci_granted,   ///< client dies holding a VCI it never connected
  after_data_socket,   ///< client dies with a live data socket
  server_before_call,  ///< server dies before the call arrives
  server_during_call,  ///< server dies holding the incoming request
  server_after_bind,   ///< server dies with a bound data socket
};

struct Harness {
  std::unique_ptr<Testbed> tb;
  std::unique_ptr<CallServer> server;
  std::unique_ptr<CallClient> client;

  Harness() {
    tb = TestbedConfig{}.build_deferred();
    EXPECT_TRUE(tb->bring_up().ok());
    auto& r1 = tb->router(1);
    server = std::make_unique<CallServer>(
        *r1.kernel, r1.kernel->ip_node().address(), "victim", 4200);
    bool reg = false;
    server->start([&](util::Result<void> r) { reg = r.ok(); });
    tb->sim().run_for(sim::milliseconds(300));
    EXPECT_TRUE(reg);
    client = std::make_unique<CallClient>(
        *tb->router(0).kernel, tb->router(0).kernel->ip_node().address());
  }

  /// Settle long enough for every timer (wait-for-bind 10 s) to expire.
  void settle() { tb->sim().run_for(sim::seconds(30)); }
};

class KillSweep : public ::testing::TestWithParam<KillStage> {};

TEST_P(KillSweep, StateIsAlwaysRestored) {
  Harness h;
  const KillStage stage = GetParam();

  if (stage == KillStage::server_before_call) {
    h.server->kill();
    h.tb->sim().run_for(sim::milliseconds(100));
  }

  std::optional<CallClient::Call> call;
  bool failed = false;
  h.client->open("berkeley.rt", "victim", "class=predicted,bw=1000000",
                 [&](util::Result<CallClient::Call> r) {
                   if (r.ok()) {
                     call = *r;
                   } else {
                     failed = true;
                   }
                 });

  switch (stage) {
    case KillStage::after_connect_req:
      // CONNECT_REQ is issued from inside open(); kill immediately.
      h.client->kill();
      break;
    case KillStage::during_negotiation:
      // The per-call log cost (135 ms/side) means negotiation is mid-flight
      // at ~200 ms.
      h.tb->sim().run_for(sim::milliseconds(200));
      h.client->kill();
      break;
    case KillStage::after_vci_granted: {
      // Stop the open() path from connecting the data socket by killing
      // right when the VCI arrives: run until established, then kill.
      h.tb->sim().run_for(sim::seconds(2));
      h.client->kill();
      break;
    }
    case KillStage::after_data_socket:
      h.tb->sim().run_for(sim::seconds(2));
      EXPECT_TRUE(call.has_value());
      h.client->kill();
      break;
    case KillStage::server_before_call:
      break;  // already killed
    case KillStage::server_during_call:
      h.tb->sim().run_for(sim::milliseconds(200));
      h.server->kill();
      break;
    case KillStage::server_after_bind:
      h.tb->sim().run_for(sim::seconds(2));
      h.server->kill();
      break;
  }

  h.settle();
  auto rep = h.tb->audit();
  EXPECT_TRUE(rep.clean()) << "stage " << static_cast<int>(stage) << ": "
                           << rep.describe();
  (void)failed;
}

INSTANTIATE_TEST_SUITE_P(
    Stages, KillSweep,
    ::testing::Values(KillStage::after_connect_req, KillStage::during_negotiation,
                      KillStage::after_vci_granted, KillStage::after_data_socket,
                      KillStage::server_before_call, KillStage::server_during_call,
                      KillStage::server_after_bind));

TEST(Robustness, HundredCallWorkloadHeldOneSecond) {
  // "We designed an intensive workload in which a hundred calls were
  // initiated as fast as possible.  Each call was held for one second,
  // then torn down."  Use the fixed configuration (fd table 100, 80
  // pseudo-device buffers) so all calls survive.
  core::TestbedConfig cfg;
  cfg.kernel.fd_table_size = 100;
  cfg.kernel.anand_buffers = 80;
  cfg.kernel.tcp_msl = sim::seconds(5);  // compressed timescale (see DESIGN.md)
  auto tb = cfg.build_deferred();
  ASSERT_TRUE(tb->bring_up().ok());
  auto& r1 = tb->router(1);

  CallServer server(*r1.kernel, r1.kernel->ip_node().address(), "load", 4300);
  server.start([](util::Result<void>) {});
  tb->sim().run_for(sim::milliseconds(300));

  CallClient client(*tb->router(0).kernel,
                    tb->router(0).kernel->ip_node().address());
  int completed = 0;
  for (int i = 0; i < 100; ++i) {
    client.open("berkeley.rt", "load", "",
                [&, i](util::Result<CallClient::Call> r) {
                  ASSERT_TRUE(r.ok()) << "call " << i << ": "
                                      << to_string(r.error());
                  CallClient::Call call = *r;
                  // Hold one second, then tear down.
                  tb->sim().schedule(sim::seconds(1), [&, call] {
                    client.close_call(call);
                    ++completed;
                  });
                });
  }
  tb->sim().run_for(sim::seconds(120));
  EXPECT_EQ(completed, 100);
  EXPECT_EQ(server.calls_accepted(), 100u);
  EXPECT_TRUE(tb->audit().clean()) << tb->audit().describe();
  EXPECT_EQ(tb->router(0).sighost->stats().calls_established, 100u);
  EXPECT_EQ(tb->router(0).sighost->stats().calls_torn_down, 100u);
}

TEST(Robustness, ThousandsOfSequentialCallsDoNotDegrade) {
  // "Routers with the modified kernel have stayed up even when thousands of
  // calls have been setup and torn down."  Scaled to 1000 sequential calls.
  core::TestbedConfig cfg;
  cfg.kernel.fd_table_size = 100;
  cfg.kernel.tcp_msl = sim::seconds(1);  // compressed timescale (see DESIGN.md)
  cfg.sighost.per_call_log_cost = sim::milliseconds(1);  // speed the sweep
  auto tb = cfg.build_deferred();
  ASSERT_TRUE(tb->bring_up().ok());
  auto& r1 = tb->router(1);
  CallServer server(*r1.kernel, r1.kernel->ip_node().address(), "churn", 4301);
  server.start([](util::Result<void>) {});
  tb->sim().run_for(sim::milliseconds(300));

  CallClient client(*tb->router(0).kernel,
                    tb->router(0).kernel->ip_node().address());
  int done = 0;
  std::function<void()> next = [&] {
    if (done >= 1000) return;
    client.open("berkeley.rt", "churn", "",
                [&](util::Result<CallClient::Call> r) {
                  ASSERT_TRUE(r.ok());
                  client.close_call(*r);
                  ++done;
                  next();
                });
  };
  next();
  tb->sim().run_for(sim::seconds(600));
  EXPECT_EQ(done, 1000);
  EXPECT_TRUE(tb->audit().clean()) << tb->audit().describe();
}

TEST(Robustness, ClientCrashWithManyOpenCallsReclaimsAll) {
  core::TestbedConfig cfg;
  cfg.kernel.fd_table_size = 100;
  auto tb = cfg.build_deferred();
  ASSERT_TRUE(tb->bring_up().ok());
  auto& r1 = tb->router(1);
  CallServer server(*r1.kernel, r1.kernel->ip_node().address(), "bulk", 4302);
  server.start([](util::Result<void>) {});
  tb->sim().run_for(sim::milliseconds(300));

  CallClient client(*tb->router(0).kernel,
                    tb->router(0).kernel->ip_node().address());
  int open_calls = 0;
  for (int i = 0; i < 20; ++i) {
    client.open("berkeley.rt", "bulk", "",
                [&](util::Result<CallClient::Call> r) {
                  if (r.ok()) ++open_calls;
                });
  }
  tb->sim().run_for(sim::seconds(10));
  ASSERT_EQ(open_calls, 20);
  ASSERT_EQ(tb->network().active_vc_count(), 2u + 20u);

  // Crash: "if an application reserved any resources and then crashed, the
  // signaling protocol should detect this and release any resources bound
  // to that application throughout the network."
  client.kill();
  tb->sim().run_for(sim::seconds(30));
  EXPECT_TRUE(tb->audit().clean()) << tb->audit().describe();
  EXPECT_EQ(tb->network().active_vc_count(), 2u);  // only the PVCs remain
}

TEST(Robustness, ServerCrashDisconnectsClientSockets) {
  auto tb = TestbedConfig{}.build_deferred();
  ASSERT_TRUE(tb->bring_up().ok());
  auto& r1 = tb->router(1);
  auto server = std::make_unique<CallServer>(
      *r1.kernel, r1.kernel->ip_node().address(), "fragile", 4303);
  server->start([](util::Result<void>) {});
  tb->sim().run_for(sim::milliseconds(300));

  CallClient client(*tb->router(0).kernel,
                    tb->router(0).kernel->ip_node().address());
  std::optional<CallClient::Call> call;
  client.open("berkeley.rt", "fragile", "",
              [&](util::Result<CallClient::Call> r) { call = *r; });
  tb->sim().run_for(sim::seconds(2));
  ASSERT_TRUE(call.has_value());

  // The client's socket must be marked unusable when the server dies
  // ("a connection was closed at the remote end ... inform the application
  // at the local end").
  bool disconnected = false;
  auto& k0 = *tb->router(0).kernel;
  ASSERT_TRUE(k0.xunet_on_disconnect(client.pid(), call->fd,
                                     [&] { disconnected = true; }).ok());
  server->kill();
  tb->sim().run_for(sim::seconds(5));
  EXPECT_TRUE(disconnected);
  EXPECT_FALSE(k0.xunet_usable(client.pid(), call->fd));
  EXPECT_TRUE(tb->audit().clean()) << tb->audit().describe();
}

}  // namespace
}  // namespace xunet
