// ip_test.cpp — addresses, packet wire format, forwarding, fragmentation,
// and the UDP baseline layer.
#include <gtest/gtest.h>

#include "ip/udp.hpp"
#include "util/rng.hpp"

namespace xunet::ip {
namespace {

// ----------------------------------------------------------------- address

TEST(IpAddress, FormatAndParse) {
  IpAddress a = make_ip(10, 0, 1, 2);
  EXPECT_EQ(to_string(a), "10.0.1.2");
  auto back = parse_ip("10.0.1.2");
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, a);
}

TEST(IpAddress, ParseRejectsMalformed) {
  EXPECT_FALSE(parse_ip("10.0.1").ok());
  EXPECT_FALSE(parse_ip("10.0.1.256").ok());
  EXPECT_FALSE(parse_ip("10.0.1.2.3").ok());
  EXPECT_FALSE(parse_ip("a.b.c.d").ok());
  EXPECT_FALSE(parse_ip("").ok());
}

// ------------------------------------------------------------------ packet

TEST(IpPacket, SerializeParseRoundTrip) {
  IpPacket p;
  p.src = make_ip(1, 2, 3, 4);
  p.dst = make_ip(5, 6, 7, 8);
  p.protocol = IpProto::atm;
  p.id = 777;
  p.payload = util::to_buffer(std::string_view("payload bytes"));
  auto wire = serialize(p);
  EXPECT_EQ(wire.size(), kIpHeaderBytes + p.payload.size());
  auto back = parse_ip_packet(wire);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->src, p.src);
  EXPECT_EQ(back->dst, p.dst);
  EXPECT_EQ(back->protocol, IpProto::atm);
  EXPECT_EQ(back->id, 777);
  EXPECT_EQ(back->payload, p.payload);
}

TEST(IpPacket, HeaderCorruptionDetected) {
  IpPacket p;
  p.src = make_ip(1, 2, 3, 4);
  p.dst = make_ip(5, 6, 7, 8);
  auto wire = serialize(p);
  wire[12] ^= 0x01;  // flip a src-address bit
  EXPECT_FALSE(parse_ip_packet(wire).ok());
}

TEST(IpPacket, TruncationDetected) {
  IpPacket p;
  p.payload = util::Buffer(100, 1);
  auto wire = serialize(p);
  wire.resize(wire.size() - 10);
  EXPECT_FALSE(parse_ip_packet(wire).ok());
}

// ------------------------------------------------------ forwarding fixture

struct TwoHopFixture : ::testing::Test {
  // host --- router --- server (two links, router forwards)
  sim::Simulator sim;
  IpNode host{sim, "host", make_ip(10, 0, 0, 2)};
  IpNode router{sim, "router", make_ip(10, 0, 0, 1)};
  IpNode server{sim, "server", make_ip(10, 0, 1, 2)};
  IpLink l1{sim, kFddiBps, sim::microseconds(50), kFddiMtu};
  IpLink l2{sim, kFddiBps, sim::microseconds(50), kFddiMtu};

  void SetUp() override {
    l1.attach(host, router);
    l2.attach(router, server);
    host.set_default_route(l1);
    server.set_default_route(l2);
    router.add_route(host.address(), l1);
    router.add_route(server.address(), l2);
  }
};

TEST_F(TwoHopFixture, DeliversAcrossARouter) {
  std::optional<IpPacket> got;
  server.register_protocol(IpProto::udp,
                           [&](const IpPacket& p) { got = p; });
  util::Buffer data = util::to_buffer(std::string_view("hello"));
  ASSERT_TRUE(host.send(server.address(), IpProto::udp, data).ok());
  sim.run();
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->payload, data);
  EXPECT_EQ(got->src, host.address());
  EXPECT_EQ(router.forwarded(), 1u);
}

TEST_F(TwoHopFixture, NoHandlerCountsDrop) {
  ASSERT_TRUE(host.send(server.address(), IpProto::udp, {}).ok());
  sim.run();
  EXPECT_EQ(server.dropped_no_handler(), 1u);
}

TEST_F(TwoHopFixture, NoRouteFailsAtSender) {
  auto r = host.send(make_ip(99, 9, 9, 9), IpProto::udp, {});
  // Host has a default route, so it sends — but the router drops.
  ASSERT_TRUE(r.ok());
  sim.run();
  EXPECT_EQ(router.dropped_no_route(), 1u);
}

TEST_F(TwoHopFixture, LoopbackDeliversLocally) {
  std::optional<IpPacket> got;
  host.register_protocol(IpProto::udp, [&](const IpPacket& p) { got = p; });
  ASSERT_TRUE(host.send(host.address(), IpProto::udp,
                        util::to_buffer(std::string_view("self"))).ok());
  sim.run();
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(util::to_text(got->payload), "self");
}

TEST_F(TwoHopFixture, TtlExpiryDropsForwardedPackets) {
  // Build a routing loop: router sends unknowns back to host... instead,
  // directly check TTL decrement by sending with ttl=1 via serialization.
  IpPacket p;
  p.src = host.address();
  p.dst = server.address();
  p.protocol = IpProto::udp;
  p.ttl = 1;
  p.id = 1;
  // Inject the frame at the router as if it arrived from the host link.
  router.frame_arrival(serialize(p), l1);
  sim.run();
  EXPECT_EQ(router.dropped_ttl(), 1u);
}

// ------------------------------------------------------------ fragmentation

struct FragCase {
  std::size_t payload;
  std::size_t mtu;
};

class FragmentationSweep : public ::testing::TestWithParam<FragCase> {};

TEST_P(FragmentationSweep, FragmentsReassembleExactly) {
  const auto [payload_size, mtu] = GetParam();
  sim::Simulator sim;
  IpNode a(sim, "a", make_ip(1, 1, 1, 1));
  IpNode b(sim, "b", make_ip(2, 2, 2, 2));
  IpLink link(sim, kFddiBps, sim::microseconds(10), mtu);
  link.attach(a, b);
  a.set_default_route(link);
  b.set_default_route(link);

  util::Rng rng(payload_size);
  util::Buffer data(payload_size);
  for (auto& x : data) x = static_cast<std::uint8_t>(rng.next());

  std::optional<IpPacket> got;
  b.register_protocol(IpProto::atm, [&](const IpPacket& p) { got = p; });
  ASSERT_TRUE(a.send(b.address(), IpProto::atm, data).ok());
  sim.run();
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->payload, data);
  if (payload_size + kIpHeaderBytes > mtu) {
    EXPECT_GT(a.fragments_sent(), 1u);
    EXPECT_EQ(b.reassembled(), 1u);
  }
  EXPECT_EQ(b.pending_reassemblies(), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Cases, FragmentationSweep,
    ::testing::Values(FragCase{100, 1500}, FragCase{1481, 1500},
                      FragCase{1500, 1500}, FragCase{3000, 1500},
                      FragCase{9000, 1500}, FragCase{10000, 4352},
                      FragCase{65000, 4352}, FragCase{65000, 1500}));

TEST(Fragmentation, LostFragmentMeansNoDelivery) {
  sim::Simulator sim;
  util::Rng rng(4);
  IpNode a(sim, "a", make_ip(1, 1, 1, 1));
  IpNode b(sim, "b", make_ip(2, 2, 2, 2));
  IpLink link(sim, kEthernetBps, sim::microseconds(10), kEthernetMtu);
  link.attach(a, b);
  a.set_default_route(link);
  b.set_default_route(link);

  int delivered = 0;
  b.register_protocol(IpProto::atm, [&](const IpPacket&) { ++delivered; });

  link.set_loss(0.3, &rng);
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(a.send(b.address(), IpProto::atm, util::Buffer(5000, 7)).ok());
  }
  sim.run();
  // With 30% frame loss and 4 fragments per datagram, most datagrams die,
  // and crucially none is delivered corrupted or duplicated.
  EXPECT_LT(delivered, 20);
  EXPECT_EQ(b.reassembled(), static_cast<std::uint64_t>(delivered));
}

TEST(Fragmentation, InterleavedDatagramsReassembleIndependently) {
  sim::Simulator sim;
  IpNode a(sim, "a", make_ip(1, 1, 1, 1));
  IpNode b(sim, "b", make_ip(2, 2, 2, 2));
  IpLink link(sim, kFddiBps, sim::microseconds(10), kEthernetMtu);
  link.attach(a, b);
  a.set_default_route(link);
  b.set_default_route(link);

  std::vector<util::Buffer> got;
  b.register_protocol(IpProto::atm,
                      [&](const IpPacket& p) { got.push_back(p.payload); });
  util::Buffer d1(4000, 0x11), d2(4000, 0x22);
  ASSERT_TRUE(a.send(b.address(), IpProto::atm, d1).ok());
  ASSERT_TRUE(a.send(b.address(), IpProto::atm, d2).ok());
  sim.run();
  ASSERT_EQ(got.size(), 2u);
  EXPECT_EQ(got[0], d1);
  EXPECT_EQ(got[1], d2);
}

// --------------------------------------------------------------------- UDP

struct UdpFixture : ::testing::Test {
  sim::Simulator sim;
  IpNode a{sim, "a", make_ip(1, 1, 1, 1)};
  IpNode b{sim, "b", make_ip(2, 2, 2, 2)};
  IpLink link{sim, kFddiBps, sim::microseconds(10), kFddiMtu};
  std::unique_ptr<UdpLayer> ua, ub;

  void SetUp() override {
    link.attach(a, b);
    a.set_default_route(link);
    b.set_default_route(link);
    ua = std::make_unique<UdpLayer>(a);
    ub = std::make_unique<UdpLayer>(b);
  }
};

TEST_F(UdpFixture, DatagramDeliveryWithPorts) {
  std::optional<std::string> got;
  std::uint16_t from_port = 0;
  ASSERT_TRUE(ub->bind(53, [&](IpAddress src, std::uint16_t sp,
                               util::BytesView data) {
                EXPECT_EQ(src, a.address());
                from_port = sp;
                got = util::to_text(data);
              }).ok());
  ASSERT_TRUE(ua->send(b.address(), 53, 1234,
                       util::to_buffer(std::string_view("query"))).ok());
  sim.run();
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, "query");
  EXPECT_EQ(from_port, 1234);
  EXPECT_EQ(ub->datagrams_received(), 1u);
}

TEST_F(UdpFixture, UnboundPortDrops) {
  ASSERT_TRUE(ua->send(b.address(), 99, 1, {}).ok());
  sim.run();
  EXPECT_EQ(ub->datagrams_dropped(), 1u);
}

TEST_F(UdpFixture, BindConflictAndEphemeral) {
  auto h = [](IpAddress, std::uint16_t, util::BytesView) {};
  ASSERT_TRUE(ub->bind(53, h).ok());
  EXPECT_EQ(ub->bind(53, h).error(), util::Errc::address_in_use);
  auto p1 = ub->bind_ephemeral(h);
  auto p2 = ub->bind_ephemeral(h);
  ASSERT_TRUE(p1.ok() && p2.ok());
  EXPECT_NE(*p1, *p2);
  EXPECT_GE(*p1, 1024);
  ub->unbind(*p1);
  SUCCEED();
}

}  // namespace
}  // namespace xunet::ip
