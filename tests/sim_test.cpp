// sim_test.cpp — unit tests for the discrete-event engine.
#include <gtest/gtest.h>

#include "sim/simulator.hpp"
#include "sim/timer.hpp"

namespace xunet::sim {
namespace {

TEST(SimTime, Arithmetic) {
  SimTime t(1'000'000);
  SimDuration d = milliseconds(2);
  EXPECT_EQ((t + d).ns(), 3'000'000);
  EXPECT_EQ(((t + d) - t).ns(), d.ns());
  EXPECT_LT(t, t + d);
  EXPECT_DOUBLE_EQ(d.ms(), 2.0);
  EXPECT_DOUBLE_EQ(seconds(3).sec(), 3.0);
  EXPECT_EQ(seconds_f(0.5).ns(), 500'000'000);
}

TEST(Simulator, EventsRunInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule(milliseconds(30), [&] { order.push_back(3); });
  sim.schedule(milliseconds(10), [&] { order.push_back(1); });
  sim.schedule(milliseconds(20), [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now().ms(), 30.0);
}

TEST(Simulator, SameTimeEventsRunFifo) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sim.schedule(milliseconds(5), [&order, i] { order.push_back(i); });
  }
  sim.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(Simulator, ZeroDelayRunsAfterCurrentEvent) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule(SimDuration{}, [&] {
    order.push_back(1);
    sim.schedule(SimDuration{}, [&] { order.push_back(3); });
    order.push_back(2);
  });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Simulator, CancelPreventsDispatch) {
  Simulator sim;
  bool ran = false;
  EventId id = sim.schedule(milliseconds(1), [&] { ran = true; });
  EXPECT_TRUE(sim.cancel(id));
  EXPECT_FALSE(sim.cancel(id));  // second cancel is a no-op
  sim.run();
  EXPECT_FALSE(ran);
}

TEST(Simulator, RunUntilStopsAtDeadline) {
  Simulator sim;
  int count = 0;
  sim.schedule(milliseconds(10), [&] { ++count; });
  sim.schedule(milliseconds(30), [&] { ++count; });
  sim.run_until(SimTime(20'000'000));
  EXPECT_EQ(count, 1);
  EXPECT_EQ(sim.now().ns(), 20'000'000);
  sim.run();
  EXPECT_EQ(count, 2);
}

TEST(Simulator, RunForAdvancesRelative) {
  Simulator sim;
  sim.run_for(milliseconds(5));
  EXPECT_EQ(sim.now().ms(), 5.0);
  sim.run_for(milliseconds(5));
  EXPECT_EQ(sim.now().ms(), 10.0);
}

TEST(Simulator, EventsCanScheduleMoreEvents) {
  Simulator sim;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 100) sim.schedule(microseconds(1), recurse);
  };
  sim.schedule(microseconds(1), recurse);
  sim.run();
  EXPECT_EQ(depth, 100);
  EXPECT_EQ(sim.now().us(), 100.0);
}

TEST(Timer, FiresOnce) {
  Simulator sim;
  Timer t(sim);
  int fired = 0;
  t.arm(milliseconds(5), [&] { ++fired; });
  EXPECT_TRUE(t.armed());
  sim.run();
  EXPECT_EQ(fired, 1);
  EXPECT_FALSE(t.armed());
}

TEST(Timer, CancelStopsExpiry) {
  Simulator sim;
  Timer t(sim);
  int fired = 0;
  t.arm(milliseconds(5), [&] { ++fired; });
  t.cancel();
  sim.run();
  EXPECT_EQ(fired, 0);
}

TEST(Timer, RearmReplacesPending) {
  Simulator sim;
  Timer t(sim);
  std::vector<int> hits;
  t.arm(milliseconds(5), [&] { hits.push_back(1); });
  t.arm(milliseconds(10), [&] { hits.push_back(2); });
  sim.run();
  EXPECT_EQ(hits, (std::vector<int>{2}));
  EXPECT_EQ(sim.now().ms(), 10.0);
}

TEST(Timer, DestructionCancels) {
  Simulator sim;
  int fired = 0;
  {
    Timer t(sim);
    t.arm(milliseconds(5), [&] { ++fired; });
  }
  sim.run();
  EXPECT_EQ(fired, 0);
}

TEST(Timer, CanRearmFromOwnCallback) {
  Simulator sim;
  Timer t(sim);
  int fired = 0;
  std::function<void()> tick = [&] {
    if (++fired < 5) t.arm(milliseconds(1), tick);
  };
  t.arm(milliseconds(1), tick);
  sim.run();
  EXPECT_EQ(fired, 5);
}

}  // namespace
}  // namespace xunet::sim
