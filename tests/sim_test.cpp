// sim_test.cpp — unit tests for the discrete-event engine.
#include <gtest/gtest.h>

#include "sim/simulator.hpp"
#include "sim/timer.hpp"

namespace xunet::sim {
namespace {

TEST(SimTime, Arithmetic) {
  SimTime t(1'000'000);
  SimDuration d = milliseconds(2);
  EXPECT_EQ((t + d).ns(), 3'000'000);
  EXPECT_EQ(((t + d) - t).ns(), d.ns());
  EXPECT_LT(t, t + d);
  EXPECT_DOUBLE_EQ(d.ms(), 2.0);
  EXPECT_DOUBLE_EQ(seconds(3).sec(), 3.0);
  EXPECT_EQ(seconds_f(0.5).ns(), 500'000'000);
}

TEST(Simulator, EventsRunInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule(milliseconds(30), [&] { order.push_back(3); });
  sim.schedule(milliseconds(10), [&] { order.push_back(1); });
  sim.schedule(milliseconds(20), [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now().ms(), 30.0);
}

TEST(Simulator, SameTimeEventsRunFifo) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sim.schedule(milliseconds(5), [&order, i] { order.push_back(i); });
  }
  sim.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(Simulator, ZeroDelayRunsAfterCurrentEvent) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule(SimDuration{}, [&] {
    order.push_back(1);
    sim.schedule(SimDuration{}, [&] { order.push_back(3); });
    order.push_back(2);
  });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Simulator, CancelPreventsDispatch) {
  Simulator sim;
  bool ran = false;
  EventId id = sim.schedule(milliseconds(1), [&] { ran = true; });
  EXPECT_TRUE(sim.cancel(id));
  EXPECT_FALSE(sim.cancel(id));  // second cancel is a no-op
  sim.run();
  EXPECT_FALSE(ran);
}

TEST(Simulator, RunUntilStopsAtDeadline) {
  Simulator sim;
  int count = 0;
  sim.schedule(milliseconds(10), [&] { ++count; });
  sim.schedule(milliseconds(30), [&] { ++count; });
  sim.run_until(SimTime(20'000'000));
  EXPECT_EQ(count, 1);
  EXPECT_EQ(sim.now().ns(), 20'000'000);
  sim.run();
  EXPECT_EQ(count, 2);
}

TEST(Simulator, RunForAdvancesRelative) {
  Simulator sim;
  sim.run_for(milliseconds(5));
  EXPECT_EQ(sim.now().ms(), 5.0);
  sim.run_for(milliseconds(5));
  EXPECT_EQ(sim.now().ms(), 10.0);
}

TEST(Simulator, EventsCanScheduleMoreEvents) {
  Simulator sim;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 100) sim.schedule(microseconds(1), recurse);
  };
  sim.schedule(microseconds(1), recurse);
  sim.run();
  EXPECT_EQ(depth, 100);
  EXPECT_EQ(sim.now().us(), 100.0);
}

TEST(Simulator, NegativeDelayClampsToNow) {
  // Regression: a negative delay (e.g. computed from a clock that ran
  // slightly backwards) must behave like zero delay, not wrap into the
  // far future or corrupt the timer wheel.
  Simulator sim;
  sim.schedule(milliseconds(1), [&] {
    sim.schedule(nanoseconds(-5), [&] {
      EXPECT_EQ(sim.now().ms(), 1.0);  // fired at the clamped instant
    });
  });
  std::vector<int> order;
  sim.schedule(nanoseconds(-100), [&] { order.push_back(1); });
  sim.schedule(nanoseconds(0), [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));  // clamp preserves FIFO at now
  EXPECT_EQ(sim.now().ms(), 1.0);
}

TEST(Simulator, FarFutureEventsBeyondWheelHorizonDispatchInOrder) {
  // Events past the timer wheel's span land in the overflow heap; they must
  // still interleave correctly with near events as the wheel advances.
  Simulator sim;
  std::vector<int> order;
  sim.schedule(seconds(30), [&] { order.push_back(3); });   // far overflow
  sim.schedule(microseconds(10), [&] { order.push_back(1); });
  sim.schedule(seconds(1), [&] { order.push_back(2); });
  sim.schedule(seconds(60), [&] { order.push_back(4); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3, 4}));
  EXPECT_EQ(sim.now().sec(), 60.0);
}

TEST(Simulator, PeakPendingTracksHighWaterMark) {
  Simulator sim;
  for (int i = 0; i < 50; ++i) {
    sim.schedule(microseconds(i), [] {});
  }
  EXPECT_EQ(sim.pending(), 50u);
  sim.run();
  EXPECT_EQ(sim.pending(), 0u);
  EXPECT_GE(sim.peak_pending(), 50u);
}

TEST(Simulator, BothEnginesAgreeOnDispatchOrder) {
  auto run_with = [](Simulator::Engine e) {
    Simulator sim(e);
    std::vector<int> order;
    sim.schedule(milliseconds(2), [&] { order.push_back(2); });
    sim.schedule(milliseconds(1), [&] {
      order.push_back(1);
      sim.schedule(nanoseconds(-1), [&] { order.push_back(10); });
      sim.schedule(milliseconds(5), [&] { order.push_back(4); });
    });
    sim.schedule(milliseconds(2), [&] { order.push_back(3); });
    sim.schedule(seconds(20), [&] { order.push_back(5); });
    sim.run();
    return order;
  };
  EXPECT_EQ(run_with(Simulator::Engine::pooled),
            run_with(Simulator::Engine::legacy_heap));
}

TEST(Timer, FiresOnce) {
  Simulator sim;
  Timer t(sim);
  int fired = 0;
  t.arm(milliseconds(5), [&] { ++fired; });
  EXPECT_TRUE(t.armed());
  sim.run();
  EXPECT_EQ(fired, 1);
  EXPECT_FALSE(t.armed());
}

TEST(Timer, CancelStopsExpiry) {
  Simulator sim;
  Timer t(sim);
  int fired = 0;
  t.arm(milliseconds(5), [&] { ++fired; });
  t.cancel();
  sim.run();
  EXPECT_EQ(fired, 0);
}

TEST(Timer, RearmReplacesPending) {
  Simulator sim;
  Timer t(sim);
  std::vector<int> hits;
  t.arm(milliseconds(5), [&] { hits.push_back(1); });
  t.arm(milliseconds(10), [&] { hits.push_back(2); });
  sim.run();
  EXPECT_EQ(hits, (std::vector<int>{2}));
  EXPECT_EQ(sim.now().ms(), 10.0);
}

TEST(Timer, DestructionCancels) {
  Simulator sim;
  int fired = 0;
  {
    Timer t(sim);
    t.arm(milliseconds(5), [&] { ++fired; });
  }
  sim.run();
  EXPECT_EQ(fired, 0);
}

TEST(Timer, CanRearmFromOwnCallback) {
  Simulator sim;
  Timer t(sim);
  int fired = 0;
  std::function<void()> tick = [&] {
    if (++fired < 5) t.arm(milliseconds(1), tick);
  };
  t.arm(milliseconds(1), tick);
  sim.run();
  EXPECT_EQ(fired, 5);
}

}  // namespace
}  // namespace xunet::sim
