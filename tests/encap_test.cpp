// encap_test.cpp — the AAL-over-IP encapsulation path (§5.4, §7.4):
// header semantics, out-of-order detection, VCI_BIND/VCI_SHUT forwarding
// state, and instruction accounting on the host paths.
#include <gtest/gtest.h>

#include "core/apps.hpp"
#include "core/testbed.hpp"

namespace xunet {
namespace {

using core::CallClient;
using core::CallServer;
using core::Testbed;
using core::TestbedConfig;
using kern::InstrComponent;
using kern::InstrDir;

/// Fixture with an established host→host call over the IP encapsulation
/// path in both access networks.
struct EncapFixture : ::testing::Test {
  std::unique_ptr<Testbed> tb;
  std::unique_ptr<CallServer> server;
  std::unique_ptr<CallClient> client;
  std::optional<CallClient::Call> call;

  void SetUp() override {
    tb = TestbedConfig{}.hosts(2).build_deferred();
    ASSERT_TRUE(tb->bring_up().ok());
    auto& h1 = tb->host(1);
    server = std::make_unique<CallServer>(
        *h1.kernel, h1.home->kernel->ip_node().address(), "sink", 4500);
    server->start([](util::Result<void>) {});
    tb->sim().run_for(sim::milliseconds(300));
    client = std::make_unique<CallClient>(
        *tb->host(0).kernel, tb->host(0).home->kernel->ip_node().address());
    client->open("berkeley.rt", "sink", "",
                 [&](util::Result<CallClient::Call> r) {
                   ASSERT_TRUE(r.ok()) << to_string(r.error());
                   call = *r;
                 });
    tb->sim().run_for(sim::seconds(2));
    ASSERT_TRUE(call.has_value());
  }
};

TEST_F(EncapFixture, FramesArriveIntactAcrossTheFullPath) {
  util::Rng rng(7);
  std::vector<util::Buffer> sent;
  for (int i = 0; i < 10; ++i) {
    util::Buffer b(100 + rng.below(3000));
    for (auto& x : b) x = static_cast<std::uint8_t>(rng.next());
    sent.push_back(b);
    ASSERT_TRUE(client->send(*call, b).ok());
  }
  std::size_t total = 0;
  for (const auto& b : sent) total += b.size();
  tb->sim().run_for(sim::seconds(2));
  EXPECT_EQ(server->frames_received(), 10u);
  EXPECT_EQ(server->bytes_received(), total);
  // Clean path: no sequence-number alarms anywhere.
  EXPECT_EQ(tb->host(1).kernel->proto_atm().out_of_order(), 0u);
  EXPECT_EQ(tb->router(0).kernel->proto_atm().out_of_order(), 0u);
}

TEST_F(EncapFixture, HostSendChargesTable1SendPath) {
  auto& hk = *tb->host(0).kernel;
  hk.instr().reset();
  // One frame shaped to exactly 4 mbufs.
  kern::MbufChain chain = kern::MbufChain::shaped(4, 100);
  ASSERT_TRUE(hk.xunet_send_chain(client->pid(), call->fd, chain).ok());
  tb->sim().run_for(sim::seconds(1));
  // Table 1 send column: PF_XUNET 0, driver 0, IPPROTO_ATM 58+8m, IP 61.
  EXPECT_EQ(hk.instr().total(InstrComponent::pf_xunet, InstrDir::send), 0u);
  EXPECT_EQ(hk.instr().total(InstrComponent::orc_driver, InstrDir::send), 0u);
  EXPECT_EQ(hk.instr().total(InstrComponent::proto_atm, InstrDir::send),
            58u + 8u * 4u);
  EXPECT_EQ(hk.instr().total(InstrComponent::ip_layer, InstrDir::send), 61u);
  EXPECT_EQ(hk.instr().path_total(InstrDir::send), 119u + 8u * 4u);
}

TEST_F(EncapFixture, HostReceiveChargesTable1ReceivePath) {
  auto& hk1 = *tb->host(1).kernel;  // receiving host
  hk1.instr().reset();
  // Send one frame of exactly 2 mbufs worth of data (mbuf_bytes=128).
  std::size_t mbuf = hk1.config().mbuf_bytes;
  util::Buffer data(mbuf * 2, 0x33);
  ASSERT_TRUE(client->send(*call, data).ok());
  tb->sim().run_for(sim::seconds(1));
  // Table 1 receive column: IP 57, IPPROTO_ATM 36, driver 2, PF_XUNET 99+8m.
  EXPECT_EQ(hk1.instr().total(InstrComponent::ip_layer, InstrDir::receive), 57u);
  EXPECT_EQ(hk1.instr().total(InstrComponent::proto_atm, InstrDir::receive), 36u);
  EXPECT_EQ(hk1.instr().total(InstrComponent::orc_driver, InstrDir::receive), 2u);
  EXPECT_EQ(hk1.instr().total(InstrComponent::pf_xunet, InstrDir::receive),
            99u + 8u * 2u);
  EXPECT_EQ(hk1.instr().path_total(InstrDir::receive), 194u + 8u * 2u);
}

TEST_F(EncapFixture, RouterSwitchingAddsExactly39Instructions) {
  auto& rk = *tb->router(0).kernel;  // client-side router decapsulates
  rk.instr().reset();
  ASSERT_TRUE(client->send(*call, util::Buffer(100, 1)).ok());
  tb->sim().run_for(sim::seconds(1));
  EXPECT_EQ(rk.instr().total(InstrComponent::router_switch, InstrDir::receive),
            39u);
}

TEST_F(EncapFixture, OutOfOrderEncapsulatedPacketsDetected) {
  // Manufacture reordering by driving the receiving host's decapsulation
  // with a stale-sequence packet: send normally, then replay an old seq by
  // sending through a second path... simplest: drop one IP frame.
  auto& h0 = tb->host(0);
  util::Rng rng(11);
  h0.link->set_loss(0.3, &rng);
  for (int i = 0; i < 30; ++i) {
    ASSERT_TRUE(client->send(*call, util::Buffer(50, 2)).ok());
  }
  tb->sim().run_for(sim::seconds(2));
  // Lost encapsulated frames create sequence gaps at the router's
  // decapsulation point, which the header's sequence number detects.
  EXPECT_GT(tb->router(0).kernel->proto_atm().out_of_order(), 0u);
  // And every frame that did arrive was intact.
  EXPECT_EQ(server->bytes_received(), server->frames_received() * 50u);
}

TEST_F(EncapFixture, VciShutStopsForwardingToTheHost) {
  auto& r1 = tb->router(1);
  ASSERT_EQ(r1.anand_server->forwarded_vci_count(), 1u);
  std::uint64_t before = server->frames_received();

  // Tear the call down from the client side; VCI_SHUT must stop the
  // router from forwarding anything further.
  client->close_call(*call);
  tb->sim().run_for(sim::seconds(2));
  EXPECT_EQ(r1.anand_server->forwarded_vci_count(), 0u);
  EXPECT_TRUE(r1.kernel->orc().discarding(call->info.vci) ||
              r1.kernel->proto_atm().bound_vci_count() == 0);
  (void)before;
}

TEST(Encap, RouterPerVciIpDestinationTableRoutesTwoHosts) {
  // Two hosts behind the same remote router, each with its own call: the
  // per-VCI IP destination table must keep them separate.
  auto tb = TestbedConfig{}.hosts(2).build_deferred();
  // Second host behind router 1.
  auto& h2 = tb->add_host("berkeley.host2", ip::make_ip(10, 0, 1, 3),
                          tb->router(1));
  ASSERT_TRUE(tb->bring_up().ok());
  auto& h1 = tb->host(1);

  CallServer s1(*h1.kernel, h1.home->kernel->ip_node().address(), "svc1", 4501);
  CallServer s2(*h2.kernel, h2.home->kernel->ip_node().address(), "svc2", 4502);
  s1.start([](util::Result<void>) {});
  s2.start([](util::Result<void>) {});
  tb->sim().run_for(sim::milliseconds(300));

  CallClient client(*tb->router(0).kernel,
                    tb->router(0).kernel->ip_node().address());
  std::optional<CallClient::Call> c1, c2;
  client.open("berkeley.rt", "svc1", "",
              [&](util::Result<CallClient::Call> r) { c1 = *r; });
  client.open("berkeley.rt", "svc2", "",
              [&](util::Result<CallClient::Call> r) { c2 = *r; });
  tb->sim().run_for(sim::seconds(3));
  ASSERT_TRUE(c1 && c2);
  EXPECT_EQ(tb->router(1).anand_server->forwarded_vci_count(), 2u);

  ASSERT_TRUE(client.send(*c1, util::Buffer(10, 0xA1)).ok());
  ASSERT_TRUE(client.send(*c2, util::Buffer(20, 0xB2)).ok());
  ASSERT_TRUE(client.send(*c2, util::Buffer(20, 0xB2)).ok());
  tb->sim().run_for(sim::seconds(1));
  EXPECT_EQ(s1.frames_received(), 1u);
  EXPECT_EQ(s1.bytes_received(), 10u);
  EXPECT_EQ(s2.frames_received(), 2u);
  EXPECT_EQ(s2.bytes_received(), 40u);
}

TEST(Encap, ReconfiguringTheTargetRouterTakesEffect) {
  // "This allows a host to reconfigure its target router easily."
  auto tb = TestbedConfig{}.hosts(2).build_deferred();
  ASSERT_TRUE(tb->bring_up().ok());
  auto& h0 = tb->host(0);
  auto pid = h0.kernel->spawn("reconfig");
  auto fd = h0.kernel->proto_atm_socket(pid);
  ASSERT_TRUE(fd.ok());
  auto other = ip::make_ip(10, 0, 0, 99);
  ASSERT_TRUE(h0.kernel->proto_atm_set_router(pid, *fd, other).ok());
  EXPECT_EQ(*h0.kernel->proto_atm().router_address(), other);
}

}  // namespace
}  // namespace xunet
