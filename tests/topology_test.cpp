// topology_test.cpp — beyond the canonical two-router testbed: Xunet-like
// multi-router topologies (the real network had five sites), multi-hop
// routing, full-mesh signaling, and scale in the number of endpoints.
#include <gtest/gtest.h>

#include "core/apps.hpp"
#include "core/testbed.hpp"

namespace xunet {
namespace {

using core::CallClient;
using core::CallServer;
using core::Testbed;

/// A five-site Xunet: a line of 4 switches with routers hanging off them —
/// Murray Hill, Berkeley, Illinois, Wisconsin, Rutgers (the §1 sites).
std::unique_ptr<Testbed> make_xunet() {
  core::TestbedConfig cfg;
  cfg.kernel.fd_table_size = 200;
  auto tb = std::make_unique<Testbed>(cfg);
  auto& s1 = tb->add_switch("chicago");
  auto& s2 = tb->add_switch("newark");
  auto& s3 = tb->add_switch("oakland");
  auto& s4 = tb->add_switch("madison");
  tb->connect_switches(s1, s2);
  tb->connect_switches(s2, s3);
  tb->connect_switches(s1, s4);
  tb->add_router("mh.rt", ip::make_ip(10, 1, 0, 1), s2);
  tb->add_router("berkeley.rt", ip::make_ip(10, 2, 0, 1), s3);
  tb->add_router("illinois.rt", ip::make_ip(10, 3, 0, 1), s1);
  tb->add_router("wisconsin.rt", ip::make_ip(10, 4, 0, 1), s4);
  tb->add_router("rutgers.rt", ip::make_ip(10, 5, 0, 1), s2);
  return tb;
}

TEST(Topology, FiveSiteXunetBringsUpFullPvcMesh) {
  auto tb = make_xunet();
  ASSERT_TRUE(tb->bring_up().ok());
  // 5 routers -> 5*4/2 pairs, 2 simplex PVCs each = 20 PVCs.
  EXPECT_EQ(tb->network().active_vc_count(), 20u);
  EXPECT_TRUE(tb->audit().clean()) << tb->audit().describe();
}

TEST(Topology, CallsWorkBetweenEveryRouterPair) {
  auto tb = make_xunet();
  ASSERT_TRUE(tb->bring_up().ok());
  const char* names[] = {"mh.rt", "berkeley.rt", "illinois.rt",
                         "wisconsin.rt", "rutgers.rt"};

  // One server per router.
  std::vector<std::unique_ptr<CallServer>> servers;
  for (std::size_t i = 0; i < 5; ++i) {
    auto& r = tb->router(i);
    servers.push_back(std::make_unique<CallServer>(
        *r.kernel, r.kernel->ip_node().address(),
        "svc-" + std::string(names[i]), static_cast<std::uint16_t>(4700 + i)));
    servers.back()->start([](util::Result<void>) {});
  }
  tb->sim().run_for(sim::milliseconds(500));

  // Every router calls every other router.
  int expected = 0, established = 0;
  std::vector<std::unique_ptr<CallClient>> clients;
  for (std::size_t i = 0; i < 5; ++i) {
    clients.push_back(std::make_unique<CallClient>(
        *tb->router(i).kernel, tb->router(i).kernel->ip_node().address()));
    for (std::size_t j = 0; j < 5; ++j) {
      if (i == j) continue;
      ++expected;
      clients.back()->open(names[j], "svc-" + std::string(names[j]), "",
                           [&](util::Result<CallClient::Call> r) {
                             ASSERT_TRUE(r.ok()) << to_string(r.error());
                             ++established;
                           });
    }
  }
  tb->sim().run_for(sim::seconds(30));
  EXPECT_EQ(established, expected);  // 20 calls
  EXPECT_EQ(tb->network().active_vc_count(), 20u + 20u);
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_EQ(servers[i]->calls_accepted(), 4u) << names[i];
  }
}

TEST(Topology, MultiHopDataCrossesSeveralSwitches) {
  auto tb = make_xunet();
  ASSERT_TRUE(tb->bring_up().ok());
  // wisconsin (madison switch) -> berkeley (oakland switch): path crosses
  // madison - chicago - newark - oakland = 4 switches, 5 links.
  auto& wis = tb->router(3);
  auto& bk = tb->router(1);
  CallServer server(*bk.kernel, bk.kernel->ip_node().address(), "far", 4710);
  server.start([](util::Result<void>) {});
  tb->sim().run_for(sim::milliseconds(500));
  CallClient client(*wis.kernel, wis.kernel->ip_node().address());
  std::optional<CallClient::Call> call;
  client.open("berkeley.rt", "far", "class=guaranteed,bw=1000000",
              [&](util::Result<CallClient::Call> r) { call = *r; });
  tb->sim().run_for(sim::seconds(3));
  ASSERT_TRUE(call.has_value());
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(client.send(*call, util::Buffer(1000, 0xAB)).ok());
  }
  tb->sim().run_for(sim::seconds(2));
  EXPECT_EQ(server.frames_received(), 10u);
  EXPECT_EQ(server.bytes_received(), 10'000u);

  client.close_call(*call);
  tb->sim().run_for(sim::seconds(3));
  EXPECT_TRUE(tb->audit().clean()) << tb->audit().describe();
}

TEST(Topology, TransitBandwidthIsSharedAcrossRouterPairs) {
  // illinois->mh and wisconsin->mh both transit the chicago-newark trunk
  // (wisconsin via madison-chicago): guaranteed reservations on the shared
  // hop must add up.
  auto tb = make_xunet();
  ASSERT_TRUE(tb->bring_up().ok());
  auto& mh = tb->router(0);
  CallServer server(*mh.kernel, mh.kernel->ip_node().address(), "hub", 4711);
  server.set_qos_limit(atm::Qos{atm::ServiceClass::guaranteed, 45'000'000});
  server.start([](util::Result<void>) {});
  tb->sim().run_for(sim::milliseconds(500));

  CallClient c_ill(*tb->router(2).kernel,
                   tb->router(2).kernel->ip_node().address());
  CallClient c_wis(*tb->router(3).kernel,
                   tb->router(3).kernel->ip_node().address());
  int ok = 0, denied = 0;
  auto tally = [&](util::Result<CallClient::Call> r) {
    if (r.ok()) {
      ++ok;
    } else {
      EXPECT_EQ(r.error(), util::Errc::no_resources);
      ++denied;
    }
  };
  // 25 Mb/s each: the first fits anywhere; the second exceeds the shared
  // chicago->newark trunk (45 Mb/s) if both reserve on it.
  c_ill.open("mh.rt", "hub", "class=guaranteed,bw=25000000", tally);
  tb->sim().run_for(sim::seconds(3));
  c_wis.open("mh.rt", "hub", "class=guaranteed,bw=25000000", tally);
  tb->sim().run_for(sim::seconds(3));
  EXPECT_EQ(ok, 1);
  EXPECT_EQ(denied, 1);
}

TEST(Topology, ManyHostsBehindOneRouter) {
  core::TestbedConfig cfg;
  cfg.kernel.fd_table_size = 200;
  auto tb = cfg.build_deferred();
  // Six IP hosts behind berkeley.rt, one server on each.
  std::vector<core::Host*> hosts;
  for (int i = 0; i < 6; ++i) {
    hosts.push_back(&tb->add_host("bh" + std::to_string(i),
                                  ip::make_ip(10, 0, 1, static_cast<std::uint8_t>(10 + i)),
                                  tb->router(1)));
  }
  ASSERT_TRUE(tb->bring_up().ok());

  std::vector<std::unique_ptr<CallServer>> servers;
  for (int i = 0; i < 6; ++i) {
    servers.push_back(std::make_unique<CallServer>(
        *hosts[static_cast<std::size_t>(i)]->kernel,
        tb->router(1).kernel->ip_node().address(), "h" + std::to_string(i),
        static_cast<std::uint16_t>(4720 + i)));
    servers.back()->start([](util::Result<void>) {});
  }
  tb->sim().run_for(sim::milliseconds(500));
  EXPECT_EQ(tb->router(1).sighost->service_list_size(), 6u);

  // One client on a router calls all six; the router's per-VCI IP
  // destination table must demultiplex them correctly.
  CallClient client(*tb->router(0).kernel,
                    tb->router(0).kernel->ip_node().address());
  std::vector<CallClient::Call> calls;
  for (int i = 0; i < 6; ++i) {
    client.open("berkeley.rt", "h" + std::to_string(i), "",
                [&](util::Result<CallClient::Call> r) {
                  ASSERT_TRUE(r.ok());
                  calls.push_back(*r);
                });
  }
  tb->sim().run_for(sim::seconds(10));
  ASSERT_EQ(calls.size(), 6u);
  EXPECT_EQ(tb->router(1).anand_server->forwarded_vci_count(), 6u);
  for (std::size_t i = 0; i < 6; ++i) {
    // Send i+1 frames on call i; each server must see exactly its own.
    for (std::size_t k = 0; k <= i; ++k) {
      ASSERT_TRUE(client.send(calls[i], util::Buffer(64, 0x11)).ok());
    }
  }
  tb->sim().run_for(sim::seconds(3));
  // Frame counts arrived per service — but calls[] is not index-aligned to
  // servers (completion order varies), so check the total and the multiset.
  std::multiset<std::uint64_t> got, want;
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < 6; ++i) {
    got.insert(servers[i]->frames_received());
    want.insert(static_cast<std::uint64_t>(i + 1));
    total += servers[i]->frames_received();
  }
  EXPECT_EQ(total, 21u);
  EXPECT_EQ(got, want);
}

TEST(Topology, DisconnectedRouterPairHasNoRoute) {
  // Two switches NOT connected: calls across the partition fail cleanly.
  core::TestbedConfig cfg;
  auto tb = std::make_unique<Testbed>(cfg);
  auto& s1 = tb->add_switch("island1");
  auto& s2 = tb->add_switch("island2");
  tb->add_router("a.rt", ip::make_ip(10, 9, 0, 1), s1);
  tb->add_router("b.rt", ip::make_ip(10, 9, 1, 1), s2);
  // bring_up fails to provision PVCs across the partition.
  EXPECT_FALSE(tb->bring_up().ok());
  (void)s1;
  (void)s2;
}

}  // namespace
}  // namespace xunet
