// ipatm_test.cpp — classical IP over ATM (§1's pre-existing Xunet service):
// cross-router IP connectivity riding PVCs, coexisting with native-mode
// calls, including full TCP connections across the ATM WAN.
#include <gtest/gtest.h>

#include "core/apps.hpp"
#include "core/testbed.hpp"

namespace xunet {
namespace {

using core::CallClient;
using core::CallServer;
using core::Testbed;

core::TestbedConfig ipatm_config() {
  core::TestbedConfig cfg;
  cfg.ip_over_atm = true;
  return cfg;
}

TEST(IpOverAtm, RouterToRouterUdpCrossesTheAtmWan) {
  auto tb = ipatm_config().build_deferred();
  ASSERT_TRUE(tb->bring_up().ok());
  auto& r0 = *tb->router(0).kernel;
  auto& r1 = *tb->router(1).kernel;

  std::optional<std::string> got;
  ASSERT_TRUE(r1.udp()
                  .bind(7000,
                        [&](ip::IpAddress src, std::uint16_t, util::BytesView d) {
                          EXPECT_EQ(src, r0.ip_node().address());
                          got = util::to_text(d);
                        })
                  .ok());
  ASSERT_TRUE(r0.udp()
                  .send(r1.ip_node().address(), 7000, 7001,
                        util::to_buffer(std::string_view("over-atm")))
                  .ok());
  tb->sim().run_for(sim::seconds(1));
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, "over-atm");
}

TEST(IpOverAtm, HostToHostAcrossRoutersViaIp) {
  // mh.host1 -> FDDI -> mh.rt -> [IP over ATM PVC] -> berkeley.rt -> FDDI ->
  // berkeley.host1, all plain UDP.
  auto tb = ipatm_config().hosts(2).build_deferred();
  ASSERT_TRUE(tb->bring_up().ok());
  auto& h0 = *tb->host(0).kernel;
  auto& h1 = *tb->host(1).kernel;

  int received = 0;
  ASSERT_TRUE(h1.udp()
                  .bind(7100, [&](ip::IpAddress, std::uint16_t,
                                  util::BytesView) { ++received; })
                  .ok());
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(h0.udp()
                    .send(h1.ip_node().address(), 7100, 7101,
                          util::Buffer(200, 0x9))
                    .ok());
  }
  tb->sim().run_for(sim::seconds(1));
  EXPECT_EQ(received, 10);
  // The datagrams transited both IP-over-ATM interfaces.
  (void)tb;
}

TEST(IpOverAtm, LargeDatagramsUseThe9180ByteMtu) {
  auto tb = ipatm_config().build_deferred();
  ASSERT_TRUE(tb->bring_up().ok());
  auto& r0 = *tb->router(0).kernel;
  auto& r1 = *tb->router(1).kernel;
  std::optional<std::size_t> got;
  ASSERT_TRUE(r1.udp()
                  .bind(7200, [&](ip::IpAddress, std::uint16_t,
                                  util::BytesView d) { got = d.size(); })
                  .ok());
  // 8 KB fits RFC 1626's 9180-byte MTU without IP fragmentation.
  std::uint64_t frags_before = r0.ip_node().fragments_sent();
  ASSERT_TRUE(r0.udp().send(r1.ip_node().address(), 7200, 7201,
                            util::Buffer(8000, 0x3)).ok());
  tb->sim().run_for(sim::seconds(1));
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, 8000u);
  EXPECT_EQ(r0.ip_node().fragments_sent(), frags_before);

  // 20 KB exceeds it: IP fragments, the receiver reassembles.
  got.reset();
  ASSERT_TRUE(r0.udp().send(r1.ip_node().address(), 7200, 7201,
                            util::Buffer(20'000, 0x4)).ok());
  tb->sim().run_for(sim::seconds(1));
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, 20'000u);
  EXPECT_GT(r0.ip_node().fragments_sent(), frags_before);
}

TEST(IpOverAtm, TcpConnectionAcrossTheWan) {
  auto tb = ipatm_config().hosts(2).build_deferred();
  ASSERT_TRUE(tb->bring_up().ok());
  auto& h0 = *tb->host(0).kernel;
  auto& h1 = *tb->host(1).kernel;

  kern::Pid sp = h1.spawn("wan-server");
  kern::Pid cp = h0.spawn("wan-client");
  std::optional<int> afd, cfd;
  ASSERT_TRUE(h1.tcp_listen(sp, 7300, [&](int fd) { afd = fd; }).ok());
  (void)h0.tcp_connect(cp, h1.ip_node().address(), 7300,
                       [&](util::Result<int> r) {
                         ASSERT_TRUE(r.ok());
                         cfd = *r;
                       });
  tb->sim().run_for(sim::seconds(2));
  ASSERT_TRUE(afd && cfd);

  std::string got;
  ASSERT_TRUE(h1.tcp_on_receive(sp, *afd, [&](util::BytesView d) {
                  got += util::to_text(d);
                }).ok());
  ASSERT_TRUE(h0.tcp_send(cp, *cfd,
                          util::to_buffer(std::string_view("tcp across atm")))
                  .ok());
  tb->sim().run_for(sim::seconds(2));
  EXPECT_EQ(got, "tcp across atm");
}

TEST(IpOverAtm, CoexistsWithNativeModeCalls) {
  // The point of the paper: native-mode and IP service share the network.
  auto tb = ipatm_config().hosts(2).build_deferred();
  ASSERT_TRUE(tb->bring_up().ok());
  auto& h1 = tb->host(1);

  // Native-mode call host-to-host...
  CallServer server(*h1.kernel, h1.home->kernel->ip_node().address(), "mixed",
                    7400);
  server.start([](util::Result<void>) {});
  tb->sim().run_for(sim::milliseconds(300));
  CallClient client(*tb->host(0).kernel,
                    tb->host(0).home->kernel->ip_node().address());
  std::optional<CallClient::Call> call;
  client.open("berkeley.rt", "mixed", "class=guaranteed,bw=5000000",
              [&](util::Result<CallClient::Call> r) { call = *r; });
  tb->sim().run_for(sim::seconds(2));
  ASSERT_TRUE(call.has_value());

  // ...while UDP crosses the same WAN over the IP PVC.
  int udp_received = 0;
  ASSERT_TRUE(tb->host(1).kernel->udp()
                  .bind(7401, [&](ip::IpAddress, std::uint16_t,
                                  util::BytesView) { ++udp_received; })
                  .ok());
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(client.send(*call, util::Buffer(500, 0x6)).ok());
    ASSERT_TRUE(tb->host(0).kernel->udp()
                    .send(tb->host(1).kernel->ip_node().address(), 7401, 7402,
                          util::Buffer(500, 0x7))
                    .ok());
  }
  tb->sim().run_for(sim::seconds(2));
  EXPECT_EQ(server.frames_received(), 20u);
  EXPECT_EQ(udp_received, 20);

  client.close_call(*call);
  tb->sim().run_for(sim::seconds(2));
  EXPECT_TRUE(tb->audit().clean()) << tb->audit().describe();
}

TEST(IpOverAtm, InterfaceCountersTrack) {
  auto tb = ipatm_config().build_deferred();
  ASSERT_TRUE(tb->bring_up().ok());
  auto& r0 = *tb->router(0).kernel;
  auto& r1 = *tb->router(1).kernel;
  (void)r1.udp().bind(7500,
                      [](ip::IpAddress, std::uint16_t, util::BytesView) {});
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(r0.udp().send(r1.ip_node().address(), 7500, 7501,
                              util::Buffer(100, 0)).ok());
  }
  tb->sim().run_for(sim::seconds(1));
  EXPECT_EQ(r1.udp().datagrams_received(), 5u);
}

}  // namespace
}  // namespace xunet
