// model_test.cpp — drives the xunet_model checker: table parsing, exhaustive
// exploration of the real declared tables (which must be clean, with every
// declared transition proved reachable), the seeded-defect fixtures in
// tests/lint_fixtures/model/ (which must be flagged), the sabotage
// self-test, assume-reached waivers, the xunet.model.v1 renderer against a
// golden report, and run-to-run determinism.
#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>
#include <sstream>
#include <string>

#include "xunet_model/model.hpp"

namespace {

using xunet::lint::load_machine_table;
using xunet::lint::load_model_assumes;
using xunet::lint::load_state_table;
using xunet::model::Finding;
using xunet::model::Options;
using xunet::model::Result;

const std::string kRepo = XUNET_SOURCE_DIR;
const std::string kSighostTbl = kRepo + "/tools/xunet_lint/sighost_state.tbl";
const std::string kKernTbl =
    kRepo + "/tools/xunet_lint/kern_socket_state.tbl";
const std::string kFix = kRepo + "/tests/lint_fixtures/model";

Result check_tables(const std::string& sighost, const std::string& kern,
                    Options opt = {}) {
  std::string err;
  auto s = load_state_table(sighost, err);
  EXPECT_EQ(err, "");
  auto k = load_machine_table(kern, err);
  EXPECT_EQ(err, "");
  auto a = load_model_assumes(sighost, err);
  EXPECT_EQ(err, "");
  auto ka = load_model_assumes(kern, err);
  EXPECT_EQ(err, "");
  a.insert(a.end(), ka.begin(), ka.end());
  return xunet::model::check(s, k, a, opt);
}

std::size_t count_kind(const Result& r, const std::string& kind) {
  return static_cast<std::size_t>(
      std::count_if(r.findings.begin(), r.findings.end(),
                    [&](const Finding& f) { return f.kind == kind; }));
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "cannot read " << path;
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

// ---------------------------------------------------------- table parsing

TEST(ModelTables, KernTableParsesFromListsAndWildcard) {
  std::string err;
  auto edges = load_machine_table(kKernTbl, err);
  ASSERT_EQ(err, "");
  ASSERT_EQ(edges.size(), 4u);
  auto find = [&](const std::string& fn) {
    return std::find_if(edges.begin(), edges.end(),
                        [&](const auto& e) { return e.fn == fn; });
  };
  auto mark = find("mark_vci_disconnected");
  ASSERT_NE(mark, edges.end());
  EXPECT_EQ(mark->from, (std::vector<std::string>{"bound", "connected"}));
  EXPECT_EQ(mark->to, "disconnected");
  auto close = find("close_xunet");
  ASSERT_NE(close, edges.end());
  EXPECT_EQ(close->from, (std::vector<std::string>{"*"}));
}

TEST(ModelTables, MalformedFromListIsAnError) {
  const std::string bad = ::testing::TempDir() + "/bad_kern.tbl";
  {
    std::ofstream out(bad);
    out << "close_xunet bound, created\n";  // empty element in the from list
  }
  std::string err;
  auto edges = load_machine_table(bad, err);
  EXPECT_TRUE(edges.empty());
  EXPECT_NE(err, "");
}

// ---------------------------------------------- the real tables are sound

TEST(ModelCheck, RealTablesExploreCleanAndExhaustive) {
  Result r = check_tables(kSighostTbl, kKernTbl);
  EXPECT_TRUE(r.ok()) << xunet::model::render_text(r);
  // Every declared transition is proved reachable — none merely assumed.
  EXPECT_EQ(r.sighost_reached, r.sighost_declared);
  EXPECT_EQ(r.kern_reached, r.kern_declared);
  EXPECT_EQ(r.sighost_assumed, 0u);
  EXPECT_EQ(r.kern_assumed, 0u);
  // The product space must stay non-trivial: a collapsed state space would
  // mean the events stopped composing, not that the protocol got simpler.
  EXPECT_GE(r.states, 100000u);
  EXPECT_GT(r.edges, r.states);
}

// ------------------------------------------------- seeded-defect fixtures

TEST(ModelCheck, SeededUnreachableEntryIsFlagged) {
  Result r = check_tables(kFix + "/sighost_bogus.tbl", kKernTbl);
  EXPECT_FALSE(r.ok());
  ASSERT_EQ(count_kind(r, "MODEL-UNREACHABLE"), 1u);
  ASSERT_EQ(r.findings.size(), 1u);
  EXPECT_NE(r.findings[0].detail.find("handle_ghost_resync"),
            std::string::npos);
}

TEST(ModelCheck, SeededMissingCloseDeadlocksTheProduct) {
  // Without close_xunet no socket ever leaves its slot: the model must find
  // stuck non-terminal states (and report the first with a trace).
  Result r = check_tables(kSighostTbl, kFix + "/kern_missing_close.tbl");
  EXPECT_FALSE(r.ok());
  EXPECT_GE(count_kind(r, "MODEL-STUCK"), 1u);
  bool traced = std::any_of(r.findings.begin(), r.findings.end(),
                            [](const Finding& f) {
                              return f.kind == "MODEL-STUCK" &&
                                     f.detail.find("trace:") !=
                                         std::string::npos;
                            });
  EXPECT_TRUE(traced) << "first stuck example must carry its BFS trace";
}

TEST(ModelCheck, SabotagedRecoveryLeaksAreCaught) {
  // The chaos harness's sabotage seam (recovery rebuilds nothing) must not
  // pass the checker: crashed sighosts strand sockets and network VCs.
  Options opt;
  opt.sabotage_recover = true;
  Result r = check_tables(kSighostTbl, kKernTbl, opt);
  EXPECT_FALSE(r.ok());
  EXPECT_GE(count_kind(r, "MODEL-STUCK"), 1u);
  // The recover entry is unreachable too: sabotage never fires it.
  EXPECT_EQ(count_kind(r, "MODEL-UNREACHABLE"), 1u);
}

TEST(ModelCheck, AssumeReachedWaivesWithReasonInNotes) {
  Result r = check_tables(kFix + "/sighost_assumed.tbl", kKernTbl);
  EXPECT_TRUE(r.ok()) << xunet::model::render_text(r);
  EXPECT_EQ(r.sighost_assumed, 1u);
  bool noted = std::any_of(r.notes.begin(), r.notes.end(),
                           [](const std::string& n) {
                             return n.find("handle_ghost_resync") !=
                                        std::string::npos &&
                                    n.find("resync subsystem") !=
                                        std::string::npos;
                           });
  EXPECT_TRUE(noted) << "the waiver's reason must be carried into the report";
}

TEST(ModelCheck, TinyStateBoundFailsLoudly) {
  Options opt;
  opt.max_states = 100;
  Result r = check_tables(kSighostTbl, kKernTbl, opt);
  EXPECT_GE(count_kind(r, "MODEL-CONFIG"), 1u)
      << "exceeding the bound must be a finding, never a silent truncation";
}

// ------------------------------------------------------------------ JSON

TEST(ModelJson, GoldenReportForRealTables) {
  Result r = check_tables(kSighostTbl, kKernTbl);
  EXPECT_EQ(xunet::model::render_json(r), slurp(kFix + "/golden_model.json"));
}

TEST(ModelJson, SchemaEnvelopeFields) {
  Result r = check_tables(kSighostTbl, kKernTbl);
  std::string j = xunet::model::render_json(r);
  for (const char* key :
       {"\"schema\": \"xunet.model.v1\"", "\"tool\"", "\"states\"",
        "\"edges\"", "\"sighost_declared\"", "\"kern_declared\"", "\"ok\"",
        "\"findings\"", "\"notes\""}) {
    EXPECT_NE(j.find(key), std::string::npos) << key;
  }
}

TEST(ModelJson, DeterministicAcrossRuns) {
  // A finding-heavy run is the stronger determinism probe: example order
  // and traces must be stable, not just the summary counts.
  Result a = check_tables(kSighostTbl, kFix + "/kern_missing_close.tbl");
  Result b = check_tables(kSighostTbl, kFix + "/kern_missing_close.tbl");
  EXPECT_EQ(xunet::model::render_json(a), xunet::model::render_json(b));
}

}  // namespace
