// qos_sched_test.cpp — the QoS-enforcement conformance suite (the
// ref [17]/[18] future-work direction, enforced): GCRA policing boundary
// behaviour, per-VC weighted-fair scheduling within class bands, strict
// priority across bands, frame-aware EPD/PPD discard, the ABR rate-feedback
// loop, per-cause discard accounting, and byte-identical same-seed replay
// of every scheduling decision.  The end-to-end tests at the top drive the
// full signaling + kernel + switch stack; the raw-switch rigs below pin the
// traffic-management substrate cell by cell.
#include <gtest/gtest.h>

#include <numeric>

#include "atm/abr.hpp"
#include "atm/aal5.hpp"
#include "atm/gcra.hpp"
#include "atm/link.hpp"
#include "atm/switch.hpp"
#include "core/apps.hpp"
#include "core/testbed.hpp"

namespace xunet {
namespace {

using core::CallClient;
using core::CallServer;
using core::Testbed;

/// Topology with a shared bottleneck: routers src-a.rt and src-b.rt both on
/// switch s1; sink.rt on s2; the single s1→s2 DS3 trunk carries both flows.
struct CongestionRig {
  std::unique_ptr<Testbed> tb;
  atm::AtmSwitch* s1 = nullptr;
  std::unique_ptr<CallServer> sink_g, sink_b;
  std::unique_ptr<CallClient> ca, cb;
  std::optional<CallClient::Call> call_g, call_b;

  CongestionRig() {
    core::TestbedConfig cfg;
    cfg.kernel.fd_table_size = 100;
    tb = std::make_unique<Testbed>(cfg);
    s1 = &tb->add_switch("s1");
    auto& s2 = tb->add_switch("s2");
    tb->connect_switches(*s1, s2);
    tb->add_router("src-a.rt", ip::make_ip(10, 1, 0, 1), *s1);
    tb->add_router("src-b.rt", ip::make_ip(10, 2, 0, 1), *s1);
    tb->add_router("sink.rt", ip::make_ip(10, 3, 0, 1), s2);
    EXPECT_TRUE(tb->bring_up().ok());

    auto& sink = tb->router(2);
    sink_g = std::make_unique<CallServer>(
        *sink.kernel, sink.kernel->ip_node().address(), "sink-g", 6000);
    sink_b = std::make_unique<CallServer>(
        *sink.kernel, sink.kernel->ip_node().address(), "sink-b", 6001);
    sink_g->set_qos_limit(atm::Qos{atm::ServiceClass::guaranteed, 45'000'000});
    sink_g->start([](util::Result<void>) {});
    sink_b->start([](util::Result<void>) {});
    tb->sim().run_for(sim::milliseconds(500));

    ca = std::make_unique<CallClient>(*tb->router(0).kernel,
                                      tb->router(0).kernel->ip_node().address());
    cb = std::make_unique<CallClient>(*tb->router(1).kernel,
                                      tb->router(1).kernel->ip_node().address());
    ca->open("sink.rt", "sink-g", "class=guaranteed,bw=20000000",
             [&](util::Result<CallClient::Call> r) {
               ASSERT_TRUE(r.ok());
               call_g = *r;
             });
    cb->open("sink.rt", "sink-b", "class=best_effort,bw=0",
             [&](util::Result<CallClient::Call> r) {
               ASSERT_TRUE(r.ok());
               call_b = *r;
             });
    tb->sim().run_for(sim::seconds(3));
    EXPECT_TRUE(call_g.has_value());
    EXPECT_TRUE(call_b.has_value());
  }

  /// Drive both flows for one simulated second at the given frame rates
  /// (frames of `size` bytes, spread evenly).
  void blast(int frames_g, int frames_b, std::size_t size) {
    for (int i = 0; i < std::max(frames_g, frames_b); ++i) {
      if (i < frames_g) {
        tb->sim().schedule(
            sim::seconds_f(double(i) / frames_g),
            [this, size] { (void)ca->send(*call_g, util::Buffer(size, 0x60)); });
      }
      if (i < frames_b) {
        tb->sim().schedule(
            sim::seconds_f(double(i) / frames_b),
            [this, size] { (void)cb->send(*call_b, util::Buffer(size, 0x0B)); });
      }
    }
    tb->sim().run_for(sim::seconds(3));
  }
};

TEST(QosScheduling, GuaranteedTrafficSurvivesCongestion) {
  CongestionRig rig;
  // Offered: guaranteed 20 Mb/s + best effort 40 Mb/s into a 45 Mb/s trunk
  // (with the 53/48 cell tax the trunk carries ~40.8 Mb/s of payload).
  const std::size_t size = 8000;
  const int g_frames = 312;  // ≈20 Mb/s
  const int b_frames = 625;  // ≈40 Mb/s
  rig.blast(g_frames, b_frames, size);

  double g_rate = rig.sink_g->bytes_received() * 8.0 / 1e6;
  double b_rate = rig.sink_b->bytes_received() * 8.0 / 1e6;
  // The guaranteed flow gets essentially everything it sent...
  EXPECT_GT(rig.sink_g->frames_received(), g_frames * 95 / 100);
  // ...while best effort bears all the loss.
  EXPECT_LT(rig.sink_b->frames_received(), static_cast<std::uint64_t>(b_frames));
  EXPECT_GT(g_rate, 19.0);
  EXPECT_LT(b_rate, 25.0);
  // The drops happened at the congested trunk port, best-effort class only.
  std::uint64_t be_drops = 0, g_drops = 0;
  for (int p = 0; p < rig.s1->port_count(); ++p) {
    be_drops += rig.s1->cells_dropped(p, atm::ServiceClass::best_effort);
    g_drops += rig.s1->cells_dropped(p, atm::ServiceClass::guaranteed);
  }
  EXPECT_GT(be_drops, 0u);
  EXPECT_EQ(g_drops, 0u);
}

TEST(QosScheduling, UncongestedBestEffortIsUnharmed) {
  CongestionRig rig;
  // Offered well under the trunk rate: nobody drops.
  rig.blast(100, 100, 4000);  // ~3.2 Mb/s each
  EXPECT_EQ(rig.sink_g->frames_received(), 100u);
  EXPECT_EQ(rig.sink_b->frames_received(), 100u);
  std::uint64_t drops = 0;
  for (int p = 0; p < rig.s1->port_count(); ++p) {
    for (auto c : {atm::ServiceClass::best_effort, atm::ServiceClass::predicted,
                   atm::ServiceClass::guaranteed}) {
      drops += rig.s1->cells_dropped(p, c);
    }
  }
  EXPECT_EQ(drops, 0u);
}

TEST(QosScheduling, QueuesDrainAfterTheBurst) {
  CongestionRig rig;
  rig.blast(200, 400, 8000);
  rig.tb->sim().run_for(sim::seconds(5));
  for (int p = 0; p < rig.s1->port_count(); ++p) {
    EXPECT_EQ(rig.s1->queue_depth(p), 0u) << "port " << p;
  }
}

/// Traffic descriptors offered by the client survive signaling end to end:
/// the wire QoS string carries them through CONNECT_REQ → negotiate →
/// VCI_FOR_CONN, and sighost's granted-QoS parse arms the GCRA at the
/// switches — a flow bursting past its own PCR is policed at ingress.
TEST(QosScheduling, DescriptorsSurviveSignalingEndToEnd) {
  CongestionRig rig;
  std::optional<CallClient::Call> call;
  rig.ca->open("sink.rt", "sink-g",
               "class=cbr,bw=5000000,pcr=8000000,scr=5000000,mbs=32",
               [&](util::Result<CallClient::Call> r) {
                 ASSERT_TRUE(r.ok());
                 call = *r;
               });
  rig.tb->sim().run_for(sim::seconds(3));
  ASSERT_TRUE(call.has_value());
  // The granted string still carries the descriptors (the server's limit
  // leaves them untouched)...
  auto granted = atm::parse_qos(call->info.qos);
  ASSERT_TRUE(granted.ok());
  EXPECT_EQ(granted->pcr_bps, 8'000'000u);
  EXPECT_EQ(granted->scr_bps, 5'000'000u);
  EXPECT_EQ(granted->mbs_cells, 32u);
  // ...and the switches enforce them: an uncontested burst far above PCR
  // loses cells to the policer, nowhere else.
  for (int i = 0; i < 100; ++i) {
    (void)rig.ca->send(*call, util::Buffer(8000, 0xCB));
  }
  rig.tb->sim().run_for(sim::seconds(2));
  std::uint64_t policed = 0;
  for (int p = 0; p < rig.s1->port_count(); ++p) {
    policed += rig.s1->cells_discarded(p, atm::DiscardCause::policed);
  }
  EXPECT_GT(policed, 0u);
}

// ===================================================================
// GCRA conformance — table-driven boundary behaviour of the policer.
// ===================================================================

TEST(Gcra, VirtualSchedulingBoundaryTable) {
  // GCRA(T=1000, tau=500): each row is (arrival_ns, must_conform).
  // Covers: idle start, back-to-back at T, maximum earliness (exactly
  // TAT - tau), one ns too early, and idle-credit reset (TAT jumps to t_a).
  struct Row {
    std::int64_t t_ns;
    bool conform;
  };
  constexpr Row kRows[] = {
      {0, true},      // TAT 0 -> 1000
      {1000, true},   // exactly on time          TAT -> 2000
      {1500, true},   // earliest allowed (boundary) TAT -> 3000
      {2499, false},  // 1 ns too early; TAT untouched
      {2500, true},   // boundary again           TAT -> 4000
      {3499, false},  // too early
      {5000, true},   // late: TAT resets to max(t,TAT)+T = 6000
      {5500, true},   // boundary                 TAT -> 7000
      {6000, false},  // too early (6000 < 6500)
  };
  atm::Gcra g(1000, 500);
  for (const Row& r : kRows) {
    EXPECT_EQ(g.police(sim::SimTime{} + sim::nanoseconds(r.t_ns)), r.conform)
        << "arrival at " << r.t_ns << " ns";
  }
  EXPECT_EQ(g.tat_ns(), 7000);
}

TEST(Gcra, NonConformingCellDoesNotChargeTheBucket) {
  atm::Gcra g(1000, 0);
  ASSERT_TRUE(g.police(sim::SimTime{}));
  const std::int64_t tat_before = g.tat_ns();
  for (int i = 0; i < 5; ++i) {
    EXPECT_FALSE(g.police(sim::SimTime{} + sim::nanoseconds(500)));
  }
  EXPECT_EQ(g.tat_ns(), tat_before) << "rejected cells must leave TAT alone";
  EXPECT_TRUE(g.police(sim::SimTime{} + sim::nanoseconds(1000)));
}

TEST(Gcra, ZeroIncrementMeansUnpoliced) {
  atm::Gcra off;
  EXPECT_FALSE(off.enabled());
  for (int i = 0; i < 10; ++i) {
    EXPECT_TRUE(off.police(sim::SimTime{}));  // back-to-back, all pass
  }
  atm::Qos q;  // no descriptors
  EXPECT_FALSE(q.needs_policing());
  EXPECT_FALSE(atm::DualGcra(q).enabled());
}

TEST(DualGcra, MbsBurstAtPcrConformsAndNotOneCellMore) {
  // PCR = one cell per 1000 ns, SCR = one per 4000 ns, MBS = 5:
  // BT = (5-1) * (4000-1000) = 12000 ns.  With CDVT 0, exactly 5
  // back-to-back cells at PCR spacing conform; the 6th violates SCR.
  atm::Qos q;
  q.pcr_bps = atm::kCellBits * 1'000'000'000ull / 1000;
  q.scr_bps = atm::kCellBits * 1'000'000'000ull / 4000;
  q.mbs_cells = 5;
  ASSERT_TRUE(q.needs_policing());
  atm::DualGcra police(q, /*cdvt_ns=*/0);
  ASSERT_TRUE(police.enabled());
  for (int k = 0; k < 5; ++k) {
    EXPECT_TRUE(police.police(sim::SimTime{} + sim::nanoseconds(1000 * k)))
        << "burst cell " << k;
  }
  EXPECT_FALSE(police.police(sim::SimTime{} + sim::nanoseconds(5000)))
      << "cell MBS+1 must violate the SCR bucket";
  // A reject charges neither bucket: had it charged SCR, the earliest
  // conforming arrival would move past 8000 ns.
  EXPECT_FALSE(police.police(sim::SimTime{} + sim::nanoseconds(7999)));
  EXPECT_TRUE(police.police(sim::SimTime{} + sim::nanoseconds(8000)));
}

TEST(DualGcra, PcrBucketPolicesPeaksEvenUnderScr) {
  // SCR long-run rate is honoured but cells closer than 1/PCR still fail:
  // the dual bucket is an AND, not a max.
  atm::Qos q;
  q.pcr_bps = atm::kCellBits * 1'000'000'000ull / 1000;  // 1 per 1000 ns
  q.scr_bps = atm::kCellBits * 1'000'000'000ull / 2000;  // 1 per 2000 ns
  q.mbs_cells = 100;  // SCR slack is plentiful
  atm::DualGcra police(q, /*cdvt_ns=*/0);
  EXPECT_TRUE(police.police(sim::SimTime{}));
  EXPECT_FALSE(police.police(sim::SimTime{} + sim::nanoseconds(999)))
      << "closer than 1/PCR";
  EXPECT_TRUE(police.police(sim::SimTime{} + sim::nanoseconds(1000)));
}

// ===================================================================
// Raw-switch rig: one switch, N input ports, one bottleneck output.
// ===================================================================

/// Records every cell the output link delivers, with its arrival instant.
struct RecordSink final : atm::CellSink {
  explicit RecordSink(sim::Simulator& s) : sim(s) {}
  sim::Simulator& sim;
  std::vector<atm::Cell> cells;
  std::vector<std::int64_t> times_ns;
  void cell_arrival(const atm::Cell& c) override {
    cells.push_back(c);
    times_ns.push_back(sim.now().ns());
  }
  void cells_arrival(const atm::Cell* cs, std::size_t n) override {
    for (std::size_t i = 0; i < n; ++i) cell_arrival(cs[i]);
  }
  [[nodiscard]] std::uint64_t delivered(atm::Vci vci) const {
    std::uint64_t n = 0;
    for (const atm::Cell& c : cells) n += (c.vci == vci && !c.rm) ? 1 : 0;
    return n;
  }
};

/// One switch with `inputs` input ports (each behind its own fast link, so
/// sources do not serialize against each other) and one output port at
/// `out_rate_bps` with a buffer of `queue_cells`.
struct SwitchRig {
  sim::Simulator sim;
  atm::AtmSwitch sw;
  RecordSink sink;
  std::vector<std::unique_ptr<atm::CellLink>> in;
  std::unique_ptr<atm::CellLink> out;
  int p_out;

  explicit SwitchRig(std::uint64_t out_rate_bps, std::size_t queue_cells,
                     int inputs = 1,
                     sim::Simulator::Engine engine = sim::Simulator::Engine::pooled)
      : sim(engine), sw(sim, "uut", sim::microseconds(10), queue_cells),
        sink(sim) {
    for (int i = 0; i < inputs; ++i) {
      const int p = sw.add_port();
      in.push_back(std::make_unique<atm::CellLink>(
          sim, atm::kOc12Bps, sim::microseconds(5), sw.input(p)));
    }
    p_out = sw.add_port();
    out = std::make_unique<atm::CellLink>(sim, out_rate_bps,
                                          sim::microseconds(5), sink);
    sw.set_output(p_out, *out);
  }

  /// Route input port `i`'s `vci` to the bottleneck, keeping the VCI.
  void route(int i, atm::Vci vci, const atm::Qos& qos) {
    ASSERT_TRUE(sw.install_route(i, vci, p_out, vci, qos).ok());
  }

  /// Offer `n` cells on input `i`, one every `gap`, starting at `start`.
  void offer(int i, atm::Vci vci, int n, sim::SimDuration gap,
             sim::SimDuration start = {}) {
    atm::Cell cell;
    cell.vci = vci;
    for (int k = 0; k < n; ++k) {
      sim.schedule(start + gap * k, [this, i, cell] { in[size_t(i)]->send(cell); });
    }
  }

  [[nodiscard]] std::uint64_t discarded(atm::DiscardCause cause) const {
    std::uint64_t n = 0;
    for (int p = 0; p < sw.port_count(); ++p) n += sw.cells_discarded(p, cause);
    return n;
  }
  [[nodiscard]] std::uint64_t dropped_all_classes() const {
    std::uint64_t n = 0;
    for (int p = 0; p < sw.port_count(); ++p) {
      for (std::size_t c = 0; c < atm::kServiceClassCount; ++c) {
        n += sw.cells_dropped(p, static_cast<atm::ServiceClass>(c));
      }
    }
    return n;
  }
};

TEST(SwitchPolicing, GcraShedsAtIngressAndCountsExactly) {
  SwitchRig rig(atm::kDs3Bps, 2048);
  atm::Qos q;
  q.service_class = atm::ServiceClass::guaranteed;
  q.bandwidth_bps = 2'000'000;
  q.pcr_bps = 2'000'000;  // T_pcr = 212 us per cell
  rig.route(0, 100, q);
  // 500 cells at 10 us spacing: ~21x the peak rate.
  rig.offer(0, 100, 500, sim::microseconds(10));
  rig.sim.run();

  const std::uint64_t policed = rig.discarded(atm::DiscardCause::policed);
  EXPECT_GT(policed, 400u) << "most of a 21x burst must be non-conforming";
  EXPECT_EQ(policed + rig.sink.delivered(100), 500u)
      << "every cell is either policed or delivered";
  // Policing drops are charged at the ingress port, no other cause fires.
  EXPECT_GT(rig.sw.cells_discarded(0, atm::DiscardCause::policed), 0u);
  EXPECT_EQ(rig.discarded(atm::DiscardCause::overflow), 0u);
  EXPECT_EQ(rig.discarded(atm::DiscardCause::epd), 0u);
  EXPECT_EQ(rig.discarded(atm::DiscardCause::ppd), 0u);
  // Exactly one cause counter per drop: causes and classes must sum equal.
  EXPECT_EQ(rig.discarded(atm::DiscardCause::policed), rig.dropped_all_classes());
}

TEST(SwitchPolicing, ConformingTrafficPassesUntouched) {
  SwitchRig rig(atm::kDs3Bps, 2048);
  atm::Qos q;
  q.service_class = atm::ServiceClass::guaranteed;
  q.bandwidth_bps = 2'000'000;
  q.pcr_bps = 2'000'000;
  rig.route(0, 100, q);
  // Offered exactly at PCR spacing (212 us > T_pcr cushion: use 250 us).
  rig.offer(0, 100, 200, sim::microseconds(250));
  rig.sim.run();
  EXPECT_EQ(rig.sink.delivered(100), 200u);
  EXPECT_EQ(rig.dropped_all_classes(), 0u);
}

TEST(SwitchPolicing, RouteWithoutDescriptorsIsNeverPoliced) {
  SwitchRig rig(atm::kDs3Bps, 1u << 15);
  atm::Qos q;
  q.service_class = atm::ServiceClass::guaranteed;
  q.bandwidth_bps = 2'000'000;  // reservation but no PCR/SCR
  rig.route(0, 100, q);
  rig.offer(0, 100, 500, sim::microseconds(10));  // same 21x burst
  rig.sim.run();
  EXPECT_EQ(rig.sink.delivered(100), 500u);
  EXPECT_EQ(rig.discarded(atm::DiscardCause::policed), 0u);
}

// ===================================================================
// Weighted-fair queueing within a band, strict priority across bands.
// ===================================================================

/// Jain's fairness index over per-flow goodput: 1.0 = perfectly even.
double jain_index(const std::vector<std::uint64_t>& x) {
  double sum = 0, sum_sq = 0;
  for (std::uint64_t v : x) {
    sum += double(v);
    sum_sq += double(v) * double(v);
  }
  return sum * sum / (double(x.size()) * sum_sq);
}

TEST(WfqScheduling, EqualWeightFlowsShareTheBottleneckFairly) {
  // Three UBR flows, each offered ~2 Mb/s into a 3 Mb/s bottleneck: 2x
  // aggregate overload, identical weights.
  SwitchRig rig(3'000'000, 256, 3);
  for (int i = 0; i < 3; ++i) {
    rig.route(i, atm::Vci(100 + i), atm::Qos{});
    rig.offer(i, atm::Vci(100 + i), 4000, sim::microseconds(212));
  }
  rig.sim.run();
  std::vector<std::uint64_t> goodput;
  for (int i = 0; i < 3; ++i) goodput.push_back(rig.sink.delivered(atm::Vci(100 + i)));
  for (std::uint64_t g : goodput) EXPECT_GT(g, 0u);
  EXPECT_GE(jain_index(goodput), 0.98)
      << goodput[0] << " / " << goodput[1] << " / " << goodput[2];
}

TEST(WfqScheduling, ReservationWeightsSplitTwoToOne) {
  // Two guaranteed flows reserving 2 Mb/s and 1 Mb/s on a 3 Mb/s trunk,
  // both offered ~3 Mb/s: the scheduler must hold goodput at the 2:1
  // reserved ratio, not the 1:1 arrival ratio.
  SwitchRig rig(3'000'000, 256, 2);
  atm::Qos qa;
  qa.service_class = atm::ServiceClass::guaranteed;
  qa.bandwidth_bps = 2'000'000;
  atm::Qos qb = qa;
  qb.bandwidth_bps = 1'000'000;
  rig.route(0, 100, qa);
  rig.route(1, 101, qb);
  rig.offer(0, 100, 7000, sim::microseconds(141));
  rig.offer(1, 101, 7000, sim::microseconds(141));
  rig.sim.run();
  const double a = double(rig.sink.delivered(100));
  const double b = double(rig.sink.delivered(101));
  ASSERT_GT(b, 0.0);
  EXPECT_NEAR(a / b, 2.0, 0.1) << "a=" << a << " b=" << b;
}

TEST(WfqScheduling, StrictPriorityProtectsGuaranteedFromUbrFlood) {
  SwitchRig rig(3'000'000, 256, 2);
  atm::Qos g;
  g.service_class = atm::ServiceClass::guaranteed;
  g.bandwidth_bps = 1'000'000;
  rig.route(0, 100, g);
  rig.route(1, 200, atm::Qos{});
  // Guaranteed offered within its reservation; UBR offered at 2x the trunk.
  rig.offer(0, 100, 2000, sim::microseconds(424));    // ~1 Mb/s
  rig.offer(1, 200, 12000, sim::microseconds(70));    // ~6 Mb/s
  rig.sim.run();
  EXPECT_EQ(rig.sink.delivered(100), 2000u) << "guaranteed must not lose a cell";
  EXPECT_LT(rig.sink.delivered(200), 12000u) << "UBR must shed";
  std::uint64_t g_drops = 0;
  for (int p = 0; p < rig.sw.port_count(); ++p) {
    g_drops += rig.sw.cells_dropped(p, atm::ServiceClass::guaranteed);
  }
  EXPECT_EQ(g_drops, 0u);
}

TEST(WfqScheduling, PushOutEvictsLowerBandForReservedArrivals) {
  // Fill the buffer entirely with UBR, then arrive guaranteed: push-out
  // must evict UBR cells (counted under UBR/overflow), never drop the
  // reserved arrivals.
  SwitchRig rig(1'000'000, 64, 2);
  atm::Qos g;
  g.service_class = atm::ServiceClass::guaranteed;
  g.bandwidth_bps = 900'000;
  rig.route(0, 100, g);
  rig.route(1, 200, atm::Qos{});
  rig.offer(1, 200, 300, sim::microseconds(10));  // instant UBR pile-up
  rig.offer(0, 100, 100, sim::microseconds(470), sim::milliseconds(5));
  rig.sim.run();
  EXPECT_EQ(rig.sink.delivered(100), 100u);
  std::uint64_t ubr_drops = 0, g_drops = 0;
  for (int p = 0; p < rig.sw.port_count(); ++p) {
    ubr_drops += rig.sw.cells_dropped(p, atm::ServiceClass::best_effort);
    g_drops += rig.sw.cells_dropped(p, atm::ServiceClass::guaranteed);
  }
  EXPECT_GT(ubr_drops, 0u);
  EXPECT_EQ(g_drops, 0u);
  EXPECT_EQ(rig.discarded(atm::DiscardCause::overflow), ubr_drops);
}

TEST(WfqScheduling, TailDropPolicyDoesNotProtectReservations) {
  // Like the push-out test, but under tail_drop a *sustained* UBR flood
  // holds the buffer: every slot the drain frees is re-taken by a UBR
  // arrival (10 us apart) long before the next guaranteed cell (430 us
  // apart), so reserved arrivals meet a full queue and are dropped too.
  // Shedding really is a policy, not hardwired behaviour.
  SwitchRig rig(1'000'000, 64, 2);
  rig.sw.set_discard_policy(atm::DiscardPolicy::tail_drop);
  atm::Qos g;
  g.service_class = atm::ServiceClass::guaranteed;
  g.bandwidth_bps = 900'000;
  rig.route(0, 100, g);
  rig.route(1, 200, atm::Qos{});
  rig.offer(1, 200, 5000, sim::microseconds(10));  // flood spans 50 ms
  rig.offer(0, 100, 100, sim::microseconds(430), sim::milliseconds(5));
  rig.sim.run();
  EXPECT_LT(rig.sink.delivered(100), 100u);
  std::uint64_t g_drops = 0;
  for (int p = 0; p < rig.sw.port_count(); ++p) {
    g_drops += rig.sw.cells_dropped(p, atm::ServiceClass::guaranteed);
  }
  EXPECT_GT(g_drops, 0u);
  EXPECT_EQ(rig.discarded(atm::DiscardCause::overflow),
            rig.dropped_all_classes());
}

// ===================================================================
// Frame-aware discard: EPD drops whole frames, PPD amputates ruined ones.
// ===================================================================

TEST(FrameDiscard, EpdDropsWholeFramesNeverShredsThem) {
  // Queue of 64 cells, EPD threshold at 48: 10-cell frames from a single
  // VC can never overflow mid-frame (48 + 10 < 64), so every loss is a
  // whole frame refused at its first cell.  The receiver must see clean
  // sequence gaps only — zero CRC or length failures.
  SwitchRig rig(3'000'000, 64);
  rig.sw.set_discard_policy(atm::DiscardPolicy::epd_ppd);
  rig.route(0, 100, atm::Qos{});

  atm::Aal5Segmenter seg;
  const util::Buffer payload(472, 0xED);  // exactly 10 cells
  for (int f = 0; f < 400; ++f) {
    rig.sim.schedule(sim::microseconds(500) * f, [&rig, &seg, &payload] {
      auto cells = seg.segment(100, {payload.data(), payload.size()});
      ASSERT_TRUE(cells.ok());
      for (const atm::Cell& c : *cells) rig.in[0]->send(c);
    });
  }
  rig.sim.run();

  const std::uint64_t epd = rig.discarded(atm::DiscardCause::epd);
  EXPECT_GT(epd, 0u) << "2.8x overload must trigger EPD";
  EXPECT_EQ(epd % 10, 0u) << "EPD discards whole 10-cell frames";
  EXPECT_EQ(rig.discarded(atm::DiscardCause::overflow), 0u)
      << "the EPD headroom must absorb every accepted frame";
  EXPECT_EQ(rig.discarded(atm::DiscardCause::ppd), 0u);

  std::uint64_t delivered_frames = 0;
  atm::Aal5Reassembler reasm([&](atm::Aal5Frame f) {
    ++delivered_frames;
    EXPECT_EQ(f.payload.size(), 472u);
  });
  for (const atm::Cell& c : rig.sink.cells) reasm.cell_arrival(c);
  EXPECT_GT(delivered_frames, 0u);
  // An intact frame right after an EPD gap is consumed by the Xunet
  // sequence check (out_of_order) rather than delivered — that is the
  // receiver *detecting* the gap.  Every frame is therefore delivered
  // whole, counted as a clean gap, or dropped whole at the switch.
  const std::uint64_t gaps = reasm.error_count(atm::Aal5Error::out_of_order);
  EXPECT_EQ(delivered_frames + gaps + epd / 10, 400u)
      << "every frame is delivered whole or dropped whole";
  EXPECT_EQ(reasm.error_count(atm::Aal5Error::crc_mismatch), 0u);
  EXPECT_EQ(reasm.error_count(atm::Aal5Error::length_mismatch), 0u);
}

TEST(FrameDiscard, PpdAmputatesRuinedFramesAndResynchronizes) {
  // Two VCs of 30-cell frames can both start below the EPD threshold and
  // jointly overflow the 64-cell buffer mid-frame: partial packet discard
  // must amputate the rest of each ruined frame, and the delimiter
  // discipline must let later frames reassemble.
  SwitchRig rig(3'000'000, 64, 2);
  rig.sw.set_discard_policy(atm::DiscardPolicy::epd_ppd);
  rig.route(0, 100, atm::Qos{});
  rig.route(1, 101, atm::Qos{});

  atm::Aal5Segmenter seg_a, seg_b;
  const util::Buffer payload(1432, 0x9D);  // exactly 30 cells
  for (int f = 0; f < 150; ++f) {
    rig.sim.schedule(sim::microseconds(800) * f, [&rig, &seg_a, &payload] {
      auto cells = seg_a.segment(100, {payload.data(), payload.size()});
      ASSERT_TRUE(cells.ok());
      for (const atm::Cell& c : *cells) rig.in[0]->send(c);
    });
    rig.sim.schedule(sim::microseconds(800) * f, [&rig, &seg_b, &payload] {
      auto cells = seg_b.segment(101, {payload.data(), payload.size()});
      ASSERT_TRUE(cells.ok());
      for (const atm::Cell& c : *cells) rig.in[1]->send(c);
    });
  }
  rig.sim.run();

  EXPECT_GT(rig.discarded(atm::DiscardCause::ppd), 0u)
      << "mid-frame overflow must trigger PPD";
  EXPECT_GT(rig.discarded(atm::DiscardCause::overflow), 0u)
      << "PPD is triggered BY an overflow loss";
  const std::size_t storm_cells = rig.sink.cells.size();

  // During the storm the EOF delimiter of a ruined frame is itself lost to
  // overflow, so the receiver's partial never closes — the damage is only
  // *detectable* once a later delimiter arrives.  Flush each VC with three
  // clean, uncontended frames: the first closes the merged wreckage (CRC
  // mismatch), the second is intact but lands on the sequence gap
  // (out_of_order, resynchronizing the VC), the third must be delivered.
  for (int k = 0; k < 3; ++k) {
    rig.sim.schedule(sim::milliseconds(10) * (k + 1), [&rig, &seg_a, &payload] {
      auto cells = seg_a.segment(100, {payload.data(), payload.size()});
      ASSERT_TRUE(cells.ok());
      for (const atm::Cell& c : *cells) rig.in[0]->send(c);
    });
    rig.sim.schedule(sim::milliseconds(10) * (k + 1), [&rig, &seg_b, &payload] {
      auto cells = seg_b.segment(101, {payload.data(), payload.size()});
      ASSERT_TRUE(cells.ok());
      for (const atm::Cell& c : *cells) rig.in[1]->send(c);
    });
  }
  rig.sim.run();

  std::uint64_t delivered_frames = 0;
  atm::Aal5Reassembler reasm([&](atm::Aal5Frame f) {
    ++delivered_frames;
    // A delivered frame passed CRC: PPD never leaks a truncated frame as
    // valid.
    EXPECT_EQ(f.payload.size(), 1432u);
  });
  for (std::size_t i = 0; i < storm_cells; ++i) {
    reasm.cell_arrival(rig.sink.cells[i]);
  }
  const std::uint64_t during_storm = delivered_frames;
  for (std::size_t i = storm_cells; i < rig.sink.cells.size(); ++i) {
    reasm.cell_arrival(rig.sink.cells[i]);
  }
  EXPECT_GT(reasm.error_count(atm::Aal5Error::crc_mismatch), 0u)
      << "ruined frames are detected, not silently lost";
  EXPECT_GT(delivered_frames, during_storm)
      << "each VC must resynchronize and deliver the final clean frame";
}

TEST(FrameDiscard, EveryDropIncrementsExactlyOneCauseCounter) {
  // Mixed pathology run: policing + EPD/PPD + overflow all firing at once.
  // The per-cause counters partition the per-class totals exactly.
  SwitchRig rig(2'000'000, 64, 2);
  rig.sw.set_discard_policy(atm::DiscardPolicy::epd_ppd);
  atm::Qos policed;
  policed.service_class = atm::ServiceClass::predicted;
  policed.bandwidth_bps = 1'000'000;
  policed.pcr_bps = 1'000'000;
  rig.route(0, 100, policed);
  rig.route(1, 101, atm::Qos{});
  atm::Aal5Segmenter seg;
  const util::Buffer payload(1432, 0x77);
  for (int f = 0; f < 100; ++f) {
    rig.sim.schedule(sim::microseconds(600) * f, [&rig, &seg, &payload] {
      auto cells = seg.segment(101, {payload.data(), payload.size()});
      ASSERT_TRUE(cells.ok());
      for (const atm::Cell& c : *cells) rig.in[1]->send(c);
    });
  }
  rig.offer(0, 100, 2000, sim::microseconds(30));
  rig.sim.run();
  const std::uint64_t causes =
      rig.discarded(atm::DiscardCause::policed) +
      rig.discarded(atm::DiscardCause::epd) +
      rig.discarded(atm::DiscardCause::ppd) +
      rig.discarded(atm::DiscardCause::overflow);
  EXPECT_GT(rig.discarded(atm::DiscardCause::policed), 0u);
  EXPECT_GT(rig.discarded(atm::DiscardCause::epd), 0u);
  EXPECT_EQ(causes, rig.dropped_all_classes());
}

// ===================================================================
// ABR rate feedback through RM cells.
// ===================================================================

TEST(Abr, SwitchStampsFairShareIntoForwardRmCells) {
  SwitchRig rig(10'000'000, 2048, 2);
  atm::Qos abr;
  abr.service_class = atm::ServiceClass::abr;
  abr.bandwidth_bps = 2'000'000;  // MCR reservation
  rig.route(0, 100, abr);
  rig.route(1, 101, abr);
  ASSERT_EQ(rig.sw.abr_route_count(rig.p_out), 2u);
  // Fair share = (10 - 2*2) Mb/s unreserved, split over two ABR VCs = 3 Mb/s.
  atm::Cell rm;
  rm.vci = 100;
  rm.rm = true;
  rm.er_bps = 45'000'000;  // the source asks for everything
  rig.sim.schedule(sim::SimDuration{}, [&] { rig.in[0]->send(rm); });
  rig.sim.run();
  ASSERT_EQ(rig.sink.cells.size(), 1u);
  EXPECT_TRUE(rig.sink.cells[0].rm);
  EXPECT_EQ(rig.sink.cells[0].er_bps, 3'000'000u);
  EXPECT_FALSE(rig.sink.cells[0].ci) << "empty queue must not signal congestion";
}

TEST(Abr, CongestionBitSetWhenQueueCrossesQuarter) {
  SwitchRig rig(1'000'000, 256, 2);
  atm::Qos abr;
  abr.service_class = atm::ServiceClass::abr;
  abr.bandwidth_bps = 100'000;
  rig.route(0, 100, abr);
  rig.route(1, 200, atm::Qos{});
  // Pile >64 UBR cells into the 256-cell buffer, then pass an RM cell.
  rig.offer(1, 200, 200, sim::microseconds(5));
  atm::Cell rm;
  rm.vci = 100;
  rm.rm = true;
  rig.sim.schedule(sim::milliseconds(2), [&] { rig.in[0]->send(rm); });
  rig.sim.run();
  const atm::Cell* out_rm = nullptr;
  for (const atm::Cell& c : rig.sink.cells) {
    if (c.rm) out_rm = &c;
  }
  ASSERT_NE(out_rm, nullptr);
  EXPECT_TRUE(out_rm->ci);
}

TEST(Abr, RmCellsAreExemptFromPolicing) {
  SwitchRig rig(atm::kDs3Bps, 2048);
  atm::Qos q;
  q.service_class = atm::ServiceClass::abr;
  q.bandwidth_bps = 1'000'000;
  q.pcr_bps = 1'000'000;
  rig.route(0, 100, q);
  // 50 RM cells back-to-back: all must pass even though the data policer
  // would reject this spacing.
  for (int k = 0; k < 50; ++k) {
    rig.sim.schedule(sim::microseconds(k), [&rig] {
      atm::Cell rm;
      rm.vci = 100;
      rm.rm = true;
      rig.in[0]->send(rm);
    });
  }
  rig.sim.run();
  std::uint64_t rm_out = 0;
  for (const atm::Cell& c : rig.sink.cells) rm_out += c.rm ? 1 : 0;
  EXPECT_EQ(rm_out, 50u);
  EXPECT_EQ(rig.discarded(atm::DiscardCause::policed), 0u);
}

TEST(Abr, SourceConvergesToTheStampedExplicitRate) {
  // Closed loop: source -> switch (5 Mb/s bottleneck) -> destination
  // turnaround -> switch -> back to the source.  The source starts at
  // ICR = PCR/16 and must converge to exactly the fair share the
  // bottleneck stamps: (5 - 1) Mb/s unreserved / 1 ABR VC = 4 Mb/s.
  sim::Simulator sim;
  atm::AtmSwitch sw(sim, "loop", sim::microseconds(10), 2048);
  const int p_src_in = sw.add_port();
  const int p_dst_out = sw.add_port();
  const int p_dst_in = sw.add_port();
  const int p_src_out = sw.add_port();

  RecordSink dst_data(sim);
  struct RmDispatch final : atm::CellSink {
    std::function<void(const atm::Cell&)> fn;
    void cell_arrival(const atm::Cell& c) override { fn(c); }
  };

  atm::CellLink src_up(sim, atm::kDs3Bps, sim::microseconds(5), sw.input(p_src_in));
  RmDispatch dst_sink;
  atm::CellLink to_dst(sim, 5'000'000, sim::microseconds(5), dst_sink);
  sw.set_output(p_dst_out, to_dst);
  atm::CellLink dst_up(sim, atm::kDs3Bps, sim::microseconds(5), sw.input(p_dst_in));
  RmDispatch src_sink;
  atm::CellLink to_src(sim, atm::kDs3Bps, sim::microseconds(5), src_sink);
  sw.set_output(p_src_out, to_src);

  atm::Qos abr;
  abr.service_class = atm::ServiceClass::abr;
  abr.bandwidth_bps = 1'000'000;  // MCR
  ASSERT_TRUE(sw.install_route(p_src_in, 100, p_dst_out, 100, abr).ok());
  ASSERT_TRUE(sw.install_route(p_dst_in, 300, p_src_out, 300, atm::Qos{}).ok());

  atm::AbrParams params;
  params.pcr_bps = atm::kDs3Bps;
  params.mcr_bps = 1'000'000;
  atm::AbrSource src(sim, src_up, 100, params);
  atm::AbrTurnaround turnaround(dst_up, 300);
  dst_sink.fn = [&](const atm::Cell& c) {
    if (c.rm) {
      turnaround.on_rm(c);
    } else {
      dst_data.cell_arrival(c);
    }
  };
  src_sink.fn = [&](const atm::Cell& c) { src.on_backward_rm(c); };

  // Offer 10 Mb/s worth of data for half a second: twice what the loop
  // will allow through.
  atm::Cell data;
  data.vci = 100;
  for (int k = 0; k < 12'000; ++k) {
    sim.schedule(sim::nanoseconds(42'400) * k, [&src, data] { src.submit(data); });
  }
  sim.run_for(sim::seconds(1));

  EXPECT_GT(src.rm_sent(), 0u);
  EXPECT_GT(src.rm_received(), 0u);
  EXPECT_EQ(turnaround.turned_around(), src.rm_received());
  EXPECT_EQ(src.acr_bps(), 4'000'000u)
      << "ACR must pin to the stamped explicit rate";
  EXPECT_GT(dst_data.cells.size(), 0u);
  // Goodput stays at/below the allowed rate (4 Mb/s of cells over the time
  // actually spent transmitting), far below the 10 Mb/s offered.
  EXPECT_LT(dst_data.cells.size(), 10'000u);
}

// ===================================================================
// Determinism: the full scheduling/policing pipeline replays
// byte-identically across runs and event engines.
// ===================================================================

std::string scheduler_transcript(sim::Simulator::Engine engine) {
  SwitchRig rig(3'000'000, 128, 3, engine);
  rig.sw.set_discard_policy(atm::DiscardPolicy::epd_ppd);
  atm::Qos g;
  g.service_class = atm::ServiceClass::guaranteed;
  g.bandwidth_bps = 1'000'000;
  g.pcr_bps = 2'000'000;
  atm::Qos p;
  p.service_class = atm::ServiceClass::predicted;
  p.bandwidth_bps = 500'000;
  rig.route(0, 100, g);
  rig.route(1, 101, p);
  rig.route(2, 102, atm::Qos{});
  rig.offer(0, 100, 1500, sim::microseconds(150));
  rig.offer(1, 101, 1500, sim::microseconds(170));
  rig.offer(2, 102, 3000, sim::microseconds(60));
  rig.sim.run();

  std::string t;
  t.reserve(rig.sink.cells.size() * 24);
  for (std::size_t i = 0; i < rig.sink.cells.size(); ++i) {
    t += std::to_string(rig.sink.times_ns[i]);
    t += ':';
    t += std::to_string(rig.sink.cells[i].vci);
    t += rig.sink.cells[i].end_of_frame ? "E;" : ";";
  }
  for (std::size_t c = 0; c < atm::kDiscardCauseCount; ++c) {
    t += '|';
    t += std::to_string(rig.discarded(static_cast<atm::DiscardCause>(c)));
  }
  t += '|' + std::to_string(rig.sw.cells_switched());
  return t;
}

TEST(QosDeterminism, SchedulerReplayIsByteIdenticalAcrossEngines) {
  const std::string pooled = scheduler_transcript(sim::Simulator::Engine::pooled);
  const std::string legacy =
      scheduler_transcript(sim::Simulator::Engine::legacy_heap);
  ASSERT_GT(pooled.size(), 1000u) << "transcript suspiciously small";
  EXPECT_EQ(pooled, legacy);
}

TEST(QosDeterminism, SchedulerReplayIsByteIdenticalAcrossRuns) {
  EXPECT_EQ(scheduler_transcript(sim::Simulator::Engine::pooled),
            scheduler_transcript(sim::Simulator::Engine::pooled));
}

}  // namespace
}  // namespace xunet
