// qos_sched_test.cpp — class-based output scheduling at the switches (the
// ref [17]/[18] future-work direction): under trunk congestion, guaranteed
// traffic keeps its reserved bandwidth while best-effort overflow is
// dropped at the bounded port queue.
#include <gtest/gtest.h>

#include "core/apps.hpp"
#include "core/testbed.hpp"

namespace xunet {
namespace {

using core::CallClient;
using core::CallServer;
using core::Testbed;

/// Topology with a shared bottleneck: routers src-a.rt and src-b.rt both on
/// switch s1; sink.rt on s2; the single s1→s2 DS3 trunk carries both flows.
struct CongestionRig {
  std::unique_ptr<Testbed> tb;
  atm::AtmSwitch* s1 = nullptr;
  std::unique_ptr<CallServer> sink_g, sink_b;
  std::unique_ptr<CallClient> ca, cb;
  std::optional<CallClient::Call> call_g, call_b;

  CongestionRig() {
    core::TestbedConfig cfg;
    cfg.kernel.fd_table_size = 100;
    tb = std::make_unique<Testbed>(cfg);
    s1 = &tb->add_switch("s1");
    auto& s2 = tb->add_switch("s2");
    tb->connect_switches(*s1, s2);
    tb->add_router("src-a.rt", ip::make_ip(10, 1, 0, 1), *s1);
    tb->add_router("src-b.rt", ip::make_ip(10, 2, 0, 1), *s1);
    tb->add_router("sink.rt", ip::make_ip(10, 3, 0, 1), s2);
    EXPECT_TRUE(tb->bring_up().ok());

    auto& sink = tb->router(2);
    sink_g = std::make_unique<CallServer>(
        *sink.kernel, sink.kernel->ip_node().address(), "sink-g", 6000);
    sink_b = std::make_unique<CallServer>(
        *sink.kernel, sink.kernel->ip_node().address(), "sink-b", 6001);
    sink_g->set_qos_limit(atm::Qos{atm::ServiceClass::guaranteed, 45'000'000});
    sink_g->start([](util::Result<void>) {});
    sink_b->start([](util::Result<void>) {});
    tb->sim().run_for(sim::milliseconds(500));

    ca = std::make_unique<CallClient>(*tb->router(0).kernel,
                                      tb->router(0).kernel->ip_node().address());
    cb = std::make_unique<CallClient>(*tb->router(1).kernel,
                                      tb->router(1).kernel->ip_node().address());
    ca->open("sink.rt", "sink-g", "class=guaranteed,bw=20000000",
             [&](util::Result<CallClient::Call> r) {
               ASSERT_TRUE(r.ok());
               call_g = *r;
             });
    cb->open("sink.rt", "sink-b", "class=best_effort,bw=0",
             [&](util::Result<CallClient::Call> r) {
               ASSERT_TRUE(r.ok());
               call_b = *r;
             });
    tb->sim().run_for(sim::seconds(3));
    EXPECT_TRUE(call_g.has_value());
    EXPECT_TRUE(call_b.has_value());
  }

  /// Drive both flows for one simulated second at the given frame rates
  /// (frames of `size` bytes, spread evenly).
  void blast(int frames_g, int frames_b, std::size_t size) {
    for (int i = 0; i < std::max(frames_g, frames_b); ++i) {
      if (i < frames_g) {
        tb->sim().schedule(
            sim::seconds_f(double(i) / frames_g),
            [this, size] { (void)ca->send(*call_g, util::Buffer(size, 0x60)); });
      }
      if (i < frames_b) {
        tb->sim().schedule(
            sim::seconds_f(double(i) / frames_b),
            [this, size] { (void)cb->send(*call_b, util::Buffer(size, 0x0B)); });
      }
    }
    tb->sim().run_for(sim::seconds(3));
  }
};

TEST(QosScheduling, GuaranteedTrafficSurvivesCongestion) {
  CongestionRig rig;
  // Offered: guaranteed 20 Mb/s + best effort 40 Mb/s into a 45 Mb/s trunk
  // (with the 53/48 cell tax the trunk carries ~40.8 Mb/s of payload).
  const std::size_t size = 8000;
  const int g_frames = 312;  // ≈20 Mb/s
  const int b_frames = 625;  // ≈40 Mb/s
  rig.blast(g_frames, b_frames, size);

  double g_rate = rig.sink_g->bytes_received() * 8.0 / 1e6;
  double b_rate = rig.sink_b->bytes_received() * 8.0 / 1e6;
  // The guaranteed flow gets essentially everything it sent...
  EXPECT_GT(rig.sink_g->frames_received(), g_frames * 95 / 100);
  // ...while best effort bears all the loss.
  EXPECT_LT(rig.sink_b->frames_received(), static_cast<std::uint64_t>(b_frames));
  EXPECT_GT(g_rate, 19.0);
  EXPECT_LT(b_rate, 25.0);
  // The drops happened at the congested trunk port, best-effort class only.
  std::uint64_t be_drops = 0, g_drops = 0;
  for (int p = 0; p < rig.s1->port_count(); ++p) {
    be_drops += rig.s1->cells_dropped(p, atm::ServiceClass::best_effort);
    g_drops += rig.s1->cells_dropped(p, atm::ServiceClass::guaranteed);
  }
  EXPECT_GT(be_drops, 0u);
  EXPECT_EQ(g_drops, 0u);
}

TEST(QosScheduling, UncongestedBestEffortIsUnharmed) {
  CongestionRig rig;
  // Offered well under the trunk rate: nobody drops.
  rig.blast(100, 100, 4000);  // ~3.2 Mb/s each
  EXPECT_EQ(rig.sink_g->frames_received(), 100u);
  EXPECT_EQ(rig.sink_b->frames_received(), 100u);
  std::uint64_t drops = 0;
  for (int p = 0; p < rig.s1->port_count(); ++p) {
    for (auto c : {atm::ServiceClass::best_effort, atm::ServiceClass::predicted,
                   atm::ServiceClass::guaranteed}) {
      drops += rig.s1->cells_dropped(p, c);
    }
  }
  EXPECT_EQ(drops, 0u);
}

TEST(QosScheduling, QueuesDrainAfterTheBurst) {
  CongestionRig rig;
  rig.blast(200, 400, 8000);
  rig.tb->sim().run_for(sim::seconds(5));
  for (int p = 0; p < rig.s1->port_count(); ++p) {
    EXPECT_EQ(rig.s1->queue_depth(p), 0u) << "port " << p;
  }
}

}  // namespace
}  // namespace xunet
