// obs_test.cpp — the observability subsystem: trace buffer, metrics
// registry, exporters, the §9 breakdown report, the causal cross-hop call
// tree, the flight recorder, the health monitor, the bounded-memory
// quantile sketch, and the determinism guarantee (two identically-seeded
// runs produce byte-identical traces, waterfalls, dumps and alert streams).
#include <gtest/gtest.h>

#include <random>

#include "core/apps.hpp"
#include "core/testbed.hpp"
#include "fault/fault.hpp"
#include "obs/calltrace.hpp"
#include "obs/export.hpp"
#include "obs/health.hpp"
#include "obs/report.hpp"
#include "util/alloc_hook.hpp"
#include "util/logging.hpp"
#include "util/stats.hpp"

namespace xunet {
namespace {

using core::CallClient;
using core::CallServer;
using core::Testbed;
using core::TestbedConfig;

// ---------------------------------------------------------------- TraceBuffer

TEST(TraceBuffer, SpanNestingTracksDepthPerTrack) {
  obs::TraceBuffer buf;
  buf.set_enabled(true);
  obs::SpanId outer = buf.begin(sim::SimTime{}, "sighost", "call.setup", "mh.rt");
  obs::SpanId inner =
      buf.begin(sim::SimTime{} + sim::milliseconds(1), "sighost", "maint.log", "mh.rt");
  EXPECT_EQ(buf.open_spans("mh.rt"), 2u);
  EXPECT_EQ(buf.max_depth("mh.rt"), 2u);
  buf.end(sim::SimTime{} + sim::milliseconds(2), inner);
  buf.end(sim::SimTime{} + sim::milliseconds(3), outer);
  EXPECT_EQ(buf.open_spans("mh.rt"), 0u);
  EXPECT_EQ(buf.max_depth("mh.rt"), 2u);  // high-water mark survives
  EXPECT_EQ(buf.max_depth("berkeley.rt"), 0u);
  EXPECT_EQ(buf.size(), 4u);
}

TEST(TraceBuffer, EndIgnoresInvalidAndUnknownSpans) {
  obs::TraceBuffer buf;
  buf.set_enabled(true);
  buf.end(sim::SimTime{}, obs::kInvalidSpan);
  buf.end(sim::SimTime{}, 12345);  // never begun
  EXPECT_EQ(buf.size(), 0u);
}

TEST(TraceBuffer, DisabledBufferRecordsNothing) {
  obs::TraceBuffer buf;
  EXPECT_FALSE(buf.enabled());
  buf.instant(sim::SimTime{}, "kern", "xunet.send", "mh.rt");
  EXPECT_EQ(buf.begin(sim::SimTime{}, "stub", "call.open", "mh.rt"),
            obs::kInvalidSpan);
  EXPECT_EQ(buf.size(), 0u);
}

TEST(TraceBuffer, CapacityBoundsTheBufferAndCountsDrops) {
  obs::TraceBuffer buf;
  buf.set_enabled(true);
  buf.set_capacity(4);
  for (int i = 0; i < 10; ++i) {
    buf.instant(sim::SimTime{} + sim::microseconds(i), "kern", "tick", "mh.rt");
  }
  EXPECT_EQ(buf.size(), 4u);
  EXPECT_EQ(buf.dropped(), 6u);
}

TEST(TraceBuffer, AnnotateCallPatchesTheBeginEvent) {
  obs::TraceBuffer buf;
  buf.set_enabled(true);
  obs::SpanId s = buf.begin(sim::SimTime{}, "stub", "call.open", "mh.rt");
  buf.annotate_call(s, "mh.rt#7");
  ASSERT_EQ(buf.size(), 1u);
  EXPECT_EQ(buf.events()[0].ids.call_id, "mh.rt#7");
  buf.annotate_call(obs::kInvalidSpan, "nope");  // must not crash
}

// Regression pin: clear() must rewind *all* book-keeping — events, the drop
// count, the open-span index, depth high-water marks, and the span/trace id
// counters — so a reused buffer replays byte-identically.  (The original
// clear() left dropped_/open_/depth_/next_span_ behind.)
TEST(TraceBuffer, ClearRewindsEveryCounterForByteIdenticalReuse) {
  obs::TraceBuffer buf;
  buf.set_enabled(true);
  buf.set_capacity(2);
  obs::SpanId first = buf.begin(sim::SimTime{}, "sighost", "call.setup", "mh.rt");
  std::uint64_t first_trace = buf.new_trace();
  EXPECT_EQ(first, 1u);
  EXPECT_EQ(first_trace, 1u);
  buf.instant(sim::SimTime{} + sim::microseconds(1), "kern", "tick", "mh.rt");
  buf.instant(sim::SimTime{} + sim::microseconds(2), "kern", "tick", "mh.rt");
  EXPECT_GT(buf.dropped(), 0u);
  EXPECT_EQ(buf.open_spans("mh.rt"), 1u);
  EXPECT_EQ(buf.max_depth("mh.rt"), 1u);

  buf.clear();

  EXPECT_EQ(buf.size(), 0u);
  EXPECT_EQ(buf.dropped(), 0u);
  EXPECT_EQ(buf.open_spans("mh.rt"), 0u);
  EXPECT_EQ(buf.max_depth("mh.rt"), 0u);
  EXPECT_TRUE(buf.enabled());          // configuration survives
  EXPECT_EQ(buf.capacity(), 2u);
  // Replay mints the identical ids a fresh buffer would.
  EXPECT_EQ(buf.begin(sim::SimTime{}, "sighost", "call.setup", "mh.rt"), first);
  EXPECT_EQ(buf.new_trace(), first_trace);
}

// ------------------------------------------------------------------- Metrics

TEST(Metrics, CounterGaugeHistogramRoundTrip) {
  obs::MetricsRegistry mx;
  obs::Counter& c = mx.counter("kern.mh.rt.xunet.tx");
  c.inc();
  c.inc(4);
  EXPECT_EQ(mx.counter_value("kern.mh.rt.xunet.tx"), 5u);
  EXPECT_EQ(mx.counter_value("never.touched"), 0u);

  obs::Gauge& g = mx.gauge("sighost.mh.rt.list.incoming");
  g.set(3);
  g.add(-1);
  EXPECT_EQ(mx.gauge_value("sighost.mh.rt.list.incoming"), 2);

  obs::Histogram& h = mx.histogram("sighost.mh.rt.setup.latency_us");
  for (int i = 1; i <= 100; ++i) h.observe(static_cast<double>(i));
  const util::Summary* s = mx.histogram_summary("sighost.mh.rt.setup.latency_us");
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(s->count(), 100u);
  EXPECT_DOUBLE_EQ(s->mean(), 50.5);
  EXPECT_NEAR(s->percentile(50.0), 50.5, 0.6);
  EXPECT_NEAR(s->percentile(99.0), 99.0, 1.1);
  EXPECT_EQ(mx.histogram_summary("never.touched"), nullptr);
}

TEST(Metrics, ReferencesAreStableAcrossLaterRegistrations) {
  obs::MetricsRegistry mx;
  obs::Counter& first = mx.counter("a.first");
  for (int i = 0; i < 100; ++i) {
    (void)mx.counter("b.filler." + std::to_string(i));
  }
  first.inc();
  EXPECT_EQ(mx.counter_value("a.first"), 1u);
  EXPECT_EQ(&first, &mx.counter("a.first"));
}

TEST(Metrics, RenderTextIsDeterministicallyOrderedAndCoversAllKinds) {
  obs::MetricsRegistry mx;
  mx.counter("count.z").inc(2);
  mx.counter("count.a").inc(1);
  mx.gauge("level.m").set(-4);
  mx.histogram("lat.a").observe(1.0);
  std::string text = mx.render_text();
  std::size_t ca = text.find("count.a");
  std::size_t cz = text.find("count.z");
  ASSERT_NE(ca, std::string::npos);
  ASSERT_NE(cz, std::string::npos);
  EXPECT_LT(ca, cz);  // name-sorted within a kind
  EXPECT_NE(text.find("level.m -4"), std::string::npos);
  EXPECT_NE(text.find("lat.a count=1"), std::string::npos);
  EXPECT_EQ(text, mx.render_text());  // rendering is a pure function
}

// ------------------------------------------------------------------ Exporters

obs::TraceBuffer small_trace() {
  obs::TraceBuffer buf;
  buf.set_enabled(true);
  obs::TraceIds ids;
  ids.call_id = "mh.rt#1";
  ids.vci = 64;
  obs::SpanId s = buf.begin(sim::SimTime{}, "stub", "call.open", "mh.rt", ids);
  buf.complete(sim::SimTime{} + sim::microseconds(10), sim::microseconds(5),
               "atm", "vc.setup", "net", ids);
  buf.instant(sim::SimTime{} + sim::microseconds(12), "kern",
              "quote\"and\\slash", "mh.rt");
  buf.counter(sim::SimTime{} + sim::microseconds(13), "sighost",
              "lists.incoming", "mh.rt", 2.0);
  buf.end(sim::SimTime{} + sim::microseconds(20), s);
  return buf;
}

TEST(Export, ChromeTraceIsValidJsonWithExpectedShape) {
  obs::TraceBuffer buf = small_trace();
  std::string json = obs::to_chrome_trace(buf);
  ASSERT_TRUE(obs::validate_json(json).ok()) << json;
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"B\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"E\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"C\""), std::string::npos);
  // Escaping: the raw quote/backslash must not survive unescaped.
  EXPECT_NE(json.find("quote\\\"and\\\\slash"), std::string::npos);
}

TEST(Export, JsonlValidatesAndLeadsWithSchemaHeader) {
  obs::TraceBuffer buf = small_trace();
  obs::MetricsRegistry mx;
  mx.counter("sighost.maint.records").inc(2);
  std::string jsonl = obs::to_jsonl(buf, mx);
  ASSERT_TRUE(obs::validate_jsonl(jsonl).ok()) << jsonl;
  std::string first = jsonl.substr(0, jsonl.find('\n'));
  EXPECT_NE(first.find(obs::kJsonlSchema), std::string::npos);
  EXPECT_NE(jsonl.find("sighost.maint.records"), std::string::npos);
}

TEST(Export, ValidatorRejectsMalformedJson) {
  EXPECT_FALSE(obs::validate_json("{\"a\":1").ok());
  EXPECT_FALSE(obs::validate_json("{\"a\":}").ok());
  EXPECT_FALSE(obs::validate_json("[1,2,]").ok());
  EXPECT_TRUE(obs::validate_json("{\"a\":[1,2],\"b\":\"x\"}").ok());
}

// Adversarial escaping: every JSON-dangerous byte class an event string can
// carry — quotes, backslashes, the named control escapes, and raw control
// bytes — must come out escaped, and a trace full of them must still export
// as valid JSON/JSONL.
TEST(Export, JsonEscapeCoversQuotesBackslashesAndControlBytes) {
  EXPECT_EQ(obs::json_escape("plain ascii"), "plain ascii");
  EXPECT_EQ(obs::json_escape("q\"b\\e"), "q\\\"b\\\\e");
  EXPECT_EQ(obs::json_escape("\b\f\n\r\t"), "\\b\\f\\n\\r\\t");
  EXPECT_EQ(obs::json_escape(std::string_view("\x01\x1f\x00", 3)),
            "\\u0001\\u001f\\u0000");
}

TEST(Export, HostileEventStringsStillExportValidJson) {
  obs::TraceBuffer buf;
  buf.set_enabled(true);
  obs::TraceIds ids;
  ids.call_id = "mh\"rt\\#1\n";
  obs::SpanId s = buf.begin(sim::SimTime{}, "sighost", "na\"me\\\t\x02",
                            "tr\"ack\\\r", ids);
  buf.end(sim::SimTime{} + sim::microseconds(3), s);
  buf.counter(sim::SimTime{} + sim::microseconds(4), "kern", "c\bnt\f",
              "mh.rt", 1.0);
  obs::MetricsRegistry mx;
  mx.counter("evil\"metric\\name").inc();
  std::string chrome = obs::to_chrome_trace(buf);
  std::string jsonl = obs::to_jsonl(buf, mx);
  EXPECT_TRUE(obs::validate_json(chrome).ok()) << chrome;
  EXPECT_TRUE(obs::validate_jsonl(jsonl).ok()) << jsonl;
  // No raw control byte may survive into either export (newlines are the
  // exports' own record/pretty-print separators).
  for (char c : chrome) {
    if (c != '\n') {
      EXPECT_GE(static_cast<unsigned char>(c), 0x20u);
    }
  }
  for (char c : jsonl) {
    if (c != '\n') {
      EXPECT_GE(static_cast<unsigned char>(c), 0x20u);
    }
  }
}

// Flight dumps and health alert streams are their own schemas
// (xunet.trace.v1 / xunet.health.v1) — bench_json_check owns the per-schema
// key checks; here we assert every line parses as standalone JSON.
testing::AssertionResult every_line_is_json(const std::string& jsonl) {
  std::size_t pos = 0;
  std::size_t lines = 0;
  while (pos < jsonl.size()) {
    std::size_t nl = jsonl.find('\n', pos);
    if (nl == std::string::npos) nl = jsonl.size();
    std::string line = jsonl.substr(pos, nl - pos);
    pos = nl + 1;
    if (line.empty()) continue;
    ++lines;
    if (!obs::validate_json(line).ok()) {
      return testing::AssertionFailure() << "bad JSONL line: " << line;
    }
  }
  if (lines == 0) return testing::AssertionFailure() << "empty JSONL stream";
  return testing::AssertionSuccess();
}

// ----------------------------------------------------------- QuantileSketch

TEST(QuantileSketch, EmptyAndSingleSampleEdges) {
  util::QuantileSketch sk;
  EXPECT_EQ(sk.count(), 0u);
  EXPECT_EQ(sk.percentile(50.0), 0.0);
  sk.add(42.0);
  EXPECT_EQ(sk.count(), 1u);
  EXPECT_EQ(sk.min(), 42.0);
  EXPECT_EQ(sk.max(), 42.0);
  // One sample: every percentile collapses to it (clamped to [min,max]).
  EXPECT_EQ(sk.percentile(0.0), 42.0);
  EXPECT_EQ(sk.percentile(100.0), 42.0);
  // Negatives are clamped into the zero bucket, not dropped.
  sk.add(-5.0);
  EXPECT_EQ(sk.count(), 2u);
  EXPECT_EQ(sk.min(), -5.0);
}

// Acceptance bar: sketch p50/p99 within 5% of the exact Summary on a
// latency-shaped (log-normal) distribution spanning several decades.
TEST(QuantileSketch, PercentilesTrackExactSummaryWithinFivePercent) {
  util::Summary exact;
  util::QuantileSketch sk;
  std::mt19937 rng(1994);  // fixed seed: the test is deterministic
  std::lognormal_distribution<double> lat(std::log(350.0), 0.9);
  for (int i = 0; i < 20000; ++i) {
    double v = lat(rng);
    exact.add(v);
    sk.add(v);
  }
  EXPECT_EQ(sk.count(), exact.count());
  EXPECT_NEAR(sk.mean(), exact.mean(), exact.mean() * 1e-9);  // sum is exact
  for (double p : {50.0, 90.0, 99.0}) {
    double want = exact.percentile(p);
    EXPECT_NEAR(sk.percentile(p), want, want * 0.05)
        << "p" << p << " drifted beyond 5%";
  }
  EXPECT_EQ(sk.min(), exact.min());
  EXPECT_EQ(sk.max(), exact.max());
}

TEST(QuantileSketch, SteadyStateObservationAllocatesNothing) {
  if (!util::alloc_hook_installed()) {
    GTEST_SKIP() << "strong alloc hook not linked into this binary";
  }
  util::QuantileSketch sk;   // all storage allocated here
  sk.add(1.0);               // warmup (nothing to warm, but keep the shape)
  std::uint64_t before = util::alloc_count();
  for (int i = 0; i < 10000; ++i) {
    sk.add(static_cast<double>((i % 997) + 1) * 0.5);
  }
  double p99 = sk.percentile(99.0);
  std::uint64_t allocs = util::alloc_count() - before;
  EXPECT_EQ(allocs, 0u) << "QuantileSketch::add/percentile allocated";
  EXPECT_GT(p99, 0.0);
}

// The sighost's always-on setup-latency histogram rides the sketch through
// the Histogram interface; the exact interface must keep answering for
// exact-kind histograms and refuse (nullptr) for sketch-kind ones.
TEST(Metrics, SketchKindHistogramAnswersStatsButNotSamples) {
  obs::MetricsRegistry mx;
  obs::Histogram& h =
      mx.histogram("sighost.mh.rt.setup.latency_us", obs::Histogram::Kind::sketch);
  for (int i = 1; i <= 1000; ++i) h.observe(static_cast<double>(i));
  EXPECT_EQ(h.kind(), obs::Histogram::Kind::sketch);
  EXPECT_EQ(mx.histogram_summary("sighost.mh.rt.setup.latency_us"), nullptr);
  const obs::Histogram* stats =
      mx.histogram_stats("sighost.mh.rt.setup.latency_us");
  ASSERT_NE(stats, nullptr);
  EXPECT_EQ(stats->count(), 1000u);
  EXPECT_DOUBLE_EQ(stats->mean(), 500.5);
  EXPECT_NEAR(stats->percentile(50.0), 500.5, 500.5 * 0.05);
  // The kind is fixed by whoever registers first; a later exact-kind lookup
  // of the same name gets the existing sketch histogram, not a new one.
  EXPECT_EQ(&mx.histogram("sighost.mh.rt.setup.latency_us"), &h);
}

// ----------------------------------------------------------- FlightRecorder

TEST(FlightRecorder, RingOverwritesOldestAndKeepsChronologicalOrder) {
  obs::FlightRecorder fr;
  fr.set_capacity(4);
  for (int i = 0; i < 10; ++i) {
    std::string detail = "n";
    detail += std::to_string(i);
    fr.note(sim::SimTime{} + sim::microseconds(i), "sighost", "ev", "mh.rt",
            detail);
  }
  EXPECT_EQ(fr.size(), 4u);
  EXPECT_EQ(fr.total(), 10u);
  std::vector<const obs::FlightRecord*> chron = fr.chronological();
  ASSERT_EQ(chron.size(), 4u);
  // Oldest-first, and exactly the last four noted (seq 6..9).
  for (std::size_t i = 0; i < chron.size(); ++i) {
    EXPECT_EQ(chron[i]->seq, 6u + i);
    std::string want = "n";
    want += std::to_string(6 + i);
    EXPECT_EQ(std::string(chron[i]->detail), want);
  }
}

TEST(FlightRecorder, NoteTruncatesLongFieldsWithoutOverflow) {
  obs::FlightRecorder fr;
  std::string longstr(200, 'x');
  fr.note(sim::SimTime{}, longstr, longstr, longstr, longstr, 42);
  ASSERT_EQ(fr.size(), 1u);
  const obs::FlightRecord& r = *fr.chronological()[0];
  // Truncated into the inline arrays, still NUL-terminated.
  EXPECT_LT(std::string(r.component).size(), sizeof r.component);
  EXPECT_LT(std::string(r.name).size(), sizeof r.name);
  EXPECT_LT(std::string(r.track).size(), sizeof r.track);
  EXPECT_LT(std::string(r.detail).size(), sizeof r.detail);
  EXPECT_EQ(r.vci, 42);
}

TEST(FlightRecorder, DumpCarriesSchemaReasonAndOverwriteCount) {
  obs::FlightRecorder fr;
  fr.set_capacity(3);
  for (int i = 0; i < 5; ++i) {
    fr.note(sim::SimTime{} + sim::microseconds(i), "fault", "event", "plan",
            "crash \"sighost\\1\"");  // hostile detail must be escaped
  }
  std::string dump = fr.dump_jsonl("fault:crash");
  ASSERT_TRUE(every_line_is_json(dump));
  std::string header = dump.substr(0, dump.find('\n'));
  EXPECT_NE(header.find(obs::kFlightSchema), std::string::npos);
  EXPECT_NE(header.find("\"reason\":\"fault:crash\""), std::string::npos);
  EXPECT_NE(header.find("\"records\":3"), std::string::npos);
  EXPECT_NE(header.find("\"overwritten\":2"), std::string::npos);

  EXPECT_EQ(fr.triggers(), 0u);
  fr.trigger("fault:crash");
  EXPECT_EQ(fr.triggers(), 1u);
  EXPECT_EQ(fr.last_dump(), dump);  // trigger snapshots the same rendering

  fr.clear();
  EXPECT_EQ(fr.size(), 0u);
  EXPECT_EQ(fr.total(), 0u);
  EXPECT_TRUE(fr.last_dump().empty());
  EXPECT_EQ(fr.capacity(), 3u);  // configuration survives
}

TEST(FlightRecorder, DisabledRecorderNotesNothing) {
  obs::FlightRecorder fr;
  fr.set_enabled(false);
  fr.note(sim::SimTime{}, "sighost", "ev", "mh.rt");
  EXPECT_EQ(fr.size(), 0u);
  EXPECT_EQ(fr.total(), 0u);
}

// ------------------------------------------------------------ HealthMonitor

// A manual scheduler: the test owns the tick loop, so hysteresis can be
// stepped metric-change by metric-change without a simulator.
struct ManualSched {
  std::vector<std::function<void()>> pending;
  obs::HealthMonitor::ScheduleFn fn() {
    return [this](sim::SimDuration, std::function<void()> f) {
      pending.push_back(std::move(f));
    };
  }
  void fire() {
    std::vector<std::function<void()>> batch;
    batch.swap(pending);
    for (auto& f : batch) f();
  }
};

TEST(HealthMonitor, GaugeRuleRaisesAndClearsWithHysteresis) {
  obs::Observability o;
  ManualSched sched;
  obs::HealthMonitor hm(o, sched.fn());
  hm.add_rule({"mh.rt.setup_backlog", "sighost.mh.rt.list.outgoing_requests",
               obs::RuleKind::gauge_level, 16.0, 4.0});
  obs::Gauge& g = o.metrics().gauge("sighost.mh.rt.list.outgoing_requests");

  g.set(15);
  hm.evaluate();
  EXPECT_FALSE(hm.active("mh.rt.setup_backlog"));  // below raise_at

  g.set(16);
  hm.evaluate();
  EXPECT_TRUE(hm.active("mh.rt.setup_backlog"));
  ASSERT_EQ(hm.alerts().size(), 1u);
  EXPECT_TRUE(hm.alerts()[0].raised);
  EXPECT_EQ(hm.alerts()[0].value, 16.0);
  // A raise snapshots the flight recorder (post-mortem attached).
  EXPECT_EQ(o.flight().triggers(), 1u);
  EXPECT_FALSE(o.flight().last_dump().empty());

  g.set(8);  // inside the hysteresis band: stays raised, no new alert
  hm.evaluate();
  EXPECT_TRUE(hm.active("mh.rt.setup_backlog"));
  EXPECT_EQ(hm.alerts().size(), 1u);

  g.set(3);  // below clear_below: clears
  hm.evaluate();
  EXPECT_FALSE(hm.active("mh.rt.setup_backlog"));
  ASSERT_EQ(hm.alerts().size(), 2u);
  EXPECT_FALSE(hm.alerts()[1].raised);
  EXPECT_EQ(hm.active_count(), 0u);
  EXPECT_EQ(o.flight().triggers(), 1u);  // clears don't re-trigger
}

TEST(HealthMonitor, CounterRateRuleMeasuresPerTickDelta) {
  obs::Observability o;
  ManualSched sched;
  obs::Counter& c = o.metrics().counter("sighost.mh.rt.peer.retransmits");
  c.inc(100);  // pre-existing count must not count as a storm
  obs::HealthMonitor hm(o, sched.fn());
  hm.add_rule({"mh.rt.retx_storm", "sighost.mh.rt.peer.retransmits",
               obs::RuleKind::counter_rate, 8.0, 2.0});
  hm.start(sim::milliseconds(100));

  c.inc(7);  // below raise_at per tick
  sched.fire();
  EXPECT_FALSE(hm.active("mh.rt.retx_storm"));

  c.inc(9);  // storm tick
  sched.fire();
  EXPECT_TRUE(hm.active("mh.rt.retx_storm"));

  c.inc(1);  // calm tick: delta 1 < clear_below 2
  sched.fire();
  EXPECT_FALSE(hm.active("mh.rt.retx_storm"));
  EXPECT_EQ(hm.ticks(), 3u);

  hm.stop();
  sched.fire();  // queued tick observes running_ == false
  EXPECT_EQ(hm.ticks(), 3u);
  EXPECT_TRUE(sched.pending.empty());  // stopped monitor does not re-arm
}

TEST(HealthMonitor, WatchSighostInstallsTheFourStandardRules) {
  obs::Observability o;
  obs::HealthMonitor hm(o, nullptr);
  hm.watch_sighost("mh.rt");
  std::string jsonl = hm.to_health_jsonl();
  ASSERT_TRUE(every_line_is_json(jsonl));
  std::string header = jsonl.substr(0, jsonl.find('\n'));
  EXPECT_NE(header.find(obs::kHealthSchema), std::string::npos);
  EXPECT_NE(header.find("\"rules\":4"), std::string::npos);
  EXPECT_NE(header.find("\"alerts\":0"), std::string::npos);
  // The rules bind to live registry metrics by name.
  o.metrics().gauge("sighost.mh.rt.list.incoming_requests").set(32);
  hm.evaluate();
  EXPECT_TRUE(hm.active("mh.rt.queue_saturation"));
  EXPECT_NE(hm.to_health_jsonl().find("\"state\":\"raised\""),
            std::string::npos);
}

// ------------------------------------------------------------ CallTraceIndex

// A synthetic four-hop call assembled by hand: stub -> sighost(caller) ->
// sighost(callee) -> atm, exactly the edge chain the real stack emits.
TEST(CallTraceIndex, AssemblesCrossHostSpanTreeFromTaggedEvents) {
  obs::TraceBuffer buf;
  buf.set_enabled(true);
  std::uint64_t trace = buf.new_trace();

  obs::TraceIds root_ids;
  root_ids.trace_id = trace;
  obs::SpanId open = buf.begin(sim::SimTime{}, "stub", "call.open", "mh.rt",
                               root_ids);
  obs::TraceIds setup_ids;
  setup_ids.trace_id = trace;
  setup_ids.parent_span = open;
  obs::SpanId setup =
      buf.begin(sim::SimTime{} + sim::microseconds(10), "sighost",
                "call.setup", "mh.rt", setup_ids);
  obs::TraceIds serve_ids;
  serve_ids.trace_id = trace;
  serve_ids.parent_span = setup;
  obs::SpanId serve =
      buf.begin(sim::SimTime{} + sim::microseconds(40), "sighost",
                "call.serve", "berkeley.rt", serve_ids);
  obs::TraceIds vc_ids;
  vc_ids.trace_id = trace;
  vc_ids.parent_span = serve;
  obs::SpanId vc = buf.complete(sim::SimTime{} + sim::microseconds(60),
                                sim::microseconds(5), "atm", "vc.setup", "net",
                                vc_ids);
  buf.end(sim::SimTime{} + sim::microseconds(90), serve);
  buf.end(sim::SimTime{} + sim::microseconds(120), setup);
  buf.end(sim::SimTime{} + sim::microseconds(150), open);
  // An untagged event must stay outside the index.
  buf.instant(sim::SimTime{} + sim::microseconds(200), "kern", "unrelated",
              "mh.rt");

  obs::CallTraceIndex idx(buf);
  ASSERT_EQ(idx.traces().size(), 1u);
  EXPECT_EQ(idx.traces()[0], trace);
  EXPECT_EQ(idx.span_count(trace), 4u);

  const obs::CallTraceNode* root = idx.root(trace);
  ASSERT_NE(root, nullptr);
  EXPECT_EQ(root->span, open);
  EXPECT_EQ(root->parent, obs::kInvalidSpan);
  EXPECT_EQ(root->component, "stub");
  ASSERT_EQ(root->children.size(), 1u);
  EXPECT_EQ(root->children[0], setup);

  const obs::CallTraceNode* n_setup = idx.node(setup);
  const obs::CallTraceNode* n_serve = idx.node(serve);
  const obs::CallTraceNode* n_vc = idx.node(vc);
  ASSERT_NE(n_setup, nullptr);
  ASSERT_NE(n_serve, nullptr);
  ASSERT_NE(n_vc, nullptr);
  EXPECT_EQ(n_setup->parent, open);
  EXPECT_EQ(n_serve->parent, setup);
  EXPECT_EQ(n_vc->parent, serve);
  EXPECT_EQ(n_serve->track, "berkeley.rt");
  EXPECT_EQ(n_vc->dur, sim::microseconds(5));
  // begin/end pair: the span duration is end - begin.
  EXPECT_EQ(n_serve->dur, sim::microseconds(50));

  // find() walks mint order; the waterfall renders all four hops with
  // root-relative offsets, depth-indented.
  EXPECT_EQ(idx.find(trace, "sighost", "call.serve"), n_serve);
  EXPECT_EQ(idx.find(trace, "atm", "nope"), nullptr);
  std::string wf = idx.waterfall(trace);
  EXPECT_NE(wf.find("call.open"), std::string::npos);
  EXPECT_NE(wf.find("vc.setup"), std::string::npos);
  std::size_t at_open = wf.find("call.open");
  std::size_t at_setup = wf.find("call.setup");
  std::size_t at_serve = wf.find("call.serve");
  std::size_t at_vc = wf.find("vc.setup");
  EXPECT_LT(at_open, at_setup);
  EXPECT_LT(at_setup, at_serve);
  EXPECT_LT(at_serve, at_vc);
  EXPECT_EQ(wf, idx.waterfall(trace));  // pure function
}

TEST(CallTraceIndex, OrphanedFragmentsSurfaceInsteadOfDisappearing) {
  obs::TraceBuffer buf;
  buf.set_enabled(true);
  // A hop whose parent span never made it into the buffer (e.g. the stub
  // side ran with tracing off): it must still render as a top-level hop.
  obs::TraceIds ids;
  ids.trace_id = 7;
  ids.parent_span = 999;  // unknown
  (void)buf.complete(sim::SimTime{} + sim::microseconds(5),
                     sim::microseconds(2), "sighost", "call.serve",
                     "berkeley.rt", ids);
  obs::CallTraceIndex idx(buf);
  ASSERT_EQ(idx.traces().size(), 1u);
  const obs::CallTraceNode* root = idx.root(7);
  ASSERT_NE(root, nullptr);
  EXPECT_EQ(root->name, "call.serve");
  EXPECT_NE(idx.waterfall(7).find("call.serve"), std::string::npos);
}

// -------------------------------------------------------------------- Logger
//
// Regression: emitted() must count suppressed-by-no-sink records too — the
// §9 bench counts maintenance records through it before any sink exists.

TEST(Logger, EmittedCountsRecordsEvenWithNoSinks) {
  util::Logger log;  // no sinks registered
  log.set_threshold(util::LogLevel::info);
  log.info("sighost@mh.rt", "maintenance record");
  log.warn("sighost@mh.rt", "another");
  EXPECT_EQ(log.emitted(), 2u);
  log.debug("sighost@mh.rt", "below threshold");
  EXPECT_EQ(log.emitted(), 2u);  // threshold still filters
}

// ------------------------------------------------- end-to-end traced scenario

struct TracedRun {
  std::string jsonl;
  std::string chrome;
  std::string report;
  std::vector<obs::CallBreakdown> calls;
  std::set<std::string> components;
  std::uint64_t maint_records = 0;
};

TracedRun traced_canonical_run() {
  TracedRun out;
  auto tb = TestbedConfig{}.build_deferred();
  tb->sim().obs().set_tracing(true);
  EXPECT_TRUE(tb->bring_up().ok());

  kern::Kernel& server_host = *tb->router(1).kernel;
  kern::Kernel& client_host = *tb->router(0).kernel;
  CallServer server(server_host, server_host.ip_node().address(), "traced",
                    4990);
  server.start([](util::Result<void>) {});
  tb->sim().run_for(sim::milliseconds(300));

  CallClient client(client_host, client_host.ip_node().address());
  int opened = 0;
  client.open("berkeley.rt", "traced", "",
              [&](util::Result<CallClient::Call> r) {
                EXPECT_TRUE(r.ok());
                ++opened;
              });
  tb->sim().run_for(sim::seconds(5));
  EXPECT_EQ(opened, 1);

  const obs::Observability& o = tb->sim().obs();
  out.jsonl = obs::to_jsonl(o.trace(), o.metrics());
  out.chrome = obs::to_chrome_trace(o.trace());
  out.report = obs::breakdown_report(o.trace());
  out.calls = obs::per_call_breakdown(o.trace());
  for (const obs::TraceEvent& e : o.trace().events()) {
    out.components.insert(e.component);
  }
  out.maint_records = o.metrics().counter_value("sighost.maint.records");
  return out;
}

TEST(TracedRun, CoversAllFiveComponentsEndToEnd) {
  TracedRun run = traced_canonical_run();
  for (const char* comp : {"stub", "sighost", "kern", "orc", "atm"}) {
    EXPECT_TRUE(run.components.count(comp)) << "missing component: " << comp;
  }
  EXPECT_GE(run.maint_records, 2u);  // both sighosts log per call
  ASSERT_TRUE(obs::validate_jsonl(run.jsonl).ok());
  ASSERT_TRUE(obs::validate_json(run.chrome).ok());
}

TEST(TracedRun, BreakdownAttributesSetupTimeWithLoggingDominant) {
  TracedRun run = traced_canonical_run();
  ASSERT_FALSE(run.calls.empty());
  const obs::CallBreakdown& c = run.calls.front();
  EXPECT_FALSE(c.call_id.empty());
  EXPECT_GT(c.total.ns(), 0);
  // The decomposition is exact: parts sum back to the observed total.
  EXPECT_EQ((c.maint_log + c.vc_install + c.sighost_proc + c.stub_rpc).ns(),
            c.total.ns());
  // §9: "the large amount of maintenance information logged per call" is
  // the dominant cost — two sighosts at 128 ms each out of ~330 ms.
  EXPECT_TRUE(c.logging_dominant());
  EXPECT_GT(c.maint_log.ns(), c.total.ns() / 2);
  EXPECT_NE(run.report.find("<- dominant"), std::string::npos);
}

TEST(TracedRun, SighostGaugesAndHistogramArePopulated) {
  auto tb = TestbedConfig{}.build_deferred();
  tb->sim().obs().set_tracing(true);
  ASSERT_TRUE(tb->bring_up().ok());
  kern::Kernel& r1 = *tb->router(1).kernel;
  CallServer server(r1, r1.ip_node().address(), "gauged", 4991);
  server.start([](util::Result<void>) {});
  tb->sim().run_for(sim::milliseconds(300));

  const obs::Observability& o = tb->sim().obs();
  EXPECT_EQ(o.metrics().gauge_value("sighost.berkeley.rt.list.service_list"), 1);

  kern::Kernel& r0 = *tb->router(0).kernel;
  CallClient client(r0, r0.ip_node().address());
  client.open("berkeley.rt", "gauged", "",
              [](util::Result<CallClient::Call>) {});
  tb->sim().run_for(sim::seconds(5));
  EXPECT_EQ(o.metrics().counter_value("sighost.mh.rt.calls.established"), 1u);
  // The always-on setup-latency histogram is sketch-backed (bounded memory
  // at call-load scale), so the sample-set accessor answers nullptr and the
  // kind-agnostic stats accessor answers the numbers.
  EXPECT_EQ(o.metrics().histogram_summary("sighost.mh.rt.setup.latency_us"),
            nullptr);
  const obs::Histogram* lat =
      o.metrics().histogram_stats("sighost.mh.rt.setup.latency_us");
  ASSERT_NE(lat, nullptr);
  EXPECT_EQ(lat->kind(), obs::Histogram::Kind::sketch);
  EXPECT_EQ(lat->count(), 1u);
  EXPECT_GT(lat->mean(), 0.0);
  // The datapath counters moved through the registry too.
  EXPECT_GT(o.metrics().counter_value("kern.mh.rt.xunet.tx"), 0u);
  EXPECT_GT(o.metrics().counter_value("atm.net.setups_attempted"), 0u);
}

TEST(TracedRun, IdenticallySeededRunsProduceByteIdenticalExports) {
  TracedRun a = traced_canonical_run();
  TracedRun b = traced_canonical_run();
  ASSERT_FALSE(a.jsonl.empty());
  EXPECT_EQ(a.jsonl, b.jsonl);    // byte-identical regression artifact
  EXPECT_EQ(a.chrome, b.chrome);  // and the Chrome rendering with it
  EXPECT_EQ(a.report, b.report);
}

// --------------------------------------------- causal cross-hop call tree

// Run one real multi-hop call setup and return its rendered waterfall; when
// asked, assert the causal edge chain the paper's §9 decomposition implies:
//   stub call.open -> sighost call.setup (caller) ->
//   sighost call.serve (callee) -> atm vc.setup (the VC-install hop).
std::string causal_waterfall(bool assert_edges) {
  auto tb = TestbedConfig{}.build_deferred();
  tb->sim().obs().set_tracing(true);
  EXPECT_TRUE(tb->bring_up().ok());

  kern::Kernel& r1 = *tb->router(1).kernel;
  CallServer server(r1, r1.ip_node().address(), "causal", 4992);
  server.start([](util::Result<void>) {});
  tb->sim().run_for(sim::milliseconds(300));

  kern::Kernel& r0 = *tb->router(0).kernel;
  CallClient client(r0, r0.ip_node().address());
  int opened = 0;
  client.open("berkeley.rt", "causal", "",
              [&](util::Result<CallClient::Call> r) {
                EXPECT_TRUE(r.ok());
                ++opened;
              });
  tb->sim().run_for(sim::seconds(5));
  EXPECT_EQ(opened, 1);

  obs::CallTraceIndex idx(tb->sim().obs().trace());
  if (assert_edges) {
    // One call opened => one causal trace assembled.
    EXPECT_EQ(idx.traces().size(), 1u);
    if (idx.traces().size() == 1) {
      std::uint64_t t = idx.traces()[0];
      const obs::CallTraceNode* root = idx.root(t);
      const obs::CallTraceNode* setup = idx.find(t, "sighost", "call.setup");
      const obs::CallTraceNode* serve = idx.find(t, "sighost", "call.serve");
      const obs::CallTraceNode* vc = idx.find(t, "atm", "vc.setup");
      EXPECT_NE(root, nullptr);
      EXPECT_NE(setup, nullptr) << "caller sighost hop missing from tree";
      EXPECT_NE(serve, nullptr) << "callee sighost hop missing from tree";
      EXPECT_NE(vc, nullptr) << "kernel VC-install hop missing from tree";
      if (root != nullptr && setup != nullptr && serve != nullptr &&
          vc != nullptr) {
        EXPECT_EQ(root->component, "stub");
        EXPECT_EQ(root->name, "call.open");
        // The causal edges — each hop's parent is the upstream hop's span,
        // carried across hosts in the signaling messages.
        EXPECT_EQ(setup->parent, root->span);
        EXPECT_EQ(serve->parent, setup->span);
        EXPECT_EQ(vc->parent, serve->span);
        // And the hops really ran on their own machines.
        EXPECT_EQ(setup->track, "mh.rt");
        EXPECT_EQ(serve->track, "berkeley.rt");
        // Durations nest: the root covers every downstream hop.
        EXPECT_GE(root->dur.ns(), setup->dur.ns());
        EXPECT_GE(setup->dur.ns(), serve->dur.ns());
      }
    }
  }
  return idx.waterfall();
}

TEST(CausalTree, MultiHopCallAssemblesOneCrossHostTree) {
  std::string wf = causal_waterfall(/*assert_edges=*/true);
  EXPECT_FALSE(wf.empty());
  // The waterfall reads top-down in causal order.
  std::size_t at_open = wf.find("call.open");
  std::size_t at_vc = wf.find("vc.setup");
  ASSERT_NE(at_open, std::string::npos);
  ASSERT_NE(at_vc, std::string::npos);
  EXPECT_LT(at_open, at_vc);
}

TEST(CausalTree, WaterfallIsByteIdenticalAcrossSameSeedRuns) {
  std::string a = causal_waterfall(/*assert_edges=*/false);
  std::string b = causal_waterfall(/*assert_edges=*/false);
  ASSERT_FALSE(a.empty());
  EXPECT_EQ(a, b);
}

// -------------------------------------- crash post-mortem + health stream

struct PostMortemRun {
  std::string flight_dump;
  std::string health_jsonl;
  std::uint64_t triggers = 0;
};

// A seeded mid-call sighost crash with the health monitor attached — the
// same shape as the recovery bench's post-mortem scenario, sized for a test.
PostMortemRun crash_post_mortem_run() {
  PostMortemRun out;
  core::TestbedConfig cfg;
  cfg.kernel.fd_table_size = 512;
  cfg.sighost.request_timeout = sim::seconds(20);
  // pvc_mesh() sets auto_bring_up: build() returns a running deployment.
  auto tb = cfg.routers(2).pvc_mesh().build();
  auto& r1 = tb->router(1);
  CallServer server(*r1.kernel, r1.kernel->ip_node().address(), "pm", 4993);
  server.start([](util::Result<void>) {});
  tb->sim().run_for(sim::milliseconds(300));
  CallClient client(*tb->router(0).kernel,
                    tb->router(0).kernel->ip_node().address());

  obs::HealthMonitor health(
      tb->sim().obs(), [&tb](sim::SimDuration d, std::function<void()> fn) {
        tb->sim().schedule(d, std::move(fn));
      });
  health.watch_sighost("mh.rt");
  health.watch_sighost("berkeley.rt");
  health.start(sim::milliseconds(100));

  fault::FaultPlan plan(*tb, 1994);
  plan.crash_sighost_at(sim::seconds(2), 1);
  plan.restart_sighost_at(sim::milliseconds(2600), 1);
  plan.arm();

  for (int i = 0; i < 8; ++i) {
    tb->sim().schedule(sim::milliseconds(300) * i, [&] {
      client.open("berkeley.rt", "pm", "",
                  [](util::Result<CallClient::Call>) {});
    });
  }
  tb->sim().run_for(sim::seconds(20));
  health.stop();

  out.flight_dump = tb->sim().obs().flight().last_dump();
  out.health_jsonl = health.to_health_jsonl();
  out.triggers = tb->sim().obs().flight().triggers();
  return out;
}

TEST(PostMortem, SighostCrashProducesSchemaValidFlightDump) {
  PostMortemRun run = crash_post_mortem_run();
  EXPECT_GE(run.triggers, 1u);  // the crash fault event triggered a dump
  ASSERT_FALSE(run.flight_dump.empty());
  ASSERT_TRUE(every_line_is_json(run.flight_dump));
  std::string header = run.flight_dump.substr(0, run.flight_dump.find('\n'));
  EXPECT_NE(header.find(obs::kFlightSchema), std::string::npos);
  EXPECT_NE(header.find("\"reason\":\"fault:"), std::string::npos);
  // The ring captured real control-plane traffic leading up to the crash.
  EXPECT_NE(run.flight_dump.find("sighost"), std::string::npos);

  ASSERT_FALSE(run.health_jsonl.empty());
  ASSERT_TRUE(every_line_is_json(run.health_jsonl));
  EXPECT_NE(run.health_jsonl.find(obs::kHealthSchema), std::string::npos);
  EXPECT_NE(run.health_jsonl.find("\"rules\":8"), std::string::npos);
}

TEST(PostMortem, DumpAndAlertStreamAreByteIdenticalAcrossSameSeedRuns) {
  PostMortemRun a = crash_post_mortem_run();
  PostMortemRun b = crash_post_mortem_run();
  EXPECT_EQ(a.flight_dump, b.flight_dump);
  EXPECT_EQ(a.health_jsonl, b.health_jsonl);
  EXPECT_EQ(a.triggers, b.triggers);
}

}  // namespace
}  // namespace xunet
