// obs_test.cpp — the observability subsystem: trace buffer, metrics
// registry, exporters, the §9 breakdown report, and the determinism
// guarantee (two identically-seeded runs produce byte-identical traces).
#include <gtest/gtest.h>

#include "core/apps.hpp"
#include "core/testbed.hpp"
#include "obs/export.hpp"
#include "obs/report.hpp"
#include "util/logging.hpp"

namespace xunet {
namespace {

using core::CallClient;
using core::CallServer;
using core::Testbed;

// ---------------------------------------------------------------- TraceBuffer

TEST(TraceBuffer, SpanNestingTracksDepthPerTrack) {
  obs::TraceBuffer buf;
  buf.set_enabled(true);
  obs::SpanId outer = buf.begin(sim::SimTime{}, "sighost", "call.setup", "mh.rt");
  obs::SpanId inner =
      buf.begin(sim::SimTime{} + sim::milliseconds(1), "sighost", "maint.log", "mh.rt");
  EXPECT_EQ(buf.open_spans("mh.rt"), 2u);
  EXPECT_EQ(buf.max_depth("mh.rt"), 2u);
  buf.end(sim::SimTime{} + sim::milliseconds(2), inner);
  buf.end(sim::SimTime{} + sim::milliseconds(3), outer);
  EXPECT_EQ(buf.open_spans("mh.rt"), 0u);
  EXPECT_EQ(buf.max_depth("mh.rt"), 2u);  // high-water mark survives
  EXPECT_EQ(buf.max_depth("berkeley.rt"), 0u);
  EXPECT_EQ(buf.size(), 4u);
}

TEST(TraceBuffer, EndIgnoresInvalidAndUnknownSpans) {
  obs::TraceBuffer buf;
  buf.set_enabled(true);
  buf.end(sim::SimTime{}, obs::kInvalidSpan);
  buf.end(sim::SimTime{}, 12345);  // never begun
  EXPECT_EQ(buf.size(), 0u);
}

TEST(TraceBuffer, DisabledBufferRecordsNothing) {
  obs::TraceBuffer buf;
  EXPECT_FALSE(buf.enabled());
  buf.instant(sim::SimTime{}, "kern", "xunet.send", "mh.rt");
  EXPECT_EQ(buf.begin(sim::SimTime{}, "stub", "call.open", "mh.rt"),
            obs::kInvalidSpan);
  EXPECT_EQ(buf.size(), 0u);
}

TEST(TraceBuffer, CapacityBoundsTheBufferAndCountsDrops) {
  obs::TraceBuffer buf;
  buf.set_enabled(true);
  buf.set_capacity(4);
  for (int i = 0; i < 10; ++i) {
    buf.instant(sim::SimTime{} + sim::microseconds(i), "kern", "tick", "mh.rt");
  }
  EXPECT_EQ(buf.size(), 4u);
  EXPECT_EQ(buf.dropped(), 6u);
}

TEST(TraceBuffer, AnnotateCallPatchesTheBeginEvent) {
  obs::TraceBuffer buf;
  buf.set_enabled(true);
  obs::SpanId s = buf.begin(sim::SimTime{}, "stub", "call.open", "mh.rt");
  buf.annotate_call(s, "mh.rt#7");
  ASSERT_EQ(buf.size(), 1u);
  EXPECT_EQ(buf.events()[0].ids.call_id, "mh.rt#7");
  buf.annotate_call(obs::kInvalidSpan, "nope");  // must not crash
}

// ------------------------------------------------------------------- Metrics

TEST(Metrics, CounterGaugeHistogramRoundTrip) {
  obs::MetricsRegistry mx;
  obs::Counter& c = mx.counter("kern.mh.rt.xunet.tx");
  c.inc();
  c.inc(4);
  EXPECT_EQ(mx.counter_value("kern.mh.rt.xunet.tx"), 5u);
  EXPECT_EQ(mx.counter_value("never.touched"), 0u);

  obs::Gauge& g = mx.gauge("sighost.mh.rt.list.incoming");
  g.set(3);
  g.add(-1);
  EXPECT_EQ(mx.gauge_value("sighost.mh.rt.list.incoming"), 2);

  obs::Histogram& h = mx.histogram("sighost.mh.rt.setup.latency_us");
  for (int i = 1; i <= 100; ++i) h.observe(static_cast<double>(i));
  const util::Summary* s = mx.histogram_summary("sighost.mh.rt.setup.latency_us");
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(s->count(), 100u);
  EXPECT_DOUBLE_EQ(s->mean(), 50.5);
  EXPECT_NEAR(s->percentile(50.0), 50.5, 0.6);
  EXPECT_NEAR(s->percentile(99.0), 99.0, 1.1);
  EXPECT_EQ(mx.histogram_summary("never.touched"), nullptr);
}

TEST(Metrics, ReferencesAreStableAcrossLaterRegistrations) {
  obs::MetricsRegistry mx;
  obs::Counter& first = mx.counter("a.first");
  for (int i = 0; i < 100; ++i) {
    (void)mx.counter("b.filler." + std::to_string(i));
  }
  first.inc();
  EXPECT_EQ(mx.counter_value("a.first"), 1u);
  EXPECT_EQ(&first, &mx.counter("a.first"));
}

TEST(Metrics, RenderTextIsDeterministicallyOrderedAndCoversAllKinds) {
  obs::MetricsRegistry mx;
  mx.counter("count.z").inc(2);
  mx.counter("count.a").inc(1);
  mx.gauge("level.m").set(-4);
  mx.histogram("lat.a").observe(1.0);
  std::string text = mx.render_text();
  std::size_t ca = text.find("count.a");
  std::size_t cz = text.find("count.z");
  ASSERT_NE(ca, std::string::npos);
  ASSERT_NE(cz, std::string::npos);
  EXPECT_LT(ca, cz);  // name-sorted within a kind
  EXPECT_NE(text.find("level.m -4"), std::string::npos);
  EXPECT_NE(text.find("lat.a count=1"), std::string::npos);
  EXPECT_EQ(text, mx.render_text());  // rendering is a pure function
}

// ------------------------------------------------------------------ Exporters

obs::TraceBuffer small_trace() {
  obs::TraceBuffer buf;
  buf.set_enabled(true);
  obs::TraceIds ids;
  ids.call_id = "mh.rt#1";
  ids.vci = 64;
  obs::SpanId s = buf.begin(sim::SimTime{}, "stub", "call.open", "mh.rt", ids);
  buf.complete(sim::SimTime{} + sim::microseconds(10), sim::microseconds(5),
               "atm", "vc.setup", "net", ids);
  buf.instant(sim::SimTime{} + sim::microseconds(12), "kern",
              "quote\"and\\slash", "mh.rt");
  buf.counter(sim::SimTime{} + sim::microseconds(13), "sighost",
              "lists.incoming", "mh.rt", 2.0);
  buf.end(sim::SimTime{} + sim::microseconds(20), s);
  return buf;
}

TEST(Export, ChromeTraceIsValidJsonWithExpectedShape) {
  obs::TraceBuffer buf = small_trace();
  std::string json = obs::to_chrome_trace(buf);
  ASSERT_TRUE(obs::validate_json(json).ok()) << json;
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"B\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"E\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"C\""), std::string::npos);
  // Escaping: the raw quote/backslash must not survive unescaped.
  EXPECT_NE(json.find("quote\\\"and\\\\slash"), std::string::npos);
}

TEST(Export, JsonlValidatesAndLeadsWithSchemaHeader) {
  obs::TraceBuffer buf = small_trace();
  obs::MetricsRegistry mx;
  mx.counter("sighost.maint.records").inc(2);
  std::string jsonl = obs::to_jsonl(buf, mx);
  ASSERT_TRUE(obs::validate_jsonl(jsonl).ok()) << jsonl;
  std::string first = jsonl.substr(0, jsonl.find('\n'));
  EXPECT_NE(first.find(obs::kJsonlSchema), std::string::npos);
  EXPECT_NE(jsonl.find("sighost.maint.records"), std::string::npos);
}

TEST(Export, ValidatorRejectsMalformedJson) {
  EXPECT_FALSE(obs::validate_json("{\"a\":1").ok());
  EXPECT_FALSE(obs::validate_json("{\"a\":}").ok());
  EXPECT_FALSE(obs::validate_json("[1,2,]").ok());
  EXPECT_TRUE(obs::validate_json("{\"a\":[1,2],\"b\":\"x\"}").ok());
}

// -------------------------------------------------------------------- Logger
//
// Regression: emitted() must count suppressed-by-no-sink records too — the
// §9 bench counts maintenance records through it before any sink exists.

TEST(Logger, EmittedCountsRecordsEvenWithNoSinks) {
  util::Logger log;  // no sinks registered
  log.set_threshold(util::LogLevel::info);
  log.info("sighost@mh.rt", "maintenance record");
  log.warn("sighost@mh.rt", "another");
  EXPECT_EQ(log.emitted(), 2u);
  log.debug("sighost@mh.rt", "below threshold");
  EXPECT_EQ(log.emitted(), 2u);  // threshold still filters
}

// ------------------------------------------------- end-to-end traced scenario

struct TracedRun {
  std::string jsonl;
  std::string chrome;
  std::string report;
  std::vector<obs::CallBreakdown> calls;
  std::set<std::string> components;
  std::uint64_t maint_records = 0;
};

TracedRun traced_canonical_run() {
  TracedRun out;
  auto tb = Testbed::canonical();
  tb->sim().obs().set_tracing(true);
  EXPECT_TRUE(tb->bring_up().ok());

  kern::Kernel& server_host = *tb->router(1).kernel;
  kern::Kernel& client_host = *tb->router(0).kernel;
  CallServer server(server_host, server_host.ip_node().address(), "traced",
                    4990);
  server.start([](util::Result<void>) {});
  tb->sim().run_for(sim::milliseconds(300));

  CallClient client(client_host, client_host.ip_node().address());
  int opened = 0;
  client.open("berkeley.rt", "traced", "",
              [&](util::Result<CallClient::Call> r) {
                EXPECT_TRUE(r.ok());
                ++opened;
              });
  tb->sim().run_for(sim::seconds(5));
  EXPECT_EQ(opened, 1);

  const obs::Observability& o = tb->sim().obs();
  out.jsonl = obs::to_jsonl(o.trace(), o.metrics());
  out.chrome = obs::to_chrome_trace(o.trace());
  out.report = obs::breakdown_report(o.trace());
  out.calls = obs::per_call_breakdown(o.trace());
  for (const obs::TraceEvent& e : o.trace().events()) {
    out.components.insert(e.component);
  }
  out.maint_records = o.metrics().counter_value("sighost.maint.records");
  return out;
}

TEST(TracedRun, CoversAllFiveComponentsEndToEnd) {
  TracedRun run = traced_canonical_run();
  for (const char* comp : {"stub", "sighost", "kern", "orc", "atm"}) {
    EXPECT_TRUE(run.components.count(comp)) << "missing component: " << comp;
  }
  EXPECT_GE(run.maint_records, 2u);  // both sighosts log per call
  ASSERT_TRUE(obs::validate_jsonl(run.jsonl).ok());
  ASSERT_TRUE(obs::validate_json(run.chrome).ok());
}

TEST(TracedRun, BreakdownAttributesSetupTimeWithLoggingDominant) {
  TracedRun run = traced_canonical_run();
  ASSERT_FALSE(run.calls.empty());
  const obs::CallBreakdown& c = run.calls.front();
  EXPECT_FALSE(c.call_id.empty());
  EXPECT_GT(c.total.ns(), 0);
  // The decomposition is exact: parts sum back to the observed total.
  EXPECT_EQ((c.maint_log + c.vc_install + c.sighost_proc + c.stub_rpc).ns(),
            c.total.ns());
  // §9: "the large amount of maintenance information logged per call" is
  // the dominant cost — two sighosts at 128 ms each out of ~330 ms.
  EXPECT_TRUE(c.logging_dominant());
  EXPECT_GT(c.maint_log.ns(), c.total.ns() / 2);
  EXPECT_NE(run.report.find("<- dominant"), std::string::npos);
}

TEST(TracedRun, SighostGaugesAndHistogramArePopulated) {
  auto tb = Testbed::canonical();
  tb->sim().obs().set_tracing(true);
  ASSERT_TRUE(tb->bring_up().ok());
  kern::Kernel& r1 = *tb->router(1).kernel;
  CallServer server(r1, r1.ip_node().address(), "gauged", 4991);
  server.start([](util::Result<void>) {});
  tb->sim().run_for(sim::milliseconds(300));

  const obs::Observability& o = tb->sim().obs();
  EXPECT_EQ(o.metrics().gauge_value("sighost.berkeley.rt.list.service_list"), 1);

  kern::Kernel& r0 = *tb->router(0).kernel;
  CallClient client(r0, r0.ip_node().address());
  client.open("berkeley.rt", "gauged", "",
              [](util::Result<CallClient::Call>) {});
  tb->sim().run_for(sim::seconds(5));
  EXPECT_EQ(o.metrics().counter_value("sighost.mh.rt.calls.established"), 1u);
  const util::Summary* lat =
      o.metrics().histogram_summary("sighost.mh.rt.setup.latency_us");
  ASSERT_NE(lat, nullptr);
  EXPECT_EQ(lat->count(), 1u);
  EXPECT_GT(lat->mean(), 0.0);
  // The datapath counters moved through the registry too.
  EXPECT_GT(o.metrics().counter_value("kern.mh.rt.xunet.tx"), 0u);
  EXPECT_GT(o.metrics().counter_value("atm.net.setups_attempted"), 0u);
}

TEST(TracedRun, IdenticallySeededRunsProduceByteIdenticalExports) {
  TracedRun a = traced_canonical_run();
  TracedRun b = traced_canonical_run();
  ASSERT_FALSE(a.jsonl.empty());
  EXPECT_EQ(a.jsonl, b.jsonl);    // byte-identical regression artifact
  EXPECT_EQ(a.chrome, b.chrome);  // and the Chrome rendering with it
  EXPECT_EQ(a.report, b.report);
}

}  // namespace
}  // namespace xunet
