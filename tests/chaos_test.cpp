// chaos_test.cpp — the deterministic chaos harness end to end: schedule
// generation (pure function of topology+profile+seed), the cross-layer
// InvariantChecker (clean deployments audit clean; planted divergences are
// named), the sabotage acceptance path (a deliberately skipped recovery
// audit is found, shrunk to a minimal repro, and replays byte-identically
// from its artifact), deadline-budgeted call-setup retry in UserLib, and
// the FaultPlan misuse contract.
#include <gtest/gtest.h>

#include <algorithm>

#include "chaos/chaos.hpp"
#include "chaos/invariant.hpp"
#include "chaos/runner.hpp"
#include "core/apps.hpp"
#include "core/testbed.hpp"
#include "fault/fault.hpp"

namespace xunet {
namespace {

using chaos::ChaosCase;
using chaos::ChaosEvent;
using chaos::ChaosProfile;
using chaos::ChaosSchedule;
using chaos::Violation;

bool has_rule(const std::vector<Violation>& vs, const std::string& rule) {
  return std::any_of(vs.begin(), vs.end(),
                     [&rule](const Violation& v) { return v.rule == rule; });
}

// ----------------------------------------------------- schedule generation

TEST(ChaosSchedule, SameSeedSameSchedule) {
  ChaosProfile p;
  const ChaosSchedule a = ChaosSchedule::generate(3, 2, p, 1234);
  const ChaosSchedule b = ChaosSchedule::generate(3, 2, p, 1234);
  ASSERT_EQ(a.events.size(), b.events.size());
  EXPECT_TRUE(a.events == b.events);
}

TEST(ChaosSchedule, DifferentSeedsDiverge) {
  ChaosProfile p;
  bool diverged = false;
  const ChaosSchedule base = ChaosSchedule::generate(3, 2, p, 1);
  for (std::uint64_t seed = 2; seed <= 6 && !diverged; ++seed) {
    diverged = !(ChaosSchedule::generate(3, 2, p, seed).events == base.events);
  }
  EXPECT_TRUE(diverged);
}

TEST(ChaosSchedule, EventsRespectProfileWindows) {
  ChaosProfile p;
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    const ChaosSchedule s = ChaosSchedule::generate(4, 3, p, seed);
    for (const ChaosEvent& e : s.events) {
      EXPECT_LT(e.at.ns(), p.horizon.ns()) << "seed " << seed;
      EXPECT_LE((e.at + e.duration).ns(), p.heal_by.ns()) << "seed " << seed;
      EXPECT_GE(e.probability, 0.0);
      EXPECT_LE(e.probability, 1.0);
    }
  }
}

TEST(ChaosSchedule, EventJsonRoundTripsByteIdentically) {
  ChaosProfile p;
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    for (const ChaosEvent& e : ChaosSchedule::generate(3, 2, p, seed).events) {
      const std::string line = chaos::event_json(e);
      ChaosEvent back;
      ASSERT_TRUE(chaos::event_from_json(line, back)) << line;
      EXPECT_TRUE(back == e) << line;
      EXPECT_EQ(chaos::event_json(back), line);
    }
  }
}

// --------------------------------------------- checker fixtures (planted)

// A minimal synthetic deployment snapshot that audits clean: one call,
// consistent across all four layers.
chaos::Snapshot consistent_snapshot() {
  chaos::Snapshot s;
  s.sighosts.push_back({"mh.rt", true, {}, {}, {}});
  s.sighosts.push_back({"berkeley.rt", true, {}, {}, {}});
  s.kernel_vcis.push_back({"mh.rt", "mh.rt", 40, /*bound=*/false});
  s.kernel_vcis.push_back({"berkeley.rt", "berkeley.rt", 41, /*bound=*/true});
  s.call_records.push_back({"mh.rt", 40, "mh.rt#1", true, false, "mh.rt"});
  s.call_records.push_back(
      {"berkeley.rt", 41, "mh.rt#1", true, false, "berkeley.rt"});
  s.vcs.push_back({1, "mh.rt", "berkeley.rt", 40, 41});
  s.routes_installed.push_back({"s1", 0, 40});
  s.routes_installed.push_back({"s2", 1, 40});
  s.routes_expected = s.routes_installed;
  return s;
}

chaos::WorkloadCounts clean_counts() {
  chaos::WorkloadCounts w;
  w.opened = 1;
  w.delivered = 1;
  return w;
}

TEST(InvariantChecker, ConsistentSnapshotAuditsClean) {
  const auto vs = chaos::check(consistent_snapshot(), clean_counts());
  EXPECT_TRUE(vs.empty()) << vs.size() << " violations, first: "
                          << (vs.empty() ? "" : vs[0].rule + " " + vs[0].detail);
}

TEST(InvariantChecker, NamesOrphanKernelVci) {
  chaos::Snapshot s = consistent_snapshot();
  s.kernel_vcis.push_back({"mh.rt", "mh.rt", 55, false});
  const auto vs = chaos::check(s, clean_counts());
  ASSERT_TRUE(has_rule(vs, chaos::kOrphanKernelVci));
  // The detail pinpoints the offending socket.
  const auto it = std::find_if(vs.begin(), vs.end(), [](const Violation& v) {
    return v.rule == chaos::kOrphanKernelVci;
  });
  EXPECT_NE(it->detail.find("vci=55"), std::string::npos) << it->detail;
}

TEST(InvariantChecker, NamesMissingKernelSocketAndOrphanRecord) {
  chaos::Snapshot s = consistent_snapshot();
  s.call_records.push_back({"mh.rt", 60, "mh.rt#9", true, false, "mh.rt"});
  const auto vs = chaos::check(s, clean_counts());
  EXPECT_TRUE(has_rule(vs, chaos::kMissingKernelSocket));
  EXPECT_TRUE(has_rule(vs, chaos::kOrphanCallRecord));
}

TEST(InvariantChecker, NamesOrphanNetworkVc) {
  chaos::Snapshot s = consistent_snapshot();
  s.vcs.push_back({2, "mh.rt", "berkeley.rt", 70, 71});
  const auto vs = chaos::check(s, clean_counts());
  EXPECT_TRUE(has_rule(vs, chaos::kOrphanNetworkVc));
}

TEST(InvariantChecker, NamesDanglingSwitchRoute) {
  chaos::Snapshot s = consistent_snapshot();
  s.routes_installed.push_back({"s1", 7, 99});
  std::sort(s.routes_installed.begin(), s.routes_installed.end());
  const auto vs = chaos::check(s, clean_counts());
  EXPECT_TRUE(has_rule(vs, chaos::kDanglingSwitchRoute));
  EXPECT_FALSE(has_rule(vs, chaos::kMissingSwitchRoute));
}

TEST(InvariantChecker, NamesMissingSwitchRoute) {
  chaos::Snapshot s = consistent_snapshot();
  s.routes_expected.push_back({"s2", 7, 99});
  std::sort(s.routes_expected.begin(), s.routes_expected.end());
  const auto vs = chaos::check(s, clean_counts());
  EXPECT_TRUE(has_rule(vs, chaos::kMissingSwitchRoute));
}

TEST(InvariantChecker, NamesDoubleListedCall) {
  chaos::Snapshot s = consistent_snapshot();
  s.sighosts[0].outgoing_calls.push_back("mh.rt#2");
  s.sighosts[0].incoming_calls.push_back("mh.rt#2");
  const auto vs = chaos::check(s, clean_counts());
  EXPECT_TRUE(has_rule(vs, chaos::kDoubleListedCall));
}

TEST(InvariantChecker, NamesConservationAndLivenessBreaches) {
  chaos::WorkloadCounts w;
  w.opened = 3;
  w.delivered = 1;
  w.unresolved = 1;  // 1 open vanished entirely: conservation AND liveness
  auto vs = chaos::check(consistent_snapshot(), w);
  EXPECT_TRUE(has_rule(vs, chaos::kCallConservation));
  EXPECT_TRUE(has_rule(vs, chaos::kLiveness));

  w.failed = 1;  // now conserved, but still unresolved at quiescence
  vs = chaos::check(consistent_snapshot(), w);
  EXPECT_FALSE(has_rule(vs, chaos::kCallConservation));
  EXPECT_TRUE(has_rule(vs, chaos::kLiveness));

  chaos::WorkloadCounts multi = clean_counts();
  multi.multi_fired = 1;
  vs = chaos::check(consistent_snapshot(), multi);
  EXPECT_TRUE(has_rule(vs, chaos::kCallConservation));
}

TEST(InvariantChecker, CrashedSighostSuspendsItsAudits) {
  chaos::Snapshot s = consistent_snapshot();
  s.sighosts[0].alive = false;
  // Its call records are unknowable, not violations...
  s.call_records.erase(s.call_records.begin());
  const auto vs = chaos::check(s, clean_counts());
  EXPECT_FALSE(has_rule(vs, chaos::kOrphanKernelVci));
  EXPECT_FALSE(has_rule(vs, chaos::kOrphanNetworkVc));
  // ...but a sighost still down at quiescence is itself a liveness breach.
  EXPECT_TRUE(has_rule(vs, chaos::kLiveness));
}

TEST(InvariantChecker, ReservationLedgerWithinCapacityAuditsClean) {
  chaos::Snapshot s = consistent_snapshot();
  s.reservations.push_back({"s1", 0, 1'000'000, 45'000'000});
  s.reservations.push_back({"s1", 1, 45'000'000, 45'000'000});  // exactly full
  s.reservations.push_back({"s2", 0, 5'000'000, 0});  // no output link: skip
  const auto vs = chaos::check(s, clean_counts());
  EXPECT_FALSE(has_rule(vs, chaos::kQosOvercommit));
}

TEST(InvariantChecker, NamesQosOvercommit) {
  chaos::Snapshot s = consistent_snapshot();
  s.reservations.push_back({"s1", 2, 46'000'000, 45'000'000});
  const auto vs = chaos::check(s, clean_counts());
  ASSERT_TRUE(has_rule(vs, chaos::kQosOvercommit));
  const auto it = std::find_if(vs.begin(), vs.end(), [](const Violation& v) {
    return v.rule == chaos::kQosOvercommit;
  });
  EXPECT_NE(it->detail.find("sw=s1"), std::string::npos) << it->detail;
  EXPECT_NE(it->detail.find("port=2"), std::string::npos) << it->detail;
}

TEST(InvariantChecker, OverreserveSabotageSeamIsCaughtEndToEnd) {
  // Self-test of the conservation rule against a LIVE deployment, not a
  // hand-edited snapshot: corrupt one switch's bandwidth ledger through the
  // debug seam and the audit must name it; the same deployment untouched
  // must audit clean.  This is what keeps the rule honest — it proves
  // capture() really reads the switches, not a cached expectation.
  auto tb = core::TestbedConfig{}.build_deferred();
  ASSERT_TRUE(tb->bring_up().ok());
  tb->sim().run_for(sim::milliseconds(500));

  const auto before = chaos::check(chaos::capture(*tb), chaos::WorkloadCounts{});
  EXPECT_FALSE(has_rule(before, chaos::kQosOvercommit));

  atm::AtmSwitch* sw = tb->network().switch_by_name("s1");
  ASSERT_NE(sw, nullptr);
  // Find a port with an output link and push its ledger past capacity.
  int port = -1;
  for (int p = 0; p < sw->port_count(); ++p) {
    if (sw->output_rate_bps(p) > 0) {
      port = p;
      break;
    }
  }
  ASSERT_GE(port, 0) << "testbed switch has no output links";
  sw->debug_overreserve(port, sw->output_rate_bps(port) + 1);

  const auto after = chaos::check(chaos::capture(*tb), chaos::WorkloadCounts{});
  EXPECT_TRUE(has_rule(after, chaos::kQosOvercommit));
}

// ------------------------------------------------------- end-to-end runs

TEST(ChaosRun, FixedSeedsAuditCleanOnHealthyDeployment) {
  for (std::uint64_t seed : {3u, 11u}) {
    ChaosCase c;
    c.routers = 2;
    c.calls = 6;
    c.seed = seed;
    const chaos::RunOutcome o = chaos::run_case(c);
    EXPECT_TRUE(o.violations.empty())
        << "seed " << seed << ": " << o.violations.size()
        << " violations, first: " << o.violations[0].rule << " "
        << o.violations[0].detail;
    EXPECT_EQ(o.workload.opened,
              o.workload.delivered + o.workload.failed);
  }
}

// Regression for two real recovery bugs honest chaos sweeps surfaced:
//  * seed 1: the post-restart sighost restarted its req-id counter at 1 and
//    re-minted call keys ("mh.rt#2") its previous life's recovered calls
//    still carry in the peer — a timeout on the NEW call then tore the OLD
//    call's record out of the peer, orphaning its network VC.  Fixed by
//    incarnation-partitioned request ids (Kernel::next_sighost_incarnation).
//  * seed 24: overlapping double crash — the peer's recovery grace expired
//    while we were down and tore the VCs, so our own restart's audit found
//    bound kernel sockets with no VC and left them bound forever.  Fixed by
//    recover() disconnecting socket-without-VC orphans (the join's third
//    case).
// Both seeds must now audit clean with double crash/restarts allowed.
TEST(ChaosRun, HonestDoubleCrashSeedsAuditClean) {
  for (std::uint64_t seed : {1u, 24u}) {
    ChaosCase c;
    c.routers = 2;
    c.calls = 6;
    c.seed = seed;
    c.profile.max_crash_restarts = 2;
    const chaos::RunOutcome o = chaos::run_case(c);
    EXPECT_TRUE(o.violations.empty())
        << "seed " << seed << ": " << o.violations.size()
        << " violations, first: " << o.violations[0].rule << " "
        << o.violations[0].detail;
  }
}

TEST(ChaosRun, SameSeedReproducesByteIdentically) {
  ChaosCase c;
  c.routers = 2;
  c.calls = 4;
  c.seed = 5;
  const chaos::RunOutcome a = chaos::run_case(c);
  const chaos::RunOutcome b = chaos::run_case(c);
  EXPECT_EQ(chaos::to_artifact(c, a.schedule.events, a),
            chaos::to_artifact(c, b.schedule.events, b));
}

// The acceptance path: a deliberately sabotaged recovery audit (sighost
// skips its kernel/network cross-check after restart) must be FOUND by the
// chaos runner within the seed budget, SHRUNK to a minimal schedule, and
// the emitted artifact must REPLAY the identical violation byte-for-byte.
TEST(ChaosAcceptance, SabotagedRecoveryAuditIsFoundShrunkAndReplayed) {
  ChaosCase c;
  c.routers = 2;
  c.calls = 6;
  c.sabotage_skip_audit = true;
  c.profile.max_crash_restarts = 2;  // bias schedules toward crash coverage

  chaos::RunOutcome failing;
  std::uint64_t found_seed = 0;
  for (std::uint64_t seed = 1; seed <= 25; ++seed) {
    c.seed = seed;
    chaos::RunOutcome o = chaos::run_case(c);
    if (!o.violations.empty()) {
      failing = std::move(o);
      found_seed = seed;
      break;
    }
  }
  ASSERT_NE(found_seed, 0u)
      << "no seed in budget surfaced the sabotaged audit";
  c.seed = found_seed;
  // The sabotage leaves pre-crash state orphaned across layers.
  EXPECT_TRUE(has_rule(failing.violations, chaos::kOrphanKernelVci) ||
              has_rule(failing.violations, chaos::kOrphanNetworkVc))
      << failing.violations[0].rule << " " << failing.violations[0].detail;
  EXPECT_FALSE(failing.post_mortem.empty());

  // Shrink to a minimal repro: the crash/restart pair alone should suffice.
  const chaos::ShrinkResult shrunk = chaos::shrink(c, failing);
  ASSERT_FALSE(shrunk.minimal.empty());
  EXPECT_LE(shrunk.minimal.size(), 3u);
  const chaos::RunOutcome minimal_run = chaos::run_events(c, shrunk.minimal);
  ASSERT_TRUE(has_rule(minimal_run.violations, shrunk.rule));

  // The artifact replays byte-identically from (topology, workload, seed).
  const std::string artifact =
      chaos::to_artifact(c, shrunk.minimal, minimal_run);
  const chaos::ReplayResult replay = chaos::replay_artifact(artifact);
  ASSERT_TRUE(replay.parsed);
  EXPECT_EQ(replay.artifact, artifact);
  EXPECT_TRUE(replay.outcome.violations == minimal_run.violations);

  // Same seed without the sabotage: recovery's audit closes the gap, so
  // the very schedule that failed now passes — the checker keyed on the
  // sabotage, not on the faults.
  c.sabotage_skip_audit = false;
  const chaos::RunOutcome honest = chaos::run_events(c, shrunk.minimal);
  EXPECT_FALSE(has_rule(honest.violations, shrunk.rule))
      << honest.violations[0].detail;
}

// ------------------------------------------------- UserLib retry budget

struct RetryRig {
  std::unique_ptr<core::Testbed> tb;
  std::unique_ptr<core::CallServer> server;
  std::unique_ptr<core::CallClient> client;

  explicit RetryRig(core::TestbedConfig cfg = {}) {
    cfg.kernel.fd_table_size = 256;
    cfg.sighost.request_timeout = sim::seconds(3);
    tb = cfg.routers(2).pvc_mesh().build();
    auto& r1 = tb->router(1);
    server = std::make_unique<core::CallServer>(
        *r1.kernel, r1.kernel->ip_node().address(), "svc", 6200);
    server->start([](util::Result<void>) {});
    client = std::make_unique<core::CallClient>(
        *tb->router(0).kernel, tb->router(0).kernel->ip_node().address());
    tb->sim().run_for(sim::milliseconds(300));
  }
};

TEST(UserLibRetry, DeadlineBudgetSurvivesSighostOutage) {
  RetryRig rig;
  fault::FaultPlan plan(*rig.tb, 77);
  plan.crash_sighost_at(sim::milliseconds(300), 1);
  plan.restart_sighost_at(sim::milliseconds(1800), 1);
  plan.arm();

  int ok = 0, failed = 0, fired = 0;
  rig.tb->sim().schedule(sim::milliseconds(500), [&] {
    app::OpenOptions opts;
    opts.deadline = sim::seconds(12);
    rig.client->open("berkeley.rt", "svc", "", opts,
                     [&](util::Result<core::CallClient::Call> r) {
                       ++fired;
                       r.ok() ? ++ok : ++failed;
                     });
  });
  rig.tb->sim().run_for(sim::seconds(20));
  EXPECT_EQ(fired, 1);
  // The outage window rejects or strands the first attempts; the budget
  // must carry the call through to the restarted sighost.
  EXPECT_EQ(ok, 1) << "failed=" << failed;
}

TEST(UserLibRetry, ExhaustedDeadlineFailsExactlyOnce) {
  RetryRig rig;
  fault::FaultPlan plan(*rig.tb, 78);
  plan.crash_sighost_at(sim::milliseconds(200), 0);  // never restarted
  plan.arm();

  int ok = 0, failed = 0, fired = 0;
  rig.tb->sim().schedule(sim::milliseconds(400), [&] {
    app::OpenOptions opts;
    opts.deadline = sim::seconds(3);
    rig.client->open("berkeley.rt", "svc", "", opts,
                     [&](util::Result<core::CallClient::Call> r) {
                       ++fired;
                       r.ok() ? ++ok : ++failed;
                     });
  });
  rig.tb->sim().run_for(sim::seconds(15));
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(ok, 0);
  EXPECT_EQ(failed, 1);
}

TEST(UserLibRetry, PermanentErrorsAreNotRetried) {
  RetryRig rig;
  int fired = 0;
  sim::SimTime resolved{};
  const sim::SimTime issued = rig.tb->sim().now();
  app::OpenOptions opts;
  opts.deadline = sim::seconds(10);
  rig.client->open("berkeley.rt", "no-such-service", "", opts,
                   [&](util::Result<core::CallClient::Call> r) {
                     ++fired;
                     EXPECT_FALSE(r.ok());
                     resolved = rig.tb->sim().now();
                   });
  rig.tb->sim().run_for(sim::seconds(12));
  ASSERT_EQ(fired, 1);
  // A definitive rejection resolves immediately; the budget is not spent.
  EXPECT_LT((resolved - issued).ns(), sim::seconds(2).ns());
}

// ------------------------------------------------- FaultPlan contract

using FaultPlanContractDeathTest = ::testing::Test;

TEST(FaultPlanContractDeathTest, DoubleArmAborts) {
  testing::GTEST_FLAG(death_test_style) = "threadsafe";
  auto tb = core::TestbedConfig{}.routers(2).build_deferred();
  fault::FaultPlan plan(*tb, 1);
  plan.arm();
  EXPECT_TRUE(plan.armed());
  EXPECT_DEATH(plan.arm(), "FaultPlan misuse");
}

TEST(FaultPlanContractDeathTest, EventAfterArmAborts) {
  testing::GTEST_FLAG(death_test_style) = "threadsafe";
  auto tb = core::TestbedConfig{}.routers(2).build_deferred();
  fault::FaultPlan plan(*tb, 1);
  plan.arm();
  EXPECT_DEATH(plan.at(sim::seconds(1), "late", [] {}), "FaultPlan misuse");
}

TEST(FaultPlanContract, WireRulesAddedAfterArmTakeEffect) {
  RetryRig rig;
  fault::FaultPlan plan(*rig.tb, 9);
  plan.arm();  // armed with NO rules
  plan.drop_signaling(1.0);  // documented: live rule insertion works

  int fired = 0;
  rig.client->open("berkeley.rt", "svc", "",
                   [&](util::Result<core::CallClient::Call>) { ++fired; });
  rig.tb->sim().run_for(sim::seconds(5));
  EXPECT_GT(plan.stats().dropped, 0u);
}

}  // namespace
}  // namespace xunet
