// userlib_test.cpp — the user library's RPC plumbing, the anand stubs, and
// the kernel's buffered-event semantics that back them.
#include <gtest/gtest.h>

#include "core/apps.hpp"
#include "core/testbed.hpp"

namespace xunet {
namespace {

using core::CallClient;
using core::CallServer;
using core::Testbed;
using core::TestbedConfig;

struct LibFixture : ::testing::Test {
  std::unique_ptr<Testbed> tb;
  void SetUp() override {
    tb = TestbedConfig{}.build_deferred();
    ASSERT_TRUE(tb->bring_up().ok());
  }
  kern::Kernel& r0() { return *tb->router(0).kernel; }
  kern::Kernel& r1() { return *tb->router(1).kernel; }
};

TEST_F(LibFixture, MultipleOutstandingOpensCorrelateByReqId) {
  CallServer server(r1(), r1().ip_node().address(), "many", 4900);
  server.start([](util::Result<void>) {});
  tb->sim().run_for(sim::milliseconds(300));

  kern::Pid pid = r0().spawn("multi-open");
  app::UserLib lib(r0(), pid, r0().ip_node().address());
  // Fire 8 opens back to back before any completes; all must resolve.
  int done = 0;
  std::set<atm::Vci> vcis;
  for (int i = 0; i < 8; ++i) {
    lib.open_connection("berkeley.rt", "many", "", "",
                        [&](util::Result<app::OpenResult> r) {
                          ASSERT_TRUE(r.ok());
                          vcis.insert(r->vci);
                          ++done;
                          (void)lib.connect_data_socket(*r);
                        });
  }
  tb->sim().run_for(sim::seconds(10));
  EXPECT_EQ(done, 8);
  EXPECT_EQ(vcis.size(), 8u);  // all distinct calls
}

TEST_F(LibFixture, MultipleServicesFromOneProcess) {
  kern::Pid pid = r1().spawn("multi-svc");
  app::UserLib lib(r1(), pid, r1().ip_node().address());
  int regs = 0;
  for (int i = 0; i < 5; ++i) {
    lib.export_service("multi" + std::to_string(i), 4910,
                       [&](util::Result<void> r) {
                         if (r.ok()) ++regs;
                       });
  }
  tb->sim().run_for(sim::seconds(2));
  EXPECT_EQ(regs, 5);
  EXPECT_EQ(tb->router(1).sighost->service_list_size(), 5u);
}

TEST_F(LibFixture, ReRegistrationReplacesTheEntry) {
  kern::Pid p1 = r1().spawn("old-server");
  app::UserLib old_lib(r1(), p1, r1().ip_node().address());
  old_lib.export_service("moving", 4911, [](util::Result<void>) {});
  tb->sim().run_for(sim::milliseconds(300));

  // A new process takes over the service on a different port.
  kern::Pid p2 = r1().spawn("new-server");
  app::UserLib new_lib(r1(), p2, r1().ip_node().address());
  new_lib.export_service("moving", 4912, [](util::Result<void>) {});
  std::optional<app::IncomingRequest> got;
  new_lib.await_service_request(
      [&](util::Result<app::IncomingRequest> r) { got = *r; });
  tb->sim().run_for(sim::milliseconds(300));
  EXPECT_EQ(tb->router(1).sighost->service_list_size(), 1u);

  CallClient client(r0(), r0().ip_node().address());
  client.open("berkeley.rt", "moving", "",
              [](util::Result<CallClient::Call>) {});
  tb->sim().run_for(sim::seconds(2));
  // The call was forwarded to the NEW registrant.
  EXPECT_TRUE(got.has_value());
}

TEST_F(LibFixture, WithdrawServiceRemovesIt) {
  kern::Pid pid = r1().spawn("withdrawer");
  app::UserLib lib(r1(), pid, r1().ip_node().address());
  bool reg = false, unreg = false;
  lib.export_service("temp-svc", 4915, [&](util::Result<void> r) { reg = r.ok(); });
  tb->sim().run_for(sim::milliseconds(300));
  ASSERT_TRUE(reg);
  ASSERT_TRUE(tb->router(1).sighost->has_service("temp-svc"));

  lib.unexport_service("temp-svc", [&](util::Result<void> r) { unreg = r.ok(); });
  tb->sim().run_for(sim::milliseconds(300));
  EXPECT_TRUE(unreg);
  EXPECT_FALSE(tb->router(1).sighost->has_service("temp-svc"));

  // New calls to the withdrawn service fail with not_found.
  CallClient client(r0(), r0().ip_node().address());
  std::optional<util::Errc> err;
  client.open("berkeley.rt", "temp-svc", "",
              [&](util::Result<CallClient::Call> r) { err = r.error(); });
  tb->sim().run_for(sim::seconds(2));
  ASSERT_TRUE(err.has_value());
  EXPECT_EQ(*err, util::Errc::not_found);
}

TEST_F(LibFixture, WithdrawByAnotherMachineIsRefused) {
  // Only the registering machine may withdraw (same trust boundary as
  // registration).
  kern::Pid pid = r1().spawn("owner");
  app::UserLib owner(r1(), pid, r1().ip_node().address());
  owner.export_service("guarded", 4916, [](util::Result<void>) {});
  tb->sim().run_for(sim::milliseconds(300));

  kern::Pid thief_pid = r0().spawn("thief");
  app::UserLib thief(r0(), thief_pid, r1().ip_node().address());
  thief.unexport_service("guarded", [](util::Result<void>) {});
  tb->sim().run_for(sim::milliseconds(500));
  EXPECT_TRUE(tb->router(1).sighost->has_service("guarded"));
}

TEST_F(LibFixture, ExportWithBadArgumentsFails) {
  kern::Pid pid = r1().spawn("bad-export");
  app::UserLib lib(r1(), pid, r1().ip_node().address());
  std::optional<util::Errc> err;
  lib.export_service("", 0, [&](util::Result<void> r) { err = r.error(); });
  tb->sim().run_for(sim::seconds(1));
  // The library rejects port 0 locally (tcp_listen) or sighost declines.
  ASSERT_TRUE(err.has_value());
  EXPECT_NE(*err, util::Errc::ok);
}

TEST_F(LibFixture, OpenToEmptyDestinationFails) {
  kern::Pid pid = r0().spawn("bad-open");
  app::UserLib lib(r0(), pid, r0().ip_node().address());
  std::optional<util::Errc> err;
  lib.open_connection("", "svc", "", "",
                      [&](util::Result<app::OpenResult> r) { err = r.error(); });
  tb->sim().run_for(sim::seconds(2));
  ASSERT_TRUE(err.has_value());
  EXPECT_EQ(*err, util::Errc::no_route);
}

TEST_F(LibFixture, AwaitQueuesWhenRequestsArriveFirst) {
  kern::Pid pid = r1().spawn("lazy-await");
  app::UserLib lib(r1(), pid, r1().ip_node().address());
  lib.export_service("queued", 4913, [](util::Result<void>) {});
  tb->sim().run_for(sim::milliseconds(300));

  // Three calls arrive before the server ever awaits.
  CallClient client(r0(), r0().ip_node().address());
  for (int i = 0; i < 3; ++i) {
    client.open("berkeley.rt", "queued", "",
                [](util::Result<CallClient::Call>) {});
  }
  tb->sim().run_for(sim::seconds(2));

  // Now the server awaits three times and gets all three queued requests.
  int got = 0;
  for (int i = 0; i < 3; ++i) {
    lib.await_service_request([&](util::Result<app::IncomingRequest> r) {
      if (r.ok()) {
        ++got;
        lib.reject_connection(*r);
      }
    });
  }
  tb->sim().run_for(sim::seconds(2));
  EXPECT_EQ(got, 3);
}

TEST_F(LibFixture, DoubleAwaitIsRejected) {
  kern::Pid pid = r1().spawn("double-await");
  app::UserLib lib(r1(), pid, r1().ip_node().address());
  lib.await_service_request([](util::Result<app::IncomingRequest>) {});
  std::optional<util::Errc> err;
  lib.await_service_request(
      [&](util::Result<app::IncomingRequest> r) { err = r.error(); });
  ASSERT_TRUE(err.has_value());
  EXPECT_EQ(*err, util::Errc::would_block);
}

// --------------------------------------------------- kernel event buffering

TEST_F(LibFixture, XunetSocketBuffersFramesUntilReaderRegisters) {
  CallServer server(r1(), r1().ip_node().address(), "buffered", 4914);
  server.start([](util::Result<void>) {});
  tb->sim().run_for(sim::milliseconds(300));
  CallClient client(r0(), r0().ip_node().address());
  std::optional<CallClient::Call> call;
  client.open("berkeley.rt", "buffered", "",
              [&](util::Result<CallClient::Call> r) { call = *r; });
  tb->sim().run_for(sim::seconds(2));
  ASSERT_TRUE(call.has_value());

  // A second receiving socket bound by hand, with frames arriving before
  // the read handler exists.
  // (The CallServer auto-registered; use its own socket state to verify the
  // end-to-end path instead: frames already counted.)
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(client.send(*call, util::Buffer(10, 1)).ok());
  }
  tb->sim().run_for(sim::seconds(1));
  EXPECT_EQ(server.frames_received(), 5u);
}

TEST(KernelBuffering, RxQueueOverflowDropsLikeADatagramSocket) {
  sim::Simulator sim;
  kern::Kernel k(sim, "m", kern::Kernel::Role::host, ip::make_ip(9, 9, 9, 9),
                 atm::AtmAddress{"m"});
  kern::Pid pid = k.spawn("slow-reader");
  auto fd = k.xunet_socket(pid);
  ASSERT_TRUE(fd.ok());
  ASSERT_TRUE(k.xunet_bind(pid, *fd, 70, 1).ok());
  // Inject 100 frames through the Orc driver with no reader registered:
  // the socket buffer holds 64, the rest drop.
  for (int i = 0; i < 100; ++i) {
    k.orc().input(70, kern::MbufChain::from_bytes(util::Buffer(8, 0x2), 128));
  }
  EXPECT_EQ(k.xunet_frames_dropped(), 100u - 64u);
  // Registering the reader now drains the 64 buffered frames.
  int got = 0;
  ASSERT_TRUE(k.xunet_on_receive(pid, *fd, [&](util::BytesView) { ++got; }).ok());
  sim.run();
  EXPECT_EQ(got, 64);
}

TEST(KernelBuffering, TcpDataBeforeHandlerIsDelivered) {
  sim::Simulator sim;
  kern::Kernel ka(sim, "a", kern::Kernel::Role::host, ip::make_ip(1, 1, 1, 1),
                  atm::AtmAddress{"a"});
  kern::Kernel kb(sim, "b", kern::Kernel::Role::host, ip::make_ip(2, 2, 2, 2),
                  atm::AtmAddress{"b"});
  ip::IpLink link(sim, ip::kFddiBps, sim::microseconds(50), ip::kFddiMtu);
  link.attach(ka.ip_node(), kb.ip_node());
  ka.ip_node().set_default_route(link);
  kb.ip_node().set_default_route(link);

  kern::Pid sp = kb.spawn("server");
  kern::Pid cp = ka.spawn("client");
  std::optional<int> afd, cfd;
  ASSERT_TRUE(kb.tcp_listen(sp, 80, [&](int fd) { afd = fd; }).ok());
  (void)ka.tcp_connect(cp, kb.ip_node().address(), 80,
                       [&](util::Result<int> r) { cfd = *r; });
  sim.run_for(sim::milliseconds(100));
  ASSERT_TRUE(afd && cfd);

  // Client sends before the server registers any receive handler.
  ASSERT_TRUE(ka.tcp_send(cp, *cfd, util::to_buffer(std::string_view("early"))).ok());
  sim.run_for(sim::milliseconds(200));
  std::string got;
  ASSERT_TRUE(kb.tcp_on_receive(sp, *afd, [&](util::BytesView d) {
                  got += util::to_text(d);
                }).ok());
  sim.run_for(sim::milliseconds(100));
  EXPECT_EQ(got, "early");
}

TEST(KernelBuffering, TcpCloseBeforeHandlerIsDelivered) {
  sim::Simulator sim;
  kern::Kernel ka(sim, "a", kern::Kernel::Role::host, ip::make_ip(1, 1, 1, 1),
                  atm::AtmAddress{"a"});
  kern::Kernel kb(sim, "b", kern::Kernel::Role::host, ip::make_ip(2, 2, 2, 2),
                  atm::AtmAddress{"b"});
  ip::IpLink link(sim, ip::kFddiBps, sim::microseconds(50), ip::kFddiMtu);
  link.attach(ka.ip_node(), kb.ip_node());
  ka.ip_node().set_default_route(link);
  kb.ip_node().set_default_route(link);

  kern::Pid sp = kb.spawn("server");
  kern::Pid cp = ka.spawn("client");
  std::optional<int> afd, cfd;
  ASSERT_TRUE(kb.tcp_listen(sp, 80, [&](int fd) { afd = fd; }).ok());
  (void)ka.tcp_connect(cp, kb.ip_node().address(), 80,
                       [&](util::Result<int> r) { cfd = *r; });
  sim.run_for(sim::milliseconds(100));
  ASSERT_TRUE(afd && cfd);

  // The client process dies (RST) before the server registered tcp_on_close.
  ASSERT_TRUE(ka.kill_process(cp).ok());
  sim.run_for(sim::milliseconds(200));
  std::optional<util::Errc> reason;
  ASSERT_TRUE(kb.tcp_on_close(sp, *afd, [&](util::Errc e) { reason = e; }).ok());
  sim.run_for(sim::milliseconds(100));
  ASSERT_TRUE(reason.has_value());
  EXPECT_EQ(*reason, util::Errc::connection_reset);
  // The descriptor is still close()able and frees cleanly.
  EXPECT_TRUE(kb.close(sp, *afd).ok());
  EXPECT_EQ(kb.fd_in_use(sp), 1u);  // just the listener
}

// ------------------------------------------------------------- anand stubs

TEST(AnandStubs, HostIndicationsReachTheRouterSighost) {
  // Covered end-to-end by integration tests; here, verify the specific
  // relay path counters: a host bind indication must create a VCI_BIND at
  // the router even when sighost state for it is stale.
  auto tb = TestbedConfig{}.hosts(2).build_deferred();
  ASSERT_TRUE(tb->bring_up().ok());
  auto& h0 = tb->host(0);
  kern::Pid pid = h0.kernel->spawn("odd-binder");
  auto fd = h0.kernel->xunet_socket(pid);
  ASSERT_TRUE(fd.ok());
  // Bind to an arbitrary VCI with a garbage cookie: the indication flows
  // host kernel -> anand client -> anand server, which installs VCI_BIND
  // before relaying to sighost.  No call exists for the VCI, so the sighost
  // answers the stale indication with a downward disconnect: the VCI_BIND
  // is shut again and the host's socket is marked unusable, instead of
  // being left bound to a dead VCI forever.
  ASSERT_TRUE(h0.kernel->xunet_bind(pid, *fd, 99, 0xDEAD).ok());
  tb->sim().run_for(sim::seconds(1));
  EXPECT_EQ(tb->router(0).anand_server->forwarded_vci_count(), 0u);
  // No call existed, so nothing counts as a teardown.
  EXPECT_EQ(tb->router(0).sighost->stats().calls_torn_down, 0u);
  // The downward disconnect reached the host kernel: the socket is dead.
  EXPECT_FALSE(h0.kernel->xunet_send(pid, *fd, util::Buffer{1, 2, 3}).ok());
}

TEST(AnandStubs, DownwardDisconnectReachesTheRightHost) {
  auto tb = TestbedConfig{}.hosts(2).build_deferred();
  ASSERT_TRUE(tb->bring_up().ok());
  auto& h1 = tb->host(1);
  CallServer server(*h1.kernel, h1.home->kernel->ip_node().address(), "dsvc",
                    4920);
  server.start([](util::Result<void>) {});
  tb->sim().run_for(sim::milliseconds(300));
  CallClient client(*tb->host(0).kernel,
                    tb->host(0).home->kernel->ip_node().address());
  std::optional<CallClient::Call> call;
  client.open("berkeley.rt", "dsvc", "",
              [&](util::Result<CallClient::Call> r) { call = *r; });
  tb->sim().run_for(sim::seconds(3));
  ASSERT_TRUE(call.has_value());
  ASSERT_EQ(server.open_sockets(), 1u);

  // Client host dies: the teardown's downward disconnect must cross two
  // relay hops (sighost -> anand server -> anand client at the far host).
  client.kill();
  tb->sim().run_for(sim::seconds(5));
  EXPECT_EQ(server.open_sockets(), 0u);  // server saw the disconnect, closed
  EXPECT_TRUE(tb->audit().clean()) << tb->audit().describe();
}

}  // namespace
}  // namespace xunet
