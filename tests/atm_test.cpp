// atm_test.cpp — QoS, VCI allocation, cell links, switches, and the ATM
// network controller (routing, admission, PVCs, teardown).
#include <gtest/gtest.h>

#include "atm/network.hpp"
#include "atm/qos.hpp"

namespace xunet::atm {
namespace {

// --------------------------------------------------------------------- QoS

TEST(Qos, FormatAndParseRoundTrip) {
  Qos q{ServiceClass::guaranteed, 1'500'000};
  auto s = to_string(q);
  EXPECT_EQ(s, "class=guaranteed,bw=1500000");
  auto back = parse_qos(s);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, q);
}

TEST(Qos, EmptyStringIsBestEffort) {
  auto q = parse_qos("");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->service_class, ServiceClass::best_effort);
  EXPECT_EQ(q->bandwidth_bps, 0u);
  EXPECT_FALSE(q->needs_reservation());
}

TEST(Qos, UnknownKeysIgnoredForExtensibility) {
  auto q = parse_qos("class=predicted,bw=100,delay=5ms");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->service_class, ServiceClass::predicted);
  EXPECT_EQ(q->bandwidth_bps, 100u);
}

TEST(Qos, MalformedStringsRejected) {
  EXPECT_FALSE(parse_qos("class").ok());
  EXPECT_FALSE(parse_qos("bw=abc").ok());
  EXPECT_FALSE(parse_qos("class=warp").ok());
  EXPECT_FALSE(parse_qos("bw=1x").ok());
}

struct NegotiateCase {
  Qos offered;
  Qos limit;
  Qos expect;
};

class QosNegotiate : public ::testing::TestWithParam<NegotiateCase> {};

TEST_P(QosNegotiate, ServerMayOnlyShrink) {
  const auto& c = GetParam();
  Qos granted = negotiate(c.offered, c.limit);
  EXPECT_EQ(granted, c.expect);
  // The granted QoS never exceeds either side.
  EXPECT_LE(granted.bandwidth_bps, c.offered.bandwidth_bps);
  EXPECT_LE(granted.bandwidth_bps, c.limit.bandwidth_bps);
}

INSTANTIATE_TEST_SUITE_P(
    Cases, QosNegotiate,
    ::testing::Values(
        NegotiateCase{{ServiceClass::guaranteed, 100}, {ServiceClass::guaranteed, 200}, {ServiceClass::guaranteed, 100}},
        NegotiateCase{{ServiceClass::guaranteed, 300}, {ServiceClass::predicted, 200}, {ServiceClass::predicted, 200}},
        NegotiateCase{{ServiceClass::best_effort, 0}, {ServiceClass::guaranteed, 200}, {ServiceClass::best_effort, 0}},
        NegotiateCase{{ServiceClass::predicted, 500}, {ServiceClass::guaranteed, 100}, {ServiceClass::predicted, 100}}));

// ----------------------------------------------------------- VciAllocator

TEST(VciAllocator, AllocatesDistinctSwitchedVcis) {
  VciAllocator a;
  auto v1 = a.allocate();
  auto v2 = a.allocate();
  ASSERT_TRUE(v1.ok() && v2.ok());
  EXPECT_NE(*v1, *v2);
  EXPECT_GE(*v1, kFirstSwitchedVci);
}

TEST(VciAllocator, ReserveAndConflict) {
  VciAllocator a;
  EXPECT_TRUE(a.reserve(5).ok());
  EXPECT_EQ(a.reserve(5).error(), util::Errc::duplicate);
  EXPECT_EQ(a.reserve(0).error(), util::Errc::invalid_argument);
  a.release(5);
  EXPECT_TRUE(a.reserve(5).ok());
}

TEST(VciAllocator, ReleaseEnablesReuse) {
  VciAllocator a;
  auto v = a.allocate();
  ASSERT_TRUE(v.ok());
  a.release(*v);
  auto again = a.allocate();
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(*again, *v);
}

TEST(VciAllocator, ExhaustionReported) {
  VciAllocator a;
  // 32-bit counter: kMaxVci is the top of the 16-bit space, so a Vci loop
  // variable would wrap instead of terminating.
  for (std::uint32_t v = kFirstSwitchedVci; v <= kMaxVci; ++v) {
    ASSERT_TRUE(a.allocate().ok());
  }
  EXPECT_EQ(a.allocate().error(), util::Errc::no_resources);
}

// ---------------------------------------------------------------- CellLink

struct SinkCapture : CellSink {
  std::vector<Cell> cells;
  void cell_arrival(const Cell& c) override { cells.push_back(c); }
};

TEST(CellLink, DeliversAfterSerializationAndPropagation) {
  sim::Simulator sim;
  SinkCapture sink;
  CellLink link(sim, kDs3Bps, sim::microseconds(100), sink);
  Cell c;
  c.vci = 42;
  link.send(c);
  sim.run();
  ASSERT_EQ(sink.cells.size(), 1u);
  // 424 bits at 45 Mb/s ≈ 9.42 us + 100 us propagation.
  EXPECT_NEAR(sim.now().us(), 424.0 / 45.0 + 100.0, 0.1);
}

TEST(CellLink, BackToBackCellsQueueAtLineRate) {
  sim::Simulator sim;
  SinkCapture sink;
  CellLink link(sim, kDs3Bps, sim::SimDuration{}, sink);
  for (int i = 0; i < 10; ++i) link.send(Cell{});
  sim.run();
  EXPECT_EQ(sink.cells.size(), 10u);
  EXPECT_NEAR(sim.now().us(), 10 * 424.0 / 45.0, 0.2);
  EXPECT_EQ(link.cells_sent(), 10u);
}

TEST(CellLink, LossInjectionDropsCells) {
  sim::Simulator sim;
  SinkCapture sink;
  util::Rng rng(3);
  CellLink link(sim, kOc12Bps, sim::SimDuration{}, sink);
  link.set_loss(0.5, &rng);
  for (int i = 0; i < 1000; ++i) link.send(Cell{});
  sim.run();
  EXPECT_GT(link.cells_dropped(), 350u);
  EXPECT_LT(link.cells_dropped(), 650u);
  EXPECT_EQ(sink.cells.size() + link.cells_dropped(), 1000u);
}

// --------------------------------------------------------------- AtmSwitch

TEST(AtmSwitch, RoutesAndRewritesVci) {
  sim::Simulator sim;
  AtmSwitch sw(sim, "s");
  SinkCapture out;
  int p_in = sw.add_port();
  int p_out = sw.add_port();
  CellLink out_link(sim, kDs3Bps, sim::SimDuration{}, out);
  sw.set_output(p_out, out_link);
  ASSERT_TRUE(sw.install_route(p_in, 50, p_out, 60, Qos{}).ok());

  Cell c;
  c.vci = 50;
  sw.input(p_in).cell_arrival(c);
  sim.run();
  ASSERT_EQ(out.cells.size(), 1u);
  EXPECT_EQ(out.cells[0].vci, 60);
  EXPECT_EQ(sw.cells_switched(), 1u);
}

TEST(AtmSwitch, UnroutedCellsDropAndCount) {
  sim::Simulator sim;
  AtmSwitch sw(sim, "s");
  int p_in = sw.add_port();
  Cell c;
  c.vci = 99;
  sw.input(p_in).cell_arrival(c);
  sim.run();
  EXPECT_EQ(sw.cells_unroutable(), 1u);
}

TEST(AtmSwitch, DuplicateRouteRejected) {
  sim::Simulator sim;
  AtmSwitch sw(sim, "s");
  SinkCapture out;
  int p_in = sw.add_port();
  int p_out = sw.add_port();
  CellLink out_link(sim, kDs3Bps, sim::SimDuration{}, out);
  sw.set_output(p_out, out_link);
  ASSERT_TRUE(sw.install_route(p_in, 50, p_out, 60, Qos{}).ok());
  EXPECT_EQ(sw.install_route(p_in, 50, p_out, 61, Qos{}).error(),
            util::Errc::duplicate);
}

TEST(AtmSwitch, AdmissionControlEnforcesLinkCapacity) {
  sim::Simulator sim;
  AtmSwitch sw(sim, "s");
  SinkCapture out;
  int p_in = sw.add_port();
  int p_out = sw.add_port();
  CellLink out_link(sim, kDs3Bps, sim::SimDuration{}, out);  // 45 Mb/s
  sw.set_output(p_out, out_link);

  Qos q30{ServiceClass::guaranteed, 30'000'000};
  Qos q20{ServiceClass::guaranteed, 20'000'000};
  EXPECT_TRUE(sw.install_route(p_in, 50, p_out, 60, q30).ok());
  EXPECT_EQ(sw.reserved_bps(p_out), 30'000'000u);
  EXPECT_EQ(sw.install_route(p_in, 51, p_out, 61, q20).error(),
            util::Errc::no_resources);
  // Best effort always fits.
  EXPECT_TRUE(sw.install_route(p_in, 52, p_out, 62, Qos{}).ok());
  // Removing the reservation frees capacity.
  EXPECT_TRUE(sw.remove_route(p_in, 50).ok());
  EXPECT_EQ(sw.reserved_bps(p_out), 0u);
  EXPECT_TRUE(sw.install_route(p_in, 51, p_out, 61, q20).ok());
}

TEST(AtmSwitch, RemoveUnknownRouteFails) {
  sim::Simulator sim;
  AtmSwitch sw(sim, "s");
  sw.add_port();
  EXPECT_EQ(sw.remove_route(0, 1).error(), util::Errc::not_found);
}

// -------------------------------------------------------------- AtmNetwork

struct NetFixture : ::testing::Test {
  sim::Simulator sim;
  atm::AtmNetwork net{sim};
  SinkCapture ep_a, ep_b;
  CellLink* up_a = nullptr;
  CellLink* up_b = nullptr;

  void SetUp() override {
    auto& s1 = net.make_switch("s1");
    auto& s2 = net.make_switch("s2");
    net.connect_switches(s1, s2, kDs3Bps, sim::microseconds(500));
    auto a = net.attach_endpoint(AtmAddress{"a"}, ep_a, s1, kDs3Bps,
                                 sim::microseconds(100));
    auto b = net.attach_endpoint(AtmAddress{"b"}, ep_b, s2, kDs3Bps,
                                 sim::microseconds(100));
    ASSERT_TRUE(a.ok() && b.ok());
    up_a = *a;
    up_b = *b;
  }
};

TEST_F(NetFixture, SetupVcEndToEndAndDataFlows) {
  std::optional<util::Result<VcHandle>> result;
  net.setup_vc(AtmAddress{"a"}, AtmAddress{"b"}, Qos{},
               [&](util::Result<VcHandle> r) { result = r; });
  sim.run();
  ASSERT_TRUE(result.has_value() && result->ok());
  VcHandle h = result->value();
  EXPECT_EQ(h.hop_count, 3);  // a-s1, s1-s2, s2-b: the 3-hop path of §9

  Cell c;
  c.vci = h.src_vci;
  up_a->send(c);
  sim.run();
  ASSERT_EQ(ep_b.cells.size(), 1u);
  EXPECT_EQ(ep_b.cells[0].vci, h.dst_vci);
  EXPECT_EQ(net.active_vc_count(), 1u);
}

TEST_F(NetFixture, SetupLatencyModelsSwitchesAndPropagation) {
  sim::SimTime start = sim.now();
  std::optional<sim::SimTime> done;
  net.setup_vc(AtmAddress{"a"}, AtmAddress{"b"}, Qos{},
               [&](util::Result<VcHandle>) { done = sim.now(); });
  sim.run();
  ASSERT_TRUE(done.has_value());
  // 2 switches × 2 ms + 2 × (100+500+100) us propagation = 5.4 ms.
  EXPECT_NEAR((*done - start).ms(), 5.4, 0.01);
}

TEST_F(NetFixture, TeardownReleasesEverything) {
  std::optional<VcHandle> h;
  net.setup_vc(AtmAddress{"a"}, AtmAddress{"b"}, Qos{},
               [&](util::Result<VcHandle> r) { h = *r; });
  sim.run();
  ASSERT_TRUE(h.has_value());
  EXPECT_TRUE(net.teardown(h->id).ok());
  EXPECT_EQ(net.active_vc_count(), 0u);
  EXPECT_EQ(net.teardown(h->id).error(), util::Errc::not_found);

  // Data on the dead VC goes nowhere.
  Cell c;
  c.vci = h->src_vci;
  up_a->send(c);
  sim.run();
  EXPECT_TRUE(ep_b.cells.empty());
}

TEST_F(NetFixture, AdmissionDenialRollsBackPartialState) {
  Qos q{ServiceClass::guaranteed, 40'000'000};
  std::optional<util::Result<VcHandle>> r1, r2;
  net.setup_vc(AtmAddress{"a"}, AtmAddress{"b"}, q,
               [&](util::Result<VcHandle> r) { r1 = r; });
  net.setup_vc(AtmAddress{"a"}, AtmAddress{"b"}, q,
               [&](util::Result<VcHandle> r) { r2 = r; });
  sim.run();
  ASSERT_TRUE(r1 && r1->ok());
  ASSERT_TRUE(r2 && !r2->ok());
  EXPECT_EQ(r2->error(), util::Errc::no_resources);
  EXPECT_EQ(net.active_vc_count(), 1u);
  // Tear down the first; the same request now fits (no leaked reservation).
  ASSERT_TRUE(net.teardown(r1->value().id).ok());
  std::optional<util::Result<VcHandle>> r3;
  net.setup_vc(AtmAddress{"a"}, AtmAddress{"b"}, q,
               [&](util::Result<VcHandle> r) { r3 = r; });
  sim.run();
  ASSERT_TRUE(r3 && r3->ok());
}

TEST_F(NetFixture, UnknownEndpointsFail) {
  std::optional<util::Result<VcHandle>> r;
  net.setup_vc(AtmAddress{"a"}, AtmAddress{"ghost"}, Qos{},
               [&](util::Result<VcHandle> rr) { r = rr; });
  sim.run();
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->error(), util::Errc::no_route);
  EXPECT_EQ(net.setups_denied(), 1u);
}

TEST_F(NetFixture, PvcUsesRequestedVciOnBothEnds) {
  auto h = net.setup_pvc(AtmAddress{"a"}, AtmAddress{"b"}, 5, Qos{});
  ASSERT_TRUE(h.ok());
  EXPECT_EQ(h->src_vci, 5);
  EXPECT_EQ(h->dst_vci, 5);
  // The VCI is now taken on those links: a second identical PVC fails.
  EXPECT_EQ(net.setup_pvc(AtmAddress{"a"}, AtmAddress{"b"}, 5, Qos{}).error(),
            util::Errc::duplicate);
  // Cells flow over it.
  Cell c;
  c.vci = 5;
  up_a->send(c);
  sim.run();
  ASSERT_EQ(ep_b.cells.size(), 1u);
}

TEST_F(NetFixture, SwitchedVcisAvoidPvcRange) {
  (void)net.setup_pvc(AtmAddress{"a"}, AtmAddress{"b"}, 1, Qos{});
  std::optional<VcHandle> h;
  net.setup_vc(AtmAddress{"a"}, AtmAddress{"b"}, Qos{},
               [&](util::Result<VcHandle> r) { h = *r; });
  sim.run();
  ASSERT_TRUE(h.has_value());
  EXPECT_GE(h->src_vci, kFirstSwitchedVci);
}

TEST_F(NetFixture, ManyVcsGetDistinctVcis) {
  std::vector<VcHandle> handles;
  for (int i = 0; i < 50; ++i) {
    net.setup_vc(AtmAddress{"a"}, AtmAddress{"b"}, Qos{},
                 [&](util::Result<VcHandle> r) {
                   ASSERT_TRUE(r.ok());
                   handles.push_back(*r);
                 });
  }
  sim.run();
  ASSERT_EQ(handles.size(), 50u);
  std::set<Vci> src;
  for (const auto& h : handles) src.insert(h.src_vci);
  EXPECT_EQ(src.size(), 50u);
}

}  // namespace
}  // namespace xunet::atm
