// extensions_test.cpp — the optional/extension features layered on the
// paper's system: the encapsulation header checksum (§7.4: "could be added
// ... if needed"), link reordering against the sequence-number guarantee,
// duplex channels composed from simplex calls (§3's return-connection
// pattern), and the network-management view of sighost state (§5.1).
#include <gtest/gtest.h>

#include "core/apps.hpp"
#include "core/duplex.hpp"
#include "core/testbed.hpp"

namespace xunet {
namespace {

using core::CallClient;
using core::CallServer;
using core::Testbed;
using core::TestbedConfig;

// ------------------------------------------------ encapsulation checksum

struct ChecksumRig {
  std::unique_ptr<Testbed> tb;
  std::unique_ptr<CallServer> server;
  std::unique_ptr<CallClient> client;
  std::optional<CallClient::Call> call;

  explicit ChecksumRig(bool checksum) {
    core::TestbedConfig cfg;
    cfg.kernel.encap_checksum = checksum;
    tb = cfg.hosts(2).build_deferred();
    EXPECT_TRUE(tb->bring_up().ok());
    auto& h1 = tb->host(1);
    server = std::make_unique<CallServer>(
        *h1.kernel, h1.home->kernel->ip_node().address(), "csum", 4600);
    server->start([](util::Result<void>) {});
    tb->sim().run_for(sim::milliseconds(300));
    client = std::make_unique<CallClient>(
        *tb->host(0).kernel, tb->host(0).home->kernel->ip_node().address());
    client->open("berkeley.rt", "csum", "",
                 [&](util::Result<CallClient::Call> r) {
                   if (r.ok()) call = *r;
                 });
    tb->sim().run_for(sim::seconds(2));
    EXPECT_TRUE(call.has_value());
  }
};

TEST(EncapChecksum, CleanPathUnaffected) {
  ChecksumRig rig(/*checksum=*/true);
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(rig.client->send(*rig.call, util::Buffer(500, 0x7A)).ok());
  }
  rig.tb->sim().run_for(sim::seconds(2));
  EXPECT_EQ(rig.server->frames_received(), 20u);
  EXPECT_EQ(rig.tb->router(0).kernel->proto_atm().checksum_drops(), 0u);
}

TEST(EncapChecksum, WithoutChecksumCorruptionIsDeliveredSilently) {
  // The paper's default: no checksum, "our IP links are over reliable FDDI
  // links".  On a corrupting link the payload arrives damaged but nothing
  // in the encapsulation path notices.
  ChecksumRig rig(/*checksum=*/false);
  util::Rng rng(42);
  rig.tb->host(0).link->set_corrupt(1.0, &rng);  // corrupt every frame
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(rig.client->send(*rig.call, util::Buffer(500, 0x7A)).ok());
  }
  rig.tb->sim().run_for(sim::seconds(2));
  // Some frames may die of IP-header corruption or mangled encapsulation
  // framing (a flipped bit in the "unchecked" marker even reads as a bogus
  // checksum), but at least one corrupted payload slips through silently —
  // the hazard the checksum extension exists to close.
  EXPECT_GT(rig.server->frames_received(), 0u);
}

TEST(EncapChecksum, WithChecksumCorruptionIsDroppedAndCounted) {
  ChecksumRig rig(/*checksum=*/true);
  util::Rng rng(42);
  rig.tb->host(0).link->set_corrupt(1.0, &rng);
  std::uint64_t before = rig.server->frames_received();
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(rig.client->send(*rig.call, util::Buffer(500, 0x7A)).ok());
  }
  rig.tb->sim().run_for(sim::seconds(2));
  // Every corrupted arrival is caught: either by the IP header checksum or
  // by the encapsulation checksum; none is delivered.
  EXPECT_EQ(rig.server->frames_received(), before);
  EXPECT_GT(rig.tb->router(0).kernel->proto_atm().checksum_drops(), 0u);
}

// ----------------------------------------------------- reordering detection

TEST(Reordering, SequenceNumbersDetectReorderedEncapsulation) {
  // §5.4: "All the encapsulation header needs to do is to detect out of
  // order frames, which we do using a sequence number field."  A reordering
  // access link exercises exactly that.
  auto tb = TestbedConfig{}.hosts(2).build_deferred();
  ASSERT_TRUE(tb->bring_up().ok());
  auto& h1 = tb->host(1);
  CallServer server(*h1.kernel, h1.home->kernel->ip_node().address(), "reord",
                    4601);
  server.start([](util::Result<void>) {});
  tb->sim().run_for(sim::milliseconds(300));
  CallClient client(*tb->host(0).kernel,
                    tb->host(0).home->kernel->ip_node().address());
  std::optional<CallClient::Call> call;
  client.open("berkeley.rt", "reord", "",
              [&](util::Result<CallClient::Call> r) { call = *r; });
  tb->sim().run_for(sim::seconds(2));
  ASSERT_TRUE(call.has_value());

  util::Rng rng(7);
  // Delay ~30% of frames by up to 2 ms: later frames overtake them.
  tb->host(0).link->set_reorder(0.3, sim::milliseconds(2), &rng);
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(client.send(*call, util::Buffer(100, 0x1)).ok());
  }
  tb->sim().run_for(sim::seconds(5));
  EXPECT_GT(tb->host(0).link->frames_reordered(), 0u);
  // The router's decapsulation point detected (and discarded) the
  // out-of-order arrivals; everything delivered was in sequence.
  auto& pa = tb->router(0).kernel->proto_atm();
  EXPECT_GT(pa.out_of_order(), 0u);
  EXPECT_EQ(server.frames_received() + pa.out_of_order(),
            pa.out_of_order() + server.frames_received());  // tautology guard
  EXPECT_LE(server.frames_received(), 100u);
  EXPECT_EQ(server.bytes_received(), server.frames_received() * 100u);
}

TEST(Reordering, TcpDeliversInOrderDespiteReordering) {
  sim::Simulator sim;
  ip::IpNode a(sim, "a", ip::make_ip(1, 1, 1, 1));
  ip::IpNode b(sim, "b", ip::make_ip(2, 2, 2, 2));
  ip::IpLink link(sim, ip::kFddiBps, sim::microseconds(100), ip::kFddiMtu);
  link.attach(a, b);
  a.set_default_route(link);
  b.set_default_route(link);
  tcp::TcpLayer ta(a), tb_(b);
  util::Rng rng(3);
  link.set_reorder(0.2, sim::milliseconds(1), &rng);

  tcp::ConnId sconn = 0, cconn = 0;
  ASSERT_TRUE(tb_.listen(9, [&](tcp::ConnId c) { sconn = c; }).ok());
  (void)ta.connect(b.address(), 9, [&](util::Result<tcp::ConnId> r) {
    cconn = *r;
  });
  sim.run_for(sim::seconds(1));
  ASSERT_NE(cconn, 0u);

  util::Buffer sent(60'000);
  util::Rng drng(11);
  for (auto& x : sent) x = static_cast<std::uint8_t>(drng.next());
  util::Buffer got;
  tb_.set_receive_handler(sconn, [&](util::BytesView d) {
    got.insert(got.end(), d.begin(), d.end());
  });
  ASSERT_TRUE(ta.send(cconn, sent).ok());
  sim.run_for(sim::seconds(60));
  EXPECT_EQ(got, sent);  // GBN + in-order receiver: bytes exact and ordered
}

// ------------------------------------------------------------ duplex calls

TEST(Duplex, ChannelCarriesDataBothWays) {
  auto tb = TestbedConfig{}.build_deferred();
  ASSERT_TRUE(tb->bring_up().ok());
  auto& r0 = *tb->router(0).kernel;
  auto& r1 = *tb->router(1).kernel;

  core::DuplexServer server(r1, r1.ip_node().address(), "chat", 4610);
  std::optional<core::DuplexEnd> server_end;
  std::string server_got;
  server.start([](util::Result<void>) {},
               [&](core::DuplexEnd end) {
                 server_end = end;
                 (void)server.on_receive(end, [&](util::BytesView d) {
                   server_got += util::to_text(d);
                   (void)server.send(*server_end,
                                     util::to_buffer(std::string_view("pong")));
                 });
               });
  tb->sim().run_for(sim::milliseconds(300));

  core::DuplexClient client(r0, r0.ip_node().address(), 4611);
  std::optional<core::DuplexEnd> client_end;
  std::string client_got;
  client.open("berkeley.rt", "chat", "class=predicted,bw=1000000",
              [&](util::Result<core::DuplexEnd> r) {
                ASSERT_TRUE(r.ok()) << to_string(r.error());
                client_end = *r;
                (void)client.on_receive(*client_end, [&](util::BytesView d) {
                  client_got += util::to_text(d);
                });
                (void)client.send(*client_end,
                                  util::to_buffer(std::string_view("ping")));
              });
  tb->sim().run_for(sim::seconds(5));
  ASSERT_TRUE(client_end.has_value());
  ASSERT_TRUE(server_end.has_value());
  EXPECT_EQ(server_got, "ping");
  EXPECT_EQ(client_got, "pong");
  EXPECT_EQ(server.channels_opened(), 1u);
  // Two simplex calls exist (plus the 2 signaling PVCs).
  EXPECT_EQ(tb->network().active_vc_count(), 2u + 2u);

  // Closing both directions reclaims everything.
  client.close(*client_end);
  tb->sim().run_for(sim::seconds(3));
  EXPECT_LE(tb->network().active_vc_count(), 2u + 1u);  // reverse may lag
  tb->sim().run_for(sim::seconds(15));
  // Server's reverse socket was disconnected; its call dies with the
  // server's close or wait-for-bind/teardown propagation.
}

TEST(Duplex, EachDirectionNegotiatesIndependently) {
  auto tb = TestbedConfig{}.build_deferred();
  ASSERT_TRUE(tb->bring_up().ok());
  auto& r0 = *tb->router(0).kernel;
  auto& r1 = *tb->router(1).kernel;
  core::DuplexServer server(r1, r1.ip_node().address(), "asym", 4612);
  server.set_qos_limit(atm::Qos{atm::ServiceClass::predicted, 3'000'000});
  server.start([](util::Result<void>) {}, [](core::DuplexEnd) {});
  tb->sim().run_for(sim::milliseconds(300));

  core::DuplexClient client(r0, r0.ip_node().address(), 4613);
  std::optional<core::DuplexEnd> end;
  client.open("berkeley.rt", "asym", "class=guaranteed,bw=9000000",
              [&](util::Result<core::DuplexEnd> r) {
                ASSERT_TRUE(r.ok());
                end = *r;
              });
  tb->sim().run_for(sim::seconds(5));
  ASSERT_TRUE(end.has_value());
  // Forward: trimmed by the server's limit.
  auto fwd = atm::parse_qos(end->qos_forward);
  ASSERT_TRUE(fwd.ok());
  EXPECT_EQ(fwd->bandwidth_bps, 3'000'000u);
  EXPECT_EQ(fwd->service_class, atm::ServiceClass::predicted);
  // Reverse: offered at the server's granted level, accepted by the client.
  auto rev = atm::parse_qos(end->qos_reverse);
  ASSERT_TRUE(rev.ok());
  EXPECT_LE(rev->bandwidth_bps, 3'000'000u);
}

TEST(Duplex, NonDuplexCallToDuplexServerIsRejected) {
  auto tb = TestbedConfig{}.build_deferred();
  ASSERT_TRUE(tb->bring_up().ok());
  auto& r1 = *tb->router(1).kernel;
  core::DuplexServer server(r1, r1.ip_node().address(), "strict", 4614);
  server.start([](util::Result<void>) {}, [](core::DuplexEnd) {});
  tb->sim().run_for(sim::milliseconds(300));

  CallClient plain(*tb->router(0).kernel,
                   tb->router(0).kernel->ip_node().address());
  std::optional<util::Errc> err;
  plain.open("berkeley.rt", "strict", "",
             [&](util::Result<CallClient::Call> r) { err = r.error(); });
  tb->sim().run_for(sim::seconds(3));
  ASSERT_TRUE(err.has_value());
  EXPECT_EQ(*err, util::Errc::rejected);
}

// ----------------------------------------------------- management report

TEST(Management, ReportShowsServicesAndLiveCalls) {
  auto tb = TestbedConfig{}.build_deferred();
  ASSERT_TRUE(tb->bring_up().ok());
  auto& r1 = tb->router(1);
  CallServer server(*r1.kernel, r1.kernel->ip_node().address(), "mgmt-svc",
                    4620);
  server.start([](util::Result<void>) {});
  tb->sim().run_for(sim::milliseconds(300));
  CallClient client(*tb->router(0).kernel,
                    tb->router(0).kernel->ip_node().address());
  std::optional<CallClient::Call> call;
  client.open("berkeley.rt", "mgmt-svc", "class=guaranteed,bw=777",
              [&](util::Result<CallClient::Call> r) { call = *r; });
  tb->sim().run_for(sim::seconds(2));
  ASSERT_TRUE(call.has_value());

  std::string r1_report = r1.sighost->management_report();
  EXPECT_NE(r1_report.find("mgmt-svc"), std::string::npos);
  EXPECT_NE(r1_report.find("VCI_mapping (1)"), std::string::npos);
  EXPECT_NE(r1_report.find("confirmed"), std::string::npos);
  EXPECT_NE(r1_report.find("established=1"), std::string::npos);

  std::string r0_report = tb->router(0).sighost->management_report();
  EXPECT_NE(r0_report.find("(originator)"), std::string::npos);
  EXPECT_NE(r0_report.find("bw=777"), std::string::npos);
}

// ------------------------------------------- origin address in INCOMING_CONN

TEST(Origin, IncomingRequestCarriesOriginSighost) {
  auto tb = TestbedConfig{}.build_deferred();
  ASSERT_TRUE(tb->bring_up().ok());
  auto& r1 = *tb->router(1).kernel;
  kern::Pid spid = r1.spawn("origin-check");
  app::UserLib server(r1, spid, r1.ip_node().address());
  std::optional<app::IncomingRequest> got;
  server.export_service("origin-svc", 4630, [](util::Result<void>) {});
  server.await_service_request(
      [&](util::Result<app::IncomingRequest> r) { got = *r; });
  tb->sim().run_for(sim::milliseconds(300));

  CallClient client(*tb->router(0).kernel,
                    tb->router(0).kernel->ip_node().address());
  client.open("berkeley.rt", "origin-svc", "",
              [](util::Result<CallClient::Call>) {});
  tb->sim().run_for(sim::seconds(2));
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->origin, "mh.rt");
}

}  // namespace
}  // namespace xunet
