// tcp_test.cpp — the TCP model: handshake, reliable transfer, orderly and
// abortive close, and the TIME_WAIT/2MSL behaviour the paper's scaling
// experiment turns on.
#include <gtest/gtest.h>

#include "tcpsim/tcp.hpp"
#include "util/rng.hpp"

namespace xunet::tcp {
namespace {

struct TcpFixture : ::testing::Test {
  sim::Simulator sim;
  ip::IpNode a{sim, "a", ip::make_ip(1, 1, 1, 1)};
  ip::IpNode b{sim, "b", ip::make_ip(2, 2, 2, 2)};
  ip::IpLink link{sim, ip::kFddiBps, sim::microseconds(100), ip::kFddiMtu};
  std::unique_ptr<TcpLayer> ta, tb;

  void SetUp() override {
    link.attach(a, b);
    a.set_default_route(link);
    b.set_default_route(link);
    ta = std::make_unique<TcpLayer>(a);
    tb = std::make_unique<TcpLayer>(b);
  }

  /// Establish a connection a→b:7; returns {client conn, server conn}.
  std::pair<ConnId, ConnId> establish() {
    ConnId server_conn = 0, client_conn = 0;
    EXPECT_TRUE(tb->listen(7, [&](ConnId c) { server_conn = c; }).ok());
    auto c = ta->connect(b.address(), 7, [&](util::Result<ConnId> r) {
      ASSERT_TRUE(r.ok());
      client_conn = *r;
    });
    EXPECT_TRUE(c.ok());
    sim.run_for(sim::milliseconds(50));
    EXPECT_NE(client_conn, 0u);
    EXPECT_NE(server_conn, 0u);
    return {client_conn, server_conn};
  }
};

TEST_F(TcpFixture, HandshakeEstablishesBothEnds) {
  auto [c, s] = establish();
  EXPECT_EQ(ta->state(c), State::established);
  EXPECT_EQ(tb->state(s), State::established);
}

TEST_F(TcpFixture, ConnectToClosedPortRefused) {
  std::optional<util::Errc> err;
  auto c = ta->connect(b.address(), 999, [&](util::Result<ConnId> r) {
    ASSERT_FALSE(r.ok());
    err = r.error();
  });
  ASSERT_TRUE(c.ok());
  sim.run_for(sim::milliseconds(50));
  ASSERT_TRUE(err.has_value());
  EXPECT_EQ(*err, util::Errc::connection_refused);
  EXPECT_EQ(ta->connection_count(), 0u);
}

TEST_F(TcpFixture, DataFlowsBothWays) {
  auto [c, s] = establish();
  std::string got_b, got_a;
  tb->set_receive_handler(s, [&](util::BytesView d) { got_b += util::to_text(d); });
  ta->set_receive_handler(c, [&](util::BytesView d) { got_a += util::to_text(d); });
  ASSERT_TRUE(ta->send(c, util::to_buffer(std::string_view("ping"))).ok());
  ASSERT_TRUE(tb->send(s, util::to_buffer(std::string_view("pong"))).ok());
  sim.run_for(sim::milliseconds(50));
  EXPECT_EQ(got_b, "ping");
  EXPECT_EQ(got_a, "pong");
}

TEST_F(TcpFixture, LargeTransferIsCompleteAndOrdered) {
  auto [c, s] = establish();
  util::Rng rng(99);
  util::Buffer sent(200'000);
  for (auto& x : sent) x = static_cast<std::uint8_t>(rng.next());
  util::Buffer got;
  tb->set_receive_handler(s, [&](util::BytesView d) {
    got.insert(got.end(), d.begin(), d.end());
  });
  // Send in odd-sized chunks to exercise segmentation.
  std::size_t off = 0;
  while (off < sent.size()) {
    std::size_t n = std::min<std::size_t>(7777, sent.size() - off);
    ASSERT_TRUE(ta->send(c, {sent.data() + off, n}).ok());
    off += n;
  }
  sim.run_for(sim::seconds(10));
  EXPECT_EQ(got, sent);
}

TEST_F(TcpFixture, LossyLinkStillDeliversEverything) {
  auto [c, s] = establish();
  util::Rng loss_rng(5);
  link.set_loss(0.1, &loss_rng);
  util::Buffer sent(100'000, 0);
  util::Rng rng(123);
  for (auto& x : sent) x = static_cast<std::uint8_t>(rng.next());
  util::Buffer got;
  tb->set_receive_handler(s, [&](util::BytesView d) {
    got.insert(got.end(), d.begin(), d.end());
  });
  ASSERT_TRUE(ta->send(c, sent).ok());
  sim.run_for(sim::seconds(120));
  EXPECT_EQ(got, sent);
  EXPECT_GT(ta->retransmits(), 0u);
}

TEST_F(TcpFixture, OrderlyCloseReachesTimeWaitFor2Msl) {
  auto [c, s] = establish();
  std::optional<util::Errc> b_close;
  tb->set_close_handler(s, [&](util::Errc e) { b_close = e; });

  ASSERT_TRUE(ta->close(c).ok());
  sim.run_for(sim::milliseconds(100));
  // Peer saw the FIN and (passively) closes too.
  ASSERT_TRUE(b_close.has_value());
  EXPECT_EQ(*b_close, util::Errc::ok);
  EXPECT_EQ(tb->state(s), State::close_wait);
  ASSERT_TRUE(tb->close(s).ok());
  sim.run_for(sim::milliseconds(100));

  // Active closer lingers in TIME_WAIT; passive closer is gone.
  EXPECT_EQ(ta->state(c), State::time_wait);
  EXPECT_EQ(ta->count_in_state(State::time_wait), 1u);
  EXPECT_EQ(tb->connection_count(), 0u);

  // ... for exactly 2×MSL.
  bool released = false;
  ta->set_released_handler(c, [&](ConnId) { released = true; });
  sim.run_for(ta->config().msl * 2 + sim::milliseconds(10));
  EXPECT_TRUE(released);
  EXPECT_EQ(ta->connection_count(), 0u);
}

TEST_F(TcpFixture, SimultaneousCloseBothLinger) {
  auto [c, s] = establish();
  ASSERT_TRUE(ta->close(c).ok());
  ASSERT_TRUE(tb->close(s).ok());
  sim.run_for(sim::milliseconds(200));
  // Both actively closed: each holds TIME_WAIT state.
  EXPECT_EQ(ta->count_in_state(State::time_wait), 1u);
  EXPECT_EQ(tb->count_in_state(State::time_wait), 1u);
}

TEST_F(TcpFixture, AbortSendsRstAndReleasesImmediately) {
  auto [c, s] = establish();
  std::optional<util::Errc> b_close;
  tb->set_close_handler(s, [&](util::Errc e) { b_close = e; });
  ta->abort(c);
  sim.run_for(sim::milliseconds(50));
  EXPECT_EQ(ta->connection_count(), 0u);
  EXPECT_EQ(tb->connection_count(), 0u);
  ASSERT_TRUE(b_close.has_value());
  EXPECT_EQ(*b_close, util::Errc::connection_reset);
}

TEST_F(TcpFixture, DataQueuedBeforeCloseIsDeliveredThenFin) {
  auto [c, s] = establish();
  std::string got;
  std::optional<util::Errc> closed;
  tb->set_receive_handler(s, [&](util::BytesView d) { got += util::to_text(d); });
  tb->set_close_handler(s, [&](util::Errc e) {
    closed = e;
    EXPECT_EQ(got, "last words");  // data precedes the close report
  });
  ASSERT_TRUE(ta->send(c, util::to_buffer(std::string_view("last words"))).ok());
  ASSERT_TRUE(ta->close(c).ok());
  sim.run_for(sim::milliseconds(100));
  ASSERT_TRUE(closed.has_value());
  EXPECT_EQ(got, "last words");
}

TEST_F(TcpFixture, SendOnClosedConnectionFails) {
  auto [c, s] = establish();
  (void)s;
  ASSERT_TRUE(ta->close(c).ok());
  EXPECT_EQ(ta->send(c, util::to_buffer(std::string_view("x"))).error(),
            util::Errc::not_connected);
}

TEST_F(TcpFixture, SendOnUnknownConnectionIsBadFd) {
  EXPECT_EQ(ta->send(424242, {}).error(), util::Errc::bad_fd);
}

TEST_F(TcpFixture, ListenPortConflict) {
  ASSERT_TRUE(tb->listen(7, [](ConnId) {}).ok());
  EXPECT_EQ(tb->listen(7, [](ConnId) {}).error(), util::Errc::address_in_use);
  tb->stop_listening(7);
  EXPECT_TRUE(tb->listen(7, [](ConnId) {}).ok());
}

TEST_F(TcpFixture, ManyConcurrentConnectionsGetDistinctTuples) {
  int accepted = 0;
  ASSERT_TRUE(tb->listen(7, [&](ConnId) { ++accepted; }).ok());
  int connected = 0;
  for (int i = 0; i < 50; ++i) {
    auto c = ta->connect(b.address(), 7, [&](util::Result<ConnId> r) {
      if (r.ok()) ++connected;
    });
    ASSERT_TRUE(c.ok());
  }
  sim.run_for(sim::seconds(1));
  EXPECT_EQ(connected, 50);
  EXPECT_EQ(accepted, 50);
  EXPECT_EQ(ta->count_in_state(State::established), 50u);
}

TEST_F(TcpFixture, ConnectTimesOutWithoutPeer) {
  // Black-hole the link: 100% loss.
  util::Rng rng(1);
  link.set_loss(1.0, &rng);
  std::optional<util::Errc> err;
  auto c = ta->connect(b.address(), 7,
                       [&](util::Result<ConnId> r) { err = r.error(); });
  ASSERT_TRUE(c.ok());
  sim.run_for(sim::seconds(60));
  ASSERT_TRUE(err.has_value());
  EXPECT_EQ(*err, util::Errc::timed_out);
  EXPECT_EQ(ta->connection_count(), 0u);
}

TEST_F(TcpFixture, PeerAddrAndLocalPortExposed) {
  auto [c, s] = establish();
  EXPECT_EQ(ta->peer_addr(c), b.address());
  EXPECT_EQ(tb->peer_addr(s), a.address());
  EXPECT_EQ(tb->local_port(s), 7);
}

// Segment wire-format unit tests.

TEST(Segment, RoundTrip) {
  Segment s;
  s.src_port = 10;
  s.dst_port = 20;
  s.seq = 0xAABBCCDD;
  s.ack = 0x11223344;
  s.flags = Flags{.syn = true, .ack = true};
  s.window = 64;
  s.payload = util::to_buffer(std::string_view("data"));
  auto wire = serialize(s);
  auto back = parse_segment(wire);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->seq, s.seq);
  EXPECT_EQ(back->ack, s.ack);
  EXPECT_EQ(back->flags, s.flags);
  EXPECT_EQ(back->payload, s.payload);
}

TEST(Segment, TruncatedHeaderRejected) {
  util::Buffer junk(5, 0);
  EXPECT_FALSE(parse_segment(junk).ok());
}

}  // namespace
}  // namespace xunet::tcp
