// edge_test.cpp — corner cases across the stack: TCP half-close semantics,
// IP reassembly expiry, AAL5 runaway-frame guards, signaling idempotence
// under duplicated/replayed peer messages, and property sweeps on QoS
// negotiation.
#include <gtest/gtest.h>

#include "atm/aal5.hpp"
#include "core/apps.hpp"
#include "core/duplex.hpp"
#include "core/testbed.hpp"
#include "util/rng.hpp"

namespace xunet {
namespace {

using core::CallClient;
using core::CallServer;
using core::Testbed;
using core::TestbedConfig;

// ---------------------------------------------------------- TCP half-close

struct TcpPair {
  sim::Simulator sim;
  ip::IpNode a{sim, "a", ip::make_ip(1, 1, 1, 1)};
  ip::IpNode b{sim, "b", ip::make_ip(2, 2, 2, 2)};
  ip::IpLink link{sim, ip::kFddiBps, sim::microseconds(100), ip::kFddiMtu};
  std::unique_ptr<tcp::TcpLayer> ta, tb;
  tcp::ConnId client = 0, server = 0;

  TcpPair() {
    link.attach(a, b);
    a.set_default_route(link);
    b.set_default_route(link);
    ta = std::make_unique<tcp::TcpLayer>(a);
    tb = std::make_unique<tcp::TcpLayer>(b);
    EXPECT_TRUE(tb->listen(7, [&](tcp::ConnId c) { server = c; }).ok());
    (void)ta->connect(b.address(), 7,
                      [&](util::Result<tcp::ConnId> r) { client = *r; });
    sim.run_for(sim::milliseconds(50));
    EXPECT_NE(client, 0u);
    EXPECT_NE(server, 0u);
  }
};

TEST(TcpEdge, HalfCloseStillCarriesDataTheOtherWay) {
  TcpPair p;
  // Client closes its sending direction; the server may keep sending
  // (CLOSE_WAIT permits it) and the client still receives.
  std::string client_got;
  p.ta->set_receive_handler(p.client, [&](util::BytesView d) {
    client_got += util::to_text(d);
  });
  ASSERT_TRUE(p.ta->close(p.client).ok());
  p.sim.run_for(sim::milliseconds(50));
  ASSERT_EQ(p.tb->state(p.server), tcp::State::close_wait);
  ASSERT_TRUE(p.tb->send(p.server,
                         util::to_buffer(std::string_view("late data"))).ok());
  p.sim.run_for(sim::milliseconds(50));
  EXPECT_EQ(client_got, "late data");
  // Then the server finishes the close.
  ASSERT_TRUE(p.tb->close(p.server).ok());
  p.sim.run_for(sim::milliseconds(50));
  EXPECT_EQ(p.ta->state(p.client), tcp::State::time_wait);
}

TEST(TcpEdge, RetransmitLimitResetsTheConnection) {
  TcpPair p;
  std::optional<util::Errc> closed;
  p.ta->set_close_handler(p.client, [&](util::Errc e) { closed = e; });
  // Black-hole everything after establishment: data can never be ACKed.
  util::Rng rng(1);
  p.link.set_loss(1.0, &rng);
  ASSERT_TRUE(p.ta->send(p.client, util::Buffer(100, 1)).ok());
  p.sim.run_for(sim::seconds(60));
  ASSERT_TRUE(closed.has_value());
  EXPECT_EQ(*closed, util::Errc::timed_out);
  EXPECT_EQ(p.ta->connection_count(), 0u);
  EXPECT_GT(p.ta->retransmits(), 4u);
}

TEST(TcpEdge, DuplicateAcksAreHarmless) {
  TcpPair p;
  std::string got;
  p.tb->set_receive_handler(p.server,
                            [&](util::BytesView d) { got += util::to_text(d); });
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(p.ta->send(p.client, util::to_buffer(std::string_view("x"))).ok());
    p.sim.run_for(sim::milliseconds(10));
  }
  EXPECT_EQ(got.size(), 10u);
  EXPECT_EQ(p.ta->state(p.client), tcp::State::established);
}

// ------------------------------------------------------ IP reassembly expiry

TEST(IpEdge, StaleFragmentsExpireAndAreNotMerged) {
  sim::Simulator sim;
  ip::IpNode a(sim, "a", ip::make_ip(1, 1, 1, 1));
  ip::IpNode b(sim, "b", ip::make_ip(2, 2, 2, 2));
  ip::IpLink link(sim, ip::kFddiBps, sim::microseconds(10), ip::kEthernetMtu);
  link.attach(a, b);
  a.set_default_route(link);
  b.set_default_route(link);
  int delivered = 0;
  b.register_protocol(ip::IpProto::atm, [&](const ip::IpPacket&) { ++delivered; });

  // First fragment of a datagram that never completes.
  ip::IpPacket frag;
  frag.src = a.address();
  frag.dst = b.address();
  frag.protocol = ip::IpProto::atm;
  frag.id = 9;
  frag.frag_offset = 0;
  frag.more_fragments = true;
  frag.payload = util::Buffer(800, 1);
  b.frame_arrival(ip::serialize(frag));
  sim.run_for(sim::milliseconds(10));
  EXPECT_EQ(b.pending_reassemblies(), 1u);

  // Past the 30 s reassembly timeout the context is swept (the sweep runs
  // on the next fragmented arrival).
  sim.run_for(ip::kReassemblyTimeout + sim::seconds(1));
  ip::IpPacket other = frag;
  other.id = 10;
  b.frame_arrival(ip::serialize(other));
  sim.run_for(sim::milliseconds(10));
  EXPECT_EQ(b.pending_reassemblies(), 1u);  // old ctx gone, only id=10 remains
  EXPECT_EQ(delivered, 0);
}

// ------------------------------------------------------------- AAL5 guards

TEST(Aal5Edge, RunawayFrameWithoutEomIsBounded) {
  atm::Aal5Segmenter seg;
  std::vector<std::pair<atm::Vci, atm::Aal5Error>> errors;
  atm::Aal5Reassembler reasm([](atm::Aal5Frame) {},
                             [&](atm::Vci v, atm::Aal5Error e) {
                               errors.emplace_back(v, e);
                             });
  // Feed non-EOM cells forever (lost EOM + endless next frames): the
  // reassembler must cap its buffer rather than grow without bound.
  atm::Cell c;
  c.vci = 3;
  c.end_of_frame = false;
  for (int i = 0; i < 3000; ++i) reasm.cell_arrival(c);
  ASSERT_FALSE(errors.empty());
  EXPECT_EQ(errors[0].second, atm::Aal5Error::oversize);
}

// ------------------------------------------- signaling idempotence / replay

TEST(SignalingEdge, DuplicateTerminationIndicationsAreIdempotent) {
  auto tb = TestbedConfig{}.build_deferred();
  ASSERT_TRUE(tb->bring_up().ok());
  auto& r1 = tb->router(1);
  CallServer server(*r1.kernel, r1.kernel->ip_node().address(), "dup", 5800);
  server.start([](util::Result<void>) {});
  tb->sim().run_for(sim::milliseconds(300));
  CallClient client(*tb->router(0).kernel,
                    tb->router(0).kernel->ip_node().address());
  std::optional<CallClient::Call> call;
  client.open("berkeley.rt", "dup", "",
              [&](util::Result<CallClient::Call> r) { call = *r; });
  tb->sim().run_for(sim::seconds(2));
  ASSERT_TRUE(call.has_value());

  // Close the data socket (posts one termination); then post a forged
  // duplicate termination for the same VCI straight into the device.
  client.close_call(*call);
  (void)tb->router(0).kernel->anand().post(kern::AnandUpMsg{
      kern::AnandUpType::process_terminated, call->info.vci, 0, 0});
  tb->sim().run_for(sim::seconds(3));
  EXPECT_EQ(tb->router(0).sighost->stats().calls_torn_down, 1u);
  EXPECT_TRUE(tb->audit().clean()) << tb->audit().describe();
}

TEST(SignalingEdge, CancelOfUnknownCookieIsIgnored) {
  auto tb = TestbedConfig{}.build_deferred();
  ASSERT_TRUE(tb->bring_up().ok());
  auto& r0 = *tb->router(0).kernel;
  kern::Pid pid = r0.spawn("cancel-noise");
  app::UserLib lib(r0, pid, r0.ip_node().address());
  // Must first touch the channel so cancel_request has somewhere to go.
  lib.export_service("noise-svc", 5801, [](util::Result<void>) {});
  tb->sim().run_for(sim::milliseconds(300));
  lib.cancel_request(0xBEEF);
  lib.cancel_request(0);
  tb->sim().run_for(sim::seconds(1));
  EXPECT_EQ(tb->router(0).sighost->stats().cancels, 0u);
  EXPECT_TRUE(tb->audit().clean()) << tb->audit().describe();
}

TEST(SignalingEdge, RejectAfterCancelDoesNotCorruptState) {
  // Client cancels while the server is deciding; the server then rejects.
  auto tb = TestbedConfig{}.build_deferred();
  ASSERT_TRUE(tb->bring_up().ok());
  auto& r1 = *tb->router(1).kernel;
  kern::Pid spid = r1.spawn("slow-decider");
  app::UserLib server(r1, spid, r1.ip_node().address());
  server.export_service("slow", 5802, [](util::Result<void>) {});
  std::optional<app::IncomingRequest> pending;
  server.await_service_request(
      [&](util::Result<app::IncomingRequest> r) { pending = *r; });
  tb->sim().run_for(sim::milliseconds(300));

  auto& r0 = *tb->router(0).kernel;
  kern::Pid cpid = r0.spawn("impatient");
  app::UserLib client(r0, cpid, r0.ip_node().address());
  std::optional<util::Errc> err;
  std::optional<sig::Cookie> cookie;
  client.open_connection("berkeley.rt", "slow", "", "",
                         [&](util::Result<app::OpenResult> r) {
                           err = r.error();
                         },
                         [&](util::Result<sig::Cookie> c) {
                           if (c.ok()) cookie = *c;
                         });
  tb->sim().run_for(sim::seconds(1));
  ASSERT_TRUE(pending.has_value());  // server holds the request, undecided
  ASSERT_TRUE(cookie.has_value());
  std::optional<util::Result<void>> cancel_rc;
  client.cancel_request(*cookie,
                        [&](util::Result<void> r) { cancel_rc = r; });
  ASSERT_TRUE(cancel_rc.has_value());
  EXPECT_TRUE(cancel_rc->ok());
  tb->sim().run_for(sim::seconds(1));
  ASSERT_TRUE(err.has_value());
  EXPECT_EQ(*err, util::Errc::cancelled);

  // The server finally rejects the already-cancelled call: must be a no-op.
  server.reject_connection(*pending);
  tb->sim().run_for(sim::seconds(2));
  EXPECT_TRUE(tb->audit().clean()) << tb->audit().describe();
}

TEST(SignalingEdge, ServerChannelCloseDoesNotDropItsService) {
  // The paper keeps registrations independent of the registration conn's
  // lifetime; killing the server later is what makes calls fail.
  auto tb = TestbedConfig{}.build_deferred();
  ASSERT_TRUE(tb->bring_up().ok());
  auto& r1 = tb->router(1);
  CallServer server(*r1.kernel, r1.kernel->ip_node().address(), "sticky", 5803);
  server.start([](util::Result<void>) {});
  tb->sim().run_for(sim::milliseconds(300));
  ASSERT_TRUE(r1.sighost->has_service("sticky"));
  server.kill();
  tb->sim().run_for(sim::seconds(1));
  // Registration survives (paper does not define de-registration on death);
  // calls to it now fail with connection_refused, handled gracefully.
  EXPECT_TRUE(r1.sighost->has_service("sticky"));
  CallClient client(*tb->router(0).kernel,
                    tb->router(0).kernel->ip_node().address());
  std::optional<util::Errc> err;
  client.open("berkeley.rt", "sticky", "",
              [&](util::Result<CallClient::Call> r) { err = r.error(); });
  tb->sim().run_for(sim::seconds(3));
  ASSERT_TRUE(err.has_value());
  EXPECT_EQ(*err, util::Errc::connection_refused);
  EXPECT_TRUE(tb->audit().clean()) << tb->audit().describe();
}

// ------------------------------------------------------- QoS property sweep

class QosPropertySweep : public ::testing::TestWithParam<int> {};

TEST_P(QosPropertySweep, NegotiationIsMonotoneIdempotentCommutativeInClass) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()) + 100);
  for (int i = 0; i < 500; ++i) {
    atm::Qos offered{static_cast<atm::ServiceClass>(rng.below(3)),
                     rng.below(100'000'000)};
    atm::Qos limit{static_cast<atm::ServiceClass>(rng.below(3)),
                   rng.below(100'000'000)};
    atm::Qos granted = atm::negotiate(offered, limit);
    // Monotone: never exceeds either side.
    EXPECT_LE(granted.bandwidth_bps, offered.bandwidth_bps);
    EXPECT_LE(granted.bandwidth_bps, limit.bandwidth_bps);
    EXPECT_LE(static_cast<int>(granted.service_class),
              static_cast<int>(offered.service_class));
    EXPECT_LE(static_cast<int>(granted.service_class),
              static_cast<int>(limit.service_class));
    // Idempotent: renegotiating the grant against the same limit is stable.
    EXPECT_EQ(atm::negotiate(granted, limit), granted);
    // Commutative.
    EXPECT_EQ(atm::negotiate(offered, limit), atm::negotiate(limit, offered));
    // Round-trip through the wire string preserves it.
    auto parsed = atm::parse_qos(atm::to_string(granted));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(*parsed, granted);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, QosPropertySweep, ::testing::Range(0, 4));

// -------------------------------------------------------- duplex teardown

TEST(DuplexEdge, ClientDeathReclaimsBothDirections) {
  auto tb = TestbedConfig{}.build_deferred();
  ASSERT_TRUE(tb->bring_up().ok());
  auto& r0 = *tb->router(0).kernel;
  auto& r1 = *tb->router(1).kernel;
  core::DuplexServer server(r1, r1.ip_node().address(), "frail", 5810);
  server.start([](util::Result<void>) {}, [](core::DuplexEnd) {});
  tb->sim().run_for(sim::milliseconds(300));
  auto client = std::make_unique<core::DuplexClient>(r0, r0.ip_node().address(),
                                                     5811);
  std::optional<core::DuplexEnd> end;
  client->open("berkeley.rt", "frail", "",
               [&](util::Result<core::DuplexEnd> r) {
                 if (r.ok()) end = *r;
               });
  tb->sim().run_for(sim::seconds(5));
  ASSERT_TRUE(end.has_value());
  ASSERT_EQ(tb->network().active_vc_count(), 2u + 2u);

  (void)r0.kill_process(client->pid());
  tb->sim().run_for(sim::seconds(20));
  EXPECT_TRUE(tb->audit().clean()) << tb->audit().describe();
  EXPECT_EQ(tb->network().active_vc_count(), 2u);
}

}  // namespace
}  // namespace xunet
