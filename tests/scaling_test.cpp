// scaling_test.cpp — §10's two scaling problems, reproduced and fixed:
//  1. an 8-buffer pseudo-device loses bind indications when "a large number
//     of connections were simultaneously opened by the test workload"
//     (80 buffers are adequate);
//  2. a ~20-slot descriptor table caps simultaneous establishes because
//     closed per-call sockets linger in TIME_WAIT for 2×MSL (100 slots fix
//     it); with both fixes, 200 connections stay open between two routers.
//
// Timescale note: the experiments compress the paper's workloads into short
// simulated runs, so they scale MSL down (keeping the call-setup-rate :
// TIME_WAIT-lifetime ratio in the regime the paper describes); EXPERIMENTS.md
// records the mapping.
#include <gtest/gtest.h>

#include <map>

#include "core/apps.hpp"
#include "core/testbed.hpp"
#include "util/rng.hpp"
#include "util/vci_index.hpp"

namespace xunet {
namespace {

using core::CallClient;
using core::CallServer;
using core::Testbed;

struct BurstOutcome {
  int established = 0;
  int failed = 0;
  std::uint64_t lost_indications = 0;
  std::uint64_t bind_timeouts = 0;
};

/// Fire `burst` calls as fast as possible; each established call is held
/// for one second and then torn down (the paper's robustness workload).
BurstOutcome run_burst(core::TestbedConfig cfg, int burst,
                       sim::SimDuration settle = sim::seconds(120)) {
  auto tb = cfg.routers(2).pvc_mesh().build();
  auto& r1 = tb->router(1);
  CallServer server(*r1.kernel, r1.kernel->ip_node().address(), "burst", 4400);
  server.start([](util::Result<void>) {});
  tb->sim().run_for(sim::milliseconds(300));

  auto client = std::make_shared<CallClient>(
      *tb->router(0).kernel, tb->router(0).kernel->ip_node().address());
  auto out = std::make_shared<BurstOutcome>();
  for (int i = 0; i < burst; ++i) {
    client->open("berkeley.rt", "burst", "",
                 [&tb, client, out](util::Result<CallClient::Call> r) {
                   if (r.ok()) {
                     ++out->established;
                     tb->sim().schedule(sim::seconds(1), [client, call = *r] {
                       client->close_call(call);
                     });
                   } else {
                     ++out->failed;
                   }
                 });
  }
  tb->sim().run_for(settle);
  out->lost_indications = tb->router(0).kernel->anand().dropped() +
                          tb->router(1).kernel->anand().dropped();
  out->bind_timeouts = tb->router(0).sighost->stats().bind_timeouts +
                       tb->router(1).sighost->stats().bind_timeouts;
  return *out;
}

// ---- experiment 1: pseudo-device message buffers -------------------------

/// Open `n` calls but do NOT attach data sockets as VCIs arrive; once all
/// VCIs are granted, connect them back-to-back.  This recreates the paper's
/// clump of simultaneous kernel indications racing one pseudo-device.
struct AnandBurstOutcome {
  int granted = 0;
  std::uint64_t dropped = 0;
  std::uint64_t bind_timeouts = 0;
  std::uint64_t torn_down = 0;
};

AnandBurstOutcome run_anand_burst(std::size_t buffers, int n) {
  core::TestbedConfig cfg;
  cfg.kernel.anand_buffers = buffers;
  cfg.kernel.fd_table_size = 512;            // descriptors are not the subject
  cfg.kernel.tcp_msl = sim::seconds(1);
  cfg.sighost.per_call_log_cost = sim::milliseconds(5);
  // Phase 1 parks granted VCIs unconnected while the clump is assembled;
  // the wait-for-bind timer must not fire during that staging.
  cfg.sighost.wait_for_bind_timeout = sim::seconds(20);
  auto tb = cfg.routers(2).pvc_mesh().build();
  auto& r0 = tb->router(0);
  auto& r1 = tb->router(1);

  CallServer server(*r1.kernel, r1.kernel->ip_node().address(), "clump", 4410);
  server.start([](util::Result<void>) {});
  tb->sim().run_for(sim::milliseconds(300));

  auto& k0 = *r0.kernel;
  kern::Pid pid = k0.spawn("clump-client");
  app::UserLib lib(k0, pid, k0.ip_node().address());
  auto results = std::make_shared<std::vector<app::OpenResult>>();
  for (int i = 0; i < n; ++i) {
    lib.open_connection("berkeley.rt", "clump", "", "",
                        [results](util::Result<app::OpenResult> r) {
                          if (r.ok()) results->push_back(*r);
                        });
  }
  tb->sim().run_for(sim::seconds(5));
  AnandBurstOutcome out;
  out.granted = static_cast<int>(results->size());

  // The clump: connect every granted VCI within ~one scheduling quantum.
  for (std::size_t i = 0; i < results->size(); ++i) {
    tb->sim().schedule(sim::microseconds(static_cast<std::int64_t>(100 * i)),
                       [&k0, pid, &lib, r = (*results)[i]] {
                         (void)lib.connect_data_socket(r);
                       });
  }
  tb->sim().run_for(sim::seconds(60));  // let wait-for-bind timers decide

  out.dropped = k0.anand().dropped();
  out.bind_timeouts = r0.sighost->stats().bind_timeouts;
  out.torn_down = r0.sighost->stats().calls_torn_down;
  return out;
}

TEST(Scaling, EightAnandBuffersLoseBindIndications) {
  auto out = run_anand_burst(8, 100);  // the original, broken configuration
  ASSERT_EQ(out.granted, 100);
  // Indications overflow the 8 buffers; sighost never hears about those
  // connects, so the wait-for-bind timers kill otherwise-healthy calls.
  EXPECT_GT(out.dropped, 0u);
  EXPECT_GT(out.bind_timeouts, 0u);
}

TEST(Scaling, EightyAnandBuffersAreAdequate) {
  auto out = run_anand_burst(80, 100);  // the fixed configuration
  ASSERT_EQ(out.granted, 100);
  EXPECT_EQ(out.dropped, 0u);
  EXPECT_EQ(out.bind_timeouts, 0u);
}

// ---- experiment 2: descriptor table vs TIME_WAIT --------------------------

TEST(Scaling, SmallFdTableCapsSimultaneousEstablishes) {
  core::TestbedConfig cfg;
  cfg.kernel.fd_table_size = 20;  // "the table size is typically around twenty"
  cfg.kernel.tcp_msl = sim::seconds(5);
  auto out = run_burst(cfg, 100);
  // Far fewer than 100 calls complete: per-call descriptors are pinned in
  // TIME_WAIT at the server (and sighost), refusing later establishes.
  EXPECT_LT(out.established, 60);
  EXPECT_GT(out.failed, 40);
}

TEST(Scaling, HundredFdSlotsFixTheBurst) {
  core::TestbedConfig cfg;
  cfg.kernel.fd_table_size = 100;  // the paper's fix
  cfg.kernel.tcp_msl = sim::seconds(5);
  auto out = run_burst(cfg, 100);
  EXPECT_EQ(out.established, 100);
  EXPECT_EQ(out.failed, 0);
}

TEST(Scaling, TimeWaitDescriptorsDrainAfterTwoMsl) {
  // Establish a burst, then check that server-side descriptors pinned by
  // TIME_WAIT are all released after 2×MSL.
  core::TestbedConfig cfg;
  cfg.kernel.fd_table_size = 100;
  cfg.sighost.per_call_log_cost = sim::milliseconds(1);
  auto tb = cfg.routers(2).pvc_mesh().build();
  auto& r1 = tb->router(1);
  CallServer server(*r1.kernel, r1.kernel->ip_node().address(), "tw", 4401);
  server.start([](util::Result<void>) {});
  tb->sim().run_for(sim::milliseconds(300));
  CallClient client(*tb->router(0).kernel,
                    tb->router(0).kernel->ip_node().address());
  int established = 0;
  for (int i = 0; i < 30; ++i) {
    client.open("berkeley.rt", "tw", "",
                [&](util::Result<CallClient::Call> r) {
                  ASSERT_TRUE(r.ok());
                  ++established;
                });
  }
  tb->sim().run_for(sim::seconds(10));
  ASSERT_EQ(established, 30);
  // The server's per-call connections were closed right after VCI delivery:
  // they are now lingering in TIME_WAIT, each pinning a descriptor slot.
  std::size_t pinned = r1.kernel->fds_in_time_wait();
  EXPECT_EQ(pinned, 30u);
  tb->sim().run_for(r1.kernel->tcp().config().msl * 2 + sim::seconds(2));
  EXPECT_EQ(r1.kernel->fds_in_time_wait(), 0u);
}

TEST(Scaling, TwoHundredConnectionsStayOpenBetweenTwoRouters) {
  // "...we were able to establish and keep open two hundred connections
  // between two routers."  Generous descriptor tables here: each side
  // holds 100 open data sockets *plus* its TIME_WAIT backlog, and the fd
  // interplay is the subject of the tests above.
  core::TestbedConfig cfg;
  cfg.kernel.fd_table_size = 512;
  cfg.kernel.anand_buffers = 80;
  cfg.kernel.tcp_msl = sim::seconds(5);
  auto tb = cfg.routers(2).pvc_mesh().build();
  auto& r0 = tb->router(0);
  auto& r1 = tb->router(1);

  // 100 calls in each direction = 200 open connections.
  CallServer sa(*r1.kernel, r1.kernel->ip_node().address(), "fwd", 4402);
  CallServer sb(*r0.kernel, r0.kernel->ip_node().address(), "rev", 4403);
  sa.start([](util::Result<void>) {});
  sb.start([](util::Result<void>) {});
  tb->sim().run_for(sim::milliseconds(300));

  CallClient ca(*r0.kernel, r0.kernel->ip_node().address());
  CallClient cb(*r1.kernel, r1.kernel->ip_node().address());
  int open_count = 0;
  for (int i = 0; i < 100; ++i) {
    ca.open("berkeley.rt", "fwd", "",
            [&](util::Result<CallClient::Call> r) {
              ASSERT_TRUE(r.ok()) << to_string(r.error());
              ++open_count;
            });
    cb.open("mh.rt", "rev", "",
            [&](util::Result<CallClient::Call> r) {
              ASSERT_TRUE(r.ok()) << to_string(r.error());
              ++open_count;
            });
  }
  tb->sim().run_for(sim::seconds(120));
  EXPECT_EQ(open_count, 200);
  EXPECT_EQ(tb->network().active_vc_count(), 2u + 200u);
  EXPECT_EQ(sa.calls_accepted(), 100u);
  EXPECT_EQ(sb.calls_accepted(), 100u);
}

// ---- the routing index behind every VCI surface ---------------------------

TEST(Scaling, VciIndexMatchesMapUnderRandomizedChurn) {
  // Differential test: VciIndex must agree with std::map after any
  // interleaving of insert/overwrite/erase/find, including its ordered
  // iteration — the property the deterministic audits depend on.
  util::Rng rng(0xC0FFEE);
  util::VciIndex<atm::Vci, int> idx;
  std::map<atm::Vci, int> ref;
  for (int step = 0; step < 20000; ++step) {
    const auto vci = static_cast<atm::Vci>(rng.below(4096));
    const int val = static_cast<int>(rng.below(1 << 20));
    switch (rng.below(4)) {
      case 0:  // emplace: first write wins
        ASSERT_EQ(idx.emplace(vci, val), ref.emplace(vci, val).second);
        break;
      case 1: {  // insert: insert-or-assign
        const bool fresh = ref.find(vci) == ref.end();
        ASSERT_EQ(idx.insert(vci, val), fresh);
        ref[vci] = val;
        break;
      }
      case 2:  // erase
        ASSERT_EQ(idx.erase(vci), ref.erase(vci) > 0);
        break;
      default: {  // find
        const int* p = idx.find(vci);
        auto it = ref.find(vci);
        ASSERT_EQ(p != nullptr, it != ref.end());
        if (p != nullptr) {
          ASSERT_EQ(*p, it->second);
        }
        break;
      }
    }
    ASSERT_EQ(idx.size(), ref.size());
  }
  // Ordered-iteration parity: keys() ascending, for_each in key order.
  std::vector<atm::Vci> expect;
  expect.reserve(ref.size());
  for (const auto& kv : ref) expect.push_back(kv.first);
  EXPECT_EQ(idx.keys(), expect);
  std::vector<std::pair<atm::Vci, int>> walked;
  idx.for_each([&walked](const atm::Vci& k, const int& v) {
    walked.emplace_back(k, v);
  });
  ASSERT_EQ(walked.size(), ref.size());
  std::size_t i = 0;
  for (const auto& [k, v] : ref) {
    EXPECT_EQ(walked[i].first, k);
    EXPECT_EQ(walked[i].second, v);
    ++i;
  }
}

TEST(Scaling, ShardOwnershipIsStableAcrossRestart) {
  // Two shards per router: every switched VCI must live on the shard that
  // owns its residue class, and a machine-wide crash/restart (both shards)
  // must recover the same partition — no call migrates shards.
  core::TestbedConfig cfg;
  cfg.kernel.fd_table_size = 512;
  cfg.kernel.tcp_msl = sim::seconds(1);
  cfg.sighost.per_call_log_cost = sim::milliseconds(1);
  auto tb = cfg.routers(2).shards(2).pvc_mesh().build();
  auto& r0 = tb->router(0);
  auto& r1 = tb->router(1);

  CallServer server(*r1.kernel, r1.kernel->ip_node().address(), "shard", 4420,
                    2);
  server.start([](util::Result<void>) {});
  tb->sim().run_for(sim::milliseconds(300));
  CallClient client(*r0.kernel, r0.kernel->ip_node().address(), 2);

  int established = 0;
  for (int i = 0; i < 24; ++i) {
    client.open("berkeley.rt", "shard", "",
                [&](util::Result<CallClient::Call> r) {
                  ASSERT_TRUE(r.ok()) << to_string(r.error());
                  ++established;
                });
  }
  tb->sim().run_for(sim::seconds(15));
  ASSERT_EQ(established, 24);

  auto partition_holds = [&](core::Router& r) {
    std::size_t total = 0;
    for (std::size_t s = 0; s < r.shard_count(); ++s) {
      ASSERT_NE(r.shard(s), nullptr);
      for (atm::Vci v : r.shard(s)->vci_mapping_vcis()) {
        EXPECT_EQ(v % r.shard_count(), s) << "vci " << v << " on shard " << s;
        ++total;
      }
    }
    EXPECT_EQ(total, 24u);
  };
  partition_holds(r0);
  partition_holds(r1);
  const std::vector<atm::Vci> before0 = r0.shard(0)->vci_mapping_vcis();
  const std::vector<atm::Vci> before1 = r0.shard(1)->vci_mapping_vcis();

  // Machine crash: both shards die and restart together; recovery audits
  // reconcile per shard, filtered by ownership.
  tb->crash_sighost(0);
  tb->sim().run_for(sim::milliseconds(200));
  ASSERT_TRUE(tb->restart_sighost(0).ok());
  tb->sim().run_for(sim::seconds(10));

  partition_holds(r0);
  EXPECT_EQ(r0.shard(0)->vci_mapping_vcis(), before0);
  EXPECT_EQ(r0.shard(1)->vci_mapping_vcis(), before1);
}

TEST(Scaling, AnandMessagesAreSmall) {
  // "each message is small (4 bytes), so it is cheap to increase the size
  // of this buffer" — our stub relay encodes the kernel's 4 payload bytes
  // (VCI + cookie) plus type/origin framing.
  EXPECT_LE(sig::kStubMsgBytes, 16u);
  EXPECT_EQ(sizeof(atm::Vci) + sizeof(sig::Cookie), 4u);
}

}  // namespace
}  // namespace xunet
