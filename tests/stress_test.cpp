// stress_test.cpp — soak and stress: large event volumes, process churn,
// VC churn with VCI reuse, TCP port recycling, and state audits after all
// of it.
#include <gtest/gtest.h>

#include "atm/network.hpp"
#include "core/apps.hpp"
#include "core/testbed.hpp"

namespace xunet {
namespace {

using core::CallClient;
using core::CallServer;
using core::Testbed;

TEST(Stress, SimulatorHandlesLargeEventVolumesWithCancellations) {
  sim::Simulator sim;
  util::Rng rng(1);
  std::uint64_t fired = 0;
  std::vector<sim::EventId> ids;
  ids.reserve(100'000);
  for (int i = 0; i < 100'000; ++i) {
    ids.push_back(sim.schedule(sim::microseconds(static_cast<std::int64_t>(rng.below(1'000'000))),
                               [&fired] { ++fired; }));
  }
  // Cancel a random half.
  std::uint64_t cancelled = 0;
  for (std::size_t i = 0; i < ids.size(); ++i) {
    if (rng.chance(0.5) && sim.cancel(ids[i])) ++cancelled;
  }
  sim.run();
  EXPECT_EQ(fired + cancelled, 100'000u);
  EXPECT_GT(cancelled, 45'000u);
  EXPECT_LT(cancelled, 55'000u);
}

TEST(Stress, ProcessChurnLeavesNoDescriptors) {
  sim::Simulator sim;
  kern::KernelConfig cfg;
  cfg.fd_table_size = 32;
  kern::Kernel k(sim, "churn", kern::Kernel::Role::host,
                 ip::make_ip(3, 3, 3, 3), atm::AtmAddress{"churn"}, cfg);
  for (int round = 0; round < 500; ++round) {
    kern::Pid p = k.spawn("p" + std::to_string(round));
    // A mix of descriptor kinds.
    auto x1 = k.xunet_socket(p);
    auto x2 = k.xunet_socket(p);
    ASSERT_TRUE(x1.ok() && x2.ok());
    ASSERT_TRUE(k.xunet_bind(p, *x1, static_cast<atm::Vci>(100 + round % 50), 7).ok());
    auto raw = k.proto_atm_socket(p);
    ASSERT_TRUE(raw.ok());
    ASSERT_TRUE(k.kill_process(p).ok());
    // Drain the termination indications so the device never clogs.
    while (k.anand().read().ok()) {
    }
    sim.run_for(sim::milliseconds(1));
  }
  EXPECT_EQ(k.live_process_count(), 0u);
  EXPECT_EQ(k.xunet_socket_count(), 0u);
}

TEST(Stress, VcChurnReusesVcisWithoutCollision) {
  sim::Simulator sim;
  atm::AtmNetwork net(sim);
  auto& s1 = net.make_switch("s1");
  struct NullSink : atm::CellSink {
    void cell_arrival(const atm::Cell&) override {}
  } sink_a, sink_b;
  ASSERT_TRUE(net.attach_endpoint(atm::AtmAddress{"a"}, sink_a, s1,
                                  atm::kDs3Bps, sim::microseconds(10)).ok());
  ASSERT_TRUE(net.attach_endpoint(atm::AtmAddress{"b"}, sink_b, s1,
                                  atm::kDs3Bps, sim::microseconds(10)).ok());
  for (int round = 0; round < 2000; ++round) {
    std::optional<atm::VcHandle> h;
    net.setup_vc(atm::AtmAddress{"a"}, atm::AtmAddress{"b"}, atm::Qos{},
                 [&](util::Result<atm::VcHandle> r) {
                   ASSERT_TRUE(r.ok());
                   h = *r;
                 });
    sim.run();
    ASSERT_TRUE(h.has_value());
    ASSERT_TRUE(net.teardown(h->id).ok());
  }
  EXPECT_EQ(net.active_vc_count(), 0u);
  EXPECT_EQ(net.setups_attempted(), 2000u);
  EXPECT_EQ(net.setups_denied(), 0u);
}

TEST(Stress, ReservationsFillCapacityExactly) {
  sim::Simulator sim;
  atm::AtmNetwork net(sim);
  auto& s1 = net.make_switch("s1");
  auto& s2 = net.make_switch("s2");
  net.connect_switches(s1, s2, atm::kOc12Bps, sim::microseconds(10));
  struct NullSink : atm::CellSink {
    void cell_arrival(const atm::Cell&) override {}
  } sink_a, sink_b;
  ASSERT_TRUE(net.attach_endpoint(atm::AtmAddress{"a"}, sink_a, s1,
                                  atm::kOc12Bps, sim::microseconds(10)).ok());
  ASSERT_TRUE(net.attach_endpoint(atm::AtmAddress{"b"}, sink_b, s2,
                                  atm::kOc12Bps, sim::microseconds(10)).ok());
  // 622 Mb/s trunk, 622 x 1 Mb/s guaranteed calls fit exactly; the 623rd
  // must be denied.
  atm::Qos q{atm::ServiceClass::guaranteed, 1'000'000};
  int ok = 0, denied = 0;
  for (int i = 0; i < 623; ++i) {
    net.setup_vc(atm::AtmAddress{"a"}, atm::AtmAddress{"b"}, q,
                 [&](util::Result<atm::VcHandle> r) {
                   if (r.ok()) {
                     ++ok;
                   } else {
                     ++denied;
                   }
                 });
  }
  sim.run();
  EXPECT_EQ(ok, 622);
  EXPECT_EQ(denied, 1);
}

TEST(Stress, TcpPortRecyclingOverManyConnections) {
  sim::Simulator sim;
  ip::IpNode a(sim, "a", ip::make_ip(1, 1, 1, 1));
  ip::IpNode b(sim, "b", ip::make_ip(2, 2, 2, 2));
  ip::IpLink link(sim, ip::kFddiBps, sim::microseconds(20), ip::kFddiMtu);
  link.attach(a, b);
  a.set_default_route(link);
  b.set_default_route(link);
  tcp::TcpConfig tcfg;
  tcfg.msl = sim::milliseconds(100);  // fast recycling for the soak
  tcp::TcpLayer ta(a, tcfg), tb(b, tcfg);
  int accepted = 0;
  ASSERT_TRUE(tb.listen(9, [&](tcp::ConnId c) {
                  ++accepted;
                  tb.set_close_handler(c, [&tb, c](util::Errc) {
                    (void)tb.close(c);
                  });
                }).ok());
  int completed = 0;
  for (int i = 0; i < 500; ++i) {
    std::optional<tcp::ConnId> conn;
    (void)ta.connect(b.address(), 9, [&](util::Result<tcp::ConnId> r) {
      ASSERT_TRUE(r.ok());
      conn = *r;
    });
    sim.run_for(sim::milliseconds(20));
    ASSERT_TRUE(conn.has_value());
    ASSERT_TRUE(ta.close(*conn).ok());
    sim.run_for(sim::milliseconds(30));
    ++completed;
  }
  sim.run_for(sim::seconds(2));
  EXPECT_EQ(completed, 500);
  EXPECT_EQ(accepted, 500);
  EXPECT_EQ(ta.connection_count(), 0u);
  EXPECT_EQ(tb.connection_count(), 0u);
}

TEST(Stress, FiveSiteMeshUnderConcurrentCallChurn) {
  core::TestbedConfig cfg;
  cfg.kernel.fd_table_size = 200;
  cfg.kernel.tcp_msl = sim::seconds(1);
  cfg.sighost.per_call_log_cost = sim::milliseconds(2);
  auto tb = std::make_unique<Testbed>(cfg);
  auto& s1 = tb->add_switch("s1");
  auto& s2 = tb->add_switch("s2");
  tb->connect_switches(s1, s2);
  const char* names[4] = {"a.rt", "b.rt", "c.rt", "d.rt"};
  tb->add_router("a.rt", ip::make_ip(10, 1, 0, 1), s1);
  tb->add_router("b.rt", ip::make_ip(10, 2, 0, 1), s1);
  tb->add_router("c.rt", ip::make_ip(10, 3, 0, 1), s2);
  tb->add_router("d.rt", ip::make_ip(10, 4, 0, 1), s2);
  ASSERT_TRUE(tb->bring_up().ok());

  std::vector<std::unique_ptr<CallServer>> servers;
  std::vector<std::unique_ptr<CallClient>> clients;
  for (int i = 0; i < 4; ++i) {
    auto& r = tb->router(static_cast<std::size_t>(i));
    servers.push_back(std::make_unique<CallServer>(
        *r.kernel, r.kernel->ip_node().address(), "s" + std::to_string(i),
        static_cast<std::uint16_t>(6300 + i)));
    servers.back()->start([](util::Result<void>) {});
    clients.push_back(std::make_unique<CallClient>(
        *r.kernel, r.kernel->ip_node().address()));
  }
  tb->sim().run_for(sim::milliseconds(500));

  // 200 calls: every router repeatedly calls a rotating peer, holds 500 ms.
  auto done = std::make_shared<int>(0);
  for (int n = 0; n < 200; ++n) {
    int from = n % 4;
    int to = (n + 1 + n / 4) % 4;
    if (to == from) to = (to + 1) % 4;
    CallClient* c = clients[static_cast<std::size_t>(from)].get();
    tb->sim().schedule(
        sim::milliseconds(10 * n), [tb = tb.get(), c, to, done] {
          c->open("" + std::string(
                           std::array<const char*, 4>{"a.rt", "b.rt", "c.rt",
                                                      "d.rt"}[static_cast<std::size_t>(to)]),
                  "s" + std::to_string(to), "",
                  [tb, c, done](util::Result<CallClient::Call> r) {
                    if (!r.ok()) {
                      ++*done;
                      return;
                    }
                    tb->sim().schedule(sim::milliseconds(500),
                                       [c, done, call = *r] {
                                         c->close_call(call);
                                         ++*done;
                                       });
                  });
        });
  }
  tb->sim().run_for(sim::seconds(120));
  EXPECT_EQ(*done, 200);
  EXPECT_TRUE(tb->audit().clean()) << tb->audit().describe();
  (void)names;
}

}  // namespace
}  // namespace xunet
