// datapath_test.cpp — end-to-end data-plane properties: the DS3 bottleneck,
// integrity under load, device-layer units (Hobbit/Orc), and full-run
// determinism.
#include <gtest/gtest.h>

#include "core/apps.hpp"
#include "core/testbed.hpp"
#include "kern/hobbit.hpp"
#include "kern/orc.hpp"
#include "util/crc32.hpp"

namespace xunet {
namespace {

using core::CallClient;
using core::CallServer;
using core::Testbed;

// -------------------------------------------------------------- Orc driver

TEST(Orc, DispatchPrefersPerVciHandlerOverDefault) {
  kern::InstrCounter instr;
  kern::OrcDriver orc(instr);
  std::vector<std::pair<atm::Vci, char>> calls;
  orc.set_default_handler([&](atm::Vci v, const kern::MbufChain&) {
    calls.emplace_back(v, 'd');
  });
  orc.set_vci_handler(40, [&](atm::Vci v, const kern::MbufChain&) {
    calls.emplace_back(v, 'f');  // forwarding handler (VCI_BIND)
  });
  kern::MbufChain chain = kern::MbufChain::shaped(1, 8);
  orc.input(40, chain);
  orc.input(41, chain);
  orc.clear_vci_handler(40);
  orc.input(40, chain);
  ASSERT_EQ(calls.size(), 3u);
  EXPECT_EQ(calls[0], (std::pair<atm::Vci, char>{40, 'f'}));
  EXPECT_EQ(calls[1], (std::pair<atm::Vci, char>{41, 'd'}));
  EXPECT_EQ(calls[2], (std::pair<atm::Vci, char>{40, 'd'}));
}

TEST(Orc, DiscardSuppressesDeliveryAndCounts) {
  kern::InstrCounter instr;
  kern::OrcDriver orc(instr);
  int delivered = 0;
  orc.set_default_handler([&](atm::Vci, const kern::MbufChain&) { ++delivered; });
  orc.set_discard(50, true);
  kern::MbufChain chain = kern::MbufChain::shaped(1, 8);
  orc.input(50, chain);
  orc.input(51, chain);
  EXPECT_EQ(delivered, 1);
  EXPECT_EQ(orc.frames_discarded(), 1u);
  orc.set_discard(50, false);
  orc.input(50, chain);
  EXPECT_EQ(delivered, 2);
}

TEST(Orc, OutputWithoutTargetFails) {
  kern::InstrCounter instr;
  kern::OrcDriver orc(instr);
  EXPECT_EQ(orc.output(1, kern::MbufChain{}).error(),
            util::Errc::not_connected);
}

// ------------------------------------------------------------------ Hobbit

TEST(Hobbit, SegmentsAndReassemblesThroughALoopbackWire) {
  sim::Simulator sim;
  kern::HobbitInterface tx(atm::AtmAddress{"tx"}, 128);
  kern::HobbitInterface rx(atm::AtmAddress{"rx"}, 128);
  atm::CellLink wire(sim, atm::kDs3Bps, sim::microseconds(10), rx);
  tx.connect_uplink(wire);
  std::optional<std::pair<atm::Vci, util::Buffer>> got;
  rx.set_frame_handler([&](atm::Vci v, kern::MbufChain chain) {
    got = {v, chain.linearize()};
  });
  util::Buffer payload(500, 0x42);
  ASSERT_TRUE(tx.send(77, kern::MbufChain::from_bytes(payload, 128)).ok());
  sim.run();
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->first, 77);
  EXPECT_EQ(got->second, payload);
  EXPECT_EQ(tx.frames_sent(), 1u);
  EXPECT_EQ(rx.frames_received(), 1u);
}

TEST(Hobbit, SendWithoutUplinkFails) {
  kern::HobbitInterface h(atm::AtmAddress{"x"}, 128);
  EXPECT_EQ(h.send(1, kern::MbufChain{}).error(), util::Errc::not_connected);
  EXPECT_FALSE(h.connected());
}

TEST(Hobbit, LossyWireSurfacesAal5Errors) {
  sim::Simulator sim;
  util::Rng rng(5);
  kern::HobbitInterface tx(atm::AtmAddress{"tx"}, 128);
  kern::HobbitInterface rx(atm::AtmAddress{"rx"}, 128);
  atm::CellLink wire(sim, atm::kDs3Bps, sim::SimDuration{}, rx);
  wire.set_loss(0.05, &rng);
  tx.connect_uplink(wire);
  int frames = 0;
  rx.set_frame_handler([&](atm::Vci, kern::MbufChain) { ++frames; });
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(tx.send(9, kern::MbufChain::from_bytes(util::Buffer(900, 1), 128)).ok());
  }
  sim.run();
  EXPECT_LT(frames, 50);
  EXPECT_GT(rx.aal5_errors(), 0u);
}

// ------------------------------------------------------- WAN data plane

TEST(DataPlane, Ds3TrunkIsTheBottleneck) {
  // Router-to-router bulk transfer: the 45 Mb/s DS3 path (plus AAL5
  // cell-tax: 48 payload bytes per 53-byte cell) bounds throughput.
  auto tb = core::TestbedConfig{}.pvc_mesh().build();
  auto& r1 = tb->router(1);
  CallServer server(*r1.kernel, r1.kernel->ip_node().address(), "bulk", 4930);
  server.start([](util::Result<void>) {});
  tb->sim().run_for(sim::milliseconds(300));
  CallClient client(*tb->router(0).kernel,
                    tb->router(0).kernel->ip_node().address());
  std::optional<CallClient::Call> call;
  client.open("berkeley.rt", "bulk", "",
              [&](util::Result<CallClient::Call> r) { call = *r; });
  tb->sim().run_for(sim::seconds(2));
  ASSERT_TRUE(call.has_value());

  const int frames = 100;
  const std::size_t payload = 8192;
  sim::SimTime t0 = tb->sim().now();
  for (int i = 0; i < frames; ++i) {
    ASSERT_TRUE(client.send(*call, util::Buffer(payload, 0x11)).ok());
  }
  while (server.frames_received() < static_cast<std::uint64_t>(frames)) {
    tb->sim().run_for(sim::milliseconds(5));
  }
  double secs = (tb->sim().now() - t0).sec();
  double goodput = frames * payload * 8.0 / secs / 1e6;
  // Theoretical max: 45 Mb/s × 48/53 ≈ 40.8 Mb/s of AAL payload.
  EXPECT_GT(goodput, 30.0);
  EXPECT_LT(goodput, 41.0);
}

TEST(DataPlane, IntegrityUnderSustainedLoad) {
  // Every frame delivered end to end must be byte-identical: checksummed
  // payloads over 500 frames of varying size.
  auto tb = core::TestbedConfig{}.hosts(2).pvc_mesh().build();
  auto& h1 = tb->host(1);
  kern::Pid spid = h1.kernel->spawn("integrity-server");
  app::UserLib server(*h1.kernel, spid, h1.home->kernel->ip_node().address());
  std::uint64_t received = 0, bad = 0;
  server.export_service("integrity", 4931, [](util::Result<void>) {});
  server.await_service_request([&](util::Result<app::IncomingRequest> r) {
    ASSERT_TRUE(r.ok());
    server.accept_connection(*r, r->qos, [&](util::Result<app::OpenResult> res) {
      ASSERT_TRUE(res.ok());
      auto fd = server.bind_data_socket(*res);
      ASSERT_TRUE(fd.ok());
      (void)h1.kernel->xunet_on_receive(spid, *fd, [&](util::BytesView d) {
        // Frame layout: u32 crc of the rest | body.
        util::Reader rd(d);
        auto crc = rd.u32();
        ++received;
        if (!crc.ok() || util::crc32(rd.rest()) != *crc) ++bad;
      });
    });
  });
  tb->sim().run_for(sim::milliseconds(500));

  CallClient client(*tb->host(0).kernel,
                    tb->host(0).home->kernel->ip_node().address());
  std::optional<CallClient::Call> call;
  client.open("berkeley.rt", "integrity", "",
              [&](util::Result<CallClient::Call> r) { call = *r; });
  tb->sim().run_for(sim::seconds(2));
  ASSERT_TRUE(call.has_value());

  util::Rng rng(77);
  const int frames = 500;
  for (int i = 0; i < frames; ++i) {
    util::Buffer body(1 + rng.below(4000));
    for (auto& b : body) b = static_cast<std::uint8_t>(rng.next());
    util::Writer w;
    w.u32(util::crc32(body));
    w.bytes(body);
    ASSERT_TRUE(client.send(*call, w.view()).ok());
  }
  tb->sim().run_for(sim::seconds(20));
  EXPECT_EQ(received, static_cast<std::uint64_t>(frames));
  EXPECT_EQ(bad, 0u);
}

// -------------------------------------------------------------- determinism

/// Run the standard scenario and fingerprint every observable counter.
std::string run_fingerprint() {
  auto tb = core::TestbedConfig{}.hosts(2).pvc_mesh().build();
  auto& h1 = tb->host(1);
  CallServer server(*h1.kernel, h1.home->kernel->ip_node().address(), "fp",
                    4940);
  server.start([](util::Result<void>) {});
  tb->sim().run_for(sim::milliseconds(300));
  CallClient client(*tb->host(0).kernel,
                    tb->host(0).home->kernel->ip_node().address());
  std::optional<CallClient::Call> call;
  client.open("berkeley.rt", "fp", "class=predicted,bw=777000",
              [&](util::Result<CallClient::Call> r) { call = *r; });
  tb->sim().run_for(sim::seconds(2));
  if (!call) return "open-failed";
  for (int i = 0; i < 25; ++i) {
    (void)client.send(*call, util::Buffer(100 + 37 * static_cast<std::size_t>(i), 0x5));
  }
  tb->sim().run_for(sim::seconds(2));
  client.close_call(*call);
  tb->sim().run_for(sim::seconds(2));

  std::string fp;
  fp += std::to_string(tb->sim().now().ns()) + "|";
  fp += std::to_string(server.frames_received()) + "|";
  fp += std::to_string(server.bytes_received()) + "|";
  fp += std::to_string(tb->network().active_vc_count()) + "|";
  for (int i = 0; i < 2; ++i) {
    const auto& st = tb->router(static_cast<std::size_t>(i)).sighost->stats();
    fp += std::to_string(st.calls_established) + "," +
          std::to_string(st.calls_torn_down) + ";";
    fp += std::to_string(
              tb->router(static_cast<std::size_t>(i)).kernel->tcp().segments_sent()) +
          ";";
  }
  fp += std::to_string(call->info.vci) + "|" + call->info.qos;
  return fp;
}

TEST(Determinism, IdenticalRunsProduceIdenticalFingerprints) {
  std::string a = run_fingerprint();
  std::string b = run_fingerprint();
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.find("failed"), std::string::npos) << a;
}

}  // namespace
}  // namespace xunet
