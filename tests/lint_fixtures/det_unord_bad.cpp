// Fixture: range-for over an unordered container whose body schedules events
// or sends messages leaks hash order into replayed state.
// Expected findings: 2 (disconnect_all, notify_peers); count_open is benign.
#include "det_unord_bad.hpp"

void ConnTable::disconnect_all() {
  for (auto& [id, state] : conns_) {  // finding: schedules inside
    sim_.schedule(10, [id = id] { (void)id; });
    state = 0;
  }
}

void send_to(std::uint64_t peer);

void ConnTable::notify_peers() {
  for (std::uint64_t p : peers_) {  // finding: sends inside
    send_to(p);
  }
}

std::size_t ConnTable::count_open() const {
  // Pure aggregation: order cannot escape, so this is fine.
  std::size_t n = 0;
  for (const auto& [id, state] : conns_) {
    if (state != 0) ++n;
  }
  (void)n;
  return n;
}
