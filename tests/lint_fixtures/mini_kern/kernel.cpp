// Fixture: a miniature kernel socket layer with a known SocketState
// assignment set, for exercising the kern_socket STATE rule against the
// good/undeclared/stale tables next to it.
// Ground-truth transitions (state, "assign"):
//   xunet_bind             bound
//   xunet_connect          connected
//   mark_vci_disconnected  disconnected   (via ->, inside a helper loop)
//   close_xunet            created
// The default member initializer must NOT be extracted.
#include <cstdint>
#include <unordered_map>

enum class SocketState : std::uint8_t { created, bound, connected, disconnected };

struct XunetSock {
  std::uint32_t vci = 0;
  SocketState state = SocketState::created;  // default init: not a transition
};

class Kernel {
 public:
  void xunet_bind(XunetSock& xs, std::uint32_t vci);
  void xunet_connect(XunetSock& xs, std::uint32_t vci);
  void mark_vci_disconnected(std::uint32_t vci);
  void close_xunet(XunetSock& xs);

 private:
  std::unordered_map<std::uint64_t, XunetSock> xsocks_;
};

void Kernel::xunet_bind(XunetSock& xs, std::uint32_t vci) {
  xs.vci = vci;
  xs.state = SocketState::bound;
}

void Kernel::xunet_connect(XunetSock& xs, std::uint32_t vci) {
  xs.vci = vci;
  xs.state = SocketState::connected;
}

void Kernel::mark_vci_disconnected(std::uint32_t vci) {
  for (auto& [h, xs] : xsocks_) {
    XunetSock* p = &xs;
    if (p->vci == vci) p->state = SocketState::disconnected;
  }
}

void Kernel::close_xunet(XunetSock& xs) { xs.state = SocketState::created; }
