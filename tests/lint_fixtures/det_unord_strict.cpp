// Fixture: strict DET-UNORD-ITER.  Loops over unordered containers that
// build ordered artifacts (streams, JSON lines, sequences) in hash order are
// only flagged with --strict-unord; the snapshot-then-sort idiom stays clean
// in both modes.  Expected strict findings: 3 (render's stream append,
// collect's push_back, the write_json_line loop); expected normal-mode
// findings: 0.
#include "det_unord_strict.hpp"

#include <algorithm>
#include <sstream>
#include <vector>

void write_json_line(const std::string& s);

std::string MetricsDump::render() const {
  std::ostringstream out;
  for (const auto& [name, v] : counters_) {  // strict finding: '<<'
    out << name << "=" << v << "\n";
  }
  return out.str();
}

void MetricsDump::collect(std::vector<std::uint64_t>& out) const {
  for (std::uint64_t v : live_) {  // strict finding: push_back, no sort
    out.push_back(v);
  }
}

void MetricsDump::collect_sorted(std::vector<std::uint64_t>& out) const {
  for (std::uint64_t v : live_) {  // clean: snapshot-then-sort
    out.push_back(v);
  }
  std::sort(out.begin(), out.end());
}

std::size_t MetricsDump::total() const {
  std::size_t n = 0;
  for (std::uint64_t v : live_) {  // clean: pure aggregation
    n += static_cast<std::size_t>(v);
  }
  return n;
}

void dump_all(const MetricsDump& m,
              const std::unordered_set<std::uint64_t>& ids_) {
  for (std::uint64_t id : ids_) {  // strict finding: JSON emitter
    write_json_line(std::to_string(id));
  }
  (void)m;
}
