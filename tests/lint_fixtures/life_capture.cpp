// Fixture: by-reference lambda captures handed to the event engine outlive
// the enclosing frame.  Expected findings: 2 (the [&] and the [this, &queue]
// sites); by-value captures and non-sink calls are fine.
#include <cstdint>
#include <vector>

struct Sim {
  template <typename F>
  void schedule(long delay, F&& fn);
  template <typename F>
  std::uint64_t schedule_at(long when, F&& fn);
};

template <typename F>
void for_each_cell(const std::vector<int>& v, F&& fn);

void run(Sim& sim, std::vector<int>& queue) {
  int local = 3;
  sim.schedule(5, [&] { queue.push_back(local); });  // finding: [&]

  sim.schedule_at(9, [&queue] { queue.clear(); });  // finding: &queue

  sim.schedule(7, [local] { (void)local; });  // ok: by value

  // Not a sink: an immediate call can borrow the frame freely.
  for_each_cell(queue, [&](int) { ++local; });

  // Subscripts in sink arguments are not lambda introducers.
  sim.schedule(queue[0], [n = queue[1]] { (void)n; });
}
