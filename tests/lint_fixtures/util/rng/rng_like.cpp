// Fixture: files under util/rng are the deterministic-RNG wrapper itself and
// are exempt from DET-BANNED (they must name the primitives they replace).
// Expected findings: 0.
#include <cstdint>
#include <random>  // exempt here: <random> is banned everywhere else

struct RngImpl {
  std::uint64_t state;
};

// Naming mt19937 / random_device in code here is fair game.
using reference_engine = std::mt19937;

std::uint64_t reseed(RngImpl& r) {
  std::random_device rd;
  r.state = rd();
  return r.state * 6364136223846793005ULL + 1442695040888963407ULL;
}
