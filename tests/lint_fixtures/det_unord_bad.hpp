// Fixture header: declares the unordered members det_unord_bad.cpp iterates.
// The sibling-stem pairing (det_unord_bad.cpp <-> det_unord_bad.hpp) is what
// lets the .cpp rule see these declarations.  Expected findings: 0 (here).
#pragma once
#include <cstdint>
#include <unordered_map>
#include <unordered_set>

struct FakeSim {
  template <typename F>
  void schedule(long delay, F&& fn);
};

class ConnTable {
 public:
  void disconnect_all();
  void notify_peers();
  std::size_t count_open() const;

 private:
  FakeSim sim_;
  std::unordered_map<std::uint64_t, int> conns_;
  std::unordered_set<std::uint64_t> peers_;
};
