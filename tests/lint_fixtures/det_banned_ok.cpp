// Fixture: near-misses of DET-BANNED that must NOT be flagged.
// Expected findings: 0.
// Dice's members are declared elsewhere (fixtures are lexed, not compiled);
// note that DECLARING a member named `rand` would itself be flagged — the
// matcher only exempts member accesses, and shadowing a banned name in
// product code deserves the complaint.
struct Dice;

int use(Dice& d) {
  // rand() in a comment is not a call, and neither is "rand()" in a string.
  const char* label = "rand() replay help text";
  int grand = 7;  // identifier merely containing the banned name
  return d.rand() + grand + static_cast<int>(d.time(0)) +
         static_cast<int>(label[0]);
}

long scaled_time(long time_scale) {
  // `time(expr)` with a non-wall-clock argument shape is left alone.
  return time_scale * 2;
}
