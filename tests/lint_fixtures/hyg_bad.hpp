// Fixture: hygiene violations.  Expected findings: 3 —
// HYG-PRAGMA-ONCE (no #pragma once), HYG-BANNED-INCLUDE (<thread>),
// HYG-REL-INCLUDE ("../escape.hpp").
#include <thread>

#include "../escape.hpp"

struct Hygiene {
  int x;
};
