// Fixture: every line here that names a wall clock or ambient RNG must be
// flagged DET-BANNED.  Expected findings: 5.
#include <cstdlib>

int noise() {
  return rand();  // finding 1
}

void reseed(unsigned s) {
  srand(s);  // finding 2
}

unsigned hw_entropy() {
  std::random_device rd;  // finding 3
  return rd();
}

long long stamp_ns() {
  auto t = std::chrono::system_clock::now();  // finding 4
  return t.time_since_epoch().count();
}

long unix_now() {
  return time(nullptr);  // finding 5
}
