// Fixture: ordered containers keyed by pointers sort by address, which
// varies run to run.  Expected findings: 2 (the map and the set); pointers
// as VALUES are fine.
#include <map>
#include <set>

struct Session {
  int id;
};

struct Registry {
  std::map<Session*, int> by_session_;       // finding: pointer key
  std::set<const Session*> live_;            // finding: pointer key
  std::map<int, Session*> by_id_;            // ok: pointer value
  std::multimap<long, const Session*> tmp_;  // ok: pointer value
};
