// Fixture: a hygienic header.  Expected findings: 0.
#pragma once
#include <vector>

#include "det_unord_bad.hpp"

struct Tidy {
  std::vector<int> xs;
};
