// Fixture header: declares the unordered members det_unord_strict.cpp
// iterates.  Expected findings: 0 (here).
#pragma once
#include <cstdint>
#include <string>
#include <unordered_map>
#include <unordered_set>

class MetricsDump {
 public:
  std::string render() const;
  void collect(std::vector<std::uint64_t>& out) const;
  void collect_sorted(std::vector<std::uint64_t>& out) const;
  std::size_t total() const;

 private:
  std::unordered_map<std::string, std::uint64_t> counters_;
  std::unordered_set<std::uint64_t> live_;
};
