// Fixture: self-re-arming timer chains.  A lambda that re-arms itself (or
// arms another timer) keeps running long after the frame its captures were
// taken in is gone — a by-reference capture there is a use-after-return on
// every firing after the first.  Expected LIFE-TIMER-REARM findings: 2 (the
// stored `tick` chain and the `&backlog` helper); the by-value chain and the
// lambda passed directly to a sink (LIFE-REF-CAPTURE's territory) are not
// this rule's findings.
#include <cstdint>
#include <functional>
#include <vector>

struct Sim {
  template <typename F>
  void schedule(long delay, F&& fn);
};

struct Poller {
  Sim sim_;
  std::function<void()> tick_;
  void start();
  void drain(std::vector<int>& backlog);
};

void Poller::start() {
  int beats = 0;
  tick_ = [this, &beats] {  // finding: &beats dies with start()'s frame
    ++beats;
    sim_.schedule(10, tick_);
  };
  sim_.schedule(10, tick_);
}

void Poller::drain(std::vector<int>& backlog) {
  auto pump = [this, &backlog] {  // finding: re-arms via schedule
    backlog.pop_back();
    sim_.schedule(5, [this] { drain(*new std::vector<int>); });
  };
  pump();

  // By-value re-arming chain: the sanctioned pattern, no finding.
  auto safe = [this, n = 3]() mutable {
    --n;
    sim_.schedule(7, [] {});
  };
  safe();

  // A by-ref lambda handed straight to the sink is LIFE-REF-CAPTURE's
  // finding, not a TIMER-REARM one.
  sim_.schedule(9, [&backlog] { backlog.clear(); });
}
