// Fixture: a miniature sighost with a known transition set, for exercising
// the STATE rule against the good/undeclared/stale tables next to it.
// Ground-truth transitions:
//   handle_export_srv   service_list       insert
//   handle_withdraw_srv service_list       erase
//   establish_vc        outgoing_requests  erase
//   establish_vc        vci_mapping        insert   (via operator[] assign)
//   reset               vci_mapping        clear
//   sweep_expired       vci_mapping        erase    (free helper, not a member)
#include <cstdint>
#include <map>
#include <set>
#include <string>

class Sighost {
 public:
  void handle_export_srv(const std::string& name, int sap);
  void handle_withdraw_srv(const std::string& name);
  void establish_vc(std::uint64_t req, std::uint32_t vci);
  void reset();

 private:
  std::map<std::string, int> services_;
  std::set<std::uint64_t> outgoing_;
  std::map<std::uint32_t, std::uint64_t> vci_map_;
};

void Sighost::handle_export_srv(const std::string& name, int sap) {
  services_.emplace(name, sap);
}

void Sighost::handle_withdraw_srv(const std::string& name) {
  services_.erase(name);
}

void Sighost::establish_vc(std::uint64_t req, std::uint32_t vci) {
  outgoing_.erase(req);
  vci_map_[vci] = req;
}

void Sighost::reset() { vci_map_.clear(); }

// Free helper mutating a list it was handed: the extractor must attribute
// the erase to sweep_expired, not to the preceding member definition.
namespace {
void sweep_expired(std::map<std::uint32_t, std::uint64_t>& vci_map_) {
  vci_map_.erase(0u);
}
}  // namespace
