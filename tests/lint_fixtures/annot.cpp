// Fixture: annotation grammar.  Expected: the first rand() is suppressed
// (trailing allow with reason); the second is suppressed (standalone allow,
// reason, comment gap); the third stays a live DET-BANNED because its allow
// has no reason (which is itself a LINT-ANNOT finding); the last comment is
// a malformed annotation (another LINT-ANNOT).
#include <cstdlib>

int a() {
  return rand();  // xunet-lint: allow(DET-BANNED) -- fixture: trailing form
}

int b() {
  // xunet-lint: allow(DET-BANNED) -- fixture: standalone form, and the
  // annotation may continue in prose before the statement it guards.
  return rand();
}

int c() {
  // xunet-lint: allow(DET-BANNED)
  return rand();
}

// xunet-lint: allow() -- empty rule list is malformed
int d() { return 0; }
