// fuzz_test.cpp — §4 Robustness: "the system should protect itself from
// programs that crash, are malicious, or hold a half-open connection."
// Deterministic fuzzing of every parser and of sighost's application-facing
// protocol surface.
#include <gtest/gtest.h>

#include "atm/qos.hpp"
#include "core/apps.hpp"
#include "core/testbed.hpp"
#include "ip/packet.hpp"
#include "signaling/messages.hpp"
#include "tcpsim/segment.hpp"
#include "util/rng.hpp"

namespace xunet {
namespace {

using core::CallClient;
using core::CallServer;
using core::Testbed;
using core::TestbedConfig;

util::Buffer random_bytes(util::Rng& rng, std::size_t max_len) {
  util::Buffer b(rng.below(max_len + 1));
  for (auto& x : b) x = static_cast<std::uint8_t>(rng.next());
  return b;
}

// ---------------------------------------------------------- parser fuzzing

class ParserFuzz : public ::testing::TestWithParam<int> {};

TEST_P(ParserFuzz, SignalingMessageParserNeverMisbehaves) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()) * 1337 + 5);
  for (int i = 0; i < 2000; ++i) {
    util::Buffer junk = random_bytes(rng, 300);
    auto r = sig::parse_msg(junk);
    if (r.ok()) {
      // If random bytes happen to parse, reserializing must round-trip —
      // the parser accepted a well-formed message, not garbage.
      auto again = sig::parse_msg(sig::serialize(*r));
      ASSERT_TRUE(again.ok());
    }
  }
}

TEST_P(ParserFuzz, MutatedValidMessagesNeverCrash) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()) * 7 + 3);
  sig::Msg m;
  m.type = sig::MsgType::connect_req;
  m.service = "fuzz-service";
  m.qos = "class=guaranteed,bw=123";
  m.dst = "mh.rt";
  m.comment = "comment";
  util::Buffer wire = sig::serialize(m);
  for (int i = 0; i < 2000; ++i) {
    util::Buffer mutated = wire;
    int flips = 1 + static_cast<int>(rng.below(4));
    for (int f = 0; f < flips; ++f) {
      mutated[rng.below(mutated.size())] ^=
          static_cast<std::uint8_t>(1u << rng.below(8));
    }
    (void)sig::parse_msg(mutated);  // must not crash / UB; result may be ok
  }
}

TEST_P(ParserFuzz, IpPacketParserRejectsGarbage) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()) * 31 + 1);
  int accepted = 0;
  for (int i = 0; i < 2000; ++i) {
    util::Buffer junk = random_bytes(rng, 100);
    if (ip::parse_ip_packet(junk).ok()) ++accepted;
  }
  // The header checksum makes random acceptance essentially impossible.
  EXPECT_EQ(accepted, 0);
}

TEST_P(ParserFuzz, TcpSegmentParserNeverCrashes) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()) * 17 + 9);
  for (int i = 0; i < 2000; ++i) {
    (void)tcp::parse_segment(random_bytes(rng, 200));
  }
  SUCCEED();
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParserFuzz, ::testing::Range(0, 4));

// ------------------------------------------------------------ QoS fuzzing
//
// The QoS string is the only parser whose output reaches admission control
// and the GCRA policer: a parse that silently mangles a descriptor becomes
// a wrong traffic contract enforced in hardware.  Round-trip identity and
// negotiate() monotonicity are the two properties that keep it honest.

class QosFuzz : public ::testing::TestWithParam<int> {};

atm::Qos random_qos(util::Rng& rng) {
  atm::Qos q;
  q.service_class = static_cast<atm::ServiceClass>(rng.below(4));
  // Mix small, large, and zero (= unset) values on every field.
  auto pick64 = [&]() -> std::uint64_t {
    switch (rng.below(4)) {
      case 0: return 0;
      case 1: return rng.below(1000);
      case 2: return rng.below(1'000'000'000);
      default: return rng.next();  // full 64-bit range
    }
  };
  q.bandwidth_bps = pick64();
  q.pcr_bps = pick64();
  q.scr_bps = pick64();
  q.mbs_cells = static_cast<std::uint32_t>(rng.next());
  if (rng.below(2) == 0) q.mbs_cells = 0;
  return q;
}

TEST_P(QosFuzz, ToStringParseRoundTripIsIdentity) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()) * 503 + 11);
  for (int i = 0; i < 2000; ++i) {
    const atm::Qos q = random_qos(rng);
    auto back = atm::parse_qos(atm::to_string(q));
    ASSERT_TRUE(back.ok()) << atm::to_string(q);
    EXPECT_EQ(*back, q) << atm::to_string(q);
  }
}

TEST_P(QosFuzz, OverflowingDescriptorsAreRejectedNotWrapped) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()) * 19 + 2);
  for (int i = 0; i < 500; ++i) {
    // A number strictly wider than the field: 21+ digits for u64 fields,
    // a value above 2^32 for the u32 MBS field.
    std::string big(21 + rng.below(20), '0' + static_cast<char>(1 + rng.below(9)));
    for (const char* key : {"bw", "pcr", "scr", "mbs"}) {
      std::string s = "class=vbr,";
      s += key;
      s += "=";
      s += big;
      EXPECT_FALSE(atm::parse_qos(s).ok()) << s;
    }
    EXPECT_FALSE(atm::parse_qos("mbs=4294967296").ok()) << "2^32 must not fit u32";
    EXPECT_FALSE(atm::parse_qos("bw=-1").ok()) << "negative rates are nonsense";
  }
}

TEST_P(QosFuzz, MalformedStringsNeverCrashAndAcceptedOnesAreStable) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()) * 401 + 29);
  // Alphabet biased toward the grammar's separators so junk exercises the
  // key=value splitter, not just the first-character reject.
  static constexpr char kAlpha[] = "abcdefghijklmnopqrstuvwxyz0123456789=,._-";
  for (int i = 0; i < 4000; ++i) {
    std::string s;
    const std::size_t len = rng.below(60);
    for (std::size_t k = 0; k < len; ++k) {
      s += rng.below(8) == 0 ? static_cast<char>(rng.next())
                             : kAlpha[rng.below(sizeof(kAlpha) - 1)];
    }
    auto r = atm::parse_qos(s);
    if (r.ok()) {
      // Whatever parses must be a fixed point: parse(to_string(q)) == q.
      auto again = atm::parse_qos(atm::to_string(*r));
      ASSERT_TRUE(again.ok()) << s;
      EXPECT_EQ(*again, *r) << s;
    }
  }
}

TEST_P(QosFuzz, MutatedClassNamesNeverYieldAnOutOfRangeClass) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()) * 73 + 41);
  static constexpr std::string_view kNames[] = {
      "best_effort", "ubr", "abr", "predicted", "vbr", "guaranteed", "cbr"};
  for (int i = 0; i < 2000; ++i) {
    std::string name(kNames[rng.below(std::size(kNames))]);
    const int flips = 1 + static_cast<int>(rng.below(3));
    for (int f = 0; f < flips; ++f) {
      name[rng.below(name.size())] ^= static_cast<char>(1 << rng.below(7));
    }
    auto c = atm::parse_service_class(name);
    if (c.ok()) {
      EXPECT_LT(static_cast<unsigned>(*c), atm::kServiceClassCount) << name;
    }
  }
}

TEST_P(QosFuzz, NegotiateNeverGrantsMoreThanEitherSide) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()) * 997 + 3);
  // Zero descriptors mean "no cap", so the granted value must equal the
  // other side's; set-on-both-sides must yield the min.
  auto capped = [](std::uint64_t granted, std::uint64_t a, std::uint64_t b) {
    if (a == 0 && b == 0) return granted == 0;
    if (a == 0 || b == 0) return granted == std::max(a, b);
    return granted == std::min(a, b);
  };
  for (int i = 0; i < 2000; ++i) {
    const atm::Qos offered = random_qos(rng);
    const atm::Qos limit = random_qos(rng);
    const atm::Qos granted = atm::negotiate(offered, limit);
    EXPECT_LE(granted.service_class, offered.service_class);
    EXPECT_LE(granted.service_class, limit.service_class);
    EXPECT_LE(granted.bandwidth_bps, offered.bandwidth_bps);
    EXPECT_LE(granted.bandwidth_bps, limit.bandwidth_bps);
    EXPECT_TRUE(capped(granted.pcr_bps, offered.pcr_bps, limit.pcr_bps));
    EXPECT_TRUE(capped(granted.scr_bps, offered.scr_bps, limit.scr_bps));
    EXPECT_TRUE(capped(granted.mbs_cells, offered.mbs_cells, limit.mbs_cells));
    // Negotiation is idempotent: re-offering the grant changes nothing.
    EXPECT_EQ(atm::negotiate(granted, limit), granted);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, QosFuzz, ::testing::Range(0, 4));

// ------------------------------------------------------- framer fuzzing

TEST_P(ParserFuzz, FramerSurvivesTruncatedDuplicatedAndFlippedStreams) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()) * 101 + 13);
  // A pool of well-formed framed messages to build hostile streams from.
  std::vector<util::Buffer> frames;
  for (int i = 0; i < 8; ++i) {
    sig::Msg m;
    m.type = static_cast<sig::MsgType>(1 + rng.below(12));
    m.req_id = static_cast<sig::ReqId>(rng.next());
    m.cookie = static_cast<sig::Cookie>(rng.next());
    m.service = std::string(rng.below(20), 's');
    m.qos = std::string(rng.below(20), 'q');
    frames.push_back(sig::frame(m));
  }
  for (int iter = 0; iter < 200; ++iter) {
    // Fresh framer per iteration: no state may leak between streams.
    int delivered = 0;
    int errors = 0;
    sig::MsgFramer framer([&](const sig::Msg&) { ++delivered; },
                          [&](util::Errc) { ++errors; });
    util::Buffer stream;
    int msgs = 1 + static_cast<int>(rng.below(6));
    for (int k = 0; k < msgs; ++k) {
      const util::Buffer& f = frames[rng.below(frames.size())];
      switch (rng.below(4)) {
        case 0: {  // truncated frame (stream ends mid-message)
          std::size_t cut = rng.below(f.size()) + 1;
          stream.insert(stream.end(), f.begin(), f.begin() + cut);
          k = msgs;  // truncation ends the stream
          break;
        }
        case 1:  // duplicated frame
          stream.insert(stream.end(), f.begin(), f.end());
          stream.insert(stream.end(), f.begin(), f.end());
          break;
        case 2: {  // one bit flipped somewhere in the frame
          util::Buffer g = f;
          g[rng.below(g.size())] ^= static_cast<std::uint8_t>(1u << rng.below(8));
          stream.insert(stream.end(), g.begin(), g.end());
          break;
        }
        default:  // intact
          stream.insert(stream.end(), f.begin(), f.end());
      }
    }
    // Feed in random-size chunks; must never crash, and every complete
    // well-formed frame either parses or surfaces as a counted error.
    std::size_t off = 0;
    while (off < stream.size()) {
      std::size_t n = 1 + rng.below(stream.size() - off);
      framer.feed(util::BytesView(stream.data() + off, n));
      off += n;
    }
    EXPECT_GE(delivered + errors, 0);
  }
}

TEST_P(ParserFuzz, FramerParsesCleanStreamsCompletely) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()) * 211 + 7);
  for (int iter = 0; iter < 100; ++iter) {
    int msgs = 1 + static_cast<int>(rng.below(10));
    util::Buffer stream;
    for (int k = 0; k < msgs; ++k) {
      sig::Msg m;
      m.type = sig::MsgType::connect_req;
      m.req_id = static_cast<sig::ReqId>(k);
      m.dst = "berkeley.rt";
      m.service = "svc";
      util::Buffer f = sig::frame(m);
      stream.insert(stream.end(), f.begin(), f.end());
    }
    int delivered = 0;
    sig::MsgFramer framer([&](const sig::Msg&) { ++delivered; });
    std::size_t off = 0;
    while (off < stream.size()) {
      std::size_t n = 1 + rng.below(7);
      n = std::min(n, stream.size() - off);
      framer.feed(util::BytesView(stream.data() + off, n));
      off += n;
    }
    EXPECT_EQ(delivered, msgs);  // byte-dribbled streams lose nothing
  }
}

// ------------------------------------------------- malicious applications

struct MaliciousRig {
  std::unique_ptr<Testbed> tb;
  std::unique_ptr<CallServer> server;
  kern::Pid evil = -1;
  kern::Kernel* k0 = nullptr;

  MaliciousRig() {
    tb = TestbedConfig{}.build_deferred();
    EXPECT_TRUE(tb->bring_up().ok());
    auto& r1 = tb->router(1);
    server = std::make_unique<CallServer>(
        *r1.kernel, r1.kernel->ip_node().address(), "victim", 4800);
    server->start([](util::Result<void>) {});
    tb->sim().run_for(sim::milliseconds(300));
    k0 = tb->router(0).kernel.get();
    evil = k0->spawn("malicious");
  }

  /// A working call must still be possible after the attack.
  void expect_still_functional() {
    CallClient client(*k0, k0->ip_node().address());
    std::optional<CallClient::Call> call;
    client.open("berkeley.rt", "victim", "",
                [&](util::Result<CallClient::Call> r) {
                  if (r.ok()) call = *r;
                });
    tb->sim().run_for(sim::seconds(3));
    EXPECT_TRUE(call.has_value()) << "signaling plane damaged by the attack";
  }
};

TEST(Malicious, GarbageBytesOnTheSighostPortAreSurvived) {
  MaliciousRig rig;
  util::Rng rng(99);
  // Connect straight to the sighost port and spray random bytes.
  std::optional<int> fd;
  (void)rig.k0->tcp_connect(rig.evil, rig.k0->ip_node().address(),
                            sig::kSighostPort,
                            [&](util::Result<int> r) {
                              if (r.ok()) fd = *r;
                            });
  rig.tb->sim().run_for(sim::seconds(1));
  ASSERT_TRUE(fd.has_value());
  for (int i = 0; i < 50; ++i) {
    (void)rig.k0->tcp_send(rig.evil, *fd, random_bytes(rng, 120));
    rig.tb->sim().run_for(sim::milliseconds(50));
  }
  rig.expect_still_functional();
}

TEST(Malicious, ValidlyFramedGarbageMessagesAreIgnored) {
  MaliciousRig rig;
  util::Rng rng(7);
  std::optional<int> fd;
  (void)rig.k0->tcp_connect(rig.evil, rig.k0->ip_node().address(),
                            sig::kSighostPort,
                            [&](util::Result<int> r) { fd = *r; });
  rig.tb->sim().run_for(sim::seconds(1));
  ASSERT_TRUE(fd.has_value());
  // Properly length-framed, but bodies are random garbage.
  for (int i = 0; i < 50; ++i) {
    util::Buffer body = random_bytes(rng, 80);
    util::Writer w;
    w.u16(static_cast<std::uint16_t>(body.size()));
    w.bytes(body);
    (void)rig.k0->tcp_send(rig.evil, *fd, w.view());
  }
  rig.tb->sim().run_for(sim::seconds(2));
  rig.expect_still_functional();
}

TEST(Malicious, WrongTypeMessagesOnAppConnIgnored) {
  MaliciousRig rig;
  // Send peer-plane message types on an application connection: sighost
  // must not treat an app as a peer sighost.
  std::optional<int> fd;
  (void)rig.k0->tcp_connect(rig.evil, rig.k0->ip_node().address(),
                            sig::kSighostPort,
                            [&](util::Result<int> r) { fd = *r; });
  rig.tb->sim().run_for(sim::seconds(1));
  ASSERT_TRUE(fd.has_value());
  for (auto t : {sig::MsgType::peer_setup, sig::MsgType::peer_accept,
                 sig::MsgType::peer_teardown, sig::MsgType::vci_for_conn,
                 sig::MsgType::service_regs}) {
    sig::Msg m;
    m.type = t;
    m.req_id = 12345;
    m.vci = 40;
    (void)rig.k0->tcp_send(rig.evil, *fd, sig::frame(m));
  }
  rig.tb->sim().run_for(sim::seconds(2));
  EXPECT_EQ(rig.tb->router(0).sighost->vci_mapping_size(), 0u);
  rig.expect_still_functional();
}

TEST(Malicious, CookieGuessingCannotStealAVci) {
  MaliciousRig rig;
  // A legitimate client opens a call but does not attach yet.
  kern::Pid good = rig.k0->spawn("good-client");
  app::UserLib lib(*rig.k0, good, rig.k0->ip_node().address());
  std::optional<app::OpenResult> res;
  lib.open_connection("berkeley.rt", "victim", "", "",
                      [&](util::Result<app::OpenResult> r) {
                        if (r.ok()) res = *r;
                      });
  rig.tb->sim().run_for(sim::seconds(3));
  ASSERT_TRUE(res.has_value());

  // The malicious process guesses cookies for that VCI ("a malicious
  // process ... would not be able to guess the cookie").  Each wrong guess
  // is an authentication failure that tears the call down — so even ONE
  // guess cannot go unnoticed, and the VCI never becomes usable to the
  // attacker.
  auto fd = rig.k0->xunet_socket(rig.evil);
  ASSERT_TRUE(fd.ok());
  sig::Cookie guess = static_cast<sig::Cookie>(res->cookie ^ 0x5555);
  ASSERT_TRUE(rig.k0->xunet_connect(rig.evil, *fd, res->vci, guess).ok());
  rig.tb->sim().run_for(sim::seconds(2));
  EXPECT_GE(rig.tb->router(0).sighost->stats().auth_failures, 1u);
  EXPECT_FALSE(rig.k0->xunet_usable(rig.evil, *fd));
  rig.tb->sim().run_for(sim::seconds(15));
  EXPECT_TRUE(rig.tb->audit().clean()) << rig.tb->audit().describe();
}

TEST(Malicious, HalfOpenConnectionIsReclaimedByTimer) {
  // "hold a half-open connection, i.e. to an application on a remote site
  // that has failed" — a client that requests VCIs forever and never binds.
  MaliciousRig rig;
  app::UserLib lib(*rig.k0, rig.evil, rig.k0->ip_node().address());
  int granted = 0;
  for (int i = 0; i < 10; ++i) {
    lib.open_connection("berkeley.rt", "victim", "", "",
                        [&](util::Result<app::OpenResult> r) {
                          if (r.ok()) ++granted;
                        });
  }
  rig.tb->sim().run_for(sim::seconds(8));
  EXPECT_GT(granted, 0);
  // Never binds; every VCI dies of the wait-for-bind timer.
  rig.tb->sim().run_for(sim::seconds(20));
  EXPECT_GE(rig.tb->router(0).sighost->stats().bind_timeouts, 1u);
  EXPECT_TRUE(rig.tb->audit().clean()) << rig.tb->audit().describe();
  rig.expect_still_functional();
}

TEST(Malicious, RandomFramesOnTheSignalingPvcAreSurvived) {
  // A corrupted peer message on the PVC must not kill sighost.
  MaliciousRig rig;
  util::Rng rng(21);
  // Send garbage frames on a raw xunet socket connected to the same PVC
  // VCI sighost uses toward berkeley (VCI 1 at bring-up).  The kernel
  // permits it (the attacker is on the router); sighost's parser must cope.
  auto fd = rig.k0->xunet_socket(rig.evil);
  ASSERT_TRUE(fd.ok());
  ASSERT_TRUE(rig.k0->xunet_connect(rig.evil, *fd, 1, 0).ok());
  for (int i = 0; i < 30; ++i) {
    (void)rig.k0->xunet_send(rig.evil, *fd, random_bytes(rng, 60));
  }
  rig.tb->sim().run_for(sim::seconds(2));
  rig.expect_still_functional();
}

}  // namespace
}  // namespace xunet
