// lint_test.cpp — drives the xunet_lint rule engine over the fixture corpus
// in tests/lint_fixtures/ (known-bad and known-good files per rule), checks
// the annotation / baseline suppression mechanics, the STATE rule's both
// directions against the mini sighost, the xunet.lint.v1 renderer against a
// golden report, and finally self-checks that the real src/ tree is clean
// modulo the checked-in baseline.
#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "xunet_lint/lint.hpp"

namespace {

using xunet::lint::Config;
using xunet::lint::Finding;
using xunet::lint::Report;
using xunet::lint::Transition;

const std::string kRepo = XUNET_SOURCE_DIR;
const std::string kFix = kRepo + "/tests/lint_fixtures";

Report lint_files(const std::vector<std::string>& rel_files,
                  Config cfg = Config{}) {
  cfg.root = kFix;
  std::vector<std::string> paths;
  paths.reserve(rel_files.size());
  for (const std::string& f : rel_files) paths.push_back(kFix + "/" + f);
  return xunet::lint::run_lint(paths, cfg);
}

std::vector<const Finding*> with_rule(const Report& r, const std::string& rule) {
  std::vector<const Finding*> out;
  for (const Finding& f : r.findings) {
    if (f.rule == rule) out.push_back(&f);
  }
  return out;
}

std::vector<int> lines_of(const std::vector<const Finding*>& fs) {
  std::vector<int> out;
  out.reserve(fs.size());
  for (const Finding* f : fs) out.push_back(f->line);
  return out;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "cannot read " << path;
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

// ------------------------------------------------------------------- DET

TEST(LintDet, BannedFlagsEveryWallClockAndRngSite) {
  Report r = lint_files({"det_banned_bad.cpp"});
  auto fs = with_rule(r, "DET-BANNED");
  EXPECT_EQ(lines_of(fs), (std::vector<int>{6, 10, 14, 19, 24}));
  EXPECT_EQ(r.findings.size(), 5u);
  EXPECT_EQ(r.unsuppressed(), 5u);
}

TEST(LintDet, BannedIgnoresNearMisses) {
  Report r = lint_files({"det_banned_ok.cpp"});
  EXPECT_TRUE(r.findings.empty()) << xunet::lint::render_text(r);
}

TEST(LintDet, UtilRngIsExemptFromBannedSymbolsAndRandomInclude) {
  Report r = lint_files({"util/rng/rng_like.cpp"});
  EXPECT_TRUE(r.findings.empty()) << xunet::lint::render_text(r);
}

TEST(LintDet, UnordIterFlagsOnlyEffectfulLoops) {
  // The .hpp rides along: the sibling-stem pairing supplies the member
  // declarations the .cpp's loops iterate.
  Report r = lint_files({"det_unord_bad.cpp", "det_unord_bad.hpp"});
  auto fs = with_rule(r, "DET-UNORD-ITER");
  EXPECT_EQ(lines_of(fs), (std::vector<int>{7, 16}));
  // The pure counting loop in count_open() must not be flagged.
  EXPECT_EQ(r.findings.size(), 2u);
}

TEST(LintDet, StrictUnordFlagsOrderedArtifactsOnlyWhenEnabled) {
  // Normal mode: none of the strict fixture's loops reach the event queue
  // or the wire, so the file is clean.
  Report normal = lint_files({"det_unord_strict.cpp", "det_unord_strict.hpp"});
  EXPECT_TRUE(normal.findings.empty()) << xunet::lint::render_text(normal);
  // Strict mode flags the stream append, the unsorted push_back collection
  // and the JSON emitter — but not snapshot-then-sort or pure aggregation.
  Config cfg;
  cfg.strict_unord = true;
  Report strict =
      lint_files({"det_unord_strict.cpp", "det_unord_strict.hpp"}, cfg);
  auto fs = with_rule(strict, "DET-UNORD-ITER");
  EXPECT_EQ(lines_of(fs), (std::vector<int>{17, 24, 46}));
  EXPECT_EQ(strict.findings.size(), 3u);
  for (const Finding* f : fs) {
    EXPECT_NE(f->message.find("strict:"), std::string::npos);
  }
}

TEST(LintDet, PtrKeyFlagsPointerKeysButNotPointerValues) {
  Report r = lint_files({"det_ptr_key.cpp"});
  auto fs = with_rule(r, "DET-PTR-KEY");
  EXPECT_EQ(lines_of(fs), (std::vector<int>{12, 13}));
  EXPECT_EQ(r.findings.size(), 2u);
}

// ------------------------------------------------------------------ LIFE

TEST(LintLife, RefCaptureFlaggedOnlyAtScheduleSinks) {
  Report r = lint_files({"life_capture.cpp"});
  auto fs = with_rule(r, "LIFE-REF-CAPTURE");
  EXPECT_EQ(lines_of(fs), (std::vector<int>{19, 21}));
  EXPECT_EQ(r.findings.size(), 2u);
}

TEST(LintLife, TimerRearmFlagsRefCapturesInSelfArmingChains) {
  Report r = lint_files({"life_rearm.cpp"});
  auto fs = with_rule(r, "LIFE-TIMER-REARM");
  EXPECT_EQ(lines_of(fs), (std::vector<int>{26, 34}));
  // The lambda handed straight to the sink is LIFE-REF-CAPTURE's finding.
  auto refs = with_rule(r, "LIFE-REF-CAPTURE");
  ASSERT_EQ(refs.size(), 1u);
  EXPECT_EQ(refs[0]->line, 49);
  EXPECT_EQ(r.findings.size(), 3u);
}

// ------------------------------------------------------------------- HYG

TEST(LintHyg, HeaderViolationsAndCleanHeader) {
  Report r = lint_files({"hyg_bad.hpp", "hyg_ok.hpp"});
  ASSERT_EQ(r.findings.size(), 3u);
  EXPECT_EQ(r.findings[0].rule, "HYG-PRAGMA-ONCE");
  EXPECT_EQ(r.findings[1].rule, "HYG-BANNED-INCLUDE");
  EXPECT_EQ(r.findings[2].rule, "HYG-REL-INCLUDE");
  for (const Finding& f : r.findings) EXPECT_EQ(f.file, "hyg_bad.hpp");
}

// ----------------------------------------------------- annotations/baseline

TEST(LintAnnot, TrailingAndStandaloneSuppressReasonlessDoesNot) {
  Report r = lint_files({"annot.cpp"});
  auto banned = with_rule(r, "DET-BANNED");
  ASSERT_EQ(banned.size(), 3u);
  EXPECT_TRUE(banned[0]->suppressed);  // trailing form, line 9
  EXPECT_EQ(banned[0]->reason, "fixture: trailing form");
  EXPECT_TRUE(banned[1]->suppressed);  // standalone form across a comment gap
  EXPECT_FALSE(banned[2]->suppressed) << "reason-less allow must not suppress";

  auto annot = with_rule(r, "LINT-ANNOT");
  ASSERT_EQ(annot.size(), 2u);
  EXPECT_NE(annot[0]->message.find("without a reason"), std::string::npos);
  EXPECT_NE(annot[1]->message.find("malformed"), std::string::npos);
  EXPECT_EQ(r.unsuppressed(), 3u);  // live DET-BANNED + two LINT-ANNOT
}

TEST(LintBaseline, SuppressesByLineTextAndReportsStaleEntries) {
  Config cfg;
  cfg.baseline = kFix + "/baseline_demo.txt";
  Report r = lint_files({"det_banned_bad.cpp"}, cfg);
  auto fs = with_rule(r, "DET-BANNED");
  ASSERT_EQ(fs.size(), 5u);
  EXPECT_TRUE(fs[0]->suppressed);  // rand() at line 6, grandfathered
  EXPECT_EQ(fs[0]->reason, "fixture: grandfathered exemplar");
  for (std::size_t i = 1; i < fs.size(); ++i) EXPECT_FALSE(fs[i]->suppressed);
  EXPECT_EQ(r.unsuppressed(), 4u);
  bool noted = std::any_of(r.notes.begin(), r.notes.end(), [](const auto& n) {
    return n.find("stale baseline entry") != std::string::npos;
  });
  EXPECT_TRUE(noted) << "unmatched baseline entries must be surfaced";
}

TEST(LintBaseline, EntryWithoutReasonFailsToLoad) {
  std::string err;
  auto entries = xunet::lint::load_baseline(kFix + "/baseline_bad.txt", err);
  EXPECT_TRUE(entries.empty());
  EXPECT_NE(err.find("no reason"), std::string::npos) << err;
}

// ----------------------------------------------------------------- STATE

Config mini_cfg(const std::string& table) {
  Config cfg;
  cfg.state_file = "mini_sighost/sighost.cpp";
  cfg.state_table = kFix + "/mini_sighost/" + table;
  return cfg;
}

TEST(LintState, ExactTableIsClean) {
  Report r = lint_files({"mini_sighost/sighost.cpp"}, mini_cfg("state_good.tbl"));
  EXPECT_TRUE(r.findings.empty()) << xunet::lint::render_text(r);
  // The extraction itself is the ground truth the tables are written against.
  ASSERT_EQ(r.transitions.size(), 6u);
  auto has = [&](const char* fn, const char* list, const char* op) {
    return std::any_of(r.transitions.begin(), r.transitions.end(),
                       [&](const Transition& t) {
                         return t.fn == fn && t.list == list && t.op == op;
                       });
  };
  EXPECT_TRUE(has("handle_export_srv", "service_list", "insert"));
  EXPECT_TRUE(has("handle_withdraw_srv", "service_list", "erase"));
  EXPECT_TRUE(has("establish_vc", "outgoing_requests", "erase"));
  EXPECT_TRUE(has("establish_vc", "vci_mapping", "insert"));
  EXPECT_TRUE(has("reset", "vci_mapping", "clear"));
  // The free helper's mutation is attributed to the helper itself.
  EXPECT_TRUE(has("sweep_expired", "vci_mapping", "erase"));
}

TEST(LintState, UndeclaredTransitionFails) {
  Report r = lint_files({"mini_sighost/sighost.cpp"},
                        mini_cfg("state_undeclared.tbl"));
  auto fs = with_rule(r, "STATE-UNDECLARED");
  ASSERT_EQ(fs.size(), 1u);
  EXPECT_NE(fs[0]->message.find("reset"), std::string::npos);
  EXPECT_NE(fs[0]->message.find("clear"), std::string::npos);
  EXPECT_NE(fs[0]->message.find("vci_mapping"), std::string::npos);
}

TEST(LintState, StaleTableEntryFails) {
  Report r = lint_files({"mini_sighost/sighost.cpp"},
                        mini_cfg("state_stale.tbl"));
  auto fs = with_rule(r, "STATE-MISSING");
  ASSERT_EQ(fs.size(), 1u);
  EXPECT_NE(fs[0]->message.find("handle_peer_resync"), std::string::npos);
}

// ---------------------------------------------------- STATE (kern_socket)

Config kern_cfg(const std::string& table) {
  Config cfg;
  cfg.kern_state_file = "mini_kern/kernel.cpp";
  cfg.kern_state_table = kFix + "/mini_kern/" + table;
  return cfg;
}

TEST(LintKernState, ExactTableIsClean) {
  Report r = lint_files({"mini_kern/kernel.cpp"}, kern_cfg("kern_good.tbl"));
  EXPECT_TRUE(r.findings.empty()) << xunet::lint::render_text(r);
  ASSERT_EQ(r.kern_transitions.size(), 4u);
  auto has = [&](const char* fn, const char* to) {
    return std::any_of(r.kern_transitions.begin(), r.kern_transitions.end(),
                       [&](const Transition& t) {
                         return t.fn == fn && t.list == to && t.op == "assign";
                       });
  };
  EXPECT_TRUE(has("xunet_bind", "bound"));
  EXPECT_TRUE(has("xunet_connect", "connected"));
  // Via `->` inside a helper loop, still attributed to the member function.
  EXPECT_TRUE(has("mark_vci_disconnected", "disconnected"));
  EXPECT_TRUE(has("close_xunet", "created"));
  // The default member initializer is NOT a transition.
  EXPECT_EQ(r.kern_transitions.size(), 4u);
}

TEST(LintKernState, UndeclaredAssignmentFails) {
  Report r =
      lint_files({"mini_kern/kernel.cpp"}, kern_cfg("kern_undeclared.tbl"));
  auto fs = with_rule(r, "STATE-UNDECLARED");
  ASSERT_EQ(fs.size(), 1u);
  EXPECT_NE(fs[0]->message.find("close_xunet"), std::string::npos);
  EXPECT_NE(fs[0]->message.find("created"), std::string::npos);
}

TEST(LintKernState, StaleTableEntryFails) {
  Report r = lint_files({"mini_kern/kernel.cpp"}, kern_cfg("kern_stale.tbl"));
  auto fs = with_rule(r, "STATE-MISSING");
  ASSERT_EQ(fs.size(), 1u);
  EXPECT_NE(fs[0]->message.find("xunet_abort"), std::string::npos);
}

// ------------------------------------------------------------------ JSON

TEST(LintJson, GoldenReportForPtrKeyFixture) {
  Report r = lint_files({"det_ptr_key.cpp"});
  EXPECT_EQ(xunet::lint::render_json(r), slurp(kFix + "/golden_ptr_key.json"));
}

TEST(LintJson, SchemaEnvelopeFields) {
  Report r = lint_files({"det_banned_ok.cpp"});
  std::string j = xunet::lint::render_json(r);
  for (const char* key : {"\"schema\": \"xunet.lint.v1\"", "\"tool\"",
                          "\"files_scanned\"", "\"total\"", "\"unsuppressed\"",
                          "\"findings\""}) {
    EXPECT_NE(j.find(key), std::string::npos) << key;
  }
}

// ------------------------------------------------------------- self-check

TEST(LintSelfCheck, SrcTreeCleanModuloBaselineAndStateTable) {
  Config cfg;
  cfg.root = kRepo;
  cfg.baseline = kRepo + "/tools/xunet_lint/baseline.txt";
  cfg.state_table = kRepo + "/tools/xunet_lint/sighost_state.tbl";
  cfg.kern_state_table = kRepo + "/tools/xunet_lint/kern_socket_state.tbl";
  cfg.strict_unord = true;  // CI runs strict; the tree must stay clean there
  Report r = xunet::lint::run_lint({kRepo + "/src"}, cfg);
  EXPECT_EQ(r.unsuppressed(), 0u) << xunet::lint::render_text(r);
  EXPECT_GE(r.files_scanned, 90u);
  // The real sighost's transition extraction must stay non-trivial: the
  // STATE rule is only exhaustive if it is actually seeing the mutations.
  EXPECT_GE(r.transitions.size(), 15u);
  // Same for the kernel SocketState machine.
  EXPECT_GE(r.kern_transitions.size(), 4u);
  // Every suppression in the tree carries a reason.
  for (const Finding& f : r.findings) {
    if (f.suppressed) {
      EXPECT_FALSE(f.reason.empty()) << f.file << ":" << f.line;
    }
  }
}

}  // namespace
