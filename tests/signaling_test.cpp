// signaling_test.cpp — wire messages, framing, cookies, stubs, and sighost
// behaviour observable through its five lists.
#include <gtest/gtest.h>

#include "core/apps.hpp"
#include "core/testbed.hpp"
#include "signaling/cookie.hpp"
#include "signaling/messages.hpp"
#include "signaling/stub_proto.hpp"

namespace xunet::sig {
namespace {

// ---------------------------------------------------------------- messages

TEST(Messages, RoundTripAllFields) {
  Msg m;
  m.type = MsgType::connect_req;
  m.req_id = 0xCAFEBABE;
  m.cookie = 0x1234;
  m.vci = 99;
  m.port = 4000;
  m.service = "file-service";
  m.qos = "class=guaranteed,bw=1500000";
  m.dst = "mh.rt";
  m.comment = "a comment";
  m.error = 7;
  auto back = parse_msg(serialize(m));
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->type, m.type);
  EXPECT_EQ(back->req_id, m.req_id);
  EXPECT_EQ(back->cookie, m.cookie);
  EXPECT_EQ(back->vci, m.vci);
  EXPECT_EQ(back->port, m.port);
  EXPECT_EQ(back->service, m.service);
  EXPECT_EQ(back->qos, m.qos);
  EXPECT_EQ(back->dst, m.dst);
  EXPECT_EQ(back->comment, m.comment);
  EXPECT_EQ(back->error, m.error);
}

class MessageTypeSweep : public ::testing::TestWithParam<MsgType> {};

TEST_P(MessageTypeSweep, EveryTypeRoundTrips) {
  Msg m;
  m.type = GetParam();
  m.req_id = 5;
  auto back = parse_msg(serialize(m));
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->type, m.type);
  EXPECT_FALSE(to_string(m.type).empty());
}

INSTANTIATE_TEST_SUITE_P(
    Types, MessageTypeSweep,
    ::testing::Values(MsgType::export_srv, MsgType::service_regs,
                      MsgType::incoming_conn, MsgType::accept_conn,
                      MsgType::reject_conn, MsgType::vci_for_conn,
                      MsgType::connect_req, MsgType::req_id,
                      MsgType::cancel_req, MsgType::conn_failed,
                      MsgType::peer_setup, MsgType::peer_accept,
                      MsgType::peer_reject, MsgType::peer_established,
                      MsgType::peer_setup_failed, MsgType::peer_teardown,
                      MsgType::peer_cancel));

TEST(Messages, MalformedRejected) {
  EXPECT_FALSE(parse_msg({}).ok());
  util::Buffer junk(3, 0xFF);
  EXPECT_FALSE(parse_msg(junk).ok());
  // Bad type tag.
  Msg m;
  auto wire = serialize(m);
  wire[0] = 0xEE;
  EXPECT_FALSE(parse_msg(wire).ok());
  // Trailing garbage.
  wire = serialize(m);
  wire.push_back(0);
  EXPECT_FALSE(parse_msg(wire).ok());
}

TEST(Framer, ReassemblesArbitraryChunking) {
  std::vector<Msg> got;
  MsgFramer f([&](const Msg& m) { got.push_back(m); });
  Msg m1, m2;
  m1.type = MsgType::export_srv;
  m1.service = "one";
  m2.type = MsgType::connect_req;
  m2.service = "two";
  util::Buffer stream = frame(m1);
  util::Buffer f2 = frame(m2);
  stream.insert(stream.end(), f2.begin(), f2.end());
  // Feed one byte at a time.
  for (std::uint8_t b : stream) f.feed({&b, 1});
  ASSERT_EQ(got.size(), 2u);
  EXPECT_EQ(got[0].service, "one");
  EXPECT_EQ(got[1].service, "two");
}

TEST(Framer, MalformedBodySurfacesErrorAndResyncs) {
  std::vector<Msg> got;
  std::vector<util::Errc> errs;
  MsgFramer f([&](const Msg& m) { got.push_back(m); },
              [&](util::Errc e) { errs.push_back(e); });
  util::Buffer bad = {0x00, 0x02, 0xEE, 0xEE};  // framed 2-byte garbage
  f.feed(bad);
  Msg ok;
  ok.type = MsgType::export_srv;
  f.feed(frame(ok));
  EXPECT_EQ(errs.size(), 1u);
  EXPECT_EQ(got.size(), 1u);
}

TEST(StubProto, FixedSizeRoundTrip) {
  StubMsg m;
  m.type = StubMsg::Type::up_indication;
  m.up_type = kern::AnandUpType::connect_indication;
  m.vci = 77;
  m.cookie = 0xABCD;
  m.machine = ip::make_ip(10, 0, 0, 5);
  auto wire = serialize(m);
  EXPECT_EQ(wire.size(), kStubMsgBytes);
  std::vector<StubMsg> got;
  StubFramer f([&](const StubMsg& mm) { got.push_back(mm); });
  f.feed({wire.data(), 4});
  EXPECT_TRUE(got.empty());
  f.feed({wire.data() + 4, wire.size() - 4});
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0].vci, 77);
  EXPECT_EQ(got[0].cookie, 0xABCD);
  EXPECT_EQ(got[0].machine, m.machine);
}

// ----------------------------------------------------------------- cookies

TEST(Cookies, MintedCookiesAreNonZeroAndDistinct) {
  CookieTable t(1);
  std::set<Cookie> seen;
  for (int i = 0; i < 1000; ++i) {
    Cookie c = t.mint();
    EXPECT_NE(c, 0);
    EXPECT_TRUE(seen.insert(c).second);
  }
}

TEST(Cookies, AuthenticateExactMatchOnly) {
  CookieTable t(2);
  Cookie c = t.mint();
  t.bind_vci(40, c);
  EXPECT_TRUE(t.authenticate(40, c));
  EXPECT_FALSE(t.authenticate(40, static_cast<Cookie>(c + 1)));
  EXPECT_FALSE(t.authenticate(41, c));
  EXPECT_FALSE(t.authenticate(40, 0));  // zero is never a capability
}

TEST(Cookies, ReleaseVciEndsTheLifetime) {
  CookieTable t(3);
  Cookie c = t.mint();
  t.bind_vci(40, c);
  t.release_vci(40);
  EXPECT_FALSE(t.authenticate(40, c));
  EXPECT_EQ(t.vci_count(), 0u);
  EXPECT_EQ(t.outstanding_count(), 0u);
}

// ------------------------------------------------- sighost via the testbed

struct SighostFixture : ::testing::Test {
  std::unique_ptr<core::Testbed> tb;
  void SetUp() override {
    tb = core::TestbedConfig{}.build_deferred();
    ASSERT_TRUE(tb->bring_up().ok());
  }
  sig::Sighost& sh(std::size_t i) { return *tb->router(i).sighost; }
};

TEST_F(SighostFixture, ServiceListTracksRegistrations) {
  core::CallServer s1(*tb->router(1).kernel,
                      tb->router(1).kernel->ip_node().address(), "svc-a", 4100);
  core::CallServer s2(*tb->router(1).kernel,
                      tb->router(1).kernel->ip_node().address(), "svc-b", 4101);
  s1.start([](util::Result<void>) {});
  s2.start([](util::Result<void>) {});
  tb->sim().run_for(sim::milliseconds(500));
  EXPECT_EQ(sh(1).service_list_size(), 2u);
  EXPECT_TRUE(sh(1).has_service("svc-a"));
  EXPECT_TRUE(sh(1).has_service("svc-b"));
  EXPECT_EQ(sh(1).stats().services_registered, 2u);
}

TEST_F(SighostFixture, ListsDrainAfterCompleteCall) {
  core::CallServer server(*tb->router(1).kernel,
                          tb->router(1).kernel->ip_node().address(), "echo",
                          4102);
  server.start([](util::Result<void>) {});
  tb->sim().run_for(sim::milliseconds(300));

  core::CallClient client(*tb->router(0).kernel,
                          tb->router(0).kernel->ip_node().address());
  std::optional<core::CallClient::Call> call;
  client.open("berkeley.rt", "echo", "",
              [&](util::Result<core::CallClient::Call> r) { call = *r; });
  tb->sim().run_for(sim::seconds(2));
  ASSERT_TRUE(call.has_value());

  // Established: one VCI mapping at each side, no pending requests.
  EXPECT_EQ(sh(0).outgoing_requests_size(), 0u);
  EXPECT_EQ(sh(1).incoming_requests_size(), 0u);
  EXPECT_EQ(sh(0).wait_for_bind_size(), 0u);
  EXPECT_EQ(sh(1).wait_for_bind_size(), 0u);
  EXPECT_EQ(sh(0).vci_mapping_size(), 1u);
  EXPECT_EQ(sh(1).vci_mapping_size(), 1u);

  client.close_call(*call);
  tb->sim().run_for(sim::seconds(2));
  EXPECT_EQ(sh(0).vci_mapping_size(), 0u);
  EXPECT_EQ(sh(1).vci_mapping_size(), 0u);
  EXPECT_TRUE(tb->audit().clean()) << tb->audit().describe();
}

TEST_F(SighostFixture, RejectingServerProducesRejectedError) {
  core::CallServer server(*tb->router(1).kernel,
                          tb->router(1).kernel->ip_node().address(), "picky",
                          4103);
  server.set_auto_accept(false);
  server.start([](util::Result<void>) {});
  tb->sim().run_for(sim::milliseconds(300));

  core::CallClient client(*tb->router(0).kernel,
                          tb->router(0).kernel->ip_node().address());
  std::optional<util::Errc> err;
  client.open("berkeley.rt", "picky", "",
              [&](util::Result<core::CallClient::Call> r) { err = r.error(); });
  tb->sim().run_for(sim::seconds(2));
  ASSERT_TRUE(err.has_value());
  EXPECT_EQ(*err, util::Errc::rejected);
  EXPECT_EQ(server.calls_rejected(), 1u);
  EXPECT_EQ(sh(1).stats().rejects_sent, 1u);
  EXPECT_TRUE(tb->audit().clean()) << tb->audit().describe();
}

TEST_F(SighostFixture, CancelWithdrawsOutstandingRequest) {
  // No server registered: the request would fail anyway, but cancel must
  // beat the reply if issued immediately (log cost delays PEER_SETUP).
  core::CallClient client(*tb->router(0).kernel,
                          tb->router(0).kernel->ip_node().address());
  std::optional<util::Errc> err;
  std::optional<Cookie> cookie;
  client.lib().open_connection(
      "berkeley.rt", "slow-svc", "", "",
      [&](util::Result<app::OpenResult> r) { err = r.error(); },
      [&](util::Result<Cookie> c) {
        if (!c.ok()) return;
        cookie = *c;
        client.lib().cancel_request(*c);
      });
  tb->sim().run_for(sim::seconds(2));
  ASSERT_TRUE(cookie.has_value());
  ASSERT_TRUE(err.has_value());
  EXPECT_EQ(*err, util::Errc::cancelled);
  EXPECT_EQ(sh(0).stats().cancels, 1u);
  EXPECT_TRUE(tb->audit().clean()) << tb->audit().describe();
}

TEST_F(SighostFixture, WrongCookieOnBindTearsCallDown) {
  // Drive the signaling flow manually so we can present a wrong cookie.
  auto& r0 = *tb->router(0).kernel;
  core::CallServer server(*tb->router(1).kernel,
                          tb->router(1).kernel->ip_node().address(), "echo",
                          4104);
  server.start([](util::Result<void>) {});
  tb->sim().run_for(sim::milliseconds(300));

  kern::Pid pid = r0.spawn("evil-client");
  app::UserLib lib(r0, pid, r0.ip_node().address());
  std::optional<app::OpenResult> res;
  lib.open_connection("berkeley.rt", "echo", "", "",
                      [&](util::Result<app::OpenResult> r) {
                        ASSERT_TRUE(r.ok());
                        res = *r;
                      });
  tb->sim().run_for(sim::seconds(2));
  ASSERT_TRUE(res.has_value());

  // Connect with a corrupted cookie: authentication must fail and the
  // socket must be marked unusable.
  auto fd = r0.xunet_socket(pid);
  ASSERT_TRUE(fd.ok());
  ASSERT_TRUE(r0.xunet_connect(pid, *fd, res->vci,
                               static_cast<Cookie>(res->cookie ^ 0xFFFF)).ok());
  tb->sim().run_for(sim::seconds(2));
  EXPECT_EQ(sh(0).stats().auth_failures, 1u);
  EXPECT_FALSE(r0.xunet_usable(pid, *fd));
  tb->sim().run_for(sim::seconds(20));  // server-side wait_for_bind expires
  EXPECT_TRUE(tb->audit().clean()) << tb->audit().describe();
}

TEST_F(SighostFixture, WaitForBindTimeoutReclaimsTheCall) {
  core::CallServer server(*tb->router(1).kernel,
                          tb->router(1).kernel->ip_node().address(), "echo",
                          4105);
  server.start([](util::Result<void>) {});
  tb->sim().run_for(sim::milliseconds(300));

  // A client that requests a VCI but never connects to it (§7.2's "a
  // process might request a VCI, but not use it").
  auto& r0 = *tb->router(0).kernel;
  kern::Pid pid = r0.spawn("lazy-client");
  app::UserLib lib(r0, pid, r0.ip_node().address());
  std::optional<app::OpenResult> res;
  lib.open_connection("berkeley.rt", "echo", "", "",
                      [&](util::Result<app::OpenResult> r) { res = *r; });
  tb->sim().run_for(sim::seconds(2));
  ASSERT_TRUE(res.has_value());
  EXPECT_EQ(sh(0).wait_for_bind_size(), 1u);

  // Let the wait-for-bind timer expire (config default 10 s).
  tb->sim().run_for(sim::seconds(15));
  EXPECT_GE(sh(0).stats().bind_timeouts, 1u);
  EXPECT_EQ(sh(0).wait_for_bind_size(), 0u);
  EXPECT_TRUE(tb->audit().clean()) << tb->audit().describe();
}

TEST_F(SighostFixture, TraceHookSeesTheFigure3And4Sequences) {
  std::vector<std::string> events;
  sh(0).set_trace([&](std::string_view dir, std::string_view who, const Msg& m) {
    events.push_back(std::string(dir) + " " + std::string(who) + " " +
                     std::string(to_string(m.type)));
  });
  core::CallServer server(*tb->router(1).kernel,
                          tb->router(1).kernel->ip_node().address(), "echo",
                          4106);
  server.start([](util::Result<void>) {});
  tb->sim().run_for(sim::milliseconds(300));
  core::CallClient client(*tb->router(0).kernel,
                          tb->router(0).kernel->ip_node().address());
  client.open("berkeley.rt", "echo", "",
              [](util::Result<core::CallClient::Call>) {});
  tb->sim().run_for(sim::seconds(2));

  auto contains = [&](const std::string& needle) {
    for (const auto& e : events) {
      if (e.find(needle) != std::string::npos) return true;
    }
    return false;
  };
  EXPECT_TRUE(contains("CONNECT_REQ"));
  EXPECT_TRUE(contains("REQ_ID"));
  EXPECT_TRUE(contains("PEER_SETUP"));
  EXPECT_TRUE(contains("PEER_ACCEPT"));
  EXPECT_TRUE(contains("VCI_FOR_CONN"));
}

}  // namespace
}  // namespace xunet::sig
