// gaps_test.cpp — odds and ends: wire-format limits, permission boundaries
// on the pseudo-device, windowing, self-calls, and API misuse.
#include <gtest/gtest.h>

#include "core/apps.hpp"
#include "core/testbed.hpp"
#include "signaling/messages.hpp"
#include "util/table.hpp"

namespace xunet {
namespace {

using core::CallClient;
using core::Testbed;
using core::TestbedConfig;

TEST(WireLimits, LargeCommentSurvivesFramingUpToTheU16Cap) {
  sig::Msg m;
  m.type = sig::MsgType::connect_req;
  m.service = "svc";
  m.comment = std::string(60'000, 'x');  // near the 64 KB frame cap
  util::Buffer framed = sig::frame(m);
  ASSERT_LE(framed.size(), 2u + 65'535u);
  std::vector<sig::Msg> got;
  sig::MsgFramer f([&](const sig::Msg& mm) { got.push_back(mm); });
  // Feed in awkward chunks.
  for (std::size_t off = 0; off < framed.size(); off += 1000) {
    std::size_t n = std::min<std::size_t>(1000, framed.size() - off);
    f.feed({framed.data() + off, n});
  }
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0].comment.size(), 60'000u);
}

TEST(WireLimits, QosStringRoundTripsThroughTheWholeSignalingPath) {
  auto tb = TestbedConfig{}.build_deferred();
  ASSERT_TRUE(tb->bring_up().ok());
  auto& r1 = tb->router(1);
  core::CallServer server(*r1.kernel, r1.kernel->ip_node().address(), "q",
                          6600);
  server.set_qos_limit(atm::Qos{atm::ServiceClass::guaranteed, 999'999'999});
  server.start([](util::Result<void>) {});
  tb->sim().run_for(sim::milliseconds(300));
  CallClient client(*tb->router(0).kernel,
                    tb->router(0).kernel->ip_node().address());
  // An extensible-key QoS string: unknown keys must survive negotiation as
  // re-serialized canonical form (class/bw), not crash anything.
  std::optional<CallClient::Call> call;
  client.open("berkeley.rt", "q", "class=predicted,bw=123456,jitter=low",
              [&](util::Result<CallClient::Call> r) {
                if (r.ok()) call = *r;
              });
  tb->sim().run_for(sim::seconds(2));
  ASSERT_TRUE(call.has_value());
  auto q = atm::parse_qos(call->info.qos);
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->bandwidth_bps, 123'456u);
  EXPECT_EQ(q->service_class, atm::ServiceClass::predicted);
}

TEST(DeviceBoundary, AnandReadByNonHolderFails) {
  sim::Simulator sim;
  kern::Kernel k(sim, "m", kern::Kernel::Role::host, ip::make_ip(8, 8, 8, 8),
                 atm::AtmAddress{"m"});
  kern::Pid holder = k.spawn("holder");
  kern::Pid other = k.spawn("other");
  auto fd = k.open_anand(holder);
  ASSERT_TRUE(fd.ok());
  // A different process cannot read through the holder's descriptor number.
  EXPECT_FALSE(k.anand_read(other, *fd).ok());
  // Nor through a descriptor of the wrong kind.
  auto xfd = k.xunet_socket(other);
  ASSERT_TRUE(xfd.ok());
  EXPECT_EQ(k.anand_read(other, *xfd).error(), util::Errc::bad_fd);
}

TEST(TcpWindow, TransfersLargerThanTheWindowStillComplete) {
  sim::Simulator sim;
  ip::IpNode a(sim, "a", ip::make_ip(1, 1, 1, 1));
  ip::IpNode b(sim, "b", ip::make_ip(2, 2, 2, 2));
  ip::IpLink link(sim, ip::kFddiBps, sim::microseconds(100), ip::kFddiMtu);
  link.attach(a, b);
  a.set_default_route(link);
  b.set_default_route(link);
  tcp::TcpConfig cfg;
  cfg.window_bytes = 8 * 1024;  // tiny window: many round trips
  tcp::TcpLayer ta(a, cfg), tb(b, cfg);
  tcp::ConnId sconn = 0, cconn = 0;
  ASSERT_TRUE(tb.listen(7, [&](tcp::ConnId c) { sconn = c; }).ok());
  (void)ta.connect(b.address(), 7,
                   [&](util::Result<tcp::ConnId> r) { cconn = *r; });
  sim.run_for(sim::milliseconds(50));
  ASSERT_NE(cconn, 0u);
  util::Buffer sent(100'000);
  util::Rng rng(2);
  for (auto& x : sent) x = static_cast<std::uint8_t>(rng.next());
  util::Buffer got;
  tb.set_receive_handler(sconn, [&](util::BytesView d) {
    got.insert(got.end(), d.begin(), d.end());
  });
  ASSERT_TRUE(ta.send(cconn, sent).ok());
  sim.run_for(sim::seconds(10));
  EXPECT_EQ(got, sent);
}

TEST(SelfCall, CallToOwnRouterFailsCleanly) {
  // Calls must cross routers (documented limitation, matching the paper's
  // testbed): a client asking its own sighost's address gets a clean error.
  auto tb = TestbedConfig{}.build_deferred();
  ASSERT_TRUE(tb->bring_up().ok());
  CallClient client(*tb->router(0).kernel,
                    tb->router(0).kernel->ip_node().address());
  std::optional<util::Errc> err;
  client.open("mh.rt", "anything", "",
              [&](util::Result<CallClient::Call> r) { err = r.error(); });
  tb->sim().run_for(sim::seconds(2));
  ASSERT_TRUE(err.has_value());
  EXPECT_EQ(*err, util::Errc::no_route);
  EXPECT_TRUE(tb->audit().clean()) << tb->audit().describe();
}

TEST(ApiMisuse, DoubleRejectAndRejectAfterAcceptAreHarmless) {
  auto tb = TestbedConfig{}.build_deferred();
  ASSERT_TRUE(tb->bring_up().ok());
  auto& r1 = *tb->router(1).kernel;
  kern::Pid spid = r1.spawn("fumbler");
  app::UserLib server(r1, spid, r1.ip_node().address());
  server.export_service("fumble", 6601, [](util::Result<void>) {});
  std::optional<app::IncomingRequest> req;
  server.await_service_request(
      [&](util::Result<app::IncomingRequest> r) { req = *r; });
  tb->sim().run_for(sim::milliseconds(300));

  CallClient client(*tb->router(0).kernel,
                    tb->router(0).kernel->ip_node().address());
  std::optional<util::Errc> err;
  client.open("berkeley.rt", "fumble", "",
              [&](util::Result<CallClient::Call> r) {
                if (!r.ok()) err = r.error();
              });
  tb->sim().run_for(sim::seconds(1));
  ASSERT_TRUE(req.has_value());
  std::optional<util::Result<void>> first, second;
  server.reject_connection(*req, [&](util::Result<void> r) { first = r; });
  // Double reject: a no-op, reported as not_found through the completion.
  server.reject_connection(*req, [&](util::Result<void> r) { second = r; });
  ASSERT_TRUE(first.has_value() && second.has_value());
  EXPECT_TRUE(first->ok());
  EXPECT_EQ(second->error(), util::Errc::not_found);
  // Accept after reject: the per-call conn is gone; the callback must see a
  // clean failure rather than anything hanging.
  bool accept_cb = false;
  server.accept_connection(*req, req->qos,
                           [&](util::Result<app::OpenResult> r) {
                             accept_cb = true;
                             EXPECT_FALSE(r.ok());
                           });
  tb->sim().run_for(sim::seconds(2));
  EXPECT_TRUE(accept_cb);
  ASSERT_TRUE(err.has_value());
  EXPECT_EQ(*err, util::Errc::rejected);
  EXPECT_TRUE(tb->audit().clean()) << tb->audit().describe();
}

TEST(CellTiming, Oc12CellTimeIsSubMicrosecond) {
  sim::Simulator sim;
  struct NullSink : atm::CellSink {
    void cell_arrival(const atm::Cell&) override {}
  } sink;
  atm::CellLink link(sim, atm::kOc12Bps, sim::SimDuration{}, sink);
  // 424 bits / 622 Mb/s ≈ 0.68 us.
  EXPECT_NEAR(static_cast<double>(link.cell_time().ns()), 424e9 / 622e6, 2.0);
}

TEST(Table, RendersWithoutHeader) {
  util::TextTable t("bare");
  t.row({"a", "b"});
  std::string out = t.render();
  EXPECT_NE(out.find("bare"), std::string::npos);
  EXPECT_NE(out.find("a"), std::string::npos);
}

}  // namespace
}  // namespace xunet
