// kern_test.cpp — the simulated kernel: mbufs, instruction accounting, the
// /dev/anand pseudo-device, descriptor tables, PF_XUNET sockets and the
// process-termination hooks.
#include <gtest/gtest.h>

#include "kern/kernel.hpp"

namespace xunet::kern {
namespace {

// -------------------------------------------------------------------- mbuf

TEST(Mbuf, FromBytesShapesChain) {
  util::Buffer data(300, 0x5A);
  MbufChain c = MbufChain::from_bytes(data, 128);
  EXPECT_EQ(c.mbuf_count(), 3u);  // 128 + 128 + 44
  EXPECT_EQ(c.total_bytes(), 300u);
  EXPECT_EQ(c.linearize(), data);
}

TEST(Mbuf, EmptyDataStillOneMbuf) {
  MbufChain c = MbufChain::from_bytes({}, 128);
  EXPECT_EQ(c.mbuf_count(), 1u);
  EXPECT_EQ(c.total_bytes(), 0u);
}

TEST(Mbuf, ShapedChainExactControl) {
  MbufChain c = MbufChain::shaped(7, 100);
  EXPECT_EQ(c.mbuf_count(), 7u);
  EXPECT_EQ(c.total_bytes(), 700u);
}

// ----------------------------------------------------------- InstrCounter

TEST(Instr, MicroOpSumsMatchThePaper) {
  // The calibration invariant behind Table 1: per-layer micro-op sums equal
  // the published per-layer counts.
  EXPECT_EQ(kAtmRecvDemux + kAtmRecvValidate + kAtmRecvSeqCheck +
                kAtmRecvVciExtract + kAtmRecvHandoff,
            36u);
  EXPECT_EQ(kAtmSendHdrAlloc + kAtmSendFields + kAtmSendSeqUpdate +
                kAtmSendRoute + kAtmSendEnqueue,
            58u);
  EXPECT_EQ(kPfxRecvPcbLookup + kPfxRecvSockChecks + kPfxRecvSbAppend +
                kPfxRecvWakeup,
            99u);
  EXPECT_EQ(kSwitchValidate + kSwitchSeqCheck + kSwitchVciLookup +
                kSwitchHandoff,
            39u);
  EXPECT_EQ(kIpSend, 61u);
  EXPECT_EQ(kIpRecv, 57u);
  EXPECT_EQ(kOrcRecvDispatch, 2u);
  EXPECT_EQ(kPerMbufWalk, 8u);
}

TEST(Instr, CounterAccumulatesPerComponentAndDirection) {
  InstrCounter c;
  c.charge(InstrComponent::ip_layer, InstrDir::send, 61);
  c.charge(InstrComponent::ip_layer, InstrDir::receive, 57);
  c.charge(InstrComponent::pf_xunet, InstrDir::receive, 99);
  EXPECT_EQ(c.total(InstrComponent::ip_layer, InstrDir::send), 61u);
  EXPECT_EQ(c.path_total(InstrDir::receive), 57u + 99u);
  // Router switching excluded from host path totals (reported separately).
  c.charge(InstrComponent::router_switch, InstrDir::receive, 39);
  EXPECT_EQ(c.path_total(InstrDir::receive), 57u + 99u);
  c.reset();
  EXPECT_EQ(c.path_total(InstrDir::receive), 0u);
}

// ------------------------------------------------------------- AnandDevice

TEST(Anand, BoundedBufferDropsWhenFull) {
  AnandDevice dev(3);
  for (int i = 0; i < 5; ++i) {
    dev.post(AnandUpMsg{AnandUpType::bind_indication,
                        static_cast<atm::Vci>(100 + i), 0, 1});
  }
  EXPECT_EQ(dev.queued(), 3u);
  EXPECT_EQ(dev.posted(), 3u);
  EXPECT_EQ(dev.dropped(), 2u);  // the §10 lost-bind-indication failure
}

TEST(Anand, ReadDrainsInFifoOrder) {
  AnandDevice dev(10);
  dev.post(AnandUpMsg{AnandUpType::bind_indication, 1, 0, 0});
  dev.post(AnandUpMsg{AnandUpType::connect_indication, 2, 0, 0});
  auto m1 = dev.read();
  auto m2 = dev.read();
  ASSERT_TRUE(m1.ok() && m2.ok());
  EXPECT_EQ(m1->vci, 1);
  EXPECT_EQ(m2->vci, 2);
  EXPECT_EQ(dev.read().error(), util::Errc::would_block);
}

TEST(Anand, ReadableFiresOnEmptyToNonEmptyEdge) {
  AnandDevice dev(10);
  int wakeups = 0;
  dev.set_readable_handler([&] { ++wakeups; });
  dev.post(AnandUpMsg{});
  dev.post(AnandUpMsg{});  // still non-empty: no second wakeup
  EXPECT_EQ(wakeups, 1);
  (void)dev.read();
  (void)dev.read();
  dev.post(AnandUpMsg{});
  EXPECT_EQ(wakeups, 2);
}

TEST(Anand, DownwardWriteReachesKernelHandler) {
  AnandDevice dev(10);
  std::optional<AnandDownMsg> got;
  dev.set_down_handler([&](const AnandDownMsg& m) { got = m; });
  dev.write(AnandDownMsg{AnandDownType::disconnect_socket, 44});
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->vci, 44);
}

// ------------------------------------------------------------------ Kernel

struct KernelFixture : ::testing::Test {
  sim::Simulator sim;
  KernelConfig cfg;
  std::unique_ptr<Kernel> k;

  void SetUp() override {
    cfg.fd_table_size = 5;
    k = std::make_unique<Kernel>(sim, "m", Kernel::Role::host,
                                 ip::make_ip(9, 9, 9, 9),
                                 atm::AtmAddress{"m"}, cfg);
  }
};

TEST_F(KernelFixture, ProcessLifecycle) {
  Pid p = k->spawn("app");
  EXPECT_TRUE(k->alive(p));
  EXPECT_EQ(k->live_process_count(), 1u);
  ASSERT_TRUE(k->exit_process(p).ok());
  EXPECT_FALSE(k->alive(p));
  EXPECT_EQ(k->exit_process(p).error(), util::Errc::not_found);
}

TEST_F(KernelFixture, FdTableExhaustionIsEmfile) {
  Pid p = k->spawn("app");
  std::vector<int> fds;
  for (std::size_t i = 0; i < cfg.fd_table_size; ++i) {
    auto fd = k->xunet_socket(p);
    ASSERT_TRUE(fd.ok());
    fds.push_back(*fd);
  }
  EXPECT_EQ(k->xunet_socket(p).error(), util::Errc::too_many_files);
  // Closing one frees a slot.
  ASSERT_TRUE(k->close(p, fds[0]).ok());
  EXPECT_TRUE(k->xunet_socket(p).ok());
}

TEST_F(KernelFixture, XunetBindPostsIndication) {
  Pid p = k->spawn("app");
  auto fd = k->xunet_socket(p);
  ASSERT_TRUE(fd.ok());
  ASSERT_TRUE(k->xunet_bind(p, *fd, 70, 0xBEEF).ok());
  EXPECT_EQ(k->anand().queued(), 1u);
  auto m = k->anand().read();
  ASSERT_TRUE(m.ok());
  EXPECT_EQ(m->type, AnandUpType::bind_indication);
  EXPECT_EQ(m->vci, 70);
  EXPECT_EQ(m->cookie, 0xBEEF);
  EXPECT_EQ(m->pid, p);
}

TEST_F(KernelFixture, XunetSocketStateMachine) {
  Pid p = k->spawn("app");
  auto fd = k->xunet_socket(p);
  ASSERT_TRUE(fd.ok());
  // Send before connect fails.
  EXPECT_EQ(k->xunet_send(p, *fd, {}).error(), util::Errc::not_connected);
  ASSERT_TRUE(k->xunet_connect(p, *fd, 70, 1).ok());
  // Double connect fails.
  EXPECT_EQ(k->xunet_connect(p, *fd, 71, 1).error(),
            util::Errc::already_connected);
  EXPECT_TRUE(k->xunet_usable(p, *fd));
}

TEST_F(KernelFixture, DuplicateBindToSameVciRejected) {
  Pid p = k->spawn("app");
  auto f1 = k->xunet_socket(p);
  auto f2 = k->xunet_socket(p);
  ASSERT_TRUE(k->xunet_bind(p, *f1, 70, 1).ok());
  EXPECT_EQ(k->xunet_bind(p, *f2, 70, 2).error(), util::Errc::address_in_use);
}

TEST_F(KernelFixture, DisconnectMarksSocketUnusable) {
  Pid p = k->spawn("app");
  auto fd = k->xunet_socket(p);
  ASSERT_TRUE(k->xunet_connect(p, *fd, 70, 1).ok());
  bool notified = false;
  ASSERT_TRUE(k->xunet_on_disconnect(p, *fd, [&] { notified = true; }).ok());
  k->mark_vci_disconnected(70);
  sim.run();
  EXPECT_TRUE(notified);
  EXPECT_FALSE(k->xunet_usable(p, *fd));
  EXPECT_EQ(k->xunet_send(p, *fd, {}).error(), util::Errc::connection_reset);
}

TEST_F(KernelFixture, DisconnectCallbacksFireInSocketCreationOrder) {
  // Regression pin for the DET-UNORD-ITER finding xunet_lint surfaced here:
  // mark_vci_disconnected used to walk the unordered socket table directly
  // while scheduling on_disconnect callbacks, so hash order decided the
  // event order.  It now schedules over a sorted handle snapshot, and
  // handles are allocated sequentially — so callbacks must fire in socket
  // creation order.  16 sockets make an accidental hash-order match
  // vanishingly unlikely.
  constexpr int kSocks = 16;
  std::vector<int> order;
  for (int i = 0; i < kSocks; ++i) {
    Pid p = k->spawn("app" + std::to_string(i));
    auto fd = k->xunet_socket(p);
    ASSERT_TRUE(fd.ok());
    ASSERT_TRUE(k->xunet_connect(p, *fd, 70, 1).ok());
    ASSERT_TRUE(
        k->xunet_on_disconnect(p, *fd, [&order, i] { order.push_back(i); })
            .ok());
  }
  k->mark_vci_disconnected(70);
  sim.run();
  ASSERT_EQ(order.size(), static_cast<std::size_t>(kSocks));
  for (int i = 0; i < kSocks; ++i) EXPECT_EQ(order[i], i);
}

TEST_F(KernelFixture, CloseOfActiveSocketPostsTermination) {
  Pid p = k->spawn("app");
  auto fd = k->xunet_socket(p);
  ASSERT_TRUE(k->xunet_connect(p, *fd, 70, 0xAA).ok());
  (void)k->anand().read();  // drop the connect indication
  ASSERT_TRUE(k->close(p, *fd).ok());
  auto m = k->anand().read();
  ASSERT_TRUE(m.ok());
  EXPECT_EQ(m->type, AnandUpType::process_terminated);
  EXPECT_EQ(m->vci, 70);
}

TEST_F(KernelFixture, ProcessTerminationPostsForEveryActiveVci) {
  Pid p = k->spawn("app");
  auto f1 = k->xunet_socket(p);
  auto f2 = k->xunet_socket(p);
  auto f3 = k->xunet_socket(p);  // never bound: no termination message
  ASSERT_TRUE(k->xunet_bind(p, *f1, 70, 1).ok());
  ASSERT_TRUE(k->xunet_connect(p, *f2, 71, 2).ok());
  (void)f3;
  (void)k->anand().read();
  (void)k->anand().read();
  ASSERT_TRUE(k->kill_process(p).ok());
  std::set<atm::Vci> vcis;
  for (;;) {
    auto m = k->anand().read();
    if (!m.ok()) break;
    EXPECT_EQ(m->type, AnandUpType::process_terminated);
    vcis.insert(m->vci);
  }
  EXPECT_EQ(vcis, (std::set<atm::Vci>{70, 71}));
  EXPECT_EQ(k->xunet_socket_count(), 0u);
}

TEST_F(KernelFixture, FullAnandBufferLosesIndications) {
  k->anand().set_capacity(2);
  Pid p = k->spawn("app");
  for (int i = 0; i < 4; ++i) {
    auto fd = k->xunet_socket(p);
    ASSERT_TRUE(fd.ok());
    ASSERT_TRUE(k->xunet_bind(p, *fd, static_cast<atm::Vci>(80 + i), 1).ok());
  }
  EXPECT_EQ(k->anand().dropped(), 2u);  // binds still succeeded locally
}

TEST_F(KernelFixture, ProcessTerminationSurvivesFullAnandBuffer) {
  // Bind/connect indication loss is repaired by the sighost's wait_for_bind
  // watchdog; a lost process_terminated has no such backstop — the sighost
  // would hold the call (and the network its VC) forever.  The kernel must
  // therefore retry the post until the daemon drains buffer space.
  // (xunet_model relies on this: its product machine models
  // process_terminated delivery as reliable.)
  k->anand().set_capacity(2);
  Pid p = k->spawn("app");
  auto bound = k->xunet_socket(p);
  ASSERT_TRUE(k->xunet_bind(p, *bound, 70, 1).ok());
  // The bind indication plus one filler occupy the whole buffer.
  auto filler = k->xunet_socket(p);
  ASSERT_TRUE(k->xunet_bind(p, *filler, 71, 2).ok());
  EXPECT_EQ(k->anand().queued(), 2u);
  // Closing the bound socket cannot post process_terminated yet.
  ASSERT_TRUE(k->close(p, *bound).ok());
  sim.run_for(cfg.context_switch * 3);
  EXPECT_EQ(k->anand().queued(), 2u);  // still full, nothing lost to it
  // The daemon drains one slot; the retry must deliver the termination.
  (void)k->anand().read();
  sim.run_for(cfg.context_switch * 3);
  bool saw_term = false;
  for (;;) {
    auto m = k->anand().read();
    if (!m.ok()) break;
    if (m->type == AnandUpType::process_terminated && m->vci == 70) {
      saw_term = true;
    }
  }
  EXPECT_TRUE(saw_term);
  EXPECT_EQ(k->anand().dropped(), 0u);
}

TEST_F(KernelFixture, AnandSingleHolder) {
  Pid p1 = k->spawn("daemon1");
  Pid p2 = k->spawn("daemon2");
  auto f1 = k->open_anand(p1);
  ASSERT_TRUE(f1.ok());
  EXPECT_EQ(k->open_anand(p2).error(), util::Errc::address_in_use);
  ASSERT_TRUE(k->close(p1, *f1).ok());
  EXPECT_TRUE(k->open_anand(p2).ok());
}

TEST_F(KernelFixture, SyscallsFromDeadProcessFail) {
  Pid p = k->spawn("app");
  auto fd = k->xunet_socket(p);
  ASSERT_TRUE(k->kill_process(p).ok());
  EXPECT_EQ(k->xunet_socket(p).error(), util::Errc::not_found);
  EXPECT_EQ(k->xunet_send(p, *fd, {}).error(), util::Errc::not_found);
}

TEST_F(KernelFixture, ControlSyscallsRequireRouterRole) {
  Pid p = k->spawn("app");
  auto fd = k->proto_atm_socket(p);
  ASSERT_TRUE(fd.ok());
  EXPECT_EQ(k->proto_atm_vci_bind(p, *fd, 70, ip::make_ip(1, 1, 1, 1)).error(),
            util::Errc::invalid_argument);
  // set_router works on hosts (that is its role).
  EXPECT_TRUE(k->proto_atm_set_router(p, *fd, ip::make_ip(1, 1, 1, 1)).ok());
  EXPECT_EQ(*k->proto_atm().router_address(), ip::make_ip(1, 1, 1, 1));
}

// -------------------------------------------- TCP socket + fd interaction

struct TwoKernelFixture : ::testing::Test {
  sim::Simulator sim;
  KernelConfig cfg;
  std::unique_ptr<Kernel> ka, kb;
  std::unique_ptr<ip::IpLink> link;

  void SetUp() override {
    cfg.fd_table_size = 4;
    ka = std::make_unique<Kernel>(sim, "a", Kernel::Role::host,
                                  ip::make_ip(1, 1, 1, 1),
                                  atm::AtmAddress{"a"}, cfg);
    kb = std::make_unique<Kernel>(sim, "b", Kernel::Role::host,
                                  ip::make_ip(2, 2, 2, 2),
                                  atm::AtmAddress{"b"}, cfg);
    link = std::make_unique<ip::IpLink>(sim, ip::kFddiBps,
                                        sim::microseconds(50), ip::kFddiMtu);
    link->attach(ka->ip_node(), kb->ip_node());
    ka->ip_node().set_default_route(*link);
    kb->ip_node().set_default_route(*link);
  }
};

TEST_F(TwoKernelFixture, TcpConnectAcceptSendReceive) {
  Pid server = kb->spawn("server");
  Pid client = ka->spawn("client");
  std::optional<int> accepted_fd;
  ASSERT_TRUE(kb->tcp_listen(server, 80, [&](int fd) { accepted_fd = fd; }).ok());
  std::optional<int> cfd;
  auto r = ka->tcp_connect(client, kb->ip_node().address(), 80,
                           [&](util::Result<int> rr) {
                             ASSERT_TRUE(rr.ok());
                             cfd = *rr;
                           });
  ASSERT_TRUE(r.ok());
  sim.run_for(sim::milliseconds(100));
  ASSERT_TRUE(accepted_fd.has_value());
  ASSERT_TRUE(cfd.has_value());

  std::string got;
  ASSERT_TRUE(kb->tcp_on_receive(server, *accepted_fd, [&](util::BytesView d) {
                  got += util::to_text(d);
                }).ok());
  ASSERT_TRUE(ka->tcp_send(client, *cfd, util::to_buffer(std::string_view("rpc"))).ok());
  sim.run_for(sim::milliseconds(100));
  EXPECT_EQ(got, "rpc");
}

TEST_F(TwoKernelFixture, ClosedTcpFdLingersInTimeWaitFor2Msl) {
  Pid server = kb->spawn("server");
  Pid client = ka->spawn("client");
  std::optional<int> afd, cfd;
  ASSERT_TRUE(kb->tcp_listen(server, 80, [&](int fd) { afd = fd; }).ok());
  (void)ka->tcp_connect(client, kb->ip_node().address(), 80,
                        [&](util::Result<int> r) { cfd = *r; });
  sim.run_for(sim::milliseconds(100));
  ASSERT_TRUE(afd && cfd);

  std::size_t before = kb->fd_in_use(server);
  // Server actively closes its accepted fd (like the per-call signaling
  // conns): the slot must stay occupied through TIME_WAIT.
  ASSERT_TRUE(kb->close(server, *afd).ok());
  sim.run_for(sim::milliseconds(200));
  ASSERT_TRUE(ka->close(client, *cfd).ok());  // passive side closes too
  sim.run_for(sim::seconds(1));
  EXPECT_EQ(kb->fd_in_use(server), before);  // still pinned!
  EXPECT_EQ(kb->fds_in_time_wait(), 1u);

  sim.run_for(kb->tcp().config().msl * 2 + sim::seconds(1));
  EXPECT_EQ(kb->fd_in_use(server), before - 1);  // released after 2 MSL
  EXPECT_EQ(kb->fds_in_time_wait(), 0u);
}

TEST_F(TwoKernelFixture, AcceptBeyondFdTableIsRefused) {
  Pid server = kb->spawn("server");
  int accepted = 0;
  ASSERT_TRUE(kb->tcp_listen(server, 80, [&](int) { ++accepted; }).ok());
  // fd table size 4; the listener occupies 1, so 3 accepts fit.
  Pid client = ka->spawn("client");
  int ok = 0, failed = 0;
  for (int i = 0; i < 6; ++i) {
    (void)ka->tcp_connect(client, kb->ip_node().address(), 80,
                          [&](util::Result<int> r) {
                            if (r.ok()) {
                              ++ok;
                            } else {
                              ++failed;
                            }
                          });
  }
  sim.run_for(sim::seconds(5));
  EXPECT_EQ(accepted, 3);
  // Note: the client-side fd table (4) also caps concurrent connects; the
  // refused connections surface as resets or refusals at the client.
  EXPECT_LE(ok, 4);
}

TEST_F(TwoKernelFixture, ProcessDeathAbortsConnectionsAndFreesFds) {
  Pid server = kb->spawn("server");
  Pid client = ka->spawn("client");
  std::optional<int> afd, cfd;
  std::optional<util::Errc> server_saw;
  ASSERT_TRUE(kb->tcp_listen(server, 80, [&](int fd) {
                  afd = fd;
                  (void)kb->tcp_on_close(server, fd,
                                         [&](util::Errc e) { server_saw = e; });
                }).ok());
  (void)ka->tcp_connect(client, kb->ip_node().address(), 80,
                        [&](util::Result<int> r) { cfd = *r; });
  sim.run_for(sim::milliseconds(100));
  ASSERT_TRUE(afd && cfd);

  ASSERT_TRUE(ka->kill_process(client).ok());
  sim.run_for(sim::milliseconds(100));
  EXPECT_EQ(ka->tcp().connection_count(), 0u);  // no TIME_WAIT after abort
  ASSERT_TRUE(server_saw.has_value());
  EXPECT_EQ(*server_saw, util::Errc::connection_reset);
}

}  // namespace
}  // namespace xunet::kern
