// multimedia.cpp — the future the paper is built for (§12: "essential in
// any future multimedia network"): a video server streams to several
// clients over guaranteed-bandwidth VCs, the network's admission control
// protects established streams from oversubscription, and tearing a stream
// down frees its bandwidth for a waiting client.
#include <cstdio>
#include <vector>

#include "core/testbed.hpp"
#include "userlib/userlib.hpp"

using namespace xunet;

int main() {
  std::printf("== multimedia: QoS streams with admission control ==\n\n");

  // DS3 trunk: 45 Mb/s.  Each video stream asks for 15 Mb/s guaranteed, so
  // three fit and the fourth must be refused by admission control.
  auto tb = core::TestbedConfig{}.pvc_mesh().build();
  auto& mh = *tb->router(0).kernel;        // viewers
  auto& berkeley = *tb->router(1).kernel;  // video server machine

  // ---- viewers: each exports a sink for its stream -------------------------
  struct Viewer {
    kern::Pid pid;
    std::unique_ptr<app::UserLib> lib;
    std::size_t bytes = 0;
  };
  std::vector<std::unique_ptr<Viewer>> viewers;
  // Accept loops outlive their own invocations; owning them here (instead
  // of a self-capturing shared_ptr) avoids a reference cycle.
  std::vector<std::shared_ptr<std::function<void()>>> loops;
  for (int i = 0; i < 4; ++i) {
    auto v = std::make_unique<Viewer>();
    v->pid = mh.spawn("viewer" + std::to_string(i));
    v->lib = std::make_unique<app::UserLib>(mh, v->pid,
                                            mh.ip_node().address());
    std::string svc = "viewer" + std::to_string(i);
    v->lib->export_service(svc, static_cast<std::uint16_t>(4300 + i),
                           [](util::Result<void>) {});
    Viewer* vp = v.get();
    auto accept_all = std::make_shared<std::function<void()>>();
    loops.push_back(accept_all);
    std::function<void()>* loop = accept_all.get();
    *accept_all = [vp, loop, &mh] {
      vp->lib->await_service_request(
          [vp, loop, &mh](util::Result<app::IncomingRequest> req) {
            if (!req.ok()) return;
            vp->lib->accept_connection(
                *req, req->qos, [vp, &mh](util::Result<app::OpenResult> res) {
                  if (!res.ok()) return;
                  auto fd = vp->lib->bind_data_socket(*res);
                  if (!fd.ok()) return;
                  (void)mh.xunet_on_receive(vp->pid, *fd,
                                            [vp](util::BytesView d) {
                                              vp->bytes += d.size();
                                            });
                  // Release the descriptor when the stream is torn down.
                  (void)mh.xunet_on_disconnect(vp->pid, *fd, [vp, &mh, fd = *fd] {
                    (void)mh.close(vp->pid, fd);
                  });
                });
            (*loop)();
          });
    };
    (*accept_all)();
    viewers.push_back(std::move(v));
  }

  // ---- the video server ----------------------------------------------------
  kern::Pid spid = berkeley.spawn("video-server");
  app::UserLib server(berkeley, spid, berkeley.ip_node().address());

  struct Stream {
    int viewer = -1;
    int fd = -1;
    bool admitted = false;
    std::string verdict;
  };
  auto streams = std::make_shared<std::vector<Stream>>(4);

  // Start one 15 Mb/s guaranteed stream per viewer; number 4 must bounce.
  for (int i = 0; i < 4; ++i) {
    (*streams)[static_cast<std::size_t>(i)].viewer = i;
    server.open_connection(
        "mh.rt", "viewer" + std::to_string(i), "video stream",
        "class=guaranteed,bw=15000000",
        [&, i, streams](util::Result<app::OpenResult> r) {
          Stream& st = (*streams)[static_cast<std::size_t>(i)];
          if (!r.ok()) {
            st.verdict = r.error() == util::Errc::no_resources
                             ? "REFUSED by admission control (trunk full)"
                             : "failed";
            std::printf("[server] stream %d: %s\n", i, st.verdict.c_str());
            return;
          }
          auto fd = server.connect_data_socket(*r);
          if (!fd.ok()) return;
          st.fd = *fd;
          st.admitted = true;
          st.verdict = "admitted at <" + r->qos + ">";
          std::printf("[server] stream %d: vci=%u %s\n", i, r->vci,
                      st.verdict.c_str());
          // "Transmit" a second of video: ~120 frames of 12.5 kB.
          for (int f = 0; f < 120; ++f) {
            (void)berkeley.xunet_send(spid, st.fd,
                                      util::Buffer(12'500, 0x3C));
          }
        });
  }

  tb->sim().run_for(sim::seconds(10));

  int admitted = 0, refused = 0;
  int refused_idx = -1;
  for (int i = 0; i < 4; ++i) {
    const Stream& st = (*streams)[static_cast<std::size_t>(i)];
    if (st.admitted) {
      ++admitted;
    } else {
      ++refused;
      refused_idx = i;
    }
  }
  std::printf("\nadmitted %d streams, refused %d (DS3 fits 3 x 15 Mb/s)\n",
              admitted, refused);

  // ---- teardown frees bandwidth: retry the refused stream ------------------
  int first_admitted = -1;
  for (int i = 0; i < 4; ++i) {
    if ((*streams)[static_cast<std::size_t>(i)].admitted) {
      first_admitted = i;
      break;
    }
  }
  if (first_admitted >= 0 && refused_idx >= 0) {
    std::printf("closing stream %d; retrying viewer %d...\n", first_admitted,
                refused_idx);
    (void)berkeley.close(spid, (*streams)[static_cast<std::size_t>(first_admitted)].fd);
    tb->sim().run_for(sim::seconds(2));

    bool retried_ok = false;
    server.open_connection(
        "mh.rt", "viewer" + std::to_string(refused_idx), "video stream",
        "class=guaranteed,bw=15000000",
        [&](util::Result<app::OpenResult> r) {
          retried_ok = r.ok();
          if (r.ok()) {
            (void)server.connect_data_socket(*r);
          } else {
            std::printf("retry error: %d\n", static_cast<int>(r.error()));
          }
        });
    tb->sim().run_for(sim::seconds(5));
    std::printf("retry after teardown: %s\n",
                retried_ok ? "admitted (bandwidth reclaimed)" : "still refused");

    std::size_t delivered = 0;
    for (const auto& v : viewers) delivered += v->bytes;
    std::printf("total video bytes delivered: %zu\n", delivered);
    return (admitted == 3 && refused == 1 && retried_ok) ? 0 : 1;
  }
  return 1;
}
