// file_service.cpp — the paper's motivating scenario (§3): "a file server
// might advertise the name 'file-service' with the signaling entity on host
// with ATM address 'mh.rt'.  A client application that wanted to access a
// file on this server would request the local signaling entity to initiate
// a connection to <'mh.rt', 'file-service', QoS>."
//
// The server registers on mh.rt; a client on berkeley.rt requests a file.
// Since calls are simplex, the request travels client→server on one call
// and the file body returns on a server→client call, chunked into AAL
// frames.  The client verifies the received bytes against the original.
#include <cstdio>
#include <map>

#include "core/testbed.hpp"
#include "userlib/userlib.hpp"
#include "util/crc32.hpp"
#include "util/rng.hpp"

using namespace xunet;

namespace {

/// A tiny in-memory "filesystem" for the server.
std::map<std::string, util::Buffer> make_files() {
  std::map<std::string, util::Buffer> files;
  util::Rng rng(2024);
  util::Buffer big(100'000);
  for (auto& b : big) b = static_cast<std::uint8_t>(rng.next());
  files["/etc/motd"] = util::to_buffer(std::string_view(
      "Welcome to Xunet II - a nationwide testbed in high-speed networking\n"));
  files["/data/trace.bin"] = std::move(big);
  return files;
}

}  // namespace

int main() {
  std::printf("== file-service: the paper's motivating scenario ==\n\n");

  auto tb = core::TestbedConfig{}.pvc_mesh().build();
  auto& mh = *tb->router(0).kernel;        // file server lives here
  auto& berkeley = *tb->router(1).kernel;  // client lives here

  const auto files = make_files();

  // ---- the file server on mh.rt -------------------------------------------
  kern::Pid spid = mh.spawn("file-server");
  app::UserLib server(mh, spid, mh.ip_node().address());
  server.export_service("file-service", 4100, [](util::Result<void> r) {
    std::printf("[server] file-service %s on mh.rt\n",
                r.ok() ? "advertised" : "FAILED");
  });

  std::function<void()> serve = [&] {
    server.await_service_request([&](util::Result<app::IncomingRequest> req) {
      if (!req.ok()) return;
      // The comment carries the requested path; the QoS is negotiated down
      // to the server's disk bandwidth.
      std::string path = req->comment;
      std::printf("[server] request for %s, offered qos=<%s>\n", path.c_str(),
                  req->qos.c_str());
      atm::Qos offered = atm::parse_qos(req->qos).value_or(atm::Qos{});
      atm::Qos granted =
          atm::negotiate(offered, atm::Qos{atm::ServiceClass::predicted,
                                           20'000'000});  // disk-limited

      server.accept_connection(
          *req, atm::to_string(granted),
          [&, path, granted](util::Result<app::OpenResult> res) {
            if (!res.ok()) return;
            (void)server.bind_data_socket(*res);  // request channel (unused
                                                  // further in this example)
            auto it = files.find(path);
            if (it == files.end()) {
              std::printf("[server] no such file: %s\n", path.c_str());
              return;
            }
            // Return connection: server -> client, carrying the file.
            const util::Buffer& body = it->second;
            server.open_connection(
                "berkeley.rt", "file-sink", path, atm::to_string(granted),
                [&, body, path](util::Result<app::OpenResult> rr) {
                  if (!rr.ok()) return;
                  auto fd = server.connect_data_socket(*rr);
                  if (!fd.ok()) return;
                  // Chunk the file into 8 KB AAL frames; a tiny header
                  // frame announces the total size first.
                  util::Writer hdr;
                  hdr.u32(static_cast<std::uint32_t>(body.size()));
                  hdr.u32(util::crc32(body));
                  (void)mh.xunet_send(spid, *fd, hdr.view());
                  const std::size_t chunk = 8192;
                  for (std::size_t off = 0; off < body.size(); off += chunk) {
                    std::size_t n = std::min(chunk, body.size() - off);
                    (void)mh.xunet_send(
                        spid, *fd, util::BytesView{body.data() + off, n});
                  }
                  std::printf("[server] sent %s (%zu bytes + header)\n",
                              path.c_str(), body.size());
                });
          });
      serve();
    });
  };
  serve();

  // ---- the client on berkeley.rt -------------------------------------------
  kern::Pid cpid = berkeley.spawn("file-client");
  app::UserLib client(berkeley, cpid, berkeley.ip_node().address());

  struct Download {
    std::string path;
    std::uint32_t expected_size = 0;
    std::uint32_t expected_crc = 0;
    util::Buffer data;
    bool have_header = false;
    bool verified = false;
  };
  std::map<std::string, Download> downloads;

  client.export_service("file-sink", 4101, [](util::Result<void>) {});
  std::function<void()> sink = [&] {
    client.await_service_request([&](util::Result<app::IncomingRequest> req) {
      if (!req.ok()) return;
      std::string path = req->comment;
      downloads[path].path = path;
      client.accept_connection(
          *req, req->qos, [&, path](util::Result<app::OpenResult> res) {
            if (!res.ok()) return;
            auto fd = client.bind_data_socket(*res);
            if (!fd.ok()) return;
            (void)berkeley.xunet_on_receive(
                cpid, *fd, [&, path](util::BytesView frame) {
                  Download& d = downloads[path];
                  if (!d.have_header) {
                    util::Reader r(frame);
                    d.expected_size = r.u32().value_or(0);
                    d.expected_crc = r.u32().value_or(0);
                    d.have_header = true;
                    return;
                  }
                  d.data.insert(d.data.end(), frame.begin(), frame.end());
                  if (d.data.size() >= d.expected_size && !d.verified) {
                    bool ok = d.data.size() == d.expected_size &&
                              util::crc32(d.data) == d.expected_crc;
                    d.verified = ok;
                    std::printf("[client] %s: %u bytes, crc %s\n",
                                path.c_str(), d.expected_size,
                                ok ? "OK" : "MISMATCH");
                  }
                });
          });
      sink();
    });
  };
  sink();

  // Fetch both files with different QoS asks.
  auto fetch = [&](const std::string& path, const std::string& qos) {
    client.open_connection("mh.rt", "file-service", path, qos,
                           [&, path](util::Result<app::OpenResult> r) {
                             if (!r.ok()) {
                               std::printf("[client] fetch %s failed\n",
                                           path.c_str());
                               return;
                             }
                             std::printf(
                                 "[client] %s: call granted, negotiated <%s>\n",
                                 path.c_str(), r->qos.c_str());
                             (void)client.connect_data_socket(*r);
                           });
  };
  fetch("/etc/motd", "class=best_effort,bw=0");
  fetch("/data/trace.bin", "class=guaranteed,bw=40000000");  // trimmed to 20M

  tb->sim().run_for(sim::seconds(30));

  int verified = 0;
  for (const auto& [path, d] : downloads) verified += d.verified;
  std::printf("\nfiles verified: %d/2\n", verified);
  return verified == 2 ? 0 : 1;
}
