// ip_gateway.cpp — "ATM Everywhere" (§5.4, §7.4): a host with no ATM
// host-interface board reaches a service on the ATM network by
// encapsulating AAL frames in IP packets to its router.
//
// Topology: host mh.host1 —FDDI— router mh.rt —ATM— router berkeley.rt
//           —FDDI— host berkeley.host1.
// The client on mh.host1 talks to a sink server on berkeley.host1.  Data
// crosses BOTH IP access legs (encapsulation out, re-encapsulation in) and
// the ATM WAN in the middle; the example prints the plumbing as it forms:
// the IPPROTO_ATM forwarding address, the VCI_BIND entry at the far router,
// and the out-of-order counters that the sequence-number field feeds.
#include <cstdio>

#include "core/testbed.hpp"
#include "userlib/userlib.hpp"

using namespace xunet;

int main() {
  std::printf("== ip_gateway: AAL frames over IP ('ATM Everywhere') ==\n\n");

  auto tb = core::TestbedConfig{}.hosts(2).pvc_mesh().build();
  auto& h0 = tb->host(0);  // mh.host1 (client, no ATM board)
  auto& h1 = tb->host(1);  // berkeley.host1 (server, no ATM board)
  auto& r0 = tb->router(0);
  auto& r1 = tb->router(1);

  // anand client configured each host's forwarding router at bring-up.
  std::printf("mh.host1 IPPROTO_ATM forwarding address: %s (router mh.rt)\n",
              to_string(*h0.kernel->proto_atm().router_address()).c_str());
  std::printf("berkeley.host1 forwarding address: %s (router berkeley.rt)\n\n",
              to_string(*h1.kernel->proto_atm().router_address()).c_str());

  // ---- server on the far IP host -----------------------------------------
  kern::Pid spid = h1.kernel->spawn("sink-server");
  app::UserLib server(*h1.kernel, spid,
                      h1.home->kernel->ip_node().address());
  std::size_t received_bytes = 0;
  std::uint64_t received_frames = 0;
  server.export_service("sink", 4200, [](util::Result<void> r) {
    std::printf("[server] 'sink' registered with berkeley.rt's sighost: %s\n",
                r.ok() ? "ok" : "FAILED");
  });
  std::function<void()> serve = [&] {
    server.await_service_request([&](util::Result<app::IncomingRequest> req) {
      if (!req.ok()) return;
      server.accept_connection(
          *req, req->qos, [&](util::Result<app::OpenResult> res) {
            if (!res.ok()) return;
            // This bind, relayed host→anand client→anand server, installs
            // the router's VCI_BIND forwarding entry (§7.4).
            auto fd = server.bind_data_socket(*res);
            if (!fd.ok()) return;
            std::printf("[server] bound VCI %u on berkeley.host1\n", res->vci);
            (void)h1.kernel->xunet_on_receive(
                spid, *fd, [&](util::BytesView d) {
                  received_bytes += d.size();
                  ++received_frames;
                });
          });
      serve();
    });
  };
  serve();

  // ---- client on the near IP host -----------------------------------------
  kern::Pid cpid = h0.kernel->spawn("gateway-client");
  app::UserLib client(*h0.kernel, cpid, h0.home->kernel->ip_node().address());
  const int frames = 50;
  const std::size_t frame_bytes = 4000;  // larger than one FDDI MTU: the IP
                                         // leg fragments and reassembles
  client.open_connection(
      "berkeley.rt", "sink", "bulk data", "class=predicted,bw=5000000",
      [&](util::Result<app::OpenResult> r) {
        if (!r.ok()) {
          std::fprintf(stderr, "open failed\n");
          return;
        }
        std::printf("[client] call up: vci=%u qos=<%s>\n", r->vci,
                    r->qos.c_str());
        auto fd = client.connect_data_socket(*r);
        if (!fd.ok()) return;
        util::Buffer payload(frame_bytes, 0xEE);
        for (int i = 0; i < frames; ++i) {
          (void)h0.kernel->xunet_send(cpid, *fd, payload);
        }
      });

  tb->sim().run_for(sim::seconds(10));

  std::printf("\n[router berkeley.rt] VCI_BIND entries: %zu\n",
              r1.anand_server->forwarded_vci_count());
  std::printf("[router mh.rt] encapsulated packets switched to ATM: %llu\n",
              static_cast<unsigned long long>(
                  r0.kernel->proto_atm().frames_decapsulated()));
  std::printf("[router berkeley.rt] frames re-encapsulated toward host: %llu\n",
              static_cast<unsigned long long>(
                  r1.kernel->proto_atm().frames_encapsulated()));
  std::printf("[server] frames=%llu bytes=%zu (expected %d x %zu = %zu)\n",
              static_cast<unsigned long long>(received_frames), received_bytes,
              frames, frame_bytes, frames * frame_bytes);
  std::printf("out-of-order detections (clean run should be 0): host=%llu "
              "router=%llu\n",
              static_cast<unsigned long long>(
                  h1.kernel->proto_atm().out_of_order()),
              static_cast<unsigned long long>(
                  r0.kernel->proto_atm().out_of_order()));

  bool ok = received_frames == frames &&
            received_bytes == frames * frame_bytes;
  std::printf("\nresult: %s\n", ok ? "complete and intact" : "INCOMPLETE");
  return ok ? 0 : 1;
}
