// quickstart.cpp — the paper's §8 example, end to end: an echo server that
// registers with the signaling entity (Figure 5) and a client that opens a
// QoS-parameterized call to it (Figure 6), over the canonical two-router
// Xunet testbed.  Because calls are simplex, the "echo" is completed with a
// second call back from server to client — exactly the pattern §3 describes
// ("the server application would have to establish a return connection").
//
// Build & run:   ./examples/quickstart
#include <cstdio>

#include "core/testbed.hpp"
#include "userlib/userlib.hpp"

using namespace xunet;

int main() {
  std::printf("== quickstart: native-mode ATM echo ==\n\n");

  // 1. Bring up the Xunet testbed of §9: two routers ("mh.rt" and
  //    "berkeley.rt") joined by a three-hop, two-switch DS3 ATM path, with
  //    sighost + anand server running on each router.
  auto tb = core::TestbedConfig{}.pvc_mesh().build();
  auto& mh = *tb->router(0).kernel;        // client machine
  auto& berkeley = *tb->router(1).kernel;  // server machine

  // 2. The server side (paper Figure 5).
  //    export_service("echo", TCP_PORT) + create_receive_connection are one
  //    call here; await_service_request / accept_connection / bind follow.
  kern::Pid server_pid = berkeley.spawn("echo-server");
  app::UserLib server(berkeley, server_pid, berkeley.ip_node().address());

  server.export_service("echo", 4000, [&](util::Result<void> r) {
    std::printf("[server] export_service(\"echo\"): %s\n",
                r.ok() ? "registered" : "FAILED");
  });

  // The server's accept loop: take the incoming call, negotiate the QoS
  // down to what it can serve, bind a PF_XUNET socket to the VCI, and echo
  // every frame back over a reverse call.
  std::function<void()> serve = [&] {
    server.await_service_request([&](util::Result<app::IncomingRequest> req) {
      if (!req.ok()) return;
      std::printf("[server] INCOMING_CONN: service=%s comment=\"%s\" qos=<%s>\n",
                  req->service.c_str(), req->comment.c_str(), req->qos.c_str());

      // "A server may modify the QoS and return it to the client."
      atm::Qos offered = atm::parse_qos(req->qos).value_or(atm::Qos{});
      atm::Qos granted = atm::negotiate(
          offered, atm::Qos{atm::ServiceClass::guaranteed, 2'000'000});

      server.accept_connection(
          *req, atm::to_string(granted),
          [&, granted](util::Result<app::OpenResult> res) {
            if (!res.ok()) return;
            std::printf("[server] VCI_FOR_CONN: vci=%u (accept granted <%s>)\n",
                        res->vci, res->qos.c_str());
            auto recv_sock = server.bind_data_socket(*res);  // bind(addr.VCI)
            if (!recv_sock.ok()) return;

            // Open the reverse (echo) call back to the client's machine.
            auto pending = std::make_shared<std::vector<util::Buffer>>();
            auto back_fd = std::make_shared<int>(-1);
            server.open_connection(
                "mh.rt", "echo-sink", "reverse channel", atm::to_string(granted),
                [&, pending, back_fd](util::Result<app::OpenResult> rr) {
                  if (!rr.ok()) return;
                  auto fd = server.connect_data_socket(*rr);
                  if (!fd.ok()) return;
                  *back_fd = *fd;
                  for (const auto& frame : *pending) {
                    (void)berkeley.xunet_send(server_pid, *back_fd, frame);
                  }
                  pending->clear();
                });

            (void)berkeley.xunet_on_receive(
                server_pid, *recv_sock,
                [&, pending, back_fd](util::BytesView data) {
                  std::printf("[server] received %zu bytes, echoing\n",
                              data.size());
                  if (*back_fd >= 0) {
                    (void)berkeley.xunet_send(server_pid, *back_fd,
                                              util::to_buffer(data));
                  } else {
                    pending->push_back(util::to_buffer(data));
                  }
                });
          });
      serve();  // keep accepting
    });
  };
  serve();

  // 3. The client side (paper Figure 6): one call to open_connection(),
  //    then a PF_XUNET socket connect()ed to the returned VCI.
  kern::Pid client_pid = mh.spawn("echo-client");
  app::UserLib client(mh, client_pid, mh.ip_node().address());

  // The client also exports a sink service so the server's reverse call has
  // somewhere to land (calls are simplex!).
  int echoes_received = 0;
  client.export_service("echo-sink", 4001, [](util::Result<void>) {});
  std::function<void()> sink = [&] {
    client.await_service_request([&](util::Result<app::IncomingRequest> req) {
      if (!req.ok()) return;
      client.accept_connection(*req, req->qos,
                               [&](util::Result<app::OpenResult> res) {
                                 if (!res.ok()) return;
                                 auto fd = client.bind_data_socket(*res);
                                 if (!fd.ok()) return;
                                 (void)mh.xunet_on_receive(
                                     client_pid, *fd, [&](util::BytesView d) {
                                       std::printf(
                                           "[client] echo came back: \"%.*s\"\n",
                                           static_cast<int>(d.size()),
                                           reinterpret_cast<const char*>(
                                               d.data()));
                                       ++echoes_received;
                                     });
                               });
      sink();
    });
  };
  sink();

  int send_sock = -1;
  client.open_connection(
      "berkeley.rt", "echo", "this is a comment",
      "class=guaranteed,bw=8000000",  // ask high; the server will trim it
      [&](util::Result<app::OpenResult> r) {
        if (!r.ok()) {
          std::fprintf(stderr, "[client] open_connection failed\n");
          return;
        }
        std::printf("[client] VCI granted: vci=%u negotiated qos=<%s>\n",
                    r->vci, r->qos.c_str());
        auto fd = client.connect_data_socket(*r);  // connect(addr.VCI)
        if (!fd.ok()) return;
        send_sock = *fd;
        // Send a few frames over the native-mode circuit.
        for (const char* msg : {"hello ATM", "native mode", "goodbye"}) {
          (void)mh.xunet_send(client_pid, send_sock,
                              util::to_buffer(std::string_view(msg)));
        }
      });

  // 4. Run the simulation.
  tb->sim().run_for(sim::seconds(10));
  std::printf("\nechoes received: %d/3\n", echoes_received);

  // 5. Exit both applications; the kernels notify the signaling entities,
  //    which tear down every call and release all network resources.
  (void)mh.exit_process(client_pid);
  (void)berkeley.exit_process(server_pid);
  tb->sim().run_for(sim::seconds(5));
  std::printf("after process exit, leak audit: %s\n",
              tb->audit().clean() ? "clean" : tb->audit().describe().c_str());
  return (echoes_received == 3 && tb->audit().clean()) ? 0 : 1;
}
