// network_operator.cpp — the operator's view of a running Xunet (§5.1:
// "Signaling state information is easily available and can be used by
// network management software").
//
// A three-site network carries native-mode calls and classical IP-over-ATM
// side by side.  The "operator" inspects sighost state with
// management_report(), watches a server crash get cleaned up automatically,
// and retires a service with WITHDRAW_SRV.
#include <cstdio>

#include "core/apps.hpp"
#include "core/testbed.hpp"

using namespace xunet;

int main() {
  std::printf("== network_operator: managing a live Xunet ==\n\n");

  core::TestbedConfig cfg;
  cfg.ip_over_atm = true;  // the pre-existing Xunet IP service (§1)
  auto tb = std::make_unique<core::Testbed>(cfg);
  auto& s1 = tb->add_switch("chicago");
  auto& s2 = tb->add_switch("newark");
  tb->connect_switches(s1, s2);
  tb->add_router("mh.rt", ip::make_ip(10, 1, 0, 1), s2);
  tb->add_router("berkeley.rt", ip::make_ip(10, 2, 0, 1), s1);
  tb->add_router("illinois.rt", ip::make_ip(10, 3, 0, 1), s1);
  if (!tb->bring_up().ok()) return 1;
  std::printf("three routers up; %zu PVCs provisioned (signaling + IP)\n\n",
              tb->network().active_vc_count());

  // Two services on berkeley; traffic from mh and illinois.
  auto& bk = tb->router(1);
  core::CallServer files(*bk.kernel, bk.kernel->ip_node().address(),
                         "file-service", 4000);
  core::CallServer video(*bk.kernel, bk.kernel->ip_node().address(),
                         "video-service", 4001);
  files.start([](util::Result<void>) {});
  video.start([](util::Result<void>) {});
  tb->sim().run_for(sim::milliseconds(500));

  core::CallClient mh_client(*tb->router(0).kernel,
                             tb->router(0).kernel->ip_node().address());
  core::CallClient il_client(*tb->router(2).kernel,
                             tb->router(2).kernel->ip_node().address());
  std::vector<core::CallClient::Call> calls;
  auto keep = [&](util::Result<core::CallClient::Call> r) {
    if (r.ok()) calls.push_back(*r);
  };
  mh_client.open("berkeley.rt", "file-service", "class=predicted,bw=4000000", keep);
  mh_client.open("berkeley.rt", "video-service", "class=guaranteed,bw=15000000", keep);
  il_client.open("berkeley.rt", "file-service", "class=best_effort,bw=0", keep);
  tb->sim().run_for(sim::seconds(5));
  std::printf("established %zu calls; operator inspects the callee sighost:\n\n%s\n",
              calls.size(), bk.sighost->management_report().c_str());

  // Meanwhile ordinary IP crosses the same WAN.
  int pings = 0;
  (void)tb->router(2).kernel->udp().bind(
      9000, [&](ip::IpAddress, std::uint16_t, util::BytesView) { ++pings; });
  for (int i = 0; i < 5; ++i) {
    (void)tb->router(0).kernel->udp().send(
        tb->router(2).kernel->ip_node().address(), 9000, 9001,
        util::to_buffer(std::string_view("ping")));
  }
  tb->sim().run_for(sim::seconds(1));
  std::printf("classical IP over ATM: %d/5 datagrams mh.rt -> illinois.rt\n\n",
              pings);

  // Incident: the video server crashes.  The kernel tells sighost, sighost
  // tears the call down network-wide and disconnects the client's socket.
  std::printf("-- incident: video-service process crashes --\n");
  video.kill();
  tb->sim().run_for(sim::seconds(5));
  std::printf("after cleanup:\n\n%s\n", bk.sighost->management_report().c_str());

  // Planned change: retire file-service via WITHDRAW_SRV.
  std::printf("-- maintenance: withdrawing file-service --\n");
  bool withdrawn = false;
  files.lib().unexport_service("file-service",
                               [&](util::Result<void> r) { withdrawn = r.ok(); });
  tb->sim().run_for(sim::seconds(1));
  std::optional<util::Errc> err;
  mh_client.open("berkeley.rt", "file-service", "",
                 [&](util::Result<core::CallClient::Call> r) {
                   if (!r.ok()) err = r.error();
                 });
  tb->sim().run_for(sim::seconds(3));
  std::printf("withdrawn=%s; new call to file-service: %s\n",
              withdrawn ? "yes" : "no",
              err.has_value() ? std::string(to_string(*err)).c_str()
                              : "unexpectedly succeeded");

  // Drain the remaining calls and audit.
  for (const auto& c : calls) mh_client.close_call(c);
  (void)il_client.kill(), tb->sim().run_for(sim::seconds(10));
  auto rep = tb->audit();
  std::printf("\nfinal audit: %s\n", rep.clean() ? "clean" : rep.describe().c_str());
  return (pings == 5 && withdrawn && err == util::Errc::not_found &&
          rep.clean())
             ? 0
             : 1;
}
