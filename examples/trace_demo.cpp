// trace_demo.cpp — the observability subsystem end to end: run a traced
// call over the canonical testbed, export the timeline as Chrome
// trace_event JSON (load trace_demo.json in chrome://tracing or
// https://ui.perfetto.dev), and print the §9 per-call latency breakdown
// showing maintenance logging as the dominant setup cost.
//
// The demo is also the determinism check: it runs the identical scenario
// twice and exits non-zero unless the two JSONL exports are byte-identical
// — the trace is a regression artifact, not just a debugging aid.
//
// Build & run:   ./examples/trace_demo
#include <cstdio>
#include <fstream>
#include <set>
#include <string>

#include "core/apps.hpp"
#include "core/testbed.hpp"
#include "obs/export.hpp"
#include "obs/report.hpp"

using namespace xunet;

namespace {

struct RunArtifacts {
  std::string jsonl;
  std::string chrome;
  std::string report;
  std::set<std::string> components;
  bool ok = false;
  bool logging_dominant = false;
};

// One traced scenario: bring up the testbed, register a service on
// berkeley.rt, open a call from mh.rt, push a few data frames through the
// PF_XUNET datapath, tear down.  Everything is simulated time, so two
// invocations replay the exact same event sequence.
RunArtifacts traced_run() {
  RunArtifacts out;
  auto tb = core::TestbedConfig{}.build_deferred();
  tb->sim().obs().set_tracing(true);  // before bring-up: trace it all
  if (!tb->bring_up().ok()) return out;

  auto& mh = *tb->router(0).kernel;
  auto& berkeley = *tb->router(1).kernel;

  core::CallServer server(berkeley, berkeley.ip_node().address(), "traced",
                          4800);
  server.start([](util::Result<void>) {});
  tb->sim().run_for(sim::milliseconds(300));

  core::CallClient client(mh, mh.ip_node().address());
  bool sent = false;
  client.open("berkeley.rt", "traced", "",
              [&](util::Result<core::CallClient::Call> r) {
                if (!r.ok()) return;
                const char payload[] = "traced frame";
                for (int i = 0; i < 3; ++i) {
                  (void)client.send(*r, util::BytesView(
                                            reinterpret_cast<const std::uint8_t*>(
                                                payload),
                                            sizeof payload - 1));
                }
                sent = true;
              });
  tb->sim().run_for(sim::seconds(5));
  if (!sent || server.frames_received() == 0) return out;

  const obs::Observability& o = tb->sim().obs();
  out.jsonl = obs::to_jsonl(o.trace(), o.metrics());
  out.chrome = obs::to_chrome_trace(o.trace());
  out.report = obs::breakdown_report(o.trace());
  for (const obs::TraceEvent& e : o.trace().events()) {
    out.components.insert(e.component);
  }
  std::vector<obs::CallBreakdown> calls = obs::per_call_breakdown(o.trace());
  out.logging_dominant =
      !calls.empty() && calls.front().logging_dominant();
  out.ok = true;
  return out;
}

bool write_file(const char* path, const std::string& text) {
  std::ofstream f(path, std::ios::binary);
  f << text;
  return f.good();
}

}  // namespace

int main() {
  std::printf("== trace_demo: end-to-end tracing of one native-mode call ==\n\n");

  RunArtifacts first = traced_run();
  if (!first.ok) {
    std::fprintf(stderr, "FAIL: traced scenario did not complete\n");
    return 1;
  }

  // 1. Structural validity of both exports.
  if (!obs::validate_json(first.chrome).ok()) {
    std::fprintf(stderr, "FAIL: Chrome trace is not valid JSON\n");
    return 1;
  }
  if (!obs::validate_jsonl(first.jsonl).ok()) {
    std::fprintf(stderr, "FAIL: JSONL export failed validation\n");
    return 1;
  }

  // 2. Coverage: the call path crosses every layer, so the trace must hold
  //    events from the stub, the signaling entity, the kernel, the Orc
  //    driver and the ATM network.
  for (const char* comp : {"stub", "sighost", "kern", "orc", "atm"}) {
    if (first.components.count(comp) == 0) {
      std::fprintf(stderr, "FAIL: no trace events from component \"%s\"\n",
                   comp);
      return 1;
    }
  }
  std::printf("trace covers %zu components across the call path\n",
              first.components.size());

  // 3. Determinism: the identical scenario replays byte-identically.
  RunArtifacts second = traced_run();
  if (!second.ok || second.jsonl != first.jsonl) {
    std::fprintf(stderr,
                 "FAIL: identically-seeded runs diverged (%zu vs %zu bytes)\n",
                 first.jsonl.size(), second.jsonl.size());
    return 1;
  }
  std::printf("two identically-seeded runs: byte-identical JSONL (%zu bytes)\n\n",
              first.jsonl.size());

  // 4. The §9 decomposition: maintenance logging dominates call setup.
  std::printf("%s\n", first.report.c_str());
  if (!first.logging_dominant) {
    std::fprintf(stderr,
                 "FAIL: maintenance logging is not the dominant setup cost\n");
    return 1;
  }

  // 5. Leave the artifacts on disk for a human to load.
  if (write_file("trace_demo.json", first.chrome) &&
      write_file("trace_demo.jsonl", first.jsonl)) {
    std::printf(
        "wrote trace_demo.json (chrome://tracing / ui.perfetto.dev) and "
        "trace_demo.jsonl\n");
  }

  std::printf("\nOK\n");
  return 0;
}
