#include "core/testbed.hpp"

#include <cassert>
#include <cstdio>
#include <cstdlib>

namespace xunet::core {

using util::Errc;

std::string LeakReport::describe() const {
  std::string s;
  auto add = [&s](const char* what, std::size_t n) {
    if (n != 0) {
      s += std::string(what) + "=" + std::to_string(n) + " ";
    }
  };
  add("network_vcs", network_vcs);
  add("outgoing", sighost_outgoing);
  add("incoming", sighost_incoming);
  add("wait_bind", sighost_wait_bind);
  add("vci_mappings", sighost_vci_mappings);
  add("cookie_vcis", cookie_vcis);
  return s.empty() ? "clean" : s;
}

Testbed::Testbed(TestbedConfig cfg) : cfg_(std::move(cfg)) {
  sim_ = std::make_unique<sim::Simulator>(
      cfg_.use_legacy_engine ? sim::Simulator::Engine::legacy_heap
                             : sim::Simulator::Engine::pooled);
  net_ = std::make_unique<atm::AtmNetwork>(*sim_, cfg_.switch_setup);
  net_->set_default_coalescing(cfg_.cell_quantum);
}

Testbed::~Testbed() = default;

atm::AtmSwitch& Testbed::add_switch(const std::string& name) {
  return net_->make_switch(name);
}

void Testbed::connect_switches(atm::AtmSwitch& a, atm::AtmSwitch& b) {
  net_->connect_switches(a, b, cfg_.atm_rate_bps, cfg_.atm_propagation);
}

Router& Testbed::add_router(const std::string& atm_name, ip::IpAddress ip,
                            atm::AtmSwitch& sw) {
  auto r = std::make_unique<Router>();
  r->kernel = std::make_unique<kern::Kernel>(
      *sim_, atm_name, kern::Kernel::Role::router, ip,
      atm::AtmAddress{atm_name}, cfg_.kernel);
  auto attached = r->kernel->attach_atm(*net_, sw, cfg_.atm_rate_bps,
                                        cfg_.atm_propagation);
  assert(attached.ok());
  (void)attached;
  r->sw = &sw;
  r->anand_server = std::make_unique<sig::AnandServerStub>(
      *r->kernel, cfg_.sighost.anand_server_port);
  sig::SighostConfig scfg = cfg_.sighost;
  if (cfg_.sighost_shards > 1) {
    scfg.shard_count = static_cast<std::uint16_t>(cfg_.sighost_shards);
  }
  r->sighost = std::make_unique<sig::Sighost>(*r->kernel, *net_, scfg);
  for (int s = 1; s < cfg_.sighost_shards; ++s) {
    scfg.shard_id = static_cast<std::uint16_t>(s);
    r->extra_shards.push_back(
        std::make_unique<sig::Sighost>(*r->kernel, *net_, scfg));
  }
  routers_.push_back(std::move(r));
  return *routers_.back();
}

Host& Testbed::add_host(const std::string& name, ip::IpAddress ip,
                        Router& via) {
  auto h = std::make_unique<Host>();
  h->kernel = std::make_unique<kern::Kernel>(
      *sim_, name, kern::Kernel::Role::host, ip, atm::AtmAddress{name},
      cfg_.kernel);
  h->home = &via;
  h->link = std::make_unique<ip::IpLink>(*sim_, cfg_.ip_rate_bps,
                                         cfg_.ip_propagation, cfg_.ip_mtu);
  h->link->attach(h->kernel->ip_node(), via.kernel->ip_node());
  h->kernel->ip_node().set_default_route(*h->link);
  via.kernel->ip_node().add_route(ip, *h->link);
  h->anand_client = std::make_unique<sig::AnandClientStub>(
      *h->kernel, via.kernel->ip_node().address(),
      cfg_.sighost.anand_server_port);
  hosts_.push_back(std::move(h));
  return *hosts_.back();
}

util::Result<void> Testbed::bring_up() {
  if (up_) return Errc::duplicate;
  up_ = true;
  for (auto& r : routers_) {
    if (auto rc = r->anand_server->start(); !rc) return rc;
    for (std::size_t s = 0; s < r->shard_count(); ++s) {
      if (auto rc = r->shard(s)->start(); !rc) return rc;
    }
  }
  // PVC mesh: one simplex PVC per ordered router pair AND sighost shard,
  // with a well-known sub-floor VCI reserved end to end.  Shard s of one
  // router talks only to shard s of its peers (they own the same residue
  // class).  adjacent_pvc_mesh restricts the mesh to chain neighbours so
  // long sharded chains fit the PVC VCI space.
  const std::size_t shards =
      routers_.empty() ? 1 : routers_.front()->shard_count();
  for (std::size_t i = 0; i < routers_.size(); ++i) {
    for (std::size_t j = i + 1; j < routers_.size(); ++j) {
      if (cfg_.adjacent_pvc_mesh && j != i + 1) continue;
      for (std::size_t s = 0; s < shards; ++s) {
        atm::Vci ij = next_pvc_vci_++;
        atm::Vci ji = next_pvc_vci_++;
        assert(ji < atm::kFirstSwitchedVci && "too many routers for PVC VCIs");
        const atm::AtmAddress& a = routers_[i]->kernel->atm_address();
        const atm::AtmAddress& b = routers_[j]->kernel->atm_address();
        atm::Qos pvc_qos;  // best effort: signaling traffic is tiny
        auto p1 = net_->setup_pvc(a, b, ij, pvc_qos);
        if (!p1) return p1.error();
        auto p2 = net_->setup_pvc(b, a, ji, pvc_qos);
        if (!p2) return p2.error();
        pvc_count_ += 2;
        if (auto rc = routers_[i]->shard(s)->add_peer(b, ij, ji); !rc) return rc;
        if (auto rc = routers_[j]->shard(s)->add_peer(a, ji, ij); !rc) return rc;
        peer_pvcs_.resize(routers_.size());
        peer_pvcs_[i].push_back({j, s, ij, ji});
        peer_pvcs_[j].push_back({i, s, ji, ij});
      }
    }
  }
  if (cfg_.ip_over_atm) {
    // One PVC pair per ordered router pair carries classical IP.
    for (std::size_t i = 0; i < routers_.size(); ++i) {
      for (std::size_t j = i + 1; j < routers_.size(); ++j) {
        atm::Vci ij = next_pvc_vci_++;
        atm::Vci ji = next_pvc_vci_++;
        assert(ji < atm::kFirstSwitchedVci && "PVC VCI space exhausted");
        const atm::AtmAddress& a = routers_[i]->kernel->atm_address();
        const atm::AtmAddress& b = routers_[j]->kernel->atm_address();
        atm::Qos q;  // IP rides best-effort, as on Xunet
        auto p1 = net_->setup_pvc(a, b, ij, q);
        if (!p1) return p1.error();
        auto p2 = net_->setup_pvc(b, a, ji, q);
        if (!p2) return p2.error();
        pvc_count_ += 2;
        auto& if_a = routers_[i]->kernel->add_ip_over_atm(ij, ji);
        auto& if_b = routers_[j]->kernel->add_ip_over_atm(ji, ij);
        // Routes: the peer router itself plus every host behind it.
        auto add_routes = [this](Router& from, Router& to, kern::IpOverAtm& via) {
          from.kernel->ip_node().add_route(to.kernel->ip_node().address(), via);
          for (auto& h : hosts_) {
            if (h->home == &to) {
              from.kernel->ip_node().add_route(h->kernel->ip_node().address(),
                                               via);
            }
          }
        };
        add_routes(*routers_[i], *routers_[j], if_a);
        add_routes(*routers_[j], *routers_[i], if_b);
      }
    }
  }
  for (auto& h : hosts_) {
    if (auto rc = h->anand_client->start(); !rc) return rc;
  }
  // Let control-plane TCP connections establish.
  sim_->run_for(sim::milliseconds(200));
  return {};
}

void Testbed::set_wire_fault(sig::Sighost::WireFaultFn fn) {
  wire_fault_ = std::move(fn);
  for (auto& r : routers_) {
    for (std::size_t s = 0; s < r->shard_count(); ++s) {
      if (sig::Sighost* sh = r->shard(s)) sh->set_wire_fault(wire_fault_);
    }
  }
}

void Testbed::crash_sighost(std::size_t i) {
  Router& r = *routers_.at(i);
  if (!r.sighost) return;
  // Kill the process(es) first (the kernel reclaims their sockets exactly
  // as it would for any crashed program), then drop the objects (cancelling
  // their timers — a dead process fires no more events).  All shards of the
  // router die together: this models the machine rebooting.
  (void)r.kernel->kill_process(r.sighost->pid());
  r.sighost.reset();
  for (auto& sh : r.extra_shards) {
    if (!sh) continue;
    (void)r.kernel->kill_process(sh->pid());
    sh.reset();
  }
}

util::Result<void> Testbed::restart_sighost(std::size_t i) {
  Router& r = *routers_.at(i);
  if (r.sighost) return Errc::duplicate;
  const std::size_t shards = r.shard_count();
  for (std::size_t s = 0; s < shards; ++s) {
    sig::SighostConfig scfg = cfg_.sighost;
    if (shards > 1) {
      scfg.shard_count = static_cast<std::uint16_t>(shards);
      scfg.shard_id = static_cast<std::uint16_t>(s);
    }
    auto sh = std::make_unique<sig::Sighost>(*r.kernel, *net_, scfg);
    if (wire_fault_) sh->set_wire_fault(wire_fault_);
    if (auto rc = sh->start(); !rc) return rc;
    if (peer_pvcs_.size() > i) {
      for (const PeerPvc& p : peer_pvcs_[i]) {
        if (p.shard != s) continue;
        const atm::AtmAddress& peer =
            routers_.at(p.other)->kernel->atm_address();
        if (auto rc = sh->add_peer(peer, p.send_vci, p.recv_vci); !rc) {
          return rc;
        }
      }
    }
    if (s == 0) {
      r.sighost = std::move(sh);
    } else {
      r.extra_shards.at(s - 1) = std::move(sh);
    }
  }
  // Recover each shard only after every shard is listening again, so the
  // per-shard audits see the same post-crash kernel state.
  for (std::size_t s = 0; s < shards; ++s) {
    if (auto rc = r.shard(s)->recover(); !rc) return rc;
  }
  return {};
}

namespace {

/// Site name of router `i` — the first two keep the paper's Murray Hill /
/// Berkeley names so the generalized topology is a superset of canonical().
std::string site_prefix(int i) {
  if (i == 0) return "mh";
  if (i == 1) return "berkeley";
  return "site" + std::to_string(i);
}

}  // namespace

std::unique_ptr<Testbed> TestbedConfig::build_deferred() const {
  assert(n_routers >= 1);
  auto tb = std::make_unique<Testbed>(*this);

  // Chain of switches, one router per switch: mh.rt — s1 — s2 — … — sN.
  std::vector<atm::AtmSwitch*> switches;
  for (int i = 0; i < n_routers; ++i) {
    switches.push_back(&tb->add_switch("s" + std::to_string(i + 1)));
    if (i > 0) {
      tb->connect_switches(*switches[static_cast<std::size_t>(i - 1)],
                           *switches[static_cast<std::size_t>(i)]);
    }
  }
  for (int i = 0; i < n_routers; ++i) {
    tb->add_router(site_prefix(i) + ".rt",
                   ip::make_ip(10, 0, static_cast<std::uint8_t>(i), 1),
                   *switches[static_cast<std::size_t>(i)]);
  }
  // Hosts round-robin across routers; per-site numbering from 1, matching
  // canonical_with_hosts ("mh.host1" at 10.0.0.2, "berkeley.host1" at
  // 10.0.1.2).
  std::vector<int> per_site(static_cast<std::size_t>(n_routers), 0);
  for (int k = 0; k < n_hosts; ++k) {
    const int home = k % n_routers;
    const int idx = ++per_site[static_cast<std::size_t>(home)];
    tb->add_host(site_prefix(home) + ".host" + std::to_string(idx),
                 ip::make_ip(10, 0, static_cast<std::uint8_t>(home),
                             static_cast<std::uint8_t>(1 + idx)),
                 tb->router(static_cast<std::size_t>(home)));
  }
  return tb;
}

std::unique_ptr<Testbed> TestbedConfig::build() const {
  auto tb = build_deferred();
  if (auto_bring_up) {
    if (auto rc = tb->bring_up(); !rc) {
      std::fprintf(stderr, "TestbedConfig::build: bring_up failed: %d\n",
                   static_cast<int>(rc.error()));
      std::abort();
    }
  }
  if (on_built) on_built(*tb);
  return tb;
}

LeakReport Testbed::audit() const {
  LeakReport rep;
  rep.network_vcs = net_->active_vc_count() - pvc_count_;
  for (const auto& r : routers_) {
    for (std::size_t s = 0; s < r->shard_count(); ++s) {
      const sig::Sighost* sh = r->shard(s);
      if (sh == nullptr) continue;  // crashed shard: nothing to count
      rep.sighost_outgoing += sh->outgoing_requests_size();
      rep.sighost_incoming += sh->incoming_requests_size();
      rep.sighost_wait_bind += sh->wait_for_bind_size();
      rep.sighost_vci_mappings += sh->vci_mapping_size();
      rep.cookie_vcis += sh->cookies().vci_count();
    }
  }
  return rep;
}

}  // namespace xunet::core
