// duplex.hpp — duplex channels composed from simplex calls.
//
// §3: "the client-to-server connection is simplex, so ... the server
// application would have to establish a return connection."  Every example
// in the paper that needs two-way data builds this pattern by hand; these
// helpers package it: the client exports a unique return service and names
// it in the forward call's comment, and the server calls back to the
// originating sighost (whose address rides in INCOMING_CONN).
#pragma once

#include <map>
#include <memory>

#include "userlib/userlib.hpp"

namespace xunet::core {

/// One end of a duplex channel: a sending and a receiving PF_XUNET socket.
struct DuplexEnd {
  int send_fd = -1;
  int recv_fd = -1;
  atm::Vci send_vci = atm::kInvalidVci;  ///< local VCI of the sending socket
  atm::Vci recv_vci = atm::kInvalidVci;  ///< local VCI of the receiving socket
  std::string qos_forward;   ///< negotiated QoS, client→server direction
  std::string qos_reverse;   ///< negotiated QoS, server→client direction
  [[nodiscard]] bool ready() const noexcept {
    return send_fd >= 0 && recv_fd >= 0;
  }
};

/// Client side: open(dst, service, qos) yields a ready DuplexEnd.
class DuplexClient {
 public:
  using OpenFn = std::function<void(util::Result<DuplexEnd>)>;

  /// `notify_port`: the TCP port this client listens on for reverse calls.
  DuplexClient(kern::Kernel& k, ip::IpAddress sighost_ip,
               std::uint16_t notify_port);

  /// Open a duplex channel.  The same `qos` is requested in both
  /// directions; each direction is negotiated independently.
  void open(const std::string& dst, const std::string& service,
            const std::string& qos, OpenFn on_done);

  /// Register the receive handler for a ready channel.
  util::Result<void> on_receive(const DuplexEnd& end, kern::Kernel::DataFn fn) {
    return k_.xunet_on_receive(pid_, end.recv_fd, std::move(fn));
  }
  /// Send on a ready channel.
  util::Result<void> send(const DuplexEnd& end, util::BytesView data) {
    return k_.xunet_send(pid_, end.send_fd, data);
  }
  /// Close both directions; the signaling entities tear both calls down.
  void close(const DuplexEnd& end);

  [[nodiscard]] kern::Pid pid() const noexcept { return pid_; }

 private:
  struct Pending {
    OpenFn on_done;
    DuplexEnd end;
    bool forward_done = false;
    bool reverse_done = false;
    bool failed = false;
  };
  void maybe_finish(const std::shared_ptr<Pending>& p);
  void accept_loop();

  kern::Kernel& k_;
  kern::Pid pid_ = -1;
  std::unique_ptr<app::UserLib> lib_;
  std::uint16_t notify_port_;
  bool exporting_ = false;
  std::map<std::string, std::shared_ptr<Pending>> pending_;  ///< by return-service name
  int next_ret_ = 1;
};

/// Server side: accepts duplex calls and surfaces ready channels.
class DuplexServer {
 public:
  /// Fired once per fully established duplex channel.
  using ChannelFn = std::function<void(DuplexEnd)>;

  DuplexServer(kern::Kernel& k, ip::IpAddress sighost_ip, std::string service,
               std::uint16_t notify_port);

  void set_qos_limit(const atm::Qos& q) noexcept { qos_limit_ = q; }
  void start(app::UserLib::VoidFn on_registered, ChannelFn on_channel);

  util::Result<void> on_receive(const DuplexEnd& end, kern::Kernel::DataFn fn) {
    return k_.xunet_on_receive(pid_, end.recv_fd, std::move(fn));
  }
  util::Result<void> send(const DuplexEnd& end, util::BytesView data) {
    return k_.xunet_send(pid_, end.send_fd, data);
  }

  [[nodiscard]] kern::Pid pid() const noexcept { return pid_; }
  [[nodiscard]] std::uint64_t channels_opened() const noexcept { return opened_; }

 private:
  void accept_loop();

  kern::Kernel& k_;
  std::string service_;
  std::uint16_t port_;
  kern::Pid pid_ = -1;
  std::unique_ptr<app::UserLib> lib_;
  atm::Qos qos_limit_{atm::ServiceClass::guaranteed, 10'000'000};
  ChannelFn on_channel_;
  std::uint64_t opened_ = 0;
};

/// Wire convention: the forward call's comment field.
[[nodiscard]] std::string duplex_comment(const std::string& ret_service);
/// Parse the comment; empty when the call is not a duplex open.
[[nodiscard]] std::string parse_duplex_comment(const std::string& comment);

}  // namespace xunet::core
