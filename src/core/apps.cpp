#include "core/apps.hpp"

namespace xunet::core {

using util::Errc;

CallServer::CallServer(kern::Kernel& k, ip::IpAddress sighost_ip,
                       std::string service, std::uint16_t notify_port,
                       int shard_count)
    : k_(k), service_(std::move(service)), port_(notify_port) {
  pid_ = k_.spawn("server:" + service_);
  if (shard_count < 1) shard_count = 1;
  for (int s = 0; s < shard_count; ++s)
    libs_.push_back(std::make_unique<app::UserLib>(
        k_, pid_, sighost_ip,
        static_cast<std::uint16_t>(sig::kSighostPort + s)));
}

void CallServer::start(app::UserLib::VoidFn on_registered) {
  for (std::size_t s = 0; s < libs_.size(); ++s) {
    // sighost losing our registration (crash/restart) shows up as the
    // signaling channel dropping; re-export so new calls find us again.
    libs_[s]->set_channel_down([this, s] {
      if (k_.alive(pid_)) re_register(s, 0);
    });
    if (s == 0) {
      // The caller's completion tracks shard 0 — the shard every
      // unsharded deployment has.
      libs_[0]->export_service(
          service_, port_,
          [this, on_registered = std::move(on_registered)](
              util::Result<void> r) {
            if (r) accept_loop(0);
            on_registered(r);
          });
    } else {
      libs_[s]->export_service(
          service_, static_cast<std::uint16_t>(port_ + s),
          [this, s](util::Result<void> r) {
            if (r) accept_loop(s);
          });
    }
  }
}

void CallServer::re_register(std::size_t shard, int attempt) {
  // Linear backoff: the replacement sighost needs a moment to start
  // listening before the reconnect can succeed.
  k_.simulator().schedule(
      sim::milliseconds(100) * (attempt + 1), [this, shard, attempt] {
        if (!k_.alive(pid_)) return;
        libs_[shard]->export_service(
            service_, static_cast<std::uint16_t>(port_ + shard),
            [this, shard, attempt](util::Result<void> r) {
              if (!r) {
                if (attempt < 20) re_register(shard, attempt + 1);
                return;
              }
              ++re_registrations_;
              accept_loop(shard);
            });
      });
}

void CallServer::accept_loop(std::size_t shard) {
  libs_[shard]->await_service_request([this, shard](
                                          util::Result<app::IncomingRequest>
                                              r) {
    if (!r) return;  // server torn down
    const app::IncomingRequest req = *r;
    if (!k_.alive(pid_)) return;
    if (!auto_accept_) {
      libs_[shard]->reject_connection(req);
      ++rejected_;
      accept_loop(shard);
      return;
    }
    // Negotiate: shrink the client's ask to our ceiling (§3's "negotiated
    // (possibly modified) QoS").
    atm::Qos offered = atm::parse_qos(req.qos).value_or(atm::Qos{});
    atm::Qos granted = atm::negotiate(offered, qos_limit_);
    libs_[shard]->accept_connection(
        req, atm::to_string(granted),
        [this, shard](util::Result<app::OpenResult> rr) {
          if (!rr) return;
          auto fd = libs_[shard]->bind_data_socket(*rr);
          if (!fd) return;
          ++accepted_;
          socks_.emplace(rr->vci, *fd);
          (void)k_.xunet_on_receive(pid_, *fd, [this](util::BytesView data) {
            ++frames_;
            bytes_ += data.size();
          });
          // Release the descriptor when the signaling entity marks the
          // socket unusable (peer closed / call torn down), like a real
          // server reacting to a dead connection.
          (void)k_.xunet_on_disconnect(pid_, *fd, [this, vci = rr->vci,
                                                   fd = *fd] {
            if (socks_.erase(vci) != 0) (void)k_.close(pid_, fd);
          });
        });
    accept_loop(shard);
  });
}

CallClient::CallClient(kern::Kernel& k, ip::IpAddress sighost_ip,
                       int shard_count)
    : k_(k) {
  pid_ = k_.spawn("client");
  if (shard_count < 1) shard_count = 1;
  for (int s = 0; s < shard_count; ++s)
    libs_.push_back(std::make_unique<app::UserLib>(
        k_, pid_, sighost_ip,
        static_cast<std::uint16_t>(sig::kSighostPort + s)));
}

void CallClient::open(const std::string& dst, const std::string& service,
                      const std::string& qos, CallFn on_done) {
  open(dst, service, qos, app::OpenOptions{}, std::move(on_done));
}

void CallClient::open(const std::string& dst, const std::string& service,
                      const std::string& qos, const app::OpenOptions& opts,
                      CallFn on_done) {
  app::UserLib& lib = *libs_[next_shard_++ % libs_.size()];
  lib.open_connection(
      dst, service, "", qos, opts,
      [this, &lib,
       on_done = std::move(on_done)](util::Result<app::OpenResult> r) {
        if (!r) {
          ++failed_;
          on_done(r.error());
          return;
        }
        auto fd = lib.connect_data_socket(*r);
        if (!fd) {
          ++failed_;
          on_done(fd.error());
          return;
        }
        ++ok_;
        on_done(Call{*fd, *r});
      });
}

}  // namespace xunet::core
