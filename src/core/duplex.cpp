#include "core/duplex.hpp"

namespace xunet::core {

using util::Errc;

namespace {
constexpr std::string_view kPrefix = "dup-ret=";
}

std::string duplex_comment(const std::string& ret_service) {
  return std::string(kPrefix) + ret_service;
}

std::string parse_duplex_comment(const std::string& comment) {
  if (comment.rfind(kPrefix, 0) != 0) return {};
  return comment.substr(kPrefix.size());
}

// ---------------------------------------------------------------- client

DuplexClient::DuplexClient(kern::Kernel& k, ip::IpAddress sighost_ip,
                           std::uint16_t notify_port)
    : k_(k), notify_port_(notify_port) {
  pid_ = k_.spawn("duplex-client");
  lib_ = std::make_unique<app::UserLib>(k_, pid_, sighost_ip);
}

void DuplexClient::maybe_finish(const std::shared_ptr<Pending>& p) {
  if (p->failed || !p->forward_done || !p->reverse_done) return;
  auto cb = std::move(p->on_done);
  p->on_done = {};
  if (cb) cb(p->end);
}

void DuplexClient::accept_loop() {
  lib_->await_service_request([this](util::Result<app::IncomingRequest> r) {
    if (!r.ok()) return;
    const app::IncomingRequest req = *r;
    std::string ret = req.service;  // the reverse call targets the unique
                                    // return service by name
    auto it = pending_.find(ret);
    if (it == pending_.end()) {
      lib_->reject_connection(req);
      accept_loop();
      return;
    }
    auto p = it->second;
    lib_->accept_connection(
        req, req.qos, [this, p, ret](util::Result<app::OpenResult> res) {
          if (!res.ok()) {
            p->failed = true;
            pending_.erase(ret);
            if (p->on_done) p->on_done(res.error());
            return;
          }
          auto fd = lib_->bind_data_socket(*res);
          if (!fd.ok()) {
            p->failed = true;
            pending_.erase(ret);
            if (p->on_done) p->on_done(fd.error());
            return;
          }
          p->end.recv_fd = *fd;
          p->end.recv_vci = res->vci;
          p->end.qos_reverse = res->qos;
          p->reverse_done = true;
          pending_.erase(ret);
          maybe_finish(p);
        });
    accept_loop();
  });
}

void DuplexClient::open(const std::string& dst, const std::string& service,
                        const std::string& qos, OpenFn on_done) {
  auto p = std::make_shared<Pending>();
  p->on_done = std::move(on_done);
  std::string ret = "dup-ret." + std::to_string(pid_) + "." +
                    std::to_string(next_ret_++);
  pending_.emplace(ret, p);

  // Export the unique return service (shares the one notify listener).
  lib_->export_service(ret, notify_port_, [this, p, ret, dst, service,
                                           qos](util::Result<void> r) {
    if (!r.ok()) {
      p->failed = true;
      pending_.erase(ret);
      if (p->on_done) p->on_done(r.error());
      return;
    }
    if (!exporting_) {
      exporting_ = true;
      accept_loop();
    }
    lib_->open_connection(
        dst, service, duplex_comment(ret), qos,
        [this, p, ret](util::Result<app::OpenResult> res) {
          if (!res.ok()) {
            p->failed = true;
            pending_.erase(ret);
            if (p->on_done) p->on_done(res.error());
            return;
          }
          auto fd = lib_->connect_data_socket(*res);
          if (!fd.ok()) {
            p->failed = true;
            pending_.erase(ret);
            if (p->on_done) p->on_done(fd.error());
            return;
          }
          p->end.send_fd = *fd;
          p->end.send_vci = res->vci;
          p->end.qos_forward = res->qos;
          p->forward_done = true;
          maybe_finish(p);
        });
  });
}

void DuplexClient::close(const DuplexEnd& end) {
  if (end.send_fd >= 0) (void)k_.close(pid_, end.send_fd);
  if (end.recv_fd >= 0) (void)k_.close(pid_, end.recv_fd);
}

// ---------------------------------------------------------------- server

DuplexServer::DuplexServer(kern::Kernel& k, ip::IpAddress sighost_ip,
                           std::string service, std::uint16_t notify_port)
    : k_(k), service_(std::move(service)), port_(notify_port) {
  pid_ = k_.spawn("duplex-server:" + service_);
  lib_ = std::make_unique<app::UserLib>(k_, pid_, sighost_ip);
}

void DuplexServer::start(app::UserLib::VoidFn on_registered,
                         ChannelFn on_channel) {
  on_channel_ = std::move(on_channel);
  lib_->export_service(service_, port_,
                       [this, on_registered = std::move(on_registered)](
                           util::Result<void> r) {
                         if (r.ok()) accept_loop();
                         on_registered(r);
                       });
}

void DuplexServer::accept_loop() {
  lib_->await_service_request([this](util::Result<app::IncomingRequest> r) {
    if (!r.ok()) return;
    const app::IncomingRequest req = *r;
    std::string ret = parse_duplex_comment(req.comment);
    if (ret.empty() || req.origin.empty()) {
      lib_->reject_connection(req);  // not a duplex open: decline
      accept_loop();
      return;
    }
    atm::Qos offered = atm::parse_qos(req.qos).value_or(atm::Qos{});
    atm::Qos granted = atm::negotiate(offered, qos_limit_);
    lib_->accept_connection(
        req, atm::to_string(granted),
        [this, ret, origin = req.origin,
         granted](util::Result<app::OpenResult> res) {
          if (!res.ok()) return;
          auto recv_fd = lib_->bind_data_socket(*res);
          if (!recv_fd.ok()) return;
          auto end = std::make_shared<DuplexEnd>();
          end->recv_fd = *recv_fd;
          end->recv_vci = res->vci;
          end->qos_forward = res->qos;
          // The return connection, addressed straight to the originating
          // sighost carried in INCOMING_CONN.
          lib_->open_connection(
              origin, ret, "dup-ack", atm::to_string(granted),
              [this, end](util::Result<app::OpenResult> rr) {
                if (!rr.ok()) return;
                auto send_fd = lib_->connect_data_socket(*rr);
                if (!send_fd.ok()) return;
                end->send_fd = *send_fd;
                end->send_vci = rr->vci;
                end->qos_reverse = rr->qos;
                ++opened_;
                if (on_channel_) on_channel_(*end);
              });
        });
    accept_loop();
  });
}

}  // namespace xunet::core
