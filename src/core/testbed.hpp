// testbed.hpp — builds complete simulated Xunet deployments.
//
// A Testbed owns the simulator, the ATM network, every machine's kernel,
// the signaling entities and the anand stubs, wires PVC signaling channels
// between all routers, and offers the canonical measurement topology of §9:
// two routers (SGI 4D/30 class) joined by a three-hop, two-switch ATM path,
// each optionally serving IP-connected hosts over FDDI.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "kern/kernel.hpp"
#include "signaling/anand_stubs.hpp"
#include "signaling/sighost.hpp"

namespace xunet::core {

class Testbed;

/// All tunables of a deployment in one place, plus a fluent builder over
/// them.  Benches sweep the fields directly; scenario code chains the
/// builder:
///
///   auto tb = TestbedConfig{}
///                 .routers(3)
///                 .hosts(4)
///                 .trunk(atm::kOc12Bps)
///                 .pvc_mesh()
///                 .build();
///
/// build() constructs the generalized §9 topology — `n_routers` switches in
/// a chain, one router per switch, hosts distributed round-robin — and,
/// when pvc_mesh() was requested, brings the deployment up (anand servers,
/// sighosts, the signaling-PVC full mesh).  build_deferred() never brings
/// up, whatever pvc_mesh() said.
struct TestbedConfig {
  kern::KernelConfig kernel;          ///< default kernel config (all machines)
  sig::SighostConfig sighost;         ///< default sighost config (all routers)
  std::uint64_t atm_rate_bps = atm::kDs3Bps;
  sim::SimDuration atm_propagation = sim::microseconds(500);
  sim::SimDuration switch_setup = sim::milliseconds(2);
  std::uint64_t ip_rate_bps = ip::kFddiBps;
  std::size_t ip_mtu = ip::kFddiMtu;
  sim::SimDuration ip_propagation = sim::microseconds(50);
  /// Provision classical IP-over-ATM between every router pair at bring-up
  /// (§1's Xunet IP service): cross-router IP connectivity for hosts.
  bool ip_over_atm = false;
  /// Topology: routers (one per switch, switches chained) and hosts
  /// (distributed round-robin across routers).
  int n_routers = 2;
  int n_hosts = 0;
  /// Sighost shards per router: shard s owns the switched VCIs with
  /// vci % sighost_shards == s, listens on sighost.port + s, and gets its
  /// own signaling-PVC mesh to shard s of every peer.  1 = the paper's
  /// one-sighost-per-router deployment.
  int sighost_shards = 1;
  /// Provision signaling PVCs only between chain-adjacent routers instead
  /// of the full mesh.  Long chains at high shard counts would otherwise
  /// exhaust the sub-floor PVC VCI space; calls must then stay between
  /// adjacent routers.
  bool adjacent_pvc_mesh = false;
  /// Use the pre-fast-path binary-heap event engine (determinism studies).
  bool use_legacy_engine = false;
  /// Arrival-coalescing quantum for every ATM link; zero = exact instants.
  sim::SimDuration cell_quantum{};
  /// build() calls bring_up() when set (the fluent pvc_mesh() sets it).
  bool auto_bring_up = false;
  /// Hook run on the freshly built (and possibly brought-up) testbed —
  /// typically installs wire faults or schedules crashes.
  std::function<void(Testbed&)> on_built;

  // -- fluent builder -------------------------------------------------------
  TestbedConfig& routers(int n) { n_routers = n; return *this; }
  TestbedConfig& hosts(int n) { n_hosts = n; return *this; }
  /// Line rate of every ATM link (trunks and endpoint links).
  TestbedConfig& trunk(std::uint64_t bps) { atm_rate_bps = bps; return *this; }
  TestbedConfig& propagation(sim::SimDuration d) { atm_propagation = d; return *this; }
  /// Provision classical IP-over-ATM between the routers at bring-up.
  TestbedConfig& ip_gateway() { ip_over_atm = true; return *this; }
  /// Bring the deployment up inside build(), provisioning the signaling
  /// PVC full mesh between routers.
  TestbedConfig& pvc_mesh() { auto_bring_up = true; return *this; }
  /// Run `n` sighost shards per router.
  TestbedConfig& shards(int n) { sighost_shards = n; return *this; }
  /// Signaling PVCs between chain-adjacent routers only.
  TestbedConfig& adjacent_pvc_only() { adjacent_pvc_mesh = true; return *this; }
  TestbedConfig& legacy_event_engine() { use_legacy_engine = true; return *this; }
  TestbedConfig& cell_coalescing(sim::SimDuration q) { cell_quantum = q; return *this; }
  TestbedConfig& fault_plan(std::function<void(Testbed&)> fn) {
    on_built = std::move(fn);
    return *this;
  }

  /// Build the deployment; brings it up when pvc_mesh() was requested
  /// (aborting on bring-up failure — a topology bug, not a runtime
  /// condition), then runs the fault plan.
  [[nodiscard]] std::unique_ptr<Testbed> build() const;
  /// Build the topology only — the caller owns bring_up(), and the fault
  /// plan does not run.
  [[nodiscard]] std::unique_ptr<Testbed> build_deferred() const;
};

/// One router: kernel + Hobbit + sighost shard(s) + anand server.
struct Router {
  std::unique_ptr<kern::Kernel> kernel;
  std::unique_ptr<sig::AnandServerStub> anand_server;
  std::unique_ptr<sig::Sighost> sighost;  ///< shard 0 (the only one at 1)
  /// Shards 1..N-1 when the testbed was configured with shards(N).
  std::vector<std::unique_ptr<sig::Sighost>> extra_shards;
  atm::AtmSwitch* sw = nullptr;  ///< the switch this router attaches to

  [[nodiscard]] std::size_t shard_count() const noexcept {
    return 1 + extra_shards.size();
  }
  /// Shard s, nullptr while crashed.
  [[nodiscard]] sig::Sighost* shard(std::size_t s) noexcept {
    return s == 0 ? sighost.get() : extra_shards.at(s - 1).get();
  }
};

/// One IP-connected host: kernel + anand client, homed on a router.
struct Host {
  std::unique_ptr<kern::Kernel> kernel;
  std::unique_ptr<sig::AnandClientStub> anand_client;
  Router* home = nullptr;
  std::unique_ptr<ip::IpLink> link;  ///< host↔router FDDI link
};

/// Post-run resource audit (§4 "frugal use of resources").
struct LeakReport {
  std::size_t network_vcs = 0;          ///< VCs beyond the signaling PVCs
  std::size_t sighost_outgoing = 0;
  std::size_t sighost_incoming = 0;
  std::size_t sighost_wait_bind = 0;
  std::size_t sighost_vci_mappings = 0;
  std::size_t cookie_vcis = 0;
  /// True when every call's state is fully reclaimed.
  [[nodiscard]] bool clean() const noexcept {
    return network_vcs == 0 && sighost_outgoing == 0 && sighost_incoming == 0 &&
           sighost_wait_bind == 0 && sighost_vci_mappings == 0 &&
           cookie_vcis == 0;
  }
  [[nodiscard]] std::string describe() const;
};

/// The deployment builder/owner.
class Testbed {
 public:
  explicit Testbed(TestbedConfig cfg = TestbedConfig{});
  ~Testbed();
  Testbed(const Testbed&) = delete;
  Testbed& operator=(const Testbed&) = delete;

  [[nodiscard]] sim::Simulator& sim() noexcept { return *sim_; }
  [[nodiscard]] atm::AtmNetwork& network() noexcept { return *net_; }
  [[nodiscard]] const TestbedConfig& config() const noexcept { return cfg_; }

  // -- topology -------------------------------------------------------------
  atm::AtmSwitch& add_switch(const std::string& name);
  void connect_switches(atm::AtmSwitch& a, atm::AtmSwitch& b);
  /// Create a router attached to `sw`.  `atm_name` is its sighost address
  /// (e.g. "mh.rt"); `ip` its IP address.
  Router& add_router(const std::string& atm_name, ip::IpAddress ip,
                     atm::AtmSwitch& sw);
  /// Create a host homed on `via`, connected over a point-to-point IP link.
  Host& add_host(const std::string& name, ip::IpAddress ip, Router& via);

  /// Bring everything up: anand servers, sighosts, the PVC full mesh
  /// between routers, anand clients.  Then run the simulator briefly so all
  /// control connections establish.
  util::Result<void> bring_up();

  // -- access ----------------------------------------------------------------
  [[nodiscard]] Router& router(std::size_t i) { return *routers_.at(i); }
  [[nodiscard]] Host& host(std::size_t i) { return *hosts_.at(i); }
  [[nodiscard]] std::size_t router_count() const noexcept { return routers_.size(); }
  [[nodiscard]] std::size_t host_count() const noexcept { return hosts_.size(); }

  // -- fault injection --------------------------------------------------------
  /// Install a wire-fault hook on every router's sighost (and remember it,
  /// so a restarted sighost gets it too).  Pass nullptr to clear.
  void set_wire_fault(sig::Sighost::WireFaultFn fn);

  /// Kill router i's sighost process(es) abruptly: their TCP listen
  /// sockets, application channels and signaling-PVC sockets all close;
  /// established data VCs (owned by application processes) keep flowing.
  /// With shards, every shard of the router dies together (a machine
  /// crash, not a single-process one).
  void crash_sighost(std::size_t i);

  /// Construct replacement sighost shard(s) on router i, re-provision
  /// their signaling PVC channels, and run crash recovery (kernel/network
  /// audit plus peer resync) per shard.  Requires crash_sighost(i) first.
  util::Result<void> restart_sighost(std::size_t i);

  // -- audits ------------------------------------------------------------------
  [[nodiscard]] LeakReport audit() const;

 private:
  /// One provisioned signaling-PVC pair, recorded so a restarted sighost
  /// can re-attach to the same well-known VCIs.
  struct PeerPvc {
    std::size_t other = 0;  ///< peer router index
    std::size_t shard = 0;  ///< owning sighost shard (both ends)
    atm::Vci send_vci = atm::kInvalidVci;
    atm::Vci recv_vci = atm::kInvalidVci;
  };

  TestbedConfig cfg_;
  std::unique_ptr<sim::Simulator> sim_;
  std::unique_ptr<atm::AtmNetwork> net_;
  std::vector<std::unique_ptr<Router>> routers_;
  std::vector<std::unique_ptr<Host>> hosts_;
  std::vector<std::vector<PeerPvc>> peer_pvcs_;  ///< by router index
  sig::Sighost::WireFaultFn wire_fault_;
  std::size_t pvc_count_ = 0;  ///< PVCs provisioned at bring-up
  atm::Vci next_pvc_vci_ = 1;
  bool up_ = false;
};

}  // namespace xunet::core
