// apps.hpp — reusable application processes for tests, benches and examples.
//
// CallServer registers a service and (by default) accepts every incoming
// call after QoS negotiation, binding a PF_XUNET socket and counting what
// arrives.  CallClient opens parameterized calls and sends frames.  Both
// are ordinary applications: everything they do goes through UserLib and
// the kernel syscall surface, so killing them exercises the same cleanup
// paths a real crashed program would.
#pragma once

#include <map>
#include <memory>
#include <vector>

#include "atm/qos.hpp"
#include "kern/kernel.hpp"
#include "userlib/userlib.hpp"

namespace xunet::core {

/// A server application.
class CallServer {
 public:
  /// `sighost_ip`: the router where this machine's signaling entity runs
  /// (the machine's own router — its own IP when the server runs on a
  /// router).  With `shard_count` > 1 the server registers with every
  /// sighost shard (shard s listens on sig::kSighostPort + s) and takes
  /// its incoming-call notifications for shard s on notify_port + s, so
  /// calls land no matter which shard owns their VCI.
  CallServer(kern::Kernel& k, ip::IpAddress sighost_ip, std::string service,
             std::uint16_t notify_port, int shard_count = 1);

  /// Behaviour knobs (set before start()).
  void set_auto_accept(bool v) noexcept { auto_accept_ = v; }
  /// Server-side QoS ceiling: offered QoS is negotiated down to this.
  void set_qos_limit(const atm::Qos& q) noexcept { qos_limit_ = q; }

  /// Register and start the accept loop.
  void start(app::UserLib::VoidFn on_registered);

  /// Kill the server process abnormally (robustness experiments).
  void kill() { (void)k_.kill_process(pid_); }

  [[nodiscard]] kern::Pid pid() const noexcept { return pid_; }
  /// The shard-0 library (the only one in unsharded deployments).
  [[nodiscard]] app::UserLib& lib() noexcept { return *libs_.front(); }
  [[nodiscard]] std::uint64_t calls_accepted() const noexcept { return accepted_; }
  [[nodiscard]] std::uint64_t calls_rejected() const noexcept { return rejected_; }
  [[nodiscard]] std::uint64_t frames_received() const noexcept { return frames_; }
  [[nodiscard]] std::uint64_t bytes_received() const noexcept { return bytes_; }
  [[nodiscard]] std::size_t open_sockets() const noexcept { return socks_.size(); }
  /// Times the server re-exported its service after losing the signaling
  /// channel (sighost crash/restart).
  [[nodiscard]] std::uint64_t re_registrations() const noexcept {
    return re_registrations_;
  }

 private:
  void accept_loop(std::size_t shard);
  void re_register(std::size_t shard, int attempt);

  kern::Kernel& k_;
  std::string service_;
  std::uint16_t port_;
  kern::Pid pid_ = -1;
  std::vector<std::unique_ptr<app::UserLib>> libs_;  ///< one per sighost shard
  bool auto_accept_ = true;
  atm::Qos qos_limit_{atm::ServiceClass::guaranteed, 10'000'000};
  std::map<atm::Vci, int> socks_;  ///< bound data sockets by VCI
  std::uint64_t accepted_ = 0;
  std::uint64_t rejected_ = 0;
  std::uint64_t frames_ = 0;
  std::uint64_t bytes_ = 0;
  std::uint64_t re_registrations_ = 0;
};

/// A client application.
class CallClient {
 public:
  /// With `shard_count` > 1 the client keeps a signaling channel to every
  /// sighost shard and round-robins opens across them, spreading call
  /// setup over the sharded control plane.
  CallClient(kern::Kernel& k, ip::IpAddress sighost_ip, int shard_count = 1);

  /// One open call.
  struct Call {
    int fd = -1;
    app::OpenResult info;
  };
  using CallFn = std::function<void(util::Result<Call>)>;

  /// Open <dst, service, qos> and connect a data socket to the resulting VCI.
  void open(const std::string& dst, const std::string& service,
            const std::string& qos, CallFn on_done);

  /// Deadline-budgeted variant: transient setup failures are retried under
  /// backoff until `opts.deadline` (see app::OpenOptions).  The chaos
  /// harness uses this so every call resolves — success or definitive
  /// failure — once faults heal.
  void open(const std::string& dst, const std::string& service,
            const std::string& qos, const app::OpenOptions& opts,
            CallFn on_done);

  /// Send one frame on an open call.
  util::Result<void> send(const Call& c, util::BytesView data) {
    return k_.xunet_send(pid_, c.fd, data);
  }

  /// Close the data socket; the signaling entity tears the call down.
  void close_call(const Call& c) { (void)k_.close(pid_, c.fd); }

  /// Kill the client process abnormally.
  void kill() { (void)k_.kill_process(pid_); }

  [[nodiscard]] kern::Pid pid() const noexcept { return pid_; }
  /// The shard-0 library (the only one in unsharded deployments).
  [[nodiscard]] app::UserLib& lib() noexcept { return *libs_.front(); }
  [[nodiscard]] std::uint64_t opens_ok() const noexcept { return ok_; }
  [[nodiscard]] std::uint64_t opens_failed() const noexcept { return failed_; }

 private:
  kern::Kernel& k_;
  kern::Pid pid_ = -1;
  std::vector<std::unique_ptr<app::UserLib>> libs_;  ///< one per sighost shard
  std::size_t next_shard_ = 0;  ///< round-robin cursor over libs_
  std::uint64_t ok_ = 0;
  std::uint64_t failed_ = 0;
};

}  // namespace xunet::core
