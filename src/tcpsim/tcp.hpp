// tcp.hpp — a compact but real TCP: three-way handshake, Go-Back-N
// reliability, orderly close with TIME_WAIT, reset handling.
//
// Why this exists: the paper's application↔sighost IPC is "TCP/IP ...
// in essence building a special-purpose RPC facility" (§5.2), and its second
// scaling problem (§10) is that a closed connection "keeps the descriptor in
// the table for two Maximum Segment Lifetimes".  Both behaviours live here;
// the simulated kernel wraps connections in descriptors and frees the slot
// only when the connection leaves TIME_WAIT.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <unordered_map>

#include "ip/node.hpp"
#include "sim/timer.hpp"
#include "tcpsim/segment.hpp"

namespace xunet::tcp {

/// Connection states (RFC 793 subset; no simultaneous open).
enum class State : std::uint8_t {
  closed,
  listen,
  syn_sent,
  syn_rcvd,
  established,
  fin_wait_1,
  fin_wait_2,
  close_wait,
  last_ack,
  closing,
  time_wait,
};
[[nodiscard]] std::string_view to_string(State s) noexcept;

/// Tuning knobs.  Defaults approximate a 1994 BSD stack.
struct TcpConfig {
  sim::SimDuration msl = sim::seconds(30);     ///< TIME_WAIT holds 2×msl
  sim::SimDuration rto = sim::milliseconds(500);
  std::size_t mss = 1400;                      ///< max segment payload
  std::size_t window_bytes = 64 * 1024;        ///< fixed send window
  int max_retransmits = 8;                     ///< then reset the connection
};

/// Opaque connection identifier within one TcpLayer.
using ConnId = std::uint64_t;

/// Per-node TCP.  All callbacks fire from the event loop, never reentrantly
/// from within an API call.
class TcpLayer {
 public:
  /// New inbound connection on a listening port.
  using AcceptHandler = std::function<void(ConnId)>;
  /// Outcome of a connect(): ok (established) or an error.
  using ConnectHandler = std::function<void(util::Result<ConnId>)>;
  /// In-order received bytes.
  using ReceiveHandler = std::function<void(util::BytesView)>;
  /// The connection will deliver no more data: peer FIN (ok) or reset.
  using CloseHandler = std::function<void(util::Errc)>;
  /// The connection object is fully gone (left TIME_WAIT / closed); the
  /// simulated kernel releases the descriptor slot on this signal.
  using ReleasedHandler = std::function<void(ConnId)>;

  TcpLayer(ip::IpNode& node, TcpConfig cfg = {});
  ~TcpLayer();
  TcpLayer(const TcpLayer&) = delete;
  TcpLayer& operator=(const TcpLayer&) = delete;

  // -- API used by the socket layer ---------------------------------------

  /// Listen on `port`.  The handler fires once per accepted connection.
  util::Result<void> listen(std::uint16_t port, AcceptHandler on_accept);
  void stop_listening(std::uint16_t port);

  /// Active open to (dst, port).  The handler fires with the established
  /// connection id or connection_refused / timed_out.
  util::Result<ConnId> connect(ip::IpAddress dst, std::uint16_t dst_port,
                               ConnectHandler on_done);

  /// Queue bytes for reliable delivery.  not_connected unless established
  /// (or close_wait, where sending is still legal).
  util::Result<void> send(ConnId id, util::BytesView data);

  /// Register per-connection upcalls.  Safe to call from an AcceptHandler.
  void set_receive_handler(ConnId id, ReceiveHandler h);
  void set_close_handler(ConnId id, CloseHandler h);
  void set_released_handler(ConnId id, ReleasedHandler h);

  /// Orderly close (FIN).  The connection survives in the state machine —
  /// possibly for 2×MSL in TIME_WAIT — until the ReleasedHandler fires.
  util::Result<void> close(ConnId id);

  /// Abortive close (RST), e.g. process termination.  Releases immediately.
  void abort(ConnId id);

  // -- introspection --------------------------------------------------------

  [[nodiscard]] State state(ConnId id) const;
  [[nodiscard]] std::size_t connection_count() const noexcept { return conns_.size(); }
  [[nodiscard]] std::size_t count_in_state(State s) const;
  [[nodiscard]] ip::IpAddress peer_addr(ConnId id) const;
  [[nodiscard]] std::uint16_t local_port(ConnId id) const;
  [[nodiscard]] const TcpConfig& config() const noexcept { return cfg_; }
  [[nodiscard]] std::uint64_t segments_sent() const noexcept { return segments_sent_; }
  [[nodiscard]] std::uint64_t retransmits() const noexcept { return retransmits_; }

 private:
  struct TupleKey {
    ip::IpAddress peer;
    std::uint16_t peer_port;
    std::uint16_t local_port;
    auto operator<=>(const TupleKey&) const = default;
  };

  struct Conn {
    Conn(sim::Simulator& sim) : rto_timer(sim), wait_timer(sim) {}
    ConnId id = 0;
    TupleKey tuple{};
    State state = State::closed;
    // Send side.
    std::uint32_t snd_una = 0;  ///< oldest unacked seq
    std::uint32_t snd_nxt = 0;  ///< next seq to use
    std::deque<std::uint8_t> send_buf;  ///< bytes from snd_una onward (incl. in-flight)
    bool fin_queued = false;    ///< FIN follows the send buffer
    bool fin_sent = false;
    std::uint32_t fin_seq = 0;
    int retransmit_count = 0;
    // Receive side.
    std::uint32_t rcv_nxt = 0;
    // Upcalls.
    ConnectHandler on_connect;
    ReceiveHandler on_receive;
    CloseHandler on_close;
    ReleasedHandler on_released;
    bool close_reported = false;
    // Timers.
    sim::Timer rto_timer;
    sim::Timer wait_timer;
  };

  void segment_arrival(const ip::IpPacket& p);
  void handle_for_conn(Conn& c, const Segment& s, ip::IpAddress src);
  void handle_listen(std::uint16_t port, const Segment& s, ip::IpAddress src);
  void emit(Conn& c, Flags flags, util::BytesView payload, std::uint32_t seq);
  void send_rst(ip::IpAddress dst, std::uint16_t dst_port,
                std::uint16_t src_port, std::uint32_t seq, std::uint32_t ack);
  /// Transmit (or retransmit) everything the window allows.
  void pump(Conn& c);
  void arm_rto(Conn& c);
  void on_rto(ConnId id);
  void enter_time_wait(Conn& c);
  void report_close(Conn& c, util::Errc reason);
  /// Destroy the connection object and fire ReleasedHandler.
  void release(ConnId id);
  Conn* find(ConnId id);
  const Conn* find(ConnId id) const;
  std::uint16_t alloc_ephemeral_port();

  ip::IpNode& node_;
  TcpConfig cfg_;
  std::unordered_map<std::uint16_t, AcceptHandler> listeners_;
  std::map<TupleKey, ConnId> by_tuple_;
  std::unordered_map<ConnId, std::unique_ptr<Conn>> conns_;
  ConnId next_id_ = 1;
  std::uint16_t next_ephemeral_ = 10'000;
  std::uint32_t next_iss_ = 1000;  ///< deterministic initial seq generator
  std::uint64_t segments_sent_ = 0;
  std::uint64_t retransmits_ = 0;
};

}  // namespace xunet::tcp
