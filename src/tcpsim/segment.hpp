// segment.hpp — simulated TCP segment wire format.
#pragma once

#include <cstdint>

#include "ip/addr.hpp"
#include "util/buffer.hpp"

namespace xunet::tcp {

/// Segment control flags.
struct Flags {
  bool syn = false;
  bool ack = false;
  bool fin = false;
  bool rst = false;
  bool operator==(const Flags&) const = default;
};

/// Simplified TCP header + payload.
struct Segment {
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  std::uint32_t seq = 0;
  std::uint32_t ack = 0;
  Flags flags;
  std::uint16_t window = 0;
  util::Buffer payload;
};

/// Header bytes on the wire for this model (ports, seq, ack, flags, window).
inline constexpr std::size_t kTcpHeaderBytes = 14;

[[nodiscard]] util::Buffer serialize(const Segment& s);
[[nodiscard]] util::Result<Segment> parse_segment(util::BytesView wire);

}  // namespace xunet::tcp
