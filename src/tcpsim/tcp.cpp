#include "tcpsim/tcp.hpp"

#include <cassert>

namespace xunet::tcp {

using util::Errc;

namespace {

/// Wrap-safe sequence comparison (RFC 793 arithmetic).
[[nodiscard]] bool seq_lt(std::uint32_t a, std::uint32_t b) noexcept {
  return static_cast<std::int32_t>(a - b) < 0;
}
[[nodiscard]] bool seq_leq(std::uint32_t a, std::uint32_t b) noexcept {
  return static_cast<std::int32_t>(a - b) <= 0;
}

}  // namespace

std::string_view to_string(State s) noexcept {
  switch (s) {
    case State::closed: return "CLOSED";
    case State::listen: return "LISTEN";
    case State::syn_sent: return "SYN_SENT";
    case State::syn_rcvd: return "SYN_RCVD";
    case State::established: return "ESTABLISHED";
    case State::fin_wait_1: return "FIN_WAIT_1";
    case State::fin_wait_2: return "FIN_WAIT_2";
    case State::close_wait: return "CLOSE_WAIT";
    case State::last_ack: return "LAST_ACK";
    case State::closing: return "CLOSING";
    case State::time_wait: return "TIME_WAIT";
  }
  return "?";
}

TcpLayer::TcpLayer(ip::IpNode& node, TcpConfig cfg)
    : node_(node), cfg_(cfg) {
  node_.register_protocol(ip::IpProto::tcp,
                          [this](const ip::IpPacket& p) { segment_arrival(p); });
}

TcpLayer::~TcpLayer() = default;

TcpLayer::Conn* TcpLayer::find(ConnId id) {
  auto it = conns_.find(id);
  return it == conns_.end() ? nullptr : it->second.get();
}

const TcpLayer::Conn* TcpLayer::find(ConnId id) const {
  auto it = conns_.find(id);
  return it == conns_.end() ? nullptr : it->second.get();
}

std::uint16_t TcpLayer::alloc_ephemeral_port() {
  for (int attempts = 0; attempts < 64 * 1024; ++attempts) {
    std::uint16_t p = next_ephemeral_;
    next_ephemeral_ = next_ephemeral_ >= 65535 ? 10'000 : next_ephemeral_ + 1;
    bool taken = listeners_.contains(p);
    if (!taken) {
      for (const auto& [tuple, id] : by_tuple_) {
        if (tuple.local_port == p) {
          taken = true;
          break;
        }
      }
    }
    if (!taken) return p;
  }
  return 0;
}

util::Result<void> TcpLayer::listen(std::uint16_t port, AcceptHandler on_accept) {
  if (port == 0 || !on_accept) return Errc::invalid_argument;
  if (listeners_.contains(port)) return Errc::address_in_use;
  listeners_.emplace(port, std::move(on_accept));
  return {};
}

void TcpLayer::stop_listening(std::uint16_t port) { listeners_.erase(port); }

util::Result<ConnId> TcpLayer::connect(ip::IpAddress dst,
                                       std::uint16_t dst_port,
                                       ConnectHandler on_done) {
  if (!dst.valid() || dst_port == 0 || !on_done) return Errc::invalid_argument;
  std::uint16_t sport = alloc_ephemeral_port();
  if (sport == 0) return Errc::no_resources;

  auto conn = std::make_unique<Conn>(node_.simulator());
  Conn& c = *conn;
  c.id = next_id_++;
  c.tuple = TupleKey{dst, dst_port, sport};
  c.state = State::syn_sent;
  std::uint32_t iss = next_iss_;
  next_iss_ += 0x10000;
  c.snd_una = iss;
  c.snd_nxt = iss + 1;
  c.on_connect = std::move(on_done);
  by_tuple_.emplace(c.tuple, c.id);
  ConnId id = c.id;
  conns_.emplace(id, std::move(conn));

  emit(c, Flags{.syn = true}, {}, iss);
  arm_rto(c);
  return id;
}

void TcpLayer::emit(Conn& c, Flags flags, util::BytesView payload,
                    std::uint32_t seq) {
  Segment s;
  s.src_port = c.tuple.local_port;
  s.dst_port = c.tuple.peer_port;
  s.seq = seq;
  s.flags = flags;
  if (flags.ack) s.ack = c.rcv_nxt;
  s.window = static_cast<std::uint16_t>(cfg_.window_bytes / 1024);
  s.payload = util::to_buffer(payload);
  ++segments_sent_;
  (void)node_.send(c.tuple.peer, ip::IpProto::tcp, serialize(s));
}

void TcpLayer::send_rst(ip::IpAddress dst, std::uint16_t dst_port,
                        std::uint16_t src_port, std::uint32_t seq,
                        std::uint32_t ack) {
  Segment s;
  s.src_port = src_port;
  s.dst_port = dst_port;
  s.seq = seq;
  s.ack = ack;
  s.flags = Flags{.ack = true, .rst = true};
  ++segments_sent_;
  (void)node_.send(dst, ip::IpProto::tcp, serialize(s));
}

util::Result<void> TcpLayer::send(ConnId id, util::BytesView data) {
  Conn* c = find(id);
  if (c == nullptr) return Errc::bad_fd;
  if (c->state != State::established && c->state != State::close_wait) {
    return Errc::not_connected;
  }
  if (c->fin_queued) return Errc::not_connected;
  c->send_buf.insert(c->send_buf.end(), data.begin(), data.end());
  pump(*c);
  return {};
}

void TcpLayer::set_receive_handler(ConnId id, ReceiveHandler h) {
  if (Conn* c = find(id)) c->on_receive = std::move(h);
}
void TcpLayer::set_close_handler(ConnId id, CloseHandler h) {
  if (Conn* c = find(id)) c->on_close = std::move(h);
}
void TcpLayer::set_released_handler(ConnId id, ReleasedHandler h) {
  if (Conn* c = find(id)) c->on_released = std::move(h);
}

util::Result<void> TcpLayer::close(ConnId id) {
  Conn* c = find(id);
  if (c == nullptr) return Errc::bad_fd;
  switch (c->state) {
    case State::syn_sent:
    case State::syn_rcvd:
      abort(id);
      return {};
    case State::established:
      c->fin_queued = true;
      c->state = State::fin_wait_1;
      pump(*c);
      return {};
    case State::close_wait:
      c->fin_queued = true;
      c->state = State::last_ack;
      pump(*c);
      return {};
    default:
      return Errc::not_connected;
  }
}

void TcpLayer::abort(ConnId id) {
  Conn* c = find(id);
  if (c == nullptr) return;
  if (c->state != State::time_wait && c->state != State::listen) {
    send_rst(c->tuple.peer, c->tuple.peer_port, c->tuple.local_port,
             c->snd_nxt, c->rcv_nxt);
  }
  report_close(*c, Errc::connection_reset);
  release(id);
}

State TcpLayer::state(ConnId id) const {
  const Conn* c = find(id);
  return c == nullptr ? State::closed : c->state;
}

std::size_t TcpLayer::count_in_state(State s) const {
  std::size_t n = 0;
  for (const auto& [id, c] : conns_) {
    if (c->state == s) ++n;
  }
  return n;
}

ip::IpAddress TcpLayer::peer_addr(ConnId id) const {
  const Conn* c = find(id);
  return c == nullptr ? ip::IpAddress{} : c->tuple.peer;
}

std::uint16_t TcpLayer::local_port(ConnId id) const {
  const Conn* c = find(id);
  return c == nullptr ? 0 : c->tuple.local_port;
}

void TcpLayer::pump(Conn& c) {
  const std::size_t in_flight = c.snd_nxt - c.snd_una - (c.fin_sent ? 1 : 0);
  std::size_t offset = in_flight;
  bool sent_any = false;
  while (offset < c.send_buf.size() &&
         (c.snd_nxt - c.snd_una) < cfg_.window_bytes) {
    const std::size_t n = std::min(cfg_.mss, c.send_buf.size() - offset);
    util::Buffer chunk(c.send_buf.begin() + static_cast<long>(offset),
                       c.send_buf.begin() + static_cast<long>(offset + n));
    emit(c, Flags{.ack = true}, chunk, c.snd_nxt);
    c.snd_nxt += static_cast<std::uint32_t>(n);
    offset += n;
    sent_any = true;
  }
  if (c.fin_queued && !c.fin_sent && offset == c.send_buf.size()) {
    c.fin_seq = c.snd_nxt;
    emit(c, Flags{.ack = true, .fin = true}, {}, c.snd_nxt);
    c.snd_nxt += 1;
    c.fin_sent = true;
    sent_any = true;
  }
  if (sent_any && !c.rto_timer.armed()) arm_rto(c);
}

void TcpLayer::arm_rto(Conn& c) {
  ConnId id = c.id;
  c.rto_timer.arm(cfg_.rto, [this, id] { on_rto(id); });
}

void TcpLayer::on_rto(ConnId id) {
  Conn* c = find(id);
  if (c == nullptr) return;
  if (++c->retransmit_count > cfg_.max_retransmits) {
    if (c->state == State::syn_sent && c->on_connect) {
      auto h = std::move(c->on_connect);
      node_.simulator().schedule(sim::SimDuration{},
                                 [h] { h(Errc::timed_out); });
    } else {
      report_close(*c, Errc::timed_out);
    }
    release(id);
    return;
  }
  ++retransmits_;
  switch (c->state) {
    case State::syn_sent:
      emit(*c, Flags{.syn = true}, {}, c->snd_una);
      break;
    case State::syn_rcvd:
      emit(*c, Flags{.syn = true, .ack = true}, {}, c->snd_una);
      break;
    default:
      // Go-Back-N: rewind and resend everything outstanding.
      c->snd_nxt = c->snd_una;
      c->fin_sent = false;
      pump(*c);
      break;
  }
  arm_rto(*c);
}

void TcpLayer::segment_arrival(const ip::IpPacket& p) {
  auto parsed = parse_segment(p.payload);
  if (!parsed) return;
  const Segment& s = *parsed;
  TupleKey key{p.src, s.src_port, s.dst_port};
  if (auto it = by_tuple_.find(key); it != by_tuple_.end()) {
    Conn* c = find(it->second);
    assert(c != nullptr);
    handle_for_conn(*c, s, p.src);
    return;
  }
  if (s.flags.syn && !s.flags.ack) {
    handle_listen(s.dst_port, s, p.src);
    return;
  }
  if (!s.flags.rst) {
    send_rst(p.src, s.src_port, s.dst_port, s.ack, s.seq);
  }
}

void TcpLayer::handle_listen(std::uint16_t port, const Segment& s,
                             ip::IpAddress src) {
  auto lit = listeners_.find(port);
  if (lit == listeners_.end()) {
    send_rst(src, s.src_port, port, 0, s.seq + 1);
    return;
  }
  auto conn = std::make_unique<Conn>(node_.simulator());
  Conn& c = *conn;
  c.id = next_id_++;
  c.tuple = TupleKey{src, s.src_port, port};
  c.state = State::syn_rcvd;
  c.rcv_nxt = s.seq + 1;
  std::uint32_t iss = next_iss_;
  next_iss_ += 0x10000;
  c.snd_una = iss;
  c.snd_nxt = iss + 1;
  by_tuple_.emplace(c.tuple, c.id);
  ConnId id = c.id;
  conns_.emplace(id, std::move(conn));
  emit(c, Flags{.syn = true, .ack = true}, {}, iss);
  arm_rto(c);
}

void TcpLayer::report_close(Conn& c, Errc reason) {
  if (c.close_reported) return;
  c.close_reported = true;
  if (c.on_close) {
    auto h = c.on_close;
    node_.simulator().schedule(sim::SimDuration{}, [h, reason] { h(reason); });
  }
}

void TcpLayer::enter_time_wait(Conn& c) {
  c.state = State::time_wait;
  c.rto_timer.cancel();
  ConnId id = c.id;
  c.wait_timer.arm(cfg_.msl * 2, [this, id] { release(id); });
}

void TcpLayer::release(ConnId id) {
  auto it = conns_.find(id);
  if (it == conns_.end()) return;
  Conn& c = *it->second;
  by_tuple_.erase(c.tuple);
  if (c.on_released) {
    auto h = c.on_released;
    node_.simulator().schedule(sim::SimDuration{}, [h, id] { h(id); });
  }
  conns_.erase(it);
}

void TcpLayer::handle_for_conn(Conn& c, const Segment& s, ip::IpAddress src) {
  (void)src;
  if (s.flags.rst) {
    if (c.state == State::syn_sent && c.on_connect) {
      auto h = std::move(c.on_connect);
      node_.simulator().schedule(sim::SimDuration{},
                                 [h] { h(Errc::connection_refused); });
      release(c.id);
      return;
    }
    report_close(c, Errc::connection_reset);
    release(c.id);
    return;
  }

  // --- handshake progress ---
  if (c.state == State::syn_sent) {
    if (s.flags.syn && s.flags.ack && s.ack == c.snd_nxt) {
      c.rcv_nxt = s.seq + 1;
      c.snd_una = s.ack;
      c.state = State::established;
      c.retransmit_count = 0;
      c.rto_timer.cancel();
      emit(c, Flags{.ack = true}, {}, c.snd_nxt);
      if (c.on_connect) {
        auto h = std::move(c.on_connect);
        ConnId id = c.id;
        node_.simulator().schedule(sim::SimDuration{}, [h, id] { h(id); });
      }
    }
    return;
  }
  if (c.state == State::syn_rcvd) {
    if (s.flags.syn && !s.flags.ack) {
      // Retransmitted SYN: resend our SYN|ACK.
      emit(c, Flags{.syn = true, .ack = true}, {}, c.snd_una);
      return;
    }
    if (s.flags.ack && seq_lt(c.snd_una, s.ack)) {
      c.snd_una = s.ack;
      c.state = State::established;
      c.retransmit_count = 0;
      c.rto_timer.cancel();
      if (auto lit = listeners_.find(c.tuple.local_port);
          lit != listeners_.end()) {
        auto h = lit->second;
        ConnId id = c.id;
        node_.simulator().schedule(sim::SimDuration{}, [h, id] { h(id); });
      }
      // Fall through: the ACK may carry data.
    } else {
      return;
    }
  }

  // --- ACK processing ---
  if (s.flags.ack && seq_lt(c.snd_una, s.ack) && seq_leq(s.ack, c.snd_nxt)) {
    std::uint32_t acked = s.ack - c.snd_una;
    std::uint32_t data_acked = acked;
    bool fin_acked = false;
    if (c.fin_sent && s.ack == c.fin_seq + 1) {
      data_acked -= 1;
      fin_acked = true;
    }
    assert(data_acked <= c.send_buf.size());
    c.send_buf.erase(c.send_buf.begin(),
                     c.send_buf.begin() + static_cast<long>(data_acked));
    c.snd_una = s.ack;
    c.retransmit_count = 0;
    if (c.snd_una == c.snd_nxt) {
      c.rto_timer.cancel();
    } else {
      arm_rto(c);
    }
    if (fin_acked) {
      switch (c.state) {
        case State::fin_wait_1:
          c.state = State::fin_wait_2;
          break;
        case State::closing:
          enter_time_wait(c);
          break;
        case State::last_ack:
          report_close(c, Errc::ok);
          release(c.id);
          return;
        default:
          break;
      }
    }
    pump(c);
  }

  // --- in-order data delivery (Go-Back-N receiver) ---
  bool advanced = false;
  if (!s.payload.empty()) {
    if (s.seq == c.rcv_nxt) {
      c.rcv_nxt += static_cast<std::uint32_t>(s.payload.size());
      advanced = true;
      if (c.on_receive) {
        auto h = c.on_receive;
        node_.simulator().schedule(
            sim::SimDuration{},
            [h, data = s.payload] { h(data); });
      }
    } else {
      // Out of order: discard, re-ACK what we have.
      emit(c, Flags{.ack = true}, {}, c.snd_nxt);
    }
  }

  // --- FIN processing ---
  std::uint32_t fin_seq = s.seq + static_cast<std::uint32_t>(s.payload.size());
  if (s.flags.fin && fin_seq == c.rcv_nxt) {
    c.rcv_nxt += 1;
    advanced = true;
    switch (c.state) {
      case State::established:
        c.state = State::close_wait;
        report_close(c, Errc::ok);
        break;
      case State::fin_wait_1:
        // Our FIN is unacked: simultaneous close.
        c.state = State::closing;
        break;
      case State::fin_wait_2:
        report_close(c, Errc::ok);
        enter_time_wait(c);
        break;
      default:
        break;
    }
  }
  if (advanced || (s.flags.fin && seq_lt(fin_seq, c.rcv_nxt))) {
    // ACK new data/FIN, and re-ACK retransmitted FINs (incl. in TIME_WAIT).
    emit(c, Flags{.ack = true}, {}, c.snd_nxt);
  }
}

}  // namespace xunet::tcp
