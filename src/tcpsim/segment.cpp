#include "tcpsim/segment.hpp"

namespace xunet::tcp {

using util::Errc;

util::Buffer serialize(const Segment& s) {
  util::Writer w;
  w.u16(s.src_port);
  w.u16(s.dst_port);
  w.u32(s.seq);
  w.u32(s.ack);
  std::uint8_t f = 0;
  if (s.flags.syn) f |= 0x01;
  if (s.flags.ack) f |= 0x02;
  if (s.flags.fin) f |= 0x04;
  if (s.flags.rst) f |= 0x08;
  w.u8(f);
  w.u8(0);  // reserved
  // Window scaled down to u16 granularity of 1 KiB to keep the header small.
  w.u16(s.window);
  w.bytes(s.payload);
  return w.take();
}

util::Result<Segment> parse_segment(util::BytesView wire) {
  util::Reader r(wire);
  Segment s;
  auto sp = r.u16();
  auto dp = r.u16();
  auto seq = r.u32();
  auto ack = r.u32();
  auto f = r.u8();
  auto reserved = r.u8();
  auto win = r.u16();
  if (!sp || !dp || !seq || !ack || !f || !reserved || !win) {
    return Errc::protocol_error;
  }
  s.src_port = *sp;
  s.dst_port = *dp;
  s.seq = *seq;
  s.ack = *ack;
  s.flags.syn = (*f & 0x01) != 0;
  s.flags.ack = (*f & 0x02) != 0;
  s.flags.fin = (*f & 0x04) != 0;
  s.flags.rst = (*f & 0x08) != 0;
  s.window = *win;
  s.payload = util::to_buffer(r.rest());
  return s;
}

}  // namespace xunet::tcp
