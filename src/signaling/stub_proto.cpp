#include "signaling/stub_proto.hpp"

namespace xunet::sig {

util::Buffer serialize(const StubMsg& m) {
  util::Writer w;
  w.u8(static_cast<std::uint8_t>(m.type));
  w.u8(static_cast<std::uint8_t>(m.up_type));
  w.u16(m.vci);
  w.u16(m.cookie);
  w.u32(m.machine.value);
  return w.take();
}

void StubFramer::feed(util::BytesView chunk) {
  pending_.insert(pending_.end(), chunk.begin(), chunk.end());
  while (pending_.size() >= kStubMsgBytes) {
    util::Reader r({pending_.data(), kStubMsgBytes});
    StubMsg m;
    m.type = static_cast<StubMsg::Type>(*r.u8());
    m.up_type = static_cast<kern::AnandUpType>(*r.u8());
    m.vci = *r.u16();
    m.cookie = *r.u16();
    m.machine.value = *r.u32();
    pending_.erase(pending_.begin(),
                   pending_.begin() + static_cast<long>(kStubMsgBytes));
    on_msg_(m);
  }
}

}  // namespace xunet::sig
