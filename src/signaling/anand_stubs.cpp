#include "signaling/anand_stubs.hpp"

#include <algorithm>

#include "atm/types.hpp"

namespace xunet::sig {

using util::Errc;

// ----------------------------------------------------------- AnandServerStub

AnandServerStub::AnandServerStub(kern::Kernel& router, std::uint16_t port)
    : k_(router), port_(port) {}

util::Result<void> AnandServerStub::start() {
  pid_ = k_.spawn("anand_server");
  auto anand_fd = k_.open_anand(pid_);
  if (!anand_fd) return anand_fd.error();
  anand_fd_ = *anand_fd;
  auto ctl = k_.proto_atm_socket(pid_);
  if (!ctl) return ctl.error();
  ctl_fd_ = *ctl;

  // Upward: block on select(); when unblocked, drain the device.
  (void)k_.anand_set_readable(pid_, anand_fd_, [this] { drain_device(); });

  auto lfd = k_.tcp_listen(pid_, port_, [this](int fd) {
    Conn c;
    c.fd = fd;
    c.framer = std::make_unique<StubFramer>(
        [this, fd](const StubMsg& m) { handle_conn_msg(conns_.at(fd), m); });
    auto [it, ok] = conns_.emplace(fd, std::move(c));
    (void)ok;
    (void)k_.tcp_on_receive(pid_, fd, [this, fd](util::BytesView data) {
      if (auto cit = conns_.find(fd); cit != conns_.end()) {
        cit->second.framer->feed(data);
      }
    });
    (void)k_.tcp_on_close(pid_, fd, [this, fd](util::Errc) {
      if (auto cit = conns_.find(fd); cit != conns_.end()) {
        if (cit->second.is_sighost) {
          for (int& sfd : sighost_fds_) {
            if (sfd == fd) sfd = -1;
          }
        }
        conns_.erase(cit);
      }
      (void)k_.close(pid_, fd);
    });
  });
  if (!lfd) return lfd.error();
  listen_fd_ = *lfd;
  return {};
}

void AnandServerStub::drain_device() {
  for (;;) {
    auto msg = k_.anand_read(pid_, anand_fd_);
    if (!msg) return;
    relay_up(*msg, ip::IpAddress{});  // origin 0 = the router itself
  }
}

void AnandServerStub::relay_up(const kern::AnandUpMsg& msg,
                               ip::IpAddress origin) {
  if (std::all_of(sighost_fds_.begin(), sighost_fds_.end(),
                  [](int fd) { return fd < 0; })) {
    return;  // no sighost attached yet: indication lost
  }
  obs::Observability& o = k_.simulator().obs();
  if (XOBS_TRACING(&o)) {
    obs::TraceIds ids;
    ids.vci = msg.vci;
    ids.pid = pid_;
    o.instant("stub", "anand.relay_up", k_.name(), std::move(ids));
  }
  StubMsg m;
  m.type = StubMsg::Type::up_indication;
  m.up_type = msg.type;
  m.vci = msg.vci;
  m.cookie = msg.cookie;
  m.machine = origin;
  // Sharded demux: a switched VCI belongs to exactly one shard by residue
  // arithmetic, so only the owner sees its indications (if that shard is
  // down the indication is lost, same as the unsharded attach race).
  // Sub-floor VCIs (PVCs, provisioned channels) fan out to every shard:
  // each sighost filters its own signaling sockets via pvc_vcis_.
  if (shard_count_ > 1 && msg.vci >= atm::kFirstSwitchedVci) {
    const int fd = sighost_fds_[msg.vci % shard_count_];
    if (fd >= 0) send_to(fd, m);
    return;
  }
  for (int fd : sighost_fds_) {
    if (fd >= 0) send_to(fd, m);
  }
}

void AnandServerStub::handle_conn_msg(Conn& c, const StubMsg& m) {
  switch (m.type) {
    case StubMsg::Type::hello_sighost: {
      c.is_sighost = true;
      // The hello carries the shard map: vci = shard_id, cookie =
      // shard_count.  A legacy hello (both zero) is shard 0 of 1.
      const std::uint16_t count = std::max<std::uint16_t>(m.cookie, 1);
      const std::uint16_t shard =
          static_cast<std::uint16_t>(m.vci % count);
      c.shard_id = shard;
      if (count != shard_count_) {
        shard_count_ = count;
        sighost_fds_.assign(count, -1);
      }
      sighost_fds_[shard] = c.fd;
      break;
    }
    case StubMsg::Type::hello_client:
      c.client_ip = k_.tcp_peer(pid_, c.fd);
      break;
    case StubMsg::Type::up_indication: {
      if (c.is_sighost) break;  // sighost never sends indications
      // §7.4: a bind indication from a host tells the anand server both the
      // destination IP address and the VCI; it installs the forwarding
      // state with a VCI_BIND control write before relaying upward.
      if (m.up_type == kern::AnandUpType::bind_indication && k_.is_router()) {
        (void)k_.proto_atm_vci_bind(pid_, ctl_fd_, m.vci, c.client_ip);
        vci_host_[m.vci] = c.client_ip;
      }
      kern::AnandUpMsg up;
      up.type = m.up_type;
      up.vci = m.vci;
      up.cookie = m.cookie;
      relay_up(up, c.client_ip);
      break;
    }
    case StubMsg::Type::down_disconnect:
      if (c.is_sighost) handle_down(m);
      break;
  }
}

void AnandServerStub::handle_down(const StubMsg& m) {
  obs::Observability& o = k_.simulator().obs();
  if (XOBS_TRACING(&o)) {
    obs::TraceIds ids;
    ids.vci = m.vci;
    ids.pid = pid_;
    o.instant("stub", "anand.relay_down", k_.name(), std::move(ids));
  }
  // Stop forwarding first: "the server then writes a VCI_SHUT message ...
  // so that no more data is forwarded to the remote host on that VCI."
  if (auto it = vci_host_.find(m.vci); it != vci_host_.end()) {
    (void)k_.proto_atm_vci_shut(pid_, ctl_fd_, m.vci);
    vci_host_.erase(it);
  }
  if (!m.machine.valid() || m.machine == k_.ip_node().address()) {
    // Local: write the router's pseudo-device; its write routine calls
    // soisdisconnected().
    (void)k_.anand_write(pid_, anand_fd_,
                         kern::AnandDownMsg{kern::AnandDownType::disconnect_socket,
                                            m.vci});
    return;
  }
  // Remote: relay to the anand client on that host.
  for (auto& [fd, c] : conns_) {
    if (!c.is_sighost && c.client_ip == m.machine) {
      send_to(fd, m);
      return;
    }
  }
}

void AnandServerStub::send_to(int fd, const StubMsg& m) {
  (void)k_.tcp_send(pid_, fd, serialize(m));
}

// ----------------------------------------------------------- AnandClientStub

AnandClientStub::AnandClientStub(kern::Kernel& host, ip::IpAddress router_ip,
                                 std::uint16_t server_port)
    : k_(host), router_ip_(router_ip), server_port_(server_port) {}

util::Result<void> AnandClientStub::start() {
  pid_ = k_.spawn("anand_client");

  // Boot-sequence duty: configure the host's IPPROTO_ATM forwarding router.
  auto ctl = k_.proto_atm_socket(pid_);
  if (!ctl) return ctl.error();
  (void)k_.proto_atm_set_router(pid_, *ctl, router_ip_);

  auto anand_fd = k_.open_anand(pid_);
  if (!anand_fd) return anand_fd.error();
  anand_fd_ = *anand_fd;

  auto fd = k_.tcp_connect(pid_, router_ip_, server_port_,
                           [this](util::Result<int> r) {
                             if (!r) {
                               server_fd_ = -1;
                               return;
                             }
                             framer_ = std::make_unique<StubFramer>(
                                 [this](const StubMsg& m) {
                                   if (m.type == StubMsg::Type::down_disconnect) {
                                     (void)k_.anand_write(
                                         pid_, anand_fd_,
                                         kern::AnandDownMsg{
                                             kern::AnandDownType::disconnect_socket,
                                             m.vci});
                                   }
                                 });
                             (void)k_.tcp_on_receive(
                                 pid_, server_fd_,
                                 [this](util::BytesView data) {
                                   if (framer_) framer_->feed(data);
                                 });
                             StubMsg hello;
                             hello.type = StubMsg::Type::hello_client;
                             (void)k_.tcp_send(pid_, server_fd_, serialize(hello));
                             // Deliver anything queued before the link came up.
                             drain_device();
                           });
  if (!fd) return fd.error();
  server_fd_ = *fd;

  (void)k_.anand_set_readable(pid_, anand_fd_, [this] { drain_device(); });
  return {};
}

void AnandClientStub::drain_device() {
  if (server_fd_ < 0) return;
  obs::Observability& o = k_.simulator().obs();
  for (;;) {
    auto msg = k_.anand_read(pid_, anand_fd_);
    if (!msg) return;
    if (XOBS_TRACING(&o)) {
      obs::TraceIds ids;
      ids.vci = msg->vci;
      ids.pid = pid_;
      o.instant("stub", "anand.relay_up", k_.name(), std::move(ids));
    }
    StubMsg m;
    m.up_type = msg->type;
    m.vci = msg->vci;
    m.cookie = msg->cookie;
    m.machine = k_.ip_node().address();
    (void)k_.tcp_send(pid_, server_fd_, serialize(m));
  }
}

}  // namespace xunet::sig
