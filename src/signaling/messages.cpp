#include "signaling/messages.hpp"

namespace xunet::sig {

using util::Errc;

std::string_view to_string(MsgType t) noexcept {
  switch (t) {
    case MsgType::export_srv: return "EXPORT_SRV";
    case MsgType::service_regs: return "SERVICE_REGS";
    case MsgType::withdraw_srv: return "WITHDRAW_SRV";
    case MsgType::incoming_conn: return "INCOMING_CONN";
    case MsgType::accept_conn: return "ACCEPT_CONN";
    case MsgType::reject_conn: return "REJECT_CONN";
    case MsgType::vci_for_conn: return "VCI_FOR_CONN";
    case MsgType::connect_req: return "CONNECT_REQ";
    case MsgType::req_id: return "REQ_ID";
    case MsgType::cancel_req: return "CANCEL_REQ";
    case MsgType::conn_failed: return "CONN_FAILED";
    case MsgType::peer_setup: return "PEER_SETUP";
    case MsgType::peer_accept: return "PEER_ACCEPT";
    case MsgType::peer_reject: return "PEER_REJECT";
    case MsgType::peer_established: return "PEER_ESTABLISHED";
    case MsgType::peer_bound: return "PEER_BOUND";
    case MsgType::peer_setup_failed: return "PEER_SETUP_FAILED";
    case MsgType::peer_teardown: return "PEER_TEARDOWN";
    case MsgType::peer_cancel: return "PEER_CANCEL";
  }
  return "?";
}

util::Buffer serialize(const Msg& m) {
  util::Writer w;
  w.u8(static_cast<std::uint8_t>(m.type));
  w.u32(m.req_id);
  w.u16(m.cookie);
  w.u16(m.vci);
  w.u16(m.port);
  w.u8(m.error);
  w.lp_string(m.service);
  w.lp_string(m.qos);
  w.lp_string(m.dst);
  w.lp_string(m.comment);
  return w.take();
}

util::Result<Msg> parse_msg(util::BytesView wire) {
  util::Reader r(wire);
  Msg m;
  auto type = r.u8();
  auto req_id = r.u32();
  auto cookie = r.u16();
  auto vci = r.u16();
  auto port = r.u16();
  auto error = r.u8();
  if (!type || !req_id || !cookie || !vci || !port || !error) {
    return Errc::protocol_error;
  }
  if (*type < static_cast<std::uint8_t>(MsgType::export_srv) ||
      *type > static_cast<std::uint8_t>(MsgType::peer_cancel)) {
    return Errc::protocol_error;
  }
  m.type = static_cast<MsgType>(*type);
  m.req_id = *req_id;
  m.cookie = *cookie;
  m.vci = *vci;
  m.port = *port;
  m.error = *error;
  auto service = r.lp_string();
  auto qos = r.lp_string();
  auto dst = r.lp_string();
  auto comment = r.lp_string();
  if (!service || !qos || !dst || !comment || !r.exhausted()) {
    return Errc::protocol_error;
  }
  m.service = std::move(*service);
  m.qos = std::move(*qos);
  m.dst = std::move(*dst);
  m.comment = std::move(*comment);
  return m;
}

util::Buffer frame(const Msg& m) {
  util::Buffer body = serialize(m);
  util::Writer w;
  w.u16(static_cast<std::uint16_t>(body.size()));
  w.bytes(body);
  return w.take();
}

void MsgFramer::feed(util::BytesView chunk) {
  pending_.insert(pending_.end(), chunk.begin(), chunk.end());
  for (;;) {
    if (pending_.size() < 2) return;
    std::size_t len = static_cast<std::size_t>(pending_[0]) << 8 | pending_[1];
    if (pending_.size() < 2 + len) return;
    auto parsed = parse_msg({pending_.data() + 2, len});
    pending_.erase(pending_.begin(),
                   pending_.begin() + static_cast<long>(2 + len));
    if (parsed) {
      on_msg_(*parsed);
    } else if (on_err_) {
      on_err_(parsed.error());
    }
  }
}

}  // namespace xunet::sig
