#include "signaling/messages.hpp"

namespace xunet::sig {

using util::Errc;

std::string_view to_string(MsgType t) noexcept {
  switch (t) {
    case MsgType::export_srv: return "EXPORT_SRV";
    case MsgType::service_regs: return "SERVICE_REGS";
    case MsgType::withdraw_srv: return "WITHDRAW_SRV";
    case MsgType::incoming_conn: return "INCOMING_CONN";
    case MsgType::accept_conn: return "ACCEPT_CONN";
    case MsgType::reject_conn: return "REJECT_CONN";
    case MsgType::vci_for_conn: return "VCI_FOR_CONN";
    case MsgType::connect_req: return "CONNECT_REQ";
    case MsgType::req_id: return "REQ_ID";
    case MsgType::cancel_req: return "CANCEL_REQ";
    case MsgType::conn_failed: return "CONN_FAILED";
    case MsgType::peer_setup: return "PEER_SETUP";
    case MsgType::peer_accept: return "PEER_ACCEPT";
    case MsgType::peer_reject: return "PEER_REJECT";
    case MsgType::peer_established: return "PEER_ESTABLISHED";
    case MsgType::peer_bound: return "PEER_BOUND";
    case MsgType::peer_setup_failed: return "PEER_SETUP_FAILED";
    case MsgType::peer_teardown: return "PEER_TEARDOWN";
    case MsgType::peer_cancel: return "PEER_CANCEL";
    case MsgType::peer_ack: return "PEER_ACK";
    case MsgType::peer_resync: return "PEER_RESYNC";
    case MsgType::peer_resync_ack: return "PEER_RESYNC_ACK";
    case MsgType::peer_resync_info: return "PEER_RESYNC_INFO";
  }
  return "?";
}

namespace {

// Fletcher-16 over the message body.  The peer PVCs are datagram sockets:
// a corrupted cell that slips past (or is injected above) the AAL5 CRC
// must never parse into a plausible message — a flipped bit in `seq`
// would acknowledge a message that was never delivered and silently
// remove it from the retransmit queue.  Detected corruption is loss, and
// loss is what the reliable-delivery layer already handles.
std::uint16_t fletcher16(util::BytesView data) {
  std::uint32_t a = 0, b = 0;
  for (std::uint8_t byte : data) {
    a = (a + byte) % 255;
    b = (b + a) % 255;
  }
  return static_cast<std::uint16_t>((b << 8) | a);
}

}  // namespace

util::Buffer serialize(const Msg& m) {
  util::Writer w;
  w.u8(static_cast<std::uint8_t>(m.type));
  w.u32(m.req_id);
  w.u32(m.seq);
  w.u16(m.cookie);
  w.u16(m.vci);
  w.u16(m.vci2);
  w.u16(m.port);
  w.u8(m.error);
  w.u64(m.trace_id);
  w.u64(m.parent_span);
  w.lp_string(m.service);
  w.lp_string(m.qos);
  w.lp_string(m.dst);
  w.lp_string(m.comment);
  util::Buffer body = w.take();
  util::Writer out;
  out.u16(fletcher16(body));
  out.bytes(body);
  return out.take();
}

util::Result<Msg> parse_msg(util::BytesView wire) {
  util::Reader r(wire);
  auto sum = r.u16();
  if (!sum) return Errc::protocol_error;
  if (*sum != fletcher16(wire.subspan(2))) return Errc::protocol_error;
  Msg m;
  auto type = r.u8();
  auto req_id = r.u32();
  auto seq = r.u32();
  auto cookie = r.u16();
  auto vci = r.u16();
  auto vci2 = r.u16();
  auto port = r.u16();
  auto error = r.u8();
  auto trace_id = r.u64();
  auto parent_span = r.u64();
  if (!type || !req_id || !seq || !cookie || !vci || !vci2 || !port || !error ||
      !trace_id || !parent_span) {
    return Errc::protocol_error;
  }
  if (*type < static_cast<std::uint8_t>(MsgType::export_srv) ||
      *type > static_cast<std::uint8_t>(MsgType::peer_resync_info)) {
    return Errc::protocol_error;
  }
  m.type = static_cast<MsgType>(*type);
  m.req_id = *req_id;
  m.seq = *seq;
  m.cookie = *cookie;
  m.vci = *vci;
  m.vci2 = *vci2;
  m.port = *port;
  m.error = *error;
  m.trace_id = *trace_id;
  m.parent_span = *parent_span;
  auto service = r.lp_string();
  auto qos = r.lp_string();
  auto dst = r.lp_string();
  auto comment = r.lp_string();
  if (!service || !qos || !dst || !comment || !r.exhausted()) {
    return Errc::protocol_error;
  }
  m.service = std::move(*service);
  m.qos = std::move(*qos);
  m.dst = std::move(*dst);
  m.comment = std::move(*comment);
  return m;
}

util::Buffer frame(const Msg& m) {
  util::Buffer body = serialize(m);
  util::Writer w;
  w.u16(static_cast<std::uint16_t>(body.size()));
  w.bytes(body);
  return w.take();
}

void MsgFramer::feed(util::BytesView chunk) {
  pending_.insert(pending_.end(), chunk.begin(), chunk.end());
  for (;;) {
    if (pending_.size() < 2) return;
    std::size_t len = static_cast<std::size_t>(pending_[0]) << 8 | pending_[1];
    if (pending_.size() < 2 + len) return;
    auto parsed = parse_msg({pending_.data() + 2, len});
    pending_.erase(pending_.begin(),
                   pending_.begin() + static_cast<long>(2 + len));
    if (parsed) {
      on_msg_(*parsed);
    } else if (on_err_) {
      on_err_(parsed.error());
    }
  }
}

}  // namespace xunet::sig
