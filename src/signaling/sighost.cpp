#include "signaling/sighost.hpp"

#include <cassert>

namespace xunet::sig {

using util::Errc;

Sighost::Sighost(kern::Kernel& router, atm::AtmNetwork& net,
                 SighostConfig cfg)
    : k_(router), net_(net), cfg_(cfg), cookies_(cfg.cookie_seed),
      rng_(cfg.retransmit_seed),
      obs_(&router.simulator().obs()),
      // Shard 0 keeps the router's bare name so single-shard topologies
      // (the default) produce byte-identical metric names and traces.
      track_(router.atm_address().name +
             (cfg.shard_id > 0 ? ".s" + std::to_string(cfg.shard_id)
                               : std::string{})) {
  obs::MetricsRegistry& mx = obs_->metrics();
  m_maint_records_ = &mx.counter("sighost." + track_ + ".maint.records");
  m_maint_records_all_ = &mx.counter("sighost.maint.records");
  m_established_ = &mx.counter("sighost." + track_ + ".calls.established");
  m_torn_down_ = &mx.counter("sighost." + track_ + ".calls.torn_down");
  m_retransmits_ = &mx.counter("sighost." + track_ + ".peer.retransmits");
  m_dup_suppressed_ = &mx.counter("sighost." + track_ + ".peer.dup_suppressed");
  m_sheds_ = &mx.counter("sighost." + track_ + ".overload.sheds");
  m_recovered_ = &mx.counter("sighost." + track_ + ".recovery.calls");
  // Sketch-backed: this histogram is always on and grows with call count,
  // so it must not hoard samples at the roadmap's 10⁶-call scale.  Benches
  // that need exact percentiles keep their own exact-kind histograms.
  m_setup_us_ = &mx.histogram("sighost." + track_ + ".setup.latency_us",
                              obs::Histogram::Kind::sketch);
  static constexpr const char* kLists[5] = {
      "service_list", "outgoing_requests", "incoming_requests",
      "wait_for_bind", "vci_mapping"};
  for (int i = 0; i < 5; ++i) {
    m_lists_[i] = &mx.gauge("sighost." + track_ + ".list." + kLists[i]);
  }
}

Sighost::~Sighost() = default;

util::Result<void> Sighost::start() {
  pid_ = k_.spawn("sighost");

  // Allocate request ids (and resync nonces) from this incarnation's own
  // band.  A counter restarting at 1 after a crash would re-mint call keys
  // like "mh.rt#2" that peers still hold for calls the previous life
  // established and recovery preserved — and a timeout on the *new* call
  // would then tear the *old* call's record out of the peer, orphaning its
  // network VC.  (Found by the chaos harness; see chaos_test.cpp.)
  const std::uint32_t inc = k_.next_sighost_incarnation() - 1;
  next_req_ = 1 + (static_cast<ReqId>(inc) << kReqIdIncarnationShift);
  next_resync_nonce_ = 1 + (inc << kReqIdIncarnationShift);

  // Shard s of a router listens on port + s; the user library picks the
  // owning shard for a call by the same residue arithmetic the kernel uses.
  auto lfd = k_.tcp_listen(pid_,
                           static_cast<std::uint16_t>(cfg_.port + cfg_.shard_id),
                           [this](int fd) { on_app_accept(fd); });
  if (!lfd) return lfd.error();
  listen_fd_ = *lfd;

  // Attach to the anand server for kernel-state indications.
  auto afd = k_.tcp_connect(
      pid_, k_.ip_node().address(), cfg_.anand_server_port,
      [this](util::Result<int> r) {
        if (!r) return;  // no anand server: indications will be unavailable
        stub_framer_ = std::make_unique<StubFramer>(
            [this](const StubMsg& m) { on_stub_msg(m); });
        (void)k_.tcp_on_receive(pid_, anand_fd_, [this](util::BytesView data) {
          stub_framer_->feed(data);
        });
        StubMsg hello;
        hello.type = StubMsg::Type::hello_sighost;
        // Sharding handshake: the anand server demuxes switched-VCI
        // indications to the shard owning vci % shard_count.
        hello.vci = cfg_.shard_id;
        hello.cookie = cfg_.shard_count;
        (void)k_.tcp_send(pid_, anand_fd_, serialize(hello));
      });
  if (!afd) return afd.error();
  anand_fd_ = *afd;
  return {};
}

util::Result<void> Sighost::add_peer(const atm::AtmAddress& peer,
                                     atm::Vci send_vci, atm::Vci recv_vci) {
  if (peers_.contains(peer.name)) return Errc::duplicate;
  auto send_fd = k_.xunet_socket(pid_);
  if (!send_fd) return send_fd.error();
  auto recv_fd = k_.xunet_socket(pid_);
  if (!recv_fd) return recv_fd.error();

  pvc_vcis_.insert(send_vci);
  pvc_vcis_.insert(recv_vci);
  if (auto r = k_.xunet_connect(pid_, *send_fd, send_vci, 0); !r) return r;
  if (auto r = k_.xunet_bind(pid_, *recv_fd, recv_vci, 0); !r) return r;

  std::string name = peer.name;
  (void)k_.xunet_on_receive(pid_, *recv_fd, [this, name](util::BytesView data) {
    auto m = parse_msg(data);
    if (!m) {
      // A corrupted signaling frame that slipped past (or was injected
      // above) the AAL5 CRC: count it and rely on retransmission.
      ++stats_.peer_parse_errors;
      return;
    }
    on_peer_msg(name, *m);
  });
  Peer p;
  p.addr = peer;
  p.send_fd = *send_fd;
  p.recv_fd = *recv_fd;
  p.send_vci = send_vci;
  p.recv_vci = recv_vci;
  peers_.emplace(name, std::move(p));
  return {};
}

// ------------------------------------------------- reliable peer delivery

bool Sighost::sequenced(MsgType t) noexcept {
  // Everything call-related is sequenced; the ack and the resync handshake
  // carry their own correlation and must bypass duplicate suppression
  // (after a restart the two sides disagree about sequence state).
  return (t >= MsgType::peer_setup && t <= MsgType::peer_cancel) ||
         t == MsgType::peer_resync_info;
}

sim::SimDuration Sighost::backoff(int attempts) {
  sim::SimDuration d = cfg_.retransmit_base * (std::int64_t{1} << attempts);
  if (cfg_.retransmit_jitter.ns() > 0) {
    d += sim::nanoseconds(static_cast<std::int64_t>(
        rng_.below(static_cast<std::uint64_t>(cfg_.retransmit_jitter.ns()))));
  }
  return d;
}

void Sighost::wire_send(int send_fd, const Msg& m) {
  (void)k_.xunet_send(pid_, send_fd, serialize(m));
}

void Sighost::transmit_peer(Peer& p, const Msg& m) {
  if (trace_) trace_("->" + p.addr.name, k_.atm_address().name, m);
  WireVerdict v;
  if (wire_fault_) v = wire_fault_(k_.atm_address().name, p.addr.name, m);
  switch (v.fault) {
    case WireFault::drop:
      return;
    case WireFault::duplicate:
      wire_send(p.send_fd, m);
      wire_send(p.send_fd, m);
      return;
    case WireFault::corrupt: {
      util::Buffer wire = serialize(m);
      wire[rng_.below(wire.size())] ^=
          static_cast<std::uint8_t>(1u << rng_.below(8));
      (void)k_.xunet_send(pid_, p.send_fd, wire);
      return;
    }
    case WireFault::delay:
      k_.simulator().schedule(
          v.delay, [this, guard = std::weak_ptr<char>(alive_),
                    send_fd = p.send_fd, m] {
            if (!guard.expired()) wire_send(send_fd, m);
          });
      return;
    case WireFault::deliver:
      break;
  }
  wire_send(p.send_fd, m);
}

void Sighost::queue_retransmit(const std::string& peer, const Msg& m) {
  Peer& p = peers_.at(peer);
  PendingTx tx;
  tx.msg = m;
  tx.timer = std::make_unique<sim::Timer>(k_.simulator());
  tx.timer->arm(backoff(0),
                [this, peer, seq = m.seq] { retransmit(peer, seq); });
  p.pending.emplace(m.seq, std::move(tx));
}

void Sighost::retransmit(const std::string& peer, std::uint32_t seq) {
  auto pit = peers_.find(peer);
  if (pit == peers_.end()) return;
  auto it = pit->second.pending.find(seq);
  if (it == pit->second.pending.end()) return;  // acked meanwhile
  PendingTx& tx = it->second;
  if (++tx.attempts >= cfg_.retransmit_max_attempts) {
    // Give up; the request/bind watchdog timers convert the silence into a
    // clean failure at the call level.
    ++stats_.retx_abandoned;
    pit->second.pending.erase(it);
    return;
  }
  ++stats_.retransmits;
  m_retransmits_->inc();
  XOBS_FLIGHT(obs_, "sighost", "peer.retx", track_,
              peer + " seq=" + std::to_string(seq));
  transmit_peer(pit->second, tx.msg);
  tx.timer->arm(backoff(tx.attempts),
                [this, peer, seq] { retransmit(peer, seq); });
}

bool Sighost::note_received(Peer& p, std::uint32_t seq) {
  if (seq <= p.recv_floor || p.recv_above.contains(seq)) return true;
  p.recv_above.insert(seq);
  while (p.recv_above.contains(p.recv_floor + 1)) {
    p.recv_above.erase(p.recv_floor + 1);
    ++p.recv_floor;
  }
  return false;
}

void Sighost::reset_channel(Peer& p) {
  p.next_seq = 1;
  p.pending.clear();  // Timer destructors cancel the pending retransmits.
  p.recv_floor = 0;
  p.recv_above.clear();
}

// ---------------------------------------------------------------- plumbing

void Sighost::maintenance_log(const std::string& what, const std::string& call,
                              std::function<void()> then,
                              std::uint64_t trace_id, obs::SpanId parent) {
  auto guarded = [guard = std::weak_ptr<char>(alive_),
                  then = std::move(then)] {
    if (!guard.expired()) then();
  };
  if (!cfg_.maintenance_logging) {
    k_.simulator().schedule(sim::SimDuration{}, std::move(guarded));
    return;
  }
  // The per-call maintenance record: §9 identifies writing it as the
  // dominant cost of call establishment.  sighost is a single-threaded
  // process, so logging work SERIALIZES: concurrent calls queue behind one
  // another (this pacing is what let the paper's 80-buffer pseudo-device
  // keep up with the 100-call burst).
  m_maint_records_->inc();
  m_maint_records_all_->inc();
  k_.simulator().logger().info("sighost@" + k_.atm_address().name, what);
  sim::SimTime now = k_.simulator().now();
  if (busy_until_ < now) busy_until_ = now;
  if (XOBS_TRACING(obs_)) {
    // The span covers when the write actually occupies the (serialized)
    // sighost process, which may start after queued predecessors finish.
    obs::TraceIds ids;
    ids.call_id = call;
    ids.trace_id = trace_id;
    ids.parent_span = parent;
    obs_->trace().complete(busy_until_, cfg_.per_call_log_cost, "sighost",
                           "maint.log", track_, std::move(ids));
  }
  busy_until_ = busy_until_ + cfg_.per_call_log_cost;
  k_.simulator().schedule_at(busy_until_, std::move(guarded));
}

void Sighost::fsm(const char* what, const std::string& call, std::int64_t vci,
                  std::int64_t fd) {
  // FSM transitions feed the flight recorder unconditionally — that ring is
  // the post-mortem when a fault fires with tracing off.
  XOBS_FLIGHT(obs_, "sighost", what, track_, call, vci);
  if (!XOBS_TRACING(obs_)) return;
  obs::TraceIds ids;
  ids.call_id = call;
  ids.vci = vci;
  ids.fd = fd;
  obs_->instant("sighost", what, track_, std::move(ids));
}

void Sighost::record_lists() {
  const std::size_t sizes[5] = {services_.size(), outgoing_.size(),
                                incoming_.size(), wait_bind_.size(),
                                vci_map_.size()};
  static constexpr const char* kNames[5] = {
      "lists.service_list", "lists.outgoing_requests",
      "lists.incoming_requests", "lists.wait_for_bind", "lists.vci_mapping"};
  for (int i = 0; i < 5; ++i) {
    m_lists_[i]->set(static_cast<std::int64_t>(sizes[i]));
    XOBS_COUNTER(obs_, "sighost", kNames[i], track_,
                 static_cast<double>(sizes[i]));
  }
}

void Sighost::end_setup_trace(ReqId id) {
  auto it = setup_trace_.find(id);
  if (it == setup_trace_.end()) return;
  m_setup_us_->observe((k_.simulator().now() - it->second.begin).us());
  XOBS_END(obs_, it->second.span);
  setup_trace_.erase(it);
}

void Sighost::end_serve_trace(const std::string& key) {
  auto it = serve_trace_.find(key);
  if (it == serve_trace_.end()) return;
  XOBS_END(obs_, it->second.span);
  serve_trace_.erase(it);
}

void Sighost::send_app(int fd, const Msg& m) {
  if (trace_) trace_("->app", k_.atm_address().name, m);
  (void)k_.tcp_send(pid_, fd, frame(m));
}

void Sighost::send_peer(const std::string& peer, const Msg& m) {
  auto it = peers_.find(peer);
  if (it == peers_.end()) return;
  Msg out = m;
  if (cfg_.reliable_peer_delivery && sequenced(m.type)) {
    out.seq = it->second.next_seq++;
    queue_retransmit(peer, out);
  }
  transmit_peer(it->second, out);
}

void Sighost::on_app_accept(int fd) {
  AppConn c;
  c.fd = fd;
  c.framer = std::make_unique<MsgFramer>(
      [this, fd](const Msg& m) { on_app_msg(fd, m); });
  app_conns_.emplace(fd, std::move(c));
  (void)k_.tcp_on_receive(pid_, fd, [this, fd](util::BytesView data) {
    if (auto it = app_conns_.find(fd); it != app_conns_.end()) {
      it->second.framer->feed(data);
    }
  });
  (void)k_.tcp_on_close(pid_, fd,
                        [this, fd](util::Errc) { on_app_conn_closed(fd); });
}

void Sighost::on_app_conn_closed(int fd) {
  auto it = app_conns_.find(fd);
  if (it != app_conns_.end()) {
    // The requester vanished with requests outstanding: withdraw them so no
    // network or peer state stays pinned (§4: frugal use of resources).
    std::set<ReqId> reqs = std::move(it->second.reqs);
    app_conns_.erase(it);
    for (ReqId id : reqs) {
      auto oit = outgoing_.find(id);
      if (oit == outgoing_.end()) continue;
      cookies_.discard(oit->second.client_cookie);
      Msg cancel;
      cancel.type = MsgType::peer_cancel;
      cancel.req_id = id;
      send_peer(oit->second.dst_name, cancel);
      outgoing_.erase(oit);
    }
  }
  (void)k_.close(pid_, fd);
}

void Sighost::on_app_msg(int fd, const Msg& m) {
  if (trace_) trace_("<-app", k_.atm_address().name, m);
  switch (m.type) {
    case MsgType::export_srv: handle_export_srv(fd, m); break;
    case MsgType::withdraw_srv: handle_withdraw_srv(fd, m); break;
    case MsgType::connect_req: handle_connect_req(fd, m); break;
    case MsgType::cancel_req: handle_cancel_req(fd, m); break;
    default:
      // Anything else on an application connection is a protocol violation;
      // robustness demands we ignore it rather than die (§4).
      break;
  }
}

void Sighost::on_peer_msg(const std::string& peer, const Msg& m) {
  if (trace_) trace_("<-" + peer, k_.atm_address().name, m);
  if (auto pit = peers_.find(peer); pit != peers_.end()) {
    Peer& p = pit->second;
    if (m.type == MsgType::peer_ack) {
      p.pending.erase(m.seq);  // Timer destructor cancels the retransmit.
      return;
    }
    if (m.seq != 0 && cfg_.reliable_peer_delivery) {
      // Ack first (even for duplicates: the original ack may have been the
      // frame that was lost), then suppress redelivery.
      Msg ack;
      ack.type = MsgType::peer_ack;
      ack.seq = m.seq;
      transmit_peer(p, ack);
      if (note_received(p, m.seq)) {
        ++stats_.dup_suppressed;
        m_dup_suppressed_->inc();
        return;
      }
    }
  }
  switch (m.type) {
    case MsgType::peer_setup: handle_peer_setup(peer, m); break;
    case MsgType::peer_accept: handle_peer_accept(peer, m); break;
    case MsgType::peer_reject: handle_peer_reject(peer, m); break;
    case MsgType::peer_established: handle_peer_established(peer, m); break;
    case MsgType::peer_bound: handle_peer_bound(peer, m); break;
    case MsgType::peer_setup_failed: handle_peer_setup_failed(peer, m); break;
    case MsgType::peer_teardown: handle_peer_teardown(peer, m); break;
    case MsgType::peer_cancel: handle_peer_cancel(peer, m); break;
    case MsgType::peer_resync: handle_peer_resync(peer, m); break;
    case MsgType::peer_resync_ack: handle_peer_resync_ack(peer, m); break;
    case MsgType::peer_resync_info: handle_peer_resync_info(peer, m); break;
    default: break;
  }
}

void Sighost::on_stub_msg(const StubMsg& m) {
  if (m.type == StubMsg::Type::up_indication) handle_indication(m);
}

// -------------------------------------------------- application-side flows

void Sighost::handle_export_srv(int fd, const Msg& m) {
  if (m.service.empty() || m.port == 0) {
    Msg fail;
    fail.type = MsgType::conn_failed;
    fail.error = static_cast<std::uint8_t>(Errc::invalid_argument);
    send_app(fd, fail);
    return;
  }
  Service svc;
  svc.server_ip = k_.tcp_peer(pid_, fd);
  svc.notify_port = m.port;
  services_[m.service] = svc;
  ++stats_.services_registered;
  record_lists();
  // Registration writes only a one-line record, not the heavyweight
  // per-call maintenance information: §9 measures 17–20 ms for this RPC and
  // attributes essentially all of it to the four context switches.
  k_.simulator().logger().info("sighost@" + k_.atm_address().name,
                               "EXPORT_SRV " + m.service);
  Msg ack;
  ack.type = MsgType::service_regs;
  ack.service = m.service;
  send_app(fd, ack);
}

void Sighost::handle_withdraw_srv(int fd, const Msg& m) {
  // Only the machine that registered a service may withdraw it (the same
  // trust boundary as registration itself).
  auto it = services_.find(m.service);
  if (it != services_.end() && it->second.server_ip == k_.tcp_peer(pid_, fd)) {
    services_.erase(it);
    record_lists();
    k_.simulator().logger().info("sighost@" + k_.atm_address().name,
                                 "WITHDRAW_SRV " + m.service);
  }
  Msg ack;
  ack.type = MsgType::service_regs;
  ack.service = m.service;
  send_app(fd, ack);
}

void Sighost::handle_connect_req(int fd, const Msg& m) {
  auto ac = app_conns_.find(fd);
  // Idempotency: a client stub that retries CONNECT_REQ stamps it with a
  // nonce (in req_id); a duplicate gets the original REQ_ID reply back and
  // never mints a second request (or, later, a second VC).
  if (m.req_id != 0 && ac != app_conns_.end()) {
    if (auto nit = ac->second.nonce_replies.find(m.req_id);
        nit != ac->second.nonce_replies.end()) {
      send_app(fd, nit->second);
      return;
    }
  }
  // Bounded-queue overload shedding: at capacity, fail fast with a busy
  // cause instead of letting outgoing_requests grow without bound.
  if (outgoing_.size() >= cfg_.max_outgoing_requests) {
    ++stats_.sheds;
    m_sheds_->inc();
    XOBS_FLIGHT(obs_, "sighost", "overload.shed", track_,
                "outgoing_requests at cap", -1);
    ReqId id = next_req_++;
    Msg reply;
    reply.type = MsgType::req_id;
    reply.req_id = id;
    reply.dst = k_.atm_address().name;
    send_app(fd, reply);
    Msg fail;
    fail.type = MsgType::conn_failed;
    fail.req_id = id;
    fail.error = static_cast<std::uint8_t>(Errc::no_buffer_space);
    send_app(fd, fail);
    return;
  }
  ReqId id = next_req_++;
  Cookie cookie = cookies_.mint();
  const std::string key = call_key(k_.atm_address().name, id);
  // Originator-side end-to-end setup: CONNECT_REQ in → VCI_FOR_CONN out.
  SetupTrace st;
  st.begin = k_.simulator().now();
  st.trace_id = m.trace_id;  // minted by the client stub; 0 when untraced
  if (XOBS_TRACING(obs_)) {
    obs::TraceIds ids;
    ids.call_id = key;
    ids.fd = fd;
    // Causal link: the CONNECT_REQ carries the stub's trace id and its
    // "call.open" span, making this hop a child of the client's.
    ids.trace_id = m.trace_id;
    ids.parent_span = m.parent_span;
    st.span = obs_->begin("sighost", "call.setup", track_, std::move(ids));
  }
  setup_trace_.emplace(id, st);
  fsm("fsm.connect_req", key, -1, fd);
  Outgoing out;
  out.id = id;
  out.client_fd = fd;
  out.dst_name = m.dst;
  out.service = m.service;
  out.qos = m.qos;
  out.client_cookie = cookie;
  out.timer = std::make_unique<sim::Timer>(k_.simulator());
  out.timer->arm(cfg_.request_timeout, [this, id] {
    // The peer never answered (partition, dead sighost, lost PVC): fail the
    // request back to the client and withdraw it from the peer.
    auto oit = outgoing_.find(id);
    if (oit == outgoing_.end()) return;
    ++stats_.request_timeouts;
    Msg cancel;
    cancel.type = MsgType::peer_cancel;
    cancel.req_id = id;
    send_peer(oit->second.dst_name, cancel);
    fail_outgoing(id, Errc::timed_out);
  });
  outgoing_.emplace(id, std::move(out));
  if (auto it = app_conns_.find(fd); it != app_conns_.end()) {
    it->second.reqs.insert(id);
  }

  Msg reply;
  reply.type = MsgType::req_id;
  reply.req_id = id;
  reply.cookie = cookie;
  // The originating sighost's name rides along so the client stub can form
  // the end-to-end call key ("origin#req_id") for its own trace spans.
  reply.dst = k_.atm_address().name;
  if (m.req_id != 0 && ac != app_conns_.end()) {
    AppConn& conn = ac->second;
    if (conn.nonce_replies.size() >= kNonceReplyCap) {
      // Evict the oldest nonce: a stub only ever retries its most recent
      // requests, so FIFO eviction keeps the idempotency window intact
      // without hoarding one reply per call forever.
      conn.nonce_replies.erase(conn.nonce_order.front());
      conn.nonce_order.pop_front();
    }
    if (conn.nonce_replies.emplace(m.req_id, reply).second) {
      conn.nonce_order.push_back(m.req_id);
    }
  }
  send_app(fd, reply);
  record_lists();

  maintenance_log("CONNECT_REQ " + m.dst + ":" + m.service, key,
                  [this, id, dst = m.dst, service = m.service, qos = m.qos,
                   comment = m.comment] {
                    auto oit = outgoing_.find(id);
                    if (oit == outgoing_.end() || oit->second.cancelled) return;
                    if (!peers_.contains(dst)) {
                      fail_outgoing(id, Errc::no_route);
                      return;
                    }
                    Msg setup;
                    setup.type = MsgType::peer_setup;
                    setup.req_id = id;
                    setup.service = service;
                    setup.qos = qos;
                    setup.comment = comment;
                    // Propagate the causal context: the remote sighost's
                    // serve span becomes a child of our call.setup span.
                    if (auto st2 = setup_trace_.find(id);
                        st2 != setup_trace_.end()) {
                      setup.trace_id = st2->second.trace_id;
                      setup.parent_span = st2->second.span;
                    }
                    send_peer(dst, setup);
                  },
                  st.trace_id, st.span);
}

void Sighost::handle_cancel_req(int fd, const Msg& m) {
  (void)fd;
  for (auto& [id, out] : outgoing_) {
    if (out.client_cookie == m.cookie && !out.cancelled) {
      out.cancelled = true;
      ++stats_.cancels;
      Msg cancel;
      cancel.type = MsgType::peer_cancel;
      cancel.req_id = id;
      send_peer(out.dst_name, cancel);
      fail_outgoing(id, Errc::cancelled);
      return;
    }
  }
}

// The per-call server connection: ACCEPT_CONN / REJECT_CONN arrive here.
void Sighost::handle_accept_conn(int fd, const Msg& m) {
  for (auto& [key, inc] : incoming_) {
    if (inc.server_fd != fd || inc.decided) continue;
    if (m.cookie != inc.server_cookie) return;  // wrong capability: ignore
    inc.decided = true;
    inc.qos = m.qos;  // the server may have modified the QoS
    Msg acc;
    acc.type = MsgType::peer_accept;
    acc.req_id = inc.id;
    acc.qos = m.qos;
    // Carry the causal context back to the originator: the VC install it
    // will now perform becomes a child of our call.serve span.
    if (auto sv = serve_trace_.find(key); sv != serve_trace_.end()) {
      acc.trace_id = sv->second.trace_id;
      acc.parent_span = sv->second.span;
    }
    send_peer(inc.origin, acc);
    return;
  }
}

void Sighost::handle_reject_conn(int fd, const Msg& m) {
  for (auto it = incoming_.begin(); it != incoming_.end(); ++it) {
    Incoming& inc = it->second;
    if (inc.server_fd != fd || inc.decided) continue;
    if (m.cookie != inc.server_cookie) return;
    ++stats_.rejects_sent;
    cookies_.discard(inc.server_cookie);
    Msg rej;
    rej.type = MsgType::peer_reject;
    rej.req_id = inc.id;
    rej.error = static_cast<std::uint8_t>(Errc::rejected);
    send_peer(inc.origin, rej);
    (void)k_.close(pid_, fd);
    end_serve_trace(it->first);
    incoming_.erase(it);
    return;
  }
}

// ------------------------------------------------------------- peer flows

void Sighost::handle_peer_setup(const std::string& origin, const Msg& m) {
  const std::string key = call_key(origin, m.req_id);
  // Idempotency: sequence numbers suppress wire duplicates, but a call that
  // is already in progress (or established) must never open a second
  // server connection or allocate a second VC, whatever arrives.
  if (incoming_.contains(key) || vci_for_call(key) != atm::kInvalidVci) return;
  // Bounded-queue overload shedding, callee side.
  if (incoming_.size() >= cfg_.max_incoming_requests) {
    ++stats_.sheds;
    m_sheds_->inc();
    XOBS_FLIGHT(obs_, "sighost", "overload.shed", track_,
                "incoming_requests at cap", -1);
    Msg rej;
    rej.type = MsgType::peer_reject;
    rej.req_id = m.req_id;
    rej.error = static_cast<std::uint8_t>(Errc::no_buffer_space);
    send_peer(origin, rej);
    return;
  }
  fsm("fsm.peer_setup", key);
  // Callee-side serve span: a child of the originator's call.setup (the
  // PEER_SETUP carried that span id), parent of the kernel VC install.
  if (XOBS_TRACING(obs_) && !serve_trace_.contains(key)) {
    obs::TraceIds ids;
    ids.call_id = key;
    ids.trace_id = m.trace_id;
    ids.parent_span = m.parent_span;
    ServeTrace sv;
    sv.trace_id = m.trace_id;
    sv.span = obs_->begin("sighost", "call.serve", track_, std::move(ids));
    serve_trace_.emplace(key, sv);
  }
  const ServeTrace serve = serve_trace_.count(key) ? serve_trace_[key]
                                                   : ServeTrace{};
  maintenance_log(
      "PEER_SETUP " + origin + "#" + std::to_string(m.req_id) + " " + m.service,
      call_key(origin, m.req_id), [this, origin, m] {
        const std::string key = call_key(origin, m.req_id);
        auto sit = services_.find(m.service);
        if (sit == services_.end()) {
          ++stats_.rejects_sent;
          Msg rej;
          rej.type = MsgType::peer_reject;
          rej.req_id = m.req_id;
          rej.error = static_cast<std::uint8_t>(Errc::not_found);
          send_peer(origin, rej);
          end_serve_trace(key);
          return;
        }
        // Forward the incoming call to the server over a fresh TCP
        // connection (§10: one descriptor per establishing call).
        Cookie cookie = cookies_.mint();
        auto fd = k_.tcp_connect(
            pid_, sit->second.server_ip, sit->second.notify_port,
            [this, origin, key, m](util::Result<int> r) {
              auto iit = incoming_.find(key);
              if (iit == incoming_.end()) return;  // cancelled meanwhile
              if (!r) {
                // Server unreachable (likely dead): decline the call.
                ++stats_.rejects_sent;
                cookies_.discard(iit->second.server_cookie);
                incoming_.erase(iit);
                Msg rej;
                rej.type = MsgType::peer_reject;
                rej.req_id = m.req_id;
                rej.error = static_cast<std::uint8_t>(Errc::connection_refused);
                send_peer(origin, rej);
                end_serve_trace(key);
                return;
              }
              int fd = *r;
              auto framer = std::make_shared<MsgFramer>([this, fd](const Msg& mm) {
                if (mm.type == MsgType::accept_conn) {
                  handle_accept_conn(fd, mm);
                } else if (mm.type == MsgType::reject_conn) {
                  handle_reject_conn(fd, mm);
                }
              });
              (void)k_.tcp_on_receive(pid_, fd,
                                      [framer](util::BytesView data) {
                                        framer->feed(data);
                                      });
              (void)k_.tcp_on_close(pid_, fd, [this, fd, key](util::Errc) {
                // Server closed (normal after establishment) or died.
                auto it2 = incoming_.find(key);
                if (it2 != incoming_.end() && it2->second.server_fd == fd &&
                    !it2->second.decided) {
                  ++stats_.rejects_sent;
                  cookies_.discard(it2->second.server_cookie);
                  Msg rej;
                  rej.type = MsgType::peer_reject;
                  rej.req_id = it2->second.id;
                  rej.error = static_cast<std::uint8_t>(Errc::connection_reset);
                  send_peer(it2->second.origin, rej);
                  incoming_.erase(it2);
                  end_serve_trace(key);
                }
                (void)k_.close(pid_, fd);
              });
              iit->second.server_fd = fd;
              Msg inc;
              inc.type = MsgType::incoming_conn;
              inc.cookie = iit->second.server_cookie;
              inc.qos = m.qos;
              inc.service = m.service;
              inc.comment = m.comment;
              // The originating sighost's address rides along so the server
              // can "establish a return connection to actually return a
              // file to the client" (§3) without an out-of-band convention.
              inc.dst = origin;
              send_app(fd, inc);
            });
        if (!fd) {
          ++stats_.rejects_sent;
          cookies_.discard(cookie);
          Msg rej;
          rej.type = MsgType::peer_reject;
          rej.req_id = m.req_id;
          rej.error = static_cast<std::uint8_t>(Errc::no_resources);
          send_peer(origin, rej);
          end_serve_trace(key);
          return;
        }
        Incoming inc;
        inc.origin = origin;
        inc.id = m.req_id;
        inc.server_fd = *fd;
        inc.server_cookie = cookie;
        inc.qos = m.qos;
        inc.service = m.service;
        // Watchdog: if neither PEER_ESTABLISHED nor PEER_SETUP_FAILED ever
        // arrives (lost to a partition), the record must not live forever.
        inc.timer = std::make_unique<sim::Timer>(k_.simulator());
        inc.timer->arm(cfg_.request_timeout, [this, key] {
          auto iit = incoming_.find(key);
          if (iit == incoming_.end()) return;
          ++stats_.request_timeouts;
          cookies_.discard(iit->second.server_cookie);
          Msg fail;
          fail.type = MsgType::conn_failed;
          fail.req_id = iit->second.id;
          fail.error = static_cast<std::uint8_t>(Errc::timed_out);
          send_app(iit->second.server_fd, fail);
          (void)k_.close(pid_, iit->second.server_fd);
          Msg rej;
          rej.type = MsgType::peer_reject;
          rej.req_id = iit->second.id;
          rej.error = static_cast<std::uint8_t>(Errc::timed_out);
          send_peer(iit->second.origin, rej);
          incoming_.erase(iit);
          end_serve_trace(key);
        });
        incoming_.emplace(key, std::move(inc));
        record_lists();
      },
      serve.trace_id, serve.span);
}

void Sighost::handle_peer_accept(const std::string& origin, const Msg& m) {
  auto oit = outgoing_.find(m.req_id);
  if (oit == outgoing_.end() || oit->second.cancelled) {
    // A late re-accept for a call that already established is not a dead
    // client: never answer it with a teardown.
    if (vci_for_call(call_key(k_.atm_address().name, m.req_id)) !=
        atm::kInvalidVci) {
      return;
    }
    // Client is gone or withdrew: unwind the callee's acceptance.
    Msg down;
    down.type = MsgType::peer_teardown;
    down.req_id = m.req_id;
    send_peer(origin, down);
    return;
  }
  establish_vc(m.req_id, m.qos, m.trace_id, m.parent_span);
}

void Sighost::establish_vc(ReqId req_id, const std::string& qos_granted,
                           std::uint64_t trace_id, std::uint64_t parent_span) {
  auto oit = outgoing_.find(req_id);
  assert(oit != outgoing_.end());
  const std::string dst = oit->second.dst_name;
  atm::Qos qos = atm::parse_qos(qos_granted).value_or(atm::Qos{});
  net_.setup_vc(
      k_.atm_address(), atm::AtmAddress{dst}, qos,
      [this, req_id, dst, qos_granted](util::Result<atm::VcHandle> r) {
        auto oit2 = outgoing_.find(req_id);
        if (oit2 == outgoing_.end() || oit2->second.cancelled) {
          if (r) (void)net_.teardown(r->id);
          Msg down;
          down.type = MsgType::peer_teardown;
          down.req_id = req_id;
          send_peer(dst, down);
          return;
        }
        if (!r) {
          ++stats_.setup_failures;
          Msg fail;
          fail.type = MsgType::peer_setup_failed;
          fail.req_id = req_id;
          fail.error = static_cast<std::uint8_t>(r.error());
          send_peer(dst, fail);
          fail_outgoing(req_id, r.error());
          return;
        }
        Outgoing out = std::move(oit2->second);
        outgoing_.erase(oit2);
        if (auto ac = app_conns_.find(out.client_fd); ac != app_conns_.end()) {
          ac->second.reqs.erase(req_id);
        }

        const atm::Vci vci = r->src_vci;
        // The network reuses VCIs; a record still parked on this one is a
        // relic of a teardown notification lost to a partition.  Reclaim it
        // before the new call takes the number (lazy reconciliation).
        if (vci_map_.contains(vci)) teardown_vci(vci, /*notify_peer=*/true);
        cookies_.bind_vci(vci, out.client_cookie);
        VciEntry e;
        e.call_key = call_key(k_.atm_address().name, req_id);
        e.req_id = req_id;
        e.originator = true;
        e.cookie = out.client_cookie;
        e.vc_id = r->id;
        e.peer = dst;
        e.qos = qos_granted;
        e.remote_vci = r->dst_vci;
        // "When the connection is actually established, a VCI_FOR_CONN
        // message is sent to the client" — actually established includes
        // the callee side having bound its socket, so the client's VCI is
        // held back until the callee reports PEER_BOUND.  Data can then
        // never outrun the receiver's bind.
        e.pending_client_fd = out.client_fd;
        vci_map_.emplace(vci, e);
        call_by_key_[e.call_key] = vci;
        load_wait_for_bind(vci, out.client_cookie);
        ++stats_.calls_established;
        m_established_->inc();
        fsm("fsm.established", e.call_key, vci);
        record_lists();

        Msg est;
        est.type = MsgType::peer_established;
        est.req_id = req_id;
        est.vci = r->dst_vci;
        // Our own VCI rides along so the callee can reconcile this call
        // with us if we later crash and restart.
        est.vci2 = r->src_vci;
        est.qos = qos_granted;
        send_peer(dst, est);
      },
      call_key(k_.atm_address().name, req_id), trace_id, parent_span,
      // Constrain both endpoint VCIs to this shard's residue class so the
      // callee-side indications and recovery land on the callee's shard s.
      atm::VciPartition{cfg_.shard_count, cfg_.shard_id});
}

void Sighost::handle_peer_reject(const std::string& origin, const Msg& m) {
  (void)origin;
  fail_outgoing(m.req_id, static_cast<Errc>(m.error));
}

void Sighost::handle_peer_established(const std::string& origin, const Msg& m) {
  std::string key = call_key(origin, m.req_id);
  auto iit = incoming_.find(key);
  if (iit == incoming_.end()) {
    // We no longer know this call (server died after accepting): unwind.
    Msg down;
    down.type = MsgType::peer_teardown;
    down.req_id = m.req_id;
    send_peer(origin, down);
    return;
  }
  Incoming inc = std::move(iit->second);
  incoming_.erase(iit);

  const atm::Vci vci = m.vci;
  // Same lazy reconciliation as the originator side: a stale record on a
  // reused VCI is torn down before the new call is recorded.
  if (vci_map_.contains(vci)) teardown_vci(vci, /*notify_peer=*/true);
  cookies_.bind_vci(vci, inc.server_cookie);
  VciEntry e;
  e.call_key = key;
  e.req_id = m.req_id;
  e.originator = false;
  e.cookie = inc.server_cookie;
  e.peer = origin;
  e.qos = m.qos;
  e.remote_vci = m.vci2;
  e.notify_origin_on_confirm = true;
  vci_map_.emplace(vci, e);
  call_by_key_[key] = vci;
  load_wait_for_bind(vci, inc.server_cookie);
  ++stats_.calls_established;
  m_established_->inc();
  fsm("fsm.established", key, vci);
  // The callee's serve obligation is met: close the call.serve span.
  end_serve_trace(key);
  record_lists();

  Msg vmsg;
  vmsg.type = MsgType::vci_for_conn;
  vmsg.req_id = m.req_id;
  vmsg.vci = vci;
  vmsg.cookie = inc.server_cookie;
  vmsg.qos = m.qos;
  send_app(inc.server_fd, vmsg);
}

void Sighost::handle_peer_bound(const std::string& origin, const Msg& m) {
  (void)origin;
  // We originated this call; the callee's server is now bound: release the
  // client's VCI_FOR_CONN.  The reverse index replaces what used to be a
  // full VCI_mapping walk per PEER_BOUND — O(n) per call, quadratic over a
  // call burst.
  std::string key = call_key(k_.atm_address().name, m.req_id);
  auto bit = call_by_key_.find(key);
  if (bit == call_by_key_.end()) return;
  const atm::Vci vci = bit->second;
  VciEntry* e = vci_map_.find(vci);
  if (e == nullptr || e->pending_client_fd < 0) return;
  Msg vmsg;
  vmsg.type = MsgType::vci_for_conn;
  vmsg.req_id = e->req_id;
  vmsg.vci = vci;
  vmsg.cookie = e->cookie;
  vmsg.qos = e->qos;
  send_app(e->pending_client_fd, vmsg);
  e->pending_client_fd = -1;
  fsm("fsm.peer_bound", key, vci);
  // The callee is bound and the client has its VCI: setup is complete
  // from the originating sighost's point of view.
  end_setup_trace(e->req_id);
}

void Sighost::handle_peer_setup_failed(const std::string& origin, const Msg& m) {
  std::string key = call_key(origin, m.req_id);
  auto iit = incoming_.find(key);
  if (iit == incoming_.end()) return;
  cookies_.discard(iit->second.server_cookie);
  Msg fail;
  fail.type = MsgType::conn_failed;
  fail.req_id = m.req_id;
  fail.error = m.error;
  send_app(iit->second.server_fd, fail);
  (void)k_.close(pid_, iit->second.server_fd);
  incoming_.erase(iit);
  end_serve_trace(key);
}

void Sighost::handle_peer_teardown(const std::string& origin, const Msg& m) {
  // The call key depends on who originated: try the sender's name (they
  // originated) then our own (we did).
  for (const std::string& key :
       {call_key(origin, m.req_id), call_key(k_.atm_address().name, m.req_id)}) {
    if (atm::Vci vci = vci_for_call(key); vci != atm::kInvalidVci) {
      teardown_vci(vci, /*notify_peer=*/false);
      return;
    }
    if (auto iit = incoming_.find(key); iit != incoming_.end()) {
      cookies_.discard(iit->second.server_cookie);
      Msg fail;
      fail.type = MsgType::conn_failed;
      fail.req_id = m.req_id;
      fail.error = static_cast<std::uint8_t>(Errc::connection_reset);
      send_app(iit->second.server_fd, fail);
      (void)k_.close(pid_, iit->second.server_fd);
      incoming_.erase(iit);
      end_serve_trace(key);
      return;
    }
  }
}

void Sighost::handle_peer_cancel(const std::string& origin, const Msg& m) {
  std::string key = call_key(origin, m.req_id);
  auto iit = incoming_.find(key);
  if (iit != incoming_.end()) {
    cookies_.discard(iit->second.server_cookie);
    Msg fail;
    fail.type = MsgType::conn_failed;
    fail.req_id = m.req_id;
    fail.error = static_cast<std::uint8_t>(Errc::cancelled);
    send_app(iit->second.server_fd, fail);
    (void)k_.close(pid_, iit->second.server_fd);
    incoming_.erase(iit);
    end_serve_trace(key);
    return;
  }
  // Already established here: a cancel this late is a teardown.
  if (atm::Vci vci = vci_for_call(key); vci != atm::kInvalidVci) {
    teardown_vci(vci, /*notify_peer=*/false);
  }
}

// ------------------------------------------------------ kernel indications

void Sighost::handle_indication(const StubMsg& m) {
  if (pvc_vcis_.contains(m.vci)) return;  // our own signaling sockets
  // Defense in depth: the anand server already demuxes switched-VCI
  // indications by residue class, but a non-owned one (e.g. replayed from
  // an artifact recorded under a different shard map) must still bounce.
  if (m.vci >= atm::kFirstSwitchedVci && !owns_vci(m.vci)) return;
  switch (m.up_type) {
    case kern::AnandUpType::bind_indication:
    case kern::AnandUpType::connect_indication:
      confirm_endpoint(m.vci, m.cookie, m.machine);
      break;
    case kern::AnandUpType::process_terminated:
      if (vci_map_.contains(m.vci)) {
        teardown_vci(m.vci, /*notify_peer=*/true);
      }
      break;
  }
}

void Sighost::confirm_endpoint(atm::Vci vci, Cookie cookie,
                               ip::IpAddress origin) {
  VciEntry* e = vci_map_.find(vci);
  if (e == nullptr) {
    // Stale indication: the call this bind/connect belongs to is already
    // gone.  Silently ignoring it would leave the endpoint's socket
    // bound/connected to a dead VCI forever (nothing else will ever
    // disconnect it) — answer with a downward disconnect so the kernel
    // marks the socket unusable and the app sees the failure.
    if (anand_fd_ >= 0) {
      StubMsg down;
      down.type = StubMsg::Type::down_disconnect;
      down.vci = vci;
      down.machine = origin;
      (void)k_.tcp_send(pid_, anand_fd_, serialize(down));
    }
    return;
  }
  if (!cookies_.authenticate(vci, cookie)) {
    // §7.1: authentication failure tears the call down and the socket is
    // marked unusable (the teardown's downward disconnect does that).
    ++stats_.auth_failures;
    teardown_vci(vci, /*notify_peer=*/true);
    return;
  }
  e->confirmed = true;
  e->endpoint_ip = origin;
  wait_bind_.erase(vci);  // Timer destructor cancels the pending expiry.
  if (e->notify_origin_on_confirm) {
    e->notify_origin_on_confirm = false;
    Msg bound;
    bound.type = MsgType::peer_bound;
    bound.req_id = e->req_id;
    send_peer(e->peer, bound);
  }
}

// ----------------------------------------------------------- call lifecycle

void Sighost::load_wait_for_bind(atm::Vci vci, Cookie cookie) {
  WaitBind wb;
  wb.cookie = cookie;
  wb.timer = std::make_unique<sim::Timer>(k_.simulator());
  wb.timer->arm(cfg_.wait_for_bind_timeout, [this, vci] {
    ++stats_.bind_timeouts;
    teardown_vci(vci, /*notify_peer=*/true);
  });
  wait_bind_.emplace(vci, std::move(wb));
}

void Sighost::fail_outgoing(ReqId id, Errc reason) {
  auto oit = outgoing_.find(id);
  if (oit == outgoing_.end()) return;
  Outgoing out = std::move(oit->second);
  outgoing_.erase(oit);
  cookies_.discard(out.client_cookie);
  fsm("fsm.conn_failed", call_key(k_.atm_address().name, id));
  end_setup_trace(id);
  record_lists();
  if (auto ac = app_conns_.find(out.client_fd); ac != app_conns_.end()) {
    ac->second.reqs.erase(id);
    Msg fail;
    fail.type = MsgType::conn_failed;
    fail.req_id = id;
    fail.cookie = out.client_cookie;
    fail.error = static_cast<std::uint8_t>(reason);
    send_app(out.client_fd, fail);
  }
}

std::string Sighost::management_report() const {
  std::string out = "sighost@" + k_.atm_address().name + "\n";
  out += "  service_list (" + std::to_string(services_.size()) + "):\n";
  for (const auto& [name, svc] : services_) {
    out += "    " + name + " -> " + ip::to_string(svc.server_ip) + ":" +
           std::to_string(svc.notify_port) + "\n";
  }
  out += "  outgoing_requests: " + std::to_string(outgoing_.size()) + "\n";
  out += "  incoming_requests: " + std::to_string(incoming_.size()) + "\n";
  out += "  wait_for_bind: " + std::to_string(wait_bind_.size()) + "\n";
  out += "  VCI_mapping (" + std::to_string(vci_map_.size()) + "):\n";
  vci_map_.for_each([&out](const atm::Vci& vci, const VciEntry& e) {
    out += "    vci=" + std::to_string(vci) + " call=" + e.call_key +
           (e.originator ? " (originator)" : " (callee)") +
           (e.confirmed ? " confirmed" : " unconfirmed") + " qos=<" + e.qos +
           ">\n";
  });
  const SighostStats& st = stats_;
  out += "  stats: established=" + std::to_string(st.calls_established) +
         " torn_down=" + std::to_string(st.calls_torn_down) +
         " rejects=" + std::to_string(st.rejects_sent) +
         " auth_failures=" + std::to_string(st.auth_failures) +
         " bind_timeouts=" + std::to_string(st.bind_timeouts) + "\n";
  out += "  reliability: retransmits=" + std::to_string(st.retransmits) +
         " dup_suppressed=" + std::to_string(st.dup_suppressed) +
         " abandoned=" + std::to_string(st.retx_abandoned) +
         " sheds=" + std::to_string(st.sheds) +
         " resyncs=" + std::to_string(st.resyncs) +
         " recovered=" + std::to_string(st.recovered_calls) +
         " orphans=" + std::to_string(st.orphans_torn_down) + "\n";
  return out;
}

Sighost::ListSnapshot Sighost::audit_snapshot() const {
  ListSnapshot snap;
  for (const auto& [name, svc] : services_) snap.services.push_back(name);
  for (const auto& [id, out] : outgoing_) {
    snap.outgoing_calls.push_back(call_key(k_.atm_address().name, id));
  }
  for (const auto& [key, inc] : incoming_) snap.incoming_calls.push_back(key);
  for (const auto& [vci, wb] : wait_bind_) snap.wait_for_bind.push_back(vci);
  vci_map_.for_each([&snap](const atm::Vci& vci, const VciEntry& e) {
    VciAuditEntry a;
    a.vci = vci;
    a.call_key = e.call_key;
    a.req_id = e.req_id;
    a.originator = e.originator;
    a.confirmed = e.confirmed;
    a.recovered = e.recovered;
    a.peer = e.peer;
    a.endpoint_ip = e.endpoint_ip;
    a.remote_vci = e.remote_vci;
    snap.vci_mapping.push_back(std::move(a));
  });
  // Every source is ordered (the trie iterates VCIs ascending), so the
  // vectors are already sorted.
  return snap;
}

atm::Vci Sighost::vci_for_call(const std::string& key) const {
  auto it = call_by_key_.find(key);
  return it == call_by_key_.end() ? atm::kInvalidVci : it->second;
}

void Sighost::teardown_vci(atm::Vci vci, bool notify_peer) {
  VciEntry* vp = vci_map_.find(vci);
  if (vp == nullptr) return;
  VciEntry e = *vp;
  vci_map_.erase(vci);
  if (!e.call_key.empty()) {
    auto cit = call_by_key_.find(e.call_key);
    if (cit != call_by_key_.end() && cit->second == vci) {
      call_by_key_.erase(cit);
    }
  }
  wait_bind_.erase(vci);
  cookies_.release_vci(vci);
  ++stats_.calls_torn_down;
  m_torn_down_->inc();
  fsm("fsm.teardown", e.call_key, vci);
  // A call that dies before the client ever saw its VCI still closes the
  // originator-side setup span (through the failure path below).
  if (e.originator) end_setup_trace(e.req_id);

  if (e.pending_client_fd >= 0 && app_conns_.contains(e.pending_client_fd)) {
    // The call died before the client ever saw its VCI.
    Msg fail;
    fail.type = MsgType::conn_failed;
    fail.req_id = e.req_id;
    fail.cookie = e.cookie;
    fail.error = static_cast<std::uint8_t>(Errc::connection_reset);
    send_app(e.pending_client_fd, fail);
  }
  if (e.originator && e.vc_id != 0) {
    (void)net_.teardown(e.vc_id);
  }
  if (notify_peer) {
    Msg down;
    down.type = MsgType::peer_teardown;
    down.req_id = e.req_id;
    send_peer(e.peer, down);
  }
  // Downward path: mark the endpoint's socket unusable (and, for VCIs bound
  // to IP hosts, the anand server also writes VCI_SHUT).
  if (anand_fd_ >= 0) {
    StubMsg down;
    down.type = StubMsg::Type::down_disconnect;
    down.vci = vci;
    down.machine = e.endpoint_ip;
    (void)k_.tcp_send(pid_, anand_fd_, serialize(down));
  }
  maintenance_log("TEARDOWN vci=" + std::to_string(vci), e.call_key, [] {});
  record_lists();
}

// ------------------------------------------------- crash-restart recovery

util::Result<void> Sighost::recover() {
  // §5.3 has the kernel report endpoint death to a live sighost; recovery
  // inverts the flow.  A reborn sighost interrogates the kernel (live
  // PF_XUNET bindings, with their cookies) and the network controller
  // (active VCs terminating here) and rebuilds VCI_mapping from their join:
  // a VC with a surviving socket is a call worth keeping; a VC without one
  // is an orphan.
  if (cfg_.recovery_skip_audit) {
    // Chaos-harness sabotage: pretend the audit ran and found nothing.
    // Every pre-crash call's socket and VC is now orphaned — exactly the
    // cross-layer divergence the InvariantChecker must catch.
    maintenance_log("RECOVER rebuilt 0 calls", "", [] {});
    record_lists();
    return {};
  }
  // A sharded sighost audits back only the VCIs in its own residue class;
  // sibling shards reconcile theirs.  (Sub-floor sockets stay in the map so
  // the leftover scan below can still skip them explicitly.)
  std::map<atm::Vci, kern::Kernel::XunetVciInfo> socks;
  for (const auto& s : k_.audit_xunet_vcis()) {
    if (s.vci >= atm::kFirstSwitchedVci && !owns_vci(s.vci)) continue;
    socks.emplace(s.vci, s);
  }
  std::size_t rebuilt = 0;
  for (const auto& vc : net_.audit_vcs(k_.atm_address())) {
    // Provisioned channels (signaling PVCs, IP-over-ATM) all live below the
    // switched-VCI floor and are not calls — never audit them back.
    if (vc.local_vci < atm::kFirstSwitchedVci) continue;
    if (!owns_vci(vc.local_vci)) continue;  // a sibling shard's call
    auto sit = socks.find(vc.local_vci);
    if (sit == socks.end()) {
      // The VC survived our crash but its endpoint socket did not.  Only
      // the originator holds the network handle; a callee-side orphan is
      // reclaimed when the peer's PEER_RESYNC_INFO draws PEER_TEARDOWN.
      if (vc.originator) {
        (void)net_.teardown(vc.id);
        ++stats_.orphans_torn_down;
      }
      continue;
    }
    VciEntry e;
    e.originator = vc.originator;
    e.cookie = sit->second.cookie;
    e.vc_id = vc.originator ? vc.id : 0;
    e.peer = vc.remote.name;
    e.confirmed = true;
    e.remote_vci = vc.remote_vci;
    e.recovered = true;  // call_key/req_id arrive via PEER_RESYNC_INFO
    cookies_.bind_vci(vc.local_vci, e.cookie);
    vci_map_.emplace(vc.local_vci, std::move(e));
    socks.erase(sit);
    ++rebuilt;
  }
  // The join's third case: a socket whose VC is gone.  The peer tore the
  // call down while we were dead (e.g. its own recovery grace expired with
  // us unreachable), so no resync will ever claim it and no data can reach
  // it — disconnect it now or it lingers bound forever.
  for (const auto& [vci, info] : socks) {
    if (vci < atm::kFirstSwitchedVci) continue;  // PVCs are not calls
    k_.mark_vci_disconnected(vci);
    ++stats_.orphans_torn_down;
  }
  maintenance_log("RECOVER rebuilt " + std::to_string(rebuilt) + " calls",
                  "", [] {});
  std::vector<std::string> names;
  names.reserve(peers_.size());
  for (const auto& [name, p] : peers_) names.push_back(name);
  for (const std::string& name : names) send_resync(name);
  if (rebuilt > 0) {
    recovery_grace_ = std::make_unique<sim::Timer>(k_.simulator());
    recovery_grace_->arm(cfg_.resync_grace,
                         [this] { expire_unclaimed_recoveries(); });
  }
  record_lists();
  return {};
}

void Sighost::send_resync(const std::string& peer) {
  auto it = peers_.find(peer);
  if (it == peers_.end()) return;
  Peer& p = it->second;
  if (p.resync_attempts == 0) {
    // First attempt: our reliable-channel state died with the old process,
    // so meet the peer at sequence zero.
    reset_channel(p);
    p.resync_nonce = next_resync_nonce_++;
  }
  Msg m;
  m.type = MsgType::peer_resync;
  m.req_id = p.resync_nonce;
  transmit_peer(p, m);
  if (++p.resync_attempts > cfg_.retransmit_max_attempts) return;
  if (!p.resync_timer)
    p.resync_timer = std::make_unique<sim::Timer>(k_.simulator());
  p.resync_timer->arm(backoff(p.resync_attempts - 1),
                      [this, peer] { send_resync(peer); });
}

void Sighost::handle_peer_resync(const std::string& origin, const Msg& m) {
  auto pit = peers_.find(origin);
  if (pit == peers_.end()) return;
  Peer& p = pit->second;
  Msg ack;
  ack.type = MsgType::peer_resync_ack;
  ack.req_id = m.req_id;
  if (m.req_id == p.last_resync_seen) {
    // Retried resync (our ack was lost).  Re-ack without resetting: the
    // RESYNC_INFOs from the first pass are sequenced and still retransmit.
    transmit_peer(p, ack);
    return;
  }
  p.last_resync_seen = m.req_id;
  ++stats_.resyncs;
  // The restarted side lost all sequence state; meet it at zero.  Requests
  // of ours that were in flight toward it die by their own watchdogs.
  reset_channel(p);
  transmit_peer(p, ack);
  // Report every established call we share with the restarted host so it
  // can restore call_key/req_id on the VCI entries it audited back.  The
  // trie iterates ascending, preserving the replay-pinned INFO order.
  vci_map_.for_each([&](const atm::Vci& vci, const VciEntry& e) {
    if (e.peer != origin || !e.confirmed || e.call_key.empty() ||
        e.remote_vci == atm::kInvalidVci) {
      return;
    }
    Msg info;
    info.type = MsgType::peer_resync_info;
    info.req_id = e.req_id;
    // call_key is "<originator>#<req_id>"; ship the originator name so the
    // restarted side can rebuild the key verbatim.
    info.dst = e.call_key.substr(0, e.call_key.find('#'));
    info.vci = e.remote_vci;  // their VCI for this call
    info.vci2 = vci;          // ours
    info.qos = e.qos;
    send_peer(origin, info);
  });
  maintenance_log("RESYNC from " + origin, "", [] {});
}

void Sighost::handle_peer_resync_ack(const std::string& origin, const Msg& m) {
  auto pit = peers_.find(origin);
  if (pit == peers_.end()) return;
  Peer& p = pit->second;
  if (m.req_id != p.resync_nonce) return;  // stale nonce
  p.resync_timer.reset();
  p.resync_attempts = 0;
  p.resync_nonce = 0;
}

void Sighost::handle_peer_resync_info(const std::string& origin, const Msg& m) {
  VciEntry* ep = vci_map_.find(m.vci);
  if (ep == nullptr) {
    // We audited no such call: the endpoint socket died with us.  Tell the
    // peer so it can release its half (and the VC, if it originated).
    Msg down;
    down.type = MsgType::peer_teardown;
    down.req_id = m.req_id;
    send_peer(origin, down);
    return;
  }
  VciEntry& e = *ep;
  if (!e.recovered || !e.call_key.empty()) return;  // already claimed
  e.call_key = call_key(m.dst, m.req_id);
  e.req_id = m.req_id;
  e.qos = m.qos;
  call_by_key_[e.call_key] = m.vci;
  if (e.remote_vci == atm::kInvalidVci) e.remote_vci = m.vci2;
  ++stats_.recovered_calls;
  m_recovered_->inc();
  fsm("fsm.recovered", e.call_key, static_cast<std::int64_t>(m.vci));
  maintenance_log("RECOVERED vci=" + std::to_string(m.vci), e.call_key,
                  [] {});
}

void Sighost::expire_unclaimed_recoveries() {
  // No peer claimed these audited entries within the grace window: either
  // the peer lost the call too, or it was never fully established.  Either
  // way nobody will route data over them again.
  std::vector<atm::Vci> stale;
  vci_map_.for_each([&stale](const atm::Vci& vci, const VciEntry& e) {
    if (e.recovered && e.call_key.empty()) stale.push_back(vci);
  });
  for (atm::Vci vci : stale) {
    ++stats_.orphans_torn_down;
    // No call_key means no req_id the peer could match — don't notify.
    teardown_vci(vci, /*notify_peer=*/false);
  }
}

}  // namespace xunet::sig
