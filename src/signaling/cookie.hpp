// cookie.hpp — per-VCI cookie capability table (§7.1).
//
// "sighost maintains a per-VCI table of cookies.  When an endpoint does a
// connect or an accept on a socket, it must supply the cookie provided to
// it during call setup ... If authentication fails, the call is torn down,
// and the socket marked unusable."
#pragma once

#include <unordered_map>

#include "atm/types.hpp"
#include "signaling/messages.hpp"
#include "util/rng.hpp"

namespace xunet::sig {

/// Issues unguessable 16-bit cookies and authenticates (VCI, cookie) pairs.
class CookieTable {
 public:
  explicit CookieTable(std::uint64_t seed) : rng_(seed) {}

  /// Mint a fresh cookie.  Never returns 0 (0 means "no cookie") and never
  /// collides with another outstanding cookie, so a guess succeeds with
  /// probability < 2^-16 per attempt.
  [[nodiscard]] Cookie mint();

  /// Associate an outstanding cookie with a VCI once the VC exists.
  void bind_vci(atm::Vci vci, Cookie cookie) { by_vci_[vci] = cookie; }

  /// Authenticate an endpoint's (VCI, cookie) presentation.
  [[nodiscard]] bool authenticate(atm::Vci vci, Cookie cookie) const {
    auto it = by_vci_.find(vci);
    return it != by_vci_.end() && cookie != 0 && it->second == cookie;
  }

  /// "Cookies last for the lifetime of a connection."
  void release_vci(atm::Vci vci);
  /// Drop a minted cookie that never got a VCI (failed setup).
  void discard(Cookie cookie) { outstanding_.erase(cookie); }

  [[nodiscard]] std::size_t vci_count() const noexcept { return by_vci_.size(); }
  [[nodiscard]] std::size_t outstanding_count() const noexcept {
    return outstanding_.size();
  }

 private:
  util::Rng rng_;
  std::unordered_map<atm::Vci, Cookie> by_vci_;
  std::unordered_map<Cookie, bool> outstanding_;
};

}  // namespace xunet::sig
