#include "signaling/cookie.hpp"

namespace xunet::sig {

Cookie CookieTable::mint() {
  for (;;) {
    auto c = static_cast<Cookie>(rng_.below(0xFFFF) + 1);  // in [1, 0xFFFF]
    if (outstanding_.try_emplace(c, true).second) return c;
  }
}

void CookieTable::release_vci(atm::Vci vci) {
  auto it = by_vci_.find(vci);
  if (it == by_vci_.end()) return;
  outstanding_.erase(it->second);
  by_vci_.erase(it);
}

}  // namespace xunet::sig
