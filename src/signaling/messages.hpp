// messages.hpp — signaling wire messages (§7.1) and stream framing.
//
// Application↔sighost messages travel over TCP (the RPC-like IPC of §5.2),
// length-prefix framed.  Sighost↔sighost messages travel over the signaling
// PVC, one message per AAL frame.  Both use the same tagged serialization.
#pragma once

#include <functional>
#include <optional>
#include <string>

#include "atm/types.hpp"
#include "ip/addr.hpp"
#include "util/buffer.hpp"

namespace xunet::sig {

/// A connection-request identifier, unique per originating sighost; also
/// used as the end-to-end call id between peer sighosts.
using ReqId = std::uint32_t;

/// Request-id space partition between sighost incarnations.  Call keys are
/// "<originator>#<req_id>" and outlive a sighost crash in its peers'
/// five-lists, so a reborn sighost restarting its counter at 1 would mint
/// keys colliding with calls its previous life established — a failing new
/// call could then tear down a peer's record of a healthy recovered call.
/// Each incarnation therefore allocates from a disjoint 4M-wide band.
inline constexpr int kReqIdIncarnationShift = 22;

/// The 16-bit capability of §7.1: "a cookie is a 16 bit capability that
/// gives the holder the right to access a socket bound to a particular VCI."
using Cookie = std::uint16_t;

/// Every signaling message type, application-facing (§7.1, Figures 3 & 4)
/// and peer-to-peer.
enum class MsgType : std::uint8_t {
  // server <-> sighost
  export_srv = 1,    ///< server registers a service name + notify port
  service_regs,      ///< sighost acks the registration (or withdrawal)
  withdraw_srv,      ///< server removes a service name it registered
  incoming_conn,     ///< sighost -> server: a call arrived (cookie, QoS)
  accept_conn,       ///< server -> sighost: accept with modified QoS
  reject_conn,       ///< server -> sighost: decline
  vci_for_conn,      ///< sighost -> server/client: the VCI for the call
  // client <-> sighost
  connect_req,       ///< client -> sighost: connect to <dst, service, QoS>
  req_id,            ///< sighost -> client: request accepted for processing
  cancel_req,        ///< client -> sighost: withdraw an outstanding request
  conn_failed,       ///< sighost -> client/server: call failed (reason)
  // sighost <-> sighost (over the signaling PVC)
  peer_setup,        ///< originate a call: req id, service, QoS, source
  peer_accept,       ///< callee sighost: server accepted (modified QoS)
  peer_reject,       ///< callee sighost: no such service / server declined
  peer_established,  ///< originating sighost: VC is up; here is your VCI
  peer_bound,        ///< callee sighost: the server has bound its socket
  peer_setup_failed, ///< originating sighost: VC setup failed after accept
  peer_teardown,     ///< either side: call is gone, release and notify
  peer_cancel,       ///< originating sighost: client cancelled the request
  // reliable-delivery / crash-recovery control (sighost <-> sighost)
  peer_ack,          ///< acknowledges one sequenced peer message (seq field)
  peer_resync,       ///< restarted sighost: reset the channel, send your calls
  peer_resync_ack,   ///< peer: channel reset done (echoes the resync nonce)
  peer_resync_info,  ///< peer: one established call it shares with the sender
};
[[nodiscard]] std::string_view to_string(MsgType t) noexcept;

/// One parsed signaling message.  A union-of-fields record: each type uses
/// the subset documented above; unused fields stay default.
struct Msg {
  MsgType type = MsgType::export_srv;
  ReqId req_id = 0;
  /// Reliable-delivery sequence number on the signaling PVC.  0 means
  /// unsequenced (acks, resyncs, and all app<->sighost traffic, which rides
  /// TCP).  For peer_ack the field holds the sequence being acknowledged.
  std::uint32_t seq = 0;
  Cookie cookie = 0;
  atm::Vci vci = atm::kInvalidVci;
  /// Second VCI: peer_established carries the originator's own VCI here so
  /// both endpoints learn both ends of the VC (crash recovery needs it);
  /// peer_resync_info carries the reporter's local VCI.
  atm::Vci vci2 = atm::kInvalidVci;
  std::uint16_t port = 0;        ///< export_srv notify port / connect_req reply port
  std::string service;           ///< service name
  std::string qos;               ///< uninterpreted QoS string
  std::string dst;               ///< destination ATM address (connect_req, peer_setup src)
  std::string comment;           ///< free-form comment passed client->server
  std::uint8_t error = 0;        ///< reason code on reject/failure (util::Errc)
  /// Causal-trace propagation (obs::TraceIds): the end-to-end trace this
  /// message belongs to and the sender-side span that caused it.  0/0 when
  /// tracing is off, so traced and untraced runs stay wire-compatible in
  /// content (the fields are always serialized).
  std::uint64_t trace_id = 0;
  std::uint64_t parent_span = 0;
};

/// Serialize to wire bytes (no length prefix).
[[nodiscard]] util::Buffer serialize(const Msg& m);
/// Parse wire bytes; protocol_error on malformed input.
[[nodiscard]] util::Result<Msg> parse_msg(util::BytesView wire);

/// Frame a message for a TCP stream: u16 length + body.
[[nodiscard]] util::Buffer frame(const Msg& m);

/// Incremental de-framer for a TCP byte stream.  Feed arbitrary chunks;
/// complete messages come out through the callback.  A malformed body
/// surfaces as protocol_error through the error callback and the framer
/// resynchronizes at the next length boundary.
class MsgFramer {
 public:
  using MsgHandler = std::function<void(const Msg&)>;
  using ErrHandler = std::function<void(util::Errc)>;

  explicit MsgFramer(MsgHandler on_msg, ErrHandler on_err = {})
      : on_msg_(std::move(on_msg)), on_err_(std::move(on_err)) {}

  void feed(util::BytesView chunk);

 private:
  MsgHandler on_msg_;
  ErrHandler on_err_;
  util::Buffer pending_;
};

}  // namespace xunet::sig
