// anand_stubs.hpp — the anand server (router) and anand client (host)
// processes (§7.2, §7.4).
//
// anand server: holds the router's /dev/anand, accepts TCP connections from
// sighost and from anand clients on IP hosts, relays indications upward and
// disconnect requests downward, and manages the router's VCI_BIND/VCI_SHUT
// forwarding state for host-bound VCIs.
//
// anand client: holds a host's /dev/anand, configures the host's
// IPPROTO_ATM forwarding router at startup ("the default forwarding
// decision can be set by putting anand client in the boot sequence"),
// relays the host kernel's indications to the anand server, and applies
// downward disconnects to the host kernel.
#pragma once

#include <map>
#include <memory>
#include <vector>

#include "kern/kernel.hpp"
#include "signaling/stub_proto.hpp"

namespace xunet::sig {

/// The router-side stub.
class AnandServerStub {
 public:
  explicit AnandServerStub(kern::Kernel& router,
                           std::uint16_t port = kAnandServerPort);

  /// Spawn the process, open /dev/anand and the control socket, listen.
  util::Result<void> start();

  /// VCIs currently VCI_BINDed to hosts (leak audits).
  [[nodiscard]] std::size_t forwarded_vci_count() const noexcept {
    return vci_host_.size();
  }
  [[nodiscard]] kern::Pid pid() const noexcept { return pid_; }

 private:
  struct Conn {
    int fd = -1;
    bool is_sighost = false;
    std::uint16_t shard_id = 0;  ///< for sighost conns (hello carries it)
    ip::IpAddress client_ip;  ///< for anand clients
    std::unique_ptr<StubFramer> framer;
  };

  void drain_device();
  void relay_up(const kern::AnandUpMsg& msg, ip::IpAddress origin);
  void handle_conn_msg(Conn& c, const StubMsg& m);
  void handle_down(const StubMsg& m);
  void send_to(int fd, const StubMsg& m);

  kern::Kernel& k_;
  std::uint16_t port_;
  kern::Pid pid_ = -1;
  int listen_fd_ = -1;
  int anand_fd_ = -1;
  int ctl_fd_ = -1;  ///< raw IPPROTO_ATM socket for VCI_BIND/VCI_SHUT
  std::map<int, Conn> conns_;
  /// Attached sighost shards, slot s = the shard owning vci % shard_count_
  /// == s (-1 when that shard has not said hello / has disconnected).
  /// Single-shard topologies degenerate to one slot, the classic wiring.
  std::vector<int> sighost_fds_ = {-1};
  std::uint16_t shard_count_ = 1;
  std::map<std::uint16_t, ip::IpAddress> vci_host_;  ///< VCI → remote host
};

/// The host-side stub.
class AnandClientStub {
 public:
  AnandClientStub(kern::Kernel& host, ip::IpAddress router_ip,
                  std::uint16_t server_port = kAnandServerPort);

  /// Spawn the process, configure IPPROTO_ATM forwarding, open /dev/anand,
  /// connect to the anand server.
  util::Result<void> start();

  [[nodiscard]] bool connected() const noexcept { return server_fd_ >= 0; }
  [[nodiscard]] kern::Pid pid() const noexcept { return pid_; }

 private:
  void drain_device();

  kern::Kernel& k_;
  ip::IpAddress router_ip_;
  std::uint16_t server_port_;
  kern::Pid pid_ = -1;
  int anand_fd_ = -1;
  int server_fd_ = -1;
  std::unique_ptr<StubFramer> framer_;
};

}  // namespace xunet::sig
