// sighost.hpp — the signaling entity (§6–§7).
//
// One sighost runs in user space on each router and "serves applications
// running on the router as well as any number of applications running on
// hosts connected over IP".  It acts only in response to messages from the
// user library (TCP), the local or remote kernel (via the anand stubs), or
// its peer sighosts (over a signaling PVC).  Internal state lives in the
// paper's five lists: service_list, outgoing_requests, incoming_requests,
// wait_for_bind and VCI_mapping.
#pragma once

#include <deque>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "atm/network.hpp"
#include "kern/kernel.hpp"
#include "obs/obs.hpp"
#include "signaling/cookie.hpp"
#include "signaling/messages.hpp"
#include "signaling/stub_proto.hpp"
#include "sim/timer.hpp"
#include "util/rng.hpp"
#include "util/vci_index.hpp"

namespace xunet::sig {

/// Statistics exported for the experiments.
struct SighostStats {
  std::uint64_t calls_established = 0;
  std::uint64_t calls_torn_down = 0;
  std::uint64_t auth_failures = 0;
  std::uint64_t bind_timeouts = 0;
  std::uint64_t rejects_sent = 0;
  std::uint64_t cancels = 0;
  std::uint64_t services_registered = 0;
  std::uint64_t setup_failures = 0;
  std::uint64_t request_timeouts = 0;
  // Reliable peer delivery.
  std::uint64_t retransmits = 0;      ///< sequenced messages re-sent
  std::uint64_t dup_suppressed = 0;   ///< duplicates dropped by the receiver
  std::uint64_t retx_abandoned = 0;   ///< messages given up after max attempts
  std::uint64_t peer_parse_errors = 0;///< unparseable frames off the PVC
  // Overload shedding.
  std::uint64_t sheds = 0;            ///< requests rejected while at capacity
  // Crash-restart recovery.
  std::uint64_t resyncs = 0;          ///< PEER_RESYNCs honored from peers
  std::uint64_t recovered_calls = 0;  ///< calls rebuilt after our restart
  std::uint64_t orphans_torn_down = 0;///< dangling VCs reclaimed on recovery
};

struct SighostConfig {
  std::uint16_t port = kSighostPort;
  std::uint16_t anand_server_port = kAnandServerPort;
  /// §7.2: per-VCI timer loaded when a VCI is handed to an application;
  /// "if no bind (resp. connect) indication is received before timeout,
  /// the connection is torn down."
  sim::SimDuration wait_for_bind_timeout = sim::seconds(10);
  /// How long a CONNECT_REQ may stay unresolved (no PEER_ACCEPT/REJECT and
  /// no VC) before the originating sighost fails it back to the client.
  /// Guards against unreachable peers (e.g. a cut signaling PVC).
  sim::SimDuration request_timeout = sim::seconds(30);
  /// §9: "the large amount of maintenance information logged per call"
  /// dominates the ~330 ms call-establishment time.  Charged once per
  /// call at each sighost; 128 ms calibrates end-to-end setup to the
  /// paper's ~330 ms on the canonical testbed.  The §5 ablation bench
  /// sets it to zero.
  sim::SimDuration per_call_log_cost = sim::milliseconds(128);
  bool maintenance_logging = true;
  std::uint64_t cookie_seed = 0x5163'4057;
  /// Reliable sighost↔sighost delivery over the signaling PVC: sequence
  /// numbers, duplicate suppression, retransmission with exponential
  /// backoff.  The PVC is a bare AAL5 pipe — cells it loses are simply
  /// gone, so signaling must supply its own reliability.
  bool reliable_peer_delivery = true;
  sim::SimDuration retransmit_base = sim::milliseconds(250);
  /// Uniform extra delay in [0, jitter) added per retransmission, so peers
  /// that lost the same frame don't retry in lockstep.
  sim::SimDuration retransmit_jitter = sim::milliseconds(50);
  int retransmit_max_attempts = 6;
  std::uint64_t retransmit_seed = 0x7e57'ab1e;
  /// Bounded-queue overload shedding: a CONNECT_REQ (resp. PEER_SETUP)
  /// arriving while outgoing_requests (resp. incoming_requests) is at this
  /// limit is rejected with no_buffer_space instead of growing the list.
  std::size_t max_outgoing_requests = 256;
  std::size_t max_incoming_requests = 256;
  /// After a crash-restart recovery, audited calls not claimed by any
  /// peer's PEER_RESYNC_INFO within this grace period are torn down.
  sim::SimDuration resync_grace = sim::seconds(5);
  /// TEST-ONLY sabotage seam for the chaos harness: recover() skips the
  /// kernel/network audit, leaving every pre-crash call's kernel socket and
  /// network VC orphaned.  The chaos acceptance test plants this fault and
  /// asserts the InvariantChecker finds it; never set it in real scenarios.
  bool recovery_skip_audit = false;
  /// Control-plane sharding: run `shard_count` sighosts per router, each
  /// owning the residue class `vci % shard_count == shard_id` of the
  /// switched VCI space.  Shard s listens on `port + s`, provisions its own
  /// per-shard PVC mesh to the matching shard of every peer router, asks
  /// the network for VCIs in its own class (so both endpoints of a call
  /// land on shard s), and recovers/audits only the VCIs it owns.  The
  /// defaults keep the paper's one-sighost-per-router topology unchanged.
  std::uint16_t shard_count = 1;
  std::uint16_t shard_id = 0;
};

/// What a wire-fault hook may do to one peer signaling message about to be
/// transmitted on the PVC (the fault-injection seam src/fault drives).
enum class WireFault : std::uint8_t {
  deliver,    ///< pass through untouched
  drop,       ///< lose the frame
  duplicate,  ///< deliver it twice
  corrupt,    ///< flip one byte of the serialized frame
  delay,      ///< hold it back (reordering: later frames overtake it)
};
struct WireVerdict {
  WireFault fault = WireFault::deliver;
  sim::SimDuration delay{};  ///< extra latency when fault == delay
};

/// The signaling entity.
class Sighost {
 public:
  /// Trace hook for the message-sequence-chart bench: fires for every
  /// signaling message sent or received ("dir" is "->" send, "<-" receive).
  using TraceFn = std::function<void(std::string_view dir, std::string_view peer,
                                     const Msg& m)>;
  /// Fault-injection hook, consulted for every peer message (including
  /// retransmissions) at the moment it hits the wire.
  using WireFaultFn = std::function<WireVerdict(
      const std::string& self, const std::string& peer, const Msg& m)>;

  Sighost(kern::Kernel& router, atm::AtmNetwork& net,
          SighostConfig cfg = SighostConfig{});
  ~Sighost();
  Sighost(const Sighost&) = delete;
  Sighost& operator=(const Sighost&) = delete;

  /// Spawn the sighost process, listen for applications, attach to the
  /// anand server (which must already be running on this router).
  util::Result<void> start();

  /// Provision the signaling channel to a peer sighost over a PVC pair.
  /// `send_vci`/`recv_vci` are this router's VCIs on its uplink/downlink.
  util::Result<void> add_peer(const atm::AtmAddress& peer, atm::Vci send_vci,
                              atm::Vci recv_vci);

  void set_trace(TraceFn fn) { trace_ = std::move(fn); }
  void set_wire_fault(WireFaultFn fn) { wire_fault_ = std::move(fn); }

  /// Crash-restart recovery (§5.3 in reverse): audit the kernel's live
  /// PF_XUNET bindings and the network controller's active VCs, rebuild
  /// VCI_mapping from their intersection, tear down VCs with no surviving
  /// socket, and ask every peer to resynchronize its reliable channel and
  /// report the calls it shares with us.  Call after start() + add_peer()s
  /// on a freshly constructed sighost replacing a crashed one.
  util::Result<void> recover();

  // -- the five lists (sizes; used by tests and leak audits) ---------------
  [[nodiscard]] std::size_t service_list_size() const noexcept { return services_.size(); }
  [[nodiscard]] std::size_t outgoing_requests_size() const noexcept { return outgoing_.size(); }
  [[nodiscard]] std::size_t incoming_requests_size() const noexcept { return incoming_.size(); }
  [[nodiscard]] std::size_t wait_for_bind_size() const noexcept { return wait_bind_.size(); }
  [[nodiscard]] std::size_t vci_mapping_size() const noexcept { return vci_map_.size(); }
  /// VCI_mapping keys in iteration order.  The resync path
  /// (handle_peer_resync emitting PEER_RESYNC_INFO per shared call) and the
  /// management report both walk vci_map_ in this order, so deterministic
  /// replay requires it to be ascending — the VciIndex trie's in-order
  /// traversal guarantees that, and the recovery tests pin the contract.
  /// This reads straight through the index (the single source of truth for
  /// VCI_mapping; there is no parallel vector to drift after recovery).
  [[nodiscard]] std::vector<atm::Vci> vci_mapping_vcis() const {
    return vci_map_.keys();
  }
  /// Sharding: does this sighost own `vci`'s residue class?
  [[nodiscard]] bool owns_vci(atm::Vci vci) const noexcept {
    return cfg_.shard_count <= 1 ||
           vci % cfg_.shard_count == cfg_.shard_id;
  }
  [[nodiscard]] const SighostConfig& config() const noexcept { return cfg_; }
  [[nodiscard]] bool has_service(const std::string& name) const {
    return services_.contains(name);
  }

  /// §5.1: "Signaling state information is easily available and can be
  /// used by network management software."  A human-readable dump of the
  /// five lists and counters.
  [[nodiscard]] std::string management_report() const;

  // -- cross-layer audit surface (the chaos InvariantChecker) --------------
  /// One VCI_mapping entry flattened for audits: identity and bookkeeping
  /// only, no live handles.
  struct VciAuditEntry {
    atm::Vci vci = atm::kInvalidVci;
    std::string call_key;
    ReqId req_id = 0;
    bool originator = false;
    bool confirmed = false;
    bool recovered = false;
    std::string peer;
    ip::IpAddress endpoint_ip;  ///< 0 = the socket lives on this router
    atm::Vci remote_vci = atm::kInvalidVci;
  };
  /// The five lists flattened into value types, every vector sorted, so the
  /// InvariantChecker can cross-audit signaling state against the kernel,
  /// network and switch layers without reaching into live records.
  struct ListSnapshot {
    std::vector<std::string> services;
    std::vector<std::string> outgoing_calls;  ///< call keys ("self#req_id")
    std::vector<std::string> incoming_calls;  ///< call keys
    std::vector<atm::Vci> wait_for_bind;
    std::vector<VciAuditEntry> vci_mapping;   ///< ascending VCI
  };
  [[nodiscard]] ListSnapshot audit_snapshot() const;

  [[nodiscard]] const SighostStats& stats() const noexcept { return stats_; }
  [[nodiscard]] const CookieTable& cookies() const noexcept { return cookies_; }
  [[nodiscard]] kern::Pid pid() const noexcept { return pid_; }
  [[nodiscard]] const atm::AtmAddress& address() const noexcept {
    return k_.atm_address();
  }

 private:
  // ---- records ----
  struct Service {
    ip::IpAddress server_ip;
    std::uint16_t notify_port = 0;
  };
  struct AppConn {
    int fd = -1;
    std::unique_ptr<MsgFramer> framer;
    std::set<ReqId> reqs;  ///< outstanding requests initiated on this conn
    /// Idempotency: client-stamped CONNECT_REQ nonce → the REQ_ID reply
    /// already issued for it, so a retried request never mints a second id.
    /// Bounded FIFO (kNonceReplyCap): at 10^6 calls per connection an
    /// unbounded map would hoard a reply per call forever.
    std::map<std::uint32_t, Msg> nonce_replies;
    std::deque<std::uint32_t> nonce_order;  ///< insertion order for eviction
  };
  static constexpr std::size_t kNonceReplyCap = 128;
  struct Outgoing {  // outgoing_requests: client request awaiting peer reply
    ReqId id = 0;
    int client_fd = -1;
    std::string dst_name;
    std::string service;
    std::string qos;
    Cookie client_cookie = 0;
    bool cancelled = false;
    std::unique_ptr<sim::Timer> timer;  ///< request_timeout watchdog
  };
  struct Incoming {  // incoming_requests: call awaiting server accept/reject
    std::string origin;  ///< peer sighost name
    ReqId id = 0;
    int server_fd = -1;  ///< per-call TCP connection to the server
    Cookie server_cookie = 0;
    std::string qos;
    std::string service;
    bool decided = false;
    std::unique_ptr<sim::Timer> timer;  ///< watchdog against a lost reply
  };
  struct WaitBind {  // wait_for_bind: VCI handed out, no indication yet
    std::unique_ptr<sim::Timer> timer;
    Cookie cookie = 0;
  };
  struct VciEntry {  // VCI_mapping: live (or establishing) calls by VCI
    std::string call_key;  ///< origin "#" req_id — the end-to-end call id
    ReqId req_id = 0;
    bool originator = false;
    Cookie cookie = 0;
    atm::VcId vc_id = 0;  ///< network handle; only at the originator
    std::string peer;     ///< peer sighost name
    ip::IpAddress endpoint_ip;  ///< machine holding the socket (0=unknown/router)
    bool confirmed = false;     ///< bind/connect indication authenticated
    std::string qos;            ///< granted QoS (for deferred client delivery)
    /// Originator side: the client's VCI_FOR_CONN is held back until the
    /// callee reports PEER_BOUND, so data can never beat the server's bind.
    int pending_client_fd = -1;
    /// Callee side: report PEER_BOUND to the originator on bind confirm.
    bool notify_origin_on_confirm = false;
    atm::Vci remote_vci = atm::kInvalidVci;  ///< the far endpoint's VCI
    /// Rebuilt from a post-crash audit; awaiting a peer's PEER_RESYNC_INFO
    /// to restore call_key/req_id (torn down if none arrives in grace).
    bool recovered = false;
    std::uint64_t trace_id = 0;  ///< causal trace the call belongs to
  };
  struct PendingTx {  ///< one unacked sequenced message awaiting retransmit
    Msg msg;
    int attempts = 0;
    std::unique_ptr<sim::Timer> timer;
  };
  struct Peer {
    atm::AtmAddress addr;
    int send_fd = -1;
    int recv_fd = -1;
    atm::Vci send_vci = atm::kInvalidVci;
    atm::Vci recv_vci = atm::kInvalidVci;
    // Reliable channel, sender side.
    std::uint32_t next_seq = 1;
    std::map<std::uint32_t, PendingTx> pending;
    // Reliable channel, receiver side: everything <= recv_floor was
    // delivered; recv_above holds out-of-order deliveries beyond it.
    std::uint32_t recv_floor = 0;
    std::set<std::uint32_t> recv_above;
    // Resync client state (we restarted and are reconciling with them).
    std::uint32_t resync_nonce = 0;
    int resync_attempts = 0;
    std::unique_ptr<sim::Timer> resync_timer;
    // Resync server side: last nonce honored, so a retried PEER_RESYNC is
    // re-acked without resetting the channel a second time.
    std::uint32_t last_resync_seen = 0;
  };

  // ---- plumbing ----
  void on_app_accept(int fd);
  void on_app_msg(int fd, const Msg& m);
  void on_app_conn_closed(int fd);
  void send_app(int fd, const Msg& m);
  void send_peer(const std::string& peer, const Msg& m);
  void on_peer_msg(const std::string& peer, const Msg& m);
  void on_stub_msg(const StubMsg& m);

  // ---- reliable peer delivery ----
  /// Does this type carry a sequence number (and therefore get
  /// retransmitted until acked)?  Acks and resync handshakes do not.
  [[nodiscard]] static bool sequenced(MsgType t) noexcept;
  /// Put the message on the wire, applying any wire-fault verdict.
  void transmit_peer(Peer& p, const Msg& m);
  void wire_send(int send_fd, const Msg& m);
  void queue_retransmit(const std::string& peer, const Msg& m);
  void retransmit(const std::string& peer, std::uint32_t seq);
  [[nodiscard]] sim::SimDuration backoff(int attempts);
  /// Duplicate-suppression bookkeeping; true when `seq` was already seen.
  [[nodiscard]] static bool note_received(Peer& p, std::uint32_t seq);

  // ---- crash-restart recovery ----
  void handle_peer_resync(const std::string& origin, const Msg& m);
  void handle_peer_resync_ack(const std::string& origin, const Msg& m);
  void handle_peer_resync_info(const std::string& origin, const Msg& m);
  void send_resync(const std::string& peer);
  void reset_channel(Peer& p);
  void expire_unclaimed_recoveries();
  /// Charge the §9 per-call maintenance-information write.  `call` is the
  /// end-to-end call key the record belongs to; it tags the trace span and
  /// the MetricsRegistry counters the logging-cost bench reads.  When the
  /// caller knows the causal context, `trace_id`/`parent` link the record
  /// into the call's cross-host span tree.
  void maintenance_log(const std::string& what, const std::string& call,
                       std::function<void()> then,
                       std::uint64_t trace_id = 0,
                       obs::SpanId parent = obs::kInvalidSpan);

  // ---- observability ----
  /// FSM-transition instant event (call key + optional VCI/fd identifiers).
  void fsm(const char* what, const std::string& call, std::int64_t vci = -1,
           std::int64_t fd = -1);
  /// Refresh the five-list gauges (and, when tracing, counter events).
  void record_lists();
  /// Close the originator-side call-setup span and record its latency.
  void end_setup_trace(ReqId id);

  // ---- application-side handlers ----
  void handle_export_srv(int fd, const Msg& m);
  void handle_withdraw_srv(int fd, const Msg& m);
  void handle_connect_req(int fd, const Msg& m);
  void handle_cancel_req(int fd, const Msg& m);
  void handle_accept_conn(int fd, const Msg& m);
  void handle_reject_conn(int fd, const Msg& m);

  // ---- peer-side handlers ----
  void handle_peer_setup(const std::string& origin, const Msg& m);
  void handle_peer_accept(const std::string& origin, const Msg& m);
  void handle_peer_reject(const std::string& origin, const Msg& m);
  void handle_peer_established(const std::string& origin, const Msg& m);
  void handle_peer_bound(const std::string& origin, const Msg& m);
  void handle_peer_setup_failed(const std::string& origin, const Msg& m);
  void handle_peer_teardown(const std::string& origin, const Msg& m);
  void handle_peer_cancel(const std::string& origin, const Msg& m);

  // ---- kernel-indication handlers ----
  void handle_indication(const StubMsg& m);
  void confirm_endpoint(atm::Vci vci, Cookie cookie, ip::IpAddress origin);

  // ---- call lifecycle ----
  /// `trace_id`/`parent_span` are the causal context carried by the
  /// PEER_ACCEPT that triggered establishment (the callee's serve span), so
  /// the kernel VC-install span becomes its child in the call tree.
  void establish_vc(ReqId req_id, const std::string& qos_granted,
                    std::uint64_t trace_id = 0,
                    std::uint64_t parent_span = 0);
  void teardown_vci(atm::Vci vci, bool notify_peer);
  void load_wait_for_bind(atm::Vci vci, Cookie cookie);
  void fail_outgoing(ReqId id, util::Errc reason);
  [[nodiscard]] static std::string call_key(const std::string& origin, ReqId id) {
    return origin + "#" + std::to_string(id);
  }
  [[nodiscard]] atm::Vci vci_for_call(const std::string& key) const;

  kern::Kernel& k_;
  atm::AtmNetwork& net_;
  SighostConfig cfg_;
  CookieTable cookies_;
  util::Rng rng_;  ///< retransmit jitter + corruption-fault byte choice
  kern::Pid pid_ = -1;
  int listen_fd_ = -1;
  int anand_fd_ = -1;  ///< TCP connection to the anand server
  std::unique_ptr<StubFramer> stub_framer_;
  TraceFn trace_;
  WireFaultFn wire_fault_;
  std::uint32_t next_resync_nonce_ = 1;
  std::unique_ptr<sim::Timer> recovery_grace_;  ///< armed once by recover()

  // The five lists.  VCI_mapping sits behind the compressed-trie index:
  // O(key bits) lookups at millions of live calls, in-order traversal for
  // the audit/resync surfaces.
  std::map<std::string, Service> services_;          // service_list
  std::map<ReqId, Outgoing> outgoing_;               // outgoing_requests
  std::map<std::string, Incoming> incoming_;         // incoming_requests
  std::map<atm::Vci, WaitBind> wait_bind_;           // wait_for_bind
  util::VciIndex<atm::Vci, VciEntry> vci_map_;       // VCI_mapping
  /// Reverse index call_key → VCI, maintained strictly alongside vci_map_
  /// (entries with a non-empty call_key only).  vci_for_call and
  /// handle_peer_bound used to walk all of VCI_mapping per lookup — O(n)
  /// per call, quadratic across a call burst.
  std::map<std::string, atm::Vci> call_by_key_;

  std::map<int, AppConn> app_conns_;
  std::map<std::string, Peer> peers_;
  std::set<atm::Vci> pvc_vcis_;  ///< own signaling VCIs: ignore their indications
  ReqId next_req_ = 1;
  sim::SimTime busy_until_{};  ///< end of the queued maintenance-log work
  /// Liveness token for raw simulator events that capture `this` (deferred
  /// maintenance-log work, fault-injected wire delays).  Timers cancel
  /// themselves on destruction; these events cannot, so they hold a weak
  /// reference and no-op once the sighost is gone (crashed).
  std::shared_ptr<char> alive_ = std::make_shared<char>(0);
  SighostStats stats_;

  // Observability: context + cached metric handles (resolved once).
  obs::Observability* obs_ = nullptr;
  std::string track_;  ///< timeline row: this router's ATM name
  obs::Counter* m_maint_records_ = nullptr;      ///< per-instance
  obs::Counter* m_maint_records_all_ = nullptr;  ///< fleet-wide
  obs::Counter* m_established_ = nullptr;
  obs::Counter* m_torn_down_ = nullptr;
  obs::Counter* m_retransmits_ = nullptr;
  obs::Counter* m_dup_suppressed_ = nullptr;
  obs::Counter* m_sheds_ = nullptr;
  obs::Counter* m_recovered_ = nullptr;
  obs::Histogram* m_setup_us_ = nullptr;
  obs::Gauge* m_lists_[5] = {};  ///< the five lists, in paper order
  struct SetupTrace {
    obs::SpanId span = obs::kInvalidSpan;
    sim::SimTime begin{};
    std::uint64_t trace_id = 0;  ///< minted by the client stub
  };
  std::map<ReqId, SetupTrace> setup_trace_;  ///< originator-side open calls
  /// Callee-side "call.serve" spans: PEER_SETUP arrival until the call is
  /// established, rejected, failed, cancelled or timed out.  Keyed by the
  /// end-to-end call key; every incoming_-erase path must end the span
  /// through end_serve_trace().
  struct ServeTrace {
    obs::SpanId span = obs::kInvalidSpan;
    std::uint64_t trace_id = 0;
  };
  std::map<std::string, ServeTrace> serve_trace_;
  void end_serve_trace(const std::string& key);
};

}  // namespace xunet::sig
