// stub_proto.hpp — the private protocol of the anand client/server stubs.
//
// §7.2: "sighost sends a message to anand server which either does a write
// on the router's pseudo-device, or passes it on to anand client which then
// does a write on the host's /dev/anand" — and upward, the stubs "simply
// block on select(), and when unblocked, pass the message on to sighost".
// The stub messages are fixed-size records over TCP.
#pragma once

#include <functional>

#include "ip/addr.hpp"
#include "kern/anand.hpp"
#include "util/buffer.hpp"

namespace xunet::sig {

/// Fixed-size stub message.
struct StubMsg {
  enum class Type : std::uint8_t {
    hello_sighost = 1,  ///< conn opener identifies as the sighost
    hello_client,       ///< conn opener identifies as an anand client (host)
    up_indication,      ///< relayed kernel indication (+ origin IP)
    down_disconnect,    ///< disconnect the socket bound to vci (at target IP)
  };
  Type type = Type::up_indication;
  kern::AnandUpType up_type = kern::AnandUpType::process_terminated;
  std::uint16_t vci = 0;
  std::uint16_t cookie = 0;
  /// up: origin machine; down: target machine.  0 = the router itself.
  ip::IpAddress machine;
};

/// Wire size of a StubMsg.
inline constexpr std::size_t kStubMsgBytes = 10;

[[nodiscard]] util::Buffer serialize(const StubMsg& m);

/// Fixed-size de-framer: feed stream chunks, get whole messages.
class StubFramer {
 public:
  using Handler = std::function<void(const StubMsg&)>;
  explicit StubFramer(Handler h) : on_msg_(std::move(h)) {}
  void feed(util::BytesView chunk);

 private:
  Handler on_msg_;
  util::Buffer pending_;
};

/// Well-known ports of the signaling plane.  Sighost shard s listens on
/// kSighostPort + s, so the anand server sits below the base port rather
/// than on the old 178 (which shard 1 would collide with).
inline constexpr std::uint16_t kSighostPort = 177;
inline constexpr std::uint16_t kAnandServerPort = 170;

}  // namespace xunet::sig
