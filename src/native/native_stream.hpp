// native_stream.hpp — a native-mode transport over PF_XUNET virtual
// circuits: the direction the paper defers to ref [12] ("Semantics of a
// Native-Mode ATM Protocol Stack": the stack "currently implements only a
// UDP-like functionality").
//
// Design follows the native-mode philosophy rather than TCP's:
//   * NO logical multiplexing: one stream per VC pair (a DuplexEnd);
//   * RATE-BASED sending: the pacer transmits at the call's granted QoS
//     bandwidth — the network reserved it, so there is nothing to probe
//     (cf. Zhang & Keshav, ref [18], on rate-based disciplines);
//   * selective repeat: the receiver NACKs exactly the sequence gaps it
//     sees (AAL5 already guarantees loss/misorder *detection*), so one
//     lost frame never stalls the pipe the way Go-Back-N does.
//
// Messages ride the duplex channel's two simplex VCs; each side sends DATA
// on its forward VC and feedback (ACK/NACK) flows back on the reverse VC,
// multiplexed with the peer's DATA.
#pragma once

#include <deque>
#include <map>

#include "core/duplex.hpp"
#include "sim/timer.hpp"

namespace xunet::native {

/// Tuning knobs.
struct StreamConfig {
  /// Feedback cadence: the receiver acks at least this often.
  sim::SimDuration ack_interval = sim::milliseconds(20);
  /// Retransmission safety net when feedback itself is lost.
  sim::SimDuration rto = sim::milliseconds(200);
  /// Maximum in-flight (unacked) messages before send() reports would_block.
  std::size_t window_msgs = 256;
  /// Largest message payload (one AAL frame carries one message).
  std::size_t max_msg = 32 * 1024;
};

/// One end of a reliable, ordered, rate-paced message stream over a duplex
/// VC pair.  Construct one on each side with the respective DuplexEnd.
class NativeStream {
 public:
  using MessageFn = std::function<void(util::BytesView)>;

  /// `rate_bps` should be the granted QoS bandwidth of the forward call
  /// (parse the DuplexEnd's qos_forward); 0 means unpaced.
  NativeStream(kern::Kernel& k, kern::Pid pid, const core::DuplexEnd& end,
               std::uint64_t rate_bps, StreamConfig cfg = {});
  ~NativeStream();
  NativeStream(const NativeStream&) = delete;
  NativeStream& operator=(const NativeStream&) = delete;

  /// Queue a message for reliable in-order delivery.  would_block when the
  /// send window is full (back-pressure), message_too_long past max_msg.
  util::Result<void> send(util::BytesView msg);

  /// In-order message delivery.
  void on_message(MessageFn fn) { on_message_ = std::move(fn); }

  /// Fires when every queued message has been acknowledged.
  void on_drained(std::function<void()> fn) { on_drained_ = std::move(fn); }

  [[nodiscard]] std::size_t in_flight() const noexcept { return outstanding_.size(); }
  [[nodiscard]] std::uint64_t messages_sent() const noexcept { return sent_; }
  [[nodiscard]] std::uint64_t messages_delivered() const noexcept { return delivered_; }
  [[nodiscard]] std::uint64_t retransmits() const noexcept { return retransmits_; }
  [[nodiscard]] std::uint64_t acks_sent() const noexcept { return acks_sent_; }

 private:
  struct Outstanding {
    util::Buffer wire;  ///< full DATA message, ready to resend
    bool nacked = false;
  };

  void pump();                      // pacer: emit queued/nacked frames
  void input(util::BytesView raw);  // demux DATA vs feedback
  void handle_data(std::uint32_t seq, util::BytesView payload);
  void handle_feedback(std::uint32_t cum, const std::vector<std::uint32_t>& nacks);
  void send_feedback();
  void arm_rto();

  kern::Kernel& k_;
  kern::Pid pid_;
  core::DuplexEnd end_;
  StreamConfig cfg_;
  std::uint64_t rate_bps_;

  // Sender state.
  std::uint32_t snd_next_ = 0;      ///< next new sequence number
  std::uint32_t snd_una_ = 0;       ///< oldest unacked
  std::deque<util::Buffer> queue_;  ///< not yet transmitted (awaiting pacer)
  std::map<std::uint32_t, Outstanding> outstanding_;
  sim::SimTime pacer_free_at_{};
  bool pacer_running_ = false;
  sim::Timer rto_timer_;

  // Receiver state.
  std::uint32_t rcv_next_ = 0;
  std::map<std::uint32_t, util::Buffer> ooo_;  ///< out-of-order hold
  sim::Timer ack_timer_;
  bool feedback_dirty_ = false;

  MessageFn on_message_;
  std::function<void()> on_drained_;
  std::uint64_t sent_ = 0;
  std::uint64_t delivered_ = 0;
  std::uint64_t retransmits_ = 0;
  std::uint64_t acks_sent_ = 0;
};

}  // namespace xunet::native
