#include "native/native_stream.hpp"

namespace xunet::native {

using util::Errc;

namespace {
constexpr std::uint8_t kData = 1;
constexpr std::uint8_t kFeedback = 2;
}  // namespace

NativeStream::NativeStream(kern::Kernel& k, kern::Pid pid,
                           const core::DuplexEnd& end, std::uint64_t rate_bps,
                           StreamConfig cfg)
    : k_(k),
      pid_(pid),
      end_(end),
      cfg_(cfg),
      rate_bps_(rate_bps),
      rto_timer_(k.simulator()),
      ack_timer_(k.simulator()) {
  (void)k_.xunet_on_receive(pid_, end_.recv_fd,
                            [this](util::BytesView raw) { input(raw); });
}

NativeStream::~NativeStream() = default;

util::Result<void> NativeStream::send(util::BytesView msg) {
  if (msg.size() > cfg_.max_msg) return Errc::message_too_long;
  if (outstanding_.size() + queue_.size() >= cfg_.window_msgs) {
    return Errc::would_block;  // back-pressure, not loss
  }
  util::Writer w;
  w.u8(kData);
  w.u32(snd_next_++);
  w.bytes(msg);
  queue_.push_back(w.take());
  pump();
  return {};
}

void NativeStream::pump() {
  if (pacer_running_) return;
  // Find work: a NACKed retransmission takes priority over new data.
  util::Buffer* wire = nullptr;
  std::uint32_t resend_seq = 0;
  for (auto& [seq, o] : outstanding_) {
    if (o.nacked) {
      wire = &o.wire;
      resend_seq = seq;
      break;
    }
  }
  bool is_retransmit = wire != nullptr;
  if (!is_retransmit) {
    if (queue_.empty()) return;
    wire = &queue_.front();
  }

  // Pace: one message per (bits / rate) at the granted QoS bandwidth.
  sim::SimTime now = k_.simulator().now();
  if (pacer_free_at_ < now) pacer_free_at_ = now;
  sim::SimDuration gap{};
  if (rate_bps_ > 0) {
    gap = sim::nanoseconds(static_cast<std::int64_t>(
        wire->size() * 8ull * 1'000'000'000ull / rate_bps_));
  }
  pacer_running_ = true;
  k_.simulator().schedule_at(
      pacer_free_at_, [this, is_retransmit, resend_seq] {
        pacer_running_ = false;
        if (is_retransmit) {
          auto it = outstanding_.find(resend_seq);
          if (it != outstanding_.end() && it->second.nacked) {
            it->second.nacked = false;
            ++retransmits_;
            (void)k_.xunet_send(pid_, end_.send_fd, it->second.wire);
          }
        } else if (!queue_.empty()) {
          util::Buffer wire2 = std::move(queue_.front());
          queue_.pop_front();
          util::Reader r(wire2);
          (void)r.u8();
          std::uint32_t seq = r.u32().value_or(0);
          (void)k_.xunet_send(pid_, end_.send_fd, wire2);
          outstanding_.emplace(seq, Outstanding{std::move(wire2), false});
          ++sent_;
        }
        arm_rto();
        pump();
      });
  pacer_free_at_ = pacer_free_at_ + gap;
}

void NativeStream::arm_rto() {
  if (outstanding_.empty()) {
    rto_timer_.cancel();
    return;
  }
  rto_timer_.arm(cfg_.rto, [this] {
    // Feedback lost or the frame itself vanished: mark everything unacked
    // for retransmission (selective repeat still resends one at a time).
    for (auto& [seq, o] : outstanding_) o.nacked = true;
    pump();
    arm_rto();
  });
}

void NativeStream::input(util::BytesView raw) {
  util::Reader r(raw);
  auto type = r.u8();
  if (!type) return;
  if (*type == kData) {
    auto seq = r.u32();
    if (!seq) return;
    handle_data(*seq, r.rest());
  } else if (*type == kFeedback) {
    auto cum = r.u32();
    auto n = r.u16();
    if (!cum || !n) return;
    std::vector<std::uint32_t> nacks;
    nacks.reserve(*n);
    for (std::uint16_t i = 0; i < *n; ++i) {
      auto s = r.u32();
      if (!s) return;
      nacks.push_back(*s);
    }
    handle_feedback(*cum, nacks);
  }
}

void NativeStream::handle_data(std::uint32_t seq, util::BytesView payload) {
  if (seq < rcv_next_) {
    // Duplicate (a retransmission that crossed our ack): re-ack promptly.
    feedback_dirty_ = true;
  } else if (seq == rcv_next_) {
    ++rcv_next_;
    ++delivered_;
    if (on_message_) on_message_(payload);
    // Drain any buffered successors.
    auto it = ooo_.begin();
    while (it != ooo_.end() && it->first == rcv_next_) {
      ++rcv_next_;
      ++delivered_;
      if (on_message_) on_message_(it->second);
      it = ooo_.erase(it);
    }
    feedback_dirty_ = true;
  } else {
    ooo_.emplace(seq, util::to_buffer(payload));
    // A gap: tell the sender immediately which frames are missing.
    send_feedback();
    return;
  }
  if (!ack_timer_.armed()) {
    ack_timer_.arm(cfg_.ack_interval, [this] {
      if (feedback_dirty_) send_feedback();
    });
  }
}

void NativeStream::send_feedback() {
  feedback_dirty_ = false;
  util::Writer w;
  w.u8(kFeedback);
  w.u32(rcv_next_);
  // NACK every hole below the highest out-of-order frame we hold.
  std::vector<std::uint32_t> nacks;
  std::uint32_t expect = rcv_next_;
  for (const auto& [seq, buf] : ooo_) {
    for (std::uint32_t s = expect; s < seq && nacks.size() < 512; ++s) {
      nacks.push_back(s);
    }
    expect = seq + 1;
  }
  w.u16(static_cast<std::uint16_t>(nacks.size()));
  for (std::uint32_t s : nacks) w.u32(s);
  ++acks_sent_;
  (void)k_.xunet_send(pid_, end_.send_fd, w.view());
}

void NativeStream::handle_feedback(std::uint32_t cum,
                                   const std::vector<std::uint32_t>& nacks) {
  bool was_busy = !outstanding_.empty() || !queue_.empty();
  // Cumulative ack: everything below `cum` is done.
  while (!outstanding_.empty() && outstanding_.begin()->first < cum) {
    outstanding_.erase(outstanding_.begin());
  }
  snd_una_ = std::max(snd_una_, cum);
  for (std::uint32_t s : nacks) {
    if (auto it = outstanding_.find(s); it != outstanding_.end()) {
      it->second.nacked = true;
    }
  }
  arm_rto();
  pump();
  if (was_busy && outstanding_.empty() && queue_.empty() && on_drained_) {
    on_drained_();
  }
}

}  // namespace xunet::native
