// udp.hpp — minimal UDP over the simulated IP layer.
//
// §9 expects host↔router throughput of AAL-over-IP "to be comparable to
// that of UDP"; this layer is the baseline that the encapsulation bench
// compares against.  It is also a realistic port-demultiplexed datagram
// service for tests.
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>

#include "ip/node.hpp"

namespace xunet::ip {

/// UDP header size.
inline constexpr std::size_t kUdpHeaderBytes = 8;

/// Port-demultiplexed datagram service bound to one IpNode.
class UdpLayer {
 public:
  /// Datagram delivery: source address/port plus payload bytes.
  using Handler =
      std::function<void(IpAddress src, std::uint16_t src_port, util::BytesView)>;

  /// Registers itself as the node's IpProto::udp handler.
  explicit UdpLayer(IpNode& node);

  /// Claim `port`; address_in_use when already bound.
  util::Result<void> bind(std::uint16_t port, Handler handler);
  void unbind(std::uint16_t port) { ports_.erase(port); }

  /// Allocate an unused ephemeral port (>= 1024), bind it, return it.
  util::Result<std::uint16_t> bind_ephemeral(Handler handler);

  /// Send a datagram.
  util::Result<void> send(IpAddress dst, std::uint16_t dst_port,
                          std::uint16_t src_port, util::BytesView data);

  [[nodiscard]] std::uint64_t datagrams_received() const noexcept { return received_; }
  [[nodiscard]] std::uint64_t datagrams_dropped() const noexcept { return dropped_; }

 private:
  void packet_arrival(const IpPacket& p);

  IpNode& node_;
  std::unordered_map<std::uint16_t, Handler> ports_;
  std::uint16_t next_ephemeral_ = 1024;
  std::uint64_t received_ = 0;
  std::uint64_t dropped_ = 0;
};

}  // namespace xunet::ip
