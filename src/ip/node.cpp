#include "ip/node.hpp"

#include <cassert>

namespace xunet::ip {

using util::Errc;

IpNode::IpNode(sim::Simulator& sim, std::string name, IpAddress addr)
    : sim_(sim), name_(std::move(name)), addr_(addr) {}

void IpNode::register_protocol(IpProto proto, ProtoHandler handler) {
  protocols_[static_cast<std::uint8_t>(proto)] = std::move(handler);
}

void IpNode::add_route(IpAddress dst, IpEgress& egress) {
  routes_[dst] = &egress;
}

void IpNode::set_default_route(IpEgress& egress) { default_route_ = &egress; }

IpEgress* IpNode::route_for(IpAddress dst) const {
  if (auto it = routes_.find(dst); it != routes_.end()) return it->second;
  return default_route_;
}

util::Result<void> IpNode::send(IpAddress dst, IpProto proto,
                                util::BytesView payload) {
  IpPacket p;
  p.src = addr_;
  p.dst = dst;
  p.protocol = proto;
  p.id = next_id_++;
  p.payload = util::to_buffer(payload);
  if (dst == addr_) {
    // Loopback: deliver on the next event-loop turn, like a software
    // interrupt, so callers never reenter themselves synchronously.
    sim_.schedule(sim::SimDuration{}, [this, p = std::move(p)]() mutable {
      deliver_local(std::move(p));
    });
    return {};
  }
  IpEgress* egress = route_for(dst);
  if (egress == nullptr) {
    ++dropped_no_route_;
    return Errc::no_route;
  }
  return emit(*egress, p);
}

util::Result<void> IpNode::emit(IpEgress& egress, const IpPacket& p) {
  const std::size_t max_payload = egress.mtu() - kIpHeaderBytes;
  if (p.payload.size() + kIpHeaderBytes <= egress.mtu()) {
    egress.transmit(*this, serialize(p));
    return {};
  }
  // Fragment: every piece but the last carries a multiple of 8 bytes.
  const std::size_t piece = max_payload & ~std::size_t{7};
  if (piece == 0) return Errc::message_too_long;
  std::size_t offset = 0;
  while (offset < p.payload.size()) {
    const std::size_t n = std::min(piece, p.payload.size() - offset);
    IpPacket frag;
    frag.src = p.src;
    frag.dst = p.dst;
    frag.protocol = p.protocol;
    frag.ttl = p.ttl;
    frag.id = p.id;
    frag.frag_offset = static_cast<std::uint16_t>(offset);
    frag.more_fragments = offset + n < p.payload.size();
    frag.payload.assign(p.payload.begin() + static_cast<long>(offset),
                        p.payload.begin() + static_cast<long>(offset + n));
    egress.transmit(*this, serialize(frag));
    ++fragments_sent_;
    offset += n;
  }
  return {};
}

void IpNode::frame_arrival(util::BytesView wire) {
  auto parsed = parse_ip_packet(wire);
  if (!parsed) return;  // corrupted frames vanish, as on real links
  IpPacket p = std::move(*parsed);
  if (p.dst == addr_) {
    deliver_or_reassemble(std::move(p));
    return;
  }
  // Forward.
  if (p.ttl <= 1) {
    ++dropped_ttl_;
    return;
  }
  p.ttl -= 1;
  IpEgress* egress = route_for(p.dst);
  if (egress == nullptr) {
    ++dropped_no_route_;
    return;
  }
  ++forwarded_;
  (void)emit(*egress, p);
}

void IpNode::deliver_or_reassemble(IpPacket p) {
  if (!p.more_fragments && p.frag_offset == 0) {
    deliver_local(std::move(p));
    return;
  }
  sweep_reassembly();
  ReasmKey key{p.src, p.id};
  Reasm& r = reasm_[key];
  r.deadline = sim_.now() + kReassemblyTimeout;
  if (!p.more_fragments) {
    r.have_last = true;
    r.total = p.frag_offset + p.payload.size();
  }
  r.pieces[p.frag_offset] = p.payload;
  if (!r.have_last) return;
  // Complete when the byte ranges tile [0, total) exactly.
  std::size_t covered = 0;
  for (const auto& [off, bytes] : r.pieces) {
    if (off != covered) return;  // hole
    covered += bytes.size();
  }
  if (covered != r.total) return;
  IpPacket whole;
  whole.src = p.src;
  whole.dst = p.dst;
  whole.protocol = p.protocol;
  whole.id = p.id;
  whole.payload.reserve(r.total);
  for (const auto& [off, bytes] : r.pieces) {
    whole.payload.insert(whole.payload.end(), bytes.begin(), bytes.end());
  }
  reasm_.erase(key);
  ++reassembled_;
  deliver_local(std::move(whole));
}

void IpNode::deliver_local(IpPacket p) {
  auto it = protocols_.find(static_cast<std::uint8_t>(p.protocol));
  if (it == protocols_.end()) {
    ++dropped_no_handler_;
    return;
  }
  ++delivered_;
  it->second(p);
}

void IpNode::sweep_reassembly() {
  for (auto it = reasm_.begin(); it != reasm_.end();) {
    if (it->second.deadline <= sim_.now()) {
      it = reasm_.erase(it);
    } else {
      ++it;
    }
  }
}

}  // namespace xunet::ip
