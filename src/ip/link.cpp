#include "ip/link.hpp"

#include <algorithm>
#include <cassert>

#include "ip/node.hpp"

namespace xunet::ip {

IpLink::IpLink(sim::Simulator& sim, std::uint64_t rate_bps,
               sim::SimDuration propagation, std::size_t mtu)
    : sim_(sim), rate_bps_(rate_bps), propagation_(propagation), mtu_(mtu) {
  assert(rate_bps_ > 0 && mtu_ > 0);
}

void IpLink::attach(IpNode& a, IpNode& b) {
  assert(a_ == nullptr && b_ == nullptr);
  a_ = &a;
  b_ = &b;
  to_a_.dst = &a;
  to_b_.dst = &b;
  a.register_interface(*this);
  b.register_interface(*this);
}

IpNode* IpLink::peer_of(const IpNode& n) const noexcept {
  if (&n == a_) return b_;
  if (&n == b_) return a_;
  return nullptr;
}

void IpLink::transmit(const IpNode& from, util::Buffer wire) {
  assert(&from == a_ || &from == b_);
  Direction& dir = (&from == a_) ? to_b_ : to_a_;
  if (down_) {
    ++frames_dropped_;
    return;
  }
  if (loss_prob_ > 0.0 && rng_ != nullptr && rng_->chance(loss_prob_)) {
    ++frames_dropped_;
    return;
  }
  const auto bits = static_cast<std::uint64_t>(wire.size()) * 8;
  const auto tx_time = sim::nanoseconds(
      static_cast<std::int64_t>(bits * 1'000'000'000ull / rate_bps_));
  const sim::SimTime start = std::max(dir.line_free_at, sim_.now());
  const sim::SimTime done = start + tx_time;
  dir.line_free_at = done;
  ++frames_sent_;
  if (corrupt_prob_ > 0.0 && rng_ != nullptr && rng_->chance(corrupt_prob_) &&
      !wire.empty()) {
    // Flip one bit somewhere in the frame (header corruption is caught by
    // the IP header checksum; payload corruption is the interesting case).
    wire[rng_->below(wire.size())] ^= static_cast<std::uint8_t>(
        1u << rng_->below(8));
    ++frames_corrupted_;
  }
  sim::SimTime arrival = done + propagation_;
  if (reorder_prob_ > 0.0 && rng_ != nullptr && rng_->chance(reorder_prob_)) {
    arrival = arrival + sim::nanoseconds(static_cast<std::int64_t>(
                            rng_->below(static_cast<std::uint64_t>(
                                std::max<std::int64_t>(1, reorder_extra_.ns())))));
    ++frames_reordered_;
  }
  sim_.schedule_at(arrival, [this, dst = dir.dst, wire = std::move(wire)] {
    dst->frame_arrival(wire, *this);
  });
}

}  // namespace xunet::ip
