#include "ip/packet.hpp"

#include <charconv>

#include "util/checksum.hpp"

namespace xunet::ip {

using util::Errc;

std::string to_string(IpAddress a) {
  char buf[20];
  std::snprintf(buf, sizeof buf, "%u.%u.%u.%u", (a.value >> 24) & 0xFF,
                (a.value >> 16) & 0xFF, (a.value >> 8) & 0xFF, a.value & 0xFF);
  return buf;
}

util::Result<IpAddress> parse_ip(std::string_view s) {
  std::uint32_t value = 0;
  int parts = 0;
  while (parts < 4) {
    std::size_t dot = s.find('.');
    std::string_view part =
        dot == std::string_view::npos ? s : s.substr(0, dot);
    unsigned byte = 0;
    auto [ptr, ec] = std::from_chars(part.data(), part.data() + part.size(), byte);
    if (ec != std::errc{} || ptr != part.data() + part.size() || byte > 255) {
      return Errc::invalid_argument;
    }
    value = value << 8 | byte;
    ++parts;
    if (dot == std::string_view::npos) {
      s = {};
      break;
    }
    s = s.substr(dot + 1);
  }
  if (parts != 4 || !s.empty()) return Errc::invalid_argument;
  return IpAddress{value};
}

util::Buffer serialize(const IpPacket& p) {
  util::Writer w;
  w.u8(0x45);  // version 4, IHL 5
  w.u8(0);     // TOS
  w.u16(static_cast<std::uint16_t>(kIpHeaderBytes + p.payload.size()));
  w.u16(p.id);
  // Flags(3) + fragment offset(13), offset in 8-byte units.
  std::uint16_t ff = static_cast<std::uint16_t>((p.frag_offset / 8) & 0x1FFF);
  if (p.more_fragments) ff |= 0x2000;
  w.u16(ff);
  w.u8(p.ttl);
  w.u8(static_cast<std::uint8_t>(p.protocol));
  w.u16(0);  // checksum placeholder
  w.u32(p.src.value);
  w.u32(p.dst.value);
  util::Buffer out = w.take();
  std::uint16_t csum = util::internet_checksum({out.data(), kIpHeaderBytes});
  out[10] = static_cast<std::uint8_t>(csum >> 8);
  out[11] = static_cast<std::uint8_t>(csum);
  out.insert(out.end(), p.payload.begin(), p.payload.end());
  return out;
}

util::Result<IpPacket> parse_ip_packet(util::BytesView wire) {
  if (wire.size() < kIpHeaderBytes) return Errc::protocol_error;
  if (!util::checksum_ok(wire.subspan(0, kIpHeaderBytes))) {
    return Errc::protocol_error;
  }
  util::Reader r(wire);
  auto vihl = r.u8();
  if (!vihl || *vihl != 0x45) return Errc::protocol_error;
  (void)r.u8();  // TOS
  auto total = r.u16();
  if (!total || *total != wire.size()) return Errc::protocol_error;
  IpPacket p;
  p.id = *r.u16();
  std::uint16_t ff = *r.u16();
  p.more_fragments = (ff & 0x2000) != 0;
  p.frag_offset = static_cast<std::uint16_t>((ff & 0x1FFF) * 8);
  p.ttl = *r.u8();
  p.protocol = static_cast<IpProto>(*r.u8());
  (void)r.u16();  // checksum (already verified)
  p.src.value = *r.u32();
  p.dst.value = *r.u32();
  p.payload = util::to_buffer(r.rest());
  return p;
}

}  // namespace xunet::ip
