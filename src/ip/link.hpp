// link.hpp — full-duplex point-to-point IP links (Ethernet/FDDI models).
//
// The paper's hosts reach their router over "reliable FDDI links"; the MTU
// and rate here are the knobs that distinguish FDDI from Ethernet.
#pragma once

#include <cstdint>

#include "sim/simulator.hpp"
#include "util/buffer.hpp"
#include "util/rng.hpp"

namespace xunet::ip {

class IpNode;

/// Anything a route can point at: a physical link, or a virtual interface
/// such as IP-over-ATM (§1: Xunet carried IP over its PVCs).
class IpEgress {
 public:
  virtual ~IpEgress() = default;
  /// Transmit a serialized IP packet originated/forwarded by `from`.
  virtual void transmit(const IpNode& from, util::Buffer wire) = 0;
  /// Largest IP packet this egress carries without fragmentation.
  [[nodiscard]] virtual std::size_t mtu() const = 0;
};

/// Canonical link parameter sets.
inline constexpr std::uint64_t kFddiBps = 100'000'000;
inline constexpr std::size_t kFddiMtu = 4352;
inline constexpr std::uint64_t kEthernetBps = 10'000'000;
inline constexpr std::size_t kEthernetMtu = 1500;

/// Point-to-point duplex link between two IpNodes.  Each direction
/// serializes frames at the line rate and applies propagation delay.
class IpLink : public IpEgress {
 public:
  IpLink(sim::Simulator& sim, std::uint64_t rate_bps,
         sim::SimDuration propagation, std::size_t mtu);

  /// Attach both ends.  Must be called exactly once; registers this link as
  /// an interface on both nodes.
  void attach(IpNode& a, IpNode& b);

  /// Transmit a serialized IP packet from `from` (must be an attached end).
  void transmit(const IpNode& from, util::Buffer wire) override;

  /// Independent per-frame loss with probability `p` (rng must outlive us).
  void set_loss(double p, util::Rng* rng) noexcept {
    loss_prob_ = p;
    rng_ = rng;
  }

  /// Fail (or restore) the link: while down, every frame in either
  /// direction is dropped — an unplugged FDDI ring, for flap experiments.
  void set_down(bool down) noexcept { down_ = down; }
  [[nodiscard]] bool is_down() const noexcept { return down_; }

  /// With probability `p`, delay a frame by up to `max_extra` beyond its
  /// normal arrival, letting later frames overtake it (reordering).
  void set_reorder(double p, sim::SimDuration max_extra,
                   util::Rng* rng) noexcept {
    reorder_prob_ = p;
    reorder_extra_ = max_extra;
    rng_ = rng;
  }

  /// With probability `p`, flip one payload byte in transit (models the
  /// rare undetected link error the encapsulation checksum extension
  /// guards against; the IP *header* checksum still protects the header).
  void set_corrupt(double p, util::Rng* rng) noexcept {
    corrupt_prob_ = p;
    rng_ = rng;
  }

  [[nodiscard]] std::size_t mtu() const noexcept override { return mtu_; }
  [[nodiscard]] std::uint64_t rate_bps() const noexcept { return rate_bps_; }
  [[nodiscard]] sim::SimDuration propagation() const noexcept { return propagation_; }
  [[nodiscard]] IpNode* peer_of(const IpNode& n) const noexcept;
  [[nodiscard]] std::uint64_t frames_sent() const noexcept { return frames_sent_; }
  [[nodiscard]] std::uint64_t frames_dropped() const noexcept { return frames_dropped_; }
  [[nodiscard]] std::uint64_t frames_reordered() const noexcept { return frames_reordered_; }
  [[nodiscard]] std::uint64_t frames_corrupted() const noexcept { return frames_corrupted_; }

 private:
  struct Direction {
    IpNode* dst = nullptr;
    sim::SimTime line_free_at{};
  };

  sim::Simulator& sim_;
  std::uint64_t rate_bps_;
  sim::SimDuration propagation_;
  std::size_t mtu_;
  IpNode* a_ = nullptr;
  IpNode* b_ = nullptr;
  Direction to_a_;
  Direction to_b_;
  bool down_ = false;
  double loss_prob_ = 0.0;
  double reorder_prob_ = 0.0;
  sim::SimDuration reorder_extra_{};
  double corrupt_prob_ = 0.0;
  util::Rng* rng_ = nullptr;
  std::uint64_t frames_sent_ = 0;
  std::uint64_t frames_dropped_ = 0;
  std::uint64_t frames_reordered_ = 0;
  std::uint64_t frames_corrupted_ = 0;
};

}  // namespace xunet::ip
