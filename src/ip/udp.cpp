#include "ip/udp.hpp"

namespace xunet::ip {

using util::Errc;

UdpLayer::UdpLayer(IpNode& node) : node_(node) {
  node_.register_protocol(IpProto::udp,
                          [this](const IpPacket& p) { packet_arrival(p); });
}

util::Result<void> UdpLayer::bind(std::uint16_t port, Handler handler) {
  if (port == 0 || !handler) return Errc::invalid_argument;
  if (ports_.contains(port)) return Errc::address_in_use;
  ports_.emplace(port, std::move(handler));
  return {};
}

util::Result<std::uint16_t> UdpLayer::bind_ephemeral(Handler handler) {
  for (int attempts = 0; attempts < 64 * 1024; ++attempts) {
    std::uint16_t p = next_ephemeral_;
    next_ephemeral_ = next_ephemeral_ >= 65535 ? 1024 : next_ephemeral_ + 1;
    if (!ports_.contains(p)) {
      if (auto r = bind(p, handler); !r) return r.error();
      return p;
    }
  }
  return Errc::no_resources;
}

util::Result<void> UdpLayer::send(IpAddress dst, std::uint16_t dst_port,
                                  std::uint16_t src_port, util::BytesView data) {
  util::Writer w;
  w.u16(src_port);
  w.u16(dst_port);
  w.u16(static_cast<std::uint16_t>(kUdpHeaderBytes + data.size()));
  w.u16(0);  // checksum unused in the simulation (links verify integrity)
  w.bytes(data);
  return node_.send(dst, IpProto::udp, w.view());
}

void UdpLayer::packet_arrival(const IpPacket& p) {
  util::Reader r(p.payload);
  auto src_port = r.u16();
  auto dst_port = r.u16();
  auto length = r.u16();
  (void)r.u16();  // checksum
  if (!src_port || !dst_port || !length ||
      *length != kUdpHeaderBytes + r.remaining()) {
    ++dropped_;
    return;
  }
  auto it = ports_.find(*dst_port);
  if (it == ports_.end()) {
    ++dropped_;
    return;
  }
  ++received_;
  it->second(p.src, *src_port, r.rest());
}

}  // namespace xunet::ip
