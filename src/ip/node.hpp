// node.hpp — an IP stack instance: interfaces, forwarding, fragmentation.
//
// Every simulated machine (host or router) embeds one IpNode.  Routers
// forward between their interfaces; hosts typically hold a default route to
// their router — exactly the paper's topology ("any host with IP
// connectivity to a router").
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <unordered_map>

#include "ip/link.hpp"
#include "ip/packet.hpp"

namespace xunet::ip {

/// How long an incomplete fragment reassembly is kept before being dropped.
inline constexpr sim::SimDuration kReassemblyTimeout = sim::seconds(30);

/// One IP stack.
class IpNode {
 public:
  /// Handler for a locally delivered datagram of a given protocol.
  using ProtoHandler = std::function<void(const IpPacket&)>;

  IpNode(sim::Simulator& sim, std::string name, IpAddress addr);

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] IpAddress address() const noexcept { return addr_; }
  [[nodiscard]] sim::Simulator& simulator() noexcept { return sim_; }

  /// Register the upper-layer handler for `proto`.  Replaces any previous
  /// handler (the kernel's protocol switch table has one slot per protocol).
  void register_protocol(IpProto proto, ProtoHandler handler);

  /// Host route: datagrams for exactly `dst` leave via `egress`.
  void add_route(IpAddress dst, IpEgress& egress);
  /// Fallback route for everything without a host route.
  void set_default_route(IpEgress& egress);

  /// Send `payload` to `dst` as protocol `proto`, fragmenting to the
  /// egress MTU.  Fails with no_route when no interface matches and
  /// message_too_long when a fragment cannot carry even 8 bytes.
  util::Result<void> send(IpAddress dst, IpProto proto, util::BytesView payload);

  /// Called by links (or virtual interfaces) when a frame arrives here.
  void frame_arrival(util::BytesView wire);
  /// Backwards-compatible overload; the ingress identity is not used.
  void frame_arrival(util::BytesView wire, IpLink& from) {
    (void)from;
    frame_arrival(wire);
  }

  /// Interface registration (called by IpLink::attach).
  void register_interface(IpLink& link) { interfaces_.push_back(&link); }

  // -- statistics ----------------------------------------------------------
  [[nodiscard]] std::uint64_t delivered() const noexcept { return delivered_; }
  [[nodiscard]] std::uint64_t forwarded() const noexcept { return forwarded_; }
  [[nodiscard]] std::uint64_t dropped_no_route() const noexcept { return dropped_no_route_; }
  [[nodiscard]] std::uint64_t dropped_ttl() const noexcept { return dropped_ttl_; }
  [[nodiscard]] std::uint64_t dropped_no_handler() const noexcept { return dropped_no_handler_; }
  [[nodiscard]] std::uint64_t fragments_sent() const noexcept { return fragments_sent_; }
  [[nodiscard]] std::uint64_t reassembled() const noexcept { return reassembled_; }
  /// Incomplete reassembly contexts (leak audits).
  [[nodiscard]] std::size_t pending_reassemblies() const noexcept { return reasm_.size(); }

 private:
  struct ReasmKey {
    IpAddress src;
    std::uint16_t id;
    auto operator<=>(const ReasmKey&) const = default;
  };
  struct Reasm {
    std::map<std::uint16_t, util::Buffer> pieces;  ///< offset -> bytes
    bool have_last = false;
    std::size_t total = 0;
    sim::SimTime deadline{};
  };

  [[nodiscard]] IpEgress* route_for(IpAddress dst) const;
  void deliver_local(IpPacket p);
  void deliver_or_reassemble(IpPacket p);
  util::Result<void> emit(IpEgress& egress, const IpPacket& p);
  void sweep_reassembly();

  sim::Simulator& sim_;
  std::string name_;
  IpAddress addr_;
  std::vector<IpLink*> interfaces_;
  std::unordered_map<IpAddress, IpEgress*> routes_;
  IpEgress* default_route_ = nullptr;
  std::unordered_map<std::uint8_t, ProtoHandler> protocols_;
  std::map<ReasmKey, Reasm> reasm_;
  std::uint16_t next_id_ = 1;
  std::uint64_t delivered_ = 0;
  std::uint64_t forwarded_ = 0;
  std::uint64_t dropped_no_route_ = 0;
  std::uint64_t dropped_ttl_ = 0;
  std::uint64_t dropped_no_handler_ = 0;
  std::uint64_t fragments_sent_ = 0;
  std::uint64_t reassembled_ = 0;
};

}  // namespace xunet::ip
