// packet.hpp — the simulated IP datagram and its wire form.
//
// We carry a real 20-byte header (version/ihl, tos, total length, id,
// flags/fragment offset, ttl, protocol, checksum, src, dst) so that header
// checksumming, fragmentation and wire sizing behave like the real thing.
#pragma once

#include <cstdint>

#include "ip/addr.hpp"
#include "util/buffer.hpp"

namespace xunet::ip {

/// Fixed IP header size (no options in this simulation).
inline constexpr std::size_t kIpHeaderBytes = 20;
/// Default initial TTL.
inline constexpr std::uint8_t kDefaultTtl = 64;

/// Parsed IP datagram.
struct IpPacket {
  IpAddress src;
  IpAddress dst;
  IpProto protocol = IpProto::udp;
  std::uint8_t ttl = kDefaultTtl;
  std::uint16_t id = 0;          ///< identification (fragment grouping)
  bool more_fragments = false;   ///< MF flag
  std::uint16_t frag_offset = 0; ///< in bytes (multiple of 8 on the wire)
  util::Buffer payload;

  /// Total bytes on the wire.
  [[nodiscard]] std::size_t wire_size() const noexcept {
    return kIpHeaderBytes + payload.size();
  }
};

/// Serialize with a correct header checksum.
[[nodiscard]] util::Buffer serialize(const IpPacket& p);

/// Parse and verify; protocol_error on truncation or checksum failure.
[[nodiscard]] util::Result<IpPacket> parse_ip_packet(util::BytesView wire);

}  // namespace xunet::ip
