// addr.hpp — IPv4-style addresses for the simulated internetwork.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "util/result.hpp"

namespace xunet::ip {

/// 32-bit IP address, dotted-quad text form.
struct IpAddress {
  std::uint32_t value = 0;

  [[nodiscard]] bool valid() const noexcept { return value != 0; }
  auto operator<=>(const IpAddress&) const = default;
};

/// Render as "a.b.c.d".
[[nodiscard]] std::string to_string(IpAddress a);

/// Parse "a.b.c.d"; invalid_argument on malformed text.
[[nodiscard]] util::Result<IpAddress> parse_ip(std::string_view s);

/// Convenience literal-ish constructor.
[[nodiscard]] constexpr IpAddress make_ip(std::uint8_t a, std::uint8_t b,
                                          std::uint8_t c, std::uint8_t d) noexcept {
  return IpAddress{static_cast<std::uint32_t>(a) << 24 |
                   static_cast<std::uint32_t>(b) << 16 |
                   static_cast<std::uint32_t>(c) << 8 | d};
}

/// IP protocol numbers used in the simulation.  IPPROTO_ATM is the new raw
/// protocol the paper defines for AAL-over-IP encapsulation (§5.4); the
/// value is ours to choose since the paper never names one.
enum class IpProto : std::uint8_t {
  tcp = 6,
  udp = 17,
  atm = 121,  ///< IPPROTO_ATM: AAL frame encapsulation
};

}  // namespace xunet::ip

template <>
struct std::hash<xunet::ip::IpAddress> {
  std::size_t operator()(const xunet::ip::IpAddress& a) const noexcept {
    return std::hash<std::uint32_t>{}(a.value);
  }
};
