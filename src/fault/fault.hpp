// fault.hpp — seeded, scripted fault injection for Xunet deployments.
//
// Robustness experiments previously reached into individual knobs by hand:
// ip::IpLink::set_corrupt here, CellLink::set_loss there, switch surgery in
// a test body.  FaultPlan unifies them behind one API shared by tests,
// benches and examples: a schedule of faults — signaling messages dropped,
// duplicated, reordered or corrupted by match rule; ATM trunks and IP links
// flapped; sighosts crashed and restarted — all driven by one seeded
// util::Rng, so a run reproduces exactly from (topology, workload, seed).
#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <optional>
#include <string>
#include <vector>

#include "core/testbed.hpp"
#include "util/rng.hpp"

namespace xunet::fault {

/// What the plan actually did to traffic, by category.  Deterministic for a
/// given seed: two same-seed runs report identical numbers.
struct InjectionStats {
  std::uint64_t dropped = 0;     ///< signaling messages lost
  std::uint64_t duplicated = 0;  ///< signaling messages delivered twice
  std::uint64_t corrupted = 0;   ///< signaling messages bit-flipped
  std::uint64_t delayed = 0;     ///< signaling messages held back (reorder)
  std::uint64_t events_fired = 0;  ///< scripted events executed
};

/// One wire-fault rule, applied to signaling messages between sighosts at
/// the moment they hit the PVC.  Empty node/peer match any sender/receiver;
/// an unset type matches every message type.  The rule fires with
/// `probability` inside the [from, until) activity window.
struct WireRule {
  std::string node;  ///< sender sighost name ("" = any)
  std::string peer;  ///< receiver sighost name ("" = any)
  std::optional<sig::MsgType> type;
  double probability = 1.0;
  sig::WireFault fault = sig::WireFault::drop;
  sim::SimDuration delay{};         ///< base hold-back when fault == delay
  sim::SimDuration delay_jitter{};  ///< + uniform[0, jitter) on top
  sim::SimTime from{};              ///< window start (default: always)
  sim::SimTime until{std::numeric_limits<std::int64_t>::max()};
};

/// A deterministic fault schedule over one Testbed.  Build the plan (rules
/// plus timed events), then arm() it once before running the simulator.
class FaultPlan {
 public:
  FaultPlan(core::Testbed& tb, std::uint64_t seed);
  ~FaultPlan();
  FaultPlan(const FaultPlan&) = delete;
  FaultPlan& operator=(const FaultPlan&) = delete;

  // -- wire faults on signaling messages -----------------------------------
  /// Rules MAY be added after arm(): the wire hook consults `rules_` live on
  /// every message, so a rule appended mid-run takes effect immediately (use
  /// WireRule::from/until for precise activity windows).  This is unlike
  /// scripted events, which are rejected after arm() — see at().
  void add_rule(WireRule r) { rules_.push_back(std::move(r)); }
  /// Lose fraction `p` of all signaling messages, both directions.
  void drop_signaling(double p);
  /// Deliver fraction `p` of signaling messages twice.
  void duplicate_signaling(double p);
  /// Flip one bit in fraction `p` of serialized signaling frames (the
  /// receiver's framer rejects them; retransmission recovers).
  void corrupt_signaling(double p);
  /// Hold back fraction `p` of signaling messages by delay + uniform
  /// jitter, letting later messages overtake them.
  void reorder_signaling(double p, sim::SimDuration delay,
                         sim::SimDuration jitter);

  // -- scripted events (delays are measured from arm()) --------------------
  /// Run an arbitrary action at `when`.  Every scripted event is noted in
  /// the flight recorder; `post_mortem` additionally snapshots the
  /// recorder's ring as a `xunet.trace.v1` dump right after the event runs
  /// (crash/trunk-cut events do this by default).
  ///
  /// Contract: events must be registered BEFORE arm().  An event added
  /// afterwards would silently never fire (arm() is what schedules them), so
  /// that misuse aborts the process instead.  Wire rules are the opposite —
  /// see add_rule().
  void at(sim::SimDuration when, std::string label, std::function<void()> fn,
          bool post_mortem = false);
  /// Kill router i's sighost process at `when`.
  void crash_sighost_at(sim::SimDuration when, std::size_t router);
  /// Bring up a replacement sighost on router i (with recovery) at `when`.
  void restart_sighost_at(sim::SimDuration when, std::size_t router);
  /// Fibre cut: both directions of the trunk between two switches go down
  /// at `when` and come back `duration` later.
  void cut_trunk(sim::SimDuration when, sim::SimDuration duration,
                 const std::string& switch_a, const std::string& switch_b);
  /// Take host i's FDDI link down at `when`, back up `duration` later.
  void flap_host_link(sim::SimDuration when, sim::SimDuration duration,
                      std::size_t host);

  // -- steady-state cell-level impairments (applied at arm()) --------------
  /// Drop each ATM cell on router i's endpoint links with probability `p`.
  void atm_cell_loss(std::size_t router, double p);
  /// Flip one payload bit per cell with probability `p` on router i's
  /// endpoint links; the AAL5 CRC discards the damaged frame.
  void atm_cell_corruption(std::size_t router, double p);

  /// Windowed variant for chaos schedules: impair router i's endpoint links
  /// with cell loss `loss` and cell corruption `corrupt` starting at `when`,
  /// healing both back to zero `duration` later.  Scripted (subject to the
  /// before-arm() contract), unlike the steady-state setters above.
  void impair_cells(sim::SimDuration when, sim::SimDuration duration,
                    std::size_t router, double loss, double corrupt);

  /// Install the wire-fault hook and schedule every event.  Call exactly
  /// once: arming twice would double-schedule every event, so a second call
  /// aborts the process.
  void arm();
  [[nodiscard]] bool armed() const noexcept { return armed_; }

  [[nodiscard]] const InjectionStats& stats() const noexcept { return stats_; }
  [[nodiscard]] util::Rng& rng() noexcept { return rng_; }

 private:
  struct Event {
    sim::SimDuration when{};
    std::string label;
    std::function<void()> fn;
    bool post_mortem = false;  ///< dump the flight recorder after firing
  };
  struct CellImpairment {
    std::size_t router = 0;
    double loss = 0.0;
    double corrupt = 0.0;
  };

  sig::WireVerdict on_wire(const std::string& self, const std::string& peer,
                           const sig::Msg& m);

  core::Testbed& tb_;
  util::Rng rng_;
  std::vector<WireRule> rules_;
  std::vector<Event> events_;
  std::vector<CellImpairment> impairments_;
  InjectionStats stats_;
  bool armed_ = false;
};

}  // namespace xunet::fault
