#include "fault/fault.hpp"

#include <cstdio>
#include <cstdlib>

namespace xunet::fault {

namespace {
// Plan misuse is a programming error in the test/experiment, not a runtime
// condition: fail loudly at the call site rather than half-applying a
// schedule (the old behaviour silently never fired post-arm() events).
[[noreturn]] void plan_misuse(const char* what) {
  std::fprintf(stderr, "FaultPlan misuse: %s\n", what);
  std::abort();
}
}  // namespace

FaultPlan::FaultPlan(core::Testbed& tb, std::uint64_t seed)
    : tb_(tb), rng_(seed) {}

FaultPlan::~FaultPlan() {
  // The installed hook captures `this`; a plan that dies before its testbed
  // must take the hook with it.
  if (armed_) tb_.set_wire_fault(nullptr);
}

// ------------------------------------------------------------- wire rules

void FaultPlan::drop_signaling(double p) {
  WireRule r;
  r.fault = sig::WireFault::drop;
  r.probability = p;
  add_rule(std::move(r));
}

void FaultPlan::duplicate_signaling(double p) {
  WireRule r;
  r.fault = sig::WireFault::duplicate;
  r.probability = p;
  add_rule(std::move(r));
}

void FaultPlan::corrupt_signaling(double p) {
  WireRule r;
  r.fault = sig::WireFault::corrupt;
  r.probability = p;
  add_rule(std::move(r));
}

void FaultPlan::reorder_signaling(double p, sim::SimDuration delay,
                                  sim::SimDuration jitter) {
  WireRule r;
  r.fault = sig::WireFault::delay;
  r.probability = p;
  r.delay = delay;
  r.delay_jitter = jitter;
  add_rule(std::move(r));
}

sig::WireVerdict FaultPlan::on_wire(const std::string& self,
                                    const std::string& peer,
                                    const sig::Msg& m) {
  const sim::SimTime now = tb_.sim().now();
  for (const WireRule& r : rules_) {
    if (!r.node.empty() && r.node != self) continue;
    if (!r.peer.empty() && r.peer != peer) continue;
    if (r.type && *r.type != m.type) continue;
    if (now < r.from || now >= r.until) continue;
    if (!rng_.chance(r.probability)) continue;
    sig::WireVerdict v;
    v.fault = r.fault;
    switch (r.fault) {
      case sig::WireFault::drop:
        ++stats_.dropped;
        break;
      case sig::WireFault::duplicate:
        ++stats_.duplicated;
        break;
      case sig::WireFault::corrupt:
        ++stats_.corrupted;
        break;
      case sig::WireFault::delay:
        v.delay = r.delay;
        if (r.delay_jitter.ns() > 0) {
          v.delay += sim::nanoseconds(static_cast<std::int64_t>(
              rng_.below(static_cast<std::uint64_t>(r.delay_jitter.ns()))));
        }
        ++stats_.delayed;
        break;
      case sig::WireFault::deliver:
        break;
    }
    return v;  // first matching rule wins
  }
  return {};
}

// --------------------------------------------------------- scripted events

void FaultPlan::at(sim::SimDuration when, std::string label,
                   std::function<void()> fn, bool post_mortem) {
  if (armed_) {
    plan_misuse("scripted event added after arm() would never fire; "
                "register all events before arming (wire rules via "
                "add_rule() may still be added live)");
  }
  events_.push_back({when, std::move(label), std::move(fn), post_mortem});
}

void FaultPlan::crash_sighost_at(sim::SimDuration when, std::size_t router) {
  at(when, "crash sighost " + std::to_string(router),
     [this, router] { tb_.crash_sighost(router); },
     /*post_mortem=*/true);
}

void FaultPlan::restart_sighost_at(sim::SimDuration when, std::size_t router) {
  at(when, "restart sighost " + std::to_string(router),
     [this, router] { (void)tb_.restart_sighost(router); });
}

void FaultPlan::cut_trunk(sim::SimDuration when, sim::SimDuration duration,
                          const std::string& switch_a,
                          const std::string& switch_b) {
  auto set_trunk = [this, switch_a, switch_b](bool down) {
    atm::AtmSwitch* a = tb_.network().switch_by_name(switch_a);
    atm::AtmSwitch* b = tb_.network().switch_by_name(switch_b);
    if (a == nullptr || b == nullptr) return;
    for (atm::CellLink* l : tb_.network().trunk_links(*a, *b)) {
      l->set_down(down);
    }
  };
  at(when, "cut trunk " + switch_a + "--" + switch_b,
     [set_trunk] { set_trunk(true); },
     /*post_mortem=*/true);
  at(when + duration, "heal trunk " + switch_a + "--" + switch_b,
     [set_trunk] { set_trunk(false); });
}

void FaultPlan::flap_host_link(sim::SimDuration when, sim::SimDuration duration,
                               std::size_t host) {
  at(when, "host link " + std::to_string(host) + " down",
     [this, host] { tb_.host(host).link->set_down(true); });
  at(when + duration, "host link " + std::to_string(host) + " up",
     [this, host] { tb_.host(host).link->set_down(false); });
}

// ------------------------------------------------------- cell impairments

void FaultPlan::atm_cell_loss(std::size_t router, double p) {
  impairments_.push_back({router, p, 0.0});
}

void FaultPlan::atm_cell_corruption(std::size_t router, double p) {
  impairments_.push_back({router, 0.0, p});
}

void FaultPlan::impair_cells(sim::SimDuration when, sim::SimDuration duration,
                             std::size_t router, double loss, double corrupt) {
  auto set_impair = [this, router, loss, corrupt](bool on) {
    const atm::AtmAddress& addr = tb_.router(router).kernel->atm_address();
    for (atm::CellLink* l : tb_.network().endpoint_links(addr)) {
      l->set_loss(on ? loss : 0.0, &rng_);
      l->set_corrupt(on ? corrupt : 0.0, &rng_);
    }
  };
  at(when, "impair cells router " + std::to_string(router),
     [set_impair] { set_impair(true); });
  at(when + duration, "heal cells router " + std::to_string(router),
     [set_impair] { set_impair(false); });
}

// ------------------------------------------------------------------- arm

void FaultPlan::arm() {
  if (armed_) {
    plan_misuse("arm() called twice; every scripted event would be "
                "scheduled (and fire) twice");
  }
  armed_ = true;
  tb_.set_wire_fault([this](const std::string& self, const std::string& peer,
                            const sig::Msg& m) { return on_wire(self, peer, m); });
  for (const CellImpairment& imp : impairments_) {
    const atm::AtmAddress& addr =
        tb_.router(imp.router).kernel->atm_address();
    for (atm::CellLink* l : tb_.network().endpoint_links(addr)) {
      if (imp.loss > 0.0) l->set_loss(imp.loss, &rng_);
      if (imp.corrupt > 0.0) l->set_corrupt(imp.corrupt, &rng_);
    }
  }
  for (const Event& e : events_) {
    tb_.sim().schedule(e.when, [this, label = e.label, fn = e.fn,
                                pm = e.post_mortem] {
      ++stats_.events_fired;
      tb_.sim().logger().info("fault", label);
      // The fault itself is the last record before the post-mortem cut.
      obs::Observability& o = tb_.sim().obs();
      o.flight_note("fault", "event", "plan", label);
      fn();
      // Destructive events snapshot the ring *after* running, so whatever
      // the crash/cut handling itself noted is part of the dump.
      if (pm) o.flight().trigger("fault:" + label);
    });
  }
}

}  // namespace xunet::fault
