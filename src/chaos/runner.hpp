// runner.hpp — chaos case execution, delta-debugging shrinker, and the
// xunet.chaos.v1 repro artifact.
//
// One ChaosCase fully determines a run: topology + workload + profile +
// seed.  run_case() generates the schedule from the seed and drives it to
// quiescence; run_events() replays an explicit event list (the shrinker's
// and replayer's entry point).  When the InvariantChecker reports
// violations, shrink() bisects the schedule down to a minimal repro
// (ddmin) and to_artifact() emits the whole story — case, events,
// violations, workload, flight-recorder post-mortem — as JSONL that
// replay_artifact() re-executes byte-identically.
#pragma once

#include <string>
#include <vector>

#include "chaos/chaos.hpp"
#include "chaos/invariant.hpp"

namespace xunet::chaos {

/// Schema marker of the repro artifact (first line, "schema" key).
inline constexpr std::string_view kChaosSchema = "xunet.chaos.v1";

/// Everything that determines a chaos run.
struct ChaosCase {
  int routers = 3;
  int hosts = 0;
  /// Sighost shards per router (TestbedConfig::sighost_shards); the
  /// workload apps register with / round-robin over every shard.
  int shards = 1;
  int calls = 8;
  sim::SimDuration call_stagger = sim::milliseconds(150);
  int close_every = 2;      ///< every k-th delivered call is closed (0 = none)
  int frames_per_call = 2;  ///< data frames sent on each delivered call
  std::uint64_t seed = 1;
  ChaosProfile profile;
  /// Sabotage seam: make every restarted sighost skip its kernel/network
  /// recovery audit (SighostConfig::recovery_skip_audit), planting the
  /// orphaned-state divergence the checker must find.
  bool sabotage_skip_audit = false;
};

/// Result of one run to quiescence.
struct RunOutcome {
  ChaosSchedule schedule;             ///< what was injected
  std::vector<Violation> violations;  ///< empty = all invariants held
  WorkloadCounts workload;
  std::string post_mortem;  ///< flight-recorder dump when violations found
};

/// Generate the schedule from (topology, profile, seed) and run it.
[[nodiscard]] RunOutcome run_case(const ChaosCase& c);

/// Run an explicit event list on the case's topology/workload/seed.
[[nodiscard]] RunOutcome run_events(const ChaosCase& c,
                                    const std::vector<ChaosEvent>& events);

/// A shrunk failing schedule.
struct ShrinkResult {
  std::vector<ChaosEvent> minimal;  ///< smallest event list still failing
  std::string rule;                 ///< the invariant preserved while shrinking
  int iterations = 0;               ///< oracle runs spent
};

/// ddmin: bisect `failing`'s schedule to a locally minimal event list that
/// still violates the same (first) rule.  `max_runs` caps oracle re-runs.
[[nodiscard]] ShrinkResult shrink(const ChaosCase& c, const RunOutcome& failing,
                                  int max_runs = 48);

/// Serialize a run as a xunet.chaos.v1 JSONL artifact.  The header plus
/// `{"rec":"event"}` lines are sufficient to replay; violation, result and
/// post_mortem records document what the run produced.  Deterministic:
/// re-running the same case + events yields the identical byte string.
[[nodiscard]] std::string to_artifact(const ChaosCase& c,
                                      const std::vector<ChaosEvent>& events,
                                      const RunOutcome& outcome);

/// Parse a xunet.chaos.v1 artifact, re-run it, and re-serialize.
struct ReplayResult {
  bool parsed = false;     ///< false: not a valid xunet.chaos.v1 artifact
  RunOutcome outcome;      ///< the re-run
  std::string artifact;    ///< to_artifact() of the re-run (byte-comparable)
};
[[nodiscard]] ReplayResult replay_artifact(const std::string& jsonl);

}  // namespace xunet::chaos
