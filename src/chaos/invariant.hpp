// invariant.hpp — the cross-layer invariant checker.
//
// A call's state lives redundantly in four layers: the application's kernel
// sockets, the sighost five-list state machine, the network controller's
// active-VC table, and the per-switch routing tables.  Faults may delay
// convergence, but once the deployment is quiescent the layers must agree.
// capture() flattens all four layers of a Testbed into one plain-data
// Snapshot; check() is a pure function from Snapshot (plus workload
// counters) to a deterministic violation list, so tests can also plant
// violations by editing a Snapshot directly and assert the checker names
// them.
#pragma once

#include <string>
#include <vector>

#include "core/testbed.hpp"

namespace xunet::chaos {

/// One bound/connected PF_XUNET data socket (switched VCIs only).
struct KernelVciView {
  std::string machine;  ///< kernel that owns the socket
  std::string sighost;  ///< signaling entity responsible for this machine
  atm::Vci vci = atm::kInvalidVci;
  bool bound = false;  ///< receiving side (else connected / sending side)
};

/// One sighost VCI_mapping entry, with its endpoint resolved to a machine.
struct CallRecordView {
  std::string sighost;
  atm::Vci vci = atm::kInvalidVci;
  std::string call_key;
  bool confirmed = false;
  bool recovered = false;
  std::string endpoint_machine;  ///< machine whose kernel holds the socket
};

/// One sighost's list state (VCI_mapping lives in `call_records`).
struct SighostView {
  std::string name;
  bool alive = false;  ///< false while crashed (lists are then unknowable)
  std::vector<std::string> outgoing_calls;
  std::vector<std::string> incoming_calls;
  std::vector<atm::Vci> wait_for_bind;
};

/// One established switched VC in the network controller.
struct VcView {
  std::uint64_t id = 0;
  std::string src, dst;  ///< endpoint ATM addresses (sighost names)
  atm::Vci src_vci = atm::kInvalidVci;
  atm::Vci dst_vci = atm::kInvalidVci;
};

/// One switch routing-table entry, from either side of the audit.
struct RouteView {
  std::string sw;
  int in_port = -1;
  atm::Vci in_vci = atm::kInvalidVci;
  [[nodiscard]] auto operator<=>(const RouteView&) const = default;
};

/// One switch output port's bandwidth ledger (QoS conservation).
struct ReservationView {
  std::string sw;
  int port = -1;
  std::uint64_t reserved_bps = 0;
  std::uint64_t capacity_bps = 0;  ///< 0 = no output link attached
  [[nodiscard]] auto operator<=>(const ReservationView&) const = default;
};

/// All four layers, flattened and sorted (deterministic for a given run).
struct Snapshot {
  std::vector<KernelVciView> kernel_vcis;
  std::vector<SighostView> sighosts;
  std::vector<CallRecordView> call_records;
  std::vector<VcView> vcs;
  std::vector<RouteView> routes_installed;  ///< what the switches hold
  std::vector<RouteView> routes_expected;   ///< what active VCs own
  std::vector<ReservationView> reservations;  ///< per-port bandwidth ledgers
};

/// What the workload observed, for conservation and liveness.
struct WorkloadCounts {
  std::uint64_t opened = 0;
  std::uint64_t delivered = 0;  ///< opens that completed successfully
  std::uint64_t failed = 0;     ///< opens that failed with a definite cause
  std::uint64_t unresolved = 0; ///< opens with no outcome at quiescence
  std::uint64_t multi_fired = 0;  ///< open callbacks invoked more than once
};

/// One invariant breach.  `rule` is the stable machine-readable name;
/// `detail` pinpoints the offending object.  Both are byte-stable across
/// same-seed runs.
struct Violation {
  std::string rule;
  std::string detail;
  [[nodiscard]] auto operator<=>(const Violation&) const = default;
};

/// Rule names emitted by check().
inline constexpr const char* kOrphanKernelVci = "orphan-kernel-vci";
inline constexpr const char* kMissingKernelSocket = "missing-kernel-socket";
inline constexpr const char* kOrphanCallRecord = "orphan-call-record";
inline constexpr const char* kOrphanNetworkVc = "orphan-network-vc";
inline constexpr const char* kDanglingSwitchRoute = "dangling-switch-route";
inline constexpr const char* kMissingSwitchRoute = "missing-switch-route";
inline constexpr const char* kDoubleListedCall = "double-listed-call";
inline constexpr const char* kCallConservation = "call-conservation";
inline constexpr const char* kLiveness = "liveness";
inline constexpr const char* kQosOvercommit = "qos-overcommit";

/// Flatten every layer of `tb` at the current instant.  Null-safe against
/// crashed sighosts (their SighostView reports alive=false).
[[nodiscard]] Snapshot capture(core::Testbed& tb);

/// Cross-audit the layers.  Returns violations sorted by (rule, detail);
/// empty means every invariant holds.
[[nodiscard]] std::vector<Violation> check(const Snapshot& snap,
                                           const WorkloadCounts& workload);

}  // namespace xunet::chaos
