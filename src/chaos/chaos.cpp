#include "chaos/chaos.hpp"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "obs/export.hpp"

namespace xunet::chaos {

namespace {

/// Quantize a probability to 1/1000 steps.  json_number renders fixed
/// "%.6f", and k/1000 survives print→parse exactly (both are correctly
/// rounded to the same double), so quantized schedules replay
/// byte-identically through their JSONL form.
double quant(double p) {
  if (p < 0.0) p = 0.0;
  if (p > 1.0) p = 1.0;
  return static_cast<double>(static_cast<std::int64_t>(p * 1000.0 + 0.5)) /
         1000.0;
}

std::int64_t to_ms(sim::SimDuration d) { return d.ns() / 1'000'000; }

}  // namespace

const char* kind_name(ChaosEventKind k) noexcept {
  switch (k) {
    case ChaosEventKind::wire_rule: return "wire_rule";
    case ChaosEventKind::crash_restart: return "crash_restart";
    case ChaosEventKind::trunk_cut: return "trunk_cut";
    case ChaosEventKind::link_flap: return "link_flap";
    case ChaosEventKind::cell_impair: return "cell_impair";
  }
  return "unknown";
}

const char* fault_name(sig::WireFault f) noexcept {
  switch (f) {
    case sig::WireFault::deliver: return "deliver";
    case sig::WireFault::drop: return "drop";
    case sig::WireFault::duplicate: return "duplicate";
    case sig::WireFault::corrupt: return "corrupt";
    case sig::WireFault::delay: return "delay";
  }
  return "unknown";
}

ChaosSchedule ChaosSchedule::generate(int n_routers, int n_hosts,
                                      const ChaosProfile& profile,
                                      std::uint64_t seed) {
  ChaosSchedule s;
  s.seed = seed;
  s.profile = profile;
  util::Rng rng(seed);

  const std::int64_t horizon_ms = std::max<std::int64_t>(1, to_ms(profile.horizon));
  const std::int64_t heal_ms =
      std::max<std::int64_t>(horizon_ms + 1, to_ms(profile.heal_by));

  // All draws happen in a fixed order so (topology, profile, seed) fully
  // determines the event list.
  auto window = [&rng, heal_ms](std::int64_t at_ms, std::int64_t min_dur_ms) {
    std::int64_t span = heal_ms - at_ms;
    std::int64_t dur = min_dur_ms;
    if (span > min_dur_ms) {
      dur += static_cast<std::int64_t>(
          rng.below(static_cast<std::uint64_t>(span - min_dur_ms) + 1));
    }
    return std::min(dur, span);
  };

  const int n_wire = static_cast<int>(
      rng.below(static_cast<std::uint64_t>(profile.max_wire_rules) + 1));
  for (int i = 0; i < n_wire; ++i) {
    ChaosEvent e;
    e.kind = ChaosEventKind::wire_rule;
    const std::int64_t at_ms =
        static_cast<std::int64_t>(rng.below(static_cast<std::uint64_t>(horizon_ms)));
    e.at = sim::milliseconds(at_ms);
    e.duration = sim::milliseconds(window(at_ms, 200));
    switch (rng.below(4)) {
      case 0: e.fault = sig::WireFault::drop; break;
      case 1: e.fault = sig::WireFault::duplicate; break;
      case 2: e.fault = sig::WireFault::corrupt; break;
      default: e.fault = sig::WireFault::delay; break;
    }
    e.probability =
        quant(profile.wire_fault_intensity * (0.2 + 0.8 * rng.uniform()));
    e.node = rng.chance(0.5)
                 ? -1
                 : static_cast<int>(rng.below(static_cast<std::uint64_t>(n_routers)));
    if (e.fault == sig::WireFault::delay) {
      e.delay = sim::milliseconds(50 + static_cast<std::int64_t>(rng.below(200)));
      e.jitter = sim::milliseconds(static_cast<std::int64_t>(rng.below(100)));
    }
    s.events.push_back(e);
  }

  // Crash/restart pairs: at most one per router, and the replacement always
  // comes up before heal_by (with slack for recovery to run fault-free).
  const int n_crash = static_cast<int>(
      rng.below(static_cast<std::uint64_t>(profile.max_crash_restarts) + 1));
  std::vector<bool> crashed(static_cast<std::size_t>(n_routers), false);
  for (int i = 0; i < n_crash; ++i) {
    const int target =
        static_cast<int>(rng.below(static_cast<std::uint64_t>(n_routers)));
    const std::int64_t at_ms =
        static_cast<std::int64_t>(rng.below(static_cast<std::uint64_t>(horizon_ms)));
    if (crashed[static_cast<std::size_t>(target)]) continue;
    crashed[static_cast<std::size_t>(target)] = true;
    ChaosEvent e;
    e.kind = ChaosEventKind::crash_restart;
    e.node = target;
    e.at = sim::milliseconds(at_ms);
    const std::int64_t max_outage = std::max<std::int64_t>(300, heal_ms - at_ms - 500);
    e.duration = sim::milliseconds(
        300 + static_cast<std::int64_t>(
                  rng.below(static_cast<std::uint64_t>(max_outage - 300) + 1)));
    s.events.push_back(e);
  }

  if (n_routers >= 2) {
    const int n_cut = static_cast<int>(
        rng.below(static_cast<std::uint64_t>(profile.max_trunk_cuts) + 1));
    for (int i = 0; i < n_cut; ++i) {
      ChaosEvent e;
      e.kind = ChaosEventKind::trunk_cut;
      e.node =
          static_cast<int>(rng.below(static_cast<std::uint64_t>(n_routers - 1)));
      const std::int64_t at_ms = static_cast<std::int64_t>(
          rng.below(static_cast<std::uint64_t>(horizon_ms)));
      e.at = sim::milliseconds(at_ms);
      e.duration = sim::milliseconds(window(at_ms, 200));
      s.events.push_back(e);
    }
  }

  if (n_hosts > 0) {
    const int n_flap = static_cast<int>(
        rng.below(static_cast<std::uint64_t>(profile.max_link_flaps) + 1));
    for (int i = 0; i < n_flap; ++i) {
      ChaosEvent e;
      e.kind = ChaosEventKind::link_flap;
      e.node = static_cast<int>(rng.below(static_cast<std::uint64_t>(n_hosts)));
      const std::int64_t at_ms = static_cast<std::int64_t>(
          rng.below(static_cast<std::uint64_t>(horizon_ms)));
      e.at = sim::milliseconds(at_ms);
      e.duration = sim::milliseconds(window(at_ms, 100));
      s.events.push_back(e);
    }
  }

  const int n_impair = static_cast<int>(
      rng.below(static_cast<std::uint64_t>(profile.max_cell_impairments) + 1));
  for (int i = 0; i < n_impair; ++i) {
    ChaosEvent e;
    e.kind = ChaosEventKind::cell_impair;
    e.node = static_cast<int>(rng.below(static_cast<std::uint64_t>(n_routers)));
    const std::int64_t at_ms = static_cast<std::int64_t>(
        rng.below(static_cast<std::uint64_t>(horizon_ms)));
    e.at = sim::milliseconds(at_ms);
    e.duration = sim::milliseconds(window(at_ms, 200));
    e.loss = quant(0.01 + 0.04 * profile.wire_fault_intensity * rng.uniform());
    e.corrupt = quant(0.02 * rng.uniform());
    s.events.push_back(e);
  }

  return s;
}

void ChaosSchedule::apply(core::Testbed& tb, fault::FaultPlan& plan,
                          sim::SimTime arm_time) const {
  const int n_routers = static_cast<int>(tb.router_count());
  const int n_hosts = static_cast<int>(tb.host_count());
  for (const ChaosEvent& e : events) {
    switch (e.kind) {
      case ChaosEventKind::wire_rule: {
        fault::WireRule r;
        r.fault = e.fault;
        r.probability = e.probability;
        r.delay = e.delay;
        r.delay_jitter = e.jitter;
        if (e.node >= 0 && e.node < n_routers) {
          r.node = tb.router(static_cast<std::size_t>(e.node))
                       .kernel->atm_address()
                       .name;
        }
        r.from = arm_time + e.at;
        r.until = arm_time + e.at + e.duration;
        plan.add_rule(std::move(r));
        break;
      }
      case ChaosEventKind::crash_restart:
        if (e.node >= 0 && e.node < n_routers) {
          plan.crash_sighost_at(e.at, static_cast<std::size_t>(e.node));
          plan.restart_sighost_at(e.at + e.duration,
                                  static_cast<std::size_t>(e.node));
        }
        break;
      case ChaosEventKind::trunk_cut:
        if (e.node >= 0 && e.node + 1 < n_routers) {
          plan.cut_trunk(e.at, e.duration, "s" + std::to_string(e.node + 1),
                         "s" + std::to_string(e.node + 2));
        }
        break;
      case ChaosEventKind::link_flap:
        if (e.node >= 0 && e.node < n_hosts) {
          plan.flap_host_link(e.at, e.duration,
                              static_cast<std::size_t>(e.node));
        }
        break;
      case ChaosEventKind::cell_impair:
        if (e.node >= 0 && e.node < n_routers) {
          plan.impair_cells(e.at, e.duration, static_cast<std::size_t>(e.node),
                            e.loss, e.corrupt);
        }
        break;
    }
  }
}

// ------------------------------------------------------------- JSONL form

std::string event_json(const ChaosEvent& e) {
  char buf[512];
  std::snprintf(
      buf, sizeof buf,
      "{\"rec\":\"event\",\"kind\":\"%s\",\"at_ns\":%" PRId64
      ",\"duration_ns\":%" PRId64 ",\"node\":%d,\"fault\":\"%s\""
      ",\"probability\":%s,\"delay_ns\":%" PRId64 ",\"jitter_ns\":%" PRId64
      ",\"loss\":%s,\"corrupt\":%s}",
      kind_name(e.kind), e.at.ns(), e.duration.ns(), e.node,
      fault_name(e.fault), obs::json_number(e.probability).c_str(),
      e.delay.ns(), e.jitter.ns(), obs::json_number(e.loss).c_str(),
      obs::json_number(e.corrupt).c_str());
  return buf;
}

std::string json_field(const std::string& line, const std::string& key) {
  const std::string needle = "\"" + key + "\":";
  const std::size_t pos = line.find(needle);
  if (pos == std::string::npos) return {};
  std::size_t start = pos + needle.size();
  std::size_t end = start;
  if (start < line.size() && line[start] == '"') {
    end = line.find('"', start + 1);
    if (end == std::string::npos) return {};
    return line.substr(start + 1, end - start - 1);
  }
  while (end < line.size() && line[end] != ',' && line[end] != '}') ++end;
  return line.substr(start, end - start);
}

bool event_from_json(const std::string& line, ChaosEvent& out) {
  if (json_field(line, "rec") != "event") return false;
  const std::string kind = json_field(line, "kind");
  if (kind == "wire_rule") out.kind = ChaosEventKind::wire_rule;
  else if (kind == "crash_restart") out.kind = ChaosEventKind::crash_restart;
  else if (kind == "trunk_cut") out.kind = ChaosEventKind::trunk_cut;
  else if (kind == "link_flap") out.kind = ChaosEventKind::link_flap;
  else if (kind == "cell_impair") out.kind = ChaosEventKind::cell_impair;
  else return false;
  const std::string fault = json_field(line, "fault");
  if (fault == "deliver") out.fault = sig::WireFault::deliver;
  else if (fault == "drop") out.fault = sig::WireFault::drop;
  else if (fault == "duplicate") out.fault = sig::WireFault::duplicate;
  else if (fault == "corrupt") out.fault = sig::WireFault::corrupt;
  else if (fault == "delay") out.fault = sig::WireFault::delay;
  else return false;
  out.at = sim::nanoseconds(std::atoll(json_field(line, "at_ns").c_str()));
  out.duration =
      sim::nanoseconds(std::atoll(json_field(line, "duration_ns").c_str()));
  out.node = std::atoi(json_field(line, "node").c_str());
  out.probability = std::strtod(json_field(line, "probability").c_str(), nullptr);
  out.delay = sim::nanoseconds(std::atoll(json_field(line, "delay_ns").c_str()));
  out.jitter =
      sim::nanoseconds(std::atoll(json_field(line, "jitter_ns").c_str()));
  out.loss = std::strtod(json_field(line, "loss").c_str(), nullptr);
  out.corrupt = std::strtod(json_field(line, "corrupt").c_str(), nullptr);
  return true;
}

}  // namespace xunet::chaos
