// chaos.hpp — deterministic randomized fault schedules.
//
// A ChaosSchedule is the randomized half of the chaos harness: from one
// util::Rng seed and an intensity profile it emits a FaultPlan-shaped list
// of fault events — wire drop/dup/corrupt/reorder rules, timed sighost
// crash/restart pairs, trunk cuts, host-link flaps, cell impairments —
// over any chain topology.  The schedule is pure data: generating it twice
// from the same (topology, profile, seed) yields identical events, and
// apply()ing it to a FaultPlan injects exactly those faults, so a chaos
// run reproduces byte-for-byte from its seed.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "fault/fault.hpp"

namespace xunet::chaos {

enum class ChaosEventKind : std::uint8_t {
  wire_rule,      ///< windowed signaling-message fault (drop/dup/corrupt/delay)
  crash_restart,  ///< sighost killed at `at`, replacement at `at + duration`
  trunk_cut,      ///< trunk between switches s<node+1> and s<node+2> down
  link_flap,      ///< host `node`'s FDDI link down for `duration`
  cell_impair,    ///< cell loss/corruption on router `node`'s endpoint links
};

/// One scheduled fault.  `at` and `duration` are offsets from FaultPlan
/// arm() time; every fault heals (window closes, sighost restarts, link
/// back up) at `at + duration`.  `node` is the target index — the sender
/// router of a wire rule (-1 = any sender), the crashed router, the trunk's
/// chain position, the flapped host, or the impaired router.
struct ChaosEvent {
  ChaosEventKind kind = ChaosEventKind::wire_rule;
  sim::SimDuration at{};
  sim::SimDuration duration{};
  int node = -1;
  // wire_rule only:
  sig::WireFault fault = sig::WireFault::drop;
  double probability = 0.0;
  sim::SimDuration delay{};   ///< hold-back when fault == delay
  sim::SimDuration jitter{};  ///< + uniform[0, jitter) on top
  // cell_impair only:
  double loss = 0.0;
  double corrupt = 0.0;

  [[nodiscard]] bool operator==(const ChaosEvent&) const = default;
};

/// Intensity knobs.  Counts are upper bounds — the generator draws the
/// actual count per category — and every fault is scheduled to start within
/// `horizon` and heal by `heal_by`, which is what makes liveness checkable:
/// after heal_by the deployment is fault-free and every call must resolve.
struct ChaosProfile {
  sim::SimDuration horizon = sim::seconds(4);  ///< fault starts in [0, horizon)
  sim::SimDuration heal_by = sim::seconds(6);  ///< all faults healed by here
  double wire_fault_intensity = 0.5;  ///< scales wire-rule probabilities [0,1]
  int max_wire_rules = 3;
  int max_crash_restarts = 1;
  int max_trunk_cuts = 1;
  int max_link_flaps = 1;
  int max_cell_impairments = 1;
};

/// A generated (or shrunk/replayed) schedule over one topology.
struct ChaosSchedule {
  std::uint64_t seed = 0;
  ChaosProfile profile;
  std::vector<ChaosEvent> events;

  /// Draw a schedule for an `n_routers`-chain with `n_hosts` hosts.  Pure:
  /// same arguments, same events, on every platform.
  [[nodiscard]] static ChaosSchedule generate(int n_routers, int n_hosts,
                                              const ChaosProfile& profile,
                                              std::uint64_t seed);

  /// Inject every event into `plan` (call before plan.arm(); wire-rule
  /// windows are anchored at `arm_time`, which must be the sim time arm()
  /// will run at).  Events whose target does not exist in `tb` — a shrunk
  /// schedule replayed on a smaller topology — are skipped.
  void apply(core::Testbed& tb, fault::FaultPlan& plan,
             sim::SimTime arm_time) const;
};

/// One `{"rec":"event",...}` JSONL record (no trailing newline).  Durations
/// are nanosecond integers and probabilities round-trip exactly, so a
/// serialized schedule replays byte-identically.
[[nodiscard]] std::string event_json(const ChaosEvent& e);
/// Parse event_json output.  False when `line` is not an event record.
[[nodiscard]] bool event_from_json(const std::string& line, ChaosEvent& out);

[[nodiscard]] const char* kind_name(ChaosEventKind k) noexcept;
[[nodiscard]] const char* fault_name(sig::WireFault f) noexcept;

/// Extract the value of `"key":...` from one flat JSON object line (string
/// values are returned unquoted).  Empty when absent.  Only suitable for
/// the harness's own schema, whose strings never contain escaped quotes.
[[nodiscard]] std::string json_field(const std::string& line,
                                     const std::string& key);

}  // namespace xunet::chaos
