#include "chaos/invariant.hpp"

#include <algorithm>
#include <unordered_map>

namespace xunet::chaos {

namespace {

std::string vci_str(atm::Vci v) { return std::to_string(static_cast<int>(v)); }

}  // namespace

Snapshot capture(core::Testbed& tb) {
  Snapshot snap;

  // Endpoint resolution: IP address -> machine name, machine -> sighost.
  std::unordered_map<std::uint32_t, std::string> machine_by_ip;
  for (std::size_t i = 0; i < tb.router_count(); ++i) {
    kern::Kernel& k = *tb.router(i).kernel;
    machine_by_ip[k.ip_node().address().value] = k.name();
  }
  for (std::size_t i = 0; i < tb.host_count(); ++i) {
    kern::Kernel& k = *tb.host(i).kernel;
    machine_by_ip[k.ip_node().address().value] = k.name();
  }

  auto add_kernel = [&snap](kern::Kernel& k, const std::string& sighost) {
    for (const kern::Kernel::XunetVciInfo& s : k.audit_xunet_vcis()) {
      if (s.vci < atm::kFirstSwitchedVci) continue;  // signaling PVCs
      KernelVciView kv;
      kv.machine = k.name();
      kv.sighost = sighost;
      kv.vci = s.vci;
      kv.bound = s.state == kern::SocketState::bound;
      snap.kernel_vcis.push_back(std::move(kv));
    }
  };

  for (std::size_t i = 0; i < tb.router_count(); ++i) {
    core::Router& r = tb.router(i);
    const std::string name = r.kernel->atm_address().name;
    add_kernel(*r.kernel, name);

    SighostView sv;
    sv.name = name;
    // Shards crash and restart together (a machine crash, not a process
    // one), so the router's view is alive only when every shard is.
    sv.alive = true;
    for (std::size_t s = 0; s < r.shard_count(); ++s) {
      if (r.shard(s) == nullptr) sv.alive = false;
    }
    if (sv.alive) {
      // Merge the shards into one per-router view: shards partition the
      // switched VCI space, so concatenating their lists loses nothing,
      // and sorting restores the deterministic order the checker needs.
      std::vector<sig::Sighost::VciAuditEntry> mapping;
      for (std::size_t s = 0; s < r.shard_count(); ++s) {
        sig::Sighost::ListSnapshot lists = r.shard(s)->audit_snapshot();
        sv.outgoing_calls.insert(sv.outgoing_calls.end(),
                                 lists.outgoing_calls.begin(),
                                 lists.outgoing_calls.end());
        sv.incoming_calls.insert(sv.incoming_calls.end(),
                                 lists.incoming_calls.begin(),
                                 lists.incoming_calls.end());
        sv.wait_for_bind.insert(sv.wait_for_bind.end(),
                                lists.wait_for_bind.begin(),
                                lists.wait_for_bind.end());
        mapping.insert(mapping.end(), lists.vci_mapping.begin(),
                       lists.vci_mapping.end());
      }
      std::sort(sv.outgoing_calls.begin(), sv.outgoing_calls.end());
      std::sort(sv.incoming_calls.begin(), sv.incoming_calls.end());
      std::sort(sv.wait_for_bind.begin(), sv.wait_for_bind.end());
      std::sort(mapping.begin(), mapping.end(),
                [](const sig::Sighost::VciAuditEntry& a,
                   const sig::Sighost::VciAuditEntry& b) {
                  return a.vci < b.vci;
                });
      for (const sig::Sighost::VciAuditEntry& e : mapping) {
        CallRecordView cr;
        cr.sighost = name;
        cr.vci = e.vci;
        cr.call_key = e.call_key;
        cr.confirmed = e.confirmed;
        cr.recovered = e.recovered;
        if (e.endpoint_ip.valid()) {
          auto it = machine_by_ip.find(e.endpoint_ip.value);
          cr.endpoint_machine =
              it != machine_by_ip.end() ? it->second : r.kernel->name();
        } else {
          cr.endpoint_machine = r.kernel->name();
        }
        snap.call_records.push_back(std::move(cr));
      }
    }
    snap.sighosts.push_back(std::move(sv));
  }
  for (std::size_t i = 0; i < tb.host_count(); ++i) {
    core::Host& h = tb.host(i);
    add_kernel(*h.kernel, h.home->kernel->atm_address().name);
  }

  for (const atm::AtmNetwork::VcSummary& v : tb.network().audit_all_vcs()) {
    if (v.src_vci < atm::kFirstSwitchedVci) continue;  // signaling PVCs
    VcView vv;
    vv.id = v.id;
    vv.src = v.src.name;
    vv.dst = v.dst.name;
    vv.src_vci = v.src_vci;
    vv.dst_vci = v.dst_vci;
    snap.vcs.push_back(std::move(vv));
  }

  for (std::size_t i = 0; i < tb.router_count(); ++i) {
    atm::AtmSwitch* sw = tb.router(i).sw;
    if (sw == nullptr) continue;
    for (const atm::AtmSwitch::RouteInfo& r : sw->route_table()) {
      snap.routes_installed.push_back({sw->name(), r.in_port, r.in_vci});
    }
  }
  for (const atm::AtmNetwork::RouteAudit& r : tb.network().audit_routes()) {
    snap.routes_expected.push_back({r.sw, r.in_port, r.in_vci});
  }
  std::sort(snap.routes_installed.begin(), snap.routes_installed.end());
  std::sort(snap.routes_expected.begin(), snap.routes_expected.end());

  for (const atm::AtmNetwork::ReservationAudit& r :
       tb.network().audit_reservations()) {
    snap.reservations.push_back(
        {r.sw, r.port, r.reserved_bps, r.capacity_bps});
  }
  return snap;
}

std::vector<Violation> check(const Snapshot& snap,
                             const WorkloadCounts& workload) {
  std::vector<Violation> out;
  auto add = [&out](const char* rule, std::string detail) {
    out.push_back({rule, std::move(detail)});
  };

  auto sighost_view = [&snap](const std::string& name) -> const SighostView* {
    for (const SighostView& s : snap.sighosts) {
      if (s.name == name) return &s;
    }
    return nullptr;
  };
  auto has_record = [&snap](const std::string& sighost, atm::Vci vci) {
    for (const CallRecordView& cr : snap.call_records) {
      if (cr.sighost == sighost && cr.vci == vci) return true;
    }
    return false;
  };

  // 1. Every live data socket must be backed by a sighost call record: a
  //    socket without one can never be torn down by signaling.
  for (const KernelVciView& kv : snap.kernel_vcis) {
    const SighostView* sv = sighost_view(kv.sighost);
    if (sv == nullptr || !sv->alive) continue;  // unknowable while crashed
    if (!has_record(kv.sighost, kv.vci)) {
      add(kOrphanKernelVci, "machine=" + kv.machine + " vci=" +
                                vci_str(kv.vci) +
                                (kv.bound ? " side=bound" : " side=connected") +
                                " sighost=" + kv.sighost);
    }
  }

  // 2. Every confirmed call record must have (a) the data socket it claims
  //    was bound/connected and (b) a network VC carrying it.
  for (const CallRecordView& cr : snap.call_records) {
    if (!cr.confirmed) continue;
    bool have_sock = false;
    for (const KernelVciView& kv : snap.kernel_vcis) {
      if (kv.machine == cr.endpoint_machine && kv.vci == cr.vci) {
        have_sock = true;
        break;
      }
    }
    if (!have_sock) {
      add(kMissingKernelSocket, "sighost=" + cr.sighost + " vci=" +
                                    vci_str(cr.vci) + " call=" + cr.call_key +
                                    " endpoint=" + cr.endpoint_machine);
    }
    bool have_vc = false;
    for (const VcView& vc : snap.vcs) {
      if ((vc.src == cr.sighost && vc.src_vci == cr.vci) ||
          (vc.dst == cr.sighost && vc.dst_vci == cr.vci)) {
        have_vc = true;
        break;
      }
    }
    if (!have_vc) {
      add(kOrphanCallRecord, "sighost=" + cr.sighost + " vci=" +
                                 vci_str(cr.vci) + " call=" + cr.call_key +
                                 " has no network VC");
    }
  }

  // 3. Every switched VC must be claimed by a call record at both live ends
  //    (an unclaimed VC holds bandwidth reservations forever).
  for (const VcView& vc : snap.vcs) {
    const SighostView* src = sighost_view(vc.src);
    if (src != nullptr && src->alive && !has_record(vc.src, vc.src_vci)) {
      add(kOrphanNetworkVc, "vc=" + std::to_string(vc.id) + " side=src" +
                                " sighost=" + vc.src +
                                " vci=" + vci_str(vc.src_vci));
    }
    const SighostView* dst = sighost_view(vc.dst);
    if (dst != nullptr && dst->alive && !has_record(vc.dst, vc.dst_vci)) {
      add(kOrphanNetworkVc, "vc=" + std::to_string(vc.id) + " side=dst" +
                                " sighost=" + vc.dst +
                                " vci=" + vci_str(vc.dst_vci));
    }
  }

  // 4. Switch tables and the controller's route ownership must agree
  //    exactly, both directions.
  std::vector<RouteView> diff;
  std::set_difference(snap.routes_installed.begin(),
                      snap.routes_installed.end(),
                      snap.routes_expected.begin(), snap.routes_expected.end(),
                      std::back_inserter(diff));
  for (const RouteView& r : diff) {
    add(kDanglingSwitchRoute, "sw=" + r.sw + " in_port=" +
                                  std::to_string(r.in_port) +
                                  " in_vci=" + vci_str(r.in_vci));
  }
  diff.clear();
  std::set_difference(snap.routes_expected.begin(), snap.routes_expected.end(),
                      snap.routes_installed.begin(),
                      snap.routes_installed.end(), std::back_inserter(diff));
  for (const RouteView& r : diff) {
    add(kMissingSwitchRoute, "sw=" + r.sw + " in_port=" +
                                 std::to_string(r.in_port) +
                                 " in_vci=" + vci_str(r.in_vci));
  }

  // 5. Five-list exclusivity: one call key must never sit on both request
  //    lists of one sighost.
  for (const SighostView& sv : snap.sighosts) {
    if (!sv.alive) continue;
    for (const std::string& key : sv.outgoing_calls) {
      if (std::find(sv.incoming_calls.begin(), sv.incoming_calls.end(), key) !=
          sv.incoming_calls.end()) {
        add(kDoubleListedCall, "sighost=" + sv.name + " call=" + key);
      }
    }
  }

  // 6. Call conservation: every open resolves exactly once.
  if (workload.multi_fired > 0) {
    add(kCallConservation,
        "multi_fired=" + std::to_string(workload.multi_fired));
  }
  if (workload.delivered + workload.failed + workload.unresolved !=
      workload.opened) {
    add(kCallConservation,
        "opened=" + std::to_string(workload.opened) +
            " delivered=" + std::to_string(workload.delivered) +
            " failed=" + std::to_string(workload.failed) +
            " unresolved=" + std::to_string(workload.unresolved));
  }

  // 7. QoS conservation: at quiescence the sum of granted guaranteed
  //    bandwidth on any trunk must not exceed its capacity — whatever
  //    crashes, trunk flaps and recoveries the run injected, admission
  //    control must never have double-granted a reservation it later
  //    could not unwind.  (Ports with no output link carry no traffic and
  //    can hold no reservation worth checking.)
  for (const ReservationView& rv : snap.reservations) {
    if (rv.capacity_bps == 0) continue;
    if (rv.reserved_bps > rv.capacity_bps) {
      add(kQosOvercommit,
          "sw=" + rv.sw + " port=" + std::to_string(rv.port) +
              " reserved=" + std::to_string(rv.reserved_bps) +
              " capacity=" + std::to_string(rv.capacity_bps));
    }
  }

  // 8. Liveness: once faults heal, nothing may still be pending.
  if (workload.unresolved > 0) {
    add(kLiveness, "opens unresolved at quiescence: " +
                       std::to_string(workload.unresolved));
  }
  for (const SighostView& sv : snap.sighosts) {
    if (!sv.alive) {
      add(kLiveness, "sighost=" + sv.name + " down at quiescence");
      continue;
    }
    if (!sv.outgoing_calls.empty()) {
      add(kLiveness, "sighost=" + sv.name + " outgoing_requests=" +
                         std::to_string(sv.outgoing_calls.size()));
    }
    if (!sv.incoming_calls.empty()) {
      add(kLiveness, "sighost=" + sv.name + " incoming_requests=" +
                         std::to_string(sv.incoming_calls.size()));
    }
    if (!sv.wait_for_bind.empty()) {
      add(kLiveness, "sighost=" + sv.name + " wait_for_bind=" +
                         std::to_string(sv.wait_for_bind.size()));
    }
  }
  for (const CallRecordView& cr : snap.call_records) {
    if (!cr.confirmed) {
      add(kLiveness, "sighost=" + cr.sighost + " vci=" + vci_str(cr.vci) +
                         " unconfirmed at quiescence");
    }
  }

  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace xunet::chaos
