#include "chaos/runner.hpp"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <memory>

#include "core/apps.hpp"
#include "obs/export.hpp"

namespace xunet::chaos {

namespace {

/// Shared workload bookkeeping, owned by shared_ptr so open callbacks that
/// fire (or mis-fire) after run_events() assembled its tallies stay safe.
struct Tally {
  std::vector<int> fired;  ///< per-call callback count
  std::uint64_t delivered = 0;
  std::uint64_t failed = 0;
  std::uint64_t multi = 0;
};

}  // namespace

RunOutcome run_events(const ChaosCase& c,
                      const std::vector<ChaosEvent>& events) {
  RunOutcome out;
  out.schedule.seed = c.seed;
  out.schedule.profile = c.profile;
  out.schedule.events = events;

  core::TestbedConfig cfg;
  // Many short-lived calls: completed per-call conns linger in TIME_WAIT,
  // so the default 20-entry fd table would starve the workload.
  cfg.kernel.fd_table_size = 512;
  // CI-speed timeouts: every pending state must expire well inside the
  // post-heal settle window.
  cfg.sighost.request_timeout = sim::seconds(3);
  cfg.sighost.wait_for_bind_timeout = sim::seconds(2);
  cfg.sighost.resync_grace = sim::seconds(1);
  cfg.sighost.recovery_skip_audit = c.sabotage_skip_audit;
  const int shards = std::max(1, c.shards);
  auto tb = cfg.routers(c.routers)
                .hosts(c.hosts)
                .shards(shards)
                .pvc_mesh()
                .build();

  core::Router& last = tb->router(tb->router_count() - 1);
  core::CallServer server(*last.kernel, last.kernel->ip_node().address(),
                          "svc", 6200, shards);
  server.start([](util::Result<void>) {});
  core::CallClient client(*tb->router(0).kernel,
                          tb->router(0).kernel->ip_node().address(), shards);
  tb->sim().run_for(sim::milliseconds(300));

  const std::string dst = last.kernel->atm_address().name;

  fault::FaultPlan plan(*tb, c.seed);
  out.schedule.apply(*tb, plan, tb->sim().now());
  plan.arm();

  auto tally = std::make_shared<Tally>();
  tally->fired.assign(static_cast<std::size_t>(std::max(0, c.calls)), 0);
  static const std::vector<std::uint8_t> payload(256, 0xab);

  for (int i = 0; i < c.calls; ++i) {
    const sim::SimDuration when = sim::milliseconds(200) + c.call_stagger * i;
    // xunet-lint: allow(LIFE-REF-CAPTURE) -- &client and &c outlive every
    // scheduled event: the run_for() to quiescence below is in this frame.
    tb->sim().schedule(when, [&client, &c, dst, i, when, tally] {
      app::OpenOptions opts;
      // Budget every call to resolve shortly after the last fault heals.
      opts.deadline = c.profile.heal_by + sim::seconds(4) - when;
      if (opts.deadline.ns() < sim::seconds(1).ns()) {
        opts.deadline = sim::seconds(1);
      }
      client.open(dst, "svc", "", opts,
                  [&client, &c, i, tally](util::Result<core::CallClient::Call> r) {
                    auto& fired = tally->fired[static_cast<std::size_t>(i)];
                    if (++fired > 1) {
                      ++tally->multi;
                      return;
                    }
                    if (!r) {
                      ++tally->failed;
                      return;
                    }
                    ++tally->delivered;
                    for (int f = 0; f < c.frames_per_call; ++f) {
                      (void)client.send(*r, util::BytesView(payload));
                    }
                    if (c.close_every > 0 && i % c.close_every == 0) {
                      client.close_call(*r);
                    }
                  });
    });
  }

  // Run to quiescence: workload issued, faults healed, every retry budget
  // and sighost timeout (request, wait_for_bind, resync grace) expired.
  tb->sim().run_for(sim::milliseconds(200) + c.call_stagger * c.calls +
                    c.profile.heal_by + sim::seconds(12));

  out.workload.opened = static_cast<std::uint64_t>(std::max(0, c.calls));
  out.workload.delivered = tally->delivered;
  out.workload.failed = tally->failed;
  out.workload.multi_fired = tally->multi;
  for (int f : tally->fired) {
    if (f == 0) ++out.workload.unresolved;
  }

  out.violations = check(capture(*tb), out.workload);
  if (!out.violations.empty()) {
    obs::Observability& o = tb->sim().obs();
    for (const Violation& v : out.violations) {
      o.flight_note("chaos", "violation", v.rule, v.detail);
    }
    o.flight().trigger("chaos:" + out.violations.front().rule);
    out.post_mortem = o.flight().last_dump();
  }
  return out;
}

RunOutcome run_case(const ChaosCase& c) {
  return run_events(
      c, ChaosSchedule::generate(c.routers, c.hosts, c.profile, c.seed).events);
}

// ------------------------------------------------------------------ shrink

ShrinkResult shrink(const ChaosCase& c, const RunOutcome& failing,
                    int max_runs) {
  ShrinkResult res;
  res.minimal = failing.schedule.events;
  if (failing.violations.empty()) return res;
  res.rule = failing.violations.front().rule;

  auto still_fails = [&c, &res](const std::vector<ChaosEvent>& ev) {
    ++res.iterations;
    const RunOutcome o = run_events(c, ev);
    return std::any_of(o.violations.begin(), o.violations.end(),
                       [&res](const Violation& v) { return v.rule == res.rule; });
  };

  // The empty schedule failing means the violation is fault-independent —
  // the strongest possible shrink.
  if (still_fails({})) {
    res.minimal.clear();
    return res;
  }

  // Classic ddmin over the event list.
  std::vector<ChaosEvent>& cur = res.minimal;
  std::size_t n = 2;
  while (cur.size() >= 2 && res.iterations < max_runs) {
    const std::size_t chunk = std::max<std::size_t>(1, cur.size() / n);
    bool reduced = false;
    for (std::size_t start = 0;
         start < cur.size() && res.iterations < max_runs; start += chunk) {
      std::vector<ChaosEvent> cand;
      cand.reserve(cur.size());
      for (std::size_t j = 0; j < cur.size(); ++j) {
        if (j < start || j >= start + chunk) cand.push_back(cur[j]);
      }
      if (cand.size() == cur.size() || cand.empty()) continue;
      if (still_fails(cand)) {
        cur = std::move(cand);
        n = std::max<std::size_t>(2, n - 1);
        reduced = true;
        break;
      }
    }
    if (!reduced) {
      if (chunk == 1) break;  // single-event granularity exhausted
      n = std::min(cur.size(), n * 2);
    }
  }
  return res;
}

// ---------------------------------------------------------------- artifact

std::string to_artifact(const ChaosCase& c,
                        const std::vector<ChaosEvent>& events,
                        const RunOutcome& outcome) {
  std::string out;
  char buf[512];
  std::snprintf(
      buf, sizeof buf,
      "{\"schema\":\"%.*s\",\"seed\":%" PRIu64
      ",\"routers\":%d,\"hosts\":%d,\"shards\":%d,\"calls\":%d"
      ",\"call_stagger_ns\":%" PRId64
      ",\"close_every\":%d,\"frames_per_call\":%d,\"sabotage\":%d"
      ",\"horizon_ns\":%" PRId64 ",\"heal_by_ns\":%" PRId64
      ",\"events\":%zu,\"violations\":%zu}",
      static_cast<int>(kChaosSchema.size()), kChaosSchema.data(), c.seed,
      c.routers, c.hosts, std::max(1, c.shards), c.calls, c.call_stagger.ns(),
      c.close_every, c.frames_per_call, c.sabotage_skip_audit ? 1 : 0,
      c.profile.horizon.ns(), c.profile.heal_by.ns(), events.size(),
      outcome.violations.size());
  out += buf;
  out += '\n';
  for (const ChaosEvent& e : events) {
    out += event_json(e);
    out += '\n';
  }
  for (const Violation& v : outcome.violations) {
    out += "{\"rec\":\"violation\",\"rule\":\"" + obs::json_escape(v.rule) +
           "\",\"detail\":\"" + obs::json_escape(v.detail) + "\"}\n";
  }
  std::snprintf(buf, sizeof buf,
                "{\"rec\":\"result\",\"opened\":%" PRIu64
                ",\"delivered\":%" PRIu64 ",\"failed\":%" PRIu64
                ",\"unresolved\":%" PRIu64 ",\"multi_fired\":%" PRIu64 "}",
                outcome.workload.opened, outcome.workload.delivered,
                outcome.workload.failed, outcome.workload.unresolved,
                outcome.workload.multi_fired);
  out += buf;
  out += '\n';
  if (!outcome.post_mortem.empty()) {
    out += "{\"rec\":\"post_mortem\",\"trace\":\"" +
           obs::json_escape(outcome.post_mortem) + "\"}\n";
  }
  return out;
}

ReplayResult replay_artifact(const std::string& jsonl) {
  ReplayResult res;
  std::vector<std::string> lines;
  std::size_t start = 0;
  while (start < jsonl.size()) {
    std::size_t end = jsonl.find('\n', start);
    if (end == std::string::npos) end = jsonl.size();
    if (end > start) lines.push_back(jsonl.substr(start, end - start));
    start = end + 1;
  }
  if (lines.empty()) return res;
  const std::string& header = lines.front();
  if (json_field(header, "schema") != kChaosSchema) return res;

  ChaosCase c;
  c.seed = static_cast<std::uint64_t>(
      std::strtoull(json_field(header, "seed").c_str(), nullptr, 10));
  c.routers = std::atoi(json_field(header, "routers").c_str());
  c.hosts = std::atoi(json_field(header, "hosts").c_str());
  // Absent in pre-sharding artifacts (atoi("") == 0): clamp to 1.
  c.shards = std::max(1, std::atoi(json_field(header, "shards").c_str()));
  c.calls = std::atoi(json_field(header, "calls").c_str());
  c.call_stagger =
      sim::nanoseconds(std::atoll(json_field(header, "call_stagger_ns").c_str()));
  c.close_every = std::atoi(json_field(header, "close_every").c_str());
  c.frames_per_call = std::atoi(json_field(header, "frames_per_call").c_str());
  c.sabotage_skip_audit = json_field(header, "sabotage") == "1";
  c.profile.horizon =
      sim::nanoseconds(std::atoll(json_field(header, "horizon_ns").c_str()));
  c.profile.heal_by =
      sim::nanoseconds(std::atoll(json_field(header, "heal_by_ns").c_str()));
  if (c.routers < 1 || c.calls < 0) return res;

  std::vector<ChaosEvent> events;
  for (std::size_t i = 1; i < lines.size(); ++i) {
    if (json_field(lines[i], "rec") != "event") continue;
    ChaosEvent e;
    if (!event_from_json(lines[i], e)) return res;
    events.push_back(e);
  }

  res.parsed = true;
  res.outcome = run_events(c, events);
  res.artifact = to_artifact(c, events, res.outcome);
  return res;
}

}  // namespace xunet::chaos
