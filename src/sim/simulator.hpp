// simulator.hpp — the discrete-event engine every substrate runs on.
//
// A Simulator owns a time-ordered event queue.  Components schedule
// callbacks at future instants; run() dispatches them in (time, insertion)
// order, so simulations are fully deterministic.
//
// Two interchangeable engines produce byte-identical dispatch order:
//
//  * Engine::pooled (default) — events live in a chunked pool of
//    small-buffer-optimized records (captures up to 48 bytes never touch
//    the allocator).  Near-future events go into a 1024-slot bucket ring
//    (4.096 us granularity, ~4.2 ms horizon); far events fall back to a
//    binary heap and migrate into the ring as the window advances.  Within
//    a bucket, events are ordered by (time, id); ids are issued in schedule
//    order, so dispatch order is exactly the classic (time, insertion)
//    order.
//
//  * Engine::legacy_heap — the original std::function binary heap, kept so
//    determinism tests can assert both engines replay a seed identically.
#pragma once

#include <array>
#include <bit>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <new>
#include <queue>
#include <type_traits>
#include <unordered_set>
#include <utility>
#include <vector>

#include "obs/obs.hpp"
#include "sim/time.hpp"
#include "util/logging.hpp"

namespace xunet::sim {

/// Handle for a scheduled event; used to cancel timers.
using EventId = std::uint64_t;

/// Discrete-event simulator: event queue + clock + per-simulation logger.
class Simulator {
 public:
  /// Event-queue implementation.  Both dispatch in identical order.
  enum class Engine { pooled, legacy_heap };

  explicit Simulator(Engine engine = Engine::pooled);
  ~Simulator();
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  [[nodiscard]] Engine engine() const noexcept { return engine_; }

  /// Current simulated time.
  [[nodiscard]] SimTime now() const noexcept { return now_; }

  /// Schedule `fn` to run `delay` from now.  Zero delay is allowed and runs
  /// after all already-queued events at the current instant.  Negative
  /// delays (e.g. from an underflowed SimTime subtraction) are clamped to
  /// "now" instead of corrupting the queue.
  template <typename F>
  EventId schedule(SimDuration delay, F&& fn) {
    if (delay.ns() < 0) delay = SimDuration{0};
    return schedule_at(now_ + delay, std::forward<F>(fn));
  }

  /// Schedule at an absolute instant (must not be in the past).
  template <typename F>
  EventId schedule_at(SimTime when, F&& fn) {
    assert(when >= now_);
    if (engine_ == Engine::legacy_heap)
      return legacy_schedule_at(when, std::function<void()>(std::forward<F>(fn)));
    std::uint32_t idx = alloc_rec();
    bind(rec(idx), std::forward<F>(fn));
    return insert_ref(when, idx);
  }

  /// Cancel a scheduled event.  Returns true if the event was still pending.
  bool cancel(EventId id);

  /// Run events until the queue empties.  Returns the number dispatched.
  std::size_t run();

  /// Run events with timestamp <= deadline; the clock ends at `deadline`
  /// even if the queue empties earlier.  Returns the number dispatched.
  std::size_t run_until(SimTime deadline);

  /// Advance by `d` from the current time (convenience over run_until).
  std::size_t run_for(SimDuration d) { return run_until(now_ + d); }

  /// Number of events currently pending.
  [[nodiscard]] std::size_t pending() const noexcept {
    std::size_t queued = (engine_ == Engine::legacy_heap) ? legacy_queue_.size() : size_;
    return queued - cancelled_.size();
  }

  /// High-water mark of pending() over the simulator's lifetime.
  [[nodiscard]] std::size_t peak_pending() const noexcept { return peak_pending_; }

  /// The per-simulation logger shared by every component.
  [[nodiscard]] util::Logger& logger() noexcept { return logger_; }

  /// The per-simulation observability context (trace buffer + metrics),
  /// clock-bound to this simulator.  Tracing is off by default.
  [[nodiscard]] obs::Observability& obs() noexcept { return obs_; }
  [[nodiscard]] const obs::Observability& obs() const noexcept { return obs_; }

 private:
  // ---- pooled engine -----------------------------------------------------

  static constexpr std::size_t kSboBytes = 48;
  static constexpr unsigned kGranShift = 12;  ///< 4096 ns bucket granularity
  static constexpr std::size_t kSlots = 1024;  ///< ring horizon ~4.19 ms
  static constexpr std::size_t kSlotMask = kSlots - 1;
  static constexpr std::uint32_t kChunkShift = 9;  ///< 512 records per chunk
  static constexpr std::uint32_t kChunkSize = 1u << kChunkShift;

  /// Type-erased event record.  Callables whose capture fits kSboBytes are
  /// stored inline; larger ones spill to a single heap allocation.
  struct EventRec {
    using Thunk = void (*)(EventRec&, bool run);
    Thunk thunk = nullptr;
    void* heap = nullptr;
    alignas(std::max_align_t) unsigned char sbo[kSboBytes];
  };

  /// Queue handle: (when, id) is the dispatch key, rec indexes the pool.
  struct Ref {
    std::int64_t when;
    EventId id;
    std::uint32_t rec;
  };
  struct RefLater {
    bool operator()(const Ref& a, const Ref& b) const noexcept {
      if (a.when != b.when) return a.when > b.when;
      return a.id > b.id;
    }
  };

  template <typename F>
  static void bind(EventRec& r, F&& fn) {
    using Fn = std::decay_t<F>;
    if constexpr (sizeof(Fn) <= kSboBytes && alignof(Fn) <= alignof(std::max_align_t) &&
                  std::is_nothrow_move_constructible_v<Fn>) {
      ::new (static_cast<void*>(r.sbo)) Fn(std::forward<F>(fn));
      r.thunk = [](EventRec& rr, bool run) {
        Fn* f = std::launder(reinterpret_cast<Fn*>(rr.sbo));
        if (run) (*f)();
        f->~Fn();
      };
    } else {
      r.heap = new Fn(std::forward<F>(fn));
      r.thunk = [](EventRec& rr, bool run) {
        Fn* f = static_cast<Fn*>(rr.heap);
        if (run) (*f)();
        delete f;
      };
    }
  }

  [[nodiscard]] EventRec& rec(std::uint32_t idx) noexcept {
    return chunks_[idx >> kChunkShift][idx & (kChunkSize - 1)];
  }

  std::uint32_t alloc_rec();
  void free_rec(std::uint32_t idx) { free_list_.push_back(idx); }
  EventId insert_ref(SimTime when, std::uint32_t idx);
  bool refill();               ///< make active_ non-empty if any event exists
  void activate_slot(std::int64_t abs_slot);
  void drain_overflow();       ///< pull overflow events now inside the window
  void dispatch_ref(const Ref& r);
  [[nodiscard]] bool occ(std::size_t ring_idx) const noexcept {
    return (occ_[ring_idx >> 6] >> (ring_idx & 63)) & 1u;
  }
  void set_occ(std::size_t ring_idx) noexcept { occ_[ring_idx >> 6] |= 1ull << (ring_idx & 63); }
  void clear_occ(std::size_t ring_idx) noexcept {
    occ_[ring_idx >> 6] &= ~(1ull << (ring_idx & 63));
  }

  // ---- legacy engine -----------------------------------------------------

  struct LegacyEntry {
    SimTime when;
    std::uint64_t seq;  ///< tie-break so equal-time events run FIFO
    EventId id;
    std::function<void()> fn;
  };
  struct LegacyLater {
    bool operator()(const LegacyEntry& a, const LegacyEntry& b) const noexcept {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };

  EventId legacy_schedule_at(SimTime when, std::function<void()> fn);
  void legacy_dispatch(LegacyEntry& e);

  // ---- state -------------------------------------------------------------

  Engine engine_;
  SimTime now_{};
  std::uint64_t next_seq_ = 0;
  EventId next_id_ = 1;
  std::size_t peak_pending_ = 0;
  std::unordered_set<EventId> cancelled_;

  // Pooled engine state.
  std::vector<std::unique_ptr<EventRec[]>> chunks_;
  std::vector<std::uint32_t> free_list_;
  std::vector<Ref> active_;    ///< min-heap of events in the active slot
  std::vector<Ref> overflow_;  ///< min-heap of events beyond the ring horizon
  std::array<std::vector<Ref>, kSlots> ring_;
  std::array<std::uint64_t, kSlots / 64> occ_{};
  std::int64_t active_slot_ = 0;  ///< window start; active_ holds this slot
  std::size_t ring_count_ = 0;
  std::size_t size_ = 0;  ///< queued events (including lazily-cancelled)

  // Legacy engine state.
  std::priority_queue<LegacyEntry, std::vector<LegacyEntry>, LegacyLater> legacy_queue_;

  util::Logger logger_;
  obs::Observability obs_;
};

}  // namespace xunet::sim
